#include "registry.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common.h"
#include "obs/obs.h"

namespace tempofair::bench {

namespace {

/// Splits "f10" into ("f", 10).  Ids without a numeric suffix compare by
/// the whole string with suffix rank 0.
std::pair<std::string, long> split_natural(const std::string& id) {
  std::size_t digits = 0;
  while (digits < id.size() &&
         std::isdigit(static_cast<unsigned char>(id[id.size() - 1 - digits]))) {
    ++digits;
  }
  if (digits == 0) return {id, 0};
  return {id.substr(0, id.size() - digits),
          std::stol(id.substr(id.size() - digits))};
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

RunContext::RunContext(const harness::Cli& cli, harness::ThreadPool& pool,
                       std::ostream& out, bool smoke, bool csv)
    : cli_(&cli), pool_(&pool), out_(&out), smoke_(smoke), csv_(csv) {}

long RunContext::int_param(const std::string& name, long fallback) {
  const long v = cli_->get_int(name, fallback);
  params_[name] = std::to_string(v);
  return v;
}

double RunContext::double_param(const std::string& name, double fallback) {
  const double v = cli_->get_double(name, fallback);
  std::ostringstream text;
  text << v;
  params_[name] = text.str();
  return v;
}

std::string RunContext::string_param(const std::string& name,
                                     const std::string& fallback) {
  const std::string v = cli_->get_string(name, fallback);
  params_[name] = v;
  return v;
}

std::uint64_t RunContext::seed_param(std::uint64_t fallback) {
  return static_cast<std::uint64_t>(
      int_param("seed", static_cast<long>(fallback)));
}

std::size_t RunContext::size_param(const std::string& name,
                                   std::size_t fallback, std::size_t floor) {
  std::size_t dflt = fallback;
  if (smoke_ && !cli_->has(name)) {
    dflt = std::max(fallback / 8, std::min(floor, fallback));
  }
  return static_cast<std::size_t>(int_param(name, static_cast<long>(dflt)));
}

void RunContext::banner(const std::string& id, const std::string& claim,
                        const std::string& expectation) {
  bench::banner(*out_, id, claim, expectation);
}

void RunContext::emit(const analysis::Table& table) {
  bench::emit(*out_, table, csv_);
}

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(ExperimentSpec spec) {
  if (spec.id.empty() || !spec.run) {
    throw std::logic_error("ExperimentRegistry: spec needs an id and a run fn");
  }
  if (specs_.count(spec.id) > 0) {
    throw std::logic_error("ExperimentRegistry: duplicate experiment id '" +
                           spec.id + "'");
  }
  specs_.emplace(spec.id, std::move(spec));
}

const ExperimentSpec* ExperimentRegistry::find(const std::string& id) const {
  const auto it = specs_.find(id);
  return it == specs_.end() ? nullptr : &it->second;
}

std::vector<const ExperimentSpec*> ExperimentRegistry::all() const {
  std::vector<const ExperimentSpec*> out;
  out.reserve(specs_.size());
  for (const auto& [id, spec] : specs_) out.push_back(&spec);
  std::sort(out.begin(), out.end(),
            [](const ExperimentSpec* a, const ExperimentSpec* b) {
              return natural_id_less(a->id, b->id);
            });
  return out;
}

Registration::Registration(ExperimentSpec spec) {
  ExperimentRegistry::instance().add(std::move(spec));
}

bool natural_id_less(const std::string& a, const std::string& b) {
  const auto [pa, na] = split_natural(a);
  const auto [pb, nb] = split_natural(b);
  if (pa != pb) return pa < pb;
  if (na != nb) return na < nb;
  return a < b;
}

std::vector<const ExperimentSpec*> select_experiments(
    const ExperimentRegistry& registry, const std::string& filter) {
  std::vector<const ExperimentSpec*> selected;
  if (filter.empty()) return registry.all();

  std::string id;
  std::istringstream in(filter);
  while (std::getline(in, id, ',')) {
    if (id.empty()) continue;
    const ExperimentSpec* spec = registry.find(id);
    if (spec == nullptr) {
      std::string valid;
      for (const ExperimentSpec* s : registry.all()) {
        if (!valid.empty()) valid += ", ";
        valid += s->id;
      }
      throw std::invalid_argument("unknown experiment id '" + id +
                                  "'; valid ids: " + valid);
    }
    if (std::find(selected.begin(), selected.end(), spec) == selected.end()) {
      selected.push_back(spec);
    }
  }
  std::sort(selected.begin(), selected.end(),
            [](const ExperimentSpec* a, const ExperimentSpec* b) {
              return natural_id_less(a->id, b->id);
            });
  return selected;
}

RunOutcome run_experiment(const ExperimentSpec& spec, const harness::Cli& cli,
                          harness::ThreadPool& pool, bool smoke, bool csv) {
  RunOutcome outcome;
  outcome.id = spec.id;

  obs::Sink sink;
  std::ostringstream buffer;
  RunContext ctx(cli, pool, buffer, smoke, csv);

  const auto wall_start = std::chrono::steady_clock::now();
  {
    obs::ScopedSink scope(&sink);
    obs::CpuAccount cpu(sink, "cpu_ns");
    try {
      outcome.exit_code = spec.run(ctx);
      outcome.status = outcome.exit_code == 0 ? "ok" : "check_failed";
    } catch (const std::exception& e) {
      outcome.status = "error";
      outcome.error = e.what();
      outcome.exit_code = 1;
    }
  }
  outcome.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();

  outcome.counters = sink.snapshot();
  // Total CPU = this thread's self time plus everything the pool ran on the
  // experiment's behalf (chunks stolen by other workers included).
  outcome.cpu_s =
      static_cast<double>(sink.value("cpu_ns") + sink.value("pool.cpu_ns")) /
      1e9;
  outcome.params = ctx.params();
  outcome.output = buffer.str();
  return outcome;
}

std::string outcome_json(const RunOutcome& outcome, const std::string& git_rev,
                         bool smoke) {
  std::ostringstream js;
  js << "{\n";
  js << "  \"id\": \"" << json_escape(outcome.id) << "\",\n";
  js << "  \"status\": \"" << json_escape(outcome.status) << "\",\n";
  js << "  \"exit_code\": " << outcome.exit_code << ",\n";
  if (!outcome.error.empty()) {
    js << "  \"error\": \"" << json_escape(outcome.error) << "\",\n";
  }
  js << "  \"git_rev\": \"" << json_escape(git_rev) << "\",\n";
  js << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  js << "  \"wall_s\": " << outcome.wall_s << ",\n";
  js << "  \"cpu_s\": " << outcome.cpu_s << ",\n";
  js << "  \"params\": {";
  bool first = true;
  for (const auto& [name, value] : outcome.params) {
    js << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": \""
       << json_escape(value) << "\"";
    first = false;
  }
  js << (first ? "" : "\n  ") << "},\n";
  js << "  \"counters\": {";
  first = true;
  for (const auto& [name, value] : outcome.counters) {
    js << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  js << (first ? "" : "\n  ") << "}\n";
  js << "}\n";
  return js.str();
}

}  // namespace tempofair::bench
