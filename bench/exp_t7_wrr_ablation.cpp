// T7 -- ablation against the paper's backstory (Section 1.2): before this
// paper, the *age-weighted* variant of RR (machines in proportion to ages,
// cf. Edmonds-Im-Moseley [12]) was the analyzable algorithm for l2.  We
// compare plain RR, WRR and LAPS across speeds on the standard workloads.
// Expected: WRR tracks RR within a small factor everywhere (so the paper's
// message -- plain RR suffices -- has no empirical cost), and both dominate
// LAPS with small beta on the l2 norm at low speed.
#include "analysis/competitive.h"
#include "common.h"
#include "policies/registry.h"
#include "registry.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 100);
  const std::uint64_t seed = ctx.seed_param(7);

  ctx.banner("T7 (WRR ablation)",
             "plain RR performs comparably to the age-weighted WRR that "
             "earlier analyses required",
             "rr and wrr columns within a small factor across speeds");

  const auto workloads = bench::standard_workloads(n, 1, seed);
  const std::vector<double> speeds{1.0, 2.0, 4.4};
  const std::vector<std::string> specs{"rr", "wrr", "laps:0.25"};

  analysis::Table table(
      "T7: l2 ratio_vs_lb by policy and speed (m=1)",
      {"workload", "speed", "rr", "wrr", "laps:0.25", "lb_cert"});

  struct Row {
    std::string workload;
    double speed;
    double ratios[3];
    bool lb_cert;
  };
  std::vector<Row> rows(workloads.size() * speeds.size());

  ctx.pool().parallel_for(workloads.size(), [&](std::size_t w) {
    const auto& wl = workloads[w];
    lpsolve::OptBoundsOptions bo;
    bo.k = 2.0;
    const auto bounds = lpsolve::opt_bounds(wl.instance, bo);
    for (std::size_t s = 0; s < speeds.size(); ++s) {
      Row& row = rows[w * speeds.size() + s];
      row.workload = wl.name;
      row.speed = speeds[s];
      row.lb_cert = bounds.lb_certified;
      for (std::size_t p = 0; p < specs.size(); ++p) {
        auto policy = make_policy(specs[p]);
        analysis::RatioOptions opt;
        opt.k = 2.0;
        opt.speed = speeds[s];
        row.ratios[p] =
            analysis::measure_ratio(wl.instance, *policy, opt, bounds).ratio_vs_lb;
      }
    }
  });

  for (const Row& r : rows) {
    table.add_row({r.workload, analysis::Table::num(r.speed, 1),
                   analysis::Table::num(r.ratios[0], 2),
                   analysis::Table::num(r.ratios[1], 2),
                   analysis::Table::num(r.ratios[2], 2),
                   r.lb_cert ? "yes" : "NO"});
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "t7",
    "T7 (WRR ablation)",
    "plain RR performs comparably to age-weighted WRR",
    "n=100 seed=7",
    run,
}};

}  // namespace
