// F3 -- temporal fairness / the Silberschatz motivation: "minimize the
// variance of response time rather than the average".  Flow-time
// distribution statistics (mean, stddev, p95, p99, max) per policy on
// (a) the SRPT-starvation family and (b) a high-load Poisson stream.
// Expected: SRPT/SJF minimize the mean but blow up max flow on (a); RR's
// distribution is tighter (smaller stddev/max relative to its mean) -- the
// l2-norm trade-off the paper formalizes.
#include "common.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "policies/registry.h"
#include "registry.h"
#include "workload/adversarial.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

void run_block(bench::RunContext& ctx, const std::string& title,
               const Instance& inst) {
  const auto policies = builtin_policy_specs();
  analysis::Table table(title,
                        {"policy", "mean", "stddev", "p95", "p99", "max",
                         "l2_norm", "stddev/mean"});
  std::vector<FlowStats> stats(policies.size());
  ctx.pool().parallel_for(policies.size(), [&](std::size_t i) {
    RunRequest req;
    req.policy = policies[i];
    req.record_trace = false;
    stats[i] = tempofair::run(inst, req).stats;
  });
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& s = stats[i];
    table.add_row({policies[i], analysis::Table::num(s.mean, 2),
                   analysis::Table::num(s.stddev, 2),
                   analysis::Table::num(s.p95, 2),
                   analysis::Table::num(s.p99, 2),
                   analysis::Table::num(s.linf, 2),
                   analysis::Table::num(s.l2, 2),
                   analysis::Table::num(s.mean > 0 ? s.stddev / s.mean : 0, 3)});
  }
  ctx.emit(table);
}

int run(bench::RunContext& ctx) {
  const std::uint64_t seed = ctx.seed_param(10);

  ctx.banner("F3 (starvation / tail of flow times)",
             "mean-optimal policies starve individual jobs; RR keeps the "
             "distribution tight (the variance quote from [26])",
             "SRPT max-flow >> RR max-flow on the starvation family; "
             "RR stddev/mean among the smallest");

  run_block(ctx,
            "F3a: srpt_starvation(120 unit jobs + one size-2 job, zero slack)",
            workload::srpt_starvation(120, 2.0));

  run_block(ctx, "F3b: Poisson load .95, Pareto(1.8) sizes, m=1",
            workload::make_instance(workload::WorkloadSpec::poisson(
                250, 0.95, workload::ParetoSize{1.8, 0.5, 50.0}, seed)));
  return 0;
}

const bench::Registration reg{{
    "f3",
    "F3 (starvation / tail of flow times)",
    "mean-optimal policies starve; RR keeps the distribution tight",
    "seed=10",
    run,
}};

}  // namespace
