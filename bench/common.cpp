#include "common.h"

#include <ostream>

#include "workload/adversarial.h"

namespace tempofair::bench {

std::vector<NamedInstance> standard_workloads(std::size_t n, int machines,
                                              std::uint64_t seed) {
  workload::Rng rng(seed);
  std::vector<NamedInstance> out;
  out.push_back({"poisson-exp-0.7",
                 workload::poisson_load(n, machines, 0.7,
                                        workload::ExponentialSize{1.5}, rng),
                 machines});
  out.push_back({"poisson-exp-0.9",
                 workload::poisson_load(n, machines, 0.9,
                                        workload::ExponentialSize{1.5}, rng),
                 machines});
  out.push_back({"poisson-pareto-0.9",
                 workload::poisson_load(n, machines, 0.9,
                                        workload::ParetoSize{1.8, 0.5, 50.0}, rng),
                 machines});
  out.push_back({"poisson-bimodal-0.95",
                 workload::poisson_load(n, machines, 0.95,
                                        workload::BimodalSize{0.9, 1.0, 20.0}, rng),
                 machines});
  out.push_back({"adv-batch-stream",
                 workload::rr_l2_hard(std::max<std::size_t>(n / 8, 4)), machines});
  out.push_back({"adv-geometric", workload::geometric_levels(8), machines});
  return out;
}

void banner(std::ostream& out, const std::string& id, const std::string& claim,
            const std::string& expectation) {
  out << "\n#############################################################\n"
      << "# " << id << "\n"
      << "# Claim:    " << claim << "\n"
      << "# Expected: " << expectation << "\n"
      << "#############################################################\n";
}

void emit(std::ostream& out, const analysis::Table& table, bool csv) {
  if (csv) {
    table.print_csv(out);
  } else {
    table.print(out);
  }
}

}  // namespace tempofair::bench
