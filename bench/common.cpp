#include "common.h"

#include <ostream>

#include "workload/adversarial.h"
#include "workload/source.h"

namespace tempofair::bench {

std::vector<NamedInstance> standard_workloads(std::size_t n, int machines,
                                              std::uint64_t seed) {
  // Each named workload is its own spec with its own seed, so any one of
  // them can be re-created in isolation from the spec string alone.
  std::vector<NamedInstance> out;
  out.push_back({"poisson-exp-0.7",
                 workload::make_instance(workload::WorkloadSpec::poisson(
                     n, 0.7, workload::ExponentialSize{1.5}, seed, machines)),
                 machines});
  out.push_back({"poisson-exp-0.9",
                 workload::make_instance(workload::WorkloadSpec::poisson(
                     n, 0.9, workload::ExponentialSize{1.5}, seed + 1,
                     machines)),
                 machines});
  out.push_back({"poisson-pareto-0.9",
                 workload::make_instance(workload::WorkloadSpec::poisson(
                     n, 0.9, workload::ParetoSize{1.8, 0.5, 50.0}, seed + 2,
                     machines)),
                 machines});
  out.push_back({"poisson-bimodal-0.95",
                 workload::make_instance(workload::WorkloadSpec::poisson(
                     n, 0.95, workload::BimodalSize{0.9, 1.0, 20.0}, seed + 3,
                     machines)),
                 machines});
  out.push_back({"adv-batch-stream",
                 workload::rr_l2_hard(std::max<std::size_t>(n / 8, 4)), machines});
  out.push_back({"adv-geometric", workload::geometric_levels(8), machines});
  return out;
}

void banner(std::ostream& out, const std::string& id, const std::string& claim,
            const std::string& expectation) {
  out << "\n#############################################################\n"
      << "# " << id << "\n"
      << "# Claim:    " << claim << "\n"
      << "# Expected: " << expectation << "\n"
      << "#############################################################\n";
}

void emit(std::ostream& out, const analysis::Table& table, bool csv) {
  if (csv) {
    table.print_csv(out);
  } else {
    table.print(out);
  }
}

}  // namespace tempofair::bench
