// A4 -- adversary search: the tightest known empirical constants for
// Theorem 1's O(k/eps^k) bound, as certified lower bounds on RR's l_k
// competitive ratio.  For each k in {1, 2, 3} the optimizer (src/search/)
// perturbs the hard families and reports the best instance whose ratio is
// measured against an exact-rational certificate -- so every number in the
// table is a machine-checked lower bound on the true competitive ratio, not
// an estimate.  The check: the k=2 search must match or beat the hand-built
// Bansal-Pruhs batch+stream baseline (it starts from it, so falling below
// would mean a certification regression).
#include <string>
#include <vector>

#include "common.h"
#include "registry.h"
#include "search/adversary.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  ctx.banner("A4 (adversary search)",
             "searched instances certify lower bounds on RR's l_k ratio",
             "k=2 search >= batch+stream baseline; ratios certified exactly");

  const std::string policy = ctx.string_param("policy", "rr");
  const double speed = ctx.double_param("speed", 1.0);
  const std::uint64_t seed = ctx.seed_param(1);
  const std::size_t budget = ctx.size_param("budget", 400, 40);
  const std::size_t max_jobs = ctx.size_param("max-jobs", 12, 8);
  const std::vector<double> ks{1.0, 2.0, 3.0};

  struct Row {
    search::SearchResult result;
    search::CertifiedEval baseline;
  };
  std::vector<Row> rows(ks.size());
  ctx.pool().parallel_for(ks.size(), [&](std::size_t i) {
    search::SearchOptions so;
    so.policy = policy;
    so.k = ks[i];
    so.speed = speed;
    so.seed = seed;
    so.budget = budget;
    so.max_jobs = max_jobs;
    rows[i] = Row{search::search_adversary(so),
                  search::baseline_hard_family(so)};
  });

  analysis::Table table(
      "A4: tightest known empirical constants (certified lower bounds, " +
          policy + " at speed " + analysis::Table::num(speed, 2) + ")",
      {"k", "family", "jobs", "evals", "certs", "baseline", "best ratio"});
  bool ok = true;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const Row& r = rows[i];
    if (!r.result.found) {
      ok = false;
      continue;
    }
    table.add_row({analysis::Table::num(ks[i], 0), r.result.best.family,
                   std::to_string(r.result.best.sizes.size()),
                   std::to_string(r.result.stats.evals),
                   std::to_string(r.result.stats.certifications),
                   analysis::Table::num(r.baseline.ratio, 4),
                   analysis::Table::num(r.result.best.ratio, 4)});
  }
  ctx.emit(table);

  // The acceptance check: seeds are certified before mutation, so the k=2
  // result can only fall below the baseline if certification broke.
  const Row& k2 = rows[1];
  if (!k2.result.found || !k2.baseline.ok ||
      k2.result.best.ratio < k2.baseline.ratio * (1.0 - 1e-9)) {
    ctx.out() << "  CHECK FAILED: k=2 search below the hand-built baseline\n";
    ok = false;
  }
  return ok ? 0 : 1;
}

const bench::Registration reg{{
    "a4",
    "A4 (adversary search)",
    "searched instances certify lower bounds on RR's l_k ratio",
    "--policy rr --speed 1.0 --seed 1 --budget 400 --max-jobs 12",
    run,
}};

}  // namespace
