// F2 -- instantaneous fairness (the paper's motivation for RR): Jain index
// of the rate allocation, minimum fair-share fraction, service lag and the
// fraction of time some alive job is starved, per policy on a contended
// Poisson load.  Expected: RR scores a perfect 1.0 / 1.0 / 0 / 0 row by
// construction; size- and arrival-prioritizing policies starve.
#include "common.h"
#include "core/engine.h"
#include "core/fairness.h"
#include "policies/registry.h"
#include "registry.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 250);
  const std::uint64_t seed = ctx.seed_param(9);

  ctx.banner("F2 (instantaneous fairness)",
             "RR is instantaneously fair: equal shares at every moment",
             "RR row: jain=1, min_share=1, lag=0, starved=0; SRPT/SJF/"
             "FCFS starve under contention");

  const Instance inst = workload::make_instance(
      workload::WorkloadSpec::poisson(n, 0.9, workload::ExponentialSize{1.5}, seed));

  const auto policies = builtin_policy_specs();
  analysis::Table table(
      "F2: fairness metrics at speed 1, Poisson load .9, m=1",
      {"policy", "jain_avg", "jain_min", "min_share", "max_lag", "starved_frac"});

  std::vector<FairnessReport> reports(policies.size());
  ctx.pool().parallel_for(policies.size(), [&](std::size_t i) {
    RunRequest req;
    req.policy = policies[i];
    const Schedule s = tempofair::run(inst, req).schedule;
    reports[i] = fairness_report(s);
  });

  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& r = reports[i];
    table.add_row({policies[i], analysis::Table::num(r.jain_time_avg, 4),
                   analysis::Table::num(r.jain_min, 4),
                   analysis::Table::num(r.min_share_time_avg, 4),
                   analysis::Table::num(r.max_service_lag, 2),
                   analysis::Table::num(r.starved_time_fraction, 3)});
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "f2",
    "F2 (instantaneous fairness)",
    "RR is instantaneously fair: equal shares at every moment",
    "n=250 seed=9",
    run,
}};

}  // namespace
