// F6 -- the motivating application domain ([8,17,25]): round-robin packet
// scheduling on a shared link.  Eight backlogged flows with mixed packet
// sizes through DRR, SCFQ(WFQ) and FIFO.  Expected: DRR and WFQ deliver
// Jain ~1 byte-level fairness regardless of packet sizes (Shreedhar-
// Varghese's point); FIFO's shares track the offered bytes, not fairness.
#include "common.h"
#include "netsim/schedulers.h"
#include "registry.h"

using namespace tempofair;
using namespace tempofair::netsim;

namespace {

int run(bench::RunContext& ctx) {
  const std::uint64_t seed = ctx.seed_param(13);

  ctx.banner("F6 (packet fair queueing)",
             "RR-style packet schedulers give per-flow fair shares on a "
             "link (the practice the paper cites: [8,17,25])",
             "DRR/WFQ jain ~1 and min/max ~1; FIFO skewed");

  // Eight flows: packet sizes 1..8 (flow f uses size f+1), each flow
  // continuously backlogged: it offers far more than its fair share.
  workload::Rng rng(seed);
  std::vector<Packet> packets;
  const double horizon_bytes = 4000.0;
  for (FlowId f = 0; f < 8; ++f) {
    const double size = static_cast<double>(f + 1);
    const std::size_t count = static_cast<std::size_t>(horizon_bytes / size);
    for (std::size_t i = 0; i < count; ++i) {
      packets.push_back(Packet{f, size, 0.0});
    }
  }
  const double window = 8000.0;  // all flows backlogged well past this

  analysis::Table table(
      "F6: per-flow byte shares on one link, 8 backlogged flows, sizes 1..8",
      {"scheduler", "jain", "min/max", "f0_delay_mean", "f7_delay_mean"});

  struct Entry {
    std::string name;
    LinkSimResult result;
  };
  std::vector<Entry> entries;
  {
    DrrScheduler drr(8.0);
    entries.push_back({"drr", simulate_link(packets, drr, 1.0, window)});
  }
  {
    ScfqScheduler wfq;
    entries.push_back({"wfq(scfq)", simulate_link(packets, wfq, 1.0, window)});
  }
  {
    FifoScheduler fifo;
    entries.push_back({"fifo", simulate_link(packets, fifo, 1.0, window)});
  }

  for (const Entry& e : entries) {
    table.add_row({e.name, analysis::Table::num(e.result.jain_throughput, 4),
                   analysis::Table::num(e.result.min_max_share, 3),
                   analysis::Table::num(e.result.per_flow.at(0).mean_delay, 1),
                   analysis::Table::num(e.result.per_flow.at(7).mean_delay, 1)});
  }
  ctx.emit(table);

  // Weighted WFQ demo: weights 4:2:1:1 over four flows.
  analysis::Table wtable("F6b: weighted SCFQ shares (weights 4:2:1:1)",
                         {"flow", "weight", "bytes_in_window"});
  std::vector<Packet> wpackets;
  for (FlowId f = 0; f < 4; ++f) {
    for (int i = 0; i < 3000; ++i) wpackets.push_back(Packet{f, 1.0, 0.0});
  }
  std::map<FlowId, double> weights{{0, 4.0}, {1, 2.0}, {2, 1.0}, {3, 1.0}};
  ScfqScheduler wfq(weights);
  const auto wres = simulate_link(wpackets, wfq, 1.0, 4000.0);
  std::map<FlowId, double> in_window;
  for (const auto& rec : wres.records) {
    if (rec.departure <= 4000.0) in_window[rec.packet.flow] += rec.packet.size;
  }
  for (FlowId f = 0; f < 4; ++f) {
    wtable.add_row({std::to_string(f), analysis::Table::num(weights[f], 0),
                    analysis::Table::num(in_window[f], 0)});
  }
  ctx.emit(wtable);
  return 0;
}

const bench::Registration reg{{
    "f6",
    "F6 (packet fair queueing)",
    "RR-style packet schedulers give per-flow fair link shares",
    "seed=13",
    run,
}};

}  // namespace
