// T1 -- Theorem 1 specialized to the l2 norm: Round Robin at speed 4+eps is
// O(1)-competitive.  For each workload we bracket RR's l2 competitive ratio
// at speeds {1, 1.5, 2, 3, 4, 4.4}:
//   ratio_vs_proxy <= true ratio <= ratio_vs_lb
// with lb = max(LP/2, sum p^2) and proxy = min(SRPT, SJF) at speed 1.
// Expected shape: at speed >= 4 the ratio_vs_lb column is a small constant
// on every family; at speed 1 the adversarial families push it well above.
#include "analysis/competitive.h"
#include "common.h"
#include "policies/round_robin.h"
#include "registry.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 120);
  const std::uint64_t seed = ctx.seed_param(1);

  ctx.banner("T1 (Theorem 1, l2)",
             "RR is (4+eps)-speed O(1)-competitive for the l2 norm",
             "ratio_vs_lb bounded (small constant) at speed >= 4; "
             "large at speed 1 on adversarial families");

  const auto workloads = bench::standard_workloads(n, 1, seed);
  const std::vector<double> speeds{1.0, 1.5, 2.0, 3.0, 4.0, 4.4};

  analysis::Table table(
      "T1: RR l2 competitive-ratio bracket vs speed (m=1)",
      {"workload", "n", "speed", "rr_l2", "ratio_vs_lb", "lb_cert",
       "ratio_vs_proxy"});

  struct Row {
    std::string workload;
    std::size_t n;
    double speed;
    analysis::RatioMeasurement m;
  };
  std::vector<Row> rows(workloads.size() * speeds.size());

  ctx.pool().parallel_for(workloads.size(), [&](std::size_t w) {
    const auto& wl = workloads[w];
    lpsolve::OptBoundsOptions bo;
    bo.k = 2.0;
    const auto bounds = lpsolve::opt_bounds(wl.instance, bo);
    for (std::size_t s = 0; s < speeds.size(); ++s) {
      RoundRobin rr;
      analysis::RatioOptions opt;
      opt.k = 2.0;
      opt.speed = speeds[s];
      rows[w * speeds.size() + s] =
          Row{wl.name, wl.instance.n(), speeds[s],
              analysis::measure_ratio(wl.instance, rr, opt, bounds)};
    }
  });

  for (const Row& r : rows) {
    table.add_row({r.workload, std::to_string(r.n),
                   analysis::Table::num(r.speed, 1),
                   analysis::Table::num(r.m.cost_norm),
                   analysis::Table::num(r.m.ratio_vs_lb, 2),
                   r.m.lb_certified ? "yes" : "NO",
                   analysis::Table::num(r.m.ratio_vs_proxy, 2)});
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "t1",
    "T1 (Theorem 1, l2)",
    "RR is (4+eps)-speed O(1)-competitive for the l2 norm",
    "n=120 seed=1",
    run,
}};

}  // namespace
