// T5 -- Theorem 1 on multiple identical machines: the guarantee does not
// degrade with m.  We fix the per-machine load and sweep m in {1,2,4,8,16},
// measuring RR's l2 ratio bracket at speed 4.4 and the dual certificate.
// Expected: ratio_vs_lb roughly flat in m (the paper's "furthermore, this
// result holds even when there are multiple identical machines").
#include "analysis/competitive.h"
#include "analysis/dualfit.h"
#include "common.h"
#include "core/engine.h"
#include "harness/sweep.h"
#include "policies/round_robin.h"
#include "registry.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n_per_m = ctx.size_param("n", 40);
  const std::uint64_t seed = ctx.seed_param(5);
  const double eps = 0.05;

  ctx.banner("T5 (multiple machines)",
             "Theorem 1 holds on m identical machines",
             "l2 ratio bracket flat in m at speed 4.4; certificates valid");

  const std::vector<int> machine_counts{1, 2, 4, 8, 16};

  analysis::Table table(
      "T5: RR l2 ratio and certificate vs machine count (speed 4.4, load .9)",
      {"m", "n", "rr_l2", "ratio_vs_lb", "lb_cert", "ratio_vs_proxy",
       "certified"});

  struct Row {
    int m;
    std::size_t n;
    double rr_l2, vs_lb, vs_proxy;
    bool lb_cert, certified;
  };

  std::vector<std::size_t> indices(machine_counts.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  const auto rows = harness::run_sweep(
      ctx.pool(), indices, [&](std::size_t i) {
        const int m = machine_counts[i];
        const Instance inst = workload::make_instance(
            workload::WorkloadSpec::poisson(
                n_per_m * static_cast<std::size_t>(m), 0.9,
                workload::ExponentialSize{1.5}, seed + i, m));

        RoundRobin rr;
        analysis::RatioOptions ropt;
        ropt.k = 2.0;
        ropt.machines = m;
        ropt.speed = 4.4;
        // The LP grows with n = 40*m; past m = 4 fall back to the trivial
        // lower bound (looser but valid -- ratio_vs_lb is then an
        // over-estimate).
        ropt.with_lp = m <= 4;
        const auto meas = analysis::measure_ratio(inst, rr, ropt);

        RoundRobin rr2;
        RunRequest req;
        req.machines = m;
        req.speed = analysis::theorem1_speed(2.0, eps);
        const Schedule s = tempofair::run(inst, rr2, req).schedule;
        analysis::DualFitOptions dopt;
        dopt.k = 2.0;
        dopt.eps = eps;
        const bool certified =
            analysis::dual_fit_certificate(s, dopt).certificate_valid();

        return Row{m, inst.n(), meas.cost_norm, meas.ratio_vs_lb,
                   meas.ratio_vs_proxy, meas.lb_certified, certified};
      });

  for (const Row& r : rows) {
    table.add_row({std::to_string(r.m), std::to_string(r.n),
                   analysis::Table::num(r.rr_l2),
                   analysis::Table::num(r.vs_lb, 2),
                   r.lb_cert ? "yes" : "NO",
                   analysis::Table::num(r.vs_proxy, 2),
                   r.certified ? "yes" : "NO"});
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "t5",
    "T5 (multiple machines)",
    "Theorem 1 holds on m identical machines",
    "n=40 seed=5",
    run,
}};

}  // namespace
