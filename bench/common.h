// Shared scaffolding for the registered experiments (see registry.h).
//
// Every experiment:
//   * prints a short banner mapping it to its EXPERIMENTS.md entry,
//   * honors --csv (machine-readable payload) and --seed <n>,
//   * builds its workloads through the helpers here so all experiments draw
//     from the same, documented instance families.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "core/instance.h"
#include "workload/generators.h"
#include "workload/rng.h"

namespace tempofair::bench {

/// A named instance plus the machine count it was calibrated for.
struct NamedInstance {
  std::string name;
  Instance instance;
  int machines = 1;
};

/// The standard mixed workload set used by T1/T2/T7/F4: Poisson loads at
/// several utilizations and size distributions, plus the adversarial
/// families.  `n` controls the stream lengths.
[[nodiscard]] std::vector<NamedInstance> standard_workloads(std::size_t n,
                                                            int machines,
                                                            std::uint64_t seed);

/// Prints the experiment banner (id, claim, expected shape) to `out`.
void banner(std::ostream& out, const std::string& id, const std::string& claim,
            const std::string& expectation);

/// Prints `table` to `out`, as CSV when `csv` is set.
void emit(std::ostream& out, const analysis::Table& table, bool csv);

}  // namespace tempofair::bench
