// F4 -- the speed-ratio crossover for the l2 norm: sweeping the speed from
// 1 to 5, where does RR's ratio settle?  The paper's positive result kicks
// in at 4+eps; the cited lower bound rules out O(1) below 3/2.  We plot the
// worst ratio over the adversarial families and the average over the random
// families.  Expected: a curve that is high near speed 1, drops steeply
// through [1.5, 3], and is flat (and small) beyond 4.
#include <algorithm>

#include "analysis/competitive.h"
#include "common.h"
#include "harness/sweep.h"
#include "policies/round_robin.h"
#include "registry.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 100);
  const std::uint64_t seed = ctx.seed_param(11);

  ctx.banner("F4 (speed crossover, l2)",
             "RR's l2 ratio as a function of speed: high below 3/2, "
             "flat beyond 4+eps",
             "monotone decreasing curve flattening after ~4");

  const auto workloads = bench::standard_workloads(n, 1, seed);
  const std::vector<double> speeds = harness::linspace(1.0, 5.0, 17);

  // Precompute bounds once per workload.
  std::vector<lpsolve::OptBounds> bounds(workloads.size());
  ctx.pool().parallel_for(workloads.size(), [&](std::size_t w) {
    lpsolve::OptBoundsOptions bo;
    bo.k = 2.0;
    bounds[w] = lpsolve::opt_bounds(workloads[w].instance, bo);
  });

  analysis::Table table("F4: RR l2 ratio_vs_lb by speed (m=1)",
                        {"speed", "worst_adversarial", "mean_random", "max_all"});

  struct Point {
    double worst_adv = 0.0, mean_random = 0.0, max_all = 0.0;
  };
  const auto points = harness::run_sweep(
      ctx.pool(), speeds, [&](const double speed) {
        Point p;
        double random_sum = 0.0;
        int random_count = 0;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
          RoundRobin rr;
          analysis::RatioOptions opt;
          opt.k = 2.0;
          opt.speed = speed;
          const double ratio =
              analysis::measure_ratio(workloads[w].instance, rr, opt, bounds[w])
                  .ratio_vs_lb;
          const bool adversarial = workloads[w].name.rfind("adv-", 0) == 0;
          if (adversarial) {
            p.worst_adv = std::max(p.worst_adv, ratio);
          } else {
            random_sum += ratio;
            ++random_count;
          }
          p.max_all = std::max(p.max_all, ratio);
        }
        p.mean_random = random_sum / std::max(random_count, 1);
        return p;
      });

  for (std::size_t si = 0; si < speeds.size(); ++si) {
    table.add_row({analysis::Table::num(speeds[si], 2),
                   analysis::Table::num(points[si].worst_adv, 2),
                   analysis::Table::num(points[si].mean_random, 2),
                   analysis::Table::num(points[si].max_all, 2)});
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "f4",
    "F4 (speed crossover, l2)",
    "RR's l2 ratio vs speed: high below 3/2, flat beyond 4+eps",
    "n=100 seed=11",
    run,
}};

}  // namespace
