// Perf measurement harness behind tools/perf_gate and BENCH_fastpath.json.
//
// google-benchmark (bench_perf.cpp) is great for interactive microbenchmark
// work but awkward as a CI gate: its adaptive iteration counts make run
// time unpredictable and its JSON says nothing about how noisy the machine
// was.  This harness is the boring, auditable alternative: run each case a
// fixed number of times, report the median wall time plus the median
// absolute deviation (MAD -- a robust noise estimate that one scheduling
// hiccup cannot inflate), and serialize to a small stable JSON schema
// ("tempofair-perf-v1") that a committed baseline can be diffed against
// with explicit relative tolerances.
//
// Verdict model (compare_reports):
//   FAIL  median grew past fail_ratio (default 2x), or a baseline case
//         vanished from the current report -- the gate exits nonzero.
//   WARN  median grew past warn_ratio + measured noise; visible in the
//         report but does not fail CI (perf-smoke runs on shared runners).
//   OK    within tolerance (improvements are reported as OK with ratio < 1).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace tempofair::perf {

/// One measured case: `repeats` timed runs of the same body.
struct CaseResult {
  std::string name;
  std::size_t repeats = 0;
  double median_s = 0.0;
  double mad_s = 0.0;  ///< median absolute deviation of the run times
  double min_s = 0.0;
  double max_s = 0.0;
  /// Case-reported facts (jobs, events, derived speedups, ...); carried
  /// through the JSON verbatim.
  std::map<std::string, double> stats;
};

/// Times `body` `repeats` times (after one untimed warmup run when
/// `warmup` is true) and fills median/MAD/min/max.  `repeats` must be >= 1.
[[nodiscard]] CaseResult measure(const std::string& name, std::size_t repeats,
                                 const std::function<void()>& body,
                                 bool warmup = true);

/// A perf report: what BENCH_fastpath.json holds.
struct Report {
  std::string schema = "tempofair-perf-v1";
  std::string git_rev = "unknown";
  std::vector<CaseResult> cases;

  [[nodiscard]] const CaseResult* find(const std::string& name) const;
};

/// Serializes `report` as pretty-printed JSON (stable key order).
[[nodiscard]] std::string report_json(const Report& report);
/// Parses report_json output (or a hand-edited baseline).  Throws
/// std::invalid_argument on malformed JSON or a wrong/missing schema tag.
[[nodiscard]] Report parse_report(const std::string& json);

// --- gate comparison --------------------------------------------------------

struct GateOptions {
  /// WARN when current/baseline median exceeds this plus measured noise.
  double warn_ratio = 1.25;
  /// FAIL (nonzero exit) only past this: perf-smoke runs on noisy shared
  /// CI runners, so the hard gate is deliberately generous.
  double fail_ratio = 2.0;
};

struct CaseVerdict {
  std::string name;
  std::string verdict;  // "OK" | "WARN" | "FAIL" | "NEW"
  double baseline_s = 0.0;
  double current_s = 0.0;
  double ratio = 0.0;   // current / baseline (0 when not comparable)
  std::string note;
};

struct GateResult {
  std::vector<CaseVerdict> verdicts;
  bool failed = false;

  [[nodiscard]] const CaseVerdict* find(const std::string& name) const;
};

/// Compares `current` against `baseline` case by case (see the verdict
/// model above).  Baseline cases missing from `current` FAIL; cases only in
/// `current` are reported as NEW and never fail.
[[nodiscard]] GateResult compare_reports(const Report& baseline,
                                         const Report& current,
                                         const GateOptions& options = {});

/// Checks the budgets a report declares about itself: a case stat named
/// "X_budget" asserts that the same case also reports stat "X" with
/// X <= X_budget.  Unlike compare_reports this needs no committed baseline,
/// so it gates *ratios measured within one run* -- e.g. the sampled
/// invariant-mode overhead case records overhead_vs_inv_off (its median
/// over the invariants-off median) next to overhead_vs_inv_off_budget, and
/// a breach fails perf_gate even on a machine with no baseline file.
/// A declared budget whose stat is missing also FAILs.  In each verdict,
/// baseline_s holds the budget and current_s the measured stat.
[[nodiscard]] GateResult self_gate(const Report& report);

/// Human-readable self-gate table (same shape as format_gate).
[[nodiscard]] std::string format_self_gate(const GateResult& result);

/// Human-readable verdict table, one line per case plus a summary line.
[[nodiscard]] std::string format_gate(const GateResult& result,
                                      const GateOptions& options);

/// compare_reports + format_gate serialized as JSON (the CI artifact).
[[nodiscard]] std::string gate_json(const GateResult& result,
                                    const GateOptions& options);

}  // namespace tempofair::perf
