// Performance microbenchmarks (google-benchmark): simulator event throughput
// per policy, scaling in n and m, and the LP solver's cost.  These guard the
// engine's O(events * n_alive) behaviour -- regressions here make the
// experiment suite unusable at scale.
#include <benchmark/benchmark.h>

#include "analysis/dualfit.h"
#include "core/engine.h"
#include "lpsolve/flowtime_lp.h"
#include "policies/registry.h"
#include "workload/generators.h"
#include "workload/source.h"

namespace {

using namespace tempofair;

Instance make_instance(std::size_t n, int machines, std::uint64_t seed) {
  return workload::make_instance(workload::WorkloadSpec::poisson(
      n, 0.9, workload::ExponentialSize{1.5}, seed, machines));
}

// FastForward-capable policies silently take the epoch-coalesced fast path
// by default; benchmark both routes explicitly so a regression in either
// one is attributable (tools/perf_gate tracks the same pairs against
// BENCH_fastpath.json).
void BM_SimulatePolicy(benchmark::State& state, const char* spec,
                       bool fast_path) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, 1, 42);
  RunRequest req;
  req.record_trace = false;
  req.use_fast_path = fast_path;
  for (auto _ : state) {
    auto policy = make_policy(spec);
    benchmark::DoNotOptimize(tempofair::run(inst, *policy, req).schedule);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_SimulateRrMultiMachine(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const Instance inst = make_instance(2000, m, 7);
  RunRequest req;
  req.record_trace = false;
  req.machines = m;
  for (auto _ : state) {
    auto policy = make_policy("rr");
    benchmark::DoNotOptimize(tempofair::run(inst, *policy, req).schedule);
  }
}

void BM_SimulateRrWithTrace(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, 1, 42);
  RunRequest req;
  for (auto _ : state) {
    auto policy = make_policy("rr");
    benchmark::DoNotOptimize(tempofair::run(inst, *policy, req).schedule);
  }
}

// End-to-end sim -> dual-fit certificate pipeline at heavy traffic (speed
// 1.0, load 0.9), the configuration BENCH_trace_arena.json tracks.  Counters
// report the trace arena's footprint: final/peak column bytes and flat
// (interval, job) entries.
void BM_PipelineSimDualfit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, 1, 42);
  RunRequest req;
  analysis::DualFitOptions dopt;
  dopt.k = 2.0;
  dopt.eps = 0.1;
  EngineCore core;  // reused across iterations so trace buffers persist
  for (auto _ : state) {
    auto policy = make_policy("rr");
    const Schedule s = core.run(inst, *policy, req).schedule;
    benchmark::DoNotOptimize(analysis::dual_fit_certificate(s, dopt));
    state.counters["trace_bytes"] = static_cast<double>(s.trace_memory_bytes());
    state.counters["trace_peak_bytes"] =
        static_cast<double>(s.trace().peak_memory_bytes());
    state.counters["entries"] = static_cast<double>(s.trace().entry_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

// Per-job traced-work queries via the per-job CSR index: O(intervals
// containing j) per query after a one-time O(entries) index build, where the
// AoS layout scanned the whole trace per job.
void BM_TracedWorkPerJob(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, 1, 42);
  RunRequest req;
  auto policy = make_policy("rr");
  const Schedule s = tempofair::run(inst, *policy, req).schedule;
  for (auto _ : state) {
    double total = 0.0;
    for (JobId j = 0; j < inst.n(); ++j) total += s.traced_work(j);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_FlowtimeLp(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, 1, 11);
  lpsolve::FlowtimeLpOptions opt;
  opt.k = 2.0;
  opt.slot = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpsolve::solve_flowtime_lp(inst, opt));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_SimulatePolicy, rr_fast, "rr", true)
    ->Arg(500)->Arg(2000)->Arg(8000);
BENCHMARK_CAPTURE(BM_SimulatePolicy, rr_event_loop, "rr", false)
    ->Arg(500)->Arg(2000)->Arg(8000);
BENCHMARK_CAPTURE(BM_SimulatePolicy, srpt_fast, "srpt", true)
    ->Arg(500)->Arg(2000)->Arg(8000);
BENCHMARK_CAPTURE(BM_SimulatePolicy, srpt_event_loop, "srpt", false)
    ->Arg(500)->Arg(2000)->Arg(8000);
// No FastForward capability: both routes are the generic loop.
BENCHMARK_CAPTURE(BM_SimulatePolicy, setf, "setf", true)->Arg(500)->Arg(2000);
BENCHMARK_CAPTURE(BM_SimulatePolicy, wrr, "wrr", true)->Arg(500)->Arg(2000);
BENCHMARK_CAPTURE(BM_SimulatePolicy, qrr, "qrr:0.5", true)->Arg(500)->Arg(2000);
BENCHMARK_CAPTURE(BM_SimulatePolicy, mlfq, "mlfq", true)->Arg(500)->Arg(2000);
BENCHMARK(BM_SimulateRrMultiMachine)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_SimulateRrWithTrace)->Arg(500)->Arg(2000);
BENCHMARK(BM_PipelineSimDualfit)
    ->Arg(2000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TracedWorkPerJob)->Arg(2000)->Arg(20000);
BENCHMARK(BM_FlowtimeLp)->Arg(30)->Arg(60)->Unit(benchmark::kMillisecond);
