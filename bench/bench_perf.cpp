// Performance microbenchmarks (google-benchmark): simulator event throughput
// per policy, scaling in n and m, and the LP solver's cost.  These guard the
// engine's O(events * n_alive) behaviour -- regressions here make the
// experiment suite unusable at scale.
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "lpsolve/flowtime_lp.h"
#include "policies/registry.h"
#include "workload/generators.h"

namespace {

using namespace tempofair;

Instance make_instance(std::size_t n, int machines, std::uint64_t seed) {
  workload::Rng rng(seed);
  return workload::poisson_load(n, machines, 0.9,
                                workload::ExponentialSize{1.5}, rng);
}

void BM_SimulatePolicy(benchmark::State& state, const char* spec) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, 1, 42);
  EngineOptions eo;
  eo.record_trace = false;
  for (auto _ : state) {
    auto policy = make_policy(spec);
    benchmark::DoNotOptimize(simulate(inst, *policy, eo));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_SimulateRrMultiMachine(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const Instance inst = make_instance(2000, m, 7);
  EngineOptions eo;
  eo.record_trace = false;
  eo.machines = m;
  for (auto _ : state) {
    auto policy = make_policy("rr");
    benchmark::DoNotOptimize(simulate(inst, *policy, eo));
  }
}

void BM_SimulateRrWithTrace(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, 1, 42);
  EngineOptions eo;
  eo.record_trace = true;
  for (auto _ : state) {
    auto policy = make_policy("rr");
    benchmark::DoNotOptimize(simulate(inst, *policy, eo));
  }
}

void BM_FlowtimeLp(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(n, 1, 11);
  lpsolve::FlowtimeLpOptions opt;
  opt.k = 2.0;
  opt.slot = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpsolve::solve_flowtime_lp(inst, opt));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_SimulatePolicy, rr, "rr")->Arg(500)->Arg(2000)->Arg(8000);
BENCHMARK_CAPTURE(BM_SimulatePolicy, srpt, "srpt")->Arg(500)->Arg(2000)->Arg(8000);
BENCHMARK_CAPTURE(BM_SimulatePolicy, setf, "setf")->Arg(500)->Arg(2000);
BENCHMARK_CAPTURE(BM_SimulatePolicy, wrr, "wrr")->Arg(500)->Arg(2000);
BENCHMARK_CAPTURE(BM_SimulatePolicy, qrr, "qrr:0.5")->Arg(500)->Arg(2000);
BENCHMARK_CAPTURE(BM_SimulatePolicy, mlfq, "mlfq")->Arg(500)->Arg(2000);
BENCHMARK(BM_SimulateRrMultiMachine)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_SimulateRrWithTrace)->Arg(500)->Arg(2000);
BENCHMARK(BM_FlowtimeLp)->Arg(30)->Arg(60)->Unit(benchmark::kMillisecond);
