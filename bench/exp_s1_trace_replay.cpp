// S1 -- trace ingestion round-trip and replay determinism.  A workload
// written to disk (CSV and binary columnar) must read back byte-identical,
// and replaying it through the generic event loop and the epoch-coalesced
// fast path must produce bitwise-equal schedules under the exhaustive
// invariant battery.  This is the end-to-end guarantee that lets real
// traces stand in for generated workloads everywhere a spec string is
// accepted.
#include <cstdio>
#include <string>

#include "common.h"
#include "core/engine.h"
#include "registry.h"
#include "workload/source.h"
#include "workload/trace_io.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::uint64_t seed = ctx.seed_param(51);
  const std::size_t n = ctx.size_param("n", 2000);
  // --trace PATH replays an external trace; empty generates one.
  const std::string trace = ctx.string_param("trace", "");

  ctx.banner("S1 (trace replay determinism)",
             "a trace survives CSV<->binary round trips byte-identically and "
             "replays bitwise-equal on the event loop and the fast path",
             "0 mismatched completions, 0 invariant violations");

  Instance inst = trace.empty()
                      ? workload::make_instance(workload::WorkloadSpec::poisson(
                            n, 0.9, workload::ParetoSize{1.8, 0.5, 100.0},
                            seed))
                      : workload::read_trace_file(trace);

  // Round-trip: instance -> csv -> instance -> binary -> instance, all jobs
  // bitwise equal.
  const std::string csv_path = "s1_trace.csv";
  const std::string bin_path = "s1_trace.bin";
  workload::write_csv_file(inst, csv_path);
  const Instance from_csv = workload::read_csv_file(csv_path);
  workload::write_binary_file(from_csv, bin_path);
  const Instance from_bin = workload::read_binary_file(bin_path);
  std::size_t mismatched_jobs = 0;
  for (JobId i = 0; i < static_cast<JobId>(inst.n()); ++i) {
    const Job& a = from_csv.job(i);
    const Job& b = from_bin.job(i);
    if (a.release != b.release || a.size != b.size || a.weight != b.weight) {
      ++mismatched_jobs;
    }
  }

  // Replay: event loop vs fast path, exhaustive invariants on both.
  analysis::Table table("S1: replay of " + inst.summary(),
                        {"policy", "path", "l2", "violations", "bitwise"});
  int failures = static_cast<int>(mismatched_jobs);
  for (const std::string& policy : {std::string("rr"), std::string("srpt")}) {
    RunRequest req;
    req.policy = policy;
    req.invariants = InvariantMode::kExhaustive;
    req.workload = workload::WorkloadSpec::trace(bin_path).to_string();

    RunRequest slow = req;
    slow.use_fast_path = false;
    const RunResult loop = workload::run_spec(slow);
    const RunResult fast = workload::run_spec(req);

    std::size_t mismatch = 0;
    for (JobId i = 0; i < static_cast<JobId>(inst.n()); ++i) {
      if (loop.schedule.completion(i) != fast.schedule.completion(i)) {
        ++mismatch;
      }
    }
    const std::size_t violations =
        loop.invariants.violations + fast.invariants.violations;
    failures += static_cast<int>(mismatch + violations);
    table.add_row({policy, "loop vs fast",
                   analysis::Table::num(fast.stats.l2),
                   std::to_string(violations),
                   mismatch == 0 ? "equal" : std::to_string(mismatch)});
  }
  ctx.emit(table);
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
  if (mismatched_jobs > 0) {
    ctx.out() << "FAIL: " << mismatched_jobs
              << " jobs changed across the CSV/binary round trip\n";
  }
  return failures == 0 ? 0 : 1;
}

const bench::Registration reg{{
    "s1",
    "S1 (trace replay determinism)",
    "trace round trips are byte-identical and replays are bitwise equal",
    "seed=51 n=2000 trace=<generated>",
    run,
}};

}  // namespace
