// A2 (ablation) -- discretization of the Section 3.1 LP: how the lower
// bound tightens as the slot width shrinks, against the trivial bound and
// the SRPT/SJF proxy, with solve cost.  Justifies the default auto-grid
// (<= 600 slots) used by every ratio bracket in the suite.
// Expected: monotone increase of the LP value as slots shrink, with
// diminishing returns well before the default grid resolution; cost grows
// superlinearly.
#include <chrono>

#include "common.h"
#include "lpsolve/lower_bounds.h"
#include "registry.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 60);

  ctx.banner("A2 (LP resolution ablation)",
             "LP lower bound vs slot width: tightness and solve cost",
             "monotone in resolution, diminishing returns; default grid "
             "captures most of the bound");

  const Instance inst = workload::make_instance(
      workload::WorkloadSpec::poisson(n, 0.9, workload::UniformSize{0.5, 2.0}, 31));

  lpsolve::OptBoundsOptions base;
  base.k = 2.0;
  base.with_lp = false;
  const auto nolp = lpsolve::opt_bounds(inst, base);

  analysis::Table table(
      "A2: LP/2 vs slot width (k=2, n=" + std::to_string(n) +
          "); trivial_lb=" + analysis::Table::num(nolp.trivial_lb) +
          ", proxy=" + analysis::Table::num(nolp.proxy_ub),
      {"slot", "slots", "lp_half", "lp_half/proxy", "certified", "cert_gap",
       "solve_ms"});

  for (double slot : {8.0, 4.0, 2.0, 1.0, 0.5, 0.25, 0.125}) {
    lpsolve::FlowtimeLpOptions opt;
    opt.k = 2.0;
    opt.slot = slot;
    const auto start = std::chrono::steady_clock::now();
    const auto r = lpsolve::solve_flowtime_lp(inst, opt);
    const auto ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    // Relative slack between the float LP value and its exact-rational dual
    // certificate: ~0 means the certified bound gives up essentially nothing.
    const double cert_gap =
        r.certificate.certified && r.lp_value > 0.0
            ? (r.lp_value - r.certificate.value) / r.lp_value
            : 1.0;
    table.add_row({analysis::Table::num(slot), std::to_string(r.slots),
                   analysis::Table::num(r.opt_power_lb),
                   analysis::Table::num(r.opt_power_lb / nolp.proxy_ub, 3),
                   r.certificate.certified ? "yes" : "NO",
                   analysis::Table::num(cert_gap, 4),
                   analysis::Table::num(ms, 1)});
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "a2",
    "A2 (LP resolution ablation)",
    "LP lower bound vs slot width: tightness and solve cost",
    "n=60 (fixed seed 31)",
    run,
}};

}  // namespace
