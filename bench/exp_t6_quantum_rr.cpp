// T6 -- from the theorem's idealized processor-sharing RR to the deployable
// time-slicing RR of operating systems: sweep the quantum (relative to the
// mean job size) and the context-switch cost, and measure the l2 distance to
// ideal RR.  Expected: qrr -> ideal RR as quantum -> 0 with zero switch
// cost; with a switch cost, an interior quantum is optimal (the classic
// OS-design trade-off, cf. Silberschatz et al.).
#include "common.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "policies/quantum_rr.h"
#include "policies/round_robin.h"
#include "registry.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 200);
  const std::uint64_t seed = ctx.seed_param(6);

  ctx.banner("T6 (quantum RR -> ideal RR)",
             "ideal processor-sharing RR is the limit of OS time-slice RR",
             "l2/ideal -> 1 as quantum -> 0 (cs=0); interior optimum with "
             "cs > 0");

  const Instance inst = workload::make_instance(
      workload::WorkloadSpec::poisson(n, 0.85, workload::UniformSize{0.5, 2.0}, seed));

  RunRequest req;
  req.record_trace = false;
  RoundRobin ideal;
  const double ideal_l2 = tempofair::run(inst, ideal, req).stats.l2;

  const std::vector<double> quanta{10.0, 3.0, 1.0, 0.3, 0.1, 0.03, 0.01};
  const std::vector<double> switch_costs{0.0, 0.005, 0.02};

  analysis::Table table("T6: quantum RR l2 relative to ideal RR (mean size 1.25)",
                        {"quantum", "switch_cost", "l2", "l2/ideal_rr"});

  struct Row {
    double q, cs, l2;
  };
  std::vector<Row> rows(quanta.size() * switch_costs.size());
  ctx.pool().parallel_for(rows.size(), [&](std::size_t i) {
    const double q = quanta[i / switch_costs.size()];
    const double cs = switch_costs[i % switch_costs.size()];
    QuantumRoundRobin qrr(q, cs);
    RunRequest inner;
    inner.record_trace = false;
    rows[i] = Row{q, cs, tempofair::run(inst, qrr, inner).stats.l2};
  });

  for (const Row& r : rows) {
    table.add_row({analysis::Table::num(r.q), analysis::Table::num(r.cs),
                   analysis::Table::num(r.l2),
                   analysis::Table::num(r.l2 / ideal_l2, 3)});
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "t6",
    "T6 (quantum RR -> ideal RR)",
    "ideal processor-sharing RR is the limit of OS time-slice RR",
    "n=200 seed=6",
    run,
}};

}  // namespace
