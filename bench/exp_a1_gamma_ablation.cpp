// A1 (ablation) -- how much slack does the analysis constant gamma carry?
// The paper sets gamma = k(k/eps)^k, large enough for Lemma 3 and the
// underloaded bound (3).  We scale gamma down by factors of 2 and report
// when the dual certificate loses feasibility, on random and adversarial
// instances, at the theorem speed and at speed 1.
// Expected: the certificate stays feasible far below the paper's gamma on
// typical instances (the analysis is worst-case); at speed 1 feasibility
// dies earlier -- the gap IS the speed requirement.
#include <cmath>

#include "analysis/dualfit.h"
#include "common.h"
#include "core/engine.h"
#include "policies/round_robin.h"
#include "registry.h"
#include "workload/adversarial.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

Schedule run_rr(const Instance& inst, double speed) {
  RoundRobin rr;
  RunRequest req;
  req.speed = speed;
  return tempofair::run(inst, rr, req).schedule;
}

int run(bench::RunContext& ctx) {
  const double k = 2.0, eps = 0.05;
  const double paper_gamma = k * std::pow(k / eps, k);

  ctx.banner("A1 (gamma ablation)",
             "sensitivity of the dual certificate to the analysis "
             "constant gamma = k(k/eps)^k",
             "feasible well below the paper's gamma on concrete "
             "instances; earlier failure at speed 1");

  struct Case {
    std::string name;
    Instance inst;
  };
  std::vector<Case> cases;
  cases.push_back({"poisson-0.95",
                   workload::make_instance(workload::WorkloadSpec::poisson(
                       80, 0.95, workload::ExponentialSize{1.5}, 21))});
  cases.push_back({"adv-geometric", workload::geometric_levels(8)});
  cases.push_back({"adv-batch-stream", workload::rr_l2_hard(25)});

  analysis::Table table(
      "A1: smallest gamma/paper_gamma (powers of 1/2) keeping the dual "
      "feasible (k=2, eps=.05)",
      {"workload", "speed", "min_feasible_gamma_frac", "implied_l2_at_paper_gamma"});

  for (const Case& c : cases) {
    for (double speed : {1.0, analysis::theorem1_speed(k, eps)}) {
      const Schedule s = run_rr(c.inst, speed);
      double frac = 1.0;
      double last_feasible = -1.0;
      double implied_at_paper = 0.0;
      for (int step = 0; step <= 14; ++step) {
        analysis::DualFitOptions opt;
        opt.k = k;
        opt.eps = eps;
        opt.gamma = paper_gamma * frac;
        const auto cert = analysis::dual_fit_certificate(s, opt);
        if (step == 0) implied_at_paper = cert.implied_lk_ratio;
        if (cert.feasible) {
          last_feasible = frac;
        } else {
          break;
        }
        frac /= 2.0;
      }
      table.add_row({c.name, analysis::Table::num(speed, 1),
                     last_feasible < 0 ? std::string("infeasible at paper gamma")
                                       : analysis::Table::num(last_feasible),
                     analysis::Table::num(implied_at_paper, 1)});
    }
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "a1",
    "A1 (gamma ablation)",
    "sensitivity of the dual certificate to gamma = k(k/eps)^k",
    "(fixed seed 21)",
    run,
}};

}  // namespace
