// T8 -- LP/duality toolkit self-check.  Four independent solvers/bounds
// must agree in the directions theory dictates:
//   (1) MCMF and dense simplex solve the SAME discretized LP: equal values.
//   (2) lower bounds <= proxy upper bound (lb <= OPT^k <= proxy).
//   (3) weak duality: the dual-fitting objective <= gamma * LP value.
//   (4) the exact-rational certificate layer certifies both the simplex
//       basis and the MCMF dual, at values <= the LP optimum.
// Expected: zero violations across random instances -- this certifies the
// machinery every other experiment relies on.
#include <cmath>

#include "analysis/dualfit.h"
#include "common.h"
#include "core/engine.h"
#include "lpsolve/certify.h"
#include "lpsolve/flowtime_lp.h"
#include "lpsolve/lower_bounds.h"
#include "policies/round_robin.h"
#include "registry.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::uint64_t seed = ctx.seed_param(8);
  const int trials = static_cast<int>(ctx.size_param("trials", 8, 2));

  ctx.banner("T8 (LP/duality self-check)",
             "MCMF == simplex on the Section 3.1 LP; lb <= proxy; weak "
             "duality for the dual certificate; exact-rational certificates "
             "for both LP solvers",
             "every check column 'ok'");

  analysis::Table table(
      "T8: solver cross-validation on random instances (k=2)",
      {"trial", "n", "mcmf_lp", "simplex_lp", "match", "lb<=proxy",
       "dual<=gammaLP", "certified"});

  struct Row {
    int trial;
    std::size_t n;
    double mcmf, simplex;
    bool match, ordered, weak_duality, certified;
  };
  std::vector<Row> rows(static_cast<std::size_t>(trials));

  ctx.pool().parallel_for(rows.size(), [&](std::size_t t) {
    workload::Rng rng(seed + t);
    // Tiny integer-ish instances keep the dense simplex tractable.
    std::vector<std::pair<Time, Work>> pairs;
    const int n = 4 + static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < n; ++i) {
      pairs.emplace_back(static_cast<double>(rng.uniform_int(0, 4)),
                         static_cast<double>(rng.uniform_int(1, 3)));
    }
    const Instance inst = Instance::from_pairs(pairs);

    lpsolve::FlowtimeLpOptions lp;
    lp.k = 2.0;
    lp.slot = 1.0;
    const lpsolve::FlowtimeLpResult mcmf_res = lpsolve::solve_flowtime_lp(inst, lp);
    const double mcmf = mcmf_res.lp_value;
    const lpsolve::LinearProgram prog = lpsolve::build_flowtime_lp(inst, lp);
    const auto sx = lpsolve::solve_lp(prog);
    const double sx_obj =
        sx.status == lpsolve::SolveStatus::kOptimal ? *sx.objective : 0.0;
    const bool match = sx.status == lpsolve::SolveStatus::kOptimal &&
                       std::fabs(sx_obj - mcmf) <= 1e-6 * (1.0 + mcmf);

    // (4) Exact-rational certification of both solvers' answers: the MCMF
    // dual (repaired from potentials) and the simplex basis (re-solved in
    // exact arithmetic) must both certify, at values <= the LP optimum.
    const lpsolve::CertifiedBound sx_cert = lpsolve::verify_certificate(prog, sx);
    const double tol = 1e-6 * (1.0 + mcmf);
    const bool certified = mcmf_res.certificate.certified &&
                           mcmf_res.certificate.value <= mcmf + tol &&
                           sx_cert.certified && sx_cert.value <= mcmf + tol;

    lpsolve::OptBoundsOptions bo;
    bo.k = 2.0;
    bo.lp_slot = 1.0;
    const auto bounds = lpsolve::opt_bounds(inst, bo);
    const bool ordered = bounds.best_lb <= bounds.proxy_ub * (1.0 + 1e-9);

    RoundRobin rr;
    RunRequest req;
    req.speed = analysis::theorem1_speed(2.0, 0.05);
    const Schedule s = tempofair::run(inst, rr, req).schedule;
    analysis::DualFitOptions dopt;
    dopt.k = 2.0;
    dopt.eps = 0.05;
    const auto cert = analysis::dual_fit_certificate(s, dopt);
    // The dual is feasible for the continuous LP >= the discretized one;
    // allow the discretization gap a 15% cushion.
    const bool weak = !cert.feasible ||
                      cert.dual_objective <= cert.gamma * mcmf * 1.15;

    rows[t] = Row{static_cast<int>(t), inst.n(), mcmf, sx_obj,
                  match, ordered, weak, certified};
  });

  bool all_ok = true;
  for (const Row& r : rows) {
    all_ok = all_ok && r.match && r.ordered && r.weak_duality && r.certified;
    table.add_row({std::to_string(r.trial), std::to_string(r.n),
                   analysis::Table::num(r.mcmf), analysis::Table::num(r.simplex),
                   r.match ? "ok" : "FAIL", r.ordered ? "ok" : "FAIL",
                   r.weak_duality ? "ok" : "FAIL", r.certified ? "ok" : "FAIL"});
  }
  ctx.emit(table);
  return all_ok ? 0 : 1;
}

const bench::Registration reg{{
    "t8",
    "T8 (LP/duality self-check)",
    "MCMF == simplex; lb <= proxy; weak duality; exact certificates",
    "seed=8 trials=8",
    run,
}};

}  // namespace
