// A3 (ablation) -- sensitivity of the two epsilon-exact policies to their
// discretization knobs, against exact references:
//   * WRR's refresh_rel (drift bound of the age-proportional shares): l2
//     distance between successive refinements, and runtime blow-up.
//   * SETF's level tolerance: deviation from the tolerance-free reference
//     and robustness of the event count.
// Expected: results converge as the knobs shrink (the defaults sit on the
// flat part); runtime grows roughly as 1/refresh_rel for WRR.
#include <chrono>

#include "common.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "policies/setf.h"
#include "policies/weighted_rr.h"
#include "registry.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 120);

  ctx.banner("A3 (policy-parameter ablation)",
             "epsilon-exactness knobs: WRR refresh_rel, SETF tolerance",
             "l2 converges as knobs shrink; defaults on the flat part");

  const Instance inst = workload::make_instance(
      workload::WorkloadSpec::poisson(n, 0.9, workload::ExponentialSize{1.5}, 41));
  RunRequest req;
  req.record_trace = false;

  analysis::Table wrr_table("A3a: WRR refresh_rel sweep (l2 + runtime)",
                            {"refresh_rel", "l2", "runtime_ms"});
  for (double refresh : {0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005}) {
    WeightedRoundRobin wrr(1e-3, refresh);
    const auto start = std::chrono::steady_clock::now();
    const double l2 = tempofair::run(inst, wrr, req).stats.l2;
    const auto ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    wrr_table.add_row({analysis::Table::num(refresh), analysis::Table::num(l2, 3),
                       analysis::Table::num(ms, 1)});
  }
  ctx.emit(wrr_table);

  analysis::Table setf_table("A3b: SETF level-tolerance sweep (l2)",
                             {"tolerance", "l2"});
  for (double tol : {1e-3, 1e-6, 1e-9, 1e-12}) {
    Setf setf(tol);
    setf_table.add_row({analysis::Table::num(tol),
                        analysis::Table::num(tempofair::run(inst, setf, req).stats.l2, 4)});
  }
  ctx.emit(setf_table);
  return 0;
}

const bench::Registration reg{{
    "a3",
    "A3 (policy-parameter ablation)",
    "epsilon-exactness knobs: WRR refresh_rel, SETF tolerance",
    "n=120 (fixed seed 41)",
    run,
}};

}  // namespace
