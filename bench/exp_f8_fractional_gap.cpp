// F8 (extension) -- integral vs fractional flow: the LP of Section 3.1
// charges work by the age at which it is processed (a fractional objective),
// while the theorem is about integral flow.  This experiment measures the
// integral/fractional gap per policy -- the "hidden" constant between the LP
// world and the schedule world.
// Expected: gap factor around 2 for k=1 (a job's age averages half its
// flow), growing with k (~k+1 for smooth schedules); SRPT's gap biggest
// (it finishes jobs abruptly), RR's moderate.
#include "common.h"
#include "core/engine.h"
#include "core/fractional.h"
#include "core/metrics.h"
#include "policies/registry.h"
#include "registry.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 200);
  const std::uint64_t seed = ctx.seed_param(51);

  ctx.banner("F8 (integral vs fractional flow, extension)",
             "the gap between integral flow (the theorem's objective) and "
             "fractional flow (the LP's)",
             "integral/fractional around k+1, policy-dependent");

  const Instance inst = workload::make_instance(
      workload::WorkloadSpec::poisson(n, 0.9, workload::ExponentialSize{1.5}, seed));

  const std::vector<std::string> specs{"rr", "srpt", "sjf", "setf", "fcfs"};
  for (double k : {1.0, 2.0, 3.0}) {
    analysis::Table table(
        "F8: sum F^k (integral) / fractional, k=" + analysis::Table::num(k, 0),
        {"policy", "integral", "fractional", "ratio"});
    std::vector<std::array<double, 2>> vals(specs.size());
    ctx.pool().parallel_for(specs.size(), [&](std::size_t i) {
      RunRequest req;
      req.policy = specs[i];
      const Schedule s = tempofair::run(inst, req).schedule;
      vals[i] = {flow_lk_power(s, k), fractional_flow_power(s, k).total};
    });
    for (std::size_t i = 0; i < specs.size(); ++i) {
      table.add_row({specs[i], analysis::Table::num(vals[i][0]),
                     analysis::Table::num(vals[i][1]),
                     analysis::Table::num(vals[i][0] / vals[i][1], 2)});
    }
    ctx.emit(table);
  }
  return 0;
}

const bench::Registration reg{{
    "f8",
    "F8 (integral vs fractional flow, extension)",
    "the integral/fractional flow gap per policy",
    "n=200 seed=51",
    run,
}};

}  // namespace
