// F7 (extension) -- the backstory of Section 1.2/1.3: in the arbitrary
// speed-up curves setting, EQUI (the RR of that world) is NOT O(1)-speed
// O(1)-competitive for the l2 norm [15], while the age-weighted variant
// (WEQUI/WLAPS [12]) is.  We sweep the parallel+sequential stream length and
// report l2 ratios against the clairvoyant proxy at speeds 1 and 4.4.
// Expected: EQUI's ratio grows with n even at speed 4.4 (extra speed cannot
// recover processors wasted on sequential phases); WEQUI's stays bounded --
// the qualitative separation that made plain RR's guarantee in the standard
// setting (Theorem 1) surprising.
#include "common.h"
#include "core/metrics.h"
#include "parsim/parsim.h"
#include "registry.h"

using namespace tempofair;
using namespace tempofair::parsim;

namespace {

int run(bench::RunContext& ctx) {
  ctx.banner("F7 (speed-up curves, extension)",
             "EQUI (RR) fails for l2 under arbitrary speed-up curves [15]; "
             "the latest-arrival-weighted WLAPS [12] does not",
             "equi ratio grows with n at speed 1; laps/wlaps flat; pure "
             "age-weighting (wequi) backfires -- it favors jobs stuck in "
             "sequential phases");

  const std::vector<std::size_t> ns{20, 40, 80, 160, 320};

  analysis::Table table(
      "F7: l2 ratio vs clairvoyant proxy on par(1)+seq(3) stream, gap 1.3, s=1",
      {"n", "equi", "wequi(age)", "laps:0.5", "wlaps:0.5", "equi_s4.4"});

  struct Row {
    std::size_t n;
    double equi, wequi, laps, wlaps, equi44;
  };
  std::vector<Row> rows(ns.size());

  ctx.pool().parallel_for(ns.size(), [&](std::size_t i) {
    const auto jobs = par_seq_stream(ns[i], 1.0, 3.0, 1.3);
    ParOptProxy proxy;
    ParSimOptions base;
    const double proxy_l2 = lk_norm(simulate_par(jobs, proxy, base).flows(), 2.0);

    auto ratio = [&](ParPolicy& p, double speed) {
      ParSimOptions opt;
      opt.speed = speed;
      return lk_norm(simulate_par(jobs, p, opt).flows(), 2.0) / proxy_l2;
    };
    Equi equi1, equi2;
    Wequi wequi;
    LapsPar laps(0.5);
    WlapsPar wlaps(0.5);
    rows[i] = Row{ns[i],          ratio(equi1, 1.0), ratio(wequi, 1.0),
                  ratio(laps, 1.0), ratio(wlaps, 1.0), ratio(equi2, 4.4)};
  });

  for (const Row& r : rows) {
    table.add_row({std::to_string(r.n), analysis::Table::num(r.equi, 2),
                   analysis::Table::num(r.wequi, 2),
                   analysis::Table::num(r.laps, 2),
                   analysis::Table::num(r.wlaps, 2),
                   analysis::Table::num(r.equi44, 2)});
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "f7",
    "F7 (speed-up curves, extension)",
    "EQUI fails for l2 under speed-up curves; WLAPS does not",
    "(no params)",
    run,
}};

}  // namespace
