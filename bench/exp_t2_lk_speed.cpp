// T2 -- Theorem 1 for general k: RR at speed eta = 2k(1+10 eps) is
// O((k/eps))-competitive for the l_k norm.  For k in {1, 2, 3} we measure the
// ratio bracket at exactly eta (eps = 0.05) and at the scalability frontier
// (1+eps), and attach the dual-fitting certificate's implied bound.
// Expected: bounded small ratios at eta for every k; certificate valid at
// eta (certified column = yes).
#include "analysis/competitive.h"
#include "analysis/dualfit.h"
#include "common.h"
#include "core/engine.h"
#include "policies/round_robin.h"
#include "registry.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 100);
  const std::uint64_t seed = ctx.seed_param(2);
  const double eps = ctx.double_param("eps", 0.05);

  ctx.banner("T2 (Theorem 1, general k)",
             "RR at speed 2k(1+10eps) is O(k/eps)-competitive for l_k",
             "bounded ratio and valid dual certificate at eta for k=1,2,3");

  const auto workloads = bench::standard_workloads(n, 1, seed);
  const std::vector<double> ks{1.0, 2.0, 3.0};

  analysis::Table table(
      "T2: RR l_k ratio at the theorem speed eta=2k(1+10eps), eps=" +
          analysis::Table::num(eps),
      {"workload", "k", "eta", "ratio_vs_lb", "lb_cert", "ratio_vs_proxy",
       "certified", "implied_bound"});

  struct Row {
    std::string workload;
    double k, eta, vs_lb, vs_proxy, implied;
    bool lb_cert, certified;
  };
  std::vector<Row> rows(workloads.size() * ks.size());

  ctx.pool().parallel_for(workloads.size() * ks.size(), [&](std::size_t idx) {
    const auto& wl = workloads[idx / ks.size()];
    const double k = ks[idx % ks.size()];
    const double eta = analysis::theorem1_speed(k, eps);

    RoundRobin rr;
    analysis::RatioOptions ropt;
    ropt.k = k;
    ropt.speed = eta;
    const auto m = analysis::measure_ratio(wl.instance, rr, ropt);

    RoundRobin rr2;
    RunRequest req;
    req.speed = eta;
    const Schedule sched = tempofair::run(wl.instance, rr2, req).schedule;
    analysis::DualFitOptions dopt;
    dopt.k = k;
    dopt.eps = eps;
    const auto cert = analysis::dual_fit_certificate(sched, dopt);

    rows[idx] = Row{wl.name,       k,
                    eta,           m.ratio_vs_lb,
                    m.ratio_vs_proxy, cert.implied_lk_ratio,
                    m.lb_certified, cert.certificate_valid()};
  });

  for (const Row& r : rows) {
    table.add_row({r.workload, analysis::Table::num(r.k, 0),
                   analysis::Table::num(r.eta, 1),
                   analysis::Table::num(r.vs_lb, 2),
                   r.lb_cert ? "yes" : "NO",
                   analysis::Table::num(r.vs_proxy, 2),
                   r.certified ? "yes" : "NO",
                   analysis::Table::num(r.implied, 0)});
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "t2",
    "T2 (Theorem 1, general k)",
    "RR at speed 2k(1+10eps) is O(k/eps)-competitive for l_k",
    "n=100 seed=2 eps=0.05",
    run,
}};

}  // namespace
