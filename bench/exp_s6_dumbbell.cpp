// S6 -- dumbbell bottleneck fairness under congestion.  Six flows with
// mixed packet sizes push through per-sender access links into a shared
// bottleneck with a finite tail-drop queue, arbitrated by DRR, WFQ and
// FIFO.  Expected: the congested bottleneck drops traffic under every
// scheduler, but DRR/WFQ split the delivered bytes near-evenly (Jain ~1)
// while FIFO lets the large-packet flows crowd the queue -- the packet-level
// restatement of RR's temporal-fairness claim.
#include <string>
#include <vector>

#include "common.h"
#include "netsim/schedulers.h"
#include "netsim/topology.h"
#include "registry.h"

using namespace tempofair;
using namespace tempofair::netsim;

namespace {

int run(bench::RunContext& ctx) {
  const std::uint64_t seed = ctx.seed_param(56);
  const std::size_t per_flow = ctx.size_param("per-flow", 1200, 100);
  const double capacity = ctx.double_param("queue", 48.0);

  ctx.banner("S6 (dumbbell bottleneck)",
             "DRR/WFQ share a congested tail-drop bottleneck near-evenly; "
             "FIFO hands it to the biggest packets",
             "drops > 0 everywhere; jain(drr) and jain(wfq) > jain(fifo)");

  // Six flows, packet size 2^(f/2): flows 4 and 5 offer 4x the bytes of
  // flows 0 and 1.  Arrivals are jittered so access links interleave.
  workload::Rng rng(seed);
  std::vector<Packet> packets;
  for (FlowId f = 0; f < 6; ++f) {
    const double size = 1.0 + static_cast<double>(f);
    double t = 0.0;
    for (std::size_t i = 0; i < per_flow; ++i) {
      t += rng.exponential(0.5);
      packets.push_back(Packet{f, size, t});
    }
  }

  TopologyConfig config;
  config.access_rate = 50.0;    // access links are never the constraint
  config.bottleneck_rate = 6.0; // offered ~ 2x the bottleneck: congestion
  config.queue_capacity = capacity;

  // Fairness window: all flows are still backlogged through the first half
  // of the arrival span (offered ~ 2x bottleneck capacity).
  const double window =
      0.5 * static_cast<double>(per_flow) * 0.5;  // ~ half the arrival span

  analysis::Table table(
      "S6: 6 flows, sizes 1..6, per-flow buffer " +
          analysis::Table::num(capacity, 0) + "B",
      {"scheduler", "jain_svc", "min/max_svc", "drop_frac", "f0_delay",
       "f5_delay"});
  int failures = 0;
  double jain[3] = {0.0, 0.0, 0.0};
  int row = 0;
  const auto run_one = [&](const std::string& name, LinkScheduler& sched) {
    const DumbbellResult r = simulate_dumbbell(packets, sched, config, window);
    jain[row++] = r.jain_service;
    if (!(r.drop_fraction > 0.0)) ++failures;  // must actually congest
    table.add_row({name, analysis::Table::num(r.jain_service, 4),
                   analysis::Table::num(r.min_max_service, 3),
                   analysis::Table::num(r.drop_fraction, 3),
                   analysis::Table::num(r.per_flow.at(0).mean_delay, 2),
                   analysis::Table::num(r.per_flow.at(5).mean_delay, 2)});
  };
  {
    DrrScheduler drr(6.0);
    run_one("drr", drr);
  }
  {
    ScfqScheduler wfq;
    run_one("wfq(scfq)", wfq);
  }
  {
    FifoScheduler fifo;
    run_one("fifo", fifo);
  }
  if (!(jain[0] > jain[2]) || !(jain[1] > jain[2])) ++failures;
  ctx.emit(table);
  return failures == 0 ? 0 : 1;
}

const bench::Registration reg{{
    "s6",
    "S6 (dumbbell bottleneck)",
    "fair queueing beats FIFO at a congested tail-drop bottleneck",
    "seed=56 per-flow=1200 queue=48",
    run,
}};

}  // namespace
