// S2 -- time-varying capacity: failures, restarts, and speed scaling.  The
// same spec'd workload replays under a capacity timeline (2 machines -> a
// full outage -> 1 slow machine -> 2 fast machines) and a flat baseline.
// Expected: flow times dominate the flat-capacity run (an outage only ever
// hurts), every job still completes exactly once (restart semantics carry
// remaining work across phase boundaries), and speed scaling at the tail
// claws part of the loss back.
#include <string>

#include "common.h"
#include "registry.h"
#include "workload/scenario.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::uint64_t seed = ctx.seed_param(52);
  const std::size_t n = ctx.size_param("n", 1500);
  const std::string spec = ctx.string_param(
      "workload", workload::WorkloadSpec::poisson(
                      n, 0.7, workload::ExponentialSize{1.0}, seed, 2)
                      .to_string());

  ctx.banner("S2 (capacity timeline)",
             "replaying one workload under failures/restarts/speed-scaling "
             "degrades flow gracefully and conserves every job",
             "timeline l1 >= flat l1; all jobs complete; carryovers > 0");

  const Instance inst = workload::make_instance(spec);
  const Time span = inst.job(static_cast<JobId>(inst.n() - 1)).release;

  workload::CapacityTimeline timeline;
  timeline.phases = {
      {0.0, 2, 1.0},              // nominal: two machines
      {0.25 * span, 0, 1.0},      // full outage (failure)
      {0.35 * span, 1, 1.0},      // partial restart: one machine
      {0.60 * span, 2, 1.5},      // recovery + speed scaling
  };

  analysis::Table table("S2: " + spec,
                        {"policy", "variant", "l1", "p99", "carried"});
  int failures = 0;
  for (const std::string& policy : {std::string("rr"), std::string("srpt")}) {
    RunRequest req;
    req.policy = policy;
    req.machines = 2;

    const RunResult flat = tempofair::run(inst, req);
    const workload::TimelineResult shaken =
        workload::run_capacity_timeline(inst, req, timeline);

    // Conservation: every job got a completion at or after its release.
    std::size_t incomplete = 0;
    for (JobId i = 0; i < static_cast<JobId>(inst.n()); ++i) {
      if (!(shaken.completion[i] >= inst.job(i).release)) ++incomplete;
    }
    if (incomplete > 0) ++failures;
    if (shaken.stats.l1 < flat.stats.l1) ++failures;  // outage can only hurt
    if (shaken.carried == 0) ++failures;  // the outage must interrupt someone

    table.add_row({policy, "flat 2m", analysis::Table::num(flat.stats.l1),
                   analysis::Table::num(flat.stats.p99), "0"});
    table.add_row({policy, "timeline", analysis::Table::num(shaken.stats.l1),
                   analysis::Table::num(shaken.stats.p99),
                   std::to_string(shaken.carried)});
  }
  ctx.emit(table);
  return failures == 0 ? 0 : 1;
}

const bench::Registration reg{{
    "s2",
    "S2 (capacity timeline)",
    "failures/restarts/speed scaling degrade flow gracefully, conserve jobs",
    "seed=52 n=1500 workload=poisson:...,machines=2",
    run,
}};

}  // namespace
