// The standard fast-path perf case suite behind tools/perf_gate and the
// committed BENCH_fastpath.json baseline.
//
// Each case times one whole engine run (workload construction is excluded
// for materialized instances; the streaming case deliberately includes
// generation, because "million jobs end to end without materializing the
// instance" is exactly the claim being measured).  Event-loop/fast-path
// pairs run on the identical instance so the derived
// `speedup_vs_event_loop` stat is apples to apples.
#pragma once

#include <cstddef>

#include "perf_harness.h"

namespace tempofair::perf {

struct CaseOptions {
  /// Scale workloads down for a CI smoke run (shared runners, minutes not
  /// tens of minutes).  Smoke numbers are comparable only to smoke
  /// baselines; perf_gate never mixes the two (the case names differ).
  bool smoke = false;
  /// Timed runs per case (one extra untimed warmup run each).
  std::size_t repeats = 5;
};

/// Runs the full case suite and returns the report (git_rev left for the
/// caller to stamp).  Case names are suffixed "_smoke" in smoke mode.
[[nodiscard]] Report run_fastpath_cases(const CaseOptions& options = {});

}  // namespace tempofair::perf
