// T3 -- context table: every policy x every norm at speed 1 on Poisson
// loads.  Reproduces the paper's related-work landscape: SRPT/SJF best for
// l1/l2 (they are scalable), SETF close behind without clairvoyance, RR
// competitive but behind on mean, FCFS collapsing under size variance.
// Costs are normalized by SRPT's (column = policy / SRPT).
#include "common.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "harness/sweep.h"
#include "policies/registry.h"
#include "registry.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 300);
  const std::uint64_t seed = ctx.seed_param(3);

  ctx.banner("T3 (policy comparison)",
             "related-work landscape: size-aware policies win on means, "
             "RR stays within a modest factor, FCFS degrades",
             "SRPT/SJF ~1 on l1/l2; RR factor ~1.5-3; FCFS worst with "
             "heavy-tailed sizes");

  const std::vector<double> loads{0.5, 0.8, 0.95};
  const auto policies = builtin_policy_specs();

  analysis::Table table(
      "T3: policy cost / SRPT cost at speed 1, Poisson(exp sizes), m=1",
      {"load", "policy", "l1", "l2", "l3", "linf"});

  struct Row {
    double load;
    std::string policy;
    double l1, l2, l3, linf;
  };

  // One sweep config per load level; each evaluates every policy against
  // the SRPT baseline on that load's instance.
  std::vector<std::size_t> load_indices(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) load_indices[i] = i;
  const auto row_groups = harness::run_sweep(
      ctx.pool(), load_indices, [&](std::size_t li) {
        const Instance inst = workload::make_instance(
            workload::WorkloadSpec::poisson(n, loads[li],
                                            workload::ExponentialSize{1.5},
                                            seed + li));
        RunRequest req;
        req.policy = "srpt";
        req.record_trace = false;
        const Schedule base = tempofair::run(inst, req).schedule;
        const double b1 = flow_lk_norm(base, 1.0), b2 = flow_lk_norm(base, 2.0),
                     b3 = flow_lk_norm(base, 3.0),
                     binf = flow_lk_norm(base,
                                         std::numeric_limits<double>::infinity());
        std::vector<Row> group(policies.size());
        for (std::size_t pi = 0; pi < policies.size(); ++pi) {
          req.policy = policies[pi];
          const Schedule s = tempofair::run(inst, req).schedule;
          group[pi] = Row{
              loads[li], policies[pi], flow_lk_norm(s, 1.0) / b1,
              flow_lk_norm(s, 2.0) / b2, flow_lk_norm(s, 3.0) / b3,
              flow_lk_norm(s, std::numeric_limits<double>::infinity()) / binf};
        }
        return group;
      });

  for (const auto& group : row_groups) {
    for (const Row& r : group) {
      table.add_row({analysis::Table::num(r.load, 2), r.policy,
                     analysis::Table::num(r.l1, 2),
                     analysis::Table::num(r.l2, 2),
                     analysis::Table::num(r.l3, 2),
                     analysis::Table::num(r.linf, 2)});
    }
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "t3",
    "T3 (policy comparison)",
    "size-aware policies win on means, RR within a modest factor",
    "n=300 seed=3",
    run,
}};

}  // namespace
