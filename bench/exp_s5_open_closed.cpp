// S5 -- open-loop vs closed-loop clients.  A fixed population of clients
// that think, submit, and BLOCK until completion (closed loop) is compared
// with an open Poisson stream offered at the closed loop's measured
// throughput.  Expected: the closed loop self-throttles -- its response
// tail stays bounded where the open system's tail grows -- and Little's law
// ties population = throughput x (think + response) to within a few
// percent, validating the bespoke closed-loop simulator.
#include <cmath>
#include <string>

#include "common.h"
#include "registry.h"
#include "workload/scenario.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::uint64_t seed = ctx.seed_param(55);
  const std::size_t requests = ctx.size_param("requests", 4000, 200);
  const long clients = ctx.int_param("clients", 12);
  const double think = ctx.double_param("think", 2.0);

  ctx.banner("S5 (open vs closed loop)",
             "a blocking client population self-throttles where an open "
             "stream at the same throughput does not",
             "Little's law within 5%; open p99 >= closed p99");

  analysis::Table table("S5: " + std::to_string(clients) + " clients, think " +
                            analysis::Table::num(think, 1),
                        {"system", "throughput", "mean", "p99", "little_err"});
  int failures = 0;
  double closed_p99[2] = {0.0, 0.0};
  double closed_tput = 0.0;
  int row = 0;
  for (const std::string& disc : {std::string("ps"), std::string("fcfs")}) {
    workload::ClosedLoopConfig config;
    config.clients = static_cast<std::size_t>(clients);
    config.requests = requests;
    config.think_mean = think;
    config.dist = workload::ExponentialSize{1.0};
    config.seed = seed;
    config.discipline = disc;
    const workload::ClosedLoopResult closed = workload::run_closed_loop(config);

    // Little's law on the closed system: N = X * (think + response).
    const double implied =
        closed.throughput * (think + closed.stats.mean);
    const double little_err =
        std::fabs(implied - static_cast<double>(clients)) /
        static_cast<double>(clients);
    if (little_err > 0.05) ++failures;
    closed_p99[row] = closed.stats.p99;
    if (disc == "ps") closed_tput = closed.throughput;
    table.add_row({"closed/" + disc,
                   analysis::Table::num(closed.throughput, 4),
                   analysis::Table::num(closed.stats.mean, 3),
                   analysis::Table::num(closed.stats.p99, 3),
                   analysis::Table::num(little_err, 4)});
    ++row;
  }

  // Open-loop comparison: Poisson offered at the closed PS throughput
  // (utilization = throughput * mean_size / machines).
  const double load = std::min(closed_tput * 1.0, 0.98);
  RunRequest req;
  req.policy = "rr";
  req.workload = workload::WorkloadSpec::poisson(
                     requests, load, workload::ExponentialSize{1.0}, seed)
                     .to_string();
  const RunResult open = workload::run_spec(req);
  table.add_row({"open/rr@" + analysis::Table::num(load, 2),
                 analysis::Table::num(load, 4),
                 analysis::Table::num(open.stats.mean, 3),
                 analysis::Table::num(open.stats.p99, 3), "-"});
  // The open tail at the same offered rate dominates the closed PS tail.
  if (!(open.stats.p99 >= closed_p99[0])) ++failures;
  ctx.emit(table);
  return failures == 0 ? 0 : 1;
}

const bench::Registration reg{{
    "s5",
    "S5 (open vs closed loop)",
    "closed-loop clients self-throttle; Little's law validates the simulator",
    "seed=55 requests=4000 clients=12 think=2",
    run,
}};

}  // namespace
