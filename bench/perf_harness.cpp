#include "perf_harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <stdexcept>

namespace tempofair::perf {

namespace {

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

CaseResult measure(const std::string& name, std::size_t repeats,
                   const std::function<void()>& body, bool warmup) {
  if (repeats < 1) {
    throw std::invalid_argument("perf::measure: repeats must be >= 1");
  }
  if (warmup) body();

  std::vector<double> times;
  times.reserve(repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    times.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }

  CaseResult result;
  result.name = name;
  result.repeats = repeats;
  result.median_s = median_of(times);
  std::vector<double> dev;
  dev.reserve(times.size());
  for (const double t : times) dev.push_back(std::fabs(t - result.median_s));
  result.mad_s = median_of(std::move(dev));
  result.min_s = *std::min_element(times.begin(), times.end());
  result.max_s = *std::max_element(times.begin(), times.end());
  return result;
}

const CaseResult* Report::find(const std::string& name) const {
  for (const CaseResult& c : cases) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

// --- JSON writing -----------------------------------------------------------

namespace {

std::string num(double v) {
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out + "\"";
}

}  // namespace

std::string report_json(const Report& report) {
  std::ostringstream os;
  os << "{\n  \"schema\": " << quote(report.schema) << ",\n  \"git_rev\": "
     << quote(report.git_rev) << ",\n  \"cases\": [";
  for (std::size_t i = 0; i < report.cases.size(); ++i) {
    const CaseResult& c = report.cases[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\n      \"name\": " << quote(c.name)
       << ",\n      \"repeats\": " << c.repeats
       << ",\n      \"median_s\": " << num(c.median_s)
       << ",\n      \"mad_s\": " << num(c.mad_s)
       << ",\n      \"min_s\": " << num(c.min_s)
       << ",\n      \"max_s\": " << num(c.max_s) << ",\n      \"stats\": {";
    std::size_t k = 0;
    for (const auto& [key, value] : c.stats) {
      os << (k++ == 0 ? "" : ", ") << quote(key) << ": " << num(value);
    }
    os << "}\n    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

// --- JSON parsing -----------------------------------------------------------
//
// A minimal recursive-descent parser for the report schema.  The repo
// deliberately has no third-party JSON dependency; this handles the full
// JSON grammar for objects/arrays/strings/numbers/bools/null, which is all
// a perf report (or a hand-edited baseline) can contain.

namespace {

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(&text) {}

  void ws() {
    while (pos_ < text_->size() && (std::isspace(static_cast<unsigned char>(
                                       (*text_)[pos_])) != 0)) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    ws();
    if (pos_ >= text_->size()) fail("unexpected end of input");
    return (*text_)[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_->size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_->size()) fail("unterminated string");
      const char c = (*text_)[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_->size()) fail("unterminated escape");
        const char e = (*text_)[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  [[nodiscard]] double number() {
    ws();
    const std::size_t start = pos_;
    while (pos_ < text_->size() &&
           (std::string("+-0123456789.eE").find((*text_)[pos_]) !=
            std::string::npos)) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    try {
      return std::stod(text_->substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  /// Skips any JSON value (used for unknown keys, forward compatibility).
  void skip_value() {
    const char c = peek();
    if (c == '"') {
      (void)string();
    } else if (c == '{') {
      expect('{');
      if (!consume('}')) {
        do {
          (void)string();
          expect(':');
          skip_value();
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      expect('[');
      if (!consume(']')) {
        do {
          skip_value();
        } while (consume(','));
        expect(']');
      }
    } else if (c == 't' || c == 'f' || c == 'n') {
      while (pos_ < text_->size() &&
             (std::isalpha(static_cast<unsigned char>((*text_)[pos_])) != 0)) {
        ++pos_;
      }
    } else {
      (void)number();
    }
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument("perf::parse_report: " + msg + " at offset " +
                                std::to_string(pos_));
  }

 private:
  const std::string* text_;
  std::size_t pos_ = 0;
};

CaseResult parse_case(JsonCursor& in) {
  CaseResult c;
  in.expect('{');
  if (!in.consume('}')) {
    do {
      const std::string key = in.string();
      in.expect(':');
      if (key == "name") {
        c.name = in.string();
      } else if (key == "repeats") {
        c.repeats = static_cast<std::size_t>(in.number());
      } else if (key == "median_s") {
        c.median_s = in.number();
      } else if (key == "mad_s") {
        c.mad_s = in.number();
      } else if (key == "min_s") {
        c.min_s = in.number();
      } else if (key == "max_s") {
        c.max_s = in.number();
      } else if (key == "stats") {
        in.expect('{');
        if (!in.consume('}')) {
          do {
            const std::string stat = in.string();
            in.expect(':');
            c.stats[stat] = in.number();
          } while (in.consume(','));
          in.expect('}');
        }
      } else {
        in.skip_value();
      }
    } while (in.consume(','));
    in.expect('}');
  }
  if (c.name.empty()) in.fail("case without a name");
  return c;
}

}  // namespace

Report parse_report(const std::string& json) {
  JsonCursor in(json);
  Report report;
  report.schema.clear();
  in.expect('{');
  if (!in.consume('}')) {
    do {
      const std::string key = in.string();
      in.expect(':');
      if (key == "schema") {
        report.schema = in.string();
      } else if (key == "git_rev") {
        report.git_rev = in.string();
      } else if (key == "cases") {
        in.expect('[');
        if (!in.consume(']')) {
          do {
            report.cases.push_back(parse_case(in));
          } while (in.consume(','));
          in.expect(']');
        }
      } else {
        in.skip_value();
      }
    } while (in.consume(','));
    in.expect('}');
  }
  if (report.schema != "tempofair-perf-v1") {
    throw std::invalid_argument(
        "perf::parse_report: missing or unsupported schema tag \"" +
        report.schema + "\" (want \"tempofair-perf-v1\")");
  }
  return report;
}

// --- gate comparison --------------------------------------------------------

const CaseVerdict* GateResult::find(const std::string& name) const {
  for (const CaseVerdict& v : verdicts) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

GateResult compare_reports(const Report& baseline, const Report& current,
                           const GateOptions& options) {
  GateResult result;
  for (const CaseResult& base : baseline.cases) {
    CaseVerdict v;
    v.name = base.name;
    v.baseline_s = base.median_s;
    const CaseResult* cur = current.find(base.name);
    if (cur == nullptr) {
      v.verdict = "FAIL";
      v.note = "case missing from current report";
      result.failed = true;
      result.verdicts.push_back(std::move(v));
      continue;
    }
    v.current_s = cur->median_s;
    if (!(base.median_s > 0.0)) {
      v.verdict = "WARN";
      v.note = "baseline median is zero; cannot compare";
      result.verdicts.push_back(std::move(v));
      continue;
    }
    v.ratio = cur->median_s / base.median_s;
    // Allow the measured noise of both runs before warning: a case whose
    // MAD is 10% of the median legitimately wobbles that much run to run.
    const double noise = (base.mad_s + cur->mad_s) / base.median_s;
    if (v.ratio > options.fail_ratio) {
      v.verdict = "FAIL";
      v.note = "median regressed past the hard " +
               std::to_string(options.fail_ratio) + "x gate";
      result.failed = true;
    } else if (v.ratio > options.warn_ratio + noise) {
      v.verdict = "WARN";
      v.note = "median above warn tolerance (noise allowance " +
               std::to_string(noise) + ")";
    } else {
      v.verdict = "OK";
    }
    result.verdicts.push_back(std::move(v));
  }
  for (const CaseResult& cur : current.cases) {
    if (baseline.find(cur.name) == nullptr) {
      CaseVerdict v;
      v.name = cur.name;
      v.verdict = "NEW";
      v.current_s = cur.median_s;
      v.note = "no baseline entry; commit a refreshed baseline to track it";
      result.verdicts.push_back(std::move(v));
    }
  }
  return result;
}

GateResult self_gate(const Report& report) {
  GateResult result;
  const std::string suffix = "_budget";
  for (const CaseResult& c : report.cases) {
    for (const auto& [key, budget] : c.stats) {
      if (key.size() <= suffix.size() ||
          key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0) {
        continue;
      }
      const std::string stat = key.substr(0, key.size() - suffix.size());
      CaseVerdict v;
      v.name = c.name + "/" + stat;
      v.baseline_s = budget;  // the budget plays the baseline's role
      const auto it = c.stats.find(stat);
      if (it == c.stats.end()) {
        v.verdict = "FAIL";
        v.note = "budget declared but stat \"" + stat + "\" is missing";
        result.failed = true;
      } else {
        v.current_s = it->second;
        v.ratio = budget > 0.0 ? it->second / budget : 0.0;
        if (it->second > budget) {
          v.verdict = "FAIL";
          v.note = "stat exceeds its declared budget";
          result.failed = true;
        } else {
          v.verdict = "OK";
        }
      }
      result.verdicts.push_back(std::move(v));
    }
  }
  return result;
}

std::string format_self_gate(const GateResult& result) {
  std::ostringstream os;
  os << "self-gate: budgets the report declares about itself\n";
  for (const CaseVerdict& v : result.verdicts) {
    os.precision(4);
    os << "  [" << v.verdict << "] " << v.name << ": " << v.current_s
       << " (budget " << v.baseline_s << ")";
    if (!v.note.empty()) os << " -- " << v.note;
    os << "\n";
  }
  os << (result.failed ? "SELF-GATE: FAIL" : "SELF-GATE: PASS") << " ("
     << result.verdicts.size() << " budgets)\n";
  return os.str();
}

std::string format_gate(const GateResult& result, const GateOptions& options) {
  std::ostringstream os;
  os << "perf gate: warn > " << options.warn_ratio << "x (+noise), fail > "
     << options.fail_ratio << "x\n";
  for (const CaseVerdict& v : result.verdicts) {
    os << "  [" << v.verdict << "] " << v.name;
    if (v.ratio > 0.0) {
      os.precision(4);
      os << ": " << v.baseline_s << "s -> " << v.current_s << "s ("
         << v.ratio << "x)";
    }
    if (!v.note.empty()) os << " -- " << v.note;
    os << "\n";
  }
  os << (result.failed ? "VERDICT: FAIL" : "VERDICT: PASS") << " ("
     << result.verdicts.size() << " cases)\n";
  return os.str();
}

std::string gate_json(const GateResult& result, const GateOptions& options) {
  std::ostringstream os;
  os << "{\n  \"warn_ratio\": " << num(options.warn_ratio)
     << ",\n  \"fail_ratio\": " << num(options.fail_ratio)
     << ",\n  \"failed\": " << (result.failed ? "true" : "false")
     << ",\n  \"cases\": [";
  for (std::size_t i = 0; i < result.verdicts.size(); ++i) {
    const CaseVerdict& v = result.verdicts[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": " << quote(v.name)
       << ", \"verdict\": " << quote(v.verdict)
       << ", \"baseline_s\": " << num(v.baseline_s)
       << ", \"current_s\": " << num(v.current_s)
       << ", \"ratio\": " << num(v.ratio) << ", \"note\": " << quote(v.note)
       << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace tempofair::perf
