// F1 -- the negative side: the cited Bansal-Pruhs lower bound says RR is
// Omega(n^{2 eps_p})-competitive for l2 at (1+eps)-speed, i.e. NOT
// O(1)-competitive below speed 3/2.  We sweep the geometric-levels family's
// depth at speeds {1.0, 1.2, 1.4, 4.4} and report RR's l2 ratio vs the SRPT
// proxy (an under-estimate of the true ratio, so growth here is genuine).
// Expected shape: monotone growth in depth at speeds <= 1.4 (slow growth --
// the published exponent vanishes with the speed advantage), flat and < 1 at
// speed 4.4.  The batch+stream family is included to document its
// saturation at ~2 (see EXPERIMENTS.md).
#include "analysis/competitive.h"
#include "common.h"
#include "policies/round_robin.h"
#include "registry.h"
#include "workload/adversarial.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  ctx.banner("F1 (lower-bound growth)",
             "RR is not O(1)-competitive for l2 below speed 3/2 [4]",
             "ratio grows with depth at speed <= 1.4; flat < 1 at 4.4");

  const std::vector<int> depths{4, 6, 8, 10, 12};
  const std::vector<double> speeds{1.0, 1.2, 1.4, 4.4};

  analysis::Table geo("F1a: geometric-levels family, RR l2 ratio vs SRPT proxy",
                      {"depth", "n", "s=1.0", "s=1.2", "s=1.4", "s=4.4"});

  struct Row {
    int depth;
    std::size_t n;
    std::vector<double> ratios;
  };
  std::vector<Row> rows(depths.size());
  ctx.pool().parallel_for(depths.size(), [&](std::size_t d) {
    const Instance inst = workload::geometric_levels(depths[d]);
    lpsolve::OptBoundsOptions bo;
    bo.k = 2.0;
    bo.with_lp = false;  // the proxy is the honest side of this bracket
    const auto bounds = lpsolve::opt_bounds(inst, bo);
    Row row{depths[d], inst.n(), {}};
    for (double s : speeds) {
      RoundRobin rr;
      analysis::RatioOptions opt;
      opt.k = 2.0;
      opt.speed = s;
      opt.with_lp = false;
      row.ratios.push_back(
          analysis::measure_ratio(inst, rr, opt, bounds).ratio_vs_proxy);
    }
    rows[d] = std::move(row);
  });
  for (const Row& r : rows) {
    geo.add_row({std::to_string(r.depth), std::to_string(r.n),
                 analysis::Table::num(r.ratios[0], 3),
                 analysis::Table::num(r.ratios[1], 3),
                 analysis::Table::num(r.ratios[2], 3),
                 analysis::Table::num(r.ratios[3], 3)});
  }
  ctx.emit(geo);

  analysis::Table bs("F1b: batch+stream family (documented saturation ~2)",
                     {"n", "jobs", "s=1.0", "s=4.4"});
  const std::vector<std::size_t> ns{10, 20, 40, 80, 160};
  std::vector<Row> rows2(ns.size());
  ctx.pool().parallel_for(ns.size(), [&](std::size_t i) {
    const Instance inst = workload::rr_l2_hard(ns[i]);
    lpsolve::OptBoundsOptions bo;
    bo.k = 2.0;
    bo.with_lp = false;
    const auto bounds = lpsolve::opt_bounds(inst, bo);
    Row row{static_cast<int>(ns[i]), inst.n(), {}};
    for (double s : {1.0, 4.4}) {
      RoundRobin rr;
      analysis::RatioOptions opt;
      opt.k = 2.0;
      opt.speed = s;
      opt.with_lp = false;
      row.ratios.push_back(
          analysis::measure_ratio(inst, rr, opt, bounds).ratio_vs_proxy);
    }
    rows2[i] = std::move(row);
  });
  for (const Row& r : rows2) {
    bs.add_row({std::to_string(r.depth), std::to_string(r.n),
                analysis::Table::num(r.ratios[0], 3),
                analysis::Table::num(r.ratios[1], 3)});
  }
  ctx.emit(bs);
  return 0;
}

const bench::Registration reg{{
    "f1",
    "F1 (lower-bound growth)",
    "RR is not O(1)-competitive for l2 below speed 3/2",
    "(no params)",
    run,
}};

}  // namespace
