// F10 (extension) -- simulator vs. M/G/1 queueing theory.  For Poisson
// arrivals with exponential and uniform sizes, the mean response times of
// RR (= PS), FCFS, SRPT and SETF (= FB) have classical closed forms; this
// experiment runs long simulations against the oracle.
// Expected: agreement within a few percent at every load -- an end-to-end
// validation of the engine, and a live demonstration of PS's famous
// insensitivity (RR's mean depends on the size distribution only through
// its mean).
#include "common.h"
#include "core/engine.h"
#include "policies/registry.h"
#include "queueing/mg1.h"
#include "registry.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

double simulated_mean_flow(const std::string& policy_name,
                           const workload::SizeDist& dist, double load,
                           std::size_t n, std::uint64_t seed) {
  double total = 0.0;
  const int runs = 2;
  const std::size_t warmup = n / 10;
  for (int r = 0; r < runs; ++r) {
    const Instance inst = workload::make_instance(
        workload::WorkloadSpec::poisson(n, load, dist, seed + r));
    RunRequest req;
    req.policy = policy_name;
    req.record_trace = false;
    const Schedule s = tempofair::run(inst, req).schedule;
    double sum = 0.0;
    for (JobId j = static_cast<JobId>(warmup); j < n - warmup; ++j) {
      sum += s.flow(j);
    }
    total += sum / static_cast<double>(n - 2 * warmup);
  }
  return total / runs;
}

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 5000, 500);
  const std::uint64_t seed = ctx.seed_param(71);

  ctx.banner("F10 (M/G/1 oracle, extension)",
             "simulated mean flow vs closed-form M/G/1 response times "
             "(PS = RR, P-K = FCFS, Schrage-Miller = SRPT, FB = SETF)",
             "sim/theory within a few percent; PS insensitive to the "
             "size distribution");

  const std::vector<std::pair<std::string, workload::SizeDist>> dists{
      {"exp(1)", workload::ExponentialSize{1.0}},
      {"uniform(0.5,1.5)", workload::UniformSize{0.5, 1.5}},
  };
  struct PolicyOracle {
    std::string policy;
    std::function<double(const queueing::Mg1&)> oracle;
  };
  const std::vector<PolicyOracle> policies{
      {"rr", [](const queueing::Mg1& q) { return q.mean_response_ps(); }},
      {"fcfs", [](const queueing::Mg1& q) { return q.mean_response_fcfs(); }},
      {"srpt", [](const queueing::Mg1& q) { return q.mean_response_srpt(); }},
      {"setf", [](const queueing::Mg1& q) { return q.mean_response_fb(); }},
  };
  const std::vector<double> loads{0.5, 0.7, 0.85};

  analysis::Table table("F10: mean flow, simulation vs M/G/1 theory",
                        {"sizes", "load", "policy", "theory", "sim", "sim/theory"});

  struct Row {
    std::string dist, policy;
    double load, theory, sim;
  };
  std::vector<Row> rows(dists.size() * loads.size() * policies.size());
  ctx.pool().parallel_for(rows.size(), [&](std::size_t idx) {
    const auto& [dist_name, dist] = dists[idx / (loads.size() * policies.size())];
    const double load = loads[(idx / policies.size()) % loads.size()];
    const auto& po = policies[idx % policies.size()];
    const auto moments = queueing::make_moments(dist);
    const queueing::Mg1 q{load / moments->mean(), moments.get()};
    rows[idx] = Row{dist_name, po.policy, load, po.oracle(q),
                    simulated_mean_flow(po.policy, dist, load, n, seed + idx)};
  });

  for (const Row& r : rows) {
    table.add_row({r.dist, analysis::Table::num(r.load, 2), r.policy,
                   analysis::Table::num(r.theory, 3),
                   analysis::Table::num(r.sim, 3),
                   analysis::Table::num(r.sim / r.theory, 3)});
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "f10",
    "F10 (M/G/1 oracle, extension)",
    "simulated mean flow matches closed-form M/G/1 response times",
    "n=5000 seed=71",
    run,
}};

}  // namespace
