// S4 -- heavy-tailed sizes + correlated (bursty) arrivals.  An MMPP:burst=8
// stream and a plain Poisson stream at the SAME average load and the same
// heavy-tailed size law run through RR and SRPT.  Expected: arrival
// correlation alone inflates the l2 norm and the p99 tail (burstiness
// builds queues that memoryless arrivals at equal load do not), which is
// precisely the regime where the paper's Lk-norm lens separates policies
// that mean flow time cannot.
#include <string>

#include "common.h"
#include "registry.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::uint64_t seed = ctx.seed_param(54);
  const std::size_t n = ctx.size_param("n", 4000);
  const double load = ctx.double_param("load", 0.8);
  const double burst = ctx.double_param("burst", 8.0);

  ctx.banner("S4 (correlated bursts)",
             "MMPP arrival correlation at equal average load inflates the "
             "l2/p99 tail over memoryless Poisson",
             "mmpp l2 > poisson l2 for every policy");

  const workload::SizeDist dist = workload::ParetoSize{1.9, 0.5, 50.0};
  const std::string poisson_spec =
      workload::WorkloadSpec::poisson(n, load, dist, seed).to_string();
  const std::string mmpp_spec =
      workload::WorkloadSpec::mmpp(n, load, burst, 5.0, 20.0, dist, seed)
          .to_string();
  ctx.out() << "  poisson: " << poisson_spec << "\n  mmpp:    " << mmpp_spec
            << "\n";

  analysis::Table table("S4: equal-load arrival processes, " +
                            std::to_string(n) + " jobs",
                        {"policy", "arrivals", "l1/n", "l2", "p99", "max"});
  int failures = 0;
  for (const std::string& policy : {std::string("rr"), std::string("srpt")}) {
    RunRequest req;
    req.policy = policy;
    FlowStats by_kind[2];
    const std::string specs[2] = {poisson_spec, mmpp_spec};
    const char* names[2] = {"poisson", "mmpp"};
    for (int v = 0; v < 2; ++v) {
      req.workload = specs[v];
      by_kind[v] = workload::run_spec(req).stats;
      table.add_row({policy, names[v],
                     analysis::Table::num(by_kind[v].mean),
                     analysis::Table::num(by_kind[v].l2),
                     analysis::Table::num(by_kind[v].p99),
                     analysis::Table::num(by_kind[v].linf)});
    }
    if (!(by_kind[1].l2 > by_kind[0].l2)) ++failures;
  }
  ctx.emit(table);
  return failures == 0 ? 0 : 1;
}

const bench::Registration reg{{
    "s4",
    "S4 (correlated bursts)",
    "MMPP bursts at equal load inflate l2/p99 over Poisson",
    "seed=54 n=4000 load=0.8 burst=8",
    run,
}};

}  // namespace
