// F5 -- load sweep: mean and standard deviation of flow time versus
// utilization (0.3 -> 0.97) for every policy at speed 1.  The queueing-
// theoretic backdrop of the paper's model: all policies diverge as load ->
// 1, size-aware ones slower; RR trades a bounded factor on the mean for its
// fairness.  Expected: monotone growth in load; SRPT lowest mean; FCFS
// worst; RR between.
#include "common.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "policies/registry.h"
#include "registry.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 300);
  const std::uint64_t seed = ctx.seed_param(12);
  const int trials = static_cast<int>(ctx.size_param("trials", 2, 1));

  ctx.banner("F5 (load sweep)",
             "mean and stddev of flow vs utilization for all policies",
             "monotone in load; SRPT lowest mean, RR bounded factor above");

  const std::vector<double> loads{0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.97};
  const auto policies = builtin_policy_specs();

  analysis::Table table("F5: mean flow (stddev) vs utilization, speed 1, m=1",
                        [&] {
                          std::vector<std::string> cols{"load"};
                          for (const auto& p : policies) cols.push_back(p);
                          return cols;
                        }());

  struct Cell {
    double mean = 0.0, stddev = 0.0;
  };
  std::vector<std::vector<Cell>> grid(loads.size(),
                                      std::vector<Cell>(policies.size()));

  ctx.pool().parallel_for(loads.size() * policies.size(), [&](std::size_t idx) {
    const std::size_t li = idx / policies.size();
    const std::size_t pi = idx % policies.size();
    double mean = 0.0, stddev = 0.0;
    for (int t = 0; t < trials; ++t) {
      const Instance inst = workload::make_instance(
          workload::WorkloadSpec::poisson(n, loads[li],
                                          workload::ExponentialSize{1.0},
                                          seed + 1000 * t + li));
      RunRequest req;
      req.policy = policies[pi];
      req.record_trace = false;
      const FlowStats st = tempofair::run(inst, req).stats;
      mean += st.mean;
      stddev += st.stddev;
    }
    grid[li][pi] = Cell{mean / trials, stddev / trials};
  });

  for (std::size_t li = 0; li < loads.size(); ++li) {
    std::vector<std::string> row{analysis::Table::num(loads[li], 2)};
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      row.push_back(analysis::Table::num(grid[li][pi].mean, 2) + " (" +
                    analysis::Table::num(grid[li][pi].stddev, 2) + ")");
    }
    table.add_row(std::move(row));
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "f5",
    "F5 (load sweep)",
    "mean and stddev of flow vs utilization for all policies",
    "n=300 seed=12 trials=2",
    run,
}};

}  // namespace
