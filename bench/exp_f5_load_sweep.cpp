// F5 -- load sweep: mean and standard deviation of flow time versus
// utilization (0.3 -> 0.97) for every policy at speed 1.  The queueing-
// theoretic backdrop of the paper's model: all policies diverge as load ->
// 1, size-aware ones slower; RR trades a bounded factor on the mean for its
// fairness.  Expected: monotone growth in load; SRPT lowest mean; FCFS
// worst; RR between.
//
// The grid runs through harness::run_sweep_sharded: contiguous shards of
// cells share one EngineCore (alive-set buffers and the schedule's trace
// arena are reused across the shard's cells), and results merge by cell
// index, so the table -- and the optional --grid-out JSON artifact -- is
// byte-identical for any --jobs value.  The CI determinism step diffs two
// such artifacts.
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "harness/sweep.h"
#include "policies/registry.h"
#include "registry.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

struct Cell {
  double mean = 0.0, stddev = 0.0;
};

/// Canonical decimal form shared by every run (%.17g round-trips doubles).
std::string num_json(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 300);
  const std::uint64_t seed = ctx.seed_param(12);
  const int trials = static_cast<int>(ctx.size_param("trials", 2, 1));
  const std::string grid_out = ctx.string_param("grid-out", "");

  ctx.banner("F5 (load sweep)",
             "mean and stddev of flow vs utilization for all policies",
             "monotone in load; SRPT lowest mean, RR bounded factor above");

  const std::vector<double> loads{0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.97};
  const auto policies = builtin_policy_specs();

  analysis::Table table("F5: mean flow (stddev) vs utilization, speed 1, m=1",
                        [&] {
                          std::vector<std::string> cols{"load"};
                          for (const auto& p : policies) cols.push_back(p);
                          return cols;
                        }());

  struct Config {
    std::size_t li = 0, pi = 0;
  };
  std::vector<Config> cells;
  cells.reserve(loads.size() * policies.size());
  for (std::size_t li = 0; li < loads.size(); ++li) {
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      cells.push_back({li, pi});
    }
  }

  // Instance seeds stay a pure function of (load, trial) so every policy
  // column sees the same arrival sequence; the derived per-cell stream is
  // unused here but keeps the sharded call uniform with seeded sweeps.
  const std::vector<Cell> flat = harness::run_sweep_sharded(
      ctx.pool(), cells, seed, [] { return EngineCore{}; },
      [&](EngineCore& engine, const Config& c, std::uint64_t /*stream*/) {
        double mean = 0.0, stddev = 0.0;
        for (int t = 0; t < trials; ++t) {
          const Instance inst = workload::make_instance(
              workload::WorkloadSpec::poisson(n, loads[c.li],
                                              workload::ExponentialSize{1.0},
                                              seed + 1000 * t + c.li));
          RunRequest req;
          req.policy = policies[c.pi];
          req.record_trace = false;
          const FlowStats st = engine.run(inst, req).stats;
          mean += st.mean;
          stddev += st.stddev;
        }
        return Cell{mean / trials, stddev / trials};
      });

  auto cell_at = [&](std::size_t li, std::size_t pi) -> const Cell& {
    return flat[li * policies.size() + pi];
  };

  for (std::size_t li = 0; li < loads.size(); ++li) {
    std::vector<std::string> row{analysis::Table::num(loads[li], 2)};
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      row.push_back(analysis::Table::num(cell_at(li, pi).mean, 2) + " (" +
                    analysis::Table::num(cell_at(li, pi).stddev, 2) + ")");
    }
    table.add_row(std::move(row));
  }
  ctx.emit(table);

  if (!grid_out.empty()) {
    // Canonical JSON (fixed key order, %.17g doubles, no timing or host
    // data) -- diffable byte-for-byte across worker counts.
    std::ofstream file(grid_out);
    if (!file) {
      throw std::runtime_error("f5: cannot write --grid-out file " + grid_out);
    }
    file << "{\n  \"experiment\": \"f5\",\n  \"seed\": " << seed
         << ",\n  \"n\": " << n << ",\n  \"trials\": " << trials
         << ",\n  \"policies\": [";
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      file << (pi == 0 ? "" : ", ") << '"' << policies[pi] << '"';
    }
    file << "],\n  \"rows\": [\n";
    for (std::size_t li = 0; li < loads.size(); ++li) {
      file << "    {\"load\": " << num_json(loads[li]) << ", \"cells\": [";
      for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        const Cell& c = cell_at(li, pi);
        file << (pi == 0 ? "" : ", ") << "{\"mean\": " << num_json(c.mean)
             << ", \"stddev\": " << num_json(c.stddev) << "}";
      }
      file << "]}" << (li + 1 < loads.size() ? "," : "") << "\n";
    }
    file << "  ]\n}\n";
  }
  return 0;
}

const bench::Registration reg{{
    "f5",
    "F5 (load sweep)",
    "mean and stddev of flow vs utilization for all policies",
    "n=300 seed=12 trials=2",
    run,
}};

}  // namespace
