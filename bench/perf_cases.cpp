#include "perf_cases.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/metrics.h"
#include "harness/sweep.h"
#include "harness/thread_pool.h"
#include "policies/mlfq.h"
#include "policies/priority_policies.h"
#include "policies/round_robin.h"
#include "policies/setf.h"
#include "workload/generators.h"
#include "workload/rng.h"
#include "workload/source.h"
#include "workload/stream.h"

namespace tempofair::perf {

namespace {

constexpr std::uint64_t kSeed = 20260806;

/// One engine run of `policy` over `instance` through the RunRequest
/// facade, trace off, timing only the engine.  The result's completion
/// count is read back so the optimizer cannot elide the run.
CaseResult time_engine(const std::string& name, std::size_t repeats,
                       const Instance& instance, Policy& policy,
                       bool fast_path,
                       InvariantMode invariants = default_invariant_mode()) {
  RunRequest req;
  req.record_trace = false;
  req.use_fast_path = fast_path;
  req.invariants = invariants;
  std::size_t finished = 0;
  CaseResult r = measure(name, repeats, [&] {
    finished += tempofair::run(instance, policy, req).schedule.n();
  });
  r.stats["jobs"] = static_cast<double>(instance.n());
  r.stats["finished_total"] = static_cast<double>(finished);
  return r;
}

[[nodiscard]] double median_of_sorted_copy(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Builds a CaseResult from externally collected run times (for paired
/// measurements that measure() cannot express).
[[nodiscard]] CaseResult case_from_times(const std::string& name,
                                         const std::vector<double>& times) {
  CaseResult r;
  r.name = name;
  r.repeats = times.size();
  r.median_s = median_of_sorted_copy(times);
  std::vector<double> dev;
  dev.reserve(times.size());
  for (const double t : times) dev.push_back(std::abs(t - r.median_s));
  r.mad_s = median_of_sorted_copy(dev);
  r.min_s = *std::min_element(times.begin(), times.end());
  r.max_s = *std::max_element(times.begin(), times.end());
  return r;
}

}  // namespace

Report run_fastpath_cases(const CaseOptions& options) {
  const bool smoke = options.smoke;
  const std::size_t repeats = options.repeats;
  const std::string suffix = smoke ? "_smoke" : "";

  const std::size_t n_pair = smoke ? 10'000 : 100'000;
  const std::size_t n_stream = smoke ? 100'000 : 1'000'000;
  const std::size_t n_trace = smoke ? 5'000 : 50'000;

  Report report;

  // --- RR: generic event loop vs epoch-coalesced fast path, same jobs ------
  {
    const Instance inst = workload::make_instance(
        workload::WorkloadSpec::poisson(n_pair, 0.9,
                                        workload::ExponentialSize{1.5}, kSeed));
    RoundRobin rr;
    CaseResult slow = time_engine("rr_event_loop_" + std::to_string(n_pair) + suffix,
                                  repeats, inst, rr, false);
    CaseResult fast = time_engine("rr_fast_" + std::to_string(n_pair) + suffix,
                                  repeats, inst, rr, true);
    if (fast.median_s > 0.0) {
      fast.stats["speedup_vs_event_loop"] = slow.median_s / fast.median_s;
    }
    report.cases.push_back(std::move(slow));
    report.cases.push_back(std::move(fast));
  }

  // --- RR fast path: invariants off vs sampled (the release default) --------
  // The sampled checkers ride the same epoch loop as the fast path, so this
  // pair IS the cost model of the always-on invariant layer.  Off and
  // sampled runs are interleaved back-to-back and the overhead is the
  // median of per-round ratios of *process CPU time*: pairing cancels
  // slow machine drift, and CPU time is blind to the preemption noise
  // that makes wall-clock ratios on a shared single core wobble by more
  // than the effect being measured.  The sampled case declares a 3%
  // overhead budget about itself; perf_gate's self-gate fails the run on
  // a breach, baseline file or not.
  {
    const Instance inst = workload::make_instance(workload::WorkloadSpec::poisson(
        n_pair, 0.9, workload::ExponentialSize{1.5}, kSeed + 4));
    RoundRobin rr;
    RunRequest req;
    req.record_trace = false;
    req.use_fast_path = true;
    std::size_t finished = 0;
    const auto cpu_now = [] {
      timespec ts{};
      clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    };
    // Returns {wall seconds, CPU seconds} for one engine run.
    struct RunTimes {
      double wall;
      double cpu;
    };
    const auto time_once = [&](InvariantMode mode) {
      req.invariants = mode;
      const auto wall_start = std::chrono::steady_clock::now();
      const double cpu_start = cpu_now();
      finished += tempofair::run(inst, rr, req).schedule.n();
      const double cpu = cpu_now() - cpu_start;
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
      return RunTimes{wall, cpu};
    };
    (void)time_once(InvariantMode::kOff);  // warm both variants
    (void)time_once(InvariantMode::kSampled);
    const std::size_t rounds = std::max<std::size_t>(repeats, 9);
    std::vector<double> off_times, sampled_times, ratios;
    for (std::size_t r = 0; r < rounds; ++r) {
      const RunTimes a = time_once(InvariantMode::kOff);
      const RunTimes b = time_once(InvariantMode::kSampled);
      off_times.push_back(a.wall);
      sampled_times.push_back(b.wall);
      if (a.cpu > 0.0) ratios.push_back(b.cpu / a.cpu);
    }
    CaseResult off = case_from_times(
        "rr_fast_inv_off_" + std::to_string(n_pair) + suffix, off_times);
    CaseResult sampled = case_from_times(
        "rr_fast_inv_sampled_" + std::to_string(n_pair) + suffix,
        sampled_times);
    off.stats["jobs"] = static_cast<double>(n_pair);
    sampled.stats["jobs"] = static_cast<double>(n_pair);
    sampled.stats["finished_total"] = static_cast<double>(finished);
    if (!ratios.empty()) {
      sampled.stats["overhead_vs_inv_off"] = median_of_sorted_copy(ratios);
      // The budget is an acceptance bound on the 100k case; the ~3ms smoke
      // run is too short for even a paired ratio to be a measurement.
      if (!smoke) sampled.stats["overhead_vs_inv_off_budget"] = 1.03;
    }
    report.cases.push_back(std::move(off));
    report.cases.push_back(std::move(sampled));
  }

  // --- SRPT: same pairing on the top-priority rule --------------------------
  {
    const Instance inst = workload::make_instance(workload::WorkloadSpec::poisson(
        n_pair, 0.9, workload::ExponentialSize{1.5}, kSeed + 1));
    Srpt srpt;
    CaseResult slow = time_engine("srpt_event_loop_" + std::to_string(n_pair) + suffix,
                                  repeats, inst, srpt, false);
    CaseResult fast = time_engine("srpt_fast_" + std::to_string(n_pair) + suffix,
                                  repeats, inst, srpt, true);
    if (fast.median_s > 0.0) {
      fast.stats["speedup_vs_event_loop"] = slow.median_s / fast.median_s;
    }
    report.cases.push_back(std::move(slow));
    report.cases.push_back(std::move(fast));
  }

  // --- SETF / LAPS / MLFQ: the shared-rule fast-forward kernels -------------
  // Each pairs the generic event loop against its kEqualAttained /
  // kLatestArrival / kLevelPriority descriptor (core/share_rules.h rule
  // bodies over the kernel's SoA columns, SIMD advance + completion scan).
  {
    const Instance inst = workload::make_instance(workload::WorkloadSpec::poisson(
        n_pair, 0.9, workload::ExponentialSize{1.5}, kSeed + 5));
    Setf setf;
    CaseResult slow = time_engine(
        "setf_event_loop_" + std::to_string(n_pair) + suffix, repeats, inst,
        setf, false);
    CaseResult fast = time_engine("setf_fast_" + std::to_string(n_pair) + suffix,
                                  repeats, inst, setf, true);
    if (fast.median_s > 0.0) {
      fast.stats["speedup_vs_event_loop"] = slow.median_s / fast.median_s;
    }
    report.cases.push_back(std::move(slow));
    report.cases.push_back(std::move(fast));
  }
  {
    const Instance inst = workload::make_instance(workload::WorkloadSpec::poisson(
        n_pair, 0.9, workload::ExponentialSize{1.5}, kSeed + 6));
    Laps laps(0.5);
    CaseResult slow = time_engine(
        "laps_event_loop_" + std::to_string(n_pair) + suffix, repeats, inst,
        laps, false);
    CaseResult fast = time_engine("laps_fast_" + std::to_string(n_pair) + suffix,
                                  repeats, inst, laps, true);
    if (fast.median_s > 0.0) {
      fast.stats["speedup_vs_event_loop"] = slow.median_s / fast.median_s;
    }
    report.cases.push_back(std::move(slow));
    report.cases.push_back(std::move(fast));
  }
  {
    const Instance inst = workload::make_instance(workload::WorkloadSpec::poisson(
        n_pair, 0.9, workload::ExponentialSize{1.5}, kSeed + 7));
    Mlfq mlfq;
    CaseResult slow = time_engine(
        "mlfq_event_loop_" + std::to_string(n_pair) + suffix, repeats, inst,
        mlfq, false);
    CaseResult fast = time_engine("mlfq_fast_" + std::to_string(n_pair) + suffix,
                                  repeats, inst, mlfq, true);
    if (fast.median_s > 0.0) {
      fast.stats["speedup_vs_event_loop"] = slow.median_s / fast.median_s;
    }
    report.cases.push_back(std::move(slow));
    report.cases.push_back(std::move(fast));
  }

  // --- sharded sweep: per-shard EngineCore reuse over a policy grid ---------
  // Times harness::run_sweep_sharded end to end (instance generation +
  // engine) on the process pool.  On the one-core CI runner this measures
  // the sequential sharded path; the determinism tests cover the parallel
  // merge property.
  {
    const std::size_t grid = smoke ? 16 : 64;
    const std::size_t n_cell = smoke ? 500 : 2'000;
    harness::ThreadPool pool(0);
    std::vector<std::size_t> cells(grid);
    for (std::size_t i = 0; i < grid; ++i) cells[i] = i;
    double l2_total = 0.0;
    CaseResult c = measure(
        "sweep_rr_sharded_" + std::to_string(grid) + "x" +
            std::to_string(n_cell) + suffix,
        repeats, [&] {
          const std::vector<double> norms = harness::run_sweep_sharded(
              pool, cells, kSeed + 8, [] { return EngineCore{}; },
              [&](EngineCore& engine, std::size_t cell, std::uint64_t stream) {
                // stream >> 1: WorkloadSpec seeds round-trip through a long.
                const Instance inst = workload::make_instance(
                    workload::WorkloadSpec::poisson(
                        n_cell, 0.5 + 0.4 * static_cast<double>(cell) /
                                          static_cast<double>(grid),
                        workload::ExponentialSize{1.5}, stream >> 1));
                RunRequest req;
                req.record_trace = false;
                return engine.run(inst, req).stats.l2;
              });
          for (const double v : norms) l2_total += v;
        });
    c.stats["cells"] = static_cast<double>(grid);
    c.stats["jobs_per_cell"] = static_cast<double>(n_cell);
    c.stats["l2_total"] = l2_total;
    report.cases.push_back(std::move(c));
  }

  // --- RR streaming: generation + simulation, nothing materialized ----------
  // This is the headline million-job number: the body builds the generator
  // and simulates, so the time is the true end-to-end cost of the run.
  {
    std::size_t finished = 0;
    CaseResult c = measure(
        "rr_fast_stream_" + std::to_string(n_stream) + suffix, repeats, [&] {
          const auto source =
              workload::make_source(workload::WorkloadSpec::poisson(
                  n_stream, 0.9, workload::ExponentialSize{1.5}, kSeed + 2));
          const std::unique_ptr<JobStream> stream = source->stream();
          RoundRobin rr;
          RunRequest req;
          req.record_trace = false;
          finished += tempofair::run(*stream, rr, req).schedule.n();
        });
    c.stats["jobs"] = static_cast<double>(n_stream);
    c.stats["finished_total"] = static_cast<double>(finished);
    report.cases.push_back(std::move(c));
  }

  // --- RR fast path with the trace arena + an l2 read-back ------------------
  // Covers the uniform-rate compressed trace rows and the analysis side of
  // the pipeline, which the trace-off cases above skip entirely.
  {
    const Instance inst = workload::make_instance(workload::WorkloadSpec::poisson(
        n_trace, 0.9, workload::ExponentialSize{1.5}, kSeed + 3));
    RoundRobin rr;
    RunRequest req;
    double norms = 0.0;
    CaseResult c = measure(
        "rr_fast_trace_l2_" + std::to_string(n_trace) + suffix, repeats, [&] {
          const RunResult result = tempofair::run(inst, rr, req);
          norms += flow_lk_norm(result.schedule, 2.0);
        });
    c.stats["jobs"] = static_cast<double>(n_trace);
    c.stats["l2_norm_total"] = norms;
    report.cases.push_back(std::move(c));
  }

  return report;
}

}  // namespace tempofair::perf
