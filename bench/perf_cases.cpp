#include "perf_cases.h"

#include <string>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/priority_policies.h"
#include "policies/round_robin.h"
#include "workload/generators.h"
#include "workload/rng.h"
#include "workload/stream.h"

namespace tempofair::perf {

namespace {

constexpr std::uint64_t kSeed = 20260806;

/// One engine run of `policy` over `instance` through the RunRequest
/// facade, trace off, timing only the engine.  The result's completion
/// count is read back so the optimizer cannot elide the run.
CaseResult time_engine(const std::string& name, std::size_t repeats,
                       const Instance& instance, Policy& policy,
                       bool fast_path) {
  RunRequest req;
  req.record_trace = false;
  req.use_fast_path = fast_path;
  std::size_t finished = 0;
  CaseResult r = measure(name, repeats, [&] {
    finished += tempofair::run(instance, policy, req).schedule.n();
  });
  r.stats["jobs"] = static_cast<double>(instance.n());
  r.stats["finished_total"] = static_cast<double>(finished);
  return r;
}

}  // namespace

Report run_fastpath_cases(const CaseOptions& options) {
  const bool smoke = options.smoke;
  const std::size_t repeats = options.repeats;
  const std::string suffix = smoke ? "_smoke" : "";

  const std::size_t n_pair = smoke ? 10'000 : 100'000;
  const std::size_t n_stream = smoke ? 100'000 : 1'000'000;
  const std::size_t n_trace = smoke ? 5'000 : 50'000;

  Report report;

  // --- RR: generic event loop vs epoch-coalesced fast path, same jobs ------
  {
    workload::Rng rng(kSeed);
    const Instance inst = workload::poisson_load(
        n_pair, 1, 0.9, workload::ExponentialSize{1.5}, rng);
    RoundRobin rr;
    CaseResult slow = time_engine("rr_event_loop_" + std::to_string(n_pair) + suffix,
                                  repeats, inst, rr, false);
    CaseResult fast = time_engine("rr_fast_" + std::to_string(n_pair) + suffix,
                                  repeats, inst, rr, true);
    if (fast.median_s > 0.0) {
      fast.stats["speedup_vs_event_loop"] = slow.median_s / fast.median_s;
    }
    report.cases.push_back(std::move(slow));
    report.cases.push_back(std::move(fast));
  }

  // --- SRPT: same pairing on the top-priority rule --------------------------
  {
    workload::Rng rng(kSeed + 1);
    const Instance inst = workload::poisson_load(
        n_pair, 1, 0.9, workload::ExponentialSize{1.5}, rng);
    Srpt srpt;
    CaseResult slow = time_engine("srpt_event_loop_" + std::to_string(n_pair) + suffix,
                                  repeats, inst, srpt, false);
    CaseResult fast = time_engine("srpt_fast_" + std::to_string(n_pair) + suffix,
                                  repeats, inst, srpt, true);
    if (fast.median_s > 0.0) {
      fast.stats["speedup_vs_event_loop"] = slow.median_s / fast.median_s;
    }
    report.cases.push_back(std::move(slow));
    report.cases.push_back(std::move(fast));
  }

  // --- RR streaming: generation + simulation, nothing materialized ----------
  // This is the headline million-job number: the body builds the generator
  // and simulates, so the time is the true end-to-end cost of the run.
  {
    std::size_t finished = 0;
    CaseResult c = measure(
        "rr_fast_stream_" + std::to_string(n_stream) + suffix, repeats, [&] {
          workload::Rng rng(kSeed + 2);
          workload::PoissonJobStream stream = workload::poisson_load_stream(
              n_stream, 1, 0.9, workload::ExponentialSize{1.5}, rng);
          RoundRobin rr;
          RunRequest req;
          req.record_trace = false;
          finished += tempofair::run(stream, rr, req).schedule.n();
        });
    c.stats["jobs"] = static_cast<double>(n_stream);
    c.stats["finished_total"] = static_cast<double>(finished);
    report.cases.push_back(std::move(c));
  }

  // --- RR fast path with the trace arena + an l2 read-back ------------------
  // Covers the uniform-rate compressed trace rows and the analysis side of
  // the pipeline, which the trace-off cases above skip entirely.
  {
    workload::Rng rng(kSeed + 3);
    const Instance inst = workload::poisson_load(
        n_trace, 1, 0.9, workload::ExponentialSize{1.5}, rng);
    RoundRobin rr;
    RunRequest req;
    double norms = 0.0;
    CaseResult c = measure(
        "rr_fast_trace_l2_" + std::to_string(n_trace) + suffix, repeats, [&] {
          const RunResult result = tempofair::run(inst, rr, req);
          norms += flow_lk_norm(result.schedule, 2.0);
        });
    c.stats["jobs"] = static_cast<double>(n_trace);
    c.stats["l2_norm_total"] = norms;
    report.cases.push_back(std::move(c));
  }

  return report;
}

}  // namespace tempofair::perf
