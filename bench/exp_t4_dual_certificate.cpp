// T4 -- the dual-fitting certificate (the paper's Lemmas 1-4) verified
// numerically on a batch of instances: random Poisson loads across size
// distributions plus every adversarial family, for k in {1,2,3} and
// m in {1,4}, at the theorem speed eta = 2k(1+10 eps).
// Expected: every row certified -- Lemma 1 and 2 hold, the dual is feasible
// (zero violation), and the dual objective is >= eps * RR^k.  This is the
// machine-checked reproduction of Section 3 of the paper.
#include "analysis/dualfit.h"
#include "common.h"
#include "core/engine.h"
#include "policies/round_robin.h"
#include "registry.h"
#include "workload/adversarial.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 100);
  const std::uint64_t seed = ctx.seed_param(4);
  const double eps = ctx.double_param("eps", 0.05);

  ctx.banner("T4 (dual-fitting certificate)",
             "the Section 3 construction: Lemmas 1-4 hold on RR schedules "
             "at speed 2k(1+10eps)",
             "all rows certified; objective ratio >= eps = " +
                 analysis::Table::num(eps));

  struct Case {
    std::string name;
    Instance instance;
    double k;
    int machines;
  };
  std::vector<Case> cases;
  for (const double k : {1.0, 2.0, 3.0}) {
    for (const int m : {1, 4}) {
      for (const auto& wl : bench::standard_workloads(n, m, seed)) {
        cases.push_back(Case{wl.name, wl.instance, k, m});
      }
    }
  }

  analysis::Table table(
      "T4: dual certificates at eta = 2k(1+10eps), eps=" +
          analysis::Table::num(eps),
      {"workload", "k", "m", "lemma1", "lemma2", "exact", "feasible",
       "obj_ratio", "implied_lk_bound", "valid"});

  std::vector<analysis::DualFitResult> results(cases.size());
  ctx.pool().parallel_for(cases.size(), [&](std::size_t i) {
    const Case& c = cases[i];
    RoundRobin rr;
    RunRequest req;
    req.speed = analysis::theorem1_speed(c.k, eps);
    req.machines = c.machines;
    const Schedule s = tempofair::run(c.instance, rr, req).schedule;
    analysis::DualFitOptions opt;
    opt.k = c.k;
    opt.eps = eps;
    results[i] = analysis::dual_fit_certificate(s, opt);
  });

  std::size_t valid = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& r = results[i];
    if (r.certificate_valid()) ++valid;
    table.add_row({cases[i].name, analysis::Table::num(cases[i].k, 0),
                   std::to_string(cases[i].machines), r.lemma1_ok ? "ok" : "FAIL",
                   r.lemma2_ok ? "ok" : "FAIL",
                   r.lemmas_exact ? "ok" : "float-only",
                   r.feasible ? "ok" : "FAIL",
                   analysis::Table::num(r.objective_ratio, 3),
                   analysis::Table::num(r.implied_lk_ratio, 0),
                   r.certificate_valid() ? "yes" : "NO"});
  }
  ctx.emit(table);
  ctx.out() << "\ncertified " << valid << "/" << cases.size() << " cases\n";
  return valid == cases.size() ? 0 : 1;
}

const bench::Registration reg{{
    "t4",
    "T4 (dual-fitting certificate)",
    "Lemmas 1-4 hold on RR schedules at speed 2k(1+10eps)",
    "n=100 seed=4 eps=0.05",
    run,
}};

}  // namespace
