// T9 (extension) -- weighted flow time, the generalization the paper's
// technique section points at ("the analysis seems to require a weighted
// version of RR") and its references study ([1,7,20]).  We compare the
// weighted-l1 and weighted-l2 costs of HDF/HRDF (clairvoyant density
// policies), WPRR (weight-proportional RR -- the natural weighted RR), plain
// RR (weight-oblivious) and SRPT under three weight schemes.
// Expected: HDF/HRDF best on weighted norms; WPRR consistently beats
// weight-oblivious RR whenever weights are informative (random /
// proportional schemes); all ratios modest -- mirroring the unweighted
// landscape of T3.
#include "common.h"
#include "core/engine.h"
#include "workload/source.h"
#include "core/metrics.h"
#include "policies/registry.h"
#include "registry.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 200);
  const std::uint64_t seed = ctx.seed_param(14);

  ctx.banner("T9 (weighted flow, extension)",
             "weighted-flow landscape: HDF-family wins, weight-aware RR "
             "(wprr) beats weight-oblivious RR",
             "cells normalized by HDF; wprr <= rr under informative "
             "weights");

  // Scheme names double as the spec's `weights=` parameter ("uniform"
  // means no reweighting: all weights stay 1).
  const std::vector<std::string> schemes{"uniform", "random", "prop-size"};
  const std::vector<std::string> specs{"hdf", "hrdf", "wprr", "rr", "srpt"};

  for (double k : {1.0, 2.0}) {
    analysis::Table table(
        "T9: weighted l" + analysis::Table::num(k, 0) +
            "^k cost / HDF's (Poisson load .9, exp sizes, m=1)",
        {"weights", "hdf", "hrdf", "wprr", "rr", "srpt"});
    for (const std::string& scheme_name : schemes) {
      workload::WorkloadSpec spec = workload::WorkloadSpec::poisson(
          n, 0.9, workload::ExponentialSize{1.5}, seed);
      if (scheme_name != "uniform") spec.set("weights", scheme_name);
      const Instance inst = workload::make_instance(spec);

      std::vector<double> costs(specs.size());
      ctx.pool().parallel_for(specs.size(), [&](std::size_t i) {
        RunRequest req;
        req.policy = specs[i];
        req.record_trace = false;
        costs[i] =
            weighted_flow_lk_power(tempofair::run(inst, req).schedule, k);
      });

      std::vector<std::string> row{scheme_name};
      for (double c : costs) {
        row.push_back(analysis::Table::num(c / costs[0], 2));
      }
      table.add_row(std::move(row));
    }
    ctx.emit(table);
  }
  return 0;
}

const bench::Registration reg{{
    "t9",
    "T9 (weighted flow, extension)",
    "HDF-family wins weighted norms; wprr beats weight-oblivious RR",
    "n=200 seed=14",
    run,
}};

}  // namespace
