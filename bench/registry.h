// The experiment registry behind `tempofair_bench`.
//
// Each exp_*.cpp registers an ExperimentSpec (id, title, claim, default
// params and a run function) with a file-scope Registration object instead
// of defining main().  The runner looks experiments up by id, hands each
// run an isolated RunContext (output stream, shared thread pool, recorded
// params, smoke scaling) and collects a RunOutcome: status, wall/CPU time
// and the obs counter snapshot, serialized as one JSON artifact per run.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "harness/cli.h"
#include "harness/thread_pool.h"

namespace tempofair::bench {

/// Everything an experiment's run function needs from the runner.  Params
/// read through the typed accessors are recorded for the run artifact.
class RunContext {
 public:
  RunContext(const harness::Cli& cli, harness::ThreadPool& pool,
             std::ostream& out, bool smoke, bool csv);

  /// Where all experiment output goes (buffered by the runner so parallel
  /// runs do not interleave; printed in suite order).
  [[nodiscard]] std::ostream& out() noexcept { return *out_; }
  /// The shared work-stealing pool.  Nested parallel_for is safe.
  [[nodiscard]] harness::ThreadPool& pool() noexcept { return *pool_; }
  [[nodiscard]] bool csv() const noexcept { return csv_; }
  [[nodiscard]] bool smoke() const noexcept { return smoke_; }

  /// --name, or `fallback`; recorded as a run param.
  [[nodiscard]] long int_param(const std::string& name, long fallback);
  [[nodiscard]] double double_param(const std::string& name, double fallback);
  /// String-valued param (workload specs, trace paths); recorded verbatim.
  [[nodiscard]] std::string string_param(const std::string& name,
                                         const std::string& fallback);
  /// The experiment's RNG seed: --seed, or `fallback`; recorded.
  [[nodiscard]] std::uint64_t seed_param(std::uint64_t fallback);
  /// A workload-size param (--name, else `fallback`), scaled down to
  /// max(fallback / 8, floor) under --smoke when not given explicitly.
  [[nodiscard]] std::size_t size_param(const std::string& name,
                                       std::size_t fallback,
                                       std::size_t floor = 4);

  /// Prints the standard experiment banner to out().
  void banner(const std::string& id, const std::string& claim,
              const std::string& expectation);
  /// Prints `table` to out() as text, or CSV under --csv.
  void emit(const analysis::Table& table);

  /// Params read so far, as name -> value text (for the artifact).
  [[nodiscard]] const std::map<std::string, std::string>& params() const noexcept {
    return params_;
  }

 private:
  const harness::Cli* cli_;
  harness::ThreadPool* pool_;
  std::ostream* out_;
  bool smoke_;
  bool csv_;
  std::map<std::string, std::string> params_;
};

/// One registered experiment.
struct ExperimentSpec {
  std::string id;        // short key ("t1", "f10", ...)
  std::string title;     // banner heading ("T1 (Theorem 1, l2)")
  std::string claim;     // one-line claim, shown by --list
  std::string defaults;  // default-param summary, shown by --list
  std::function<int(RunContext&)> run;  // 0 = ok, nonzero = check failed
};

/// Process-wide id -> spec map in natural id order ("f2" before "f10").
class ExperimentRegistry {
 public:
  [[nodiscard]] static ExperimentRegistry& instance();

  /// Registers `spec`; throws std::logic_error on an empty/duplicate id or
  /// a missing run function.
  void add(ExperimentSpec spec);
  /// Spec for `id`, or nullptr.
  [[nodiscard]] const ExperimentSpec* find(const std::string& id) const;
  /// All specs in natural id order.
  [[nodiscard]] std::vector<const ExperimentSpec*> all() const;
  [[nodiscard]] std::size_t size() const noexcept { return specs_.size(); }

 private:
  ExperimentRegistry() = default;
  std::map<std::string, ExperimentSpec> specs_;  // keyed by id
};

/// File-scope registrar: `const Registration reg{spec};` in each exp_*.cpp.
struct Registration {
  explicit Registration(ExperimentSpec spec);
};

/// Natural id ordering: alphabetic prefix, then numeric suffix ("f2" <
/// "f10" < "t1").  Exposed for the runner's --filter validation and tests.
[[nodiscard]] bool natural_id_less(const std::string& a, const std::string& b);

/// Resolves a comma-separated --filter string against the registry: dedupes
/// and returns specs in natural suite order; an empty filter selects every
/// experiment.  Throws std::invalid_argument naming the offending id AND
/// listing all valid ids when the filter mentions an unregistered
/// experiment, so a typo on the command line is self-correcting.
[[nodiscard]] std::vector<const ExperimentSpec*> select_experiments(
    const ExperimentRegistry& registry, const std::string& filter);

/// The result of one experiment run, ready for the artifact writer.
struct RunOutcome {
  std::string id;
  std::string status;  // "ok" | "check_failed" | "error"
  int exit_code = 0;
  std::string error;   // exception text when status == "error"
  double wall_s = 0.0;
  double cpu_s = 0.0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::string> params;
  std::string output;  // everything the experiment printed

  [[nodiscard]] bool ok() const noexcept { return status == "ok"; }
};

///// Runs one experiment against a private obs::Sink: installs the sink,
/// accounts wall/CPU time, captures output and converts exceptions into
/// status = "error".  Safe to call from a pool task (nested parallelism).
[[nodiscard]] RunOutcome run_experiment(const ExperimentSpec& spec,
                                        const harness::Cli& cli,
                                        harness::ThreadPool& pool, bool smoke,
                                        bool csv);

/// Serializes `outcome` as a JSON object (the per-run artifact payload).
/// `git_rev` and `smoke` describe the producing build/run.
[[nodiscard]] std::string outcome_json(const RunOutcome& outcome,
                                       const std::string& git_rev, bool smoke);

}  // namespace tempofair::bench
