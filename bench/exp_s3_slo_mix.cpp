// S3 -- deadline/SLO mixes under speed scaling.  Jobs from one spec'd
// stream cycle through two SLO classes (interactive: tight deadline;
// batch: loose deadline); each policy runs at speed 1.0 and 1.2.  Expected:
// RR's temporal fairness keeps interactive attainment high without
// starving batch, SRPT trades batch tail for interactive wins, and a 20%
// speed bump never lowers any class's attainment (speed augmentation is
// exactly the paper's resource lever).
#include <string>
#include <vector>

#include "common.h"
#include "registry.h"
#include "workload/scenario.h"
#include "workload/source.h"

using namespace tempofair;

namespace {

int run(bench::RunContext& ctx) {
  const std::uint64_t seed = ctx.seed_param(53);
  const std::size_t n = ctx.size_param("n", 3000);
  const std::string spec = ctx.string_param(
      "workload", workload::WorkloadSpec::poisson(
                      n, 0.85, workload::BimodalSize{0.9, 0.5, 8.0}, seed)
                      .to_string());
  const double tight = ctx.double_param("tight", 6.0);
  const double loose = ctx.double_param("loose", 60.0);

  ctx.banner("S3 (SLO mix + speed scaling)",
             "attainment of a two-class deadline mix under each policy, and "
             "how a 20% speed bump moves it",
             "speed 1.2 attainment >= speed 1.0 per class and policy");

  const Instance inst = workload::make_instance(spec);
  const std::vector<workload::SloClass> classes = {
      {"interactive", tight}, {"batch", loose}};
  const std::vector<int> class_of = workload::cycle_classes(inst.n(), 2);

  analysis::Table table("S3: " + spec,
                        {"policy", "speed", "interactive", "batch", "overall"});
  int failures = 0;
  for (const std::string& policy :
       {std::string("rr"), std::string("srpt"), std::string("fcfs")}) {
    std::vector<workload::SloReport> reports;
    for (const double speed : {1.0, 1.2}) {
      RunRequest req;
      req.policy = policy;
      req.speed = speed;
      const RunResult result = tempofair::run(inst, req);
      std::vector<Time> flows(inst.n());
      for (JobId i = 0; i < static_cast<JobId>(inst.n()); ++i) {
        flows[i] = result.schedule.completion(i) - inst.job(i).release;
      }
      reports.push_back(
          workload::slo_attainment(flows, classes, class_of));
      const workload::SloReport& r = reports.back();
      table.add_row({policy, analysis::Table::num(speed, 1),
                     analysis::Table::num(r.classes[0].attainment, 4),
                     analysis::Table::num(r.classes[1].attainment, 4),
                     analysis::Table::num(r.overall_attainment, 4)});
    }
    // More speed never hurts attainment (tiny tolerance for ties).
    for (std::size_t c = 0; c < classes.size(); ++c) {
      if (reports[1].classes[c].attainment + 1e-12 <
          reports[0].classes[c].attainment) {
        ++failures;
      }
    }
  }
  ctx.emit(table);
  return failures == 0 ? 0 : 1;
}

const bench::Registration reg{{
    "s3",
    "S3 (SLO mix + speed scaling)",
    "two-class deadline attainment per policy; speed bumps never hurt",
    "seed=53 n=3000 tight=6 loose=60",
    run,
}};

}  // namespace
