// F9 (extension) -- related machines, the heterogeneous direction the
// paper's related work points at ([19,20,27]).  We fix the total capacity
// and vary the skew of the speed profile (from identical to one-fast-
// machine-dominates), comparing the natural related-machines RR against
// SRPT-on-fastest ([27]) and FCFS for l1/l2/linf.
// Expected: RR's relative l2 cost degrades gracefully with skew (equal
// sharing cannot exploit the fast machine for short jobs), SRPT exploits it;
// with identical speeds the columns reproduce the m-machine T3 picture.
#include "common.h"
#include "core/metrics.h"
#include "registry.h"
#include "relsim/relsim.h"
#include "workload/source.h"

using namespace tempofair;
using namespace tempofair::relsim;

namespace {

int run(bench::RunContext& ctx) {
  const std::size_t n = ctx.size_param("n", 200);
  const std::uint64_t seed = ctx.seed_param(61);

  ctx.banner("F9 (related machines, extension)",
             "RR vs SRPT vs FCFS on related machines of fixed total "
             "capacity, varying speed skew",
             "rel-rr / rel-srpt l2 ratio grows mildly with skew; identical "
             "speeds reproduce the multi-machine landscape");

  // Speed profiles with total capacity 4 across 4 machines.
  const std::vector<std::pair<std::string, std::vector<double>>> profiles{
      {"identical", {1.0, 1.0, 1.0, 1.0}},
      {"mild-skew", {2.0, 1.0, 0.5, 0.5}},
      {"strong-skew", {2.8, 0.6, 0.3, 0.3}},
      {"one-dominant", {3.4, 0.2, 0.2, 0.2}},
  };

  const Instance inst = workload::make_instance(workload::WorkloadSpec::poisson(
      n, 0.9, workload::ExponentialSize{1.5}, seed, 4));

  analysis::Table table(
      "F9: flow norms by policy and speed profile (total capacity 4)",
      {"profile", "policy", "l1", "l2", "linf"});

  struct Row {
    std::string profile, policy;
    double l1, l2, linf;
  };
  std::vector<Row> rows(profiles.size() * 3);

  ctx.pool().parallel_for(profiles.size(), [&](std::size_t pi) {
    RelSimOptions ro;
    ro.speeds = profiles[pi].second;
    std::unique_ptr<RelPolicy> policies[3] = {
        std::make_unique<RelatedRoundRobin>(), std::make_unique<RelatedSrpt>(),
        std::make_unique<RelatedFcfs>()};
    for (std::size_t pj = 0; pj < 3; ++pj) {
      const auto flows = simulate_related(inst, *policies[pj], ro).flows();
      rows[pi * 3 + pj] = Row{
          profiles[pi].first, std::string(policies[pj]->name()),
          lk_norm(flows, 1.0), lk_norm(flows, 2.0),
          lk_norm(flows, std::numeric_limits<double>::infinity())};
    }
  });

  for (const Row& r : rows) {
    table.add_row({r.profile, r.policy, analysis::Table::num(r.l1),
                   analysis::Table::num(r.l2), analysis::Table::num(r.linf)});
  }
  ctx.emit(table);
  return 0;
}

const bench::Registration reg{{
    "f9",
    "F9 (related machines, extension)",
    "RR vs SRPT vs FCFS on related machines, varying speed skew",
    "n=200 seed=61",
    run,
}};

}  // namespace
