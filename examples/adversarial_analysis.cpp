// Adversarial analysis walkthrough: builds the hard families, measures RR's
// competitive-ratio bracket against the LP lower bound, and then runs the
// paper's dual-fitting construction on the actual RR schedule, printing the
// full certificate -- the closest thing to "watching the proof execute".
//
//   ./adversarial_analysis [--depth L] [--k K] [--eps E]
#include <iostream>

#include "analysis/competitive.h"
#include "analysis/dualfit.h"
#include "analysis/report.h"
#include "core/engine.h"
#include "harness/cli.h"
#include "policies/round_robin.h"
#include "workload/adversarial.h"

using namespace tempofair;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const int depth = static_cast<int>(cli.get_int("depth", 9));
  const double k = cli.get_double("k", 2.0);
  const double eps = cli.get_double("eps", 0.05);

  const Instance inst = workload::geometric_levels(depth);
  std::cout << "Adversarial family: geometric_levels(" << depth << ") -- "
            << inst.summary() << "\n";

  // 1. Ratio bracket across speeds.
  analysis::Table ratios("RR l" + analysis::Table::num(k, 0) +
                             " competitive-ratio bracket",
                         {"speed", "ratio_vs_lb", "ratio_vs_proxy"});
  lpsolve::OptBoundsOptions bo;
  bo.k = k;
  const auto bounds = lpsolve::opt_bounds(inst, bo);
  for (double speed : {1.0, 1.5, 2.0, 3.0, 4.4}) {
    RoundRobin rr;
    analysis::RatioOptions opt;
    opt.k = k;
    opt.speed = speed;
    const auto m = analysis::measure_ratio(inst, rr, opt, bounds);
    ratios.add_row({analysis::Table::num(speed, 1),
                    analysis::Table::num(m.ratio_vs_lb, 2),
                    analysis::Table::num(m.ratio_vs_proxy, 2)});
  }
  ratios.print(std::cout);

  // 2. The dual-fitting certificate at the theorem speed.
  const double eta = analysis::theorem1_speed(k, eps);
  RunRequest req;
  req.policy = "rr";
  req.speed = eta;
  const Schedule schedule = run(inst, req).schedule;
  analysis::DualFitOptions dopt;
  dopt.k = k;
  dopt.eps = eps;
  const auto cert = analysis::dual_fit_certificate(schedule, dopt);

  std::cout << "\nDual-fitting certificate at eta = 2k(1+10eps) = " << eta
            << " (k=" << k << ", eps=" << eps << ", gamma=" << cert.gamma
            << "):\n"
            << "  RR^k (sum of F_j^k)        = " << cert.rr_power << "\n"
            << "  sum alpha_j                = " << cert.alpha_sum << "\n"
            << "  m * integral beta_t dt     = " << cert.beta_term << "\n"
            << "  dual objective             = " << cert.dual_objective << "\n"
            << "  Lemma 1 (alpha >= (1/2-eps)RR^k)  : "
            << (cert.lemma1_ok ? "HOLDS" : "FAILS") << "\n"
            << "  Lemma 2 (beta <= (1/2-2eps)RR^k)  : "
            << (cert.lemma2_ok ? "HOLDS" : "FAILS") << "\n"
            << "  dual feasibility (Lemmas 3-4)     : "
            << (cert.feasible ? "HOLDS" : "FAILS")
            << "  (min slack " << cert.min_slack << ")\n"
            << "  objective >= eps * RR^k           : "
            << (cert.objective_ok ? "HOLDS" : "FAILS")
            << "  (ratio " << cert.objective_ratio << ")\n"
            << "  => certificate " << (cert.certificate_valid() ? "VALID" : "INVALID")
            << "; implied l_k ratio bound at this speed: "
            << analysis::Table::num(cert.implied_lk_ratio, 1) << "\n";

  std::cout << "\n(The implied bound is loose -- gamma = k(k/eps)^k -- but it\n"
               "is a *proof*, verified numerically on this very schedule; the\n"
               "measured table above shows the actual ratios.)\n";
  return 0;
}
