// Quickstart: simulate Round Robin on a small hand-made instance, print the
// schedule, the l_k norms of flow time, and the fairness report.
//
//   ./quickstart [--machines M] [--speed S]
//
// This is the 60-second tour of the library: build an Instance, describe
// the run with a RunRequest, call run(), and read the RunResult.
#include <iostream>

#include "core/engine.h"
#include "core/fairness.h"
#include "core/metrics.h"
#include "harness/cli.h"

using namespace tempofair;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  RunRequest request;
  request.policy = "rr";
  request.machines = static_cast<int>(cli.get_int("machines", 1));
  request.speed = cli.get_double("speed", 1.0);

  // Five jobs: (release, size).  Job 2 is long; jobs 3-4 arrive late.
  const Instance instance = Instance::from_pairs(
      std::vector<std::pair<Time, Work>>{
          {0.0, 2.0}, {0.0, 1.0}, {1.0, 6.0}, {3.0, 1.0}, {3.0, 2.0}});

  std::cout << "Instance: " << instance.summary() << "\n";
  std::cout << "Policy:   Round Robin (the paper's algorithm), m="
            << request.machines << ", speed=" << request.speed << "\n\n";

  const RunResult result = run(instance, request);
  const Schedule& schedule = result.schedule;
  schedule.validate();

  std::cout << "job  release  size  completion  flow\n";
  for (JobId j = 0; j < instance.n(); ++j) {
    std::cout << j << "    " << instance.job(j).release << "        "
              << instance.job(j).size << "     " << schedule.completion(j)
              << "       " << schedule.flow(j) << "\n";
  }

  const FlowStats stats = flow_stats(schedule);
  std::cout << "\nl1 (total flow)   = " << stats.l1
            << "\nl2 norm of flow   = " << stats.l2
            << "\nmax flow (l_inf)  = " << stats.linf
            << "\nmean / stddev     = " << stats.mean << " / " << stats.stddev
            << "\n";

  const FairnessReport fairness = fairness_report(schedule);
  std::cout << "\nJain index (time-avg) = " << fairness.jain_time_avg
            << "   (RR is 1.0 by construction)\n"
            << "max service lag       = " << fairness.max_service_lag << "\n";
  return 0;
}
