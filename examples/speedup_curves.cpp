// Speed-up curves walkthrough: why the paper's Theorem 1 was a surprise.
//
// In the arbitrary speed-up curves setting (jobs alternate parallelizable
// and sequential phases), EQUI -- Round Robin's counterpart -- fails for the
// l2 norm no matter the constant speed [15], and the fix known before this
// paper was to re-weight shares toward the latest arrivals (WLAPS [12]).
// This example builds the hard stream, lets you watch EQUI's ratio grow,
// and shows the WLAPS fix -- then contrasts with the standard setting where
// plain RR is fine (Theorem 1).
//
//   ./speedup_curves [--n N] [--seq S] [--gap G]
#include <iostream>

#include "analysis/report.h"
#include "core/metrics.h"
#include "harness/cli.h"
#include "parsim/parsim.h"

using namespace tempofair;
using namespace tempofair::parsim;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 120));
  const double seq = cli.get_double("seq", 3.0);
  const double gap = cli.get_double("gap", 1.3);

  std::cout << "Stream of " << n << " jobs: parallel(1.0) then sequential("
            << seq << "), arriving every " << gap << ".\n"
            << "A sequential phase runs at rate 1 no matter how many\n"
            << "processors it holds -- EQUI cannot see that and keeps feeding\n"
            << "it an equal share.\n";

  const auto jobs = par_seq_stream(n, 1.0, seq, gap);
  ParOptProxy proxy;
  ParSimOptions opt;
  const double proxy_l2 = lk_norm(simulate_par(jobs, proxy, opt).flows(), 2.0);

  analysis::Table table("l2 norm of flow vs the clairvoyant proxy (" +
                            analysis::Table::num(proxy_l2, 1) + ")",
                        {"policy", "l2", "ratio"});
  auto report = [&](ParPolicy& p) {
    const double l2 = lk_norm(simulate_par(jobs, p, opt).flows(), 2.0);
    table.add_row({std::string(p.name()), analysis::Table::num(l2, 1),
                   analysis::Table::num(l2 / proxy_l2, 2)});
  };
  Equi equi;
  Wequi wequi;
  LapsPar laps(0.5);
  WlapsPar wlaps(0.5);
  report(equi);
  report(wequi);
  report(laps);
  report(wlaps);
  table.print(std::cout);

  std::cout << "\nRe-run with larger --n: equi's ratio keeps growing, wlaps'\n"
               "stays flat.  In the STANDARD setting of the paper (no\n"
               "sequential phases) the same Round Robin needs no weighting at\n"
               "all -- that is Theorem 1; see ./adversarial_analysis.\n";
  return 0;
}
