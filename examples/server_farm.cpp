// Server farm scenario: an m-machine cluster serving a heavy-tailed request
// stream (the server-client setting of the paper's introduction).  Compares
// every built-in policy on latency (l1), temporal fairness (l2, p99, max)
// and instantaneous fairness (Jain index), then shows how much speed
// augmentation RR needs to match SRPT's l2.
//
//   ./server_farm [--machines M] [--requests N] [--load RHO] [--seed S]
#include <iostream>

#include "analysis/report.h"
#include "core/engine.h"
#include "core/fairness.h"
#include "core/metrics.h"
#include "harness/cli.h"
#include "policies/registry.h"
#include "workload/generators.h"
#include "workload/source.h"

using namespace tempofair;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const int machines = static_cast<int>(cli.get_int("machines", 8));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("requests", 400));
  const double load = cli.get_double("load", 0.9);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  const Instance requests = workload::make_instance(
      workload::WorkloadSpec::poisson(n, load,
                                      workload::ParetoSize{1.8, 0.5, 60.0},
                                      seed, machines));
  std::cout << "Cluster: " << machines << " machines, load " << load << "\n"
            << "Requests: " << requests.summary() << "\n";

  analysis::Table table("policy comparison on the request stream",
                        {"policy", "mean", "l2", "p99", "max", "jain"});
  for (const std::string& spec : builtin_policy_specs()) {
    RunRequest req;
    req.policy = spec;
    req.machines = machines;
    const Schedule s = run(requests, req).schedule;
    const FlowStats st = flow_stats(s);
    const FairnessReport fr = fairness_report(s);
    table.add_row({spec, analysis::Table::num(st.mean, 2),
                   analysis::Table::num(st.l2, 1),
                   analysis::Table::num(st.p99, 1),
                   analysis::Table::num(st.linf, 1),
                   analysis::Table::num(fr.jain_time_avg, 3)});
  }
  table.print(std::cout);

  // How much faster must the RR cluster be to match SRPT on BOTH norms?
  // (On heavy-tailed loads RR often already beats SRPT's l2 at speed 1 --
  // SRPT's starvation of large requests inflates the tail, which is the
  // paper's motivation; the mean (l1) is where SRPT's clairvoyance wins.)
  RunRequest base;
  base.policy = "srpt";
  base.machines = machines;
  base.record_trace = false;
  const Schedule srpt_sched = run(requests, base).schedule;
  const double srpt_l1 = flow_lk_norm(srpt_sched, 1.0);
  const double srpt_l2 = flow_lk_norm(srpt_sched, 2.0);

  std::cout << "\nRR vs SRPT (l1 " << analysis::Table::num(srpt_l1, 1)
            << ", l2 " << analysis::Table::num(srpt_l2, 1)
            << ") as the RR cluster gets faster:\n";
  for (double speed : {1.0, 1.25, 1.5, 2.0, 3.0}) {
    RunRequest req = base;
    req.policy = "rr";
    req.speed = speed;
    const Schedule rs = run(requests, req).schedule;
    const double l1_ratio = flow_lk_norm(rs, 1.0) / srpt_l1;
    const double l2_ratio = flow_lk_norm(rs, 2.0) / srpt_l2;
    std::cout << "  speed " << speed << ": RR l1 = "
              << analysis::Table::num(l1_ratio, 2) << "x SRPT, l2 = "
              << analysis::Table::num(l2_ratio, 2) << "x SRPT"
              << (l1_ratio <= 1.0 && l2_ratio <= 1.0 ? "   <-- dominates" : "")
              << "\n";
  }
  std::cout << "\nTakeaway: on heavy-tailed request streams the perfectly fair\n"
               "scheduler already wins the l2 (tail-sensitive) norm; a modest\n"
               "speed advantage buys back the mean as well -- the trade\n"
               "Theorem 1 quantifies in the worst case.\n";
  return 0;
}
