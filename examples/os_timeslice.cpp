// OS time-slice tuning: the bridge from the paper's fluid Round Robin to a
// real scheduler.  Sweeps the quantum with a fixed context-switch cost and
// reports mean flow, l2 and the overhead fraction -- showing the classic
// interior optimum (small quantum = fair but switch-bound; large quantum =
// cheap but FCFS-like), with ideal RR as the q -> 0, cs -> 0 limit.
//
//   ./os_timeslice [--switch-cost C] [--jobs N] [--seed S]
#include <iostream>

#include "analysis/report.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "harness/cli.h"
#include "workload/generators.h"
#include "workload/source.h"

using namespace tempofair;

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const double cs = cli.get_double("switch-cost", 0.01);
  const std::size_t n = static_cast<std::size_t>(cli.get_int("jobs", 250));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  const Instance inst = workload::make_instance(
      workload::WorkloadSpec::poisson(n, 0.85, workload::UniformSize{0.5, 2.0},
                                      seed));

  RunRequest req;
  req.policy = "rr";
  req.record_trace = false;
  const Schedule ideal_sched = run(inst, req).schedule;
  const double ideal_mean = flow_stats(ideal_sched).mean;
  const double ideal_l2 = flow_lk_norm(ideal_sched, 2.0);

  std::cout << "Workload: " << inst.summary() << "\n"
            << "Context-switch cost: " << cs << " (per rotation)\n"
            << "Ideal (fluid) RR: mean flow " << analysis::Table::num(ideal_mean, 2)
            << ", l2 " << analysis::Table::num(ideal_l2, 1) << "\n";

  analysis::Table table("quantum sweep (QuantumRR with switch cost " +
                            analysis::Table::num(cs) + ")",
                        {"quantum", "mean_flow", "l2", "l2/ideal", "makespan"});
  double best_q = 0.0, best_l2 = std::numeric_limits<double>::infinity();
  for (double q : {20.0, 5.0, 2.0, 1.0, 0.5, 0.2, 0.1, 0.05, 0.02}) {
    req.policy = "qrr:" + std::to_string(q) + "," + std::to_string(cs);
    const Schedule s = run(inst, req).schedule;
    const double l2 = flow_lk_norm(s, 2.0);
    if (l2 < best_l2) {
      best_l2 = l2;
      best_q = q;
    }
    table.add_row({analysis::Table::num(q), analysis::Table::num(flow_stats(s).mean, 2),
                   analysis::Table::num(l2, 1),
                   analysis::Table::num(l2 / ideal_l2, 3),
                   analysis::Table::num(s.makespan(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nBest quantum for l2 at this switch cost: " << best_q
            << " (l2 " << analysis::Table::num(best_l2, 1) << ", "
            << analysis::Table::num(best_l2 / ideal_l2, 2)
            << "x the fluid-RR ideal)\n"
            << "With --switch-cost 0 the sweep converges to the ideal as the\n"
               "quantum shrinks -- the fluid model the paper analyzes is the\n"
               "honest limit of the deployable scheduler.\n";
  return 0;
}
