// Packet fairness on a shared link: the application domain in which the
// paper situates Round Robin's practical use ([8] Chaskar-Madhow, [17]
// Hahne, [25] Shreedhar-Varghese).  A few flows with very different packet
// sizes share one link; compare FIFO, DRR and (weighted) SCFQ.
//
//   ./packet_fairness [--flows F] [--rate R]
#include <cmath>
#include <iostream>

#include "analysis/report.h"
#include "harness/cli.h"
#include "netsim/schedulers.h"

using namespace tempofair;
using namespace tempofair::netsim;

namespace {

std::vector<Packet> backlogged(FlowId flows, double bytes_per_flow) {
  std::vector<Packet> packets;
  for (FlowId f = 0; f < flows; ++f) {
    const double size = std::pow(2.0, f);  // sizes 1, 2, 4, ...
    const auto count = static_cast<std::size_t>(bytes_per_flow / size);
    for (std::size_t i = 0; i < count; ++i) packets.push_back(Packet{f, size, 0.0});
  }
  return packets;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::Cli cli(argc, argv);
  const FlowId flows = static_cast<FlowId>(cli.get_int("flows", 4));
  const double rate = cli.get_double("rate", 1.0);

  const auto packets = backlogged(flows, 2048.0);
  const double window = 2048.0;  // every flow stays backlogged this long

  std::cout << flows << " backlogged flows, packet sizes 1, 2, 4, ... share a"
            << " rate-" << rate << " link.\n"
            << "A fair scheduler gives each flow an equal share of BYTES, no\n"
            << "matter how its traffic is packetized.\n";

  analysis::Table table("scheduler fairness over the backlogged window",
                        {"scheduler", "jain_index", "min/max_share"});
  {
    FifoScheduler fifo;
    const auto r = simulate_link(packets, fifo, rate, window);
    table.add_row({"fifo", analysis::Table::num(r.jain_throughput, 4),
                   analysis::Table::num(r.min_max_share, 3)});
  }
  {
    DrrScheduler drr(std::pow(2.0, flows - 1));  // quantum >= max packet
    const auto r = simulate_link(packets, drr, rate, window);
    table.add_row({"drr", analysis::Table::num(r.jain_throughput, 4),
                   analysis::Table::num(r.min_max_share, 3)});
  }
  {
    ScfqScheduler wfq;
    const auto r = simulate_link(packets, wfq, rate, window);
    table.add_row({"wfq(scfq)", analysis::Table::num(r.jain_throughput, 4),
                   analysis::Table::num(r.min_max_share, 3)});
  }
  table.print(std::cout);

  std::cout << "\nDRR is the packetized Round Robin: the instantaneous-"
               "fairness\nproperty the paper starts from, realized with O(1) "
               "work per packet.\n";
  return 0;
}
