// tempofair_bench -- the unified experiment runner.
//
// All experiments (bench/exp_*.cpp) self-register with the
// ExperimentRegistry; this binary lists them (--list), selects a subset
// (--filter t1,t4,f5), runs them in parallel on one shared work-stealing
// pool (--jobs N) and writes one JSON artifact per run (params, seed, git
// rev, wall/CPU time, obs counters) plus a suite.json under --out-dir
// (default runs/<timestamp>).  Experiment payloads go to stdout in suite
// order -- byte-identical to the old one-binary-per-experiment output for
// the same flags; runner chatter (progress, summary) goes to stderr.
#include <chrono>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "harness/cli.h"
#include "harness/thread_pool.h"
#include "obs/obs.h"
#include "registry.h"

#ifndef TEMPOFAIR_GIT_REV
#define TEMPOFAIR_GIT_REV "unknown"
#endif

using namespace tempofair;

namespace {

std::string timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  localtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y%m%d-%H%M%S", &tm);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  harness::Options options(
      "tempofair_bench",
      "Unified runner for the registered experiments (see EXPERIMENTS.md).\n"
      "Payloads print to stdout in suite order; progress and the summary\n"
      "table go to stderr; one JSON artifact per run lands in --out-dir.");
  options.flag("list", "list registered experiments and exit")
      .value("filter", std::string(),
             "comma-separated experiment ids to run (default: all)")
      .flag("csv", "emit CSV payloads instead of tables")
      .value("n", 0, "override every experiment's workload size")
      .value("eps", 0.05, "override eps where used (t2, t4)")
      .value("trials", 0, "override trial counts (t8, f5)")
      .value("trace", std::string(),
             "replay an external trace file where supported (s1)")
      .value("workload", std::string(),
             "override the workload spec where supported (s2, s3)")
      .value("grid-out", std::string(),
             "write a deterministic sweep-grid JSON where supported (f5); "
             "byte-identical for any --jobs value")
      .value("out-dir", std::string(),
             "artifact directory (default runs/<timestamp>)")
      .flag("no-artifacts", "skip writing JSON run artifacts");
  harness::add_jobs_flag(options);
  harness::add_smoke_flag(options);
  harness::add_quiet_flag(options);
  harness::add_seed_flag(options, 0);

  harness::Parsed parsed;
  try {
    parsed = options.parse(argc, argv);
  } catch (const harness::CliError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (parsed.help_requested()) {
    options.print_help(std::cout);
    return 0;
  }

  const auto& registry = bench::ExperimentRegistry::instance();
  const auto all = registry.all();

  if (parsed.flag("list")) {
    analysis::Table table(
        "registered experiments (" + std::to_string(all.size()) + ")",
        {"id", "title", "claim", "defaults"});
    for (const bench::ExperimentSpec* spec : all) {
      table.add_row({spec->id, spec->title, spec->claim, spec->defaults});
    }
    if (parsed.flag("csv")) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    return 0;
  }

  // Selection: --filter ids, validated, deduped, run in natural suite order.
  // An unknown id is a hard error that lists every valid id.
  std::vector<const bench::ExperimentSpec*> selected;
  try {
    selected = bench::select_experiments(registry, parsed.get_string("filter"));
  } catch (const std::invalid_argument& e) {
    std::cerr << "tempofair_bench: " << e.what() << " (see --list)\n";
    return 2;
  }
  if (selected.empty()) {
    std::cerr << "tempofair_bench: no experiments selected\n";
    return 2;
  }

  // Pass the explicitly-given overrides through to the experiments' param
  // lookups via a synthetic Cli; defaults stay per-experiment.
  std::vector<std::string> fwd{"tempofair_bench"};
  for (const char* name : {"seed", "n", "trials"}) {
    if (parsed.given(name)) {
      fwd.push_back(std::string("--") + name);
      fwd.push_back(std::to_string(parsed.get_int(name)));
    }
  }
  if (parsed.given("eps")) {
    std::ostringstream text;
    text << parsed.get_double("eps");
    fwd.push_back("--eps");
    fwd.push_back(text.str());
  }
  for (const char* name : {"trace", "workload", "grid-out"}) {
    if (parsed.given(name)) {
      fwd.push_back(std::string("--") + name);
      fwd.push_back(parsed.get_string(name));
    }
  }
  if (parsed.flag("csv")) fwd.push_back("--csv");
  std::vector<const char*> fwd_argv;
  fwd_argv.reserve(fwd.size());
  for (const std::string& token : fwd) fwd_argv.push_back(token.c_str());
  const harness::Cli cli(static_cast<int>(fwd_argv.size()), fwd_argv.data());

  const bool smoke = parsed.flag("smoke");
  const bool csv = parsed.flag("csv");
  const bool quiet = parsed.flag("quiet");
  const bool write_artifacts = !parsed.flag("no-artifacts");
  const std::string git_rev = TEMPOFAIR_GIT_REV;

  std::string out_dir = parsed.get_string("out-dir");
  if (write_artifacts && out_dir.empty()) out_dir = "runs/" + timestamp();
  if (write_artifacts) std::filesystem::create_directories(out_dir);

  const long jobs_arg = parsed.get_int("jobs");
  harness::ThreadPool pool(jobs_arg <= 0 ? 0
                                         : static_cast<std::size_t>(jobs_arg));

  // One pool task per experiment; each experiment's inner parallel_for fans
  // out on the same pool (nested submits + helping joins keep every worker
  // busy).  The main thread blocks on futures in suite order, so stdout is
  // deterministic regardless of --jobs.
  obs::Progress progress("bench", selected.size());
  const auto suite_start = std::chrono::steady_clock::now();
  std::vector<std::future<bench::RunOutcome>> futures;
  futures.reserve(selected.size());
  for (const bench::ExperimentSpec* spec : selected) {
    futures.push_back(pool.submit([spec, &cli, &pool, smoke, csv] {
      return bench::run_experiment(*spec, cli, pool, smoke, csv);
    }));
  }

  std::vector<bench::RunOutcome> outcomes;
  outcomes.reserve(selected.size());
  for (std::future<bench::RunOutcome>& fut : futures) {
    outcomes.push_back(fut.get());
    std::cout << outcomes.back().output << std::flush;
    if (!quiet) progress.tick();
  }
  if (!quiet) progress.finish();
  const double suite_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    suite_start)
          .count();

  if (write_artifacts) {
    for (const bench::RunOutcome& outcome : outcomes) {
      std::ofstream file(out_dir + "/" + outcome.id + ".json");
      file << bench::outcome_json(outcome, git_rev, smoke);
    }
    std::ofstream suite(out_dir + "/suite.json");
    suite << "{\n  \"git_rev\": \"" << git_rev << "\",\n"
          << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
          << "  \"jobs\": " << pool.size() << ",\n"
          << "  \"wall_s\": " << suite_wall << ",\n"
          << "  \"runs\": [";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const bench::RunOutcome& o = outcomes[i];
      suite << (i == 0 ? "\n" : ",\n") << "    {\"id\": \"" << o.id
            << "\", \"status\": \"" << o.status
            << "\", \"exit_code\": " << o.exit_code
            << ", \"wall_s\": " << o.wall_s << ", \"cpu_s\": " << o.cpu_s
            << "}";
    }
    suite << "\n  ]\n}\n";
  }

  bool all_ok = true;
  if (!quiet) {
    analysis::Table summary(
        "suite summary (jobs=" + std::to_string(pool.size()) +
            ", wall=" + analysis::Table::num(suite_wall, 2) + "s)",
        {"id", "status", "wall_s", "cpu_s", "engine_runs"});
    for (const bench::RunOutcome& o : outcomes) {
      all_ok = all_ok && o.ok();
      const auto it = o.counters.find("engine.runs");
      summary.add_row(
          {o.id, o.status + (o.error.empty() ? "" : " (" + o.error + ")"),
           analysis::Table::num(o.wall_s, 2), analysis::Table::num(o.cpu_s, 2),
           it == o.counters.end() ? "-" : std::to_string(it->second)});
    }
    summary.print(std::cerr);
    if (write_artifacts) std::cerr << "artifacts: " << out_dir << "\n";
  } else {
    for (const bench::RunOutcome& o : outcomes) all_ok = all_ok && o.ok();
  }
  return all_ok ? 0 : 1;
}
