// tempofair_client: submit a workload to a running tempofaird and report
// its flow-time metrics.
//
//   tempofair_client --socket /tmp/tempofair.sock --instance jobs.csv
//       --policy rr --k 2 [--watch] [--chunk 512] [--show-stats]
//   tempofair_client --socket /tmp/tempofair.sock
//       --workload poisson:n=5000,load=0.9,seed=7 --policy rr
//
// With --instance the jobs travel over the wire in chunks; with --workload
// only the spec string travels (protocol v3) and the daemon synthesizes the
// stream server-side.  Either way the daemon executes the same RunRequest
// the offline tools use, and the final statistics are byte-identical to a
// local `run()` on the same jobs.  --watch polls the live metrics
// (QUERY_METRICS) while the run is in flight.
#include <chrono>
#include <iostream>
#include <thread>

#include "core/engine.h"
#include "harness/cli.h"
#include "serve/client.h"
#include "workload/trace_io.h"

namespace {

using tempofair::serve::RunPhase;

int run_client(const tempofair::harness::Parsed& parsed) {
  const std::string socket_path = parsed.get_string("socket");
  const long port = parsed.get_int("port");
  if (socket_path.empty() && port < 0) {
    throw tempofair::harness::CliError(
        "need --socket PATH or --port N to reach a daemon");
  }
  const tempofair::RunRequest request =
      tempofair::harness::run_request_from_flags(parsed);
  const std::string instance_path = parsed.get_string("instance");
  if (instance_path.empty() == request.workload.empty()) {
    throw tempofair::harness::CliError(
        "exactly one of --instance or --workload is required");
  }
  const double k = parsed.get_double("k");
  const long chunk = parsed.get_int("chunk");
  if (chunk < 0) throw tempofair::harness::CliError("--chunk: must be >= 0");

  tempofair::serve::Client client =
      socket_path.empty()
          ? tempofair::serve::Client::connect_tcp(static_cast<int>(port),
                                                  parsed.get_string("tenant"))
          : tempofair::serve::Client::connect_unix(socket_path,
                                                   parsed.get_string("tenant"));
  const bool quiet = parsed.flag("quiet");
  std::uint64_t run_id = 0;
  if (!instance_path.empty()) {
    const tempofair::Instance instance =
        tempofair::workload::read_csv_file(instance_path);
    if (!quiet) {
      std::cerr << "connected to " << client.server() << " (session "
                << client.session_id() << "); submitting " << instance.n()
                << " jobs\n";
    }
    run_id = client.submit(instance, request, static_cast<std::size_t>(chunk));
  } else {
    if (!quiet) {
      std::cerr << "connected to " << client.server() << " (session "
                << client.session_id() << "); submitting spec "
                << request.workload << "\n";
    }
    run_id = client.submit_spec(request.workload, request);
  }

  if (parsed.flag("watch")) {
    for (;;) {
      const tempofair::serve::MetricsMsg m =
          client.query_metrics(run_id, {k}, {99.0});
      std::cerr << "  [" << tempofair::serve::to_string(m.phase) << "] "
                << m.completed << "/" << m.total << " done, l" << k << "="
                << (m.k_values.empty() ? 0.0 : m.k_values[0]) << ", p99="
                << (m.pct_values.empty() ? 0.0 : m.pct_values[0]) << "\n";
      if (m.phase != RunPhase::kQueued && m.phase != RunPhase::kRunning) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  const tempofair::serve::ResultMsg result = client.wait(run_id);
  std::cout << "policy " << result.policy << ", n=" << result.stats.n
            << ", engine wall " << result.wall_seconds << "s\n"
            << "  total flow (l1): " << result.stats.l1 << "\n"
            << "  l2 / l3 norm:    " << result.stats.l2 << " / "
            << result.stats.l3 << "\n"
            << "  mean / stddev:   " << result.stats.mean << " / "
            << result.stats.stddev << "\n"
            << "  p95 / p99 / max: " << result.stats.p95 << " / "
            << result.stats.p99 << " / " << result.stats.linf << "\n"
            << "  invariants:      " << tempofair::summarize(result.invariants)
            << "\n";
  for (const tempofair::InvariantViolation& v : result.invariants.reports) {
    std::cerr << "  INVARIANT VIOLATION [" << v.check << "] t=" << v.time
              << ": " << v.detail << "\n";
  }

  if (parsed.flag("show-stats")) {
    std::uint64_t session_violations = 0;
    std::cout << "session counters:\n";
    for (const auto& [name, value] : client.stats().counters) {
      std::cout << "  " << name << " = " << value << "\n";
      if (name == "invariants.violations") session_violations = value;
    }
    if (session_violations > 0) {
      std::cerr << "warning: this session has recorded " << session_violations
                << " invariant violation(s) across its runs\n";
    }
  }
  return result.invariants.ok() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  using tempofair::harness::Options;
  Options options("tempofair_client",
                  "Submit a workload to a running tempofaird and report its "
                  "flow-time metrics.");
  options
      .value("socket", std::string(), "daemon unix socket path")
      .value("port", -1L, "daemon TCP port on 127.0.0.1")
      .value("tenant", std::string("cli"), "tenant name for the session")
      .value("instance", std::string(), "CSV instance file to submit")
      .value("chunk", 0L, "jobs per SUBMIT_JOBS frame (0 = one frame)")
      .value("k", 2.0, "l_k norm to report while watching")
      .flag("watch", "poll live metrics while the run executes")
      .flag("show-stats", "print the session's observability counters");
  tempofair::harness::add_run_flags(options);
  tempofair::harness::add_quiet_flag(options);

  try {
    const tempofair::harness::Parsed parsed = options.parse(argc, argv);
    if (parsed.help_requested()) {
      options.print_help(std::cout);
      return 0;
    }
    return run_client(parsed);
  } catch (const tempofair::harness::CliError& e) {
    std::cerr << "tempofair_client: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "tempofair_client: " << e.what() << "\n";
    return 1;
  }
}
