// Adversary-instance search CLI (src/search/).
//
//   tempofair_adversary [--policy rr] [--k 2] [--machines 1] [--speed 1.0]
//                       [--seed 1] [--budget tiny|small|full|N]
//                       [--max-jobs 12] [--out record.json]
//                       [--committed record.json] [--quiet]
//   tempofair_adversary --verify record.json [more.json ...]
//
// Search mode runs the budgeted optimizer for one (policy, k, machines,
// speed) cell and prints the best certified ratio; --out archives the best
// record as tempofair-adversary-v1 JSON, and --committed compares the result
// against a previously committed record (after re-verifying it -- a
// committed record that fails re-verification is a hard error).
//
// Verify mode re-verifies archived records from their JSON alone: re-run
// the policy, rebuild the recorded LP grid, re-certify exactly.
//
// Exit codes: 0 ok, 1 a record failed re-verification (or the search found
// nothing certifiable), 2 usage error.
#include <cmath>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cli.h"
#include "search/adversary.h"
#include "search/record.h"

namespace {

using tempofair::search::AdversaryRecord;

std::size_t parse_budget(const std::string& text) {
  if (text == "tiny") return 60;
  if (text == "small") return 400;
  if (text == "full") return 4000;
  return static_cast<std::size_t>(
      tempofair::harness::detail::parse_long("--budget", text));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

AdversaryRecord load_record(const std::string& path) {
  return tempofair::search::record_from_json(read_file(path));
}

int verify_files(const std::vector<std::string>& paths) {
  bool all_ok = true;
  for (const std::string& path : paths) {
    std::string verdict;
    try {
      const AdversaryRecord rec = load_record(path);
      const tempofair::search::VerifyReport rep =
          tempofair::search::verify_record(rec);
      if (rep.ok) {
        std::cout << path << ": ok (policy=" << rec.policy << " k=" << rec.k
                  << " ratio=" << rec.ratio << ")\n";
        continue;
      }
      verdict = rep.error;
    } catch (const std::exception& e) {
      verdict = e.what();
    }
    std::cout << path << ": FAILED (" << verdict << ")\n";
    all_ok = false;
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using tempofair::harness::Options;
  using tempofair::harness::Parsed;

  Options options("tempofair_adversary",
                  "Search for instances maximizing the certified l_k ratio");
  options.value("policy", std::string("rr"), "policy spec to attack")
      .value("k", 2.0, "l_k norm exponent")
      .value("machines", 1, "machine count")
      .value("speed", 1.0, "policy speed (OPT stays at speed 1)")
      .value("seed", 1, "search seed")
      .value("budget", std::string("small"),
             "screening budget: tiny|small|full or a count")
      .value("max-jobs", 12, "instance-size cap")
      .value("out", std::string(), "write the best record as JSON")
      .value("committed", std::string(),
             "committed record to re-verify and compare against")
      .flag("verify", "re-verify record files (positional args) and exit")
      .flag("quiet", "only print the final summary line");

  Parsed parsed;
  try {
    parsed = options.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "tempofair_adversary: " << e.what() << "\n";
    return 2;
  }
  if (parsed.help_requested()) {
    options.print_help(std::cout);
    return 0;
  }

  if (parsed.flag("verify")) {
    if (parsed.positional().empty()) {
      std::cerr << "tempofair_adversary: --verify needs record files\n";
      return 2;
    }
    try {
      return verify_files(parsed.positional());
    } catch (const std::exception& e) {
      std::cerr << "tempofair_adversary: " << e.what() << "\n";
      return 1;
    }
  }
  if (!parsed.positional().empty()) {
    std::cerr << "tempofair_adversary: unexpected positional argument "
              << parsed.positional().front() << "\n";
    return 2;
  }

  tempofair::search::SearchOptions search;
  search.policy = parsed.get_string("policy");
  search.k = parsed.get_double("k");
  search.machines = static_cast<int>(parsed.get_int("machines"));
  search.speed = parsed.get_double("speed");
  search.seed = static_cast<std::uint64_t>(parsed.get_int("seed"));
  search.max_jobs = static_cast<std::size_t>(parsed.get_int("max-jobs"));
  try {
    search.budget = parse_budget(parsed.get_string("budget"));
  } catch (const std::exception& e) {
    std::cerr << "tempofair_adversary: " << e.what() << "\n";
    return 2;
  }

  tempofair::search::SearchResult result;
  try {
    result = tempofair::search::search_adversary(search);
  } catch (const std::exception& e) {
    std::cerr << "tempofair_adversary: " << e.what() << "\n";
    return 2;
  }
  if (!result.found) {
    std::cerr << "tempofair_adversary: no candidate certified\n";
    return 1;
  }

  if (!parsed.flag("quiet")) {
    std::cout << "  evals=" << result.stats.evals
              << " certifications=" << result.stats.certifications
              << " improvements=" << result.stats.improvements
              << " skipped_degenerate=" << result.stats.skipped_degenerate
              << " restarts=" << result.stats.restarts << "\n"
              << "  best: family=" << result.best.family
              << " jobs=" << result.best.sizes.size()
              << " cost_power=" << result.best.cost_power
              << " certified_lb=" << result.best.certified_lb << "\n";
  }

  bool beats_committed = true;
  const std::string committed_path = parsed.get_string("committed");
  if (!committed_path.empty()) {
    try {
      const AdversaryRecord committed = load_record(committed_path);
      const tempofair::search::VerifyReport rep =
          tempofair::search::verify_record(committed);
      if (!rep.ok) {
        std::cerr << "tempofair_adversary: committed record " << committed_path
                  << " failed re-verification: " << rep.error << "\n";
        return 1;
      }
      // Relative slack matches verify_record's cross-libm tolerance.
      beats_committed =
          result.best.ratio >= committed.ratio * (1.0 - 1e-9);
      if (!parsed.flag("quiet")) {
        std::cout << "  committed: ratio=" << committed.ratio << " ("
                  << committed_path << ") -> "
                  << (beats_committed ? "matched-or-beaten" : "NOT matched")
                  << "\n";
      }
    } catch (const std::exception& e) {
      std::cerr << "tempofair_adversary: " << e.what() << "\n";
      return 1;
    }
  }

  const std::string out_path = parsed.get_string("out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "tempofair_adversary: cannot write " << out_path << "\n";
      return 2;
    }
    out << tempofair::search::record_to_json(result.best);
  }

  std::cout << "tempofair_adversary: policy=" << result.best.policy
            << " k=" << result.best.k << " machines=" << result.best.machines
            << " speed=" << result.best.speed << " seed=" << result.best.seed
            << " budget=" << result.best.budget
            << " ratio=" << result.best.ratio
            << " beats_committed=" << (beats_committed ? "yes" : "no") << "\n";
  return 0;
}
