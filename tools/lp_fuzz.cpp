// Differential LP fuzz runner for CI smoke jobs.
//
//   lp_fuzz [--count N] [--seed S] [--out file.json]
//
// Runs run_lp_fuzz() (float simplex vs exact-rational solver vs min-cost
// flow, see src/lpsolve/lp_fuzz.h), prints a summary, optionally writes a
// JSON artifact recording the seed, and exits nonzero on any disagreement.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "lpsolve/lp_fuzz.h"

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using tempofair::lpsolve::LpFuzzOptions;
  using tempofair::lpsolve::LpFuzzReport;

  LpFuzzOptions options;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* name) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "lp_fuzz: " << name << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--count") {
      options.count = std::stoull(need_value("--count"));
    } else if (arg == "--seed") {
      options.seed = std::stoull(need_value("--seed"));
    } else if (arg == "--out") {
      out_path = need_value("--out");
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: lp_fuzz [--count N] [--seed S] [--out file.json]\n";
      return 0;
    } else {
      std::cerr << "lp_fuzz: unknown argument " << arg << "\n";
      return 2;
    }
  }

  const LpFuzzReport rep = tempofair::lpsolve::run_lp_fuzz(options);

  std::cout << "lp_fuzz: seed=" << rep.seed << " cases=" << rep.count
            << " (optimal=" << rep.optimal << " infeasible=" << rep.infeasible
            << " unbounded=" << rep.unbounded
            << " iter_limit=" << rep.iter_limit << ")"
            << " certified=" << rep.certified
            << " warm_starts=" << rep.warm_starts
            << " flow_cases=" << rep.flow_cases
            << " disagreements=" << rep.disagreements.size() << "\n";
  for (const auto& d : rep.disagreements) {
    std::cout << "  case " << d.case_index << ": " << d.what << "\n";
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "lp_fuzz: cannot write " << out_path << "\n";
      return 2;
    }
    out << "{\n"
        << "  \"seed\": " << rep.seed << ",\n"
        << "  \"count\": " << rep.count << ",\n"
        << "  \"optimal\": " << rep.optimal << ",\n"
        << "  \"infeasible\": " << rep.infeasible << ",\n"
        << "  \"unbounded\": " << rep.unbounded << ",\n"
        << "  \"iter_limit\": " << rep.iter_limit << ",\n"
        << "  \"certified\": " << rep.certified << ",\n"
        << "  \"warm_starts\": " << rep.warm_starts << ",\n"
        << "  \"flow_cases\": " << rep.flow_cases << ",\n"
        << "  \"disagreements\": [";
    bool first = true;
    for (const auto& d : rep.disagreements) {
      out << (first ? "\n" : ",\n") << "    {\"case\": " << d.case_index
          << ", \"what\": \"" << json_escape(d.what) << "\"}";
      first = false;
    }
    out << (first ? "]" : "\n  ]") << ",\n"
        << "  \"ok\": " << (rep.ok() ? "true" : "false") << "\n"
        << "}\n";
  }

  return rep.ok() ? 0 : 1;
}
