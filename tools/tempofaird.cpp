// tempofaird: long-running scheduling-as-a-service daemon.
//
//   tempofaird --socket /tmp/tempofair.sock [--port 7411] [--jobs 4]
//              [--max-active-runs 16] [--max-buffered-jobs 1000000]
//              [--trace-root DIR] [--quiet]
//
// Tenants connect over the unix socket and/or loopback TCP, stream job sets
// through the framed protocol (see DESIGN.md section 7), and query live
// flow-time metrics while their runs execute on the shared work-stealing
// pool.  Stop with SIGINT/SIGTERM; shutdown cancels outstanding runs and
// drains the pool before exiting.
#include <csignal>
#include <iostream>
#include <semaphore>
#include <string>

#include "harness/cli.h"
#include "serve/daemon.h"

namespace {

std::binary_semaphore g_stop_signal{0};

extern "C" void handle_stop_signal(int) { g_stop_signal.release(); }

}  // namespace

int main(int argc, char** argv) {
  using tempofair::harness::Options;
  Options options("tempofaird",
                  "Scheduling-as-a-service daemon: accepts tenant job "
                  "streams over a framed socket protocol and runs them "
                  "through the simulation engine.");
  options
      .value("socket", std::string(),
             "unix socket path to listen on (empty = none)")
      .value("port", -1L,
             "loopback TCP port to listen on (-1 = none, 0 = ephemeral)")
      .value("max-active-runs", 16L,
             "per-session cap on queued+running runs before THROTTLED")
      .value("max-buffered-jobs", 1'000'000L,
             "per-session cap on buffered jobs before THROTTLED")
      .value("trace-root", std::string(),
             "directory trace: workload specs may read from "
             "(empty = trace specs rejected)");
  tempofair::harness::add_jobs_flag(options);
  tempofair::harness::add_quiet_flag(options);

  try {
    const tempofair::harness::Parsed parsed = options.parse(argc, argv);
    if (parsed.help_requested()) {
      options.print_help(std::cout);
      return 0;
    }
    tempofair::serve::DaemonConfig config;
    config.unix_socket_path = parsed.get_string("socket");
    const long port = parsed.get_int("port");
    if (port < -1 || port > 65535) {
      throw tempofair::harness::CliError("--port: must be in [-1, 65535]");
    }
    config.tcp_port = static_cast<int>(port);
    const long jobs = parsed.get_int("jobs");
    if (jobs < 0) throw tempofair::harness::CliError("--jobs: must be >= 0");
    config.workers = static_cast<std::size_t>(jobs);
    const long max_runs = parsed.get_int("max-active-runs");
    const long max_jobs = parsed.get_int("max-buffered-jobs");
    if (max_runs < 1) {
      throw tempofair::harness::CliError("--max-active-runs: must be >= 1");
    }
    if (max_jobs < 1) {
      throw tempofair::harness::CliError("--max-buffered-jobs: must be >= 1");
    }
    config.max_active_runs = static_cast<std::size_t>(max_runs);
    config.max_buffered_jobs = static_cast<std::size_t>(max_jobs);
    config.trace_root = parsed.get_string("trace-root");

    tempofair::serve::Daemon daemon(config);
    daemon.start();
    const bool quiet = parsed.flag("quiet");
    if (!quiet) {
      std::cerr << "tempofaird: listening on";
      if (!config.unix_socket_path.empty()) {
        std::cerr << " unix:" << config.unix_socket_path;
      }
      if (config.tcp_port >= 0) {
        std::cerr << " tcp:127.0.0.1:" << daemon.tcp_port();
      }
      std::cerr << "\n";
    }
    // The smoke script and tests need the ephemeral port on stdout even in
    // quiet mode.
    if (config.tcp_port == 0) {
      std::cout << daemon.tcp_port() << std::endl;
    }

    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    g_stop_signal.acquire();

    if (!quiet) std::cerr << "tempofaird: shutting down\n";
    daemon.stop();
    if (!quiet) {
      for (const auto& [name, value] : daemon.stats()) {
        std::cerr << "  " << name << " = " << value << "\n";
      }
    }
    return 0;
  } catch (const tempofair::harness::CliError& e) {
    std::cerr << "tempofaird: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "tempofaird: " << e.what() << "\n";
    return 1;
  }
}
