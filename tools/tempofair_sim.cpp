// tempofair-sim: command-line front end to the library.
//
//   tempofair-sim generate --out jobs.csv [--workload poisson|bursty|adv-geometric|adv-batchstream]
//                 [--n 100] [--load 0.9] [--machines 1] [--dist exp:1.5|fixed:1|uniform:0.5,2|pareto:1.8,0.5|bimodal:0.9,1,20]
//                 [--seed 1]
//   tempofair-sim run --instance jobs.csv --policy rr [--machines 1] [--speed 1]
//                 [--k 2] [--fairness] [--certificate] [--eps 0.05]
//   tempofair-sim compare --instance jobs.csv [--machines 1] [--k 2]
//
// `run` prints the flow-time statistics (and optionally the fairness report
// and the paper's dual-fitting certificate); `compare` tabulates every
// built-in policy on the instance.  All three subcommands parse strictly
// (unknown flags are errors) and `run` speaks the shared run-flag
// vocabulary from harness/cli.h, so a RunRequest built here is spelled the
// same as one built by tempofair_client or tempofaird.
#include <iostream>
#include <limits>
#include <string>

#include "analysis/dualfit.h"
#include "analysis/report.h"
#include "core/engine.h"
#include "core/fairness.h"
#include "core/metrics.h"
#include "harness/cli.h"
#include "policies/registry.h"
#include "workload/adversarial.h"
#include "workload/generators.h"
#include "workload/trace_io.h"

using namespace tempofair;

namespace {

int usage() {
  std::cerr << "usage: tempofair-sim generate|run|compare [options]\n"
               "       tempofair-sim COMMAND --help for the option listing\n"
               "policy specs: rr srpt sjf fcfs setf wrr mlfq hdf hrdf wprr "
               "laps:B qrr:Q[,CS]\n";
  return 2;
}

workload::SizeDist parse_dist(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const std::string args = colon == std::string::npos ? "" : spec.substr(colon + 1);
  auto nums = [&args] {
    std::vector<double> out;
    std::size_t pos = 0;
    while (pos < args.size()) {
      std::size_t next = args.find(',', pos);
      if (next == std::string::npos) next = args.size();
      out.push_back(std::stod(args.substr(pos, next - pos)));
      pos = next + 1;
    }
    return out;
  }();
  if (name == "exp") return workload::ExponentialSize{nums.empty() ? 1.0 : nums[0]};
  if (name == "fixed") return workload::FixedSize{nums.empty() ? 1.0 : nums[0]};
  if (name == "uniform" && nums.size() >= 2) return workload::UniformSize{nums[0], nums[1]};
  if (name == "pareto" && nums.size() >= 2) {
    return workload::ParetoSize{nums[0], nums[1], nums.size() > 2 ? nums[2] : 0.0};
  }
  if (name == "bimodal" && nums.size() >= 3) {
    return workload::BimodalSize{nums[0], nums[1], nums[2]};
  }
  throw std::invalid_argument("unknown --dist spec '" + spec + "'");
}

int cmd_generate(int argc, const char* const* argv) {
  harness::Options options("tempofair-sim generate",
                           "generate a workload instance as a CSV file");
  options.value("out", std::string(), "output CSV path (required)")
      .value("workload", std::string("poisson"),
             "poisson | bursty | adv-geometric | adv-batchstream")
      .value("n", 100, "number of jobs")
      .value("load", 0.9, "offered load rho (poisson)")
      .value("gap", 10.0, "inter-burst gap (bursty)")
      .value("depth", 8, "level count (adv-geometric)")
      .value("machines", 1, "machine count the load is scaled for")
      .value("dist", std::string("exp:1.5"),
             "size distribution spec (exp:MEAN, fixed:S, uniform:LO,HI, "
             "pareto:ALPHA,MIN[,CAP], bimodal:P,SMALL,LARGE)");
  harness::add_seed_flag(options);
  const harness::Parsed cli = options.parse(argc, argv);
  if (cli.help_requested()) {
    options.print_help(std::cout);
    return 0;
  }
  const std::string out = cli.get_string("out");
  if (out.empty()) return usage();
  const std::string kind = cli.get_string("workload");
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const int machines = static_cast<int>(cli.get_int("machines"));
  workload::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  Instance inst;
  if (kind == "poisson") {
    inst = workload::poisson_load(n, machines, cli.get_double("load"),
                                  parse_dist(cli.get_string("dist")), rng);
  } else if (kind == "bursty") {
    inst = workload::bursty_stream(n / 10, 10, cli.get_double("gap"),
                                   parse_dist(cli.get_string("dist")), rng);
  } else if (kind == "adv-geometric") {
    inst = workload::geometric_levels(static_cast<int>(cli.get_int("depth")));
  } else if (kind == "adv-batchstream") {
    inst = workload::rr_l2_hard(n);
  } else {
    std::cerr << "unknown --workload '" << kind << "'\n";
    return 2;
  }
  workload::write_csv_file(inst, out);
  std::cout << "wrote " << inst.summary() << " to " << out << "\n";
  return 0;
}

int cmd_run(int argc, const char* const* argv) {
  harness::Options options("tempofair-sim run",
                           "simulate one policy on a CSV instance");
  options.value("instance", std::string(), "input CSV path (required)")
      .value("k", 2.0, "l_k norm to report")
      .flag("fairness", "also print the fairness report")
      .flag("certificate", "also run the dual-fitting certificate")
      .value("eps", 0.05, "certificate eps (with --certificate)");
  harness::add_run_flags(options);
  const harness::Parsed cli = options.parse(argc, argv);
  if (cli.help_requested()) {
    options.print_help(std::cout);
    return 0;
  }
  const std::string path = cli.get_string("instance");
  if (path.empty()) return usage();
  const Instance inst = workload::read_csv_file(path);
  const RunRequest req = harness::run_request_from_flags(cli);
  const double k = cli.get_double("k");

  const RunResult result = tempofair::run(inst, req);
  result.schedule.validate();
  const FlowStats& st = result.stats;
  std::cout << inst.summary() << "\npolicy " << result.policy << ", m="
            << req.machines << ", speed=" << req.speed << "\n"
            << "  total flow (l1): " << st.l1 << "\n  l" << k
            << " norm:         " << flow_lk_norm(result.schedule, k)
            << "\n  mean / stddev:   " << st.mean << " / " << st.stddev
            << "\n  p95 / p99 / max: " << st.p95 << " / " << st.p99 << " / "
            << st.linf << "\n";
  if (result.invariants.mode != InvariantMode::kOff) {
    std::cout << "  invariants:      " << summarize(result.invariants) << "\n";
  }

  if (cli.flag("fairness")) {
    const FairnessReport fr = fairness_report(result.schedule);
    std::cout << "  jain (time-avg): " << fr.jain_time_avg
              << "\n  min-share avg:   " << fr.min_share_time_avg
              << "\n  max service lag: " << fr.max_service_lag
              << "\n  starved frac:    " << fr.starved_time_fraction << "\n";
  }
  if (cli.flag("certificate")) {
    analysis::DualFitOptions opt;
    opt.k = k;
    opt.eps = cli.get_double("eps");
    const auto cert = analysis::dual_fit_certificate(result.schedule, opt);
    std::cout << "  dual certificate: "
              << (cert.certificate_valid() ? "VALID" : "invalid")
              << " (objective ratio " << cert.objective_ratio
              << ", implied l" << k << " bound "
              << analysis::Table::num(cert.implied_lk_ratio, 1) << ")\n";
  }
  return 0;
}

int cmd_compare(int argc, const char* const* argv) {
  harness::Options options("tempofair-sim compare",
                           "tabulate every built-in policy on an instance");
  options.value("instance", std::string(), "input CSV path (required)")
      .value("machines", 1, "machine count")
      .value("k", 2.0, "l_k norm column");
  const harness::Parsed cli = options.parse(argc, argv);
  if (cli.help_requested()) {
    options.print_help(std::cout);
    return 0;
  }
  const std::string path = cli.get_string("instance");
  if (path.empty()) return usage();
  const Instance inst = workload::read_csv_file(path);
  RunRequest req;
  req.machines = static_cast<int>(cli.get_int("machines"));
  const double k = cli.get_double("k");

  analysis::Table table("policies on " + inst.summary(),
                        {"policy", "l1", "l" + analysis::Table::num(k, 0), "max",
                         "jain"});
  for (const std::string& spec : builtin_policy_specs()) {
    req.policy = spec;
    const Schedule s = tempofair::run(inst, req).schedule;
    table.add_row({spec, analysis::Table::num(flow_lk_norm(s, 1.0)),
                   analysis::Table::num(flow_lk_norm(s, k)),
                   analysis::Table::num(
                       flow_lk_norm(s, std::numeric_limits<double>::infinity())),
                   analysis::Table::num(fairness_report(s).jain_time_avg, 3)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    if (command == "generate") return cmd_generate(argc - 1, argv + 1);
    if (command == "run") return cmd_run(argc - 1, argv + 1);
    if (command == "compare") return cmd_compare(argc - 1, argv + 1);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
