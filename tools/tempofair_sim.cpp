// tempofair-sim: command-line front end to the library.
//
//   tempofair-sim generate --out jobs.csv --workload poisson:n=100,load=0.9,dist=exp(1.5),seed=1
//                 [--format csv|binary|auto]
//   tempofair-sim run --workload poisson:n=100,load=0.9 --policy rr
//                 [--machines 1] [--speed 1] [--k 2] [--fairness]
//                 [--certificate] [--eps 0.05]
//   tempofair-sim run --instance jobs.csv --policy rr ...
//   tempofair-sim compare --workload trace:jobs.csv [--machines 1] [--k 2]
//
// All workload selection goes through the one WorkloadSpec grammar
// (workload/spec.h): the same string names the same jobs here, in
// tempofair_bench, and in a tempofaird SUBMIT.  `--instance PATH` is
// shorthand for `--workload trace:PATH`.  `run` prints the flow-time
// statistics (and optionally the fairness report and the paper's
// dual-fitting certificate); `compare` tabulates every built-in policy.
// All three subcommands parse strictly (unknown flags are errors) and `run`
// speaks the shared run-flag vocabulary from harness/cli.h.
#include <iostream>
#include <limits>
#include <string>

#include "analysis/dualfit.h"
#include "analysis/report.h"
#include "core/engine.h"
#include "core/fairness.h"
#include "core/metrics.h"
#include "harness/cli.h"
#include "policies/registry.h"
#include "workload/source.h"
#include "workload/trace_io.h"

using namespace tempofair;

namespace {

int usage() {
  std::cerr << "usage: tempofair-sim generate|run|compare [options]\n"
               "       tempofair-sim COMMAND --help for the option listing\n"
               "policy specs: rr srpt sjf fcfs setf wrr mlfq hdf hrdf wprr "
               "laps:B qrr:Q[,CS]\n"
               "workload specs: poisson:n=..,load=..,dist=exp(1.5),seed=.. | "
               "mmpp:.. | uniform:.. | bursty:.. |\n"
               "                adv-rr-l2-hard:.. | adv-srpt-starvation:.. | "
               "adv-overload-pulse:.. |\n"
               "                adv-staircase:.. | adv-geometric:.. | "
               "adv-batch-stream:.. | trace:PATH\n";
  return 2;
}

/// Resolves the --workload / --instance pair shared by run and compare.
workload::WorkloadSpec workload_spec_from(const harness::Parsed& cli) {
  const std::string path = cli.get_string("instance");
  const std::string spec = cli.get_string("workload");
  if (!path.empty() && !spec.empty()) {
    throw harness::CliError("--instance and --workload are exclusive");
  }
  if (!path.empty()) return workload::WorkloadSpec::trace(path);
  if (spec.empty()) {
    throw harness::CliError("one of --workload or --instance is required");
  }
  return workload::WorkloadSpec::parse(spec);
}

int cmd_generate(int argc, const char* const* argv) {
  harness::Options options("tempofair-sim generate",
                           "materialize a workload spec as a trace file");
  options.value("out", std::string(), "output path (required)")
      .value("workload", std::string("poisson:n=100,load=0.9,dist=exp(1.5)"),
             "workload spec to materialize (see workload/spec.h)")
      .value("format", std::string("auto"),
             "csv | binary | auto (binary when --out ends in .bin)");
  const harness::Parsed cli = options.parse(argc, argv);
  if (cli.help_requested()) {
    options.print_help(std::cout);
    return 0;
  }
  const std::string out = cli.get_string("out");
  if (out.empty()) return usage();
  const std::string format = cli.get_string("format");
  bool binary = false;
  if (format == "binary") {
    binary = true;
  } else if (format == "auto") {
    binary = out.size() >= 4 && out.compare(out.size() - 4, 4, ".bin") == 0;
  } else if (format != "csv") {
    std::cerr << "unknown --format '" << format << "'\n";
    return 2;
  }
  const Instance inst = workload::make_instance(cli.get_string("workload"));
  if (binary) {
    workload::write_binary_file(inst, out);
  } else {
    workload::write_csv_file(inst, out);
  }
  std::cout << "wrote " << inst.summary() << " to " << out << " ("
            << (binary ? "binary" : "csv") << ")\n";
  return 0;
}

int cmd_run(int argc, const char* const* argv) {
  harness::Options options("tempofair-sim run",
                           "simulate one policy on a workload");
  options.value("instance", std::string(),
                "trace path (shorthand for --workload trace:PATH)")
      .value("k", 2.0, "l_k norm to report")
      .flag("fairness", "also print the fairness report")
      .flag("certificate", "also run the dual-fitting certificate")
      .value("eps", 0.05, "certificate eps (with --certificate)");
  harness::add_run_flags(options);
  const harness::Parsed cli = options.parse(argc, argv);
  if (cli.help_requested()) {
    options.print_help(std::cout);
    return 0;
  }
  RunRequest req = harness::run_request_from_flags(cli);
  req.workload = workload_spec_from(cli).to_string();
  const double k = cli.get_double("k");

  const RunResult result = workload::run_spec(req);
  result.schedule.validate();
  const FlowStats& st = result.stats;
  std::cout << req.workload << "\npolicy " << result.policy << ", m="
            << req.machines << ", speed=" << req.speed << "\n"
            << "  total flow (l1): " << st.l1 << "\n  l" << k
            << " norm:         " << flow_lk_norm(result.schedule, k)
            << "\n  mean / stddev:   " << st.mean << " / " << st.stddev
            << "\n  p95 / p99 / max: " << st.p95 << " / " << st.p99 << " / "
            << st.linf << "\n";
  if (result.invariants.mode != InvariantMode::kOff) {
    std::cout << "  invariants:      " << summarize(result.invariants) << "\n";
  }

  if (cli.flag("fairness")) {
    const FairnessReport fr = fairness_report(result.schedule);
    std::cout << "  jain (time-avg): " << fr.jain_time_avg
              << "\n  min-share avg:   " << fr.min_share_time_avg
              << "\n  max service lag: " << fr.max_service_lag
              << "\n  starved frac:    " << fr.starved_time_fraction << "\n";
  }
  if (cli.flag("certificate")) {
    analysis::DualFitOptions opt;
    opt.k = k;
    opt.eps = cli.get_double("eps");
    const auto cert = analysis::dual_fit_certificate(result.schedule, opt);
    std::cout << "  dual certificate: "
              << (cert.certificate_valid() ? "VALID" : "invalid")
              << " (objective ratio " << cert.objective_ratio
              << ", implied l" << k << " bound "
              << analysis::Table::num(cert.implied_lk_ratio, 1) << ")\n";
  }
  return 0;
}

int cmd_compare(int argc, const char* const* argv) {
  harness::Options options("tempofair-sim compare",
                           "tabulate every built-in policy on a workload");
  options.value("instance", std::string(),
                "trace path (shorthand for --workload trace:PATH)")
      .value("workload", std::string(), "workload spec")
      .value("machines", 1, "machine count")
      .value("k", 2.0, "l_k norm column");
  const harness::Parsed cli = options.parse(argc, argv);
  if (cli.help_requested()) {
    options.print_help(std::cout);
    return 0;
  }
  const Instance inst = workload::make_instance(workload_spec_from(cli));
  RunRequest req;
  req.machines = static_cast<int>(cli.get_int("machines"));
  const double k = cli.get_double("k");

  analysis::Table table("policies on " + inst.summary(),
                        {"policy", "l1", "l" + analysis::Table::num(k, 0), "max",
                         "jain"});
  for (const std::string& spec : builtin_policy_specs()) {
    req.policy = spec;
    const Schedule s = tempofair::run(inst, req).schedule;
    table.add_row({spec, analysis::Table::num(flow_lk_norm(s, 1.0)),
                   analysis::Table::num(flow_lk_norm(s, k)),
                   analysis::Table::num(
                       flow_lk_norm(s, std::numeric_limits<double>::infinity())),
                   analysis::Table::num(fairness_report(s).jain_time_avg, 3)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    if (command == "generate") return cmd_generate(argc - 1, argv + 1);
    if (command == "run") return cmd_run(argc - 1, argv + 1);
    if (command == "compare") return cmd_compare(argc - 1, argv + 1);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
