// perf_gate -- runs the fast-path perf case suite and/or compares two
// perf reports (schema tempofair-perf-v1) with explicit tolerances.
//
// Modes (combinable):
//   perf_gate --out fresh.json                      measure, write a report
//   perf_gate --baseline BENCH_fastpath.json        measure, gate against it
//   perf_gate --baseline a.json --current b.json    pure file comparison
//                                                   (no measurement; what the
//                                                   regression test uses)
//
// Exit codes: 0 = gate passed (or nothing gated), 1 = gate FAIL (a median
// regressed past --fail-ratio, a baseline case vanished, or a stat broke
// its self-declared budget), 2 = usage or I/O error.  WARN verdicts never
// fail the gate: the perf-smoke CI step runs on shared runners, so only a
// >2x regression is treated as real.
//
// Independent of any baseline, every report is run through the self-gate
// (perf::self_gate): a case stat "X_budget" asserts X <= X_budget within
// the same run.  This is how the sampled invariant-mode overhead case
// (overhead_vs_inv_off vs its 1.03 budget) fails CI without needing a
// committed timing baseline.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "harness/cli.h"
#include "perf_cases.h"
#include "perf_harness.h"

#ifndef TEMPOFAIR_GIT_REV
#define TEMPOFAIR_GIT_REV "unknown"
#endif

using namespace tempofair;

namespace {

[[nodiscard]] perf::Report load_report(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("perf_gate: cannot open " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return perf::parse_report(text.str());
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("perf_gate: cannot write " + path);
  }
  file << content;
}

}  // namespace

int main(int argc, char** argv) {
  harness::Options options(
      "perf_gate",
      "Measure the fast-path perf cases and gate them against a committed\n"
      "baseline (BENCH_fastpath.json).  With --current, compares two report\n"
      "files without measuring anything.");
  options
      .value("baseline", std::string(),
             "baseline report to gate against (exit 1 on FAIL)")
      .value("current", std::string(),
             "compare this report against --baseline instead of measuring")
      .value("out", std::string(), "write the fresh measurement report here")
      .value("json", std::string(), "write the gate comparison JSON here")
      .value("repeats", 5, "timed runs per case")
      .value("warn-ratio", 1.25, "WARN above this ratio plus measured noise")
      .value("fail-ratio", 2.0, "FAIL (exit 1) above this ratio");
  harness::add_smoke_flag(options);

  harness::Parsed parsed;
  try {
    parsed = options.parse(argc, argv);
  } catch (const harness::CliError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  if (parsed.help_requested()) {
    options.print_help(std::cout);
    return 0;
  }

  const std::string baseline_path = parsed.get_string("baseline");
  const std::string current_path = parsed.get_string("current");
  const std::string out_path = parsed.get_string("out");
  if (baseline_path.empty() && current_path.empty() && out_path.empty()) {
    std::cerr << "perf_gate: nothing to do; pass --out and/or --baseline "
                 "(see --help)\n";
    return 2;
  }
  if (!current_path.empty() && baseline_path.empty()) {
    std::cerr << "perf_gate: --current requires --baseline\n";
    return 2;
  }

  perf::GateOptions gate;
  gate.warn_ratio = parsed.get_double("warn-ratio");
  gate.fail_ratio = parsed.get_double("fail-ratio");

  try {
    perf::Report current;
    if (!current_path.empty()) {
      current = load_report(current_path);
    } else {
      perf::CaseOptions copts;
      copts.smoke = parsed.flag("smoke");
      copts.repeats = static_cast<std::size_t>(
          std::max(1L, parsed.get_int("repeats")));
      std::cerr << "perf_gate: measuring " << (copts.smoke ? "smoke" : "full")
                << " cases, " << copts.repeats << " repeats each...\n";
      current = perf::run_fastpath_cases(copts);
      current.git_rev = TEMPOFAIR_GIT_REV;
      if (!out_path.empty()) {
        write_file(out_path, perf::report_json(current));
        std::cerr << "perf_gate: wrote " << out_path << "\n";
      }
    }

    // Budgets the report declares about itself hold with or without a
    // baseline to diff against.
    const perf::GateResult self = perf::self_gate(current);
    if (!self.verdicts.empty()) {
      std::cout << perf::format_self_gate(self);
    }

    if (baseline_path.empty()) {
      std::cout << perf::report_json(current);
      return self.failed ? 1 : 0;
    }

    const perf::Report baseline = load_report(baseline_path);
    const perf::GateResult result =
        perf::compare_reports(baseline, current, gate);
    std::cout << perf::format_gate(result, gate);
    const std::string json_path = parsed.get_string("json");
    if (!json_path.empty()) {
      write_file(json_path, perf::gate_json(result, gate));
    }
    return (result.failed || self.failed) ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
