#include "obs/obs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "core/engine.h"
#include "harness/thread_pool.h"
#include "policies/round_robin.h"

namespace tempofair::obs {
namespace {

TEST(Sink, AccumulatesAndSnapshots) {
  Sink sink;
  sink.add("a", 1);
  sink.add("a", 2);
  sink.add("b", 10);
  EXPECT_EQ(sink.value("a"), 3u);
  EXPECT_EQ(sink.value("b"), 10u);
  EXPECT_EQ(sink.value("never"), 0u);
  const auto snap = sink.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at("a"), 3u);
  sink.clear();
  EXPECT_EQ(sink.value("a"), 0u);
  EXPECT_TRUE(sink.snapshot().empty());
}

TEST(Sink, ThreadSafeAccumulation) {
  Sink sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sink] {
      for (int i = 0; i < 1000; ++i) sink.add("hits", 1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sink.value("hits"), 4000u);
}

TEST(ScopedSink, RedirectsAndRestores) {
  Sink mine;
  EXPECT_EQ(current_override(), nullptr);
  {
    ScopedSink scope(&mine);
    EXPECT_EQ(current_override(), &mine);
    EXPECT_EQ(&current_sink(), &mine);
    add("x", 5);
    {
      ScopedSink inner(nullptr);  // back to the global sink
      EXPECT_EQ(current_override(), nullptr);
      const std::uint64_t before = global_sink().value("obs_test.global");
      add("obs_test.global", 1);
      EXPECT_EQ(global_sink().value("obs_test.global"), before + 1);
    }
    EXPECT_EQ(current_override(), &mine);
  }
  EXPECT_EQ(current_override(), nullptr);
  EXPECT_EQ(mine.value("x"), 5u);
  EXPECT_EQ(global_sink().value("x"), 0u);
}

TEST(ScopedTimer, RecordsWallTimeAndCalls) {
  Sink sink;
  {
    ScopedSink scope(&sink);
    ScopedTimer timer("work");
  }
  {
    ScopedSink scope(&sink);
    ScopedTimer timer("work");
  }
  EXPECT_EQ(sink.value("work.calls"), 2u);
  // Wall time is nonnegative by construction; just check the key exists.
  EXPECT_TRUE(sink.snapshot().count("work.ns"));
}

TEST(CpuAccount, AttributesSelfCpuOnce) {
  Sink outer_sink;
  Sink inner_sink;
  {
    CpuAccount outer(outer_sink, "cpu_ns");
    volatile std::uint64_t spin = 0;
    for (int i = 0; i < 100000; ++i) spin += static_cast<std::uint64_t>(i);
    {
      CpuAccount inner(inner_sink, "cpu_ns");
      for (int i = 0; i < 100000; ++i) spin += static_cast<std::uint64_t>(i);
    }
  }
  // Both scopes recorded something, and the outer scope excluded the nested
  // one (so outer + inner ~= total, not outer == total >= inner).  We can't
  // assert tight bounds on CPU clocks, but both must have been credited.
  EXPECT_TRUE(outer_sink.snapshot().count("cpu_ns"));
  EXPECT_TRUE(inner_sink.snapshot().count("cpu_ns"));
}

TEST(ObsPool, SinkPropagatesThroughParallelFor) {
  harness::ThreadPool pool(4);
  Sink sink;
  {
    ScopedSink scope(&sink);
    pool.parallel_for(64, [](std::size_t) { add("chunk.hits", 1); });
  }
  // Every chunk -- including ones stolen by other workers -- recorded into
  // the submitting thread's sink.
  EXPECT_EQ(sink.value("chunk.hits"), 64u);
  EXPECT_GE(sink.value("pool.tasks"), 1u);
  EXPECT_TRUE(sink.snapshot().count("pool.cpu_ns"));
}

TEST(ObsPool, SubmitWithoutOverrideDoesNotPollute) {
  harness::ThreadPool pool(2);
  Sink sink;
  {
    ScopedSink scope(&sink);
    pool.parallel_for(8, [](std::size_t) { add("a.hits", 1); });
  }
  // A second fan-out with no override must not land in `sink`.
  pool.parallel_for(8, [](std::size_t) { add("obs_test.unattributed", 1); });
  EXPECT_EQ(sink.value("a.hits"), 8u);
  EXPECT_EQ(sink.value("obs_test.unattributed"), 0u);
}

TEST(ObsPool, ConcurrentSinksStayIsolated) {
  harness::ThreadPool pool(4);
  Sink a, b;
  std::thread ta([&] {
    ScopedSink scope(&a);
    pool.parallel_for(32, [](std::size_t) { add("hits", 1); });
  });
  std::thread tb([&] {
    ScopedSink scope(&b);
    pool.parallel_for(32, [](std::size_t) { add("hits", 1); });
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.value("hits"), 32u);
  EXPECT_EQ(b.value("hits"), 32u);
}

TEST(Progress, RateLimitedOutput) {
  std::ostringstream out;
  Progress progress("test", 100, &out, std::chrono::milliseconds(0));
  progress.tick(50);
  progress.tick(50);
  progress.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("test"), std::string::npos);
  EXPECT_NE(text.find("100/100"), std::string::npos);
}

TEST(Progress, SilentWhenNeverDue) {
  std::ostringstream out;
  Progress progress("quiet", 10, &out, std::chrono::hours(1));
  progress.tick();
  progress.finish();  // nothing printed before => finish stays silent
  EXPECT_TRUE(out.str().empty());
}

TEST(EngineCounters, RecordedPerRun) {
  // The engine flushes run/event/job/trace counters into the current sink.
  Sink sink;
  {
    ScopedSink scope(&sink);
    const std::vector<std::pair<Time, Work>> jobs{{0.0, 1.0}, {0.5, 2.0}};
    const Instance inst = Instance::from_pairs(jobs);
    RoundRobin rr;
    (void)EngineCore().run(inst, rr);
  }
  EXPECT_EQ(sink.value("engine.runs"), 1u);
  EXPECT_EQ(sink.value("engine.jobs"), 2u);
  EXPECT_GE(sink.value("engine.events"), 1u);
  EXPECT_TRUE(sink.snapshot().count("engine.run.ns"));
}

}  // namespace
}  // namespace tempofair::obs
