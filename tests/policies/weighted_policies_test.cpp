#include "policies/weighted_policies.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/priority_policies.h"
#include "policies/round_robin.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

Instance weighted_batch(std::vector<std::pair<Work, double>> size_weight) {
  std::vector<Job> jobs;
  JobId id = 0;
  for (const auto& [size, weight] : size_weight) {
    jobs.push_back(Job{id++, 0.0, size, weight});
  }
  return Instance::from_jobs(std::move(jobs));
}

TEST(Hdf, RunsHighestDensityFirst) {
  // densities: 1/4, 3/3=1, 1/2 -> order: job1, job2, job0.
  const Instance inst =
      weighted_batch({{4.0, 1.0}, {3.0, 3.0}, {2.0, 1.0}});
  Hdf hdf;
  const Schedule s = EngineCore().run(inst, hdf);
  EXPECT_DOUBLE_EQ(s.completion(1), 3.0);
  EXPECT_DOUBLE_EQ(s.completion(2), 5.0);
  EXPECT_DOUBLE_EQ(s.completion(0), 9.0);
}

TEST(Hdf, EqualWeightsReduceToSjf) {
  // With unit weights density = 1/p: highest density = smallest size = SJF.
  workload::Rng rng(5);
  const Instance inst =
      workload::poisson_load(40, 1, 0.9, workload::UniformSize{0.5, 2.0}, rng);
  Hdf hdf;
  Sjf sjf;
  EngineOptions eo;
  eo.record_trace = false;
  const Schedule a = EngineCore().run(inst, hdf, eo);
  const Schedule b = EngineCore().run(inst, sjf, eo);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_NEAR(a.completion(j), b.completion(j), 1e-9);
  }
}

TEST(Hdf, MinimizesWeightedL1AmongTestedPolicies) {
  workload::Rng rng(7);
  Instance inst =
      workload::poisson_load(50, 1, 0.9, workload::ExponentialSize{1.5}, rng);
  inst = workload::with_weights(inst, workload::WeightScheme::kRandom, rng);
  EngineOptions eo;
  eo.record_trace = false;
  Hdf hdf;
  Hrdf hrdf;
  RoundRobin rr;
  WeightProportionalRoundRobin wprr;
  const double hdf_cost = weighted_flow_lk_power(EngineCore().run(inst, hdf, eo), 1.0);
  const double hrdf_cost = weighted_flow_lk_power(EngineCore().run(inst, hrdf, eo), 1.0);
  const double rr_cost = weighted_flow_lk_power(EngineCore().run(inst, rr, eo), 1.0);
  const double wprr_cost = weighted_flow_lk_power(EngineCore().run(inst, wprr, eo), 1.0);
  const double best = std::min(hdf_cost, hrdf_cost);
  EXPECT_LE(best, rr_cost * (1.0 + 1e-9));
  EXPECT_LE(best, wprr_cost * (1.0 + 1e-9));
}

TEST(Hrdf, PreemptsByResidualDensity) {
  // Job 0: w=1, p=4.  At t=3 remaining 1 -> density 1.  Job 1 arrives with
  // w=1.5, p=2 -> density 0.75 < 1: job 0 keeps the machine (HDF by
  // *original* density 0.25 would yield it).
  std::vector<Job> jobs{Job{0, 0.0, 4.0, 1.0}, Job{1, 3.0, 2.0, 1.5}};
  const Instance inst = Instance::from_jobs(std::move(jobs));
  Hrdf hrdf;
  const Schedule s = EngineCore().run(inst, hrdf);
  EXPECT_DOUBLE_EQ(s.completion(0), 4.0);
  Hdf hdf;
  const Schedule h = EngineCore().run(inst, hdf);
  EXPECT_DOUBLE_EQ(h.completion(1), 5.0);  // HDF runs job 1 first at t=3
  EXPECT_DOUBLE_EQ(h.completion(0), 6.0);
}

TEST(Wprr, SharesProportionallyToWeights) {
  WeightProportionalRoundRobin wprr;
  std::vector<AliveJob> alive(2);
  alive[0] = AliveJob{0, 0.0, 0.0, 10.0, 10.0, 3.0};
  alive[1] = AliveJob{1, 0.0, 0.0, 10.0, 10.0, 1.0};
  SchedulerContext ctx{0.0, 1, 1.0, alive, true};
  const RateDecision d = wprr.rates(ctx);
  EXPECT_NEAR(d.rates[0], 0.75, 1e-12);
  EXPECT_NEAR(d.rates[1], 0.25, 1e-12);
}

TEST(Wprr, UnitWeightsEqualRoundRobin) {
  workload::Rng rng(11);
  const Instance inst =
      workload::poisson_load(40, 2, 0.9, workload::ExponentialSize{1.0}, rng);
  WeightProportionalRoundRobin wprr;
  RoundRobin rr;
  EngineOptions eo;
  eo.machines = 2;
  eo.record_trace = false;
  const Schedule a = EngineCore().run(inst, wprr, eo);
  const Schedule b = EngineCore().run(inst, rr, eo);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_NEAR(a.completion(j), b.completion(j), 1e-7);
  }
}

TEST(Wprr, RespectsPerJobCap) {
  // Weight 100 vs 1 on 2 machines: the heavy job is capped at one machine.
  WeightProportionalRoundRobin wprr;
  std::vector<AliveJob> alive(2);
  alive[0] = AliveJob{0, 0.0, 0.0, 10.0, 10.0, 100.0};
  alive[1] = AliveJob{1, 0.0, 0.0, 10.0, 10.0, 1.0};
  SchedulerContext ctx{0.0, 2, 1.0, alive, true};
  const RateDecision d = wprr.rates(ctx);
  EXPECT_DOUBLE_EQ(d.rates[0], 1.0);
  EXPECT_DOUBLE_EQ(d.rates[1], 1.0);  // leftover machine goes to the light job
}

TEST(Wprr, IsNonClairvoyant) {
  WeightProportionalRoundRobin wprr;
  EXPECT_FALSE(wprr.clairvoyant());
  workload::Rng rng(13);
  Instance inst =
      workload::poisson_load(30, 1, 0.8, workload::UniformSize{0.5, 2.0}, rng);
  inst = workload::with_weights(inst, workload::WeightScheme::kRandom, rng);
  WeightProportionalRoundRobin open, blind;
  EngineOptions hidden;
  hidden.hide_sizes = true;
  const Schedule a = EngineCore().run(inst, open);
  const Schedule b = EngineCore().run(inst, blind, hidden);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_NEAR(a.completion(j), b.completion(j), 1e-7);
  }
}

TEST(WithWeights, SchemesAssignAsDocumented) {
  workload::Rng rng(17);
  const Instance base = Instance::batch(std::vector<Work>{2.0, 4.0});
  const Instance inv =
      workload::with_weights(base, workload::WeightScheme::kInverseSize, rng);
  EXPECT_DOUBLE_EQ(inv.job(0).weight, 0.5);
  EXPECT_DOUBLE_EQ(inv.job(1).weight, 0.25);
  const Instance prop = workload::with_weights(
      base, workload::WeightScheme::kProportionalSize, rng);
  EXPECT_DOUBLE_EQ(prop.job(0).weight, 2.0);
  const Instance uni =
      workload::with_weights(prop, workload::WeightScheme::kUniform, rng);
  EXPECT_DOUBLE_EQ(uni.job(0).weight, 1.0);
  const Instance rnd =
      workload::with_weights(base, workload::WeightScheme::kRandom, rng);
  EXPECT_GE(rnd.job(0).weight, 1.0);
  EXPECT_LE(rnd.job(0).weight, 10.0);
}

TEST(Instance, RejectsBadWeights) {
  EXPECT_THROW((void)Instance::from_jobs({Job{0, 0.0, 1.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)Instance::from_jobs({Job{0, 0.0, 1.0, -1.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)Instance::from_jobs(
          {Job{0, 0.0, 1.0, std::numeric_limits<double>::infinity()}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace tempofair
