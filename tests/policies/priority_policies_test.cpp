#include "policies/priority_policies.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/round_robin.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

// ---------- SRPT -------------------------------------------------------------

TEST(Srpt, RunsShortestRemainingFirst) {
  const Instance inst = Instance::batch(std::vector<Work>{3.0, 1.0, 2.0});
  Srpt srpt;
  const Schedule s = EngineCore().run(inst, srpt);
  EXPECT_DOUBLE_EQ(s.completion(1), 1.0);
  EXPECT_DOUBLE_EQ(s.completion(2), 3.0);
  EXPECT_DOUBLE_EQ(s.completion(0), 6.0);
}

TEST(Srpt, PreemptsOnShorterArrival) {
  const Instance inst =
      Instance::from_pairs(std::vector<std::pair<Time, Work>>{{0.0, 4.0}, {1.0, 1.0}});
  Srpt srpt;
  const Schedule s = EngineCore().run(inst, srpt);
  EXPECT_DOUBLE_EQ(s.completion(1), 2.0);  // preempts job 0 (3 remaining)
  EXPECT_DOUBLE_EQ(s.completion(0), 5.0);
}

TEST(Srpt, DoesNotPreemptWhenRemainingIsSmaller) {
  const Instance inst =
      Instance::from_pairs(std::vector<std::pair<Time, Work>>{{0.0, 4.0}, {3.5, 1.0}});
  Srpt srpt;
  const Schedule s = EngineCore().run(inst, srpt);
  // Job 0 has 0.5 remaining when job 1 (size 1) arrives: job 0 keeps running.
  EXPECT_DOUBLE_EQ(s.completion(0), 4.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 5.0);
}

TEST(Srpt, IsOptimalForTotalFlowOnSingleMachine) {
  // Folklore: SRPT minimizes total (l1) flow on one machine; every other
  // policy must be >= it.
  workload::Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance inst =
        workload::poisson_load(40, 1, 0.9, workload::ExponentialSize{2.0}, rng);
    EngineOptions eo;
    eo.record_trace = false;
    Srpt srpt;
    const double srpt_l1 = flow_lk_norm(EngineCore().run(inst, srpt, eo), 1.0);
    RoundRobin rr;
    Sjf sjf;
    Fcfs fcfs;
    EXPECT_GE(flow_lk_norm(EngineCore().run(inst, rr, eo), 1.0), srpt_l1 - 1e-6);
    EXPECT_GE(flow_lk_norm(EngineCore().run(inst, sjf, eo), 1.0), srpt_l1 - 1e-6);
    EXPECT_GE(flow_lk_norm(EngineCore().run(inst, fcfs, eo), 1.0), srpt_l1 - 1e-6);
  }
}

TEST(Srpt, UsesAllMachines) {
  const Instance inst = Instance::batch(std::vector<Work>{2.0, 2.0, 2.0, 2.0});
  Srpt srpt;
  EngineOptions eo;
  eo.machines = 2;
  const Schedule s = EngineCore().run(inst, srpt, eo);
  // 2 jobs at a time: first two done at 2, next two at 4.
  std::vector<double> cs;
  for (JobId j = 0; j < 4; ++j) cs.push_back(s.completion(j));
  std::sort(cs.begin(), cs.end());
  EXPECT_DOUBLE_EQ(cs[0], 2.0);
  EXPECT_DOUBLE_EQ(cs[1], 2.0);
  EXPECT_DOUBLE_EQ(cs[2], 4.0);
  EXPECT_DOUBLE_EQ(cs[3], 4.0);
}

TEST(Srpt, IsClairvoyant) {
  Srpt srpt;
  EXPECT_TRUE(srpt.clairvoyant());
}

// ---------- SJF --------------------------------------------------------------

TEST(Sjf, OrdersByOriginalSizeNotRemaining) {
  // Job 0: size 3; when job 1 (size 2.5) arrives, job 0 has 0.5 remaining.
  // PSJF compares ORIGINAL sizes: 2.5 < 3 -> job 1 preempts job 0 anyway.
  const Instance inst =
      Instance::from_pairs(std::vector<std::pair<Time, Work>>{{0.0, 3.0}, {2.5, 2.5}});
  Sjf sjf;
  const Schedule s = EngineCore().run(inst, sjf);
  EXPECT_DOUBLE_EQ(s.completion(1), 5.0);   // runs 2.5 .. 5.0
  EXPECT_DOUBLE_EQ(s.completion(0), 5.5);   // resumes after
}

TEST(Sjf, SrptAndSjfAgreeOnBatch) {
  // With all jobs released together and distinct sizes, SRPT == SJF.
  const Instance inst = Instance::batch(std::vector<Work>{5.0, 1.0, 3.0});
  Sjf sjf;
  Srpt srpt;
  const Schedule a = EngineCore().run(inst, sjf);
  const Schedule b = EngineCore().run(inst, srpt);
  for (JobId j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(a.completion(j), b.completion(j));
}

// ---------- FCFS -------------------------------------------------------------

TEST(Fcfs, ServesInArrivalOrder) {
  const Instance inst = Instance::from_pairs(
      std::vector<std::pair<Time, Work>>{{0.0, 2.0}, {0.5, 1.0}, {0.7, 1.0}});
  Fcfs fcfs;
  const Schedule s = EngineCore().run(inst, fcfs);
  EXPECT_DOUBLE_EQ(s.completion(0), 2.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 3.0);
  EXPECT_DOUBLE_EQ(s.completion(2), 4.0);
}

TEST(Fcfs, IsNonClairvoyant) {
  Fcfs fcfs;
  EXPECT_FALSE(fcfs.clairvoyant());
  workload::Rng rng(23);
  const Instance inst =
      workload::poisson_load(30, 1, 0.8, workload::UniformSize{0.5, 2.0}, rng);
  Fcfs open, blind;
  EngineOptions ho;
  ho.hide_sizes = true;
  const Schedule a = EngineCore().run(inst, open);
  const Schedule b = EngineCore().run(inst, blind, ho);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_DOUBLE_EQ(a.completion(j), b.completion(j));
  }
}

TEST(Fcfs, HeadOfLineBlockingHurtsFlow) {
  // A huge job followed by many small ones: FCFS must be much worse than
  // SRPT for total flow.
  std::vector<std::pair<Time, Work>> pairs{{0.0, 100.0}};
  for (int i = 1; i <= 20; ++i) pairs.emplace_back(0.1 * i, 1.0);
  const Instance inst = Instance::from_pairs(pairs);
  Fcfs fcfs;
  Srpt srpt;
  EngineOptions eo;
  eo.record_trace = false;
  const double f = flow_lk_norm(EngineCore().run(inst, fcfs, eo), 1.0);
  const double s = flow_lk_norm(EngineCore().run(inst, srpt, eo), 1.0);
  EXPECT_GT(f, 5.0 * s);
}

// ---------- LAPS -------------------------------------------------------------

TEST(Laps, RejectsBadBeta) {
  EXPECT_THROW(Laps(0.0), std::invalid_argument);
  EXPECT_THROW(Laps(1.5), std::invalid_argument);
  EXPECT_THROW(Laps(-0.1), std::invalid_argument);
}

TEST(Laps, BetaOneIsRoundRobin) {
  workload::Rng rng(31);
  const Instance inst =
      workload::poisson_load(40, 1, 0.9, workload::ExponentialSize{1.0}, rng);
  Laps laps(1.0);
  RoundRobin rr;
  EngineOptions eo;
  eo.record_trace = false;
  const Schedule a = EngineCore().run(inst, laps, eo);
  const Schedule b = EngineCore().run(inst, rr, eo);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_NEAR(a.completion(j), b.completion(j), 1e-7);
  }
}

TEST(Laps, SmallBetaFavorsLatestArrival) {
  // Two long jobs at 0, one short job at 1: with beta ~ 0, only the latest
  // arrival is served, so the short job finishes as if alone.
  const Instance inst = Instance::from_pairs(
      std::vector<std::pair<Time, Work>>{{0.0, 10.0}, {0.0, 10.0}, {1.0, 1.0}});
  Laps laps(0.3);  // ceil(0.3 * 3) = 1 job served
  const Schedule s = EngineCore().run(inst, laps);
  EXPECT_DOUBLE_EQ(s.completion(2), 2.0);
}

TEST(Laps, ShareCountUsesCeil) {
  Laps laps(0.5);
  std::vector<AliveJob> alive(3);
  for (JobId i = 0; i < 3; ++i) alive[i] = AliveJob{i, static_cast<double>(i), 0.0, 1.0, 1.0};
  SchedulerContext ctx{5.0, 1, 1.0, alive, true};
  const RateDecision d = laps.rates(ctx);
  // ceil(0.5*3) = 2 latest jobs (ids 1,2) share the machine.
  EXPECT_DOUBLE_EQ(d.rates[0], 0.0);
  EXPECT_DOUBLE_EQ(d.rates[1], 0.5);
  EXPECT_DOUBLE_EQ(d.rates[2], 0.5);
}

TEST(Laps, IsNonClairvoyant) {
  Laps laps(0.5);
  EXPECT_FALSE(laps.clairvoyant());
}

}  // namespace
}  // namespace tempofair
