#include "policies/weighted_rr.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/metrics.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

TEST(Waterfill, ProportionalWhenUncapped) {
  const std::vector<double> w{1.0, 2.0, 3.0};
  const auto r = waterfill(w, 1.0, 10.0);
  EXPECT_NEAR(r[0], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(r[1], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(r[2], 3.0 / 6.0, 1e-12);
}

TEST(Waterfill, CapsLargeWeightsAndRedistributes) {
  // Capacity 2, cap 1: weights 10,1,1 -> first pinned at 1, remaining 1
  // split 1:1 between the others.
  const std::vector<double> w{10.0, 1.0, 1.0};
  const auto r = waterfill(w, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_NEAR(r[1], 0.5, 1e-12);
  EXPECT_NEAR(r[2], 0.5, 1e-12);
}

TEST(Waterfill, EveryoneCappedWhenCapacityAbundant) {
  const std::vector<double> w{5.0, 1.0};
  const auto r = waterfill(w, 100.0, 1.0);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
}

TEST(Waterfill, ZeroWeightsSplitEqually) {
  const std::vector<double> w{0.0, 0.0};
  const auto r = waterfill(w, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r[0], 0.5);
  EXPECT_DOUBLE_EQ(r[1], 0.5);
}

TEST(Waterfill, EmptyInput) {
  const auto r = waterfill(std::vector<double>{}, 1.0, 1.0);
  EXPECT_TRUE(r.empty());
}

TEST(Waterfill, TotalNeverExceedsCapacity) {
  workload::Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> w(static_cast<std::size_t>(rng.uniform_int(1, 12)));
    for (double& x : w) x = rng.uniform(0.0, 5.0);
    const double cap = rng.uniform(0.1, 2.0);
    const double capacity = rng.uniform(0.1, 8.0);
    const auto r = waterfill(w, capacity, cap);
    double sum = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
      EXPECT_GE(r[i], -1e-12);
      EXPECT_LE(r[i], cap + 1e-9);
      sum += r[i];
    }
    EXPECT_LE(sum, capacity + 1e-7);
  }
}

TEST(Waterfill, MonotoneInWeights) {
  // A larger weight never receives a smaller rate.
  const std::vector<double> w{0.5, 1.5, 3.0, 3.0};
  const auto r = waterfill(w, 2.0, 1.0);
  EXPECT_LE(r[0], r[1] + 1e-12);
  EXPECT_LE(r[1], r[2] + 1e-12);
  EXPECT_NEAR(r[2], r[3], 1e-12);
}

TEST(WeightedRoundRobin, RejectsBadParameters) {
  EXPECT_THROW(WeightedRoundRobin(0.0), std::invalid_argument);
  EXPECT_THROW(WeightedRoundRobin(1.0, 0.0), std::invalid_argument);
}

TEST(WeightedRoundRobin, IsNonClairvoyant) {
  WeightedRoundRobin wrr;
  EXPECT_FALSE(wrr.clairvoyant());
}

TEST(WeightedRoundRobin, OlderJobGetsLargerShare) {
  WeightedRoundRobin wrr(1e-3);
  std::vector<AliveJob> alive(2);
  alive[0] = AliveJob{0, 0.0, 0.0, 10.0, 10.0};   // age 10
  alive[1] = AliveJob{1, 9.0, 0.0, 10.0, 10.0};   // age 1
  SchedulerContext ctx{10.0, 1, 1.0, alive, true};
  const RateDecision d = wrr.rates(ctx);
  EXPECT_GT(d.rates[0], d.rates[1]);
  EXPECT_NEAR(d.rates[0] / d.rates[1], 10.0, 0.1);  // ~ age ratio
}

TEST(WeightedRoundRobin, CompletesEverythingAndConservesWork) {
  workload::Rng rng(13);
  const Instance inst =
      workload::poisson_load(40, 1, 0.9, workload::ExponentialSize{1.0}, rng);
  WeightedRoundRobin wrr;
  const Schedule s = EngineCore().run(inst, wrr);
  s.validate();
}

TEST(WeightedRoundRobin, BoundsDriftViaBreakpoints) {
  WeightedRoundRobin wrr(1e-3, 0.02);
  std::vector<AliveJob> alive(1);
  alive[0] = AliveJob{0, 0.0, 0.0, 10.0, 10.0};
  SchedulerContext ctx{5.0, 1, 1.0, alive, true};
  const RateDecision d = wrr.rates(ctx);
  EXPECT_NEAR(d.max_duration, 0.02 * (5.0 + 1e-3), 1e-9);
}

TEST(WeightedRoundRobin, HelpsL2OverRrOnStarvedBigJob) {
  // Age weighting pushes service toward the long-waiting big job, improving
  // the l2 norm versus plain RR on the SRPT-starvation family is NOT
  // expected (RR already serves it); instead check WRR completes and is
  // within a small factor of RR on a random instance.
  workload::Rng rng(19);
  const Instance inst =
      workload::poisson_load(50, 1, 0.9, workload::ExponentialSize{1.0}, rng);
  WeightedRoundRobin wrr;
  EngineOptions eo;
  eo.record_trace = false;
  const double wrr_l2 = flow_lk_norm(EngineCore().run(inst, wrr, eo), 2.0);
  EXPECT_GT(wrr_l2, 0.0);
  EXPECT_TRUE(std::isfinite(wrr_l2));
}

}  // namespace
}  // namespace tempofair
