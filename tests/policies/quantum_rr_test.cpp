#include "policies/quantum_rr.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/round_robin.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

TEST(QuantumRr, RejectsBadParameters) {
  EXPECT_THROW(QuantumRoundRobin(0.0), std::invalid_argument);
  EXPECT_THROW(QuantumRoundRobin(-1.0), std::invalid_argument);
  EXPECT_THROW(QuantumRoundRobin(1.0, -0.1), std::invalid_argument);
}

TEST(QuantumRr, IsNonClairvoyant) {
  QuantumRoundRobin qrr(1.0);
  EXPECT_FALSE(qrr.clairvoyant());
}

TEST(QuantumRr, AlternatesBetweenTwoJobs) {
  // Two size-2 jobs, quantum 1: A runs [0,1], B [1,2], A [2,3], B [3,4].
  const Instance inst = Instance::batch(std::vector<Work>{2.0, 2.0});
  QuantumRoundRobin qrr(1.0);
  const Schedule s = EngineCore().run(inst, qrr);
  EXPECT_DOUBLE_EQ(s.completion(0), 3.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 4.0);
  s.validate();
}

TEST(QuantumRr, NoRotationWhenJobsFitOnMachines) {
  const Instance inst = Instance::batch(std::vector<Work>{5.0, 5.0});
  QuantumRoundRobin qrr(0.5);
  EngineOptions eo;
  eo.machines = 2;
  const Schedule s = EngineCore().run(inst, qrr, eo);
  EXPECT_DOUBLE_EQ(s.completion(0), 5.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 5.0);
}

TEST(QuantumRr, TinyQuantumApproachesIdealRoundRobin) {
  workload::Rng rng(29);
  const Instance inst =
      workload::poisson_load(30, 1, 0.85, workload::UniformSize{0.5, 2.0}, rng);
  RoundRobin ideal;
  EngineOptions eo;
  eo.record_trace = false;
  const double ideal_l2 = flow_lk_norm(EngineCore().run(inst, ideal, eo), 2.0);

  double prev_gap = std::numeric_limits<double>::infinity();
  for (double q : {1.0, 0.25, 0.05}) {
    QuantumRoundRobin qrr(q);
    const double l2 = flow_lk_norm(EngineCore().run(inst, qrr, eo), 2.0);
    const double gap = std::fabs(l2 - ideal_l2) / ideal_l2;
    EXPECT_LE(gap, prev_gap + 0.05);  // gap shrinks (allow small noise)
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.05);  // within 5% at quantum 0.05
}

TEST(QuantumRr, HugeQuantumActsLikeFcfsOnBatch) {
  // Quantum larger than any job: each job runs to completion in queue order.
  const Instance inst = Instance::batch(std::vector<Work>{2.0, 3.0, 1.0});
  QuantumRoundRobin qrr(100.0);
  const Schedule s = EngineCore().run(inst, qrr);
  EXPECT_DOUBLE_EQ(s.completion(0), 2.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 5.0);
  EXPECT_DOUBLE_EQ(s.completion(2), 6.0);
}

TEST(QuantumRr, SwitchCostDelaysCompletions) {
  const Instance inst = Instance::batch(std::vector<Work>{2.0, 2.0});
  QuantumRoundRobin no_cost(1.0, 0.0);
  QuantumRoundRobin with_cost(1.0, 0.25);
  const Schedule a = EngineCore().run(inst, no_cost);
  const Schedule b = EngineCore().run(inst, with_cost);
  EXPECT_GT(b.completion(0) + b.completion(1), a.completion(0) + a.completion(1));
}

TEST(QuantumRr, MidQuantumCompletionFreesMachine) {
  // Job 0 (size 0.5) completes mid-quantum; job 1 takes over.
  const Instance inst = Instance::batch(std::vector<Work>{0.5, 1.0});
  QuantumRoundRobin qrr(1.0);
  const Schedule s = EngineCore().run(inst, qrr);
  EXPECT_DOUBLE_EQ(s.completion(0), 0.5);
  EXPECT_DOUBLE_EQ(s.completion(1), 1.5);
}

TEST(QuantumRr, ArrivalsJoinTheBackOfTheQueue) {
  const Instance inst = Instance::from_pairs(
      std::vector<std::pair<Time, Work>>{{0.0, 2.0}, {0.25, 1.0}});
  QuantumRoundRobin qrr(1.0);
  const Schedule s = EngineCore().run(inst, qrr);
  // Job 0 first runs without slicing (it is alone); slicing begins when
  // job 1 arrives at 0.25, so job 0's first quantum spans [0.25, 1.25].
  // Job 1 (queued behind) runs [1.25, 2.25]; job 0 finishes its remaining
  // 0.75 alone afterwards.
  EXPECT_DOUBLE_EQ(s.completion(1), 2.25);
  EXPECT_DOUBLE_EQ(s.completion(0), 3.0);
}

TEST(QuantumRr, CompletesRandomWorkload) {
  workload::Rng rng(37);
  const Instance inst =
      workload::poisson_load(60, 2, 0.9, workload::ExponentialSize{1.0}, rng);
  QuantumRoundRobin qrr(0.5, 0.01);
  EngineOptions eo;
  eo.machines = 2;
  const Schedule s = EngineCore().run(inst, qrr, eo);
  s.validate();
}

}  // namespace
}  // namespace tempofair
