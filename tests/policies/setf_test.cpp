#include "policies/setf.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/round_robin.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

TEST(Setf, IsNonClairvoyant) {
  Setf setf;
  EXPECT_FALSE(setf.clairvoyant());
}

TEST(Setf, RejectsNegativeTolerance) {
  EXPECT_THROW(Setf(-1.0), std::invalid_argument);
}

TEST(Setf, EqualBatchBehavesLikeRoundRobin) {
  // All jobs tied at attained 0 forever: SETF == RR on an equal batch.
  std::vector<Work> sizes(6, 3.0);
  const Instance inst = Instance::batch(sizes);
  Setf setf;
  RoundRobin rr;
  const Schedule a = EngineCore().run(inst, setf);
  const Schedule b = EngineCore().run(inst, rr);
  for (JobId j = 0; j < 6; ++j) EXPECT_NEAR(a.completion(j), b.completion(j), 1e-6);
}

TEST(Setf, NewArrivalGetsExclusiveServiceUntilCatchUp) {
  // Job 0 runs alone [0,2] (attained 2).  Job 1 arrives at 2 with attained
  // 0: SETF serves ONLY job 1 until it catches up at attained 2 (t=4),
  // then they share.
  const Instance inst =
      Instance::from_pairs(std::vector<std::pair<Time, Work>>{{0.0, 4.0}, {2.0, 3.0}});
  Setf setf;
  const Schedule s = EngineCore().run(inst, setf);
  // Catch-up at t=4 (both attained 2).  Then share at 1/2: job 1 needs 1
  // more -> done at t=6; job 0 needs 2 more: shares until 6 (attained 3),
  // then alone until attained 4 at t=7.
  EXPECT_NEAR(s.completion(1), 6.0, 1e-6);
  EXPECT_NEAR(s.completion(0), 7.0, 1e-6);
}

TEST(Setf, ShortJobCompletesBeforeCatchingUp) {
  // Long job attains 10 alone; a size-1 arrival is served exclusively and
  // finishes before reaching the long job's level.
  const Instance inst =
      Instance::from_pairs(std::vector<std::pair<Time, Work>>{{0.0, 20.0}, {10.0, 1.0}});
  Setf setf;
  const Schedule s = EngineCore().run(inst, setf);
  EXPECT_NEAR(s.completion(1), 11.0, 1e-6);
  EXPECT_NEAR(s.completion(0), 21.0, 1e-6);
}

TEST(Setf, FavorsSmallJobsLikeSrptDoesForL1) {
  // SETF approximates SRPT for total flow without clairvoyance.  On one big
  // job plus a steady stream of unit jobs, SETF serves each fresh unit job
  // exclusively (attained 0 < big job's attained), so unit flows stay ~1
  // while under RR every unit job shares with the big one.
  std::vector<std::pair<Time, Work>> pairs{{0.0, 30.0}};
  for (int i = 0; i < 40; ++i) pairs.emplace_back(1.25 * i, 1.0);
  const Instance inst = Instance::from_pairs(pairs);
  Setf setf;
  RoundRobin rr;
  EngineOptions eo;
  eo.record_trace = false;
  const double setf_l1 = flow_lk_norm(EngineCore().run(inst, setf, eo), 1.0);
  const double rr_l1 = flow_lk_norm(EngineCore().run(inst, rr, eo), 1.0);
  EXPECT_LT(setf_l1, rr_l1);
}

TEST(Setf, MultiMachineGrantsIdleCapacityDownTheLevels) {
  // 3 machines, 2 jobs at level 0 and 2 at level > 0 -- the two low jobs
  // get a machine each and the third machine is shared by the next level.
  Setf setf;
  std::vector<AliveJob> alive(4);
  alive[0] = AliveJob{0, 0.0, 0.0, 10.0, 10.0};
  alive[1] = AliveJob{1, 0.0, 0.0, 10.0, 10.0};
  alive[2] = AliveJob{2, 0.0, 5.0, 10.0, 5.0};
  alive[3] = AliveJob{3, 0.0, 5.0, 10.0, 5.0};
  SchedulerContext ctx{6.0, 3, 1.0, alive, true};
  const RateDecision d = setf.rates(ctx);
  EXPECT_DOUBLE_EQ(d.rates[0], 1.0);
  EXPECT_DOUBLE_EQ(d.rates[1], 1.0);
  EXPECT_DOUBLE_EQ(d.rates[2], 0.5);
  EXPECT_DOUBLE_EQ(d.rates[3], 0.5);
}

TEST(Setf, BreakpointStopsAtLevelCatchUp) {
  Setf setf;
  std::vector<AliveJob> alive(2);
  alive[0] = AliveJob{0, 0.0, 1.0, 10.0, 9.0};
  alive[1] = AliveJob{1, 0.0, 4.0, 10.0, 6.0};
  SchedulerContext ctx{5.0, 1, 1.0, alive, true};
  const RateDecision d = setf.rates(ctx);
  EXPECT_DOUBLE_EQ(d.rates[0], 1.0);  // least attained runs
  EXPECT_DOUBLE_EQ(d.rates[1], 0.0);
  EXPECT_DOUBLE_EQ(d.max_duration, 3.0);  // catches level 4 after 3 units
}

TEST(Setf, WorksNonClairvoyantly) {
  workload::Rng rng(43);
  const Instance inst =
      workload::poisson_load(40, 2, 0.9, workload::ExponentialSize{1.5}, rng);
  Setf open, blind;
  EngineOptions visible;
  visible.machines = 2;
  EngineOptions hidden;
  hidden.machines = 2;
  hidden.hide_sizes = true;
  const Schedule a = EngineCore().run(inst, open, visible);
  const Schedule b = EngineCore().run(inst, blind, hidden);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_NEAR(a.completion(j), b.completion(j), 1e-7);
  }
}

TEST(Setf, HandlesManyTiedGroupsWithoutStepExplosion) {
  // Jobs arriving in quick succession create many distinct attained levels;
  // the chained grouping must keep the event count manageable.
  workload::Rng rng(47);
  const Instance inst =
      workload::poisson_load(120, 1, 0.95, workload::UniformSize{0.5, 1.5}, rng);
  Setf setf;
  EngineOptions eo;
  eo.record_trace = false;
  eo.max_steps = 2'000'000;
  const Schedule s = EngineCore().run(inst, setf, eo);
  s.validate();
  EXPECT_GT(s.makespan(), 0.0);
}

}  // namespace
}  // namespace tempofair
