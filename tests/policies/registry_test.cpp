#include "policies/registry.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "policies/quantum_rr.h"

namespace tempofair {
namespace {

TEST(Registry, CreatesEveryBuiltin) {
  for (const std::string& spec : builtin_policy_specs()) {
    const auto p = make_policy(spec);
    ASSERT_NE(p, nullptr) << spec;
    EXPECT_FALSE(p->name().empty());
  }
}

TEST(Registry, NamesMatchSpecs) {
  EXPECT_EQ(make_policy("rr")->name(), "rr");
  EXPECT_EQ(make_policy("srpt")->name(), "srpt");
  EXPECT_EQ(make_policy("sjf")->name(), "sjf");
  EXPECT_EQ(make_policy("fcfs")->name(), "fcfs");
  EXPECT_EQ(make_policy("setf")->name(), "setf");
  EXPECT_EQ(make_policy("wrr")->name(), "wrr");
  EXPECT_EQ(make_policy("mlfq")->name(), "mlfq");
}

TEST(Registry, WeightedPolicyNames) {
  EXPECT_EQ(make_policy("hdf")->name(), "hdf");
  EXPECT_EQ(make_policy("hrdf")->name(), "hrdf");
  EXPECT_EQ(make_policy("wprr")->name(), "wprr");
  EXPECT_TRUE(make_policy("hdf")->clairvoyant());
  EXPECT_TRUE(make_policy("hrdf")->clairvoyant());
  EXPECT_FALSE(make_policy("wprr")->clairvoyant());
}

TEST(Registry, ParsesLapsBeta) {
  const auto p = make_policy("laps:0.25");
  EXPECT_EQ(p->name(), "laps");
}

TEST(Registry, ParsesQuantumRrParameters) {
  const auto p = make_policy("qrr:0.5,0.01");
  auto* qrr = dynamic_cast<QuantumRoundRobin*>(p.get());
  ASSERT_NE(qrr, nullptr);
  EXPECT_DOUBLE_EQ(qrr->quantum(), 0.5);
}

TEST(Registry, QrrWithoutSwitchCost) {
  const auto p = make_policy("qrr:2.5");
  auto* qrr = dynamic_cast<QuantumRoundRobin*>(p.get());
  ASSERT_NE(qrr, nullptr);
  EXPECT_DOUBLE_EQ(qrr->quantum(), 2.5);
}

TEST(Registry, DefaultArgsWork) {
  EXPECT_NO_THROW((void)make_policy("laps"));
  EXPECT_NO_THROW((void)make_policy("qrr"));
}

TEST(Registry, RejectsUnknownPolicy) {
  EXPECT_THROW((void)make_policy("nope"), std::invalid_argument);
  EXPECT_THROW((void)make_policy(""), std::invalid_argument);
}

TEST(Registry, RejectsMalformedParameters) {
  EXPECT_THROW((void)make_policy("laps:abc"), std::invalid_argument);
  EXPECT_THROW((void)make_policy("qrr:1.0,xyz"), std::invalid_argument);
  EXPECT_THROW((void)make_policy("laps:2.0"), std::invalid_argument);  // beta > 1
  EXPECT_THROW((void)make_policy("qrr:-1"), std::invalid_argument);
}

TEST(Registry, EveryBuiltinSimulatesACommonInstance) {
  const Instance inst = Instance::from_pairs(std::vector<std::pair<Time, Work>>{
      {0.0, 2.0}, {0.5, 1.0}, {1.0, 3.0}, {4.0, 0.5}});
  for (const std::string& spec : builtin_policy_specs()) {
    const auto p = make_policy(spec);
    const Schedule s = EngineCore().run(inst, *p);
    EXPECT_NO_THROW(s.validate()) << spec;
  }
}

}  // namespace
}  // namespace tempofair
