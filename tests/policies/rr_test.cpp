#include "policies/round_robin.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/metrics.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

TEST(RoundRobin, NameAndClairvoyance) {
  RoundRobin rr;
  EXPECT_EQ(rr.name(), "rr");
  EXPECT_FALSE(rr.clairvoyant());
}

TEST(RoundRobin, EqualSharesSingleMachine) {
  RoundRobin rr;
  std::vector<AliveJob> alive(4);
  for (JobId i = 0; i < 4; ++i) alive[i] = AliveJob{i, 0.0, 0.0, 1.0, 1.0};
  SchedulerContext ctx{0.0, 1, 1.0, alive, true};
  const RateDecision d = rr.rates(ctx);
  ASSERT_EQ(d.rates.size(), 4u);
  for (double r : d.rates) EXPECT_DOUBLE_EQ(r, 0.25);
}

TEST(RoundRobin, UnderloadedGivesFullMachines) {
  RoundRobin rr;
  std::vector<AliveJob> alive(2);
  for (JobId i = 0; i < 2; ++i) alive[i] = AliveJob{i, 0.0, 0.0, 1.0, 1.0};
  SchedulerContext ctx{0.0, 4, 1.0, alive, true};
  const RateDecision d = rr.rates(ctx);
  for (double r : d.rates) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(RoundRobin, OverloadedSplitsMachinesEvenly) {
  RoundRobin rr;
  std::vector<AliveJob> alive(8);
  for (JobId i = 0; i < 8; ++i) alive[i] = AliveJob{i, 0.0, 0.0, 1.0, 1.0};
  SchedulerContext ctx{0.0, 2, 3.0, alive, true};
  const RateDecision d = rr.rates(ctx);
  for (double r : d.rates) EXPECT_DOUBLE_EQ(r, 3.0 * 2.0 / 8.0);
}

TEST(RoundRobin, SpeedScalesShares) {
  RoundRobin rr;
  std::vector<AliveJob> alive(2);
  for (JobId i = 0; i < 2; ++i) alive[i] = AliveJob{i, 0.0, 0.0, 1.0, 1.0};
  SchedulerContext ctx{0.0, 1, 4.0, alive, true};
  const RateDecision d = rr.rates(ctx);
  for (double r : d.rates) EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(RoundRobin, EqualBatchFinishesTogether) {
  // n equal jobs at time 0 under RR all complete at n * size.
  for (std::size_t n : {2u, 5u, 17u}) {
    std::vector<Work> sizes(n, 2.0);
    RoundRobin rr;
    const Schedule s = EngineCore().run(Instance::batch(sizes), rr);
    for (JobId j = 0; j < n; ++j) {
      EXPECT_NEAR(s.completion(j), 2.0 * static_cast<double>(n), 1e-7);
    }
  }
}

TEST(RoundRobin, SmallerJobFinishesFirstInSharedRun) {
  const Instance inst = Instance::batch(std::vector<Work>{1.0, 3.0});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  // Shared until job 0 done at t=2 (each got 1); job 1 has 2 left -> C=4.
  EXPECT_DOUBLE_EQ(s.completion(0), 2.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 4.0);
}

TEST(RoundRobin, WorksNonClairvoyantly) {
  workload::Rng rng(3);
  const Instance inst =
      workload::poisson_load(40, 1, 0.8, workload::UniformSize{0.5, 2.0}, rng);
  RoundRobin rr_open, rr_blind;
  EngineOptions open;
  EngineOptions blind;
  blind.hide_sizes = true;
  const Schedule a = EngineCore().run(inst, rr_open, open);
  const Schedule b = EngineCore().run(inst, rr_blind, blind);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_DOUBLE_EQ(a.completion(j), b.completion(j));
  }
}

TEST(RoundRobin, MatchesPaperRateFormula) {
  // m_j(t) = speed * min(1, m / n_t) in every trace interval.
  workload::Rng rng(11);
  const Instance inst =
      workload::poisson_load(30, 3, 1.1, workload::ExponentialSize{1.0}, rng);
  RoundRobin rr;
  EngineOptions eo;
  eo.machines = 3;
  eo.speed = 2.0;
  const Schedule s = EngineCore().run(inst, rr, eo);
  for (const TraceIntervalView iv : s.trace()) {
    const double expect =
        2.0 * std::min(1.0, 3.0 / static_cast<double>(iv.alive_count()));
    for (const RateShare share : iv.shares()) {
      EXPECT_NEAR(share.rate, expect, 1e-12);
    }
  }
}

TEST(RoundRobin, FlowTimesWeaklyDecreaseWithSpeed) {
  workload::Rng rng(5);
  const Instance inst =
      workload::poisson_load(60, 1, 0.9, workload::ExponentialSize{1.5}, rng);
  double prev = std::numeric_limits<double>::infinity();
  for (double speed : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    RoundRobin rr;
    EngineOptions eo;
    eo.speed = speed;
    eo.record_trace = false;
    const double l2 = flow_lk_norm(EngineCore().run(inst, rr, eo), 2.0);
    EXPECT_LE(l2, prev + 1e-9);
    prev = l2;
  }
}

TEST(RoundRobin, MoreMachinesNeverHurt) {
  workload::Rng rng(6);
  const Instance inst =
      workload::poisson_load(60, 1, 1.2, workload::ExponentialSize{1.5}, rng);
  double prev = std::numeric_limits<double>::infinity();
  for (int m : {1, 2, 4, 8}) {
    RoundRobin rr;
    EngineOptions eo;
    eo.machines = m;
    eo.record_trace = false;
    const double l2 = flow_lk_norm(EngineCore().run(inst, rr, eo), 2.0);
    EXPECT_LE(l2, prev + 1e-9);
    prev = l2;
  }
}

}  // namespace
}  // namespace tempofair
