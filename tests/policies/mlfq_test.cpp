#include "policies/mlfq.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/round_robin.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

TEST(Mlfq, RejectsBadParameters) {
  EXPECT_THROW(Mlfq(0.0), std::invalid_argument);
  EXPECT_THROW(Mlfq(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Mlfq(1.0, 0.5), std::invalid_argument);
}

TEST(Mlfq, LevelThresholdsAreGeometric) {
  const Mlfq mlfq(1.0, 2.0);
  EXPECT_DOUBLE_EQ(mlfq.threshold(0), 1.0);
  EXPECT_DOUBLE_EQ(mlfq.threshold(1), 2.0);
  EXPECT_DOUBLE_EQ(mlfq.threshold(3), 8.0);
}

TEST(Mlfq, LevelOfAttainedService) {
  const Mlfq mlfq(1.0, 2.0);
  EXPECT_EQ(mlfq.level_of(0.0), 0);
  EXPECT_EQ(mlfq.level_of(0.99), 0);
  EXPECT_EQ(mlfq.level_of(1.0), 1);  // exactly at threshold -> next level
  EXPECT_EQ(mlfq.level_of(1.5), 1);
  EXPECT_EQ(mlfq.level_of(2.0), 2);
  EXPECT_EQ(mlfq.level_of(7.9), 3);
}

TEST(Mlfq, NewArrivalPreemptsDemotedJob) {
  // Big job passes level 0 (1 unit); small arrival at t=2 is level 0 and
  // preempts it.
  const Instance inst =
      Instance::from_pairs(std::vector<std::pair<Time, Work>>{{0.0, 10.0}, {2.0, 0.5}});
  Mlfq mlfq(1.0, 2.0);
  const Schedule s = EngineCore().run(inst, mlfq);
  EXPECT_DOUBLE_EQ(s.completion(1), 2.5);
  EXPECT_DOUBLE_EQ(s.completion(0), 10.5);
}

TEST(Mlfq, IsNonClairvoyantAndDeterministic) {
  Mlfq policy(1.0, 2.0);
  EXPECT_FALSE(policy.clairvoyant());
  workload::Rng rng(53);
  const Instance inst =
      workload::poisson_load(40, 1, 0.9, workload::ExponentialSize{2.0}, rng);
  Mlfq a(1.0, 2.0), b(1.0, 2.0);
  EngineOptions open;
  EngineOptions hidden;
  hidden.hide_sizes = true;
  const Schedule sa = EngineCore().run(inst, a, open);
  const Schedule sb = EngineCore().run(inst, b, hidden);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_NEAR(sa.completion(j), sb.completion(j), 1e-9);
  }
}

TEST(Mlfq, BeatsRoundRobinOnBigJobPlusStreamL1) {
  // MLFQ approximates SETF: the big job is demoted past level 0 after one
  // base quantum, so fresh unit jobs preempt it and keep their flows ~1,
  // while RR makes every unit job share with the big one.
  std::vector<std::pair<Time, Work>> pairs{{0.0, 30.0}};
  for (int i = 0; i < 40; ++i) pairs.emplace_back(1.25 * i, 1.0);
  const Instance inst = Instance::from_pairs(pairs);
  Mlfq mlfq(1.0, 2.0);
  RoundRobin rr;
  EngineOptions eo;
  eo.record_trace = false;
  EXPECT_LT(flow_lk_norm(EngineCore().run(inst, mlfq, eo), 1.0),
            flow_lk_norm(EngineCore().run(inst, rr, eo), 1.0));
}

TEST(Mlfq, CompletesOnMultipleMachines) {
  workload::Rng rng(61);
  const Instance inst =
      workload::poisson_load(50, 4, 0.9, workload::ExponentialSize{1.0}, rng);
  Mlfq mlfq(0.5, 2.0);
  EngineOptions eo;
  eo.machines = 4;
  const Schedule s = EngineCore().run(inst, mlfq, eo);
  s.validate();
}

}  // namespace
}  // namespace tempofair
