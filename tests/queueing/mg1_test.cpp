#include "queueing/mg1.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/registry.h"

namespace tempofair::queueing {
namespace {

TEST(Integrate, PolynomialExact) {
  // Simpson is exact for cubics.
  EXPECT_NEAR(integrate([](double x) { return x * x * x; }, 0.0, 2.0), 4.0, 1e-12);
  EXPECT_NEAR(integrate([](double x) { return 3.0 * x * x; }, 0.0, 1.0), 1.0, 1e-12);
}

TEST(Integrate, AdaptsToCurvature) {
  EXPECT_NEAR(integrate([](double x) { return std::exp(-x); }, 0.0, 20.0), 1.0, 1e-6);
  EXPECT_NEAR(integrate([](double x) { return std::sin(x); }, 0.0, M_PI), 2.0, 1e-8);
}

TEST(Integrate, EmptyInterval) {
  EXPECT_DOUBLE_EQ(integrate([](double) { return 1.0; }, 1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(integrate([](double) { return 1.0; }, 2.0, 1.0), 0.0);
}

TEST(Moments, ExponentialClosedForms) {
  const auto m = make_moments(workload::SizeDist{workload::ExponentialSize{2.0}});
  EXPECT_DOUBLE_EQ(m->mean(), 2.0);
  EXPECT_DOUBLE_EQ(m->second_moment(), 8.0);
  EXPECT_NEAR(m->cdf(2.0), 1.0 - std::exp(-1.0), 1e-12);
  // partial moments converge to the full ones.
  EXPECT_NEAR(m->partial_mean(100.0), 2.0, 1e-9);
  EXPECT_NEAR(m->partial_second(200.0), 8.0, 1e-9);
  EXPECT_TRUE(m->continuous());
  // Cross-check partial_mean against numeric integration of t f(t).
  const double numeric = integrate(
      [](double t) { return t * 0.5 * std::exp(-t / 2.0); }, 0.0, 3.0);
  EXPECT_NEAR(m->partial_mean(3.0), numeric, 1e-7);
}

TEST(Moments, UniformClosedForms) {
  const auto m = make_moments(workload::SizeDist{workload::UniformSize{1.0, 3.0}});
  EXPECT_DOUBLE_EQ(m->mean(), 2.0);
  EXPECT_NEAR(m->second_moment(), 13.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m->cdf(2.0), 0.5);
  EXPECT_NEAR(m->partial_mean(3.0), 2.0, 1e-12);
  EXPECT_NEAR(m->partial_mean(2.0), (4.0 - 1.0) / 4.0, 1e-12);
  EXPECT_TRUE(m->continuous());
}

TEST(Moments, FixedIsAtomic) {
  const auto m = make_moments(workload::SizeDist{workload::FixedSize{3.0}});
  EXPECT_DOUBLE_EQ(m->mean(), 3.0);
  EXPECT_DOUBLE_EQ(m->second_moment(), 9.0);
  EXPECT_FALSE(m->continuous());
}

TEST(Moments, UnsupportedDistributionsThrow) {
  EXPECT_THROW((void)make_moments(workload::SizeDist{workload::ParetoSize{}}),
               std::invalid_argument);
  EXPECT_THROW((void)make_moments(workload::SizeDist{workload::BimodalSize{}}),
               std::invalid_argument);
}

TEST(Mg1, PsFormulaAndInsensitivity) {
  // E[T]_PS = E[S]/(1-rho) regardless of the distribution shape.
  const auto exp_m = make_moments(workload::SizeDist{workload::ExponentialSize{1.0}});
  const auto uni_m = make_moments(workload::SizeDist{workload::UniformSize{0.5, 1.5}});
  Mg1 a{0.8, exp_m.get()};
  Mg1 b{0.8, uni_m.get()};
  EXPECT_NEAR(a.mean_response_ps(), 5.0, 1e-12);
  EXPECT_NEAR(b.mean_response_ps(), 5.0, 1e-12);
}

TEST(Mg1, FcfsPollaczekKhinchine) {
  // M/M/1-FCFS: E[T] = 1/(mu - lambda) with mu = 1/E[S].
  const auto m = make_moments(workload::SizeDist{workload::ExponentialSize{1.0}});
  Mg1 q{0.7, m.get()};
  EXPECT_NEAR(q.mean_response_fcfs(), 1.0 / (1.0 - 0.7), 1e-9);
  // M/D/1 waits exactly half of M/M/1's queueing delay.
  const auto d = make_moments(workload::SizeDist{workload::FixedSize{1.0}});
  Mg1 qd{0.7, d.get()};
  const double mm1_wait = q.mean_response_fcfs() - 1.0;
  const double md1_wait = qd.mean_response_fcfs() - 1.0;
  EXPECT_NEAR(md1_wait, 0.5 * mm1_wait, 1e-9);
}

TEST(Mg1, SrptBeatsPsBeatsFcfsUnderExponential) {
  const auto m = make_moments(workload::SizeDist{workload::ExponentialSize{1.0}});
  Mg1 q{0.8, m.get()};
  const double srpt = q.mean_response_srpt();
  const double ps = q.mean_response_ps();
  const double fcfs = q.mean_response_fcfs();
  EXPECT_LT(srpt, ps);        // SRPT is optimal
  EXPECT_NEAR(ps, fcfs, 1e-9);  // M/M/1: PS and FCFS tie in the mean
  EXPECT_GT(srpt, m->mean());   // but can't beat the bare service time
}

TEST(Mg1, SrptPerSizeIsMonotone) {
  const auto m = make_moments(workload::SizeDist{workload::ExponentialSize{1.0}});
  Mg1 q{0.8, m.get()};
  double prev = 0.0;
  for (double x : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const double t = q.mean_response_srpt(x);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Mg1, AtomicSizesRejectSrptAndFb) {
  const auto d = make_moments(workload::SizeDist{workload::FixedSize{1.0}});
  Mg1 q{0.5, d.get()};
  EXPECT_THROW((void)q.mean_response_srpt(), std::invalid_argument);
  EXPECT_THROW((void)q.mean_response_fb(1.0), std::invalid_argument);
}

TEST(Mg1, OverloadRejected) {
  const auto m = make_moments(workload::SizeDist{workload::ExponentialSize{1.0}});
  Mg1 q{1.2, m.get()};
  EXPECT_THROW((void)q.mean_response_ps(), std::invalid_argument);
  EXPECT_THROW((void)q.mean_response_fcfs(), std::invalid_argument);
}

// ---- simulator-vs-theory convergence ---------------------------------------

struct OracleCase {
  const char* policy;
  double (*oracle)(const Mg1&);
  double tolerance;  // relative
};

double ps_oracle(const Mg1& q) { return q.mean_response_ps(); }
double fcfs_oracle(const Mg1& q) { return q.mean_response_fcfs(); }
double srpt_oracle(const Mg1& q) { return q.mean_response_srpt(); }
double fb_oracle(const Mg1& q) { return q.mean_response_fb(); }

class SimulatorVsTheory : public ::testing::TestWithParam<OracleCase> {};

TEST_P(SimulatorVsTheory, MeanFlowMatchesMg1) {
  const auto [policy_name, oracle, tolerance] = GetParam();
  const workload::SizeDist dist = workload::ExponentialSize{1.0};
  const auto moments = make_moments(dist);
  const double load = 0.7;
  Mg1 q{load, moments.get()};
  const double predicted = oracle(q);

  // Average several long runs; drop a warmup prefix to approach steady state.
  double measured_sum = 0.0;
  const int runs = 3;
  const std::size_t n = 6000, warmup = 500;
  for (int r = 0; r < runs; ++r) {
    workload::Rng rng(1000 + r);
    const Instance inst = workload::poisson_load(n, 1, load, dist, rng);
    auto policy = make_policy(policy_name);
    EngineOptions eo;
    eo.record_trace = false;
    const Schedule s = EngineCore().run(inst, *policy, eo);
    double sum = 0.0;
    for (JobId j = static_cast<JobId>(warmup); j < n - warmup; ++j) {
      sum += s.flow(j);
    }
    measured_sum += sum / static_cast<double>(n - 2 * warmup);
  }
  const double measured = measured_sum / runs;
  EXPECT_NEAR(measured, predicted, tolerance * predicted)
      << policy_name << ": theory " << predicted << " vs sim " << measured;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SimulatorVsTheory,
    ::testing::Values(OracleCase{"rr", &ps_oracle, 0.10},
                      OracleCase{"srpt", &srpt_oracle, 0.10},
                      OracleCase{"fcfs", &fcfs_oracle, 0.10},
                      OracleCase{"setf", &fb_oracle, 0.12}),
    [](const auto& param_info) { return std::string(param_info.param.policy); });

}  // namespace
}  // namespace tempofair::queueing
