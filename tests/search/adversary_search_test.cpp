#include "search/adversary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "search/record.h"

namespace tempofair::search {
namespace {

// Small budgets keep the exact-LP certifications (the expensive stage)
// test-sized; the search semantics are identical at every budget.
SearchOptions tiny_options() {
  SearchOptions so;
  so.policy = "rr";
  so.k = 2.0;
  so.seed = 42;
  so.budget = 40;
  so.max_jobs = 8;
  return so;
}

TEST(AdversaryRecordJson, RoundTripsExactly) {
  AdversaryRecord rec;
  rec.policy = "qrr:0.25,0.01";
  rec.k = 3.0;
  rec.machines = 2;
  rec.speed = 1.5;
  rec.seed = 123456789012345ull;
  rec.budget = 4000;
  rec.evals = 1234;
  rec.family = "search";
  rec.releases = {0.0, 0.1 + 0.2, 1e-9};  // 0.30000000000000004: needs %.17g
  rec.sizes = {1.0, 1e6, 3.0000000000000004};
  rec.lp_slot = 0.017857142857142856;
  rec.cost_power = 398.56520140625003;
  rec.certified_lb = 43.85499999999999;
  rec.ratio = 3.0146724443224073;

  const std::string json = record_to_json(rec);
  const AdversaryRecord back = record_from_json(json);
  EXPECT_EQ(back.policy, rec.policy);
  EXPECT_EQ(back.seed, rec.seed);
  EXPECT_EQ(back.budget, rec.budget);
  EXPECT_EQ(back.evals, rec.evals);
  EXPECT_EQ(back.family, rec.family);
  EXPECT_EQ(back.machines, rec.machines);
  EXPECT_EQ(back.releases, rec.releases);  // bitwise: %.17g round-trips
  EXPECT_EQ(back.sizes, rec.sizes);
  EXPECT_EQ(back.lp_slot, rec.lp_slot);
  EXPECT_EQ(back.cost_power, rec.cost_power);
  EXPECT_EQ(back.certified_lb, rec.certified_lb);
  EXPECT_EQ(back.ratio, rec.ratio);
  // And the serialization itself is a fixed point.
  EXPECT_EQ(record_to_json(back), json);
}

TEST(AdversaryRecordJson, RejectsMalformedInput) {
  AdversaryRecord rec;
  rec.releases = {0.0};
  rec.sizes = {1.0};
  const std::string good = record_to_json(rec);

  EXPECT_THROW((void)record_from_json(""), std::invalid_argument);
  EXPECT_THROW((void)record_from_json("{}"), std::invalid_argument);
  EXPECT_THROW((void)record_from_json(good + "x"), std::invalid_argument);

  std::string wrong_format = good;
  const auto pos = wrong_format.find("adversary-v1");
  wrong_format.replace(pos, 12, "adversary-v9");
  EXPECT_THROW((void)record_from_json(wrong_format), std::invalid_argument);

  std::string uneven = good;
  const auto sizes_pos = uneven.find("\"sizes\": [");
  uneven.replace(sizes_pos, 11, "\"sizes\": [2, ");
  EXPECT_THROW((void)record_from_json(uneven), std::invalid_argument);
}

TEST(AdversarySearch, DeterministicUnderFixedSeed) {
  const SearchOptions so = tiny_options();
  const SearchResult a = search_adversary(so);
  const SearchResult b = search_adversary(so);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  // Byte-identical archived records, not just close ratios.
  EXPECT_EQ(record_to_json(a.best), record_to_json(b.best));
  EXPECT_EQ(a.stats.evals, b.stats.evals);
  EXPECT_EQ(a.stats.certifications, b.stats.certifications);
  EXPECT_EQ(a.stats.improvements, b.stats.improvements);
}

TEST(AdversarySearch, SearchOutputReVerifies) {
  const SearchResult res = search_adversary(tiny_options());
  ASSERT_TRUE(res.found);
  const VerifyReport rep = verify_record(res.best);
  EXPECT_TRUE(rep.ok) << rep.error;

  // And survives the JSON round trip (what the nightly job re-verifies).
  const AdversaryRecord back = record_from_json(record_to_json(res.best));
  const VerifyReport rep2 = verify_record(back);
  EXPECT_TRUE(rep2.ok) << rep2.error;
}

TEST(AdversarySearch, TamperedRecordFailsVerification) {
  const SearchResult res = search_adversary(tiny_options());
  ASSERT_TRUE(res.found);

  AdversaryRecord inflated = res.best;
  inflated.ratio *= 1.01;  // claim a better ratio than the instance yields
  EXPECT_FALSE(verify_record(inflated).ok);

  AdversaryRecord wrong_lb = res.best;
  wrong_lb.certified_lb *= 0.5;  // understate the certified denominator
  EXPECT_FALSE(verify_record(wrong_lb).ok);

  AdversaryRecord wrong_instance = res.best;
  wrong_instance.sizes.front() *= 2.0;  // different instance, same claims
  EXPECT_FALSE(verify_record(wrong_instance).ok);

  AdversaryRecord bad_slot = res.best;
  bad_slot.lp_slot = 0.0;  // cannot rebuild the certificate's grid
  EXPECT_FALSE(verify_record(bad_slot).ok);
}

TEST(AdversarySearch, MatchesOrBeatsHandBuiltBaseline) {
  // The acceptance bar: the k=2 search starts from the certified
  // Bansal-Pruhs batch+stream seed, so its best ratio can only fall below
  // the baseline if certification regressed.
  const SearchOptions so = tiny_options();
  const CertifiedEval baseline = baseline_hard_family(so);
  ASSERT_TRUE(baseline.ok);
  EXPECT_GT(baseline.ratio, 1.0);

  const SearchResult res = search_adversary(so);
  ASSERT_TRUE(res.found);
  EXPECT_GE(res.best.ratio, baseline.ratio * (1.0 - 1e-9));
}

TEST(AdversarySearch, DegenerateInstancesDoNotCertify) {
  // Denormal sizes give an lb below DBL_MIN: the evaluation must refuse to
  // form a ratio (the search skips such candidates, never archives them).
  std::vector<std::pair<Time, Work>> pairs;
  for (int i = 0; i < 4; ++i) pairs.emplace_back(0.0, 1e-170);
  const Instance inst = Instance::from_pairs(pairs);
  const CertifiedEval eval = evaluate_certified(inst, tiny_options());
  EXPECT_FALSE(eval.ok);
  EXPECT_DOUBLE_EQ(eval.ratio, 0.0);
}

TEST(AdversarySearch, SeedFamiliesRespectJobCap) {
  SearchOptions so = tiny_options();
  so.max_jobs = 10;
  for (const auto& [family, inst] : seed_instances(so)) {
    EXPECT_GE(inst.n(), 2u) << family;
    EXPECT_LE(inst.n(), so.max_jobs) << family;
  }
}

TEST(AdversarySearch, RejectsInvalidOptions) {
  SearchOptions so = tiny_options();
  so.policy = "no-such-policy";
  EXPECT_THROW((void)search_adversary(so), std::invalid_argument);
  so = tiny_options();
  so.k = 0.5;
  EXPECT_THROW((void)search_adversary(so), std::invalid_argument);
  so = tiny_options();
  so.budget = 0;
  EXPECT_THROW((void)search_adversary(so), std::invalid_argument);
  so = tiny_options();
  so.max_jobs = 2;
  EXPECT_THROW((void)search_adversary(so), std::invalid_argument);
}

TEST(AdversarySearch, RecordCarriesItsProvenance) {
  const SearchOptions so = tiny_options();
  const SearchResult res = search_adversary(so);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.best.policy, so.policy);
  EXPECT_DOUBLE_EQ(res.best.k, so.k);
  EXPECT_EQ(res.best.seed, so.seed);
  EXPECT_EQ(res.best.budget, so.budget);
  EXPECT_LE(res.best.sizes.size(), so.max_jobs);
  EXPECT_GT(res.best.certified_lb, 0.0);
  EXPECT_GT(res.best.cost_power, 0.0);
  EXPECT_NEAR(res.best.ratio,
              std::pow(res.best.cost_power / res.best.certified_lb, 0.5),
              1e-12);
}

}  // namespace
}  // namespace tempofair::search
