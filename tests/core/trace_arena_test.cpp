// Unit tests of the columnar TraceArena / JobTraceView, plus equivalence
// tests pinning the refactored (view-based, windowed) analysis pipeline to
// first-principles recomputations over a materialized AoS copy of the trace.
// Tolerance for the equivalence checks is 1e-12 *relative*; most are in
// fact bitwise because the view code performs the identical arithmetic.
#include "core/trace_arena.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/dualfit.h"
#include "core/engine.h"
#include "core/fairness.h"
#include "policies/round_robin.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

// Materialized (array-of-structs) copy of the trace, as the pre-refactor
// layout stored it: the reference representation for equivalence checks.
struct AosInterval {
  Time begin = 0.0;
  Time end = 0.0;
  std::vector<RateShare> shares;
};

std::vector<AosInterval> materialize(const TraceArena& trace) {
  std::vector<AosInterval> out;
  out.reserve(trace.size());
  for (const TraceIntervalView iv : trace) {
    AosInterval a;
    a.begin = iv.begin();
    a.end = iv.end();
    for (std::size_t i = 0; i < iv.alive_count(); ++i) {
      a.shares.push_back(iv.share(i));
    }
    out.push_back(std::move(a));
  }
  return out;
}

void expect_rel_eq(double actual, double expected, const char* what) {
  const double tol = 1e-12 * std::max({std::fabs(actual), std::fabs(expected), 1.0});
  EXPECT_NEAR(actual, expected, tol) << what;
}

// ---- JobTraceView units -----------------------------------------------------

TEST(JobTraceView, EmptyForUnknownOrAbsentJob) {
  TraceArena arena;
  EXPECT_TRUE(arena.job_trace(0).empty());
  arena.append(0.0, 1.0, {RateShare{2, 1.0}});
  EXPECT_TRUE(arena.job_trace(0).empty());   // id below max, never traced
  EXPECT_TRUE(arena.job_trace(7).empty());   // id beyond any traced job
  EXPECT_EQ(arena.job_trace(2).size(), 1u);
  EXPECT_DOUBLE_EQ(arena.job_work(0), 0.0);
}

TEST(JobTraceView, SingleIntervalSlice) {
  TraceArena arena;
  arena.append(1.0, 3.5, {RateShare{4, 0.4}});
  const JobTraceView v = arena.job_trace(4);
  ASSERT_EQ(v.size(), 1u);
  const JobSlice s = v.front();
  EXPECT_EQ(s.interval, 0u);
  EXPECT_DOUBLE_EQ(s.begin, 1.0);
  EXPECT_DOUBLE_EQ(s.end, 3.5);
  EXPECT_DOUBLE_EQ(s.rate, 0.4);
  EXPECT_DOUBLE_EQ(s.length(), 2.5);
  EXPECT_DOUBLE_EQ(v.total_work(), 1.0);
}

TEST(JobTraceView, InterleavedArrivalsUnderRr) {
  // Jobs (0, 2), (1, 2): job 0 runs alone on [0,1), both share [1,3),
  // job 1 alone on [3,4).
  const Instance inst = Instance::from_pairs(
      std::vector<std::pair<Time, Work>>{{0.0, 2.0}, {1.0, 2.0}});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);

  const JobTraceView v0 = s.job_trace(0);
  ASSERT_EQ(v0.size(), 2u);
  EXPECT_DOUBLE_EQ(v0[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(v0[0].end, 1.0);
  EXPECT_DOUBLE_EQ(v0[0].rate, 1.0);
  EXPECT_DOUBLE_EQ(v0[1].begin, 1.0);
  EXPECT_DOUBLE_EQ(v0[1].end, 3.0);
  EXPECT_DOUBLE_EQ(v0[1].rate, 0.5);

  const JobTraceView v1 = s.job_trace(1);
  ASSERT_EQ(v1.size(), 2u);
  EXPECT_DOUBLE_EQ(v1[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(v1[0].rate, 0.5);
  EXPECT_DOUBLE_EQ(v1[1].begin, 3.0);
  EXPECT_DOUBLE_EQ(v1[1].end, 4.0);
  EXPECT_DOUBLE_EQ(v1[1].rate, 1.0);

  // Slices reference their interval's global position.
  EXPECT_EQ(v0[1].interval, v1[0].interval);
  EXPECT_DOUBLE_EQ(v0.total_work(), 2.0);
  EXPECT_DOUBLE_EQ(v1.total_work(), 2.0);
}

TEST(TraceArena, UniformAndPerJobRateStorage) {
  TraceArena arena;
  // Bitwise-equal rates: stored compressed.
  arena.append(0.0, 1.0, {RateShare{0, 0.5}, RateShare{1, 0.5}});
  // Distinct rates: stored per job.
  arena.append(1.0, 2.0, {RateShare{0, 0.75}, RateShare{1, 0.25}});
  EXPECT_TRUE(arena[0].uniform_rate());
  EXPECT_FALSE(arena[1].uniform_rate());
  EXPECT_DOUBLE_EQ(arena[0].rate(0), 0.5);
  EXPECT_DOUBLE_EQ(arena[0].rate(1), 0.5);
  EXPECT_DOUBLE_EQ(arena[1].rate(0), 0.75);
  EXPECT_DOUBLE_EQ(arena[1].rate(1), 0.25);
  // The shares range resolves the compressed case too.
  std::vector<RateShare> got;
  for (const RateShare rs : arena[1].shares()) got.push_back(rs);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].job, 0u);
  EXPECT_DOUBLE_EQ(got[1].rate, 0.25);
  // Per-job cursor sees through compression as well.
  EXPECT_DOUBLE_EQ(arena.job_work(0), 0.5 + 0.75);
  EXPECT_DOUBLE_EQ(arena.job_work(1), 0.5 + 0.25);
}

TEST(TraceArena, EveryRrIntervalIsUniformCompressed) {
  workload::Rng rng(23);
  const Instance inst =
      workload::poisson_load(80, 1, 0.9, workload::ExponentialSize{1.0}, rng);
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  for (const TraceIntervalView iv : s.trace()) {
    EXPECT_TRUE(iv.uniform_rate());
  }
}

// ---- Equivalence: arena pipeline vs first-principles AoS recomputation -----

class ArenaEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::Rng rng(42);
    inst_ = workload::poisson_load(300, 1, 0.9,
                                   workload::ExponentialSize{1.5}, rng);
    RoundRobin rr;
    EngineOptions eo;
    eo.record_trace = true;
    sched_ = EngineCore().run(inst_, rr, eo);
    aos_ = materialize(sched_->trace());
  }

  Instance inst_;
  std::optional<Schedule> sched_;
  std::vector<AosInterval> aos_;
};

TEST_F(ArenaEquivalence, FlowTimesMatchLastTracedSlice) {
  // Under RR every job is processed until the moment it completes, so its
  // completion must equal the end of its last traced slice.
  for (JobId j = 0; j < inst_.n(); ++j) {
    const JobTraceView v = sched_->job_trace(j);
    ASSERT_FALSE(v.empty());
    expect_rel_eq(sched_->completion(j), v.back().end, "completion");
    expect_rel_eq(sched_->flow(j), v.back().end - sched_->release(j), "flow");
  }
}

TEST_F(ArenaEquivalence, TracedWorkMatchesAosRecompute) {
  double total_ref = 0.0;
  std::vector<double> per_job_ref(inst_.n(), 0.0);
  for (const AosInterval& iv : aos_) {
    const double len = iv.end - iv.begin;
    for (const RateShare& rs : iv.shares) {
      total_ref += rs.rate * len;
      per_job_ref[rs.job] += rs.rate * len;
    }
  }
  expect_rel_eq(sched_->traced_work(), total_ref, "traced_work total");
  for (JobId j = 0; j < inst_.n(); ++j) {
    expect_rel_eq(sched_->traced_work(j), per_job_ref[j], "traced_work per job");
  }
}

TEST_F(ArenaEquivalence, FairnessReportMatchesAosRecompute) {
  // Reference: the pre-refactor fairness loop over the AoS copy.
  const double speed = sched_->speed();
  const int m = sched_->machines();
  double jain_weighted = 0.0, busy = 0.0, max_lag = 0.0;
  std::vector<double> lag(inst_.n(), 0.0);
  std::vector<double> rates;
  for (const AosInterval& iv : aos_) {
    const double len = iv.end - iv.begin;
    const std::size_t n = iv.shares.size();
    if (n == 0) continue;
    busy += len;
    rates.clear();
    for (const RateShare& rs : iv.shares) rates.push_back(rs.rate);
    jain_weighted += jain_index(rates) * len;
    const double fair_share =
        speed * std::min(1.0, static_cast<double>(m) / static_cast<double>(n));
    for (const RateShare& rs : iv.shares) {
      lag[rs.job] += (fair_share - rs.rate) * len;
      max_lag = std::max(max_lag, lag[rs.job]);
    }
  }
  const FairnessReport rep = fairness_report(*sched_);
  expect_rel_eq(rep.busy_time, busy, "busy_time");
  expect_rel_eq(rep.jain_time_avg, jain_weighted / busy, "jain_time_avg");
  EXPECT_NEAR(rep.max_service_lag, max_lag, 1e-12);
}

TEST_F(ArenaEquivalence, ServiceLagCurveMatchesAosRecompute) {
  const double speed = sched_->speed();
  const int m = sched_->machines();
  for (JobId j : {JobId{0}, JobId{17}, JobId{299}}) {
    const auto curve = service_lag_curve(*sched_, j);
    // Reference: walk the AoS trace, accumulating lag in intervals with j.
    std::vector<std::pair<Time, double>> ref;
    double lag = 0.0;
    for (const AosInterval& iv : aos_) {
      const auto it = std::find_if(
          iv.shares.begin(), iv.shares.end(),
          [&](const RateShare& rs) { return rs.job == j; });
      if (it == iv.shares.end()) continue;
      if (ref.empty()) ref.emplace_back(iv.begin, 0.0);
      const double fair_share =
          speed * std::min(1.0, static_cast<double>(m) /
                                    static_cast<double>(iv.shares.size()));
      lag += (fair_share - it->rate) * (iv.end - iv.begin);
      ref.emplace_back(iv.end, lag);
    }
    ASSERT_EQ(curve.size(), ref.size());
    for (std::size_t i = 0; i < curve.size(); ++i) {
      EXPECT_DOUBLE_EQ(curve[i].first, ref[i].first);
      EXPECT_NEAR(curve[i].second, ref[i].second, 1e-12);
    }
  }
}

// Reference port of the pre-refactor dual-fit certificate: full O(n * pieces)
// feasibility sweep over the AoS trace copy, no windowing, no hoisting.
struct DualRef {
  double alpha_sum = 0.0;
  double beta_term = 0.0;
  double dual_objective = 0.0;
  double min_slack = 0.0;
  double max_relative_violation = 0.0;
};

DualRef dual_fit_reference(const Schedule& schedule,
                           const std::vector<AosInterval>& aos, double k,
                           double eps) {
  const std::size_t n = schedule.n();
  const int m = schedule.machines();
  const double gamma = k * std::pow(k / eps, k);
  const double delta = eps;

  auto age_power_integral = [&](double a, double b, double r) {
    return std::pow(b - r, k) - std::pow(a - r, k);
  };

  std::vector<double> flow(n), fk(n), fkm1(n);
  for (std::size_t j = 0; j < n; ++j) {
    flow[j] = schedule.flow(static_cast<JobId>(j));
    fk[j] = std::pow(flow[j], k);
    fkm1[j] = std::pow(flow[j], k - 1.0);
  }

  std::vector<double> alpha(n, 0.0);
  for (const AosInterval& iv : aos) {
    const std::size_t nt = iv.shares.size();
    if (nt == 0) continue;
    if (nt < static_cast<std::size_t>(m)) {
      for (const RateShare& s : iv.shares) {
        alpha[s.job] +=
            age_power_integral(iv.begin, iv.end, schedule.release(s.job));
      }
      continue;
    }
    std::vector<JobId> by_arrival;
    for (const RateShare& s : iv.shares) by_arrival.push_back(s.job);
    std::sort(by_arrival.begin(), by_arrival.end(), [&](JobId a, JobId b) {
      const Time ra = schedule.release(a), rb = schedule.release(b);
      if (ra != rb) return ra < rb;
      return a < b;
    });
    std::vector<double> prefix(nt + 1, 0.0);
    for (std::size_t i = 0; i < nt; ++i) {
      prefix[i + 1] = prefix[i] + age_power_integral(
                                      iv.begin, iv.end,
                                      schedule.release(by_arrival[i]));
    }
    for (std::size_t i = 0; i < nt; ++i) {
      alpha[by_arrival[i]] += prefix[i + 1] / static_cast<double>(nt);
    }
  }
  DualRef ref;
  for (std::size_t j = 0; j < n; ++j) {
    alpha[j] -= eps * fk[j];
    ref.alpha_sum += alpha[j];
  }

  const double beta_coeff = (0.5 - 3.0 * eps) / static_cast<double>(m);
  std::vector<std::pair<Time, double>> events;
  for (std::size_t j = 0; j < n; ++j) {
    const Time start = schedule.release(static_cast<JobId>(j));
    const Time stop =
        schedule.completion(static_cast<JobId>(j)) + delta * flow[j];
    events.emplace_back(start, beta_coeff * fkm1[j]);
    events.emplace_back(stop, -beta_coeff * fkm1[j]);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<std::pair<Time, double>> pieces;
  double running = 0.0, beta_integral = 0.0;
  Time prev_t = events.empty() ? 0.0 : events.front().first;
  std::size_t i = 0;
  while (i < events.size()) {
    const Time t = events[i].first;
    beta_integral += running * (t - prev_t);
    prev_t = t;
    while (i < events.size() && events[i].first == t) {
      running += events[i].second;
      ++i;
    }
    pieces.emplace_back(t, std::max(running, 0.0));
  }
  ref.beta_term = static_cast<double>(m) * beta_integral;
  ref.dual_objective = ref.alpha_sum - ref.beta_term;

  ref.min_slack = kInfiniteTime;
  for (std::size_t j = 0; j < n; ++j) {
    const double pj = schedule.size(static_cast<JobId>(j));
    const double rj = schedule.release(static_cast<JobId>(j));
    const double lhs = alpha[j] / pj;
    auto check_at = [&](Time t, double beta_value) {
      const double rhs =
          gamma * (std::pow(std::max(t - rj, 0.0), k) + std::pow(pj, k)) / pj +
          beta_value;
      const double slack = rhs - lhs;
      ref.min_slack = std::min(ref.min_slack, slack);
      if (slack < 0.0) {
        const double scale = std::max({std::fabs(lhs), std::fabs(rhs), 1e-300});
        ref.max_relative_violation =
            std::max(ref.max_relative_violation, -slack / scale);
      }
    };
    for (std::size_t p = 0; p < pieces.size(); ++p) {
      const Time piece_end =
          p + 1 < pieces.size() ? pieces[p + 1].first : kInfiniteTime;
      if (piece_end <= rj) continue;
      check_at(std::max(pieces[p].first, rj), pieces[p].second);
    }
    const Time tail_start =
        pieces.empty() ? rj : std::max(pieces.back().first, rj);
    check_at(tail_start, 0.0);
  }
  return ref;
}

TEST_F(ArenaEquivalence, DualFitCertificateMatchesFullScanReference) {
  for (const double k : {1.0, 2.0, 3.0}) {
    analysis::DualFitOptions opt;
    opt.k = k;
    opt.eps = 0.05;
    const analysis::DualFitResult res =
        analysis::dual_fit_certificate(*sched_, opt);
    const DualRef ref = dual_fit_reference(*sched_, aos_, k, opt.eps);
    expect_rel_eq(res.alpha_sum, ref.alpha_sum, "alpha_sum");
    expect_rel_eq(res.beta_term, ref.beta_term, "beta_term");
    expect_rel_eq(res.dual_objective, ref.dual_objective, "dual_objective");
    expect_rel_eq(res.min_slack, ref.min_slack, "min_slack");
    expect_rel_eq(res.max_relative_violation, ref.max_relative_violation,
                  "max_relative_violation");
  }
}

// Same equivalence on a multi-machine, non-unit-speed run: exercises the
// underloaded alpha branch and per-machine fair shares.
TEST(ArenaEquivalenceMultiMachine, DualFitAndWorkMatchReference) {
  workload::Rng rng(7);
  const Instance inst =
      workload::poisson_load(200, 3, 1.1, workload::UniformSize{0.5, 2.0}, rng);
  RoundRobin rr;
  EngineOptions eo;
  eo.machines = 3;
  eo.speed = 2.0;
  eo.record_trace = true;
  const Schedule s = EngineCore().run(inst, rr, eo);
  const std::vector<AosInterval> aos = materialize(s.trace());

  analysis::DualFitOptions opt;
  opt.k = 2.0;
  opt.eps = 0.05;
  const analysis::DualFitResult res = analysis::dual_fit_certificate(s, opt);
  const DualRef ref = dual_fit_reference(s, aos, opt.k, opt.eps);
  expect_rel_eq(res.alpha_sum, ref.alpha_sum, "alpha_sum");
  expect_rel_eq(res.beta_term, ref.beta_term, "beta_term");
  expect_rel_eq(res.min_slack, ref.min_slack, "min_slack");
  expect_rel_eq(res.max_relative_violation, ref.max_relative_violation,
                "max_relative_violation");

  double total_ref = 0.0;
  for (const AosInterval& iv : aos) {
    for (const RateShare& rs : iv.shares) {
      total_ref += rs.rate * (iv.end - iv.begin);
    }
  }
  expect_rel_eq(s.traced_work(), total_ref, "traced_work total");
}

}  // namespace
}  // namespace tempofair
