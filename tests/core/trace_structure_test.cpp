// Structural tests of the recorded trace: the piecewise-constant intervals
// must partition busy time, list exactly the alive set, and agree with
// hand-computed rate staircases.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "policies/round_robin.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

TEST(TraceStructure, RrStaircaseHandComputed) {
  // Jobs: (0, 2), (1, 2).  RR trace: [0,1) job0 alone at 1; [1,3) both at
  // 1/2; [3,4) job1 alone at 1.
  const Instance inst =
      Instance::from_pairs(std::vector<std::pair<Time, Work>>{{0.0, 2.0}, {1.0, 2.0}});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  ASSERT_EQ(s.trace().size(), 3u);

  const TraceIntervalView a = s.trace()[0];
  EXPECT_DOUBLE_EQ(a.begin(), 0.0);
  EXPECT_DOUBLE_EQ(a.end(), 1.0);
  ASSERT_EQ(a.alive_count(), 1u);
  EXPECT_EQ(a.job(0), 0u);
  EXPECT_DOUBLE_EQ(a.rate(0), 1.0);

  const TraceIntervalView b = s.trace()[1];
  EXPECT_DOUBLE_EQ(b.begin(), 1.0);
  EXPECT_DOUBLE_EQ(b.end(), 3.0);
  ASSERT_EQ(b.alive_count(), 2u);
  EXPECT_DOUBLE_EQ(b.rate(0), 0.5);
  EXPECT_DOUBLE_EQ(b.rate(1), 0.5);

  const TraceIntervalView c = s.trace()[2];
  EXPECT_DOUBLE_EQ(c.begin(), 3.0);
  EXPECT_DOUBLE_EQ(c.end(), 4.0);
  ASSERT_EQ(c.alive_count(), 1u);
  EXPECT_EQ(c.job(0), 1u);
}

TEST(TraceStructure, IntervalsTileWithoutOverlap) {
  workload::Rng rng(13);
  const Instance inst =
      workload::poisson_load(60, 2, 0.9, workload::ExponentialSize{1.0}, rng);
  RoundRobin rr;
  EngineOptions eo;
  eo.machines = 2;
  const Schedule s = EngineCore().run(inst, rr, eo);
  Time prev_end = -1.0;
  for (const TraceIntervalView iv : s.trace()) {
    EXPECT_LT(iv.begin(), iv.end());
    EXPECT_GE(iv.begin(), prev_end - 1e-12);  // non-overlapping, ordered
    prev_end = iv.end();
  }
  EXPECT_NEAR(prev_end, s.makespan(), 1e-9);
}

TEST(TraceStructure, AliveSetMatchesLifespans) {
  workload::Rng rng(17);
  const Instance inst =
      workload::poisson_load(40, 1, 0.9, workload::UniformSize{0.5, 2.0}, rng);
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  for (const TraceIntervalView iv : s.trace()) {
    for (const RateShare share : iv.shares()) {
      EXPECT_GE(iv.begin(), s.release(share.job) - 1e-9);
      EXPECT_LE(iv.end(), s.completion(share.job) + 1e-9);
    }
    // Conversely: every job whose lifespan covers the interval must appear.
    for (JobId j = 0; j < inst.n(); ++j) {
      if (s.release(j) <= iv.begin() + 1e-12 &&
          s.completion(j) >= iv.end() - 1e-12) {
        bool found = false;
        for (const RateShare share : iv.shares()) found = found || share.job == j;
        EXPECT_TRUE(found) << "job " << j << " missing from interval at "
                           << iv.begin();
      }
    }
  }
}

TEST(TraceStructure, AttainedServiceReconstructsFlows) {
  // Integrating each job's rate over the trace up to any prefix never
  // exceeds its size, and the final integral equals the size exactly.
  workload::Rng rng(19);
  const Instance inst =
      workload::poisson_load(30, 1, 0.85, workload::ExponentialSize{2.0}, rng);
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  std::vector<double> attained(inst.n(), 0.0);
  for (const TraceIntervalView iv : s.trace()) {
    for (const RateShare share : iv.shares()) {
      attained[share.job] += share.rate * iv.length();
      EXPECT_LE(attained[share.job], inst.job(share.job).size + 1e-6);
    }
  }
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_NEAR(attained[j], inst.job(j).size, 1e-6);
  }
}

}  // namespace
}  // namespace tempofair
