// The engine's breakpoint contract: a policy that returns max_duration must
// be re-queried no later than that, and zero-rate intervals (e.g. context
// switches) must advance the clock without processing work.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "policies/quantum_rr.h"

namespace tempofair {
namespace {

/// Allocates everything to the first alive job but asks to be re-queried
/// every `step`; records the query times.
class ProbePolicy final : public Policy {
 public:
  explicit ProbePolicy(double step) : step_(step) {}
  std::string_view name() const noexcept override { return "probe"; }
  bool clairvoyant() const noexcept override { return false; }
  RateDecision rates(const SchedulerContext& ctx) override {
    query_times.push_back(ctx.now);
    RateDecision d;
    d.rates.assign(ctx.n_alive(), 0.0);
    d.rates[0] = ctx.speed;
    d.max_duration = step_;
    return d;
  }
  std::vector<Time> query_times;

 private:
  double step_;
};

/// Idles for `idle` time, then serves everything at full speed.
class SlowStartPolicy final : public Policy {
 public:
  explicit SlowStartPolicy(double idle) : idle_(idle) {}
  std::string_view name() const noexcept override { return "slowstart"; }
  bool clairvoyant() const noexcept override { return false; }
  PolicyInvariantTraits invariant_traits() const noexcept override {
    PolicyInvariantTraits t;
    t.work_conserving = false;  // the whole point is the idle prefix
    return t;
  }
  RateDecision rates(const SchedulerContext& ctx) override {
    RateDecision d;
    if (ctx.now < idle_ - kAbsEps) {
      d.rates.assign(ctx.n_alive(), 0.0);
      d.max_duration = idle_ - ctx.now;  // wake up exactly at `idle_`
    } else {
      d.rates.assign(ctx.n_alive(),
                     ctx.speed * std::min(1.0, static_cast<double>(ctx.machines) /
                                                   static_cast<double>(ctx.n_alive())));
    }
    return d;
  }

 private:
  double idle_;
};

TEST(Breakpoints, PolicyIsRequeriedAtItsOwnCadence) {
  const Instance inst = Instance::batch(std::vector<Work>{1.0});
  ProbePolicy probe(0.25);
  const Schedule s = EngineCore().run(inst, probe);
  EXPECT_DOUBLE_EQ(s.completion(0), 1.0);
  // Queries at 0, 0.25, 0.5, 0.75 (completion lands exactly on the last step).
  ASSERT_GE(probe.query_times.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(probe.query_times[i], 0.25 * static_cast<double>(i), 1e-9);
  }
}

TEST(Breakpoints, ZeroRateIntervalsAdvanceTimeWithoutWork) {
  const Instance inst = Instance::batch(std::vector<Work>{2.0});
  SlowStartPolicy slow(3.0);
  const Schedule s = EngineCore().run(inst, slow);
  EXPECT_DOUBLE_EQ(s.completion(0), 5.0);  // 3 idle + 2 work
  s.validate();                            // trace stays consistent
}

TEST(Breakpoints, NoSwitchCostWhenContentionEnds) {
  // Two size-1 jobs, quantum 1, switch cost 0.5: job0 completes exactly at
  // its quantum boundary, leaving one job -- no rotation happens, so no
  // dead time is charged and job1 runs immediately.
  const Instance inst = Instance::batch(std::vector<Work>{1.0, 1.0});
  QuantumRoundRobin qrr(1.0, 0.5);
  const Schedule s = EngineCore().run(inst, qrr);
  EXPECT_DOUBLE_EQ(s.completion(0), 1.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 2.0);
}

TEST(Breakpoints, ContextSwitchDeadTimeIsExact) {
  // Two size-2 jobs, quantum 1, switch cost 0.5: rotations at t=1 and
  // t=2.5 each cost exactly 0.5 of dead time:
  //   job0 [0,1], switch [1,1.5], job1 [1.5,2.5], switch [2.5,3],
  //   job0 [3,4] (completes), job1 [4,5] (alone, no further switches).
  const Instance inst = Instance::batch(std::vector<Work>{2.0, 2.0});
  QuantumRoundRobin qrr(1.0, 0.5);
  const Schedule s = EngineCore().run(inst, qrr);
  EXPECT_DOUBLE_EQ(s.completion(0), 4.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 5.0);
}

}  // namespace
}  // namespace tempofair
