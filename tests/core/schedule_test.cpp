#include "core/schedule.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tempofair {
namespace {

Instance simple_instance() {
  return Instance::from_pairs(
      std::vector<std::pair<Time, Work>>{{0.0, 2.0}, {1.0, 1.0}});
}

TEST(Schedule, FlowIsCompletionMinusRelease) {
  Schedule s(simple_instance(), 1, 1.0);
  s.set_completion(0, 3.0);
  s.set_completion(1, 2.5);
  EXPECT_DOUBLE_EQ(s.flow(0), 3.0);
  EXPECT_DOUBLE_EQ(s.flow(1), 1.5);
  const auto flows = s.flows();
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_DOUBLE_EQ(flows[0], 3.0);
  EXPECT_DOUBLE_EQ(flows[1], 1.5);
}

TEST(Schedule, MakespanTracksLatestCompletion) {
  Schedule s(simple_instance(), 1, 1.0);
  s.set_completion(1, 2.5);
  EXPECT_DOUBLE_EQ(s.makespan(), 2.5);
  s.set_completion(0, 3.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(Schedule, ZeroLengthIntervalsAreDropped) {
  Schedule s(simple_instance(), 1, 1.0);
  s.set_trace_recorded(true);
  s.push_interval(1.0, 1.0, {RateShare{0, 1.0}});
  EXPECT_TRUE(s.trace().empty());
}

TEST(Schedule, TracedWorkSumsRateTimesLength) {
  Schedule s(simple_instance(), 1, 1.0);
  s.set_trace_recorded(true);
  s.push_interval(0.0, 2.0, {RateShare{0, 0.75}, RateShare{1, 0.25}});
  EXPECT_DOUBLE_EQ(s.traced_work(), 2.0);
  EXPECT_DOUBLE_EQ(s.traced_work(0), 1.5);
  EXPECT_DOUBLE_EQ(s.traced_work(1), 0.5);
}

TEST(ScheduleValidate, FailsOnMissingCompletion) {
  Schedule s(simple_instance(), 1, 1.0);
  s.set_completion(0, 3.0);
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(ScheduleValidate, FailsOnImpossiblyEarlyCompletion) {
  Schedule s(simple_instance(), 1, 1.0);
  s.set_completion(0, 0.5);  // size 2 at speed 1 cannot finish before t=2
  s.set_completion(1, 2.5);
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(ScheduleValidate, FailsOnOvercapacityInterval) {
  Schedule s(simple_instance(), 1, 1.0);
  s.set_trace_recorded(true);
  s.set_completion(0, 2.0);
  s.set_completion(1, 2.0);
  // sum 1.5 > m*s = 1
  s.push_interval(0.0, 2.0, {RateShare{0, 1.0}, RateShare{1, 0.5}});
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(ScheduleValidate, FailsOnJobTracedBeforeRelease) {
  Schedule s(simple_instance(), 2, 1.0);
  s.set_trace_recorded(true);
  s.set_completion(0, 2.0);
  s.set_completion(1, 2.0);
  // job 1 releases at 1.0 but the interval starts at 0.0
  s.push_interval(0.0, 2.0, {RateShare{0, 1.0}, RateShare{1, 0.5}});
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(ScheduleValidate, FailsOnWorkMismatch) {
  Schedule s(simple_instance(), 2, 1.0);
  s.set_trace_recorded(true);
  s.set_completion(0, 2.0);
  s.set_completion(1, 2.5);
  // only 1.0 of job 0's 2.0 processed
  s.push_interval(0.0, 2.0, {RateShare{0, 0.5}});
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(ScheduleValidate, FailsOnUnsortedShares) {
  Schedule s(simple_instance(), 2, 1.0);
  s.set_trace_recorded(true);
  s.set_completion(0, 2.0);
  s.set_completion(1, 2.0);
  s.push_interval(1.0, 2.0, {RateShare{1, 0.5}, RateShare{0, 0.5}});
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(ScheduleValidate, AcceptsConsistentSchedule) {
  Schedule s(simple_instance(), 2, 1.0);
  s.set_trace_recorded(true);
  s.set_completion(0, 2.0);
  s.set_completion(1, 2.0);
  s.push_interval(0.0, 1.0, {RateShare{0, 1.0}});
  s.push_interval(1.0, 2.0, {RateShare{0, 1.0}, RateShare{1, 1.0}});
  EXPECT_NO_THROW(s.validate());
}

}  // namespace
}  // namespace tempofair
