#include "core/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/metrics.h"
#include "policies/priority_policies.h"
#include "policies/round_robin.h"

namespace tempofair {
namespace {

Instance two_unit_jobs() { return Instance::batch(std::vector<Work>{1.0, 1.0}); }

// A policy that always allocates zero rate: must be detected as a deadlock.
class DeadlockPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "deadlock"; }
  bool clairvoyant() const noexcept override { return false; }
  RateDecision rates(const SchedulerContext& ctx) override {
    RateDecision d;
    d.rates.assign(ctx.n_alive(), 0.0);
    return d;
  }
};

// A policy returning the wrong number of rates.
class WrongCountPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "wrongcount"; }
  bool clairvoyant() const noexcept override { return false; }
  RateDecision rates(const SchedulerContext& ctx) override {
    RateDecision d;
    d.rates.assign(ctx.n_alive() + 1, 0.1);
    return d;
  }
};

// A policy oversubscribing the machines.
class OversubscribePolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "oversub"; }
  bool clairvoyant() const noexcept override { return false; }
  RateDecision rates(const SchedulerContext& ctx) override {
    RateDecision d;
    d.rates.assign(ctx.n_alive(), ctx.speed);  // n * speed > m * speed when n > m
    return d;
  }
};

// A policy exceeding the per-job speed cap.
class TooFastPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "toofast"; }
  bool clairvoyant() const noexcept override { return false; }
  RateDecision rates(const SchedulerContext& ctx) override {
    RateDecision d;
    d.rates.assign(ctx.n_alive(), 2.0 * ctx.speed);
    return d;
  }
};

// Records whether sizes were visible.
class SizeProbePolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "probe"; }
  bool clairvoyant() const noexcept override { return false; }
  RateDecision rates(const SchedulerContext& ctx) override {
    for (const AliveJob& j : ctx.alive) {
      saw_nan_size = saw_nan_size || std::isnan(j.size);
      saw_real_size = saw_real_size || !std::isnan(j.size);
    }
    sizes_visible_flag = ctx.sizes_visible;
    RateDecision d;
    d.rates.assign(ctx.n_alive(), ctx.speed / static_cast<double>(ctx.n_alive()));
    return d;
  }
  bool saw_nan_size = false;
  bool saw_real_size = false;
  bool sizes_visible_flag = true;
};

TEST(Engine, EmptyInstanceProducesEmptySchedule) {
  RoundRobin rr;
  const Schedule s = EngineCore().run(Instance{}, rr);
  EXPECT_EQ(s.n(), 0u);
  EXPECT_EQ(s.makespan(), 0.0);
}

TEST(Engine, SingleJobRunsAtFullSpeed) {
  const Instance inst = Instance::batch(std::vector<Work>{4.0});
  RoundRobin rr;
  EngineOptions eo;
  eo.speed = 2.0;
  const Schedule s = EngineCore().run(inst, rr, eo);
  EXPECT_DOUBLE_EQ(s.completion(0), 2.0);
  EXPECT_DOUBLE_EQ(s.flow(0), 2.0);
}

TEST(Engine, TwoEqualJobsUnderRrFinishTogether) {
  RoundRobin rr;
  const Schedule s = EngineCore().run(two_unit_jobs(), rr);
  EXPECT_DOUBLE_EQ(s.completion(0), 2.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 2.0);
}

TEST(Engine, LateArrivalCreatesIdleGap) {
  const Instance inst =
      Instance::from_pairs(std::vector<std::pair<Time, Work>>{{0.0, 1.0}, {5.0, 1.0}});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  EXPECT_DOUBLE_EQ(s.completion(0), 1.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 6.0);
  // Trace must contain two disjoint busy intervals.
  ASSERT_TRUE(s.has_trace());
  EXPECT_DOUBLE_EQ(s.trace().front().begin(), 0.0);
  EXPECT_DOUBLE_EQ(s.trace().back().end(), 6.0);
}

TEST(Engine, ArrivalSplitsInterval) {
  const Instance inst =
      Instance::from_pairs(std::vector<std::pair<Time, Work>>{{0.0, 2.0}, {1.0, 2.0}});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  // Job 0 runs alone for 1 unit (1 done), then shares: each gets 0.5.
  // Job 0 needs 1 more -> 2 additional units -> C0 = 3, during which job 1
  // also got 1 done.  Job 1 then runs alone with 1 left -> C1 = 4.
  EXPECT_DOUBLE_EQ(s.completion(0), 3.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 4.0);
}

TEST(Engine, SpeedAugmentationScalesCompletions) {
  RoundRobin rr;
  EngineOptions eo;
  eo.speed = 4.0;
  const Schedule s = EngineCore().run(two_unit_jobs(), rr, eo);
  EXPECT_DOUBLE_EQ(s.completion(0), 0.5);
}

TEST(Engine, MultipleMachinesRunJobsInParallel) {
  const Instance inst = Instance::batch(std::vector<Work>{1.0, 1.0, 1.0});
  RoundRobin rr;
  EngineOptions eo;
  eo.machines = 3;
  const Schedule s = EngineCore().run(inst, rr, eo);
  for (JobId j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(s.completion(j), 1.0);
}

TEST(Engine, RrOnMoreJobsThanMachines) {
  // 4 unit jobs, 2 machines: each gets rate 1/2 -> all finish at 2.
  const Instance inst = Instance::batch(std::vector<Work>{1.0, 1.0, 1.0, 1.0});
  RoundRobin rr;
  EngineOptions eo;
  eo.machines = 2;
  const Schedule s = EngineCore().run(inst, rr, eo);
  for (JobId j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(s.completion(j), 2.0);
}

TEST(Engine, SimultaneousArrivalsAndCompletions) {
  // Jobs 0,1 complete exactly when job 2 arrives.
  const Instance inst = Instance::from_pairs(
      std::vector<std::pair<Time, Work>>{{0.0, 1.0}, {0.0, 1.0}, {2.0, 1.0}});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  EXPECT_DOUBLE_EQ(s.completion(0), 2.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 2.0);
  EXPECT_DOUBLE_EQ(s.completion(2), 3.0);
  s.validate();
}

TEST(Engine, ManySimultaneousArrivals) {
  std::vector<Work> sizes(100, 1.0);
  const Instance inst = Instance::batch(sizes);
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  for (JobId j = 0; j < 100; ++j) EXPECT_NEAR(s.completion(j), 100.0, 1e-6);
  s.validate();
}

TEST(Engine, TinyAndHugeSizesCoexist) {
  const Instance inst = Instance::batch(std::vector<Work>{1e-7, 1e7});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  EXPECT_NEAR(s.completion(0), 2e-7, 1e-12);
  EXPECT_NEAR(s.completion(1), 1e7 + 1e-7, 1.0);
  s.validate();
}

TEST(Engine, TraceConservesWork) {
  const Instance inst = Instance::from_pairs(std::vector<std::pair<Time, Work>>{
      {0.0, 3.0}, {1.0, 2.0}, {1.5, 0.5}, {4.0, 1.0}});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  EXPECT_NEAR(s.traced_work(), inst.total_work(), 1e-9);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_NEAR(s.traced_work(j), inst.job(j).size, 1e-9);
  }
}

TEST(Engine, RecordTraceOffLeavesNoTrace) {
  RoundRobin rr;
  EngineOptions eo;
  eo.record_trace = false;
  const Schedule s = EngineCore().run(two_unit_jobs(), rr, eo);
  EXPECT_FALSE(s.has_trace());
  EXPECT_TRUE(s.trace().empty());
  EXPECT_DOUBLE_EQ(s.completion(0), 2.0);  // completions still exact
}

TEST(Engine, RejectsBadOptions) {
  RoundRobin rr;
  EngineOptions eo;
  eo.machines = 0;
  EXPECT_THROW((void)EngineCore().run(two_unit_jobs(), rr, eo), std::invalid_argument);
  eo.machines = 1;
  eo.speed = 0.0;
  EXPECT_THROW((void)EngineCore().run(two_unit_jobs(), rr, eo), std::invalid_argument);
  eo.speed = -1.0;
  EXPECT_THROW((void)EngineCore().run(two_unit_jobs(), rr, eo), std::invalid_argument);
}

TEST(Engine, RefusesHiddenSizesForClairvoyantPolicy) {
  Srpt srpt;
  EngineOptions eo;
  eo.hide_sizes = true;
  EXPECT_THROW((void)EngineCore().run(two_unit_jobs(), srpt, eo), std::invalid_argument);
}

TEST(Engine, HiddenSizesAreNaNToThePolicy) {
  SizeProbePolicy probe;
  EngineOptions eo;
  eo.hide_sizes = true;
  (void)EngineCore().run(two_unit_jobs(), probe, eo);
  EXPECT_TRUE(probe.saw_nan_size);
  EXPECT_FALSE(probe.saw_real_size);
  EXPECT_FALSE(probe.sizes_visible_flag);
}

TEST(Engine, VisibleSizesAreRealToThePolicy) {
  SizeProbePolicy probe;
  (void)EngineCore().run(two_unit_jobs(), probe);
  EXPECT_FALSE(probe.saw_nan_size);
  EXPECT_TRUE(probe.saw_real_size);
  EXPECT_TRUE(probe.sizes_visible_flag);
}

TEST(Engine, DetectsDeadlock) {
  DeadlockPolicy dead;
  EXPECT_THROW((void)EngineCore().run(two_unit_jobs(), dead), std::runtime_error);
}

// A policy whose breakpoint is so small that `now + dt == now` in floating
// point once the clock is away from zero: the simulation would spin forever
// without the zero-progress guard.
class DenormalBreakpointPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "denormal"; }
  bool clairvoyant() const noexcept override { return false; }
  RateDecision rates(const SchedulerContext& ctx) override {
    RateDecision d;
    d.rates.assign(ctx.n_alive(), ctx.speed / static_cast<double>(ctx.n_alive()));
    d.max_duration = 5e-324;  // denormal: 1.0 + 5e-324 == 1.0
    return d;
  }
};

TEST(Engine, DetectsLivelockFromVanishingBreakpoints) {
  // Release at t=1.0 so the clock sits at 1.0 when the denormal steps start;
  // 1.0 + 5e-324 == 1.0, so no step ever advances time, completes a job, or
  // admits an arrival.
  const Instance inst =
      Instance::from_pairs(std::vector<std::pair<Time, Work>>{{1.0, 1.0}});
  DenormalBreakpointPolicy policy;
  EngineOptions eo;
  eo.max_zero_progress_steps = 50;
  try {
    (void)EngineCore().run(inst, policy, eo);
    FAIL() << "expected livelock diagnostic";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("livelock"), std::string::npos) << what;
    // The diagnostic names the culprit and the stuck breakpoint value, so
    // the failure is actionable without a debugger.
    EXPECT_NE(what.find("denormal"), std::string::npos) << what;
    EXPECT_NE(what.find("max_duration="), std::string::npos) << what;
  }
}

TEST(Engine, DetectsWrongRateCount) {
  WrongCountPolicy wrong;
  EXPECT_THROW((void)EngineCore().run(two_unit_jobs(), wrong), std::runtime_error);
}

TEST(Engine, DetectsOversubscription) {
  OversubscribePolicy over;
  EXPECT_THROW((void)EngineCore().run(two_unit_jobs(), over), std::runtime_error);
}

TEST(Engine, DetectsPerJobSpeedViolation) {
  TooFastPolicy fast;
  const Instance one = Instance::batch(std::vector<Work>{1.0});
  EXPECT_THROW((void)EngineCore().run(one, fast), std::runtime_error);
}

TEST(Engine, MaxTimeGuardFires) {
  RoundRobin rr;
  EngineOptions eo;
  eo.max_time = 0.5;  // jobs need 2.0
  EXPECT_THROW((void)EngineCore().run(two_unit_jobs(), rr, eo), std::runtime_error);
}

TEST(Engine, MaxStepsGuardFires) {
  RoundRobin rr;
  EngineOptions eo;
  eo.max_steps = 1;
  const Instance inst = Instance::from_pairs(
      std::vector<std::pair<Time, Work>>{{0.0, 1.0}, {0.5, 1.0}, {0.7, 1.0}});
  EXPECT_THROW((void)EngineCore().run(inst, rr, eo), std::runtime_error);
}

TEST(Engine, DeterministicAcrossRuns) {
  const Instance inst = Instance::from_pairs(std::vector<std::pair<Time, Work>>{
      {0.0, 2.5}, {0.3, 1.7}, {0.9, 4.2}, {2.0, 0.1}});
  RoundRobin rr1, rr2;
  const Schedule a = EngineCore().run(inst, rr1);
  const Schedule b = EngineCore().run(inst, rr2);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_DOUBLE_EQ(a.completion(j), b.completion(j));
  }
}

TEST(Engine, ZeroReleaseGapHandled) {
  // Two jobs released at the same instant mid-run.
  const Instance inst = Instance::from_pairs(std::vector<std::pair<Time, Work>>{
      {0.0, 3.0}, {1.0, 1.0}, {1.0, 1.0}});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  s.validate();
  EXPECT_DOUBLE_EQ(s.completion(1), s.completion(2));
}

}  // namespace
}  // namespace tempofair
