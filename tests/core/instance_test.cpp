#include "core/instance.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

namespace tempofair {
namespace {

TEST(Instance, FromPairsAssignsSequentialIds) {
  const std::vector<std::pair<Time, Work>> pairs{{0.0, 2.0}, {1.5, 3.0}, {0.5, 1.0}};
  const Instance inst = Instance::from_pairs(pairs);
  ASSERT_EQ(inst.n(), 3u);
  EXPECT_EQ(inst.job(0).release, 0.0);
  EXPECT_EQ(inst.job(0).size, 2.0);
  EXPECT_EQ(inst.job(1).release, 1.5);
  EXPECT_EQ(inst.job(2).size, 1.0);
}

TEST(Instance, EmptyInstance) {
  const Instance inst;
  EXPECT_TRUE(inst.empty());
  EXPECT_EQ(inst.n(), 0u);
  EXPECT_EQ(inst.total_work(), 0.0);
}

TEST(Instance, BatchReleasesAllAtSameTime) {
  const std::vector<Work> sizes{1.0, 2.0, 3.0};
  const Instance inst = Instance::batch(sizes, 5.0);
  ASSERT_EQ(inst.n(), 3u);
  for (const Job& j : inst.jobs()) EXPECT_EQ(j.release, 5.0);
  EXPECT_EQ(inst.total_work(), 6.0);
}

TEST(Instance, RejectsNonPositiveSize) {
  const std::vector<std::pair<Time, Work>> pairs{{0.0, 0.0}};
  EXPECT_THROW((void)Instance::from_pairs(pairs), std::invalid_argument);
  const std::vector<std::pair<Time, Work>> neg{{0.0, -1.0}};
  EXPECT_THROW((void)Instance::from_pairs(neg), std::invalid_argument);
}

TEST(Instance, RejectsNegativeOrNonFiniteRelease) {
  const std::vector<std::pair<Time, Work>> neg{{-1.0, 1.0}};
  EXPECT_THROW((void)Instance::from_pairs(neg), std::invalid_argument);
  const std::vector<std::pair<Time, Work>> inf{
      {std::numeric_limits<double>::infinity(), 1.0}};
  EXPECT_THROW((void)Instance::from_pairs(inf), std::invalid_argument);
}

TEST(Instance, RejectsNonFiniteSize) {
  const std::vector<std::pair<Time, Work>> nan{
      {0.0, std::numeric_limits<double>::quiet_NaN()}};
  EXPECT_THROW((void)Instance::from_pairs(nan), std::invalid_argument);
}

TEST(Instance, FromJobsRequiresIdPermutation) {
  EXPECT_THROW((void)Instance::from_jobs({Job{0, 0.0, 1.0}, Job{0, 1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)Instance::from_jobs({Job{1, 0.0, 1.0}, Job{2, 1.0, 1.0}}),
               std::invalid_argument);
  const Instance ok = Instance::from_jobs({Job{1, 0.0, 1.0}, Job{0, 1.0, 2.0}});
  EXPECT_EQ(ok.job(0).release, 1.0);
  EXPECT_EQ(ok.job(1).release, 0.0);
}

TEST(Instance, ReleaseOrderSortsByReleaseThenId) {
  const Instance inst = Instance::from_jobs(
      {Job{0, 2.0, 1.0}, Job{1, 0.0, 1.0}, Job{2, 0.0, 1.0}, Job{3, 1.0, 1.0}});
  const auto order = inst.release_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(order[3], 0u);
}

TEST(Instance, AggregateStatistics) {
  const std::vector<std::pair<Time, Work>> pairs{{1.0, 2.0}, {3.0, 0.5}, {2.0, 4.0}};
  const Instance inst = Instance::from_pairs(pairs);
  EXPECT_DOUBLE_EQ(inst.total_work(), 6.5);
  EXPECT_DOUBLE_EQ(inst.max_size(), 4.0);
  EXPECT_DOUBLE_EQ(inst.min_size(), 0.5);
  EXPECT_DOUBLE_EQ(inst.min_release(), 1.0);
  EXPECT_DOUBLE_EQ(inst.max_release(), 3.0);
}

TEST(Instance, HorizonBoundCoversSequentialExecution) {
  const std::vector<std::pair<Time, Work>> pairs{{0.0, 5.0}, {10.0, 5.0}};
  const Instance inst = Instance::from_pairs(pairs);
  EXPECT_GE(inst.horizon_bound(1), 20.0);
  EXPECT_GE(inst.horizon_bound(4, 2.0), 10.0 + 10.0 / 2.0);
}

TEST(Instance, HorizonBoundValidatesArguments) {
  const Instance inst = Instance::batch(std::vector<Work>{1.0});
  EXPECT_THROW((void)inst.horizon_bound(0), std::invalid_argument);
  EXPECT_THROW((void)inst.horizon_bound(1, 0.0), std::invalid_argument);
}

TEST(Instance, NormalizedShiftsReleasesToZero) {
  const std::vector<std::pair<Time, Work>> pairs{{5.0, 1.0}, {7.0, 2.0}};
  const Instance norm = Instance::from_pairs(pairs).normalized();
  EXPECT_DOUBLE_EQ(norm.min_release(), 0.0);
  EXPECT_DOUBLE_EQ(norm.job(1).release, 2.0);
}

TEST(Instance, MergedWithShiftsIds) {
  const Instance a = Instance::batch(std::vector<Work>{1.0, 2.0});
  const Instance b = Instance::batch(std::vector<Work>{3.0}, 1.0);
  const Instance m = a.merged_with(b);
  ASSERT_EQ(m.n(), 3u);
  EXPECT_DOUBLE_EQ(m.job(2).size, 3.0);
  EXPECT_DOUBLE_EQ(m.job(2).release, 1.0);
  EXPECT_DOUBLE_EQ(m.total_work(), 6.0);
}

TEST(Instance, MergedWithEmptyIsIdentity) {
  const Instance a = Instance::batch(std::vector<Work>{1.0, 2.0});
  const Instance m = a.merged_with(Instance{});
  EXPECT_EQ(m.n(), 2u);
}

TEST(Instance, SummaryMentionsKeyNumbers) {
  const Instance a = Instance::batch(std::vector<Work>{1.0, 2.0});
  const std::string s = a.summary();
  EXPECT_NE(s.find("n=2"), std::string::npos);
}

TEST(Job, ArrivesBeforeOrdersByReleaseThenId) {
  const Job a{0, 1.0, 1.0}, b{1, 2.0, 1.0}, c{2, 1.0, 1.0};
  EXPECT_TRUE(arrives_before(a, b));
  EXPECT_FALSE(arrives_before(b, a));
  EXPECT_TRUE(arrives_before(a, c));   // same release, lower id
  EXPECT_FALSE(arrives_before(c, a));
}

}  // namespace
}  // namespace tempofair
