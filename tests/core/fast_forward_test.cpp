// Fast-path / generic-loop equivalence: the whole contract of the
// epoch-coalescing kernel (core/fast_forward.cpp) is that its output is
// BYTE-identical to the generic event loop -- completion times, derived
// l_k norms, and every recorded trace interval.  These tests run both
// paths on the same instances and compare bitwise, not within tolerance:
// any relaxation here would let the two paths drift and silently change
// experiment results depending on which path a run takes.
//
// Every comparison additionally runs under exhaustive invariant checking
// (core/invariants.h) and replays the recorded trace through the offline
// battery, so a kernel bug that keeps both paths in agreement but breaks a
// structural property (capacity, work conservation, monotone remaining)
// still fails here.
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/invariants.h"
#include "core/metrics.h"
#include "core/schedule.h"
#include "policies/registry.h"
#include "workload/adversarial.h"
#include "workload/generators.h"
#include "workload/rng.h"
#include "workload/stream.h"

namespace tempofair {
namespace {

constexpr std::uint64_t kSeed = 20260806;

[[nodiscard]] std::uint64_t bits(double x) {
  return std::bit_cast<std::uint64_t>(x);
}

// Bitwise comparison of two schedules: completions, l_k norms, and the
// full trace (interval bounds, alive sets, per-job rates).  The arena's
// uniform-rate compression flag is representation, not content, so rates
// are compared through the logical rate(i) accessor.
void expect_identical(const Schedule& fast, const Schedule& slow) {
  ASSERT_EQ(fast.n(), slow.n());
  for (JobId id = 0; id < static_cast<JobId>(fast.n()); ++id) {
    ASSERT_EQ(bits(fast.completion(id)), bits(slow.completion(id)))
        << "job " << id << ": fast C=" << fast.completion(id)
        << " slow C=" << slow.completion(id);
    ASSERT_EQ(bits(fast.release(id)), bits(slow.release(id))) << "job " << id;
    ASSERT_EQ(bits(fast.size(id)), bits(slow.size(id))) << "job " << id;
  }
  for (const double k : {1.0, 2.0, 3.0}) {
    EXPECT_EQ(bits(flow_lk_norm(fast, k)), bits(flow_lk_norm(slow, k)))
        << "l_" << k << " norm differs";
  }
  ASSERT_EQ(fast.has_trace(), slow.has_trace());
  if (!fast.has_trace()) return;
  const TraceArena& ft = fast.trace();
  const TraceArena& st = slow.trace();
  ASSERT_EQ(ft.size(), st.size()) << "interval counts differ";
  for (std::size_t i = 0; i < ft.size(); ++i) {
    const TraceIntervalView a = ft[i];
    const TraceIntervalView b = st[i];
    ASSERT_EQ(bits(a.begin()), bits(b.begin())) << "interval " << i;
    ASSERT_EQ(bits(a.end()), bits(b.end())) << "interval " << i;
    ASSERT_EQ(a.alive_count(), b.alive_count()) << "interval " << i;
    for (std::size_t j = 0; j < a.alive_count(); ++j) {
      ASSERT_EQ(a.job(j), b.job(j)) << "interval " << i << " slot " << j;
      ASSERT_EQ(bits(a.rate(j)), bits(b.rate(j)))
          << "interval " << i << " job " << a.job(j);
    }
  }
}

/// Replays a recorded schedule through the offline exhaustive battery under
/// the profile `spec` resolves to; an engine-produced schedule must be clean.
void expect_invariants_clean(const Schedule& schedule, const std::string& spec,
                             int machines, double speed) {
  const std::unique_ptr<Policy> policy = make_policy(spec);
  InvariantRunProfile profile;
  profile.machines = machines;
  profile.speed = speed;
  profile.policy = std::string(policy->name());
  profile.traits = policy->invariant_traits();
  const InvariantStats offline = check_schedule(schedule, profile);
  EXPECT_TRUE(offline.ok()) << "offline battery: " << summarize(offline);
}

void run_both_and_compare(const Instance& instance, const std::string& policy,
                          int machines, bool record_trace, double speed = 1.0) {
  SCOPED_TRACE("policy=" + policy + " m=" + std::to_string(machines) +
               " trace=" + std::to_string(record_trace));
  RunRequest fast_req;
  fast_req.policy = policy;
  fast_req.machines = machines;
  fast_req.speed = speed;
  fast_req.record_trace = record_trace;
  fast_req.use_fast_path = true;
  fast_req.invariants = InvariantMode::kExhaustive;  // a violation throws
  RunRequest slow_req = fast_req;
  slow_req.use_fast_path = false;

  const RunResult fast = run(instance, fast_req);
  const RunResult slow = run(instance, slow_req);
  EXPECT_TRUE(fast.invariants.ok()) << summarize(fast.invariants);
  EXPECT_TRUE(slow.invariants.ok()) << summarize(slow.invariants);
  expect_identical(fast.schedule, slow.schedule);
  if (record_trace) {
    expect_invariants_clean(fast.schedule, policy, machines, speed);
  }
}

const std::vector<std::string> kFastPolicies = {
    "rr",      "fcfs",   "sjf",           "srpt", "wprr",
    "qrr:0.7", "qrr:0.5,0.03", "setf",    "laps:0.5", "mlfq"};

TEST(FastForwardEquivalence, PoissonInstances) {
  for (const int machines : {1, 4}) {
    workload::Rng rng(kSeed + static_cast<std::uint64_t>(machines));
    const Instance instance = workload::poisson_load(
        500, machines, 0.9, workload::ExponentialSize{1.5}, rng);
    for (const std::string& policy : kFastPolicies) {
      run_both_and_compare(instance, policy, machines, /*record_trace=*/true);
    }
  }
}

TEST(FastForwardEquivalence, PoissonTraceOff) {
  // Trace-off exercises a different kUniformShare code path (the id-sorted
  // alive list is not maintained at all), so it gets its own sweep.
  for (const int machines : {1, 4}) {
    workload::Rng rng(kSeed + 17 + static_cast<std::uint64_t>(machines));
    const Instance instance = workload::poisson_load(
        500, machines, 0.95, workload::ExponentialSize{2.0}, rng);
    for (const std::string& policy : kFastPolicies) {
      run_both_and_compare(instance, policy, machines, /*record_trace=*/false);
    }
  }
}

TEST(FastForwardEquivalence, AdversarialInstances) {
  const std::vector<Instance> families = {
      workload::rr_l2_hard(120),
      workload::srpt_starvation(150),
      workload::staircase(64),
      workload::overload_pulse(4, 30, 2),
  };
  for (std::size_t f = 0; f < families.size(); ++f) {
    SCOPED_TRACE("family " + std::to_string(f));
    for (const int machines : {1, 4}) {
      for (const std::string& policy : kFastPolicies) {
        run_both_and_compare(families[f], policy, machines,
                             /*record_trace=*/true);
      }
    }
  }
}

TEST(FastForwardEquivalence, RandomWeightsExerciseWeightedShare) {
  workload::Rng rng(kSeed + 99);
  workload::Rng wrng(kSeed + 100);
  const Instance base = workload::poisson_load(
      300, 2, 0.9, workload::ExponentialSize{1.0}, rng);
  const Instance weighted =
      workload::with_weights(base, workload::WeightScheme::kRandom, wrng);
  run_both_and_compare(weighted, "wprr", 2, /*record_trace=*/true);
  run_both_and_compare(weighted, "wprr", 2, /*record_trace=*/false);
}

TEST(FastForwardEquivalence, SpeedAugmentationAndBursts) {
  workload::Rng rng(kSeed + 7);
  const Instance instance = workload::bursty_stream(
      8, 25, 15.0, workload::ExponentialSize{1.2}, rng);
  for (const double speed : {1.0, 2.5}) {
    for (const std::string& policy : kFastPolicies) {
      SCOPED_TRACE("speed=" + std::to_string(speed));
      run_both_and_compare(instance, policy, 2, /*record_trace=*/true, speed);
    }
  }
}

TEST(FastForwardEquivalence, StreamingMatchesMaterialized) {
  // The streaming arrival path must admit bitwise-identical jobs and
  // produce the same schedule as the materialized fast path, which in turn
  // equals the generic loop (transitively checked above).
  for (const int machines : {1, 4}) {
    SCOPED_TRACE("m=" + std::to_string(machines));
    const workload::SizeDist dist{workload::ExponentialSize{1.5}};
    workload::Rng inst_rng(kSeed + 31);
    const Instance instance =
        workload::poisson_load(2000, machines, 0.9, dist, inst_rng);

    workload::Rng stream_rng(kSeed + 31);
    workload::PoissonJobStream stream =
        workload::poisson_load_stream(2000, machines, 0.9, dist, stream_rng);

    RunRequest request;
    request.policy = "rr";
    request.machines = machines;
    request.record_trace = true;
    request.invariants = InvariantMode::kExhaustive;
    const RunResult from_instance = run(instance, request);
    const RunResult from_stream = run(stream, request);
    EXPECT_TRUE(from_stream.invariants.ok())
        << summarize(from_stream.invariants);
    expect_identical(from_stream.schedule, from_instance.schedule);
  }
}

TEST(FastForwardEquivalence, MillionJobStreamMatchesEventLoop) {
  // The headline acceptance case: a million-job single-machine RR run
  // through the streaming fast path must be byte-identical to the generic
  // event loop on the materialized instance.  Trace off keeps the run at
  // ~1 s and the comparison to the part that matters here (completions;
  // trace equality at scale is covered above at smaller n).
  const std::size_t n = 1'000'000;
  const workload::SizeDist dist{workload::ExponentialSize{1.5}};
  workload::Rng inst_rng(kSeed + 63);
  const Instance instance = workload::poisson_load(n, 1, 0.9, dist, inst_rng);

  workload::Rng stream_rng(kSeed + 63);
  workload::PoissonJobStream stream =
      workload::poisson_load_stream(n, 1, 0.9, dist, stream_rng);

  RunRequest fast_req;
  fast_req.policy = "rr";
  fast_req.record_trace = false;
  fast_req.invariants = InvariantMode::kExhaustive;
  RunRequest slow_req = fast_req;
  slow_req.use_fast_path = false;

  const RunResult fast = run(stream, fast_req);
  const RunResult slow = run(instance, slow_req);
  EXPECT_TRUE(fast.invariants.ok()) << summarize(fast.invariants);
  ASSERT_EQ(fast.schedule.n(), n);
  expect_identical(fast.schedule, slow.schedule);
}

TEST(FastForwardEquivalence, DegenerateSizesStillMatch) {
  // Jobs already under the completion threshold at admission force the
  // kernel's degenerate (full-scan) branch; the generic loop handles them
  // through its zero-rate candidate logic.  Both must agree.
  const std::vector<std::pair<Time, Work>> pairs = {
      {0.0, 1e-13},  // below kAbsEps: complete on admission
      {0.0, 1.0},
      {0.5, 1e-13},
      {0.5, 2.0},
      {1.0, 0.5},
  };
  const Instance instance = Instance::from_pairs(pairs);
  for (const std::string& policy : kFastPolicies) {
    run_both_and_compare(instance, policy, 1, /*record_trace=*/true);
    run_both_and_compare(instance, policy, 1, /*record_trace=*/false);
  }
}

}  // namespace
}  // namespace tempofair
