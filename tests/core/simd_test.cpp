// Bitwise equivalence of the vector kernels in core/simd.h against their
// scalar reference implementations.
//
// This TU is compiled with the same fast-path flags as core/fast_forward.cpp
// (see tests/CMakeLists.txt), so on an AVX2-capable toolchain the public
// kernels here take the vector path while namespace scalar stays the plain
// loop -- the comparison is vector-vs-scalar for real, not scalar-vs-scalar.
// When the build has no vector ISA (or TEMPOFAIR_FORCE_SCALAR is set) the
// tests still pass trivially; the CI determinism job runs the suite both
// ways to cover each path of one binary.
#include "core/simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "workload/rng.h"

namespace tempofair {
namespace {

constexpr std::uint64_t kSeed = 20260806;

// Sizes straddle the 4-lane vector width: empty, sub-vector, exact
// multiples, and tails of every residue.
const std::vector<std::size_t> kSizes = {0,  1,  2,  3,  4,  5,   7,  8,
                                         9,  12, 13, 15, 16, 17,  31, 64,
                                         65, 66, 67, 100, 127, 256, 1000};

std::vector<double> random_column(workload::Rng& rng, std::size_t n,
                                  double lo, double hi) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

void expect_bitwise_equal(const std::vector<double>& got,
                          const std::vector<double>& want,
                          const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << what << " diverges at index " << i << ": " << got[i] << " vs "
        << want[i];
  }
}

TEST(SimdKernels, SubScalarMatchesReference) {
  workload::Rng rng(kSeed);
  for (const std::size_t n : kSizes) {
    const std::vector<double> base = random_column(rng, n, -10.0, 10.0);
    const double delta = rng.uniform(-2.0, 2.0);
    std::vector<double> got = base;
    std::vector<double> want = base;
    simd::sub_scalar(got.data(), n, delta);
    simd::scalar::sub_scalar(want.data(), n, delta);
    expect_bitwise_equal(got, want, "sub_scalar");
  }
}

TEST(SimdKernels, AdvanceMatchesReference) {
  workload::Rng rng(kSeed + 1);
  for (const std::size_t n : kSizes) {
    const std::vector<double> att0 = random_column(rng, n, 0.0, 5.0);
    const std::vector<double> rem0 = random_column(rng, n, 0.0, 20.0);
    std::vector<double> rates = random_column(rng, n, 0.0, 3.0);
    // Zero rates are common (priority policies); their bits must be
    // untouched by the advance (the F3 identity the kernel relies on).
    for (std::size_t i = 0; i < n; i += 3) rates[i] = 0.0;
    const double dt = rng.uniform(0.0, 1.5);
    std::vector<double> att_got = att0;
    std::vector<double> rem_got = rem0;
    std::vector<double> att_want = att0;
    std::vector<double> rem_want = rem0;
    simd::advance(att_got.data(), rem_got.data(), rates.data(), n, dt);
    simd::scalar::advance(att_want.data(), rem_want.data(), rates.data(), n,
                          dt);
    expect_bitwise_equal(att_got, att_want, "advance/attained");
    expect_bitwise_equal(rem_got, rem_want, "advance/remaining");
    for (std::size_t i = 0; i < n; i += 3) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(att_got[i]),
                std::bit_cast<std::uint64_t>(att0[i]))
          << "zero-rate job " << i << " moved";
    }
  }
}

TEST(SimdKernels, SubProductMatchesReference) {
  workload::Rng rng(kSeed + 2);
  for (const std::size_t n : kSizes) {
    const std::vector<double> rem0 = random_column(rng, n, 0.0, 20.0);
    const std::vector<double> rates = random_column(rng, n, 0.0, 3.0);
    const double dt = rng.uniform(0.0, 1.5);
    std::vector<double> got = rem0;
    std::vector<double> want = rem0;
    simd::sub_product(got.data(), rates.data(), n, dt);
    simd::scalar::sub_product(want.data(), rates.data(), n, dt);
    expect_bitwise_equal(got, want, "sub_product");
  }
}

TEST(SimdKernels, MinRatioMatchesReference) {
  workload::Rng rng(kSeed + 3);
  for (const std::size_t n : kSizes) {
    std::vector<double> rem = random_column(rng, n, 1e-12, 20.0);
    std::vector<double> rates = random_column(rng, n, 1e-9, 3.0);
    // Zero rates divide to +inf (remaining stays positive) and must drop
    // out of the min without a mask.
    for (std::size_t i = 1; i < n; i += 4) rates[i] = 0.0;
    const double got = simd::min_ratio(rem.data(), rates.data(), n);
    const double want = simd::scalar::min_ratio(rem.data(), rates.data(), n);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(want))
        << "min_ratio diverges for n=" << n << ": " << got << " vs " << want;
  }
}

TEST(SimdKernels, MinRatioAllZeroRatesIsInfinite) {
  const std::vector<double> rem = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> rates(5, 0.0);
  EXPECT_EQ(simd::min_ratio(rem.data(), rates.data(), rem.size()),
            __builtin_inf());
  EXPECT_EQ(simd::min_ratio(rem.data(), rates.data(), 0),
            __builtin_inf());
}

TEST(SimdKernels, ConfigIsConsistent) {
  // vector_active() is what the perf harness reports; it must agree with
  // the compile-time width and the env knob.
  EXPECT_EQ(simd::vector_active(),
            simd::kVectorWidth > 1 && !simd::force_scalar());
#if defined(TEMPOFAIR_SIMD_AVX2)
  EXPECT_EQ(simd::kVectorWidth, 4u);
#else
  EXPECT_EQ(simd::kVectorWidth, 1u);
#endif
}

}  // namespace
}  // namespace tempofair
