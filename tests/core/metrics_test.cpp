#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace tempofair {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LkNorm, L1IsSum) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(lk_norm(v, 1.0), 6.0);
}

TEST(LkNorm, L2MatchesEuclidean) {
  const std::vector<double> v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(lk_norm(v, 2.0), 5.0);
}

TEST(LkNorm, L3HandComputed) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_NEAR(lk_norm(v, 3.0), std::cbrt(9.0), 1e-12);
}

TEST(LkNorm, InfinityIsMax) {
  const std::vector<double> v{1.0, 7.0, 3.0};
  EXPECT_DOUBLE_EQ(lk_norm(v, kInf), 7.0);
}

TEST(LkNorm, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(lk_norm(std::vector<double>{}, 2.0), 0.0);
}

TEST(LkNorm, AllZeroIsZero) {
  const std::vector<double> v{0.0, 0.0};
  EXPECT_DOUBLE_EQ(lk_norm(v, 2.0), 0.0);
}

TEST(LkNorm, LargeKDoesNotOverflow) {
  const std::vector<double> v(100, 1e30);
  const double norm = lk_norm(v, 50.0);
  EXPECT_TRUE(std::isfinite(norm));
  EXPECT_NEAR(norm, 1e30 * std::pow(100.0, 1.0 / 50.0), 1e18);
}

TEST(LkNorm, MonotoneDecreasingInK) {
  // For fixed values, the l_k norm is non-increasing in k.
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  double prev = lk_norm(v, 1.0);
  for (double k : {1.5, 2.0, 3.0, 5.0, 10.0}) {
    const double cur = lk_norm(v, k);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
  EXPECT_GE(prev, linf_norm(v) - 1e-12);
}

TEST(LkNorm, RejectsKLessThanOne) {
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)lk_norm(v, 0.5), std::invalid_argument);
}

TEST(LkNorm, RejectsNegativeValues) {
  const std::vector<double> v{-1.0};
  EXPECT_THROW((void)lk_norm(v, 2.0), std::invalid_argument);
}

TEST(LkPowerSum, MatchesDirectComputation) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(lk_power_sum(v, 2.0), 14.0);
  EXPECT_DOUBLE_EQ(lk_power_sum(v, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(lk_power_sum(v, 3.0), 36.0);
}

TEST(LkPowerSum, NormConsistency) {
  const std::vector<double> v{0.5, 1.5, 2.5, 4.0};
  for (double k : {1.0, 2.0, 3.0}) {
    EXPECT_NEAR(std::pow(lk_norm(v, k), k), lk_power_sum(v, k), 1e-9);
  }
}

TEST(LkPowerSum, MillionScaleFlowsAtK8) {
  // Regression: k = 8 over ~1e6-scale flows used to be accumulated as raw
  // pow(v, k) terms; the rescaled form must still match the analytic value
  // sum v^8 = 1e48 * (1 + 2^8 + 3^8).
  const std::vector<double> v{1e6, 2e6, 3e6};
  const double expect = 1e48 * (1.0 + 256.0 + 6561.0);
  EXPECT_NEAR(lk_power_sum(v, 8.0), expect, expect * 1e-12);
  EXPECT_NEAR(std::pow(lk_norm(v, 8.0), 8.0), expect, expect * 1e-9);
}

TEST(LkPowerSum, SaturatesOnlyWhenTrueSumOverflows) {
  // (1e38)^8 = 1e304: representable, must stay finite.
  EXPECT_TRUE(std::isfinite(lk_power_sum(std::vector<double>{1e38}, 8.0)));
  // (1e40)^8 = 1e320: the true sum exceeds the double range, inf is correct.
  EXPECT_TRUE(std::isinf(lk_power_sum(std::vector<double>{1e40}, 8.0)));
}

TEST(WeightedLkNorm, HugeValuesDoNotOverflowToInf) {
  // Regression: the norm used to take pow(sum w v^k, 1/k) on the *unscaled*
  // power sum, so (3e160)^2 = inf poisoned a perfectly representable norm.
  const std::vector<double> v{3e160, 4e160};
  const std::vector<double> w{1.0, 1.0};
  const double norm = weighted_lk_norm(v, w, 2.0);
  EXPECT_TRUE(std::isfinite(norm));
  EXPECT_NEAR(norm, 5e160, 5e160 * 1e-12);
  // Same shape at k = 8 over ~1e6-scale values, against the analytic value.
  const std::vector<double> v8{1e6, 2e6};
  const std::vector<double> w8{2.0, 1.0};
  // (2 * (1e6)^8 + 1 * (2e6)^8)^(1/8) = 1e6 * (2 + 256)^(1/8)
  const double expect = 1e6 * std::pow(2.0 + 256.0, 1.0 / 8.0);
  EXPECT_NEAR(weighted_lk_norm(v8, w8, 8.0), expect, expect * 1e-12);
}

TEST(WeightedLkPower, MillionScaleMatchesUnweighted) {
  const std::vector<double> v{1e6, 2e6, 3e6};
  const std::vector<double> ones{1.0, 1.0, 1.0};
  EXPECT_NEAR(weighted_lk_power(v, ones, 8.0), lk_power_sum(v, 8.0),
              lk_power_sum(v, 8.0) * 1e-12);
}

TEST(LiveMetricsPercentile, EmptyIsZero) {
  const LiveMetrics live;
  EXPECT_DOUBLE_EQ(live.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(live.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(live.percentile(100.0), 0.0);
}

TEST(LiveMetricsPercentile, EndpointsMatchFreeFunction) {
  LiveMetrics live;
  for (double f : {5.0, 1.0, 3.0}) live.record(f);
  EXPECT_DOUBLE_EQ(live.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(live.percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(live.percentile(100.0), 5.0);
}

TEST(LiveMetricsPercentile, CacheInvalidatedByRecordAndReset) {
  LiveMetrics live;
  live.record(2.0);
  // Prime the sorted cache, then complete another job: the next query must
  // see the new value, not the stale cache.
  EXPECT_DOUBLE_EQ(live.percentile(100.0), 2.0);
  live.record(9.0);
  EXPECT_DOUBLE_EQ(live.percentile(100.0), 9.0);
  EXPECT_DOUBLE_EQ(live.percentile(0.0), 2.0);
  live.reset();
  EXPECT_DOUBLE_EQ(live.percentile(100.0), 0.0);
}

TEST(LiveMetricsPercentile, RejectsOutOfRange) {
  LiveMetrics live;
  live.record(1.0);
  EXPECT_THROW((void)live.percentile(-0.5), std::invalid_argument);
  EXPECT_THROW((void)live.percentile(100.5), std::invalid_argument);
}

TEST(Percentile, Endpoints) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Percentile, RejectsOutOfRange) {
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 101.0), std::invalid_argument);
}

TEST(FlowStats, SummarizesCorrectly) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const FlowStats s = flow_stats(v);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.l1, 10.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.linf, 4.0);
  EXPECT_NEAR(s.variance, 1.25, 1e-12);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
}

TEST(FlowStats, EmptyIsAllZero) {
  const FlowStats s = flow_stats(std::vector<double>{});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.l1, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(FlowStats, SingleValue) {
  const FlowStats s = flow_stats(std::vector<double>{7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.l2, 7.0);
  EXPECT_DOUBLE_EQ(s.p99, 7.0);
}

TEST(LinfNorm, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(linf_norm(std::vector<double>{}), 0.0);
}

TEST(WeightedLkPower, MatchesDirectComputation) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  const std::vector<double> w{2.0, 1.0, 0.5};
  EXPECT_DOUBLE_EQ(weighted_lk_power(v, w, 1.0), 2.0 + 2.0 + 1.5);
  EXPECT_DOUBLE_EQ(weighted_lk_power(v, w, 2.0), 2.0 + 4.0 + 4.5);
}

TEST(WeightedLkPower, UnitWeightsMatchUnweighted) {
  const std::vector<double> v{0.5, 1.5, 2.5};
  const std::vector<double> w{1.0, 1.0, 1.0};
  for (double k : {1.0, 2.0, 3.0}) {
    EXPECT_NEAR(weighted_lk_power(v, w, k), lk_power_sum(v, k), 1e-12);
    EXPECT_NEAR(weighted_lk_norm(v, w, k), lk_norm(v, k), 1e-12);
  }
}

TEST(WeightedLkNorm, InfinityFiltersZeroWeights) {
  const std::vector<double> v{10.0, 3.0};
  const std::vector<double> w{0.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_lk_norm(v, w, kInf), 3.0);
}

TEST(WeightedLkPower, RejectsBadInput) {
  const std::vector<double> v{1.0};
  const std::vector<double> w{1.0, 2.0};
  EXPECT_THROW((void)weighted_lk_power(v, w, 2.0), std::invalid_argument);
  const std::vector<double> neg{-1.0};
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)weighted_lk_power(neg, one, 2.0), std::invalid_argument);
  EXPECT_THROW((void)weighted_lk_power(one, neg, 2.0), std::invalid_argument);
  EXPECT_THROW((void)weighted_lk_power(one, one, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace tempofair
