#include "core/fairness.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/engine.h"
#include "policies/priority_policies.h"
#include "policies/round_robin.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

TEST(JainIndex, EqualRatesAreperfectlyFair) {
  const std::vector<double> r{0.25, 0.25, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(jain_index(r), 1.0);
}

TEST(JainIndex, SingleHogIsOneOverN) {
  const std::vector<double> r{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(r), 0.25);
}

TEST(JainIndex, EmptyAndAllZeroAreFairByConvention) {
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(JainIndex, ScaleInvariant) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(jain_index(a), jain_index(b));
}

TEST(FairnessReport, RequiresTrace) {
  RoundRobin rr;
  EngineOptions eo;
  eo.record_trace = false;
  const Schedule s = EngineCore().run(Instance::batch(std::vector<Work>{1.0}), rr, eo);
  EXPECT_THROW((void)fairness_report(s), std::invalid_argument);
}

TEST(FairnessReport, RoundRobinIsPerfectlyFair) {
  workload::Rng rng(7);
  const Instance inst =
      workload::poisson_load(50, 1, 0.9, workload::ExponentialSize{2.0}, rng);
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  const FairnessReport rep = fairness_report(s);
  EXPECT_NEAR(rep.jain_time_avg, 1.0, 1e-9);
  EXPECT_NEAR(rep.jain_min, 1.0, 1e-9);
  EXPECT_NEAR(rep.min_share_time_avg, 1.0, 1e-9);
  EXPECT_NEAR(rep.max_service_lag, 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(rep.starved_time_fraction, 0.0);
}

TEST(FairnessReport, SrptStarvesUnderContention) {
  workload::Rng rng(7);
  const Instance inst =
      workload::poisson_load(50, 1, 0.95, workload::ExponentialSize{2.0}, rng);
  Srpt srpt;
  const Schedule s = EngineCore().run(inst, srpt);
  const FairnessReport rep = fairness_report(s);
  EXPECT_LT(rep.jain_time_avg, 1.0);
  EXPECT_GT(rep.max_service_lag, 0.0);
  EXPECT_GT(rep.starved_time_fraction, 0.0);
}

TEST(FairnessReport, SingleJobIsTriviallyFair) {
  RoundRobin rr;
  const Schedule s = EngineCore().run(Instance::batch(std::vector<Work>{3.0}), rr);
  const FairnessReport rep = fairness_report(s);
  EXPECT_DOUBLE_EQ(rep.jain_time_avg, 1.0);
  EXPECT_DOUBLE_EQ(rep.busy_time, 3.0);
}

TEST(FairnessReport, BusyTimeExcludesIdleGaps) {
  const Instance inst =
      Instance::from_pairs(std::vector<std::pair<Time, Work>>{{0.0, 1.0}, {10.0, 1.0}});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  const FairnessReport rep = fairness_report(s);
  EXPECT_DOUBLE_EQ(rep.busy_time, 2.0);
}

TEST(AliveCountCurve, TracksPopulation) {
  const Instance inst = Instance::from_pairs(
      std::vector<std::pair<Time, Work>>{{0.0, 2.0}, {1.0, 2.0}});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  const auto curve = alive_count_curve(s);
  ASSERT_GE(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
  EXPECT_EQ(curve.front().second, 1u);
  EXPECT_EQ(curve[1].second, 2u);       // after the second arrival
  EXPECT_EQ(curve.back().second, 0u);   // ends idle
}

TEST(AliveCountCurve, MarksIdleGaps) {
  const Instance inst =
      Instance::from_pairs(std::vector<std::pair<Time, Work>>{{0.0, 1.0}, {5.0, 1.0}});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  const auto curve = alive_count_curve(s);
  // 1 alive, 0 (gap), 1 alive, 0 (end).
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_EQ(curve[0].second, 1u);
  EXPECT_EQ(curve[1].second, 0u);
  EXPECT_EQ(curve[2].second, 1u);
  EXPECT_EQ(curve[3].second, 0u);
}

TEST(FairnessReport, RequiresTraceForCurve) {
  RoundRobin rr;
  EngineOptions eo;
  eo.record_trace = false;
  const Schedule s = EngineCore().run(Instance::batch(std::vector<Work>{1.0}), rr, eo);
  EXPECT_THROW((void)alive_count_curve(s), std::invalid_argument);
}

}  // namespace
}  // namespace tempofair
