#include "core/fractional.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/metrics.h"
#include "lpsolve/flowtime_lp.h"
#include "policies/priority_policies.h"
#include "policies/round_robin.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

TEST(FractionalFlow, RequiresTraceAndValidK) {
  RoundRobin rr;
  EngineOptions eo;
  eo.record_trace = false;
  const Schedule s = EngineCore().run(Instance::batch(std::vector<Work>{1.0}), rr, eo);
  EXPECT_THROW((void)fractional_flow_power(s), std::invalid_argument);
  const Schedule t = EngineCore().run(Instance::batch(std::vector<Work>{1.0}), rr);
  EXPECT_THROW((void)fractional_flow_power(t, 0.5), std::invalid_argument);
}

TEST(FractionalFlow, SingleJobClosedForm) {
  // One job size p at full speed: remaining(t) = p - t, fractional flow
  // = int_0^p (p - t)/p dt = p/2.
  const Instance inst = Instance::batch(std::vector<Work>{4.0});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  const auto f = fractional_flow_power(s, 1.0);
  EXPECT_NEAR(f.per_job[0], 2.0, 1e-9);
  EXPECT_NEAR(f.total, 2.0, 1e-9);
}

TEST(FractionalFlow, SingleJobQuadraticCase) {
  // k = 2: int_0^p 2t (p-t)/p dt = p^2 - 2p^2/3 = p^2/3.
  const Instance inst = Instance::batch(std::vector<Work>{3.0});
  RoundRobin rr;
  const Schedule s = EngineCore().run(inst, rr);
  const auto f = fractional_flow_power(s, 2.0);
  EXPECT_NEAR(f.per_job[0], 3.0, 1e-9);  // 9/3
}

TEST(FractionalFlow, AtMostIntegralFlowPower) {
  workload::Rng rng(3);
  const Instance inst =
      workload::poisson_load(50, 1, 0.9, workload::ExponentialSize{1.5}, rng);
  RoundRobin rr;
  Srpt srpt;
  for (double k : {1.0, 2.0, 3.0}) {
    const Schedule a = EngineCore().run(inst, rr);
    const auto f = fractional_flow_power(a, k);
    EXPECT_LE(f.total, flow_lk_power(a, k) * (1.0 + 1e-9)) << "rr k=" << k;
    const Schedule b = EngineCore().run(inst, srpt);
    const auto g = fractional_flow_power(b, k);
    EXPECT_LE(g.total, flow_lk_power(b, k) * (1.0 + 1e-9)) << "srpt k=" << k;
    for (double v : f.per_job) EXPECT_GE(v, -1e-9);
  }
}

TEST(FractionalFlow, SpeedReducesFractionalCost) {
  workload::Rng rng(5);
  const Instance inst =
      workload::poisson_load(40, 1, 0.9, workload::ExponentialSize{1.0}, rng);
  double prev = std::numeric_limits<double>::infinity();
  for (double speed : {1.0, 2.0, 4.0}) {
    RoundRobin rr;
    EngineOptions eo;
    eo.speed = speed;
    const auto f = fractional_flow_power(EngineCore().run(inst, rr, eo), 2.0);
    EXPECT_LT(f.total, prev);
    prev = f.total;
  }
}

TEST(FractionalFlow, LpLowerBoundsFractionalCostDirectly) {
  // The Section 3.1 LP (without the /2) lower-bounds the *fractional*
  // k-power cost of any feasible schedule, since the LP charges each unit of
  // work its processing age plus p^k normalization.  Concretely:
  //   LP* <= fractional_cost + sum_j p_j^k  (the LP's +p_j^k term).
  workload::Rng rng(7);
  const Instance inst =
      workload::poisson_load(25, 1, 0.85, workload::UniformSize{0.5, 2.0}, rng);
  lpsolve::FlowtimeLpOptions opt;
  opt.k = 2.0;
  opt.slot = 0.25;
  const double lp = lpsolve::solve_flowtime_lp(inst, opt).lp_value;

  Srpt srpt;
  const Schedule s = EngineCore().run(inst, srpt);
  const auto frac = fractional_flow_power(s, 2.0);
  double size_power = 0.0;
  for (const Job& j : inst.jobs()) size_power += j.size * j.size;
  EXPECT_LE(lp, frac.total * 2.0 + size_power * 2.0 + 1e-6);
}

}  // namespace
}  // namespace tempofair
