// The RunRequest/RunResult facade: equivalence with the deprecated
// EngineCore().run() shims, JobStream edge cases driven through run() (empty
// stream, simultaneous arrivals, out-of-order rejection, cancellation
// mid-stream), and the live-metrics hooks the daemon relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/registry.h"
#include "policies/round_robin.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace tempofair {
namespace {

Instance small_instance() {
  workload::Rng rng(99);
  return workload::poisson_load(30, 1, 0.9, workload::ExponentialSize{1.2},
                                rng);
}

TEST(RunFacade, MatchesSimulateShimBitwise) {
  const Instance inst = small_instance();
  RunRequest req;
  req.policy = "rr";
  req.speed = 2.0;
  const RunResult result = run(inst, req);

  RoundRobin rr;
  const Schedule legacy = EngineCore().run(inst, rr, req.engine_options());
  ASSERT_EQ(result.schedule.n(), legacy.n());
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_EQ(result.schedule.completion(j), legacy.completion(j)) << j;
  }
}

TEST(RunFacade, ResolvesPolicyNameAndStats) {
  const Instance inst = small_instance();
  RunRequest req;
  req.policy = "srpt";
  const RunResult result = run(inst, req);
  EXPECT_EQ(result.policy, "srpt");
  EXPECT_GE(result.wall_seconds, 0.0);
  const FlowStats direct = flow_stats(result.schedule);
  EXPECT_EQ(result.stats.n, direct.n);
  EXPECT_EQ(result.stats.l1, direct.l1);
  EXPECT_EQ(result.stats.l2, direct.l2);
  EXPECT_EQ(result.stats.linf, direct.linf);
}

TEST(RunFacade, RejectsUnknownPolicySpec) {
  RunRequest req;
  req.policy = "no-such-policy";
  EXPECT_THROW((void)run(small_instance(), req), std::invalid_argument);
}

TEST(RunFacade, EngineOptionsCarryLiveHooks) {
  LiveMetrics live;
  std::atomic<bool> cancel{false};
  RunRequest req;
  req.live = &live;
  req.cancel = &cancel;
  const EngineOptions eo = req.engine_options();
  EXPECT_EQ(eo.live_metrics, &live);
  EXPECT_EQ(eo.cancel, &cancel);
  EXPECT_EQ(eo.machines, req.machines);
  EXPECT_EQ(eo.use_fast_path, req.use_fast_path);
}

// --- JobStream edge cases through the facade --------------------------------

TEST(RunFacade, EmptyStreamProducesEmptySchedule) {
  const Instance empty;
  workload::InstanceJobStream stream(empty);
  RunRequest req;
  req.policy = "rr";
  const RunResult result = run(stream, req);
  EXPECT_EQ(result.schedule.n(), 0u);
  EXPECT_EQ(result.stats.n, 0u);
  EXPECT_EQ(result.stats.l1, 0.0);
}

TEST(RunFacade, SimultaneousArrivalsMatchInstanceRun) {
  // Three batches of simultaneous releases, including t=0.
  std::vector<std::pair<Time, Work>> pairs;
  for (int i = 0; i < 4; ++i) pairs.emplace_back(0.0, 1.0 + 0.25 * i);
  for (int i = 0; i < 3; ++i) pairs.emplace_back(1.5, 2.0);
  for (int i = 0; i < 3; ++i) pairs.emplace_back(4.0, 0.5);
  const Instance inst = Instance::from_pairs(pairs);

  RunRequest req;
  req.policy = "rr";
  const RunResult offline = run(inst, req);

  workload::InstanceJobStream stream(inst);
  const RunResult streamed = run(stream, req);
  ASSERT_EQ(streamed.schedule.n(), offline.schedule.n());
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_EQ(streamed.schedule.completion(j), offline.schedule.completion(j))
        << j;
  }
}

/// A stream violating contract S2 in a configurable way.
class BrokenStream final : public JobStream {
 public:
  explicit BrokenStream(std::vector<Job> jobs) : jobs_(std::move(jobs)) {}
  [[nodiscard]] std::size_t n() const noexcept override { return jobs_.size(); }
  [[nodiscard]] Job next() override { return jobs_.at(pos_++); }

 private:
  std::vector<Job> jobs_;
  std::size_t pos_ = 0;
};

TEST(RunFacade, RejectsOutOfOrderArrivals) {
  BrokenStream stream({{0, 2.0, 1.0, 1.0}, {1, 1.0, 1.0, 1.0}});
  RunRequest req;
  req.policy = "rr";
  EXPECT_THROW((void)run(stream, req), std::invalid_argument);
}

TEST(RunFacade, RejectsNonSequentialIds) {
  BrokenStream stream({{0, 0.0, 1.0, 1.0}, {5, 1.0, 1.0, 1.0}});
  RunRequest req;
  req.policy = "rr";
  EXPECT_THROW((void)run(stream, req), std::invalid_argument);
}

TEST(RunFacade, StreamingRequiresFastPathCapablePolicy) {
  const Instance inst = small_instance();
  workload::InstanceJobStream stream(inst);
  RunRequest req;
  // hdf's age-dependent weights keep it off the fast path (kNone); mlfq
  // and friends grew descriptors, so they stream fine now.
  req.policy = "hdf";
  EXPECT_THROW((void)run(stream, req), std::invalid_argument);
}

/// Flips the shared cancel flag after yielding `trip_after` jobs, as if the
/// tenant disconnected mid-stream.
class CancellingStream final : public JobStream {
 public:
  CancellingStream(const Instance& instance, std::size_t trip_after,
                   std::atomic<bool>* cancel)
      : inner_(instance), trip_after_(trip_after), cancel_(cancel) {}
  [[nodiscard]] std::size_t n() const noexcept override { return inner_.n(); }
  [[nodiscard]] Job next() override {
    if (++yielded_ > trip_after_) cancel_->store(true);
    return inner_.next();
  }

 private:
  workload::InstanceJobStream inner_;
  std::size_t trip_after_;
  std::atomic<bool>* cancel_;
  std::size_t yielded_ = 0;
};

TEST(RunFacade, CancellationMidStream) {
  const Instance inst = small_instance();
  std::atomic<bool> cancel{false};
  LiveMetrics live;
  CancellingStream stream(inst, 5, &cancel);
  RunRequest req;
  req.policy = "rr";
  req.live = &live;
  req.cancel = &cancel;
  EXPECT_THROW((void)run(stream, req), RunCancelled);
  // The run died mid-flight: some (possibly zero) completions were recorded,
  // but never the full instance.
  EXPECT_LT(live.completed(), inst.n());
  EXPECT_EQ(live.expected(), inst.n());
}

TEST(RunFacade, CancellationBeforeFirstEvent) {
  std::atomic<bool> cancel{true};
  RunRequest req;
  req.policy = "rr";
  req.cancel = &cancel;
  req.use_fast_path = false;  // the generic loop polls the flag too
  EXPECT_THROW((void)run(small_instance(), req), RunCancelled);
}

// --- live metrics -----------------------------------------------------------

TEST(RunFacade, LiveMetricsMatchFinalStats) {
  const Instance inst = small_instance();
  LiveMetrics live;
  RunRequest req;
  req.policy = "rr";
  req.live = &live;
  const RunResult result = run(inst, req);

  EXPECT_EQ(live.completed(), inst.n());
  EXPECT_EQ(live.expected(), inst.n());
  // Live flows accumulate in completion order, the schedule's in job-id
  // order, so sums agree only up to floating-point reassociation.
  const FlowStats snap = live.snapshot();
  EXPECT_EQ(snap.n, result.stats.n);
  EXPECT_DOUBLE_EQ(snap.l1, result.stats.l1);
  EXPECT_EQ(snap.linf, result.stats.linf);
  EXPECT_DOUBLE_EQ(live.lk(2.0), result.stats.l2);
  EXPECT_EQ(live.percentile(100.0), result.stats.linf);
}

TEST(LiveMetrics, IncrementalSnapshots) {
  LiveMetrics live;
  live.set_expected(3);
  EXPECT_EQ(live.completed(), 0u);
  EXPECT_EQ(live.lk(2.0), 0.0);
  live.record(3.0);
  live.record(4.0);
  EXPECT_EQ(live.completed(), 2u);
  EXPECT_EQ(live.lk(2.0), 5.0);
  EXPECT_EQ(live.percentile(0.0), 3.0);
  EXPECT_EQ(live.snapshot().linf, 4.0);
  live.reset();
  EXPECT_EQ(live.completed(), 0u);
  EXPECT_EQ(live.expected(), 0u);
}

}  // namespace
}  // namespace tempofair
