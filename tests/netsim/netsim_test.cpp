#include <gtest/gtest.h>

#include "netsim/schedulers.h"
#include "workload/rng.h"

namespace tempofair::netsim {
namespace {

/// `flows` backlogged flows, each emitting `per_flow` packets at time 0 with
/// the given size; flow f uses size sizes[f % sizes.size()].
std::vector<Packet> backlog_workload(std::size_t flows, std::size_t per_flow,
                                     const std::vector<double>& sizes) {
  std::vector<Packet> packets;
  packets.reserve(flows * per_flow);
  for (FlowId f = 0; f < flows; ++f) {
    for (std::size_t i = 0; i < per_flow; ++i) {
      packets.push_back(Packet{f, sizes[f % sizes.size()], 0.0});
    }
  }
  return packets;
}

TEST(Fifo, ServesInArrivalOrder) {
  FifoScheduler fifo;
  std::vector<Packet> packets{{0, 2.0, 0.0}, {1, 1.0, 0.5}, {0, 1.0, 0.6}};
  const auto r = simulate_link(packets, fifo, 1.0);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].packet.flow, 0u);
  EXPECT_DOUBLE_EQ(r.records[0].departure, 2.0);
  EXPECT_EQ(r.records[1].packet.flow, 1u);
  EXPECT_EQ(r.records[2].packet.flow, 0u);
}

TEST(LinkSim, IdleGapsAreSkipped) {
  FifoScheduler fifo;
  std::vector<Packet> packets{{0, 1.0, 0.0}, {0, 1.0, 10.0}};
  const auto r = simulate_link(packets, fifo, 1.0);
  EXPECT_DOUBLE_EQ(r.records[1].start, 10.0);
  EXPECT_DOUBLE_EQ(r.busy_until, 11.0);
}

TEST(LinkSim, LinkRateScalesTransmission) {
  FifoScheduler fifo;
  std::vector<Packet> packets{{0, 4.0, 0.0}};
  const auto r = simulate_link(packets, fifo, 2.0);
  EXPECT_DOUBLE_EQ(r.records[0].departure, 2.0);
}

TEST(LinkSim, RejectsBadRate) {
  FifoScheduler fifo;
  EXPECT_THROW((void)simulate_link({}, fifo, 0.0), std::invalid_argument);
}

TEST(Drr, RejectsBadQuantum) {
  EXPECT_THROW(DrrScheduler(0.0), std::invalid_argument);
}

TEST(Drr, EqualPacketsAlternateFlows) {
  DrrScheduler drr(1.0);
  const auto packets = backlog_workload(2, 3, {1.0});
  const auto r = simulate_link(packets, drr, 1.0);
  // Flows alternate: 0,1,0,1,0,1.
  for (std::size_t i = 0; i < r.records.size(); ++i) {
    EXPECT_EQ(r.records[i].packet.flow, i % 2) << i;
  }
}

TEST(Drr, ByteFairnessWithMixedPacketSizes) {
  // Flow 0 sends big packets, flow 1 small ones.  DRR still gives each
  // ~equal BYTES (that is its whole point); FIFO lets the big-packet flow
  // dominate when it floods more bytes.
  std::vector<Packet> packets;
  for (int i = 0; i < 20; ++i) packets.push_back(Packet{0, 10.0, 0.0});
  for (int i = 0; i < 200; ++i) packets.push_back(Packet{1, 1.0, 0.0});
  DrrScheduler drr(10.0);
  const auto r = simulate_link(packets, drr, 1.0, 100.0);
  EXPECT_GT(r.jain_throughput, 0.99);
  EXPECT_GT(r.min_max_share, 0.9);
}

TEST(Drr, UnfairFifoBaselineComparison) {
  // Same workload as above through FIFO, arrivals interleaved so FIFO's
  // arrival order favours the flow with more queued bytes.
  std::vector<Packet> packets;
  for (int i = 0; i < 20; ++i) packets.push_back(Packet{0, 10.0, 0.0});
  for (int i = 0; i < 20; ++i) packets.push_back(Packet{1, 1.0, 0.0});
  FifoScheduler fifo;
  const auto r = simulate_link(packets, fifo, 1.0, 100.0);
  EXPECT_LT(r.min_max_share, 0.5);  // flow 0 hogs the first 200 time units
}

TEST(Drr, DeficitCarriesAcrossRounds) {
  // Quantum 3, packets of size 2: a flow sends 1 packet in round 1
  // (deficit 1 left), then 2 packets in round 2 (deficit 3+1=4 covers 2).
  DrrScheduler drr(3.0);
  const auto packets = backlog_workload(2, 4, {2.0});
  const auto r = simulate_link(packets, drr, 1.0);
  // Count flow-0 packets among the first 3 transmissions: round 1 sends 1
  // from each flow (deficit 3 covers one size-2 packet), so the sequence
  // starts 0,1 then round 2 sends 2 from each: 0,0,1,1.
  EXPECT_EQ(r.records[0].packet.flow, 0u);
  EXPECT_EQ(r.records[1].packet.flow, 1u);
  EXPECT_EQ(r.records[2].packet.flow, 0u);
  EXPECT_EQ(r.records[3].packet.flow, 0u);
}

TEST(Scfq, EqualWeightsGiveEqualService) {
  ScfqScheduler wfq;
  const auto packets = backlog_workload(4, 25, {1.0, 2.0});
  const auto r = simulate_link(packets, wfq, 1.0, 60.0);
  EXPECT_GT(r.jain_throughput, 0.95);
}

TEST(Scfq, WeightsSkewService) {
  std::map<FlowId, double> w{{0, 3.0}, {1, 1.0}};
  ScfqScheduler wfq(std::move(w));
  const auto packets = backlog_workload(2, 200, {1.0});
  const auto r = simulate_link(packets, wfq, 1.0, 100.0);
  const double f0 = r.per_flow.at(0).bytes;
  (void)f0;
  // During the backlogged window flow 0 should get ~3x flow 1's service.
  // Reconstruct window service from records.
  double s0 = 0.0, s1 = 0.0;
  for (const auto& rec : r.records) {
    if (rec.departure <= 100.0) {
      (rec.packet.flow == 0 ? s0 : s1) += rec.packet.size;
    }
  }
  EXPECT_NEAR(s0 / s1, 3.0, 0.2);
}

TEST(Scfq, RejectsNonPositiveWeight) {
  std::map<FlowId, double> w{{0, 0.0}};
  EXPECT_THROW(ScfqScheduler{std::move(w)}, std::invalid_argument);
}

TEST(Drr, OversizedPacketAccumulatesQuanta) {
  // A single flow with packets larger than the quantum must still be
  // served: the deficit accumulates one quantum per (self-)visit.
  DrrScheduler drr(1.0);
  std::vector<Packet> packets{{0, 5.0, 0.0}, {0, 5.0, 0.0}};
  const auto r = simulate_link(packets, drr, 1.0);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_DOUBLE_EQ(r.records[1].departure, 10.0);
}

TEST(Drr, FlowReturningAfterIdleStartsFresh) {
  // A flow that empties loses its deficit (per the DRR paper); when it
  // becomes backlogged again it must not inherit stale credit.
  DrrScheduler drr(2.0);
  std::vector<Packet> packets{{0, 1.0, 0.0}, {1, 1.0, 0.0}, {0, 1.0, 50.0}};
  const auto r = simulate_link(packets, drr, 1.0);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_DOUBLE_EQ(r.records[2].start, 50.0);
}

TEST(Scfq, PacketsWithinAFlowStayFifo) {
  ScfqScheduler wfq;
  std::vector<Packet> packets;
  for (int i = 0; i < 10; ++i) packets.push_back(Packet{0, 1.0, 0.0});
  const auto r = simulate_link(packets, wfq, 1.0);
  double prev = -1.0;
  for (const auto& rec : r.records) {
    EXPECT_GT(rec.departure, prev);
    prev = rec.departure;
  }
}

TEST(LinkSim, PerFlowDelayAccounting) {
  FifoScheduler fifo;
  std::vector<Packet> packets{{0, 1.0, 0.0}, {1, 1.0, 0.0}};
  const auto r = simulate_link(packets, fifo, 1.0);
  EXPECT_DOUBLE_EQ(r.per_flow.at(0).mean_delay, 1.0);
  EXPECT_DOUBLE_EQ(r.per_flow.at(1).mean_delay, 2.0);
  EXPECT_EQ(r.per_flow.at(0).packets, 1u);
}

}  // namespace
}  // namespace tempofair::netsim
