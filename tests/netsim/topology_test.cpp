// Dumbbell topology: access-link serialization, bottleneck conservation,
// per-flow tail drops, the windowed service-share fairness statistics, and
// the structural invariant battery.
#include "netsim/topology.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "netsim/schedulers.h"
#include "workload/rng.h"

namespace tempofair::netsim {
namespace {

/// Two flows with exponential inter-arrivals (mean 0.5) and fixed packet
/// sizes, so the offered byte ratio is size0:size1 sustained over the whole
/// arrival span.
[[nodiscard]] std::vector<Packet> two_flow_burst(std::size_t per_flow,
                                                 double size0, double size1,
                                                 std::uint64_t seed) {
  workload::Rng rng(seed);
  std::vector<Packet> packets;
  double t0 = 0.0, t1 = 0.0;
  for (std::size_t i = 0; i < per_flow; ++i) {
    t0 += rng.exponential(0.5);
    t1 += rng.exponential(0.5);
    packets.push_back(Packet{0, size0, t0});
    packets.push_back(Packet{1, size1, t1});
  }
  return packets;
}

TEST(Dumbbell, UnboundedQueueDeliversEverything) {
  FifoScheduler fifo;
  TopologyConfig config;  // queue_capacity 0 = unbounded
  const DumbbellResult r =
      simulate_dumbbell(two_flow_burst(50, 1.0, 2.0, 1), fifo, config);
  EXPECT_DOUBLE_EQ(r.drop_fraction, 0.0);
  for (const auto& [flow, mon] : r.per_flow) {
    EXPECT_EQ(mon.offered_packets, mon.delivered_packets) << "flow " << flow;
    EXPECT_DOUBLE_EQ(mon.offered_bytes, mon.delivered_bytes);
    EXPECT_EQ(mon.dropped_packets, 0u);
  }
  EXPECT_EQ(r.records.size(), 100u);
}

TEST(Dumbbell, SingleFlowHonorsBothLinkRates) {
  // One packet: it leaves the access link at arrival + size/access_rate and
  // then occupies the bottleneck for size/bottleneck_rate.
  FifoScheduler fifo;
  TopologyConfig config;
  config.access_rate = 4.0;
  config.bottleneck_rate = 2.0;
  const DumbbellResult r =
      simulate_dumbbell({Packet{0, 8.0, 1.0}}, fifo, config);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_NEAR(r.records[0].start, 1.0 + 8.0 / 4.0, 1e-12);
  EXPECT_NEAR(r.records[0].departure, 3.0 + 8.0 / 2.0, 1e-12);
  EXPECT_NEAR(r.per_flow.at(0).mean_delay, 6.0, 1e-12);
  EXPECT_NEAR(r.busy_until, 7.0, 1e-12);
}

TEST(Dumbbell, AccessLinkSerializesEachFlow) {
  // Two same-flow packets arriving together cannot reach the bottleneck
  // together: the second waits for the first's access transmission.
  FifoScheduler fifo;
  TopologyConfig config;
  config.access_rate = 1.0;
  config.bottleneck_rate = 100.0;  // bottleneck never queues
  const DumbbellResult r = simulate_dumbbell(
      {Packet{0, 5.0, 0.0}, Packet{0, 5.0, 0.0}}, fifo, config);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_GE(r.records[1].start, 10.0 - 1e-12);  // 2nd leaves access at t=10
}

TEST(Dumbbell, FiniteBufferDropsAndConserves) {
  DrrScheduler drr(2.0);
  TopologyConfig config;
  config.access_rate = 50.0;
  config.bottleneck_rate = 1.0;  // heavy congestion
  config.queue_capacity = 6.0;
  const std::vector<Packet> packets = two_flow_burst(200, 1.0, 2.0, 3);
  const DumbbellResult r = simulate_dumbbell(packets, drr, config);
  EXPECT_GT(r.drop_fraction, 0.0);
  for (const auto& [flow, mon] : r.per_flow) {
    EXPECT_NEAR(mon.offered_bytes, mon.delivered_bytes + mon.dropped_bytes,
                1e-9)
        << "flow " << flow;
  }
  // The battery agrees: a finished run has zero structural violations.
  const InvariantStats inv = check_dumbbell_invariants(packets, r, config);
  EXPECT_EQ(inv.violations, 0u);
  EXPECT_GT(inv.checks_run, 0u);
}

TEST(Dumbbell, OversizedPacketTailDropsWithoutCrashing) {
  // A packet larger than the buffer can never be admitted.  When tail-drop
  // consumes the last arrivals with the link idle, the bottleneck loop must
  // terminate instead of reading past the arrival list.
  FifoScheduler fifo;
  TopologyConfig config;
  config.queue_capacity = 2.0;
  const DumbbellResult lone =
      simulate_dumbbell({Packet{0, 5.0, 0.0}}, fifo, config);
  EXPECT_TRUE(lone.records.empty());
  EXPECT_EQ(lone.per_flow.at(0).dropped_packets, 1u);
  EXPECT_DOUBLE_EQ(lone.per_flow.at(0).dropped_bytes, 5.0);
  EXPECT_DOUBLE_EQ(lone.drop_fraction, 1.0);

  // Same ending after a delivered packet and an idle gap.
  const std::vector<Packet> packets = {Packet{0, 1.0, 0.0},
                                       Packet{0, 5.0, 100.0}};
  const DumbbellResult tail = simulate_dumbbell(packets, fifo, config);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_EQ(tail.per_flow.at(0).dropped_packets, 1u);
  const InvariantStats inv = check_dumbbell_invariants(packets, tail, config);
  EXPECT_EQ(inv.violations, 0u);
}

TEST(Dumbbell, ServiceWindowSeparatesDrrFromFifo) {
  // Flow 1 offers 3x the bytes of flow 0 into a congested bottleneck.
  // While both stay backlogged, DRR halves the link but FIFO serves in
  // arrival order, tracking the 1:3 offered ratio.
  const std::vector<Packet> packets = two_flow_burst(300, 1.0, 3.0, 5);
  TopologyConfig config;
  config.access_rate = 50.0;
  config.bottleneck_rate = 2.0;
  config.queue_capacity = 24.0;
  const double window = 40.0;  // both flows backlogged well past this

  DrrScheduler drr(3.0);
  const DumbbellResult fair = simulate_dumbbell(packets, drr, config, window);
  FifoScheduler fifo;
  const DumbbellResult fcfs = simulate_dumbbell(packets, fifo, config, window);

  EXPECT_GT(fair.jain_service, fcfs.jain_service);
  EXPECT_GT(fair.min_max_service, 0.9);  // DRR splits the window near-evenly
  // FIFO tracks the admitted byte mix (tail drops soften the raw 1:3 offered
  // ratio, but the skew stays clearly away from DRR's even split).
  EXPECT_LT(fcfs.min_max_service, fair.min_max_service - 0.05);
  EXPECT_LT(fcfs.min_max_service, 0.8);
}

TEST(Dumbbell, InvariantBatteryFlagsDoctoredResults) {
  FifoScheduler fifo;
  TopologyConfig config;
  const std::vector<Packet> packets = two_flow_burst(20, 1.0, 1.0, 7);
  DumbbellResult r = simulate_dumbbell(packets, fifo, config);
  ASSERT_FALSE(r.records.empty());
  r.records[0].departure += 1.0;  // break the link-rate identity
  r.per_flow.at(0).delivered_bytes += 5.0;  // and byte conservation
  const InvariantStats inv = check_dumbbell_invariants(packets, r, config);
  EXPECT_GE(inv.violations, 2u);
}

TEST(Dumbbell, BadConfigRejected) {
  FifoScheduler fifo;
  TopologyConfig config;
  config.bottleneck_rate = 0.0;
  EXPECT_THROW((void)simulate_dumbbell({}, fifo, config),
               std::invalid_argument);
  config.bottleneck_rate = 1.0;
  config.queue_capacity = -1.0;
  EXPECT_THROW((void)simulate_dumbbell({}, fifo, config),
               std::invalid_argument);
  config.queue_capacity = 0.0;
  EXPECT_THROW(
      (void)simulate_dumbbell({Packet{0, -1.0, 0.0}}, fifo, config),
      std::invalid_argument);
}

}  // namespace
}  // namespace tempofair::netsim
