#include "harness/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "harness/sweep.h"

namespace tempofair::harness {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, FuturePropagatesException) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW((void)f.get(), std::logic_error);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&done] { done++; });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 50);
}

TEST(RunSweep, PreservesOrder) {
  ThreadPool pool(4);
  std::vector<int> configs(20);
  std::iota(configs.begin(), configs.end(), 0);
  const auto results = run_sweep<int, int>(
      pool, configs, [](const int& c) { return c * c; });
  ASSERT_EQ(results.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(Linspace, EndpointsAndCount) {
  const auto v = linspace(1.0, 3.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
  EXPECT_DOUBLE_EQ(v[2], 2.0);
}

TEST(Linspace, SinglePoint) {
  const auto v = linspace(2.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
}

TEST(Linspace, RejectsZeroCount) {
  EXPECT_THROW((void)linspace(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tempofair::harness
