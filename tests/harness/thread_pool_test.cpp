#include "harness/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <numeric>
#include <string>

#include "harness/sweep.h"

namespace tempofair::harness {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesExceptionsUnderStealing) {
  // Many tiny chunks across many workers so the throwing chunk is very
  // likely executed by a thief (or the helping caller), not its home queue.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.parallel_for(
          64,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("stolen boom");
          },
          /*grain=*/1);
      FAIL() << "parallel_for swallowed the exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "stolen boom");
    }
    // The pool must stay usable after an exception.
    std::atomic<int> ok{0};
    pool.parallel_for(8, [&](std::size_t) { ok++; });
    EXPECT_EQ(ok.load(), 8);
  }
}

TEST(ThreadPool, FuturePropagatesException) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW((void)f.get(), std::logic_error);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&done] { done++; });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, NestedParallelForFromWorker) {
  // A worker task fanning out on its own pool must not deadlock: the outer
  // task helps execute inner chunks while it waits.
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(4, [&](std::size_t outer) {
    pool.parallel_for(25, [&](std::size_t inner) {
      sum += static_cast<long>(outer * 25 + inner);
    });
  });
  EXPECT_EQ(sum.load(), 99L * 100 / 2);
}

TEST(ThreadPool, NestedSubmitAndWaitOnSingleWorker) {
  // One worker, outer task blocks on an inner future: pool.wait() must help
  // run the inner task instead of deadlocking the only worker.
  ThreadPool pool(1);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return std::string("inner done"); });
    return pool.wait(inner) + " + outer done";
  });
  EXPECT_EQ(outer.get(), "inner done + outer done");
}

TEST(ThreadPool, DeeplyNestedSubmits) {
  ThreadPool pool(2);
  std::function<int(int)> recurse = [&](int depth) -> int {
    if (depth == 0) return 1;
    auto f = pool.submit([&recurse, depth] { return recurse(depth - 1); });
    return pool.wait(f) + 1;
  };
  auto f = pool.submit([&recurse] { return recurse(8); });
  EXPECT_EQ(f.get(), 9);
}

TEST(RunSweep, PreservesOrder) {
  ThreadPool pool(4);
  std::vector<int> configs(20);
  std::iota(configs.begin(), configs.end(), 0);
  // Result type is deduced from the callable; no std::function, no explicit
  // template arguments.
  const auto results =
      run_sweep(pool, configs, [](const int& c) { return c * c; });
  ASSERT_EQ(results.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(RunSweep, DeducesNonCopyableFriendlyResultTypes) {
  ThreadPool pool(2);
  const std::vector<int> configs{1, 2, 3};
  const auto results = run_sweep(pool, configs, [](const int& c) {
    return std::string(static_cast<std::size_t>(c), 'x');
  });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[2], "xxx");
}

TEST(RunSweep, SeededOverloadIsDeterministicAcrossPoolSizes) {
  // The derived per-config seed streams depend only on (seed, index), so a
  // sweep returns bit-identical results no matter how many workers run it
  // or in which order chunks are stolen.
  const std::vector<int> configs{5, 3, 8, 1, 9, 2, 7, 4, 6, 0};
  auto eval = [](const int& c, std::uint64_t seed) {
    // Mix the seed so any change in derivation shows up in the result.
    return static_cast<double>(c) + static_cast<double>(seed % 1000) * 1e-3;
  };
  std::vector<std::vector<double>> runs;
  for (std::size_t workers : {1u, 2u, 7u}) {
    ThreadPool pool(workers);
    runs.push_back(run_sweep(pool, configs, /*seed=*/123u, eval));
  }
  ASSERT_EQ(runs[0].size(), configs.size());
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(DeriveSeed, DistinctAndDeterministic) {
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  EXPECT_NE(derive_seed(42, 0), derive_seed(42, 1));
  EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
  // Streams shouldn't collide over a modest range.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 256; ++s) seen.push_back(derive_seed(7, s));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(Linspace, EndpointsAndCount) {
  const auto v = linspace(1.0, 3.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
  EXPECT_DOUBLE_EQ(v[2], 2.0);
}

TEST(Linspace, SinglePoint) {
  const auto v = linspace(2.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
}

TEST(Linspace, RejectsZeroCount) {
  EXPECT_THROW((void)linspace(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tempofair::harness
