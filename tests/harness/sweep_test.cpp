// run_sweep / run_sweep_sharded determinism: the merged results must be
// byte-identical for any worker count and any shard count, per-shard
// contexts (reused EngineCores) included.  This is the in-process half of
// the CI determinism gate; the workflow half diffs two tempofair_bench
// --grid-out artifacts produced with different --jobs values.
#include "harness/sweep.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/metrics.h"
#include "harness/thread_pool.h"
#include "workload/source.h"

namespace tempofair {
namespace {

constexpr std::uint64_t kSeed = 20260806;

TEST(DeriveSeed, OrderIndependentAndDistinct) {
  const std::uint64_t a = harness::derive_seed(kSeed, 0);
  const std::uint64_t b = harness::derive_seed(kSeed, 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, harness::derive_seed(kSeed, 0));
  EXPECT_NE(harness::derive_seed(kSeed, 7), harness::derive_seed(kSeed + 1, 7));
}

/// One sweep cell: a small Poisson run through a shard-reused EngineCore.
/// Returns doubles whose bits are compared across pool geometries.
struct CellResult {
  double l2 = 0.0;
  double mean = 0.0;
  std::uint64_t stream = 0;
};

std::vector<CellResult> sharded_grid(std::size_t workers, std::size_t shards) {
  harness::ThreadPool pool(workers);
  std::vector<double> loads;
  for (int i = 0; i < 23; ++i) loads.push_back(0.3 + 0.025 * i);
  return harness::run_sweep_sharded(
      pool, loads, kSeed, [] { return EngineCore{}; },
      [](EngineCore& engine, double load, std::uint64_t stream) {
        // WorkloadSpec round-trips seeds through a long; keep the derived
        // stream in range (still a pure function of the cell index).
        const Instance inst = workload::make_instance(
            workload::WorkloadSpec::poisson(60, load,
                                            workload::ExponentialSize{1.0},
                                            stream >> 1));
        RunRequest req;
        req.policy = "rr";
        req.record_trace = false;
        const RunResult result = engine.run(inst, req);
        return CellResult{result.stats.l2, result.stats.mean, stream};
      });
}

TEST(RunSweepSharded, ByteIdenticalAcrossWorkerAndShardCounts) {
  const std::vector<CellResult> reference = sharded_grid(1, 1);
  ASSERT_EQ(reference.size(), 23u);
  for (const std::size_t workers : {1u, 2u, 5u}) {
    for (const std::size_t shards : {0u, 1u, 4u, 23u, 100u}) {
      const std::vector<CellResult> got = sharded_grid(workers, shards);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].l2),
                  std::bit_cast<std::uint64_t>(reference[i].l2))
            << "workers=" << workers << " shards=" << shards << " cell=" << i;
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i].mean),
                  std::bit_cast<std::uint64_t>(reference[i].mean));
        EXPECT_EQ(got[i].stream, harness::derive_seed(kSeed, i))
            << "cell seed depends on shard geometry";
      }
    }
  }
}

TEST(RunSweepSharded, EmptyGridAndSingleCell) {
  harness::ThreadPool pool(2);
  const std::vector<int> empty;
  const auto none = harness::run_sweep_sharded(
      pool, empty, kSeed, [] { return 0; },
      [](int&, int c, std::uint64_t) { return c; });
  EXPECT_TRUE(none.empty());

  const std::vector<int> one{41};
  const auto single = harness::run_sweep_sharded(
      pool, one, kSeed, [] { return 1; },
      [](int& ctx, int c, std::uint64_t) { return c + ctx; });
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], 42);
}

TEST(RunSweepSharded, ContextIsPerShardNotPerCell) {
  // With one shard, all cells must see the same context instance (the
  // whole point: amortize context setup across a shard's cells).
  harness::ThreadPool pool(1);
  std::vector<int> cells(10, 0);
  const auto counts = harness::run_sweep_sharded(
      pool, cells, kSeed, [] { return std::vector<int>(); },
      [](std::vector<int>& seen, int, std::uint64_t) {
        seen.push_back(0);
        return static_cast<int>(seen.size());
      },
      /*shards=*/1);
  ASSERT_EQ(counts.size(), 10u);
  EXPECT_EQ(counts.front(), 1);
  EXPECT_EQ(counts.back(), 10);  // context accumulated across the shard
}

TEST(RunSweepSharded, MatchesUnshardedSeededSweep) {
  // The sharded and plain seeded overloads must agree cell for cell when
  // the evaluator ignores its context (same derive_seed streams).
  harness::ThreadPool pool(3);
  std::vector<int> cells;
  for (int i = 0; i < 17; ++i) cells.push_back(i);
  const auto plain = harness::run_sweep(
      pool, cells, kSeed,
      [](int c, std::uint64_t s) { return static_cast<double>(s % 1000) + c; });
  const auto sharded = harness::run_sweep_sharded(
      pool, cells, kSeed, [] { return 0; },
      [](int&, int c, std::uint64_t s) {
        return static_cast<double>(s % 1000) + c;
      });
  EXPECT_EQ(plain, sharded);
}

}  // namespace
}  // namespace tempofair
