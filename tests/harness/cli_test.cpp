#include "harness/cli.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tempofair::harness {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, FlagWithoutValue) {
  const Cli cli = make({"--csv"});
  EXPECT_TRUE(cli.has("csv"));
  EXPECT_TRUE(cli.csv());
  EXPECT_FALSE(cli.get("csv").has_value());
}

TEST(Cli, SpaceSeparatedValue) {
  const Cli cli = make({"--seed", "42"});
  EXPECT_EQ(cli.get_int("seed", 0), 42);
}

TEST(Cli, EqualsSeparatedValue) {
  const Cli cli = make({"--speed=2.5"});
  EXPECT_DOUBLE_EQ(cli.get_double("speed", 0.0), 2.5);
}

TEST(Cli, FallbacksWhenAbsent) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
  EXPECT_EQ(cli.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(cli.csv());
}

TEST(Cli, PositionalArguments) {
  const Cli cli = make({"input.csv", "--csv", "out.csv"});
  // "--csv out.csv": out.csv is consumed as the value of --csv.
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.csv");
  EXPECT_EQ(cli.get_string("csv", ""), "out.csv");
}

TEST(Cli, FlagFollowedByFlagTakesNoValue) {
  const Cli cli = make({"--csv", "--seed", "9"});
  EXPECT_TRUE(cli.has("csv"));
  EXPECT_FALSE(cli.get("csv").has_value());
  EXPECT_EQ(cli.get_int("seed", 0), 9);
}

TEST(Cli, RejectsMalformedNumbers) {
  const Cli cli = make({"--seed", "abc"});
  EXPECT_THROW((void)cli.get_int("seed", 0), std::invalid_argument);
  const Cli cli2 = make({"--x", "1.2.3"});
  EXPECT_THROW((void)cli2.get_double("x", 0.0), std::invalid_argument);
}

// Regression: get_int("seed") on "--seed 42abc" used to return 42 (strtol
// stopped at the garbage); the strict parser must reject the whole token
// and name the flag.
TEST(Cli, RejectsTrailingGarbageInNumbers) {
  const Cli cli = make({"--seed", "42abc"});
  try {
    (void)cli.get_int("seed", 0);
    FAIL() << "expected CliError";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--seed"), std::string::npos) << what;
    EXPECT_NE(what.find("42abc"), std::string::npos) << what;
  }
  const Cli cli2 = make({"--eps", "0.5x"});
  EXPECT_THROW((void)cli2.get_double("eps", 0.0), std::invalid_argument);
  // An empty value is indistinguishable from a bare flag in the legacy
  // scanner and falls back instead of throwing.
  const Cli cli3 = make({"--seed", ""});
  EXPECT_EQ(cli3.get_int("seed", 7), 7);
}

TEST(Cli, StringValues) {
  const Cli cli = make({"--policy", "laps:0.5"});
  EXPECT_EQ(cli.get_string("policy", "rr"), "laps:0.5");
}

// ---------------------------------------------------------------------------
// Options / Parsed -- the typed registration API.

Options standard_options() {
  Options opt("prog", "test program");
  opt.flag("csv", "emit CSV")
      .value("seed", 42, "rng seed")
      .value("speed", 4.4, "processor speed")
      .value("name", std::string("rr"), "policy name");
  return opt;
}

Parsed parse(const Options& opt, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return opt.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, TypedDefaults) {
  const Parsed p = parse(standard_options(), {});
  EXPECT_FALSE(p.flag("csv"));
  EXPECT_EQ(p.get_int("seed"), 42);
  EXPECT_DOUBLE_EQ(p.get_double("speed"), 4.4);
  EXPECT_EQ(p.get_string("name"), "rr");
  EXPECT_FALSE(p.given("seed"));
}

TEST(Options, TypedValuesFromArgv) {
  const Parsed p = parse(standard_options(),
                         {"--csv", "--seed", "7", "--speed=2.5", "--name", "setf"});
  EXPECT_TRUE(p.flag("csv"));
  EXPECT_TRUE(p.given("seed"));
  EXPECT_EQ(p.get_int("seed"), 7);
  EXPECT_DOUBLE_EQ(p.get_double("speed"), 2.5);
  EXPECT_EQ(p.get_string("name"), "setf");
}

TEST(Options, UnknownFlagIsHardError) {
  EXPECT_THROW((void)parse(standard_options(), {"--sede", "7"}), CliError);
  try {
    (void)parse(standard_options(), {"--sede"});
  } catch (const CliError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--sede"), std::string::npos) << what;
  }
}

TEST(Options, FlagGivenValueIsError) {
  EXPECT_THROW((void)parse(standard_options(), {"--csv=yes"}), CliError);
}

TEST(Options, MissingValueIsError) {
  EXPECT_THROW((void)parse(standard_options(), {"--seed"}), CliError);
  EXPECT_THROW((void)parse(standard_options(), {"--seed", "--csv"}), CliError);
}

TEST(Options, MalformedValueNamesFlag) {
  try {
    (void)parse(standard_options(), {"--seed", "42abc"});
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--seed"), std::string::npos) << what;
    EXPECT_NE(what.find("42abc"), std::string::npos) << what;
  }
  EXPECT_THROW((void)parse(standard_options(), {"--speed", "fast"}), CliError);
}

TEST(Options, HelpRequested) {
  const Parsed p = parse(standard_options(), {"--help"});
  EXPECT_TRUE(p.help_requested());
}

TEST(Options, HelpTextListsRegistrations) {
  std::ostringstream out;
  standard_options().print_help(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("prog"), std::string::npos);
  EXPECT_NE(text.find("--csv"), std::string::npos);
  EXPECT_NE(text.find("--seed"), std::string::npos);
  EXPECT_NE(text.find("rng seed"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);  // default shown
  EXPECT_NE(text.find("--help"), std::string::npos);
}

TEST(Options, PositionalsPassThrough) {
  const Parsed p = parse(standard_options(), {"a.trace", "--csv", "b.trace"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "a.trace");
  EXPECT_EQ(p.positional()[1], "b.trace");
}

TEST(Options, WrongTypeAccessThrows) {
  const Parsed p = parse(standard_options(), {});
  EXPECT_THROW((void)p.get_int("speed"), std::logic_error);
  EXPECT_THROW((void)p.get_double("unregistered"), std::logic_error);
}

// --- the shared run-flag vocabulary ----------------------------------------

Options run_options() {
  Options opt("prog", "run flags");
  add_run_flags(opt);
  return opt;
}

TEST(RunFlags, DefaultsMatchRunRequestDefaults) {
  const RunRequest request = run_request_from_flags(parse(run_options(), {}));
  const RunRequest defaults;
  EXPECT_EQ(request.policy, defaults.policy);
  EXPECT_EQ(request.machines, defaults.machines);
  EXPECT_EQ(request.speed, defaults.speed);
  EXPECT_EQ(request.record_trace, defaults.record_trace);
  EXPECT_EQ(request.hide_sizes, defaults.hide_sizes);
  EXPECT_EQ(request.max_time, defaults.max_time);
  EXPECT_EQ(request.max_steps, defaults.max_steps);
  EXPECT_EQ(request.use_fast_path, defaults.use_fast_path);
}

TEST(RunFlags, EveryFlagReachesTheRequest) {
  const RunRequest request = run_request_from_flags(
      parse(run_options(),
            {"--policy", "laps:0.5", "--machines", "4", "--speed=2.5",
             "--no-trace", "--hide-sizes", "--max-steps", "1000",
             "--max-time", "50", "--no-fast-path"}));
  EXPECT_EQ(request.policy, "laps:0.5");
  EXPECT_EQ(request.machines, 4);
  EXPECT_DOUBLE_EQ(request.speed, 2.5);
  EXPECT_FALSE(request.record_trace);
  EXPECT_TRUE(request.hide_sizes);
  EXPECT_EQ(request.max_steps, 1000u);
  EXPECT_DOUBLE_EQ(request.max_time, 50.0);
  EXPECT_FALSE(request.use_fast_path);
}

TEST(RunFlags, ZeroMaxTimeMeansUnbounded) {
  const RunRequest request =
      run_request_from_flags(parse(run_options(), {"--max-time", "0"}));
  EXPECT_EQ(request.max_time, kInfiniteTime);
}

TEST(RunFlags, RejectsOutOfRangeValues) {
  EXPECT_THROW(
      (void)run_request_from_flags(parse(run_options(), {"--machines", "0"})),
      CliError);
  EXPECT_THROW(
      (void)run_request_from_flags(parse(run_options(), {"--speed", "-1"})),
      CliError);
  EXPECT_THROW(
      (void)run_request_from_flags(parse(run_options(), {"--max-steps", "0"})),
      CliError);
  EXPECT_THROW(
      (void)run_request_from_flags(parse(run_options(), {"--max-time", "-2"})),
      CliError);
}

TEST(RunFlags, SharedGroupHelpersRegister) {
  Options opt("prog", "groups");
  add_jobs_flag(opt);
  add_quiet_flag(opt);
  add_smoke_flag(opt);
  add_seed_flag(opt, 7);
  const Parsed p =
      parse(opt, {"--jobs", "3", "--quiet", "--smoke"});
  EXPECT_EQ(p.get_int("jobs"), 3);
  EXPECT_TRUE(p.flag("quiet"));
  EXPECT_TRUE(p.flag("smoke"));
  EXPECT_EQ(p.get_int("seed"), 7);  // fallback honored
}

}  // namespace
}  // namespace tempofair::harness
