#include "harness/cli.h"

#include <gtest/gtest.h>

namespace tempofair::harness {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, FlagWithoutValue) {
  const Cli cli = make({"--csv"});
  EXPECT_TRUE(cli.has("csv"));
  EXPECT_TRUE(cli.csv());
  EXPECT_FALSE(cli.get("csv").has_value());
}

TEST(Cli, SpaceSeparatedValue) {
  const Cli cli = make({"--seed", "42"});
  EXPECT_EQ(cli.get_int("seed", 0), 42);
}

TEST(Cli, EqualsSeparatedValue) {
  const Cli cli = make({"--speed=2.5"});
  EXPECT_DOUBLE_EQ(cli.get_double("speed", 0.0), 2.5);
}

TEST(Cli, FallbacksWhenAbsent) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
  EXPECT_EQ(cli.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(cli.csv());
}

TEST(Cli, PositionalArguments) {
  const Cli cli = make({"input.csv", "--csv", "out.csv"});
  // "--csv out.csv": out.csv is consumed as the value of --csv.
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.csv");
  EXPECT_EQ(cli.get_string("csv", ""), "out.csv");
}

TEST(Cli, FlagFollowedByFlagTakesNoValue) {
  const Cli cli = make({"--csv", "--seed", "9"});
  EXPECT_TRUE(cli.has("csv"));
  EXPECT_FALSE(cli.get("csv").has_value());
  EXPECT_EQ(cli.get_int("seed", 0), 9);
}

TEST(Cli, RejectsMalformedNumbers) {
  const Cli cli = make({"--seed", "abc"});
  EXPECT_THROW((void)cli.get_int("seed", 0), std::invalid_argument);
  const Cli cli2 = make({"--x", "1.2.3"});
  EXPECT_THROW((void)cli2.get_double("x", 0.0), std::invalid_argument);
}

TEST(Cli, StringValues) {
  const Cli cli = make({"--policy", "laps:0.5"});
  EXPECT_EQ(cli.get_string("policy", "rr"), "laps:0.5");
}

}  // namespace
}  // namespace tempofair::harness
