#include "parsim/parsim.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/round_robin.h"

namespace tempofair::parsim {
namespace {

TEST(ParSim, SingleParallelJobUsesFullCapacity) {
  const auto jobs = all_parallel(std::vector<double>{8.0}, std::vector<Time>{0.0});
  Equi equi;
  ParSimOptions opt;
  opt.machines = 4;
  const ParSchedule s = simulate_par(jobs, equi, opt);
  EXPECT_DOUBLE_EQ(s.completion[0], 2.0);  // 8 work / 4 processors
}

TEST(ParSim, SequentialPhaseIgnoresAllocation) {
  // One job: sequential phase of length 5.  Even with 4 machines it takes 5.
  ParJob j;
  j.id = 0;
  j.phases = {Phase{PhaseKind::kSequential, 5.0}};
  Equi equi;
  ParSimOptions opt;
  opt.machines = 4;
  const ParSchedule s = simulate_par(std::vector<ParJob>{j}, equi, opt);
  EXPECT_DOUBLE_EQ(s.completion[0], 5.0);
}

TEST(ParSim, SpeedScalesSequentialPhases) {
  ParJob j;
  j.id = 0;
  j.phases = {Phase{PhaseKind::kSequential, 6.0}};
  Equi equi;
  ParSimOptions opt;
  opt.speed = 2.0;
  const ParSchedule s = simulate_par(std::vector<ParJob>{j}, equi, opt);
  EXPECT_DOUBLE_EQ(s.completion[0], 3.0);
}

TEST(ParSim, PhaseTransitionsChainCorrectly) {
  // parallel 2 then sequential 3 then parallel 1, alone on 1 machine:
  // 2 + 3 + 1 = 6.
  ParJob j;
  j.id = 0;
  j.phases = {Phase{PhaseKind::kParallel, 2.0},
              Phase{PhaseKind::kSequential, 3.0},
              Phase{PhaseKind::kParallel, 1.0}};
  Equi equi;
  const ParSchedule s = simulate_par(std::vector<ParJob>{j}, equi, {});
  EXPECT_DOUBLE_EQ(s.completion[0], 6.0);
}

TEST(ParSim, EquiMatchesCoreRoundRobinOnAllParallelJobs) {
  // With fully parallel jobs and capacity 1, EQUI == RR on one machine.
  const std::vector<double> works{2.0, 1.0, 3.0};
  const std::vector<Time> releases{0.0, 0.5, 1.0};
  const auto jobs = all_parallel(works, releases);
  Equi equi;
  const ParSchedule ps = simulate_par(jobs, equi, {});

  std::vector<Job> core_jobs;
  for (std::size_t i = 0; i < works.size(); ++i) {
    core_jobs.push_back(Job{static_cast<JobId>(i), releases[i], works[i]});
  }
  RoundRobin rr;
  const Schedule cs = EngineCore().run(Instance::from_jobs(std::move(core_jobs)), rr);
  for (JobId j = 0; j < 3; ++j) {
    EXPECT_NEAR(ps.completion[j], cs.completion(j), 1e-9) << "job " << j;
  }
}

TEST(ParSim, ParOptProxySkipsSequentialPhases) {
  // Job 0 sequential(4); job 1 parallel(2).  Proxy gives everything to job 1
  // (done at 2) while job 0 progresses for free (done at 4).
  ParJob a;
  a.id = 0;
  a.phases = {Phase{PhaseKind::kSequential, 4.0}};
  ParJob b;
  b.id = 1;
  b.phases = {Phase{PhaseKind::kParallel, 2.0}};
  ParOptProxy proxy;
  const ParSchedule s = simulate_par(std::vector<ParJob>{a, b}, proxy, {});
  EXPECT_DOUBLE_EQ(s.completion[1], 2.0);
  EXPECT_DOUBLE_EQ(s.completion[0], 4.0);
}

TEST(ParSim, EquiWastesProcessorsOnSequentialPhases) {
  // The EQUI pathology: under EQUI the sequential-phase job hogs half the
  // machine for nothing; the proxy finishes the parallel job twice as fast.
  ParJob a;
  a.id = 0;
  a.phases = {Phase{PhaseKind::kSequential, 10.0}};
  ParJob b;
  b.id = 1;
  b.phases = {Phase{PhaseKind::kParallel, 2.0}};
  Equi equi;
  const ParSchedule s = simulate_par(std::vector<ParJob>{a, b}, equi, {});
  EXPECT_DOUBLE_EQ(s.completion[1], 4.0);  // got 1/2 share -> 2/0.5
}

TEST(ParSim, WequiFavorsOlderJobs) {
  Wequi wequi;
  const auto jobs = par_seq_stream(10, 1.0, 1.0, 1.0);
  const ParSchedule s = simulate_par(jobs, wequi, {});
  for (JobId j = 0; j < 10; ++j) {
    EXPECT_TRUE(std::isfinite(s.completion[j]));
  }
}

TEST(ParSim, LapsParServesLatestArrivals) {
  LapsPar laps(0.3);
  // 3 parallel jobs at 0, 1, 2: ceil(0.3 n) = 1 alive share throughout, so
  // only the single latest arrival is ever served.
  const auto jobs = all_parallel(std::vector<double>{5.0, 5.0, 1.0},
                                 std::vector<Time>{0.0, 1.0, 2.0});
  const ParSchedule s = simulate_par(jobs, laps, {});
  EXPECT_DOUBLE_EQ(s.completion[2], 3.0);  // exclusive service on arrival
}

TEST(ParSim, LapsRejectsBadBeta) {
  EXPECT_THROW(LapsPar(0.0), std::invalid_argument);
  EXPECT_THROW(LapsPar(1.5), std::invalid_argument);
}

TEST(ParSim, WequiRejectsBadParameters) {
  EXPECT_THROW(Wequi(0.0), std::invalid_argument);
  EXPECT_THROW(Wequi(1.0, 0.0), std::invalid_argument);
}

TEST(ParSim, RejectsMalformedInput) {
  Equi equi;
  ParJob no_phases;
  no_phases.id = 0;
  EXPECT_THROW((void)simulate_par(std::vector<ParJob>{no_phases}, equi, {}),
               std::invalid_argument);
  ParJob bad_work;
  bad_work.id = 0;
  bad_work.phases = {Phase{PhaseKind::kParallel, 0.0}};
  EXPECT_THROW((void)simulate_par(std::vector<ParJob>{bad_work}, equi, {}),
               std::invalid_argument);
  ParSimOptions bad;
  bad.machines = 0;
  const auto ok = all_parallel(std::vector<double>{1.0}, std::vector<Time>{0.0});
  EXPECT_THROW((void)simulate_par(ok, equi, bad), std::invalid_argument);
}

TEST(ParSim, StreamSeparatesEquiFromLapsFamilyOnL2) {
  // The [15]/[12] phenomenon: on the parallel+sequential stream EQUI's l2
  // ratio vs the clairvoyant proxy GROWS with n (it keeps feeding
  // sequential-phase jobs), while the LAPS family -- including WLAPS, the
  // weighted RR the paper's Section 1.2 recalls -- stays bounded.
  auto ratios = [](std::size_t n) {
    const auto jobs = par_seq_stream(n, 1.0, 3.0, 1.3);
    Equi equi;
    LapsPar laps(0.5);
    WlapsPar wlaps(0.5);
    ParOptProxy proxy;
    ParSimOptions opt;
    const double proxy_l2 = lk_norm(simulate_par(jobs, proxy, opt).flows(), 2.0);
    return std::array<double, 3>{
        lk_norm(simulate_par(jobs, equi, opt).flows(), 2.0) / proxy_l2,
        lk_norm(simulate_par(jobs, laps, opt).flows(), 2.0) / proxy_l2,
        lk_norm(simulate_par(jobs, wlaps, opt).flows(), 2.0) / proxy_l2};
  };
  const auto small = ratios(20);
  const auto large = ratios(80);
  EXPECT_GT(large[0], small[0] + 0.3);       // EQUI ratio grows
  EXPECT_LT(large[1], small[1] + 0.3);       // LAPS flat
  EXPECT_LT(large[2], large[0]);             // WLAPS beats EQUI outright
}

TEST(ParSim, WlapsRejectsBadParameters) {
  EXPECT_THROW(WlapsPar(0.0), std::invalid_argument);
  EXPECT_THROW(WlapsPar(1.5), std::invalid_argument);
  EXPECT_THROW(WlapsPar(0.5, 0.0), std::invalid_argument);
}

TEST(ParSim, FlowsVectorMatchesCompletions) {
  const auto jobs = all_parallel(std::vector<double>{1.0, 2.0},
                                 std::vector<Time>{0.0, 1.0});
  Equi equi;
  const ParSchedule s = simulate_par(jobs, equi, {});
  const auto flows = s.flows();
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_DOUBLE_EQ(flows[0], s.completion[0] - 0.0);
  EXPECT_DOUBLE_EQ(flows[1], s.completion[1] - 1.0);
}

}  // namespace
}  // namespace tempofair::parsim
