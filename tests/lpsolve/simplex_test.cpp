#include "lpsolve/simplex.h"

#include <gtest/gtest.h>

namespace tempofair::lpsolve {
namespace {

using Rel = LinearProgram::Rel;

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6  => min -(x+y).
  LinearProgram lp;
  lp.objective = {-1.0, -1.0};
  lp.rows.push_back({{1.0, 2.0}, Rel::kLe, 4.0});
  lp.rows.push_back({{3.0, 1.0}, Rel::kLe, 6.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  // Optimum at intersection: x = 8/5, y = 6/5, objective -(14/5).
  EXPECT_NEAR(sol.objective, -2.8, 1e-9);
  EXPECT_NEAR(sol.x[0], 1.6, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.2, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y s.t. x + y = 3, x <= 2.
  LinearProgram lp;
  lp.objective = {1.0, 2.0};
  lp.rows.push_back({{1.0, 1.0}, Rel::kEq, 3.0});
  lp.rows.push_back({{1.0, 0.0}, Rel::kLe, 2.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
  EXPECT_NEAR(sol.objective, 4.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1.
  LinearProgram lp;
  lp.objective = {2.0, 3.0};
  lp.rows.push_back({{1.0, 1.0}, Rel::kGe, 4.0});
  lp.rows.push_back({{1.0, 0.0}, Rel::kGe, 1.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-9);  // push everything onto cheaper x
  EXPECT_NEAR(sol.x[1], 0.0, 1e-9);
  EXPECT_NEAR(sol.objective, 8.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 2.
  LinearProgram lp;
  lp.objective = {1.0};
  lp.rows.push_back({{1.0}, Rel::kLe, 1.0});
  lp.rows.push_back({{1.0}, Rel::kGe, 2.0});
  EXPECT_EQ(solve_lp(lp).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with no upper bound on x.
  LinearProgram lp;
  lp.objective = {-1.0};
  lp.rows.push_back({{-1.0}, Rel::kLe, 0.0});  // -x <= 0 i.e. x >= 0 (vacuous)
  EXPECT_EQ(solve_lp(lp).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LinearProgram lp;
  lp.objective = {1.0};
  lp.rows.push_back({{-1.0}, Rel::kLe, -3.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
}

TEST(Simplex, DegenerateProblemStillSolves) {
  // Multiple constraints active at the optimum.
  LinearProgram lp;
  lp.objective = {-1.0, -1.0};
  lp.rows.push_back({{1.0, 0.0}, Rel::kLe, 1.0});
  lp.rows.push_back({{0.0, 1.0}, Rel::kLe, 1.0});
  lp.rows.push_back({{1.0, 1.0}, Rel::kLe, 2.0});  // redundant at optimum
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-9);
}

TEST(Simplex, RedundantEqualityRows) {
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.rows.push_back({{1.0, 1.0}, Rel::kEq, 2.0});
  lp.rows.push_back({{2.0, 2.0}, Rel::kEq, 4.0});  // same constraint doubled
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
}

TEST(Simplex, ZeroVariableProblem) {
  LinearProgram lp;  // no variables, no rows
  const auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(sol.objective, 0.0);
}

TEST(Simplex, RejectsDimensionMismatch) {
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.rows.push_back({{1.0}, Rel::kLe, 1.0});
  EXPECT_THROW((void)solve_lp(lp), std::invalid_argument);
}

TEST(Simplex, TransportationMatchesKnownOptimum) {
  // Same transportation instance as the MCMF test: optimum 8.
  // Variables x00,x01,x10,x11 (supply i -> demand j).
  LinearProgram lp;
  lp.objective = {1.0, 4.0, 2.0, 1.0};
  lp.rows.push_back({{1.0, 1.0, 0.0, 0.0}, Rel::kLe, 3.0});  // supply 0
  lp.rows.push_back({{0.0, 0.0, 1.0, 1.0}, Rel::kLe, 2.0});  // supply 1
  lp.rows.push_back({{1.0, 0.0, 1.0, 0.0}, Rel::kEq, 2.0});  // demand 0
  lp.rows.push_back({{0.0, 1.0, 0.0, 1.0}, Rel::kEq, 3.0});  // demand 1
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 8.0, 1e-9);
}

}  // namespace
}  // namespace tempofair::lpsolve
