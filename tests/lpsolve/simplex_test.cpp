#include "lpsolve/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tempofair::lpsolve {
namespace {

using Rel = LinearProgram::Rel;

// Dual vector sanity usable on any optimal solution: sum_i duals[i] * rhs[i]
// must reproduce the primal objective (strong duality, up to float error).
void expect_strong_duality(const LinearProgram& lp, const LpSolution& sol) {
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  ASSERT_EQ(sol.duals.size(), lp.rows.size());
  double dual_obj = 0.0;
  for (std::size_t i = 0; i < lp.rows.size(); ++i) {
    dual_obj += sol.duals[i] * lp.rows[i].rhs;
    // Sign conventions: >= rows have nonnegative duals, <= rows nonpositive.
    if (lp.rows[i].rel == Rel::kGe) {
      EXPECT_GE(sol.duals[i], -1e-9);
    }
    if (lp.rows[i].rel == Rel::kLe) {
      EXPECT_LE(sol.duals[i], 1e-9);
    }
  }
  EXPECT_NEAR(dual_obj, *sol.objective, 1e-7 * (1.0 + std::fabs(*sol.objective)));
}

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6  => min -(x+y).
  LinearProgram lp;
  lp.objective = {-1.0, -1.0};
  lp.rows.push_back({{1.0, 2.0}, Rel::kLe, 4.0});
  lp.rows.push_back({{3.0, 1.0}, Rel::kLe, 6.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  // Optimum at intersection: x = 8/5, y = 6/5, objective -(14/5).
  EXPECT_NEAR(*sol.objective, -2.8, 1e-9);
  EXPECT_NEAR(sol.x[0], 1.6, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.2, 1e-9);
  expect_strong_duality(lp, sol);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y s.t. x + y = 3, x <= 2.
  LinearProgram lp;
  lp.objective = {1.0, 2.0};
  lp.rows.push_back({{1.0, 1.0}, Rel::kEq, 3.0});
  lp.rows.push_back({{1.0, 0.0}, Rel::kLe, 2.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
  EXPECT_NEAR(*sol.objective, 4.0, 1e-9);
  expect_strong_duality(lp, sol);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1.
  LinearProgram lp;
  lp.objective = {2.0, 3.0};
  lp.rows.push_back({{1.0, 1.0}, Rel::kGe, 4.0});
  lp.rows.push_back({{1.0, 0.0}, Rel::kGe, 1.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-9);  // push everything onto cheaper x
  EXPECT_NEAR(sol.x[1], 0.0, 1e-9);
  EXPECT_NEAR(*sol.objective, 8.0, 1e-9);
  expect_strong_duality(lp, sol);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 2.
  LinearProgram lp;
  lp.objective = {1.0};
  lp.rows.push_back({{1.0}, Rel::kLe, 1.0});
  lp.rows.push_back({{1.0}, Rel::kGe, 2.0});
  const auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
  // Non-optimal results must carry no objective a caller could misread.
  EXPECT_FALSE(sol.objective.has_value());
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with no upper bound on x.
  LinearProgram lp;
  lp.objective = {-1.0};
  lp.rows.push_back({{-1.0}, Rel::kLe, 0.0});  // -x <= 0 i.e. x >= 0 (vacuous)
  const auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, SolveStatus::kUnbounded);
  EXPECT_FALSE(sol.objective.has_value());
}

TEST(Simplex, NegativeRhsNormalized) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LinearProgram lp;
  lp.objective = {1.0};
  lp.rows.push_back({{-1.0}, Rel::kLe, -3.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
}

TEST(Simplex, NegativeRhsEqualityRows) {
  // min x + y s.t. -x - y = -2, x - y = -1: unique solution x=1/2, y=3/2.
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.rows.push_back({{-1.0, -1.0}, Rel::kEq, -2.0});
  lp.rows.push_back({{1.0, -1.0}, Rel::kEq, -1.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 0.5, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.5, 1e-9);
  EXPECT_NEAR(*sol.objective, 2.0, 1e-9);
  expect_strong_duality(lp, sol);
}

TEST(Simplex, DegenerateProblemStillSolves) {
  // Multiple constraints active at the optimum.
  LinearProgram lp;
  lp.objective = {-1.0, -1.0};
  lp.rows.push_back({{1.0, 0.0}, Rel::kLe, 1.0});
  lp.rows.push_back({{0.0, 1.0}, Rel::kLe, 1.0});
  lp.rows.push_back({{1.0, 1.0}, Rel::kLe, 2.0});  // redundant at optimum
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(*sol.objective, -2.0, 1e-9);
}

TEST(Simplex, BealeCyclingExampleTerminates) {
  // Beale's classic cycling LP with the x3 column scaled by 100 so every
  // coefficient is an exact dyadic double.  Optimum -1/20 at x1 = 1/25,
  // x3' = 1/100.  The stall detector must hand over to Bland's rule rather
  // than burn the iteration budget.
  LinearProgram lp;
  lp.objective = {-0.75, 150.0, -2.0, 6.0};
  lp.rows.push_back({{0.25, -60.0, -4.0, 9.0}, Rel::kLe, 0.0});
  lp.rows.push_back({{0.5, -90.0, -2.0, 3.0}, Rel::kLe, 0.0});
  lp.rows.push_back({{0.0, 0.0, 100.0, 0.0}, Rel::kLe, 1.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(*sol.objective, -0.05, 1e-9);
  EXPECT_NEAR(sol.x[0], 0.04, 1e-9);
  EXPECT_NEAR(sol.x[2], 0.01, 1e-9);
  expect_strong_duality(lp, sol);
}

TEST(Simplex, RedundantEqualityRows) {
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.rows.push_back({{1.0, 1.0}, Rel::kEq, 2.0});
  lp.rows.push_back({{2.0, 2.0}, Rel::kEq, 4.0});  // same constraint doubled
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(*sol.objective, 2.0, 1e-9);
}

TEST(Simplex, ZeroVariableProblem) {
  LinearProgram lp;  // no variables, no rows
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  ASSERT_TRUE(sol.objective.has_value());
  EXPECT_DOUBLE_EQ(*sol.objective, 0.0);
}

TEST(Simplex, RejectsDimensionMismatch) {
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.rows.push_back({{1.0}, Rel::kLe, 1.0});
  EXPECT_THROW((void)solve_lp(lp), std::invalid_argument);
}

TEST(Simplex, TransportationMatchesKnownOptimum) {
  // Same transportation instance as the MCMF test: optimum 8.
  // Variables x00,x01,x10,x11 (supply i -> demand j).
  LinearProgram lp;
  lp.objective = {1.0, 4.0, 2.0, 1.0};
  lp.rows.push_back({{1.0, 1.0, 0.0, 0.0}, Rel::kLe, 3.0});  // supply 0
  lp.rows.push_back({{0.0, 0.0, 1.0, 1.0}, Rel::kLe, 2.0});  // supply 1
  lp.rows.push_back({{1.0, 0.0, 1.0, 0.0}, Rel::kEq, 2.0});  // demand 0
  lp.rows.push_back({{0.0, 1.0, 0.0, 1.0}, Rel::kEq, 3.0});  // demand 1
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(*sol.objective, 8.0, 1e-9);
  expect_strong_duality(lp, sol);
}

TEST(Simplex, BasisCoversEveryRow) {
  LinearProgram lp;
  lp.objective = {1.0, 2.0};
  lp.rows.push_back({{1.0, 1.0}, Rel::kGe, 2.0});
  lp.rows.push_back({{1.0, 0.0}, Rel::kLe, 5.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  const StandardForm sf = standardize(lp);
  ASSERT_EQ(sol.basis.size(), lp.rows.size());
  for (const std::size_t col : sol.basis) EXPECT_LT(col, sf.cols);
}

}  // namespace
}  // namespace tempofair::lpsolve
