#include "lpsolve/mincost_flow.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tempofair::lpsolve {
namespace {

TEST(MinCostFlow, SingleEdge) {
  MinCostFlow g(2);
  (void)g.add_edge(0, 1, 5.0, 2.0);
  const auto r = g.solve(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(r.flow, 5.0);
  EXPECT_DOUBLE_EQ(r.cost, 10.0);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  // 0 -> 1 -> 3 (cost 1+1) and 0 -> 2 -> 3 (cost 5+5), caps 1 each.
  MinCostFlow g(4);
  (void)g.add_edge(0, 1, 1.0, 1.0);
  (void)g.add_edge(1, 3, 1.0, 1.0);
  (void)g.add_edge(0, 2, 1.0, 5.0);
  (void)g.add_edge(2, 3, 1.0, 5.0);
  const auto r = g.solve(0, 3, 2.0);
  EXPECT_DOUBLE_EQ(r.flow, 2.0);
  EXPECT_DOUBLE_EQ(r.cost, 1.0 * 2 + 5.0 * 2);
}

TEST(MinCostFlow, RespectsMaxFlowCap) {
  MinCostFlow g(2);
  (void)g.add_edge(0, 1, 10.0, 1.0);
  const auto r = g.solve(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(r.flow, 3.0);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
}

TEST(MinCostFlow, StopsAtCapacityLimit) {
  MinCostFlow g(3);
  (void)g.add_edge(0, 1, 2.0, 1.0);
  (void)g.add_edge(1, 2, 1.5, 1.0);
  const auto r = g.solve(0, 2, 100.0);
  EXPECT_DOUBLE_EQ(r.flow, 1.5);
}

TEST(MinCostFlow, UsesResidualEdgesForOptimality) {
  // Classic case where the greedy path must be partially undone.
  //   0->1 (cap 1, cost 1), 0->2 (cap 1, cost 2),
  //   1->2 (cap 1, cost 0), 1->3 (cap 1, cost 2), 2->3 (cap 1, cost 1).
  // Max flow 2 with min cost: 0->1->2->3 (2) and 0->1... need residual logic.
  MinCostFlow g(4);
  (void)g.add_edge(0, 1, 1.0, 1.0);
  (void)g.add_edge(0, 2, 1.0, 2.0);
  (void)g.add_edge(1, 2, 1.0, 0.0);
  (void)g.add_edge(1, 3, 1.0, 2.0);
  (void)g.add_edge(2, 3, 1.0, 1.0);
  const auto r = g.solve(0, 3, 2.0);
  EXPECT_DOUBLE_EQ(r.flow, 2.0);
  // Optimal: 0->1->2->3 (cost 2) + 0->2? cap... 0->2->3 used by first path;
  // best total is 0->1->2->3 = 2 and 0->2 + 2->3 blocked => 0->1->3? cap of
  // 0->1 is 1.  Routes: {0->1->2->3, 0->2->(2->3 full)...} -> the two units
  // must use 0->1->3 and 0->2->3: cost (1+2)+(2+1)=6?  Or 0->1->2->3 (2) and
  // 0->2->3 is then full on 2->3: 0->2 has no other exit -> so 6 is right
  // only if sharing impossible; SSP finds min = 6 or better.  Assert exact
  // optimum computed by hand: paths P1=0->1->2->3 cost 2, P2=0->2->3 cost 3
  // conflict on 2->3 (cap 1).  Alternatives: P1'=0->1->3 cost 3, P2=0->2->3
  // cost 3 -> total 6; or P1=2 + P2'=0->2->(1?) no edge.  Optimum = 5:
  // flow A: 0->1 ->2 ->3 (cost 1+0+1=2); flow B: 0->2 (2), then 2->3 full,
  // no path -> infeasible; so pairing must be (0->1->3, 0->2->3) = 6 or
  // (0->1->2->3, 0->2 ... dead end).  Hence 6? But residual: after P1,
  // augmenting 0->2, then 2->1 (residual of 1->2), then 1->3: cost
  // 2 + 0 (undo) ... = 2 + (2 - 0 + 2) = hmm.  Let the solver answer and
  // verify against brute force: total flow 2, min cost is 6 via {0->1->3,
  // 0->2->3} OR 2+4=6 via residual path 0->2->1->3 (2 + (-0) + 2 = 4).
  // Both give 6.
  EXPECT_DOUBLE_EQ(r.cost, 6.0);
}

TEST(MinCostFlow, FractionalCapacities) {
  MinCostFlow g(3);
  (void)g.add_edge(0, 1, 0.3, 1.0);
  (void)g.add_edge(0, 1, 0.7, 3.0);
  (void)g.add_edge(1, 2, 1.0, 0.0);
  const auto r = g.solve(0, 2, 1.0);
  EXPECT_NEAR(r.flow, 1.0, 1e-9);
  EXPECT_NEAR(r.cost, 0.3 * 1.0 + 0.7 * 3.0, 1e-9);
}

TEST(MinCostFlow, FlowOnReportsPerEdgeFlow) {
  MinCostFlow g(3);
  const auto cheap = g.add_edge(0, 1, 2.0, 1.0);
  const auto expensive = g.add_edge(0, 1, 2.0, 10.0);
  (void)g.add_edge(1, 2, 3.0, 0.0);
  (void)g.solve(0, 2, 3.0);
  EXPECT_NEAR(g.flow_on(cheap), 2.0, 1e-9);
  EXPECT_NEAR(g.flow_on(expensive), 1.0, 1e-9);
}

TEST(MinCostFlow, TransportationProblem) {
  // 2 supplies (3, 2), 2 demands (2, 3); cost matrix [[1, 4], [2, 1]].
  // Optimal: s0->d0: 2, s0->d1: 1, s1->d1: 2 => 2*1 + 1*4 + 2*1 = 8?
  // Or s0->d0:2, s1->d1:2, s0->d1:1 -> 8; s1->d0? cost2: s0->d1:3(12)... 8.
  MinCostFlow g(6);  // 0=src, 1,2=supply, 3,4=demand, 5=sink
  (void)g.add_edge(0, 1, 3.0, 0.0);
  (void)g.add_edge(0, 2, 2.0, 0.0);
  (void)g.add_edge(1, 3, 10.0, 1.0);
  (void)g.add_edge(1, 4, 10.0, 4.0);
  (void)g.add_edge(2, 3, 10.0, 2.0);
  (void)g.add_edge(2, 4, 10.0, 1.0);
  (void)g.add_edge(3, 5, 2.0, 0.0);
  (void)g.add_edge(4, 5, 3.0, 0.0);
  const auto r = g.solve(0, 5, 5.0);
  EXPECT_DOUBLE_EQ(r.flow, 5.0);
  EXPECT_DOUBLE_EQ(r.cost, 2.0 * 1.0 + 1.0 * 4.0 + 2.0 * 1.0);
}

TEST(MinCostFlow, RejectsInvalidInput) {
  MinCostFlow g(2);
  EXPECT_THROW((void)g.add_edge(0, 5, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)g.add_edge(0, 1, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)g.add_edge(0, 1, 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)g.solve(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)g.flow_on(99), std::invalid_argument);
}

TEST(MinCostFlow, DisconnectedGraphDeliversPartialFlow) {
  MinCostFlow g(4);
  (void)g.add_edge(0, 1, 5.0, 1.0);
  // node 2,3 unreachable
  const auto r = g.solve(0, 3, 5.0);
  EXPECT_DOUBLE_EQ(r.flow, 0.0);
}

}  // namespace
}  // namespace tempofair::lpsolve
