#include "lpsolve/rational.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace tempofair::lpsolve {
namespace {

TEST(Rational, FromRatioNormalizes) {
  EXPECT_EQ(Rational::from_ratio(2, 4), Rational::from_ratio(1, 2));
  EXPECT_EQ(Rational::from_ratio(-2, 4), Rational::from_ratio(1, -2));
  EXPECT_EQ(Rational::from_ratio(0, 7), Rational::from_int(0));
  const Rational half = Rational::from_ratio(3, 6);
  EXPECT_EQ(static_cast<long long>(half.num()), 1);
  EXPECT_EQ(static_cast<long long>(half.den()), 2);
}

TEST(Rational, FromRatioZeroDenIsInvalid) {
  EXPECT_FALSE(Rational::from_ratio(1, 0).valid());
}

TEST(Rational, FromDoubleIsExact) {
  // 0.1 is not 1/10 in binary; the conversion must capture the double's
  // true value, so converting back is lossless.
  for (const double v : {0.1, -0.3, 1.0 / 3.0, 2.5, -1024.75, 1e-20, 3e20}) {
    const Rational r = Rational::from_double(v);
    ASSERT_TRUE(r.valid()) << v;
    EXPECT_EQ(r.to_double(), v);
  }
  EXPECT_TRUE(Rational::from_double(0.0).is_zero());
}

TEST(Rational, FromDoubleRejectsNonFinite) {
  EXPECT_FALSE(Rational::from_double(std::nan("")).valid());
  EXPECT_FALSE(
      Rational::from_double(std::numeric_limits<double>::infinity()).valid());
  // Denormals have exponents far outside the 128-bit window.
  EXPECT_FALSE(
      Rational::from_double(std::numeric_limits<double>::denorm_min()).valid());
}

TEST(Rational, ExactArithmetic) {
  const Rational third = Rational::from_ratio(1, 3);
  const Rational sixth = Rational::from_ratio(1, 6);
  EXPECT_EQ(third + sixth, Rational::from_ratio(1, 2));
  EXPECT_EQ(third - sixth, sixth);
  EXPECT_EQ(third * sixth, Rational::from_ratio(1, 18));
  EXPECT_EQ(third / sixth, Rational::from_int(2));
  EXPECT_EQ(-third, Rational::from_ratio(-1, 3));
  // The exact sum of double(0.1) and double(0.2) lies strictly between
  // double(0.3) and the rounded double sum 0.1 + 0.2 -- rationals expose the
  // rounding that doubles hide.
  const Rational sum =
      Rational::from_double(0.1) + Rational::from_double(0.2);
  EXPECT_NE(sum, Rational::from_double(0.3));
  EXPECT_NE(sum, Rational::from_double(0.1 + 0.2));
  EXPECT_LT(Rational::from_double(0.3), sum);
  EXPECT_LT(sum, Rational::from_double(0.1 + 0.2));
}

TEST(Rational, DivisionByZeroPoisons) {
  EXPECT_FALSE((Rational::from_int(1) / Rational::from_int(0)).valid());
}

TEST(Rational, OverflowPoisonsAndPropagates) {
  // (2^96 / 3) * (2^96 / 5) cannot be represented: ~2^192.
  const Rational big =
      Rational::from_double(std::ldexp(1.0, 96)) / Rational::from_int(3);
  ASSERT_TRUE(big.valid());
  const Rational big2 =
      Rational::from_double(std::ldexp(1.0, 96)) / Rational::from_int(5);
  const Rational prod = big * big2;
  EXPECT_FALSE(prod.valid());
  // Poison propagates through further arithmetic.
  EXPECT_FALSE((prod + Rational::from_int(1)).valid());
  EXPECT_FALSE((-prod).valid());
}

TEST(Rational, ComparisonsFailClosedOnInvalid) {
  const Rational bad = Rational::invalid();
  const Rational one = Rational::from_int(1);
  EXPECT_FALSE(bad == bad);
  EXPECT_FALSE(bad <= one);
  EXPECT_FALSE(one <= bad);
  EXPECT_FALSE(bad < one);
  EXPECT_FALSE(one >= bad);
  EXPECT_FALSE(bad.is_zero());
  EXPECT_FALSE(bad.is_negative());
  EXPECT_FALSE(bad.is_positive());
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational::from_ratio(1, 3), Rational::from_ratio(1, 2));
  EXPECT_LT(Rational::from_ratio(-1, 2), Rational::from_ratio(-1, 3));
  EXPECT_GT(Rational::from_int(1), Rational::from_ratio(99, 100));
  EXPECT_LE(Rational::from_ratio(2, 4), Rational::from_ratio(1, 2));
}

TEST(Rational, DyadicRounding) {
  const Rational third = Rational::from_ratio(1, 3);
  const Rational down = third.floor_to_dyadic(4);  // multiples of 1/16
  const Rational up = third.ceil_to_dyadic(4);
  EXPECT_EQ(down, Rational::from_ratio(5, 16));
  EXPECT_EQ(up, Rational::from_ratio(6, 16));
  // Negative values floor away from zero.
  EXPECT_EQ((-third).floor_to_dyadic(4), Rational::from_ratio(-6, 16));
  EXPECT_EQ((-third).ceil_to_dyadic(4), Rational::from_ratio(-5, 16));
  // Grid points are fixed points.
  const Rational grid = Rational::from_ratio(3, 16);
  EXPECT_EQ(grid.floor_to_dyadic(4), grid);
  EXPECT_EQ(grid.ceil_to_dyadic(4), grid);
}

TEST(Rational, DirectedDoubleRounding) {
  const Rational third = Rational::from_ratio(1, 3);
  const double lo = third.lower_double();
  const double hi = third.upper_double();
  EXPECT_LT(lo, hi);
  EXPECT_TRUE(Rational::from_double(lo) <= third);
  EXPECT_TRUE(Rational::from_double(hi) >= third);
  // Exactly representable values round to themselves on both sides.
  const Rational half = Rational::from_ratio(1, 2);
  EXPECT_EQ(half.lower_double(), 0.5);
  EXPECT_EQ(half.upper_double(), 0.5);
  // Invalid values round to the unusable side.
  EXPECT_EQ(Rational::invalid().lower_double(),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(Rational::invalid().upper_double(),
            std::numeric_limits<double>::infinity());
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational::from_ratio(-7, 3).str(), "-7/3");
  EXPECT_EQ(Rational::from_int(5).str(), "5");
  EXPECT_EQ(Rational::invalid().str(), "invalid");
}

}  // namespace
}  // namespace tempofair::lpsolve
