#include "lpsolve/lp_fuzz.h"

#include <gtest/gtest.h>

namespace tempofair::lpsolve {
namespace {

TEST(LpFuzz, NoDisagreementsOnDefaultSeed) {
  LpFuzzOptions opt;
  opt.count = 300;
  const LpFuzzReport rep = run_lp_fuzz(opt);
  EXPECT_TRUE(rep.ok());
  for (const auto& d : rep.disagreements) {
    ADD_FAILURE() << "case " << d.case_index << ": " << d.what;
  }
  // A fuzz run that never exercises the optimal path proves nothing.
  EXPECT_GT(rep.optimal, 0u);
  EXPECT_GT(rep.certified, 0u);
  EXPECT_GT(rep.flow_cases, 0u);
}

TEST(LpFuzz, DeterministicForFixedSeed) {
  LpFuzzOptions opt;
  opt.count = 100;
  opt.seed = 42;
  const LpFuzzReport a = run_lp_fuzz(opt);
  const LpFuzzReport b = run_lp_fuzz(opt);
  EXPECT_EQ(a.optimal, b.optimal);
  EXPECT_EQ(a.infeasible, b.infeasible);
  EXPECT_EQ(a.unbounded, b.unbounded);
  EXPECT_EQ(a.iter_limit, b.iter_limit);
  EXPECT_EQ(a.certified, b.certified);
  EXPECT_EQ(a.warm_starts, b.warm_starts);
  EXPECT_EQ(a.disagreements.size(), b.disagreements.size());
}

}  // namespace
}  // namespace tempofair::lpsolve
