#include "lpsolve/certify.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/instance.h"
#include "lpsolve/flowtime_lp.h"
#include "lpsolve/simplex.h"

namespace tempofair::lpsolve {
namespace {

using Rel = LinearProgram::Rel;

TEST(Certify, ExactSolveMatchesKnownOptimum) {
  // min -(x+y) s.t. x + 2y <= 4, 3x + y <= 6: optimum -14/5.
  LinearProgram lp;
  lp.objective = {-1.0, -1.0};
  lp.rows.push_back({{1.0, 2.0}, Rel::kLe, 4.0});
  lp.rows.push_back({{3.0, 1.0}, Rel::kLe, 6.0});
  const CertifyResult r = solve_lp_exact(lp);
  ASSERT_EQ(r.exact_status, SolveStatus::kOptimal);
  EXPECT_EQ(r.exact_objective, Rational::from_ratio(-14, 5));
  EXPECT_TRUE(r.bound.certified);
  EXPECT_LE(r.bound.value, -2.8 + 1e-12);
}

TEST(Certify, WarmStartFromFloatBasis) {
  LinearProgram lp;
  lp.objective = {2.0, 3.0};
  lp.rows.push_back({{1.0, 1.0}, Rel::kGe, 4.0});
  lp.rows.push_back({{1.0, 0.0}, Rel::kGe, 1.0});
  const LpSolution fl = solve_lp(lp);
  ASSERT_EQ(fl.status, SolveStatus::kOptimal);
  const CertifyResult r = solve_lp_exact(lp, &fl);
  ASSERT_EQ(r.exact_status, SolveStatus::kOptimal);
  EXPECT_TRUE(r.warm_start_used);
  EXPECT_EQ(r.exact_objective, Rational::from_int(8));
}

TEST(Certify, VerifyCertificateOnOptimalSolution) {
  LinearProgram lp;
  lp.objective = {1.0, 2.0};
  lp.rows.push_back({{1.0, 1.0}, Rel::kEq, 3.0});
  lp.rows.push_back({{1.0, 0.0}, Rel::kLe, 2.0});
  const LpSolution fl = solve_lp(lp);
  ASSERT_EQ(fl.status, SolveStatus::kOptimal);
  const CertifiedBound cert = verify_certificate(lp, fl);
  EXPECT_TRUE(cert.certified);
  // Certified value bounds the optimum (4) from below, and is tight here.
  EXPECT_LE(cert.value, 4.0 + 1e-12);
  EXPECT_NEAR(cert.value, 4.0, 1e-9);
}

TEST(Certify, NonOptimalSolutionIsUncertified) {
  LinearProgram lp;
  lp.objective = {1.0};
  lp.rows.push_back({{1.0}, Rel::kLe, 1.0});
  lp.rows.push_back({{1.0}, Rel::kGe, 2.0});
  const LpSolution fl = solve_lp(lp);
  ASSERT_EQ(fl.status, SolveStatus::kInfeasible);
  EXPECT_FALSE(verify_certificate(lp, fl).certified);
}

TEST(Certify, ExactInfeasibilityAndUnboundedness) {
  LinearProgram infeas;
  infeas.objective = {1.0};
  infeas.rows.push_back({{1.0}, Rel::kLe, 1.0});
  infeas.rows.push_back({{1.0}, Rel::kGe, 2.0});
  EXPECT_EQ(solve_lp_exact(infeas).exact_status, SolveStatus::kInfeasible);

  LinearProgram unbdd;
  unbdd.objective = {-1.0};
  unbdd.rows.push_back({{-1.0}, Rel::kLe, 0.0});
  EXPECT_EQ(solve_lp_exact(unbdd).exact_status, SolveStatus::kUnbounded);
}

TEST(Certify, BealeExampleExactOptimum) {
  // Beale's cycling LP, x3 column scaled by 100 so inputs are dyadic;
  // exact optimum is -1/20 (see simplex_test for the float side).
  LinearProgram lp;
  lp.objective = {-0.75, 150.0, -2.0, 6.0};
  lp.rows.push_back({{0.25, -60.0, -4.0, 9.0}, Rel::kLe, 0.0});
  lp.rows.push_back({{0.5, -90.0, -2.0, 3.0}, Rel::kLe, 0.0});
  lp.rows.push_back({{0.0, 0.0, 100.0, 0.0}, Rel::kLe, 1.0});
  const LpSolution fl = solve_lp(lp);
  ASSERT_EQ(fl.status, SolveStatus::kOptimal);
  const CertifyResult r = solve_lp_exact(lp, &fl);
  ASSERT_EQ(r.exact_status, SolveStatus::kOptimal);
  EXPECT_EQ(r.exact_objective, Rational::from_ratio(-1, 20));
  EXPECT_TRUE(r.bound.certified);
}

TEST(Certify, RedundantAndNegativeRhsEqualityRows) {
  // Redundant doubled equality plus a negative-rhs equality; the exact
  // phase-1 must drive artificials out (or prove the leftover rows
  // redundant) without declaring infeasibility.
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.rows.push_back({{1.0, 1.0}, Rel::kEq, 2.0});
  lp.rows.push_back({{2.0, 2.0}, Rel::kEq, 4.0});
  lp.rows.push_back({{-1.0, -1.0}, Rel::kEq, -2.0});
  const CertifyResult r = solve_lp_exact(lp);
  ASSERT_EQ(r.exact_status, SolveStatus::kOptimal);
  EXPECT_EQ(r.exact_objective, Rational::from_int(2));
  const LpSolution fl = solve_lp(lp);
  ASSERT_EQ(fl.status, SolveStatus::kOptimal);
  EXPECT_TRUE(verify_certificate(lp, fl).certified);
}

TEST(Certify, OverflowDegradesToUncertified) {
  // Coefficients outside from_double's exponent window poison the exact
  // conversion: the result must be "uncertified", never a wrong bound.
  LinearProgram lp;
  lp.objective = {1e-300};
  lp.rows.push_back({{1e-300}, Rel::kGe, 1.0});
  const CertifyResult r = solve_lp_exact(lp);
  EXPECT_TRUE(r.overflow);
  EXPECT_FALSE(r.bound.certified);
  EXPECT_NE(r.exact_status, SolveStatus::kOptimal);
}

TEST(Certify, DualExtractionCrossCheckVsMinCostFlow) {
  // Discretized flow-time instance: the dense simplex's exact certificate
  // and the MCMF potential-derived certificate must both certify the SAME
  // LP, each from an independent derivation, at values <= its optimum.
  const std::vector<std::pair<Time, Work>> pairs{
      {0.0, 2.0}, {0.0, 1.0}, {1.0, 3.0}, {2.0, 1.0}};
  const Instance inst = Instance::from_pairs(pairs);
  FlowtimeLpOptions opts;
  opts.k = 2.0;
  opts.slot = 1.0;
  const FlowtimeLpResult mcmf = solve_flowtime_lp(inst, opts);
  ASSERT_TRUE(mcmf.certificate.certified);
  EXPECT_LE(mcmf.certificate.value, mcmf.lp_value + 1e-9 * (1.0 + mcmf.lp_value));
  // The potential-derived dual should be essentially tight.
  EXPECT_NEAR(mcmf.certificate.value, mcmf.lp_value,
              1e-6 * (1.0 + mcmf.lp_value));

  const LinearProgram lp = build_flowtime_lp(inst, opts);
  const LpSolution fl = solve_lp(lp);
  ASSERT_EQ(fl.status, SolveStatus::kOptimal);
  const CertifyResult r = solve_lp_exact(lp, &fl);
  ASSERT_EQ(r.exact_status, SolveStatus::kOptimal);
  ASSERT_TRUE(r.bound.certified);
  // Same LP, so the exact simplex optimum equals the MCMF value (to float
  // tolerance) and both certificates sit below it.
  EXPECT_NEAR(r.exact_objective.to_double(), mcmf.lp_value,
              1e-6 * (1.0 + mcmf.lp_value));
  EXPECT_LE(mcmf.certificate.value, r.exact_objective.upper_double() + 1e-12);

  // Cross-check the float duals row by row against the exact ones.
  ASSERT_EQ(fl.duals.size(), r.duals.size());
  for (std::size_t i = 0; i < fl.duals.size(); ++i) {
    EXPECT_NEAR(fl.duals[i], r.duals[i], 1e-6 * (1.0 + std::fabs(r.duals[i])))
        << "row " << i;
  }
}

TEST(Certify, PivotBudgetReportsIterLimit) {
  LinearProgram lp;
  lp.objective = {-1.0, -1.0};
  lp.rows.push_back({{1.0, 2.0}, Rel::kLe, 4.0});
  lp.rows.push_back({{3.0, 1.0}, Rel::kLe, 6.0});
  CertifyOptions opts;
  opts.max_pivots = 1;
  const CertifyResult r = solve_lp_exact(lp, nullptr, opts);
  EXPECT_EQ(r.exact_status, SolveStatus::kIterLimit);
  EXPECT_FALSE(r.bound.certified);
}

}  // namespace
}  // namespace tempofair::lpsolve
