#include "lpsolve/lower_bounds.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/round_robin.h"
#include "workload/generators.h"

namespace tempofair::lpsolve {
namespace {

TEST(OptBounds, TrivialBoundIsSumOfSizePowers) {
  const Instance inst = Instance::batch(std::vector<Work>{1.0, 2.0, 3.0});
  OptBoundsOptions opt;
  opt.k = 2.0;
  opt.with_lp = false;
  const OptBounds b = opt_bounds(inst, opt);
  EXPECT_DOUBLE_EQ(b.trivial_lb, 1.0 + 4.0 + 9.0);
  EXPECT_DOUBLE_EQ(b.best_lb, b.trivial_lb);
  EXPECT_DOUBLE_EQ(b.lp_lb, 0.0);
}

TEST(OptBounds, BracketOrderingHolds) {
  workload::Rng rng(89);
  for (double k : {1.0, 2.0, 3.0}) {
    const Instance inst =
        workload::poisson_load(35, 1, 0.9, workload::ExponentialSize{1.5}, rng);
    OptBoundsOptions opt;
    opt.k = k;
    const OptBounds b = opt_bounds(inst, opt);
    EXPECT_GT(b.best_lb, 0.0);
    EXPECT_LE(b.best_lb, b.proxy_ub * (1.0 + 1e-9)) << "k=" << k;
    EXPECT_GE(b.best_lb, b.trivial_lb - 1e-9);
    EXPECT_GE(b.best_lb, b.lp_lb - 1e-9);
  }
}

TEST(OptBounds, ProxyBoundsAnyPolicyFromBelow) {
  // proxy = min(SRPT, SJF) >= OPT, so every policy's cost >= ... is NOT
  // implied; instead: proxy <= RR's cost must hold only when SRPT beats RR,
  // which it does for l1 on one machine.
  workload::Rng rng(97);
  const Instance inst =
      workload::poisson_load(40, 1, 0.9, workload::ExponentialSize{1.5}, rng);
  OptBoundsOptions opt;
  opt.k = 1.0;
  opt.with_lp = false;
  const OptBounds b = opt_bounds(inst, opt);
  RoundRobin rr;
  EngineOptions eo;
  eo.record_trace = false;
  const double rr_cost = flow_lk_power(EngineCore().run(inst, rr, eo), 1.0);
  EXPECT_LE(b.proxy_ub, rr_cost * (1.0 + 1e-9));
}

TEST(OptBounds, MultiMachineBracket) {
  workload::Rng rng(101);
  const Instance inst =
      workload::poisson_load(40, 4, 0.9, workload::ExponentialSize{1.0}, rng);
  OptBoundsOptions opt;
  opt.k = 2.0;
  opt.machines = 4;
  const OptBounds b = opt_bounds(inst, opt);
  EXPECT_LE(b.best_lb, b.proxy_ub * (1.0 + 1e-9));
}

TEST(OptBounds, AutoSlotKeepsGridBounded) {
  // A long-horizon instance must be solvable via the auto-coarsened grid.
  workload::Rng rng(103);
  const Instance inst =
      workload::poisson_load(80, 1, 0.5, workload::ExponentialSize{10.0}, rng);
  OptBoundsOptions opt;
  opt.k = 2.0;
  const OptBounds b = opt_bounds(inst, opt);
  EXPECT_GT(b.lp_lb, 0.0);
  EXPECT_LE(b.lp_lb, b.proxy_ub * (1.0 + 1e-9));
}

TEST(OptBounds, DenormalJobSizeDoesNotPoisonBounds) {
  // Regression: a denormal-size job used to collapse the auto slot width to
  // a denormal, making horizon/slot overflow and the LP grid degenerate.
  const std::vector<std::pair<Time, Work>> pairs{
      {0.0, 1.0}, {0.5, std::numeric_limits<double>::denorm_min()}, {1.0, 2.0}};
  const Instance inst = Instance::from_pairs(pairs);
  OptBoundsOptions opt;
  opt.k = 2.0;
  const OptBounds b = opt_bounds(inst, opt);
  EXPECT_TRUE(std::isfinite(b.best_lb));
  EXPECT_TRUE(std::isfinite(b.lp_lb));
  EXPECT_GT(b.best_lb, 0.0);
  EXPECT_LE(b.best_lb, b.proxy_ub * (1.0 + 1e-9));
}

TEST(OptBounds, CertifiedLbBacksBestLb) {
  workload::Rng rng(109);
  for (double k : {1.0, 2.0, 3.0}) {
    const Instance inst =
        workload::poisson_load(30, 1, 0.85, workload::UniformSize{0.5, 2.0}, rng);
    OptBoundsOptions opt;
    opt.k = k;
    const OptBounds b = opt_bounds(inst, opt);
    EXPECT_TRUE(b.lb_certified) << "k=" << k;
    EXPECT_GT(b.certified_lb, 0.0);
    // The exact certificate may only give up float-level slack vs best_lb.
    EXPECT_LE(b.certified_lb, b.best_lb * (1.0 + 1e-9)) << "k=" << k;
    EXPECT_GE(b.certified_lb, b.best_lb * (1.0 - 1e-4)) << "k=" << k;
  }
}

TEST(OptBounds, NonIntegerKFallsBackToLpCertificate) {
  // The trivial bound only certifies integer k; for k=1.5 the LP dual
  // certificate must carry the certification on its own.
  workload::Rng rng(113);
  const Instance inst =
      workload::poisson_load(25, 1, 0.85, workload::UniformSize{0.5, 2.0}, rng);
  OptBoundsOptions opt;
  opt.k = 1.5;
  const OptBounds b = opt_bounds(inst, opt);
  EXPECT_TRUE(b.lb_certified);
  EXPECT_GT(b.certified_lb, 0.0);
}

TEST(OptBounds, SingleJobExactness) {
  // One job: OPT flow = size; trivial bound is exactly OPT^k.
  const Instance inst = Instance::batch(std::vector<Work>{4.0});
  OptBoundsOptions opt;
  opt.k = 2.0;
  const OptBounds b = opt_bounds(inst, opt);
  EXPECT_DOUBLE_EQ(b.trivial_lb, 16.0);
  EXPECT_DOUBLE_EQ(b.proxy_ub, 16.0);  // SRPT achieves it
}

}  // namespace
}  // namespace tempofair::lpsolve
