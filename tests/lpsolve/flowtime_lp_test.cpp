#include "lpsolve/flowtime_lp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/priority_policies.h"
#include "workload/generators.h"

namespace tempofair::lpsolve {
namespace {

TEST(FlowtimeLp, SingleUnitJobValue) {
  // One job, size 1, released at 0, k=1, slot 1: the LP puts the whole job
  // in slot [0,1) at unit cost ((0-0)^1 + 1^1)/1 = 1.
  const Instance inst = Instance::batch(std::vector<Work>{1.0});
  FlowtimeLpOptions opt;
  opt.k = 1.0;
  const auto r = solve_flowtime_lp(inst, opt);
  EXPECT_NEAR(r.lp_value, 1.0, 1e-9);
  EXPECT_NEAR(r.opt_power_lb, 0.5, 1e-9);
}

TEST(FlowtimeLp, SingleJobSizeTwoUsesTwoSlots) {
  // Size 2, k=1, slot 1: slot 0 cost (0+2)/2 = 1 per unit, slot 1 cost
  // (1+2)/2 = 1.5 per unit -> value 1*1 + 1*1.5 = 2.5.
  const Instance inst = Instance::batch(std::vector<Work>{2.0});
  FlowtimeLpOptions opt;
  opt.k = 1.0;
  const auto r = solve_flowtime_lp(inst, opt);
  EXPECT_NEAR(r.lp_value, 2.5, 1e-9);
}

TEST(FlowtimeLp, LowerBoundsActualSchedules) {
  // LP/2 <= OPT^k <= any policy's cost, so LP/2 <= SRPT's cost.
  workload::Rng rng(71);
  for (double k : {1.0, 2.0, 3.0}) {
    const Instance inst =
        workload::poisson_load(30, 1, 0.85, workload::UniformSize{0.5, 2.0}, rng);
    FlowtimeLpOptions opt;
    opt.k = k;
    opt.slot = 0.5;
    const auto r = solve_flowtime_lp(inst, opt);
    Srpt srpt;
    EngineOptions eo;
    eo.record_trace = false;
    const double srpt_cost = flow_lk_power(EngineCore().run(inst, srpt, eo), k);
    EXPECT_LE(r.opt_power_lb, srpt_cost * (1.0 + 1e-9)) << "k=" << k;
    EXPECT_GT(r.opt_power_lb, 0.0);
  }
}

TEST(FlowtimeLp, FinerSlotsGiveTighterBound) {
  workload::Rng rng(73);
  const Instance inst =
      workload::poisson_load(20, 1, 0.8, workload::UniformSize{0.5, 2.0}, rng);
  double prev = 0.0;
  for (double slot : {2.0, 1.0, 0.5, 0.25}) {
    FlowtimeLpOptions opt;
    opt.k = 2.0;
    opt.slot = slot;
    const auto r = solve_flowtime_lp(inst, opt);
    EXPECT_GE(r.lp_value, prev - 1e-6);  // finer grid can only raise the LP
    prev = r.lp_value;
  }
}

TEST(FlowtimeLp, MultiMachineCapacityIsLooser) {
  workload::Rng rng(79);
  const Instance inst = Instance::batch(std::vector<Work>{1, 1, 1, 1, 1, 1});
  FlowtimeLpOptions one;
  one.k = 2.0;
  FlowtimeLpOptions three = one;
  three.machines = 3;
  EXPECT_LE(solve_flowtime_lp(inst, three).lp_value,
            solve_flowtime_lp(inst, one).lp_value + 1e-9);
}

TEST(FlowtimeLp, McmfMatchesSimplexOnTinyInstances) {
  workload::Rng rng(83);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::pair<Time, Work>> pairs;
    const int n = 3;
    for (int i = 0; i < n; ++i) {
      pairs.emplace_back(static_cast<double>(rng.uniform_int(0, 3)),
                         static_cast<double>(rng.uniform_int(1, 3)));
    }
    const Instance inst = Instance::from_pairs(pairs);
    FlowtimeLpOptions opt;
    opt.k = 2.0;
    opt.slot = 1.0;
    const auto mcmf = solve_flowtime_lp(inst, opt);
    const LinearProgram lp = build_flowtime_lp(inst, opt);
    const auto simplex = solve_lp(lp);
    ASSERT_EQ(simplex.status, SolveStatus::kOptimal);
    EXPECT_NEAR(mcmf.lp_value, *simplex.objective, 1e-6)
        << "trial " << trial << " " << inst.summary();
  }
}

TEST(FlowtimeLp, CertificateBoundsValueFromBelow) {
  workload::Rng rng(107);
  for (double k : {1.0, 2.0, 3.0}) {
    const Instance inst =
        workload::poisson_load(25, 1, 0.85, workload::UniformSize{0.5, 2.0}, rng);
    FlowtimeLpOptions opt;
    opt.k = k;
    opt.slot = 0.5;
    const auto r = solve_flowtime_lp(inst, opt);
    ASSERT_TRUE(r.certificate.certified) << "k=" << k;
    EXPECT_GT(r.certificate.value, 0.0);
    EXPECT_LE(r.certificate.value, r.lp_value * (1.0 + 1e-9)) << "k=" << k;
    // The dyadic repair gives up only a sliver of the bound.
    EXPECT_GE(r.certificate.value, r.lp_value * (1.0 - 1e-4)) << "k=" << k;
  }
}

TEST(FlowtimeLp, DenormalJobSizeIsSkippedNotFatal) {
  // A denormal size passes Instance validation (it is > 0) but would drive
  // the per-unit LP cost to infinity; the solver must drop it, not throw.
  const std::vector<std::pair<Time, Work>> pairs{
      {0.0, 1.0}, {0.0, std::numeric_limits<double>::denorm_min()}, {1.0, 2.0}};
  const Instance inst = Instance::from_pairs(pairs);
  FlowtimeLpOptions opt;
  opt.k = 2.0;
  opt.slot = 1.0;
  const auto r = solve_flowtime_lp(inst, opt);
  EXPECT_EQ(r.skipped_jobs, 1u);
  EXPECT_TRUE(std::isfinite(r.lp_value));
  EXPECT_GT(r.lp_value, 0.0);
  // build_flowtime_lp must apply the same skip so both agree on the program.
  const LinearProgram lp = build_flowtime_lp(inst, opt);
  const auto simplex = solve_lp(lp);
  ASSERT_EQ(simplex.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.lp_value, *simplex.objective, 1e-6);
}

TEST(FlowtimeLp, RejectsBadOptions) {
  const Instance inst = Instance::batch(std::vector<Work>{1.0});
  FlowtimeLpOptions opt;
  opt.slot = 0.0;
  EXPECT_THROW((void)solve_flowtime_lp(inst, opt), std::invalid_argument);
  opt.slot = 1.0;
  opt.k = 0.5;
  EXPECT_THROW((void)solve_flowtime_lp(inst, opt), std::invalid_argument);
  opt.k = 2.0;
  opt.machines = 0;
  EXPECT_THROW((void)solve_flowtime_lp(inst, opt), std::invalid_argument);
  EXPECT_THROW((void)solve_flowtime_lp(Instance{}, FlowtimeLpOptions{}),
               std::invalid_argument);
}

TEST(FlowtimeLp, InsufficientSlotCapRejected) {
  const Instance inst = Instance::batch(std::vector<Work>{10.0});
  FlowtimeLpOptions opt;
  opt.max_slots = 2;  // capacity 2 < work 10
  EXPECT_THROW((void)solve_flowtime_lp(inst, opt), std::invalid_argument);
}

TEST(FlowtimeLp, LateReleaseShiftsCosts) {
  // A job released at t=5 must not be charged for waiting before 5.
  const Instance early = Instance::batch(std::vector<Work>{1.0}, 0.0);
  const Instance late = Instance::batch(std::vector<Work>{1.0}, 5.0);
  FlowtimeLpOptions opt;
  opt.k = 2.0;
  EXPECT_NEAR(solve_flowtime_lp(early, opt).lp_value,
              solve_flowtime_lp(late, opt).lp_value, 1e-9);
}

}  // namespace
}  // namespace tempofair::lpsolve
