#include "relsim/relsim.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/round_robin.h"
#include "workload/generators.h"

namespace tempofair::relsim {
namespace {

TEST(RatesFeasible, MajorizationChecks) {
  const std::vector<double> speeds{4.0, 2.0, 1.0};
  EXPECT_TRUE(rates_feasible(std::vector<double>{4.0, 2.0, 1.0}, speeds));
  EXPECT_TRUE(rates_feasible(std::vector<double>{3.0, 3.0, 1.0}, speeds));
  EXPECT_FALSE(rates_feasible(std::vector<double>{5.0, 1.0, 1.0}, speeds));
  EXPECT_FALSE(rates_feasible(std::vector<double>{3.5, 3.5, 0.5}, speeds));
  // More jobs than machines: total bounded by total speed.
  EXPECT_TRUE(rates_feasible(std::vector<double>{2.0, 2.0, 2.0, 1.0}, speeds));
  EXPECT_FALSE(rates_feasible(std::vector<double>{2.0, 2.0, 2.0, 1.5}, speeds));
}

TEST(RelatedRoundRobin, EqualRateFormula) {
  RelatedRoundRobin rr;
  const std::vector<double> speeds{4.0, 2.0, 1.0};
  std::vector<RelAliveJob> alive(2);
  for (JobId i = 0; i < 2; ++i) alive[i] = RelAliveJob{i, 0.0, 5.0, 0.0};
  RelContext ctx{0.0, speeds, alive};
  const RelDecision d = rr.allocate(ctx);
  // n=2 <= m: r = (4+2)/2 = 3.
  EXPECT_DOUBLE_EQ(d.rates[0], 3.0);
  EXPECT_DOUBLE_EQ(d.rates[1], 3.0);
  EXPECT_TRUE(rates_feasible(d.rates, speeds));
}

TEST(RelatedRoundRobin, OverloadedUsesAllCapacity) {
  RelatedRoundRobin rr;
  const std::vector<double> speeds{4.0, 2.0};
  std::vector<RelAliveJob> alive(4);
  for (JobId i = 0; i < 4; ++i) alive[i] = RelAliveJob{i, 0.0, 5.0, 0.0};
  RelContext ctx{0.0, speeds, alive};
  const RelDecision d = rr.allocate(ctx);
  for (double r : d.rates) EXPECT_DOUBLE_EQ(r, 1.5);  // 6 / 4
}

TEST(RelatedRoundRobin, IdenticalSpeedsMatchCoreRr) {
  workload::Rng rng(3);
  const Instance inst =
      workload::poisson_load(40, 3, 0.9, workload::ExponentialSize{1.0}, rng);
  RelatedRoundRobin rel;
  RelSimOptions ro;
  ro.speeds = {1.0, 1.0, 1.0};
  const RelSchedule a = simulate_related(inst, rel, ro);

  RoundRobin core;
  EngineOptions eo;
  eo.machines = 3;
  eo.record_trace = false;
  const Schedule b = EngineCore().run(inst, core, eo);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_NEAR(a.completion[j], b.completion(j), 1e-7) << "job " << j;
  }
}

TEST(RelatedSrpt, FastestMachineGetsShortestJob) {
  // Jobs 3 and 6 on speeds {2, 1}: SRPT puts 3 on the speed-2 machine
  // (done at 1.5) and 6 on speed 1; after the first completes, the shorter
  // remaining moves to the fastest.
  const Instance inst = Instance::batch(std::vector<Work>{3.0, 6.0});
  RelatedSrpt srpt;
  RelSimOptions ro;
  ro.speeds = {2.0, 1.0};
  const RelSchedule s = simulate_related(inst, srpt, ro);
  EXPECT_DOUBLE_EQ(s.completion[0], 1.5);
  // Job 1: 1.5 done at t=1.5 (speed 1), remaining 4.5 at speed 2 -> 3.75.
  EXPECT_DOUBLE_EQ(s.completion[1], 3.75);
}

TEST(RelatedFcfs, EarliestOnFastest) {
  const Instance inst = Instance::from_pairs(
      std::vector<std::pair<Time, Work>>{{0.0, 4.0}, {0.5, 4.0}});
  RelatedFcfs fcfs;
  RelSimOptions ro;
  ro.speeds = {2.0, 1.0};
  const RelSchedule s = simulate_related(inst, fcfs, ro);
  EXPECT_DOUBLE_EQ(s.completion[0], 2.0);  // speed 2
  // Job 1 runs on speed 1 during [0.5, 2.0] (1.5 done), then inherits the
  // fast machine: remaining 2.5 at speed 2 -> done at 3.25.
  EXPECT_DOUBLE_EQ(s.completion[1], 3.25);
}

TEST(SimulateRelated, AugmentScalesSpeeds) {
  const Instance inst = Instance::batch(std::vector<Work>{4.0});
  RelatedRoundRobin rr;
  RelSimOptions ro;
  ro.speeds = {1.0};
  ro.augment = 4.0;
  const RelSchedule s = simulate_related(inst, rr, ro);
  EXPECT_DOUBLE_EQ(s.completion[0], 1.0);
}

TEST(SimulateRelated, RejectsBadOptions) {
  const Instance inst = Instance::batch(std::vector<Work>{1.0});
  RelatedRoundRobin rr;
  RelSimOptions none;
  none.speeds = {};
  EXPECT_THROW((void)simulate_related(inst, rr, none), std::invalid_argument);
  RelSimOptions bad;
  bad.speeds = {0.0};
  EXPECT_THROW((void)simulate_related(inst, rr, bad), std::invalid_argument);
  RelSimOptions aug;
  aug.augment = 0.0;
  EXPECT_THROW((void)simulate_related(inst, rr, aug), std::invalid_argument);
}

TEST(SimulateRelated, SrptBeatsRrOnTotalFlowHeterogeneous) {
  workload::Rng rng(7);
  const Instance inst =
      workload::poisson_load(50, 3, 0.9, workload::ExponentialSize{1.5}, rng);
  RelatedSrpt srpt;
  RelatedRoundRobin rr;
  RelSimOptions ro;
  ro.speeds = {4.0, 2.0, 1.0};
  const double srpt_l1 = lk_power_sum(simulate_related(inst, srpt, ro).flows(), 1.0);
  const double rr_l1 = lk_power_sum(simulate_related(inst, rr, ro).flows(), 1.0);
  EXPECT_LE(srpt_l1, rr_l1 * (1.0 + 1e-9));
}

TEST(SimulateRelated, EveryJobCompletes) {
  workload::Rng rng(11);
  const Instance inst =
      workload::poisson_load(60, 2, 1.1, workload::ParetoSize{1.8, 0.5, 30.0}, rng);
  for (auto make : {+[]() -> std::unique_ptr<RelPolicy> {
                      return std::make_unique<RelatedRoundRobin>();
                    },
                    +[]() -> std::unique_ptr<RelPolicy> {
                      return std::make_unique<RelatedSrpt>();
                    },
                    +[]() -> std::unique_ptr<RelPolicy> {
                      return std::make_unique<RelatedFcfs>();
                    }}) {
    auto policy = make();
    RelSimOptions ro;
    ro.speeds = {3.0, 1.0};
    const RelSchedule s = simulate_related(inst, *policy, ro);
    for (JobId j = 0; j < inst.n(); ++j) {
      EXPECT_TRUE(std::isfinite(s.completion[j]))
          << policy->name() << " job " << j;
    }
  }
}

}  // namespace
}  // namespace tempofair::relsim
