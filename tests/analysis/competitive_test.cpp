#include "analysis/competitive.h"

#include <gtest/gtest.h>

#include "policies/priority_policies.h"
#include "policies/round_robin.h"
#include "workload/generators.h"

namespace tempofair::analysis {
namespace {

TEST(MeasureRatio, BracketIsOrdered) {
  workload::Rng rng(3);
  const Instance inst =
      workload::poisson_load(30, 1, 0.9, workload::ExponentialSize{1.0}, rng);
  RoundRobin rr;
  RatioOptions opt;
  opt.k = 2.0;
  const RatioMeasurement m = measure_ratio(inst, rr, opt);
  EXPECT_GT(m.cost_power, 0.0);
  EXPECT_GT(m.ratio_vs_proxy, 0.0);
  EXPECT_GE(m.ratio_vs_lb, m.ratio_vs_proxy);  // lb <= proxy
}

TEST(MeasureRatio, SrptAtSpeedOneHasProxyRatioAtMostOne) {
  // SRPT is one of the proxy candidates, so its ratio vs proxy is >= 1 only
  // when SJF beats it; in all cases cost >= proxy means ratio >= 1... the
  // proxy is the min, so SRPT's cost / proxy >= 1, with equality when SRPT
  // is the better of the two.
  workload::Rng rng(5);
  const Instance inst =
      workload::poisson_load(30, 1, 0.9, workload::ExponentialSize{1.0}, rng);
  Srpt srpt;
  RatioOptions opt;
  opt.k = 2.0;
  opt.with_lp = false;
  const RatioMeasurement m = measure_ratio(inst, srpt, opt);
  EXPECT_GE(m.ratio_vs_proxy, 1.0 - 1e-9);
}

TEST(MeasureRatio, SpeedReducesRatio) {
  workload::Rng rng(7);
  const Instance inst =
      workload::poisson_load(40, 1, 0.95, workload::ExponentialSize{1.0}, rng);
  lpsolve::OptBoundsOptions bo;
  bo.k = 2.0;
  bo.with_lp = false;
  const auto bounds = lpsolve::opt_bounds(inst, bo);
  double prev = std::numeric_limits<double>::infinity();
  for (double speed : {1.0, 2.0, 4.0}) {
    RoundRobin rr;
    RatioOptions opt;
    opt.k = 2.0;
    opt.speed = speed;
    const RatioMeasurement m = measure_ratio(inst, rr, opt, bounds);
    EXPECT_LE(m.ratio_vs_proxy, prev + 1e-9);
    prev = m.ratio_vs_proxy;
  }
}

TEST(MeasureRatio, ReusedBoundsMatchFreshOnes) {
  workload::Rng rng(11);
  const Instance inst =
      workload::poisson_load(25, 1, 0.85, workload::ExponentialSize{1.0}, rng);
  RoundRobin rr1, rr2;
  RatioOptions opt;
  opt.k = 2.0;
  opt.with_lp = false;
  const RatioMeasurement fresh = measure_ratio(inst, rr1, opt);
  const RatioMeasurement reused = measure_ratio(inst, rr2, opt, fresh.bounds);
  EXPECT_DOUBLE_EQ(fresh.ratio_vs_lb, reused.ratio_vs_lb);
  EXPECT_DOUBLE_EQ(fresh.cost_power, reused.cost_power);
}

TEST(MeasureRatio, LbCertifiedPropagatesFromBounds) {
  workload::Rng rng(17);
  const Instance inst =
      workload::poisson_load(25, 1, 0.85, workload::ExponentialSize{1.0}, rng);
  RoundRobin rr;
  RatioOptions opt;
  opt.k = 2.0;
  const RatioMeasurement m = measure_ratio(inst, rr, opt);
  EXPECT_EQ(m.lb_certified, m.bounds.lb_certified);
  EXPECT_TRUE(m.lb_certified);  // integer k with LP: both certificates apply
  EXPECT_GT(m.ratio_vs_lb, 0.0);
}

TEST(MeasureRatio, DenormalLowerBoundFlagsDegenerate) {
  // Sizes so small that sum p^k underflows: cost / lb would round to inf and
  // masquerade as an unboundedly bad instance.  The measurement must flag
  // the degenerate denominator and leave ratio_vs_lb unset instead.
  std::vector<std::pair<Time, Work>> pairs;
  for (int i = 0; i < 4; ++i) pairs.emplace_back(0.0, 1e-170);
  const Instance inst = Instance::from_pairs(pairs);
  RoundRobin rr;
  RatioOptions opt;
  opt.k = 2.0;
  opt.with_lp = false;
  const RatioMeasurement m = measure_ratio(inst, rr, opt);
  EXPECT_TRUE(m.lb_degenerate);
  EXPECT_DOUBLE_EQ(m.ratio_vs_lb, 0.0);
  EXPECT_FALSE(m.lb_certified);
}

TEST(MeasureRatio, HealthyLowerBoundIsNotFlagged) {
  workload::Rng rng(19);
  const Instance inst =
      workload::poisson_load(20, 1, 0.8, workload::ExponentialSize{1.0}, rng);
  RoundRobin rr;
  RatioOptions opt;
  opt.k = 2.0;
  opt.with_lp = false;
  const RatioMeasurement m = measure_ratio(inst, rr, opt);
  EXPECT_FALSE(m.lb_degenerate);
  EXPECT_GT(m.ratio_vs_lb, 0.0);
}

TEST(MeasureRatio, RecordsConfiguration) {
  workload::Rng rng(13);
  const Instance inst =
      workload::poisson_load(20, 2, 0.8, workload::ExponentialSize{1.0}, rng);
  RoundRobin rr;
  RatioOptions opt;
  opt.k = 3.0;
  opt.machines = 2;
  opt.speed = 1.5;
  opt.with_lp = false;
  const RatioMeasurement m = measure_ratio(inst, rr, opt);
  EXPECT_EQ(m.policy, "rr");
  EXPECT_DOUBLE_EQ(m.k, 3.0);
  EXPECT_EQ(m.machines, 2);
  EXPECT_DOUBLE_EQ(m.speed, 1.5);
}

}  // namespace
}  // namespace tempofair::analysis
