// Hand-calculated values for the dual-fitting construction on tiny
// instances -- pinning down the exact semantics of alpha (the rank-averaged
// overloaded sum vs. the plain underloaded integral) and beta.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/dualfit.h"
#include "core/engine.h"
#include "policies/round_robin.h"

namespace tempofair::analysis {
namespace {

Schedule run_rr(const Instance& inst, double speed, int machines) {
  RoundRobin rr;
  EngineOptions eo;
  eo.speed = speed;
  eo.machines = machines;
  return EngineCore().run(inst, rr, eo);
}

TEST(DualFitHandCalc, TwoUnitJobsOverloadedAlphas) {
  // Two unit jobs at t=0 on one machine at speed eta: both finish at
  // C = 2/eta, flows F = C, every instant overloaded (n_t = 2 >= m = 1).
  // k = 2.  Ranks: job0 = 1, job1 = 2 (ties by id).
  //   alpha_0 = int_0^C [2t]/2 dt            = C^2/2      - eps F^2
  //   alpha_1 = int_0^C [2t + 2t]/2 dt       = C^2        - eps F^2
  //   sum     = 1.5 C^2 - 2 eps C^2.
  const double k = 2.0, eps = 0.05;
  const double eta = theorem1_speed(k, eps);
  const Schedule s = run_rr(Instance::batch(std::vector<Work>{1.0, 1.0}), eta, 1);
  DualFitOptions opt;
  opt.k = k;
  opt.eps = eps;
  const DualFitResult r = dual_fit_certificate(s, opt);
  const double C = 2.0 / eta;
  EXPECT_NEAR(r.rr_power, 2.0 * C * C, 1e-12);
  EXPECT_NEAR(r.alpha_sum, (1.5 - 2.0 * eps) * C * C, 1e-9);
  // beta identity: m * int beta = (1+eps)(1/2-3eps) * RR^k.
  EXPECT_NEAR(r.beta_term, (1.0 + eps) * (0.5 - 3.0 * eps) * r.rr_power, 1e-9);
  EXPECT_TRUE(r.certificate_valid());
}

TEST(DualFitHandCalc, UnderloadedUsesFullAgeIntegral) {
  // Two unit jobs on three machines: n_t = 2 < m = 3, always underloaded.
  // alpha_j = int_0^{C} k t^{k-1} dt - eps F^k = F^k (1 - eps), each.
  const double k = 2.0, eps = 0.05;
  const double eta = theorem1_speed(k, eps);
  const Schedule s = run_rr(Instance::batch(std::vector<Work>{1.0, 1.0}), eta, 3);
  DualFitOptions opt;
  opt.k = k;
  opt.eps = eps;
  const DualFitResult r = dual_fit_certificate(s, opt);
  const double F = 1.0 / eta;  // each job alone on its machine
  EXPECT_NEAR(r.rr_power, 2.0 * F * F, 1e-12);
  EXPECT_NEAR(r.alpha_sum, 2.0 * F * F * (1.0 - eps), 1e-9);
  EXPECT_TRUE(r.certificate_valid());
}

TEST(DualFitHandCalc, BoundaryNtEqualsMIsOverloaded) {
  // n_t == m counts as overloaded (all machines busy): two jobs on two
  // machines must use the rank-averaged alpha, not the underloaded one.
  //   alpha_0 = C^2/2 - eps F^2,  alpha_1 = C^2 - eps F^2  with C = 1/eta
  //   (each job still runs at full machine rate: min(1, m/n) = 1).
  const double k = 2.0, eps = 0.05;
  const double eta = theorem1_speed(k, eps);
  const Schedule s = run_rr(Instance::batch(std::vector<Work>{1.0, 1.0}), eta, 2);
  DualFitOptions opt;
  opt.k = k;
  opt.eps = eps;
  const DualFitResult r = dual_fit_certificate(s, opt);
  const double C = 1.0 / eta;
  EXPECT_NEAR(r.alpha_sum, 1.5 * C * C - 2.0 * eps * C * C, 1e-9);
}

TEST(DualFitHandCalc, RankTieBreaksById) {
  // Same release, different sizes: job0 (size 2) outlives job1 (size 1).
  // While both alive, job0's rank is 1 and job1's is 2 by the (release, id)
  // order; after job1 completes, job0 is alone with rank 1.
  const double k = 1.0, eps = 0.05;
  const double eta = theorem1_speed(k, eps);  // = 2(1+10eps)
  const Schedule s = run_rr(Instance::batch(std::vector<Work>{2.0, 1.0}), eta, 1);
  DualFitOptions opt;
  opt.k = k;
  opt.eps = eps;
  const DualFitResult r = dual_fit_certificate(s, opt);
  // Shared phase [0, T1], T1 = 2/eta (job1 done, each got 1 unit).  Then
  // job0 alone for 1/eta more: C0 = 3/eta.  k=1:
  //   alpha_0 = int_0^{T1} 1/2 + int_{T1}^{C0} 1  = T1/2 + 1/eta - eps F0
  //   alpha_1 = int_0^{T1} (1 + 1)/2              = T1      - eps F1
  const double T1 = 2.0 / eta, C0 = 3.0 / eta;
  const double expected =
      (T1 / 2.0 + 1.0 / eta - eps * C0) + (T1 - eps * T1);
  EXPECT_NEAR(r.alpha_sum, expected, 1e-9);
  EXPECT_TRUE(r.certificate_valid());
}

TEST(DualFitHandCalc, IdleGapSplitsBetaPieces) {
  // Two far-apart jobs: beta is two disjoint bumps; the certificate still
  // validates and the beta identity holds across the gap.
  const double k = 2.0, eps = 0.05;
  const double eta = theorem1_speed(k, eps);
  const Instance inst = Instance::from_pairs(
      std::vector<std::pair<Time, Work>>{{0.0, 1.0}, {100.0, 1.0}});
  const Schedule s = run_rr(inst, eta, 1);
  DualFitOptions opt;
  opt.k = k;
  opt.eps = eps;
  const DualFitResult r = dual_fit_certificate(s, opt);
  EXPECT_NEAR(r.beta_term, (1.0 + eps) * (0.5 - 3.0 * eps) * r.rr_power, 1e-9);
  EXPECT_TRUE(r.certificate_valid());
}

}  // namespace
}  // namespace tempofair::analysis
