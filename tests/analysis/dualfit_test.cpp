#include "analysis/dualfit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "core/metrics.h"
#include "lpsolve/flowtime_lp.h"
#include "lpsolve/lower_bounds.h"
#include "policies/round_robin.h"
#include "workload/adversarial.h"
#include "workload/generators.h"

namespace tempofair::analysis {
namespace {

Schedule run_rr(const Instance& inst, double speed, int machines = 1) {
  RoundRobin rr;
  EngineOptions eo;
  eo.speed = speed;
  eo.machines = machines;
  eo.record_trace = true;
  return EngineCore().run(inst, rr, eo);
}

TEST(DualFit, RequiresTrace) {
  RoundRobin rr;
  EngineOptions eo;
  eo.record_trace = false;
  const Schedule s = EngineCore().run(Instance::batch(std::vector<Work>{1.0}), rr, eo);
  EXPECT_THROW((void)dual_fit_certificate(s, DualFitOptions{}),
               std::invalid_argument);
}

TEST(DualFit, RejectsBadParameters) {
  const Schedule s = run_rr(Instance::batch(std::vector<Work>{1.0}), 1.0);
  DualFitOptions opt;
  opt.k = 0.5;
  EXPECT_THROW((void)dual_fit_certificate(s, opt), std::invalid_argument);
  opt.k = 2.0;
  opt.eps = 0.0;
  EXPECT_THROW((void)dual_fit_certificate(s, opt), std::invalid_argument);
  opt.eps = 0.2;
  EXPECT_THROW((void)dual_fit_certificate(s, opt), std::invalid_argument);
}

TEST(DualFit, Theorem1SpeedFormula) {
  EXPECT_DOUBLE_EQ(theorem1_speed(1.0, 0.05), 3.0);
  EXPECT_DOUBLE_EQ(theorem1_speed(2.0, 0.05), 6.0);
  EXPECT_DOUBLE_EQ(theorem1_speed(2.0, 0.1), 8.0);
}

TEST(DualFit, SingleJobAlphaByHand) {
  // One job, size p, alone: overloaded the whole time (n_t = 1 >= m = 1).
  // alpha = integral_0^{C} k t^{k-1} / 1 dt - eps F^k = F^k (1 - eps).
  // With speed eta, F = p / eta.
  const double k = 2.0, eps = 0.05;
  const double eta = theorem1_speed(k, eps);
  const Schedule s = run_rr(Instance::batch(std::vector<Work>{3.0}), eta);
  DualFitOptions opt;
  opt.k = k;
  opt.eps = eps;
  const DualFitResult r = dual_fit_certificate(s, opt);
  const double F = 3.0 / eta;
  EXPECT_NEAR(r.rr_power, F * F, 1e-9);
  EXPECT_NEAR(r.alpha_sum, F * F * (1.0 - eps), 1e-9);
  // beta integral: (1 + delta) * F * (1/2 - 3 eps) * F^{k-1}.
  EXPECT_NEAR(r.beta_term, (1.0 + eps) * (0.5 - 3.0 * eps) * F * F, 1e-9);
  EXPECT_TRUE(r.certificate_valid());
}

TEST(DualFit, Lemma2IsExactIdentity) {
  // Lemma 2's proof is an identity: beta_term == (1+delta)(1/2-3eps) RR^k.
  workload::Rng rng(7);
  const Instance inst =
      workload::poisson_load(50, 1, 0.9, workload::ExponentialSize{1.0}, rng);
  const double k = 2.0, eps = 0.05;
  const Schedule s = run_rr(inst, theorem1_speed(k, eps));
  DualFitOptions opt;
  opt.k = k;
  opt.eps = eps;
  const DualFitResult r = dual_fit_certificate(s, opt);
  EXPECT_NEAR(r.beta_term, (1.0 + eps) * (0.5 - 3.0 * eps) * r.rr_power,
              1e-6 * r.rr_power);
}

struct DualFitCase {
  double k;
  int machines;
  std::uint64_t seed;
};

class DualFitTheoremSweep : public ::testing::TestWithParam<DualFitCase> {};

TEST_P(DualFitTheoremSweep, CertificateValidAtTheoremSpeed) {
  const auto [k, machines, seed] = GetParam();
  const double eps = 0.05;  // <= 1/15, see header note on Lemma 4
  workload::Rng rng(seed);
  const Instance inst = workload::poisson_load(
      60, machines, 0.95, workload::ExponentialSize{1.5}, rng);
  const Schedule s = run_rr(inst, theorem1_speed(k, eps), machines);
  DualFitOptions opt;
  opt.k = k;
  opt.eps = eps;
  const DualFitResult r = dual_fit_certificate(s, opt);
  EXPECT_TRUE(r.lemma1_ok) << "alpha_sum=" << r.alpha_sum
                           << " rr_power=" << r.rr_power;
  EXPECT_TRUE(r.lemma2_ok);
  EXPECT_TRUE(r.feasible) << "violation=" << r.max_relative_violation;
  EXPECT_TRUE(r.objective_ok) << "ratio=" << r.objective_ratio;
  EXPECT_TRUE(r.certificate_valid());
  EXPECT_GT(r.implied_lk_ratio, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    KandMachines, DualFitTheoremSweep,
    ::testing::Values(DualFitCase{1.0, 1, 11}, DualFitCase{2.0, 1, 12},
                      DualFitCase{3.0, 1, 13}, DualFitCase{1.0, 4, 14},
                      DualFitCase{2.0, 4, 15}, DualFitCase{3.0, 4, 16},
                      DualFitCase{2.0, 2, 17}, DualFitCase{2.0, 8, 18}),
    [](const auto& param_info) {
      return "k" + std::to_string(static_cast<int>(param_info.param.k)) +
             "_m" + std::to_string(param_info.param.machines);
    });

TEST(DualFit, CertificateValidOnAdversarialFamilies) {
  const double k = 2.0, eps = 0.05;
  const double eta = theorem1_speed(k, eps);
  for (const Instance& inst :
       {workload::rr_l2_hard(20), workload::srpt_starvation(40, 15.0),
        workload::overload_pulse(4, 10, 2), workload::staircase(20)}) {
    const Schedule s = run_rr(inst, eta);
    DualFitOptions opt;
    opt.k = k;
    opt.eps = eps;
    const DualFitResult r = dual_fit_certificate(s, opt);
    EXPECT_TRUE(r.certificate_valid()) << inst.summary();
  }
}

TEST(DualFit, Lemmas1And2HoldAtAnySpeed) {
  // Lemmas 1 and 2 are pure algebra over the RR schedule's alive sets and
  // flows -- they hold at ANY speed.  The speed premise of Theorem 1 enters
  // only through dual FEASIBILITY on worst-case instances (Lemma 4 needs
  // eta(1/2 - 3 eps) >= k); on easy instances the huge gamma can mask it.
  workload::Rng rng(21);
  const Instance inst = workload::rr_l2_hard(25);
  DualFitOptions opt;
  opt.k = 2.0;
  opt.eps = 0.05;
  for (double speed : {1.0, 2.0, theorem1_speed(2.0, 0.05)}) {
    const DualFitResult r = dual_fit_certificate(run_rr(inst, speed), opt);
    EXPECT_TRUE(r.lemma1_ok) << "speed " << speed;
    EXPECT_TRUE(r.lemma2_ok) << "speed " << speed;
    EXPECT_TRUE(r.objective_ok) << "speed " << speed;
  }
}

TEST(DualFit, FeasibilityMarginShrinksAtLowSpeedWithTightGamma) {
  // With gamma forced down to Lemma 3's bare minimum the certificate loses
  // its slack; the worst (smallest) constraint slack at speed 1 must be
  // strictly smaller than at the theorem speed on the hard family.
  const Instance inst = workload::rr_l2_hard(25);
  DualFitOptions opt;
  opt.k = 2.0;
  opt.eps = 0.05;
  opt.gamma = 2.0 * (1.0 / 0.05);  // k (1/eps)^{k-1}, far below the default
  const DualFitResult slow = dual_fit_certificate(run_rr(inst, 1.0), opt);
  const DualFitResult fast =
      dual_fit_certificate(run_rr(inst, theorem1_speed(2.0, 0.05)), opt);
  EXPECT_LT(slow.min_slack, fast.min_slack);
}

TEST(DualFit, DualObjectiveAtMostGammaLpValue) {
  // Weak duality: a feasible dual's objective is at most the gamma-scaled
  // LP optimum (checked against the MCMF solve of the same LP).
  workload::Rng rng(23);
  const Instance inst = workload::poisson_load(
      20, 1, 0.8, workload::UniformSize{0.5, 2.0}, rng);
  const double k = 2.0, eps = 0.05;
  const Schedule s = run_rr(inst, theorem1_speed(k, eps));
  DualFitOptions opt;
  opt.k = k;
  opt.eps = eps;
  const DualFitResult r = dual_fit_certificate(s, opt);
  ASSERT_TRUE(r.feasible);

  lpsolve::FlowtimeLpOptions lp;
  lp.k = k;
  lp.slot = 0.25;
  const double lp_gamma = r.gamma * lpsolve::solve_flowtime_lp(inst, lp).lp_value;
  // The continuous LP is at least the discretized one, so the dual objective
  // must not exceed gamma * LP_discrete by more than the discretization gap;
  // use a 10% cushion.
  EXPECT_LE(r.dual_objective, lp_gamma * 1.1);
}

TEST(DualFit, ImpliedRatioBoundsMeasuredRatio) {
  // The certificate's implied l_k ratio must upper-bound the actually
  // measured RR-vs-proxy ratio (since proxy >= OPT).
  workload::Rng rng(29);
  const Instance inst =
      workload::poisson_load(40, 1, 0.9, workload::ExponentialSize{1.0}, rng);
  const double k = 2.0, eps = 0.05;
  const Schedule s = run_rr(inst, theorem1_speed(k, eps));
  DualFitOptions opt;
  opt.k = k;
  opt.eps = eps;
  const DualFitResult r = dual_fit_certificate(s, opt);
  ASSERT_TRUE(r.certificate_valid());

  lpsolve::OptBoundsOptions bo;
  bo.k = k;
  bo.with_lp = false;
  const auto bounds = lpsolve::opt_bounds(inst, bo);
  const double measured = std::pow(r.rr_power / bounds.proxy_ub, 1.0 / k);
  EXPECT_LE(measured, r.implied_lk_ratio * (1.0 + 1e-9));
}

TEST(DualFit, GammaOverrideIsRespected) {
  const Schedule s = run_rr(Instance::batch(std::vector<Work>{1.0}), 6.0);
  DualFitOptions opt;
  opt.k = 2.0;
  opt.eps = 0.05;
  opt.gamma = 123.0;
  const DualFitResult r = dual_fit_certificate(s, opt);
  EXPECT_DOUBLE_EQ(r.gamma, 123.0);
}

TEST(DualFit, DefaultGammaMatchesPaperFormula) {
  const Schedule s = run_rr(Instance::batch(std::vector<Work>{1.0}), 6.0);
  DualFitOptions opt;
  opt.k = 2.0;
  opt.eps = 0.05;
  const DualFitResult r = dual_fit_certificate(s, opt);
  EXPECT_NEAR(r.gamma, 2.0 * std::pow(2.0 / 0.05, 2.0), 1e-9);
}

TEST(DualFit, UnderloadedOnlyScheduleIsCertified) {
  // More machines than jobs throughout: every time step is underloaded.
  const Instance inst = Instance::batch(std::vector<Work>{1.0, 2.0, 3.0});
  const double k = 2.0, eps = 0.05;
  const Schedule s = run_rr(inst, theorem1_speed(k, eps), 8);
  DualFitOptions opt;
  opt.k = k;
  opt.eps = eps;
  const DualFitResult r = dual_fit_certificate(s, opt);
  EXPECT_TRUE(r.certificate_valid());
}

}  // namespace
}  // namespace tempofair::analysis
