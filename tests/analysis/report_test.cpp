#include "analysis/report.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace tempofair::analysis {
namespace {

TEST(Table, RejectsEmptyColumns) {
  EXPECT_THROW(Table("t", {}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t("t", {"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, PrintsTitleHeaderAndRows) {
  Table t("My Experiment", {"x", "value"});
  t.add_row({"1", "10"});
  t.add_row({"2", "20"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("My Experiment"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  EXPECT_NE(s.find("20"), std::string::npos);
}

TEST(Table, CsvHasHeaderAndCommas) {
  Table t("t", {"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, ColumnsAreAligned) {
  Table t("t", {"name", "v"});
  t.add_row({"short", "1"});
  t.add_row({"a_much_longer_name", "2"});
  std::ostringstream os;
  t.print(os);
  // Both value cells must start at the same column.
  std::istringstream is(os.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  const std::size_t pos1 = lines[lines.size() - 2].find('1');
  const std::size_t pos2 = lines[lines.size() - 1].find('2');
  EXPECT_EQ(pos1, pos2);
}

TEST(TableNum, FormatsCompactly) {
  EXPECT_EQ(Table::num(1.0), "1");
  EXPECT_EQ(Table::num(3.14159), "3.142");
  EXPECT_EQ(Table::num(2.5, 2), "2.50");
}

TEST(TableNum, SpellsSpecialValues) {
  EXPECT_EQ(Table::num(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(Table::num(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(Table::num(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(Table::num(std::numeric_limits<double>::infinity(), 2), "inf");
}

TEST(Table, RowCountTracked) {
  Table t("t", {"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace tempofair::analysis
