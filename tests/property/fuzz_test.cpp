// Randomized stress tests: extreme instances through every policy, checking
// the full-schedule consistency contract (validate()) plus cross-policy
// relations that must hold regardless of the input:
//   * SRPT's total (l1) flow is minimal on one machine;
//   * the OPT-bound bracket stays ordered;
//   * the dual-fitting certificate never crashes and its Lemma-1/2 algebra
//     holds at any speed (they are schedule-independent identities);
//   * time-scaling invariance: scaling releases and sizes by c scales every
//     completion by c.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/dualfit.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "lpsolve/lower_bounds.h"
#include "policies/registry.h"
#include "workload/rng.h"

namespace tempofair {
namespace {

/// Random instance with nasty features: huge size spread, tied releases,
/// bursts, occasional near-zero gaps.
Instance fuzz_instance(workload::Rng& rng) {
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 60));
  std::vector<Job> jobs;
  jobs.reserve(n);
  Time t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.uniform_int(0, 3)) {
      case 0: break;                              // simultaneous arrival
      case 1: t += rng.uniform(1e-9, 1e-3); break; // near-tie
      case 2: t += rng.uniform(0.01, 2.0); break;  // normal gap
      default: t += rng.uniform(2.0, 50.0); break; // long idle gap
    }
    const double magnitude = rng.uniform(-4.0, 4.0);  // sizes 1e-4 .. 1e4
    const double size = std::pow(10.0, magnitude);
    const double weight = rng.bernoulli(0.5) ? 1.0 : rng.uniform(0.1, 10.0);
    jobs.push_back(Job{static_cast<JobId>(i), t, size, weight});
  }
  return Instance::from_jobs(std::move(jobs));
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, EveryPolicyProducesConsistentSchedules) {
  workload::Rng rng(GetParam());
  const Instance inst = fuzz_instance(rng);
  const int machines = static_cast<int>(rng.uniform_int(1, 4));
  const double speed = rng.uniform(0.5, 5.0);
  for (const std::string& spec : builtin_policy_specs()) {
    auto policy = make_policy(spec);
    EngineOptions eo;
    eo.machines = machines;
    eo.speed = speed;
    eo.max_steps = 5'000'000;
    const Schedule s = EngineCore().run(inst, *policy, eo);
    ASSERT_NO_THROW(s.validate()) << spec << " on " << inst.summary();
  }
}

TEST_P(FuzzSweep, SrptMinimizesTotalFlowOnOneMachine) {
  workload::Rng rng(GetParam() + 1'000'000);
  const Instance inst = fuzz_instance(rng);
  EngineOptions eo;
  eo.record_trace = false;
  auto srpt = make_policy("srpt");
  const double best = flow_lk_power(EngineCore().run(inst, *srpt, eo), 1.0);
  for (const std::string& spec : builtin_policy_specs()) {
    auto policy = make_policy(spec);
    const double cost = flow_lk_power(EngineCore().run(inst, *policy, eo), 1.0);
    EXPECT_GE(cost, best * (1.0 - 1e-7)) << spec;
  }
}

TEST_P(FuzzSweep, DualFitAlgebraHoldsAtArbitrarySpeed) {
  workload::Rng rng(GetParam() + 2'000'000);
  const Instance inst = fuzz_instance(rng);
  const double speed = rng.uniform(0.5, 8.0);
  const int machines = static_cast<int>(rng.uniform_int(1, 4));
  auto rr = make_policy("rr");
  EngineOptions eo;
  eo.machines = machines;
  eo.speed = speed;
  const Schedule s = EngineCore().run(inst, *rr, eo);
  analysis::DualFitOptions opt;
  opt.k = static_cast<double>(rng.uniform_int(1, 3));
  opt.eps = 0.05;
  const auto cert = analysis::dual_fit_certificate(s, opt);
  // Lemmas 1-2 and the objective bound are identities of the construction,
  // independent of speed (see dualfit.h); feasibility is NOT asserted here.
  EXPECT_TRUE(cert.lemma1_ok) << inst.summary() << " speed=" << speed;
  EXPECT_TRUE(cert.lemma2_ok);
  EXPECT_TRUE(cert.objective_ok);
}

TEST_P(FuzzSweep, TimeScalingInvariance) {
  workload::Rng rng(GetParam() + 3'000'000);
  const Instance inst = fuzz_instance(rng);
  const double c = std::pow(10.0, rng.uniform(-2.0, 2.0));
  std::vector<Job> scaled(inst.jobs().begin(), inst.jobs().end());
  for (Job& j : scaled) {
    j.release *= c;
    j.size *= c;
  }
  const Instance scaled_inst = Instance::from_jobs(std::move(scaled));
  for (const char* spec : {"rr", "srpt", "fcfs", "laps:0.5"}) {
    auto p1 = make_policy(spec);
    auto p2 = make_policy(spec);
    EngineOptions eo;
    eo.record_trace = false;
    const Schedule a = EngineCore().run(inst, *p1, eo);
    const Schedule b = EngineCore().run(scaled_inst, *p2, eo);
    for (JobId j = 0; j < inst.n(); ++j) {
      EXPECT_NEAR(b.completion(j), c * a.completion(j),
                  1e-6 * std::max(1.0, c * a.completion(j)))
          << spec << " job " << j;
    }
  }
}

TEST_P(FuzzSweep, BoundBracketStaysOrdered) {
  workload::Rng rng(GetParam() + 4'000'000);
  const Instance inst = fuzz_instance(rng);
  lpsolve::OptBoundsOptions bo;
  bo.k = static_cast<double>(rng.uniform_int(1, 3));
  bo.with_lp = inst.n() <= 30;  // keep the fuzz suite fast
  const auto b = lpsolve::opt_bounds(inst, bo);
  EXPECT_LE(b.best_lb, b.proxy_ub * (1.0 + 1e-7)) << inst.summary();
  EXPECT_GE(b.best_lb, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace tempofair
