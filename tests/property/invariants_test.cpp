// Cross-policy property sweeps plus the invariant layer's own teeth.
//
// Part 1 runs every (policy, machines, speed, workload) combination through
// the RunRequest facade with EXHAUSTIVE invariant checking -- a violation
// throws, so every sweep case doubles as an end-to-end invariant test --
// and then replays the recorded trace through the offline battery
// (check_schedule).
//
// Part 2 is the negative suite: hand-built corrupted schedules, each
// violating exactly one structural property, must trip exactly the targeted
// checker and no other.  This pins down both the detection power and the
// tolerance calibration of every built-in checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/invariants.h"
#include "core/metrics.h"
#include "netsim/link_sim.h"
#include "netsim/schedulers.h"
#include "policies/registry.h"
#include "workload/adversarial.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

struct SweepCase {
  std::string policy;
  int machines;
  double speed;
  std::string workload;  // "poisson" | "bimodal" | "burst" | "adversarial"
  std::uint64_t seed;
};

std::string case_name(const SweepCase& c) {
  std::string p = c.policy;
  for (char& ch : p) {
    if (ch == ':' || ch == '.' || ch == ',') ch = '_';
  }
  return p + "_m" + std::to_string(c.machines) + "_s" +
         std::to_string(static_cast<int>(c.speed * 10)) + "_" + c.workload;
}

Instance make_workload(const SweepCase& c) {
  workload::Rng rng(c.seed);
  if (c.workload == "poisson") {
    return workload::poisson_load(50, c.machines, 0.9,
                                  workload::ExponentialSize{1.5}, rng);
  }
  if (c.workload == "bimodal") {
    return workload::poisson_load(50, c.machines, 0.85,
                                  workload::BimodalSize{0.9, 1.0, 25.0}, rng);
  }
  if (c.workload == "burst") {
    return workload::bursty_stream(5, 12, 8.0, workload::UniformSize{0.5, 1.5}, rng);
  }
  return workload::rr_l2_hard(15);
}

[[nodiscard]] InvariantRunProfile profile_for(const std::string& spec,
                                              int machines, double speed) {
  const std::unique_ptr<Policy> policy = make_policy(spec);
  InvariantRunProfile profile;
  profile.machines = machines;
  profile.speed = speed;
  profile.policy = std::string(policy->name());
  profile.traits = policy->invariant_traits();
  return profile;
}

class PolicyInvariants : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PolicyInvariants, ScheduleIsConsistent) {
  const SweepCase& c = GetParam();
  const Instance inst = make_workload(c);
  RunRequest request;
  request.policy = c.policy;
  request.machines = c.machines;
  request.speed = c.speed;
  // Exhaustive: every epoch is checked and a violation throws, so this
  // sweep is the acceptance gate "exhaustive mode passes on all policies".
  request.invariants = InvariantMode::kExhaustive;
  const RunResult result = run(inst, request);
  const Schedule& s = result.schedule;
  EXPECT_TRUE(result.invariants.ok()) << summarize(result.invariants);
  EXPECT_GT(result.invariants.epochs_checked, 0u);

  // (1) Full consistency: completions sane, trace within capacity, work
  // conserved per job.
  ASSERT_NO_THROW(s.validate());

  // (1b) The offline battery must agree with the inline checkers.
  const InvariantStats offline =
      check_schedule(s, profile_for(c.policy, c.machines, c.speed));
  EXPECT_TRUE(offline.ok()) << "offline battery: " << summarize(offline);

  // (2) Every completion at or after release + size/speed.
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_GE(s.completion(j),
              inst.job(j).release + inst.job(j).size / c.speed - 1e-6);
  }

  // (3) Makespan at least the last release.
  EXPECT_GE(s.makespan(), inst.max_release() - 1e-9);

  // (4) Work conservation: no idle machine while more jobs than running.
  //     (Weak form -- total traced work equals total size -- is already in
  //     validate(); here check the busy time lower bound.)
  const double total_busy = [&] {
    double t = 0.0;
    for (const TraceIntervalView iv : s.trace()) t += iv.length();
    return t;
  }();
  EXPECT_GE(total_busy, inst.total_work() / (c.speed * c.machines) - 1e-6);
}

TEST_P(PolicyInvariants, DeterministicAcrossRuns) {
  const SweepCase& c = GetParam();
  const Instance inst = make_workload(c);
  RunRequest request;
  request.policy = c.policy;
  request.machines = c.machines;
  request.speed = c.speed;
  request.record_trace = false;
  const RunResult a = run(inst, request);
  const RunResult b = run(inst, request);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_DOUBLE_EQ(a.schedule.completion(j), b.schedule.completion(j))
        << "job " << j;
  }
}

TEST_P(PolicyInvariants, NonClairvoyantPoliciesIgnoreSizes) {
  const SweepCase& c = GetParam();
  const auto probe = make_policy(c.policy);
  if (probe->clairvoyant()) GTEST_SKIP() << "clairvoyant policy";
  const Instance inst = make_workload(c);
  RunRequest request;
  request.policy = c.policy;
  request.machines = c.machines;
  request.speed = c.speed;
  request.record_trace = false;
  RunRequest hidden = request;
  hidden.hide_sizes = true;
  const RunResult a = run(inst, request);
  const RunResult b = run(inst, hidden);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_NEAR(a.schedule.completion(j), b.schedule.completion(j), 1e-7)
        << "job " << j;
  }
}

std::vector<SweepCase> all_cases() {
  std::vector<SweepCase> cases;
  std::uint64_t seed = 1000;
  for (const char* policy :
       {"rr", "srpt", "sjf", "fcfs", "setf", "wrr", "mlfq", "laps:0.5",
        "qrr:0.5,0.01", "hdf", "hrdf", "wprr"}) {
    for (int machines : {1, 3}) {
      for (double speed : {1.0, 2.5}) {
        for (const char* wl : {"poisson", "bimodal"}) {
          cases.push_back(SweepCase{policy, machines, speed, wl, seed++});
        }
      }
    }
    cases.push_back(SweepCase{policy, 1, 1.0, "adversarial", seed++});
    cases.push_back(SweepCase{policy, 2, 1.0, "burst", seed++});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariants,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& param_info) { return case_name(param_info.param); });

// --- negative suite ---------------------------------------------------------
// Each corrupted schedule violates exactly one structural property; the
// offline battery must flag exactly the targeted checker.

/// Asserts the battery finds at least one violation and every report names
/// `check` -- the corruption trips its target and nothing else.
void expect_trips_exactly(const Schedule& schedule,
                          const InvariantRunProfile& profile,
                          std::string_view check) {
  const InvariantStats stats = check_schedule(schedule, profile);
  ASSERT_FALSE(stats.ok()) << "corruption went undetected";
  ASSERT_FALSE(stats.reports.empty());
  for (const InvariantViolation& v : stats.reports) {
    EXPECT_EQ(v.check, check) << v.detail;
  }
}

[[nodiscard]] InvariantRunProfile plain_profile(int machines, double speed) {
  InvariantRunProfile profile;
  profile.machines = machines;
  profile.speed = speed;
  profile.policy = "corrupted";
  return profile;
}

TEST(InvariantNegative, RateAboveSpeedTripsRateBounds) {
  // Two jobs trade a rate of 1.5 on speed-1 machines.  With two machines
  // the capacity sum stays legal, the trade keeps every epoch fully busy,
  // and each job still receives exactly its size by its (physically
  // feasible) completion time -- only the per-rate bound can fire.
  Schedule s(2, /*machines=*/2, /*speed=*/1.0);
  s.admit_job(0, 0.0, 2.0, 1.0);
  s.admit_job(1, 0.0, 2.0, 1.0);
  s.push_interval(0.0, 1.0, {RateShare{0, 1.5}, RateShare{1, 0.5}});
  s.push_interval(1.0, 2.0, {RateShare{0, 0.5}, RateShare{1, 1.5}});
  s.set_completion(0, 2.0);
  s.set_completion(1, 2.0);
  s.set_trace_recorded(true);
  expect_trips_exactly(s, plain_profile(2, 1.0), "rate_bounds");
}

TEST(InvariantNegative, OversubscribedLinkTripsCapacity) {
  // Two jobs at 0.75 each on ONE speed-1 machine: every individual rate is
  // legal, the sum is not.
  Schedule s(2, /*machines=*/1, /*speed=*/1.0);
  s.admit_job(0, 0.0, 1.5, 1.0);
  s.admit_job(1, 0.0, 1.5, 1.0);
  s.push_interval(0.0, 2.0, {RateShare{0, 0.75}, RateShare{1, 0.75}});
  s.set_completion(0, 2.0);
  s.set_completion(1, 2.0);
  s.set_trace_recorded(true);
  expect_trips_exactly(s, plain_profile(1, 1.0), "capacity");
}

TEST(InvariantNegative, IdledCapacityTripsWorkConservation) {
  // The machine sits idle for [1, 2] while the job is alive.  The profile
  // declares the policy work conserving, so that idling is the violation;
  // total served work still matches the size, so nothing else fires.
  Schedule s(1, /*machines=*/1, /*speed=*/1.0);
  s.admit_job(0, 0.0, 2.0, 1.0);
  s.push_interval(0.0, 1.0, {RateShare{0, 1.0}});
  s.push_interval(1.0, 2.0, {RateShare{0, 0.0}});
  s.push_interval(2.0, 3.0, {RateShare{0, 1.0}});
  s.set_completion(0, 3.0);
  s.set_trace_recorded(true);
  InvariantRunProfile profile = plain_profile(1, 1.0);
  ASSERT_TRUE(profile.traits.work_conserving);
  expect_trips_exactly(s, profile, "work_conservation");
}

TEST(InvariantNegative, LostWorkTripsCompletionConsistency) {
  // The job "completes" at t=3 with only half its work served.  The rate-0
  // tail is excused by work_conserving=false; the end-of-run accounting is
  // what must catch the missing work.
  Schedule s(1, /*machines=*/1, /*speed=*/1.0);
  s.admit_job(0, 0.0, 2.0, 1.0);
  s.push_interval(0.0, 1.0, {RateShare{0, 1.0}});
  s.push_interval(1.0, 3.0, {RateShare{0, 0.0}});
  s.set_completion(0, 3.0);
  s.set_trace_recorded(true);
  InvariantRunProfile profile = plain_profile(1, 1.0);
  profile.traits.work_conserving = false;
  expect_trips_exactly(s, profile, "completion_consistency");
}

TEST(InvariantNegative, CompletionBeforeServiceBoundTripsCompletionConsistency) {
  // No trace at all (so no epoch or accounting checks): the completion time
  // alone is impossible -- the job finishes before release + size/speed.
  Schedule s(1, /*machines=*/1, /*speed=*/1.0);
  s.admit_job(0, 1.0, 2.0, 1.0);
  s.set_completion(0, 2.5);  // earliest possible is 3.0
  s.set_trace_recorded(false);
  expect_trips_exactly(s, plain_profile(1, 1.0), "completion_consistency");
}

TEST(InvariantNegative, OverservedJobTripsMonotoneRemaining) {
  // One unit of work served for two units of time at rate 1: remaining
  // goes negative inside the epoch.
  Schedule s(1, /*machines=*/1, /*speed=*/1.0);
  s.admit_job(0, 0.0, 1.0, 1.0);
  s.push_interval(0.0, 2.0, {RateShare{0, 1.0}});
  s.set_completion(0, 1.0);
  s.set_trace_recorded(true);
  expect_trips_exactly(s, plain_profile(1, 1.0), "monotone_remaining");
}

TEST(InvariantNegative, StarvedJobTripsNoStarvation) {
  // Three alive jobs, one pinned at rate 0 -- legal for a priority policy,
  // a violation for any policy that promises to share with every alive job
  // (the RR-family no-starvation witness).
  Schedule s(3, /*machines=*/1, /*speed=*/1.0);
  s.admit_job(0, 0.0, 1.0, 1.0);
  s.admit_job(1, 0.0, 1.0, 1.0);
  s.admit_job(2, 0.0, 1.0, 1.0);
  s.push_interval(0.0, 2.0, {RateShare{0, 0.5}, RateShare{1, 0.5},
                             RateShare{2, 0.0}});
  s.push_interval(2.0, 3.0, {RateShare{2, 1.0}});
  s.set_completion(0, 2.0);
  s.set_completion(1, 2.0);
  s.set_completion(2, 3.0);
  s.set_trace_recorded(true);
  InvariantRunProfile profile = plain_profile(1, 1.0);
  profile.traits.shares_all_alive = true;
  expect_trips_exactly(s, profile, "no_starvation");
}

TEST(InvariantNegative, UnequalSharesTripTemporalFairness) {
  // Both jobs get positive rates summing to capacity, but not the equal
  // speed * min(1, m/n) share plain RR guarantees.
  Schedule s(2, /*machines=*/1, /*speed=*/1.0);
  s.admit_job(0, 0.0, 1.5, 1.0);
  s.admit_job(1, 0.0, 0.5, 1.0);
  s.push_interval(0.0, 2.0, {RateShare{0, 0.75}, RateShare{1, 0.25}});
  s.set_completion(0, 2.0);
  s.set_completion(1, 2.0);
  s.set_trace_recorded(true);
  InvariantRunProfile profile = plain_profile(1, 1.0);
  profile.traits.equal_share = true;
  expect_trips_exactly(s, profile, "temporal_fairness");
}

TEST(InvariantNegative, CleanRrRunPassesEverything) {
  // Positive control: a real engine run with the full RR trait set (work
  // conserving, shares all alive, equal share) survives the whole battery.
  workload::Rng rng(7);
  const Instance inst =
      workload::poisson_load(60, 2, 0.9, workload::ExponentialSize{1.2}, rng);
  RunRequest request;
  request.policy = "rr";
  request.machines = 2;
  request.invariants = InvariantMode::kExhaustive;
  const RunResult result = run(inst, request);
  EXPECT_TRUE(result.invariants.ok()) << summarize(result.invariants);
  const InvariantStats offline =
      check_schedule(result.schedule, profile_for("rr", 2, 1.0));
  EXPECT_TRUE(offline.ok()) << summarize(offline);
  EXPECT_GT(offline.epochs_checked, 0u);
}

TEST(InvariantNegative, NetsimLostBytesTripFlowByteConservation) {
  // Offer two flows, then drop one transmitted record: the departed bytes
  // no longer cover what flow 1 offered.
  std::vector<netsim::Packet> offered = {
      {0, 1.0, 0.0}, {1, 1.0, 0.0}, {1, 1.0, 0.5}};
  netsim::FifoScheduler fifo;
  netsim::LinkSimResult result =
      netsim::simulate_link(offered, fifo, /*link_rate=*/1.0);
  ASSERT_EQ(result.records.size(), 3u);
  result.records.pop_back();
  const InvariantStats stats =
      netsim::check_link_invariants(offered, result, 1.0);
  ASSERT_FALSE(stats.ok());
  for (const InvariantViolation& v : stats.reports) {
    EXPECT_EQ(v.check, "flow_byte_conservation") << v.detail;
  }
}

TEST(InvariantStatsApi, SummarizeAndModeRoundTrip) {
  EXPECT_EQ(parse_invariant_mode("off"), InvariantMode::kOff);
  EXPECT_EQ(parse_invariant_mode("sampled"), InvariantMode::kSampled);
  EXPECT_EQ(parse_invariant_mode("exhaustive"), InvariantMode::kExhaustive);
  EXPECT_THROW((void)parse_invariant_mode("bogus"), std::invalid_argument);
  for (const InvariantMode m : {InvariantMode::kOff, InvariantMode::kSampled,
                                InvariantMode::kExhaustive}) {
    EXPECT_EQ(parse_invariant_mode(to_string(m)), m);
  }
  InvariantStats stats;
  EXPECT_TRUE(stats.ok());
  EXPECT_NE(summarize(stats).find("ok"), std::string::npos);
  stats.violations = 2;
  EXPECT_NE(summarize(stats).find("2 violation"), std::string::npos);
}

TEST(InvariantStatsApi, RegistryListsBuiltinBattery) {
  const std::vector<std::string> names = InvariantRegistry::instance().names();
  for (const char* expected :
       {"rate_bounds", "capacity", "work_conservation", "monotone_remaining",
        "completion_consistency", "no_starvation", "temporal_fairness"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " missing from the registry";
  }
}

TEST(InvariantStatsApi, SampledModeChecksEveryNthEpoch) {
  workload::Rng rng(11);
  const Instance inst =
      workload::poisson_load(200, 1, 0.9, workload::ExponentialSize{1.0}, rng);
  RunRequest request;
  request.policy = "rr";
  request.invariants = InvariantMode::kSampled;
  request.invariant_sample_period = 8;
  const RunResult result = run(inst, request);
  EXPECT_TRUE(result.invariants.ok()) << summarize(result.invariants);
  EXPECT_GT(result.invariants.epochs_seen, result.invariants.epochs_checked);
  // Every 8th epoch: the checked count sits within one of seen / 8.
  EXPECT_NEAR(static_cast<double>(result.invariants.epochs_checked),
              static_cast<double>(result.invariants.epochs_seen) / 8.0, 1.0);
  RunRequest off = request;
  off.invariants = InvariantMode::kOff;
  const RunResult none = run(inst, off);
  EXPECT_EQ(none.invariants.epochs_seen, 0u);
  EXPECT_EQ(none.invariants.epochs_checked, 0u);
}

}  // namespace
}  // namespace tempofair
