// Cross-policy property sweeps: invariants every (policy, machines, speed,
// workload) combination must satisfy.  Parameterized so each combination is
// its own test case.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/registry.h"
#include "workload/adversarial.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

struct SweepCase {
  std::string policy;
  int machines;
  double speed;
  std::string workload;  // "poisson" | "bimodal" | "burst" | "adversarial"
  std::uint64_t seed;
};

std::string case_name(const SweepCase& c) {
  std::string p = c.policy;
  for (char& ch : p) {
    if (ch == ':' || ch == '.' || ch == ',') ch = '_';
  }
  return p + "_m" + std::to_string(c.machines) + "_s" +
         std::to_string(static_cast<int>(c.speed * 10)) + "_" + c.workload;
}

Instance make_workload(const SweepCase& c) {
  workload::Rng rng(c.seed);
  if (c.workload == "poisson") {
    return workload::poisson_load(50, c.machines, 0.9,
                                  workload::ExponentialSize{1.5}, rng);
  }
  if (c.workload == "bimodal") {
    return workload::poisson_load(50, c.machines, 0.85,
                                  workload::BimodalSize{0.9, 1.0, 25.0}, rng);
  }
  if (c.workload == "burst") {
    return workload::bursty_stream(5, 12, 8.0, workload::UniformSize{0.5, 1.5}, rng);
  }
  return workload::rr_l2_hard(15);
}

class PolicyInvariants : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PolicyInvariants, ScheduleIsConsistent) {
  const SweepCase& c = GetParam();
  const Instance inst = make_workload(c);
  const auto policy = make_policy(c.policy);
  EngineOptions eo;
  eo.machines = c.machines;
  eo.speed = c.speed;
  const Schedule s = simulate(inst, *policy, eo);

  // (1) Full consistency: completions sane, trace within capacity, work
  // conserved per job.
  ASSERT_NO_THROW(s.validate());

  // (2) Every completion at or after release + size/speed.
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_GE(s.completion(j),
              inst.job(j).release + inst.job(j).size / c.speed - 1e-6);
  }

  // (3) Makespan at least the last release.
  EXPECT_GE(s.makespan(), inst.max_release() - 1e-9);

  // (4) Work conservation: no idle machine while more jobs than running.
  //     (Weak form -- total traced work equals total size -- is already in
  //     validate(); here check the busy time lower bound.)
  const double total_busy = [&] {
    double t = 0.0;
    for (const TraceIntervalView iv : s.trace()) t += iv.length();
    return t;
  }();
  EXPECT_GE(total_busy, inst.total_work() / (c.speed * c.machines) - 1e-6);
}

TEST_P(PolicyInvariants, DeterministicAcrossRuns) {
  const SweepCase& c = GetParam();
  const Instance inst = make_workload(c);
  const auto p1 = make_policy(c.policy);
  const auto p2 = make_policy(c.policy);
  EngineOptions eo;
  eo.machines = c.machines;
  eo.speed = c.speed;
  eo.record_trace = false;
  const Schedule a = simulate(inst, *p1, eo);
  const Schedule b = simulate(inst, *p2, eo);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_DOUBLE_EQ(a.completion(j), b.completion(j)) << "job " << j;
  }
}

TEST_P(PolicyInvariants, NonClairvoyantPoliciesIgnoreSizes) {
  const SweepCase& c = GetParam();
  const auto probe = make_policy(c.policy);
  if (probe->clairvoyant()) GTEST_SKIP() << "clairvoyant policy";
  const Instance inst = make_workload(c);
  const auto open = make_policy(c.policy);
  const auto blind = make_policy(c.policy);
  EngineOptions eo;
  eo.machines = c.machines;
  eo.speed = c.speed;
  eo.record_trace = false;
  EngineOptions hidden = eo;
  hidden.hide_sizes = true;
  const Schedule a = simulate(inst, *open, eo);
  const Schedule b = simulate(inst, *blind, hidden);
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_NEAR(a.completion(j), b.completion(j), 1e-7) << "job " << j;
  }
}

std::vector<SweepCase> all_cases() {
  std::vector<SweepCase> cases;
  std::uint64_t seed = 1000;
  for (const char* policy :
       {"rr", "srpt", "sjf", "fcfs", "setf", "wrr", "mlfq", "laps:0.5",
        "qrr:0.5,0.01", "hdf", "hrdf", "wprr"}) {
    for (int machines : {1, 3}) {
      for (double speed : {1.0, 2.5}) {
        for (const char* wl : {"poisson", "bimodal"}) {
          cases.push_back(SweepCase{policy, machines, speed, wl, seed++});
        }
      }
    }
    cases.push_back(SweepCase{policy, 1, 1.0, "adversarial", seed++});
    cases.push_back(SweepCase{policy, 2, 1.0, "burst", seed++});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariants,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& param_info) { return case_name(param_info.param); });

}  // namespace
}  // namespace tempofair
