// Miniature versions of the experiment suite, asserting the qualitative
// shapes the paper predicts (full-size runs live in bench/).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/competitive.h"
#include "analysis/dualfit.h"
#include "core/engine.h"
#include "core/fairness.h"
#include "core/metrics.h"
#include "policies/registry.h"
#include "policies/round_robin.h"
#include "workload/adversarial.h"
#include "workload/generators.h"

namespace tempofair {
namespace {

// T1 in miniature: RR at speed 4.4 is O(1)-competitive for l2 -- the
// LP-bracketed ratio stays below a modest constant on random + adversarial
// inputs.
TEST(EndToEnd, Theorem1MiniL2) {
  workload::Rng rng(2025);
  std::vector<Instance> instances;
  instances.push_back(
      workload::poisson_load(40, 1, 0.9, workload::ExponentialSize{1.0}, rng));
  instances.push_back(workload::rr_l2_hard(20));
  for (const Instance& inst : instances) {
    RoundRobin rr;
    analysis::RatioOptions opt;
    opt.k = 2.0;
    opt.speed = 4.4;
    const auto m = analysis::measure_ratio(inst, rr, opt);
    // ratio vs the LOWER bound over-estimates the true ratio; even so it
    // must be a small constant at speed 4.4.
    EXPECT_LT(m.ratio_vs_lb, 4.0) << inst.summary();
  }
}

// F1 in miniature: at speed 1 the geometric family's RR-vs-proxy ratio
// grows monotonically with depth (the cited lower bound's shape; the
// published exponent 2 eps_p is tiny, so the growth is slow but steady);
// at speed 4.4 it stays far below 1.
TEST(EndToEnd, LowerBoundGrowthShape) {
  auto ratio_at = [](int levels, double speed) {
    const Instance inst = workload::geometric_levels(levels);
    RoundRobin rr;
    analysis::RatioOptions opt;
    opt.k = 2.0;
    opt.speed = speed;
    opt.with_lp = false;  // proxy is enough for the growth shape
    return analysis::measure_ratio(inst, rr, opt).ratio_vs_proxy;
  };
  const double slow_small = ratio_at(4, 1.0);
  const double slow_large = ratio_at(10, 1.0);
  EXPECT_GT(slow_large, slow_small + 0.1);  // grows with depth at speed 1
  EXPECT_GT(slow_large, 1.4);

  const double fast_large = ratio_at(10, 4.4);
  EXPECT_LT(fast_large, 1.0);  // extra speed erases the gap entirely
}

// T4 in miniature: the dual-fitting certificate validates on a batch of
// random instances at the theorem speed.
TEST(EndToEnd, DualCertificateBatch) {
  const double k = 2.0, eps = 0.05;
  const double eta = analysis::theorem1_speed(k, eps);
  workload::Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const Instance inst = workload::poisson_load(
        40, 1, 0.95, workload::UniformSize{0.2, 3.0}, rng);
    RoundRobin rr;
    RunRequest req;
    req.speed = eta;
    const Schedule s = run(inst, rr, req).schedule;
    analysis::DualFitOptions opt;
    opt.k = k;
    opt.eps = eps;
    const auto cert = analysis::dual_fit_certificate(s, opt);
    EXPECT_TRUE(cert.certificate_valid()) << "trial " << trial;
    EXPECT_GE(cert.objective_ratio, eps - 1e-9);
  }
}

// F2/F3 in miniature: RR pareto-trades mean flow for fairness against SRPT.
TEST(EndToEnd, FairnessLatencyTradeoff) {
  const Instance inst = workload::srpt_starvation(60, 2.0);
  const auto rr = make_policy("rr");
  const auto srpt = make_policy("srpt");
  const Schedule s_rr = run(inst, *rr, RunRequest{}).schedule;
  const Schedule s_srpt = run(inst, *srpt, RunRequest{}).schedule;

  // SRPT wins on l1 (mean)...
  EXPECT_LT(flow_lk_norm(s_srpt, 1.0), flow_lk_norm(s_rr, 1.0));
  // ...but RR wins on max flow (no starvation) and instantaneous fairness.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_LT(flow_lk_norm(s_rr, kInf), flow_lk_norm(s_srpt, kInf));
  EXPECT_GT(fairness_report(s_rr).jain_time_avg,
            fairness_report(s_srpt).jain_time_avg);
}

// T5 in miniature: the certificate (hence the theorem) holds across m.
TEST(EndToEnd, MultiMachineCertificates) {
  const double k = 2.0, eps = 0.05;
  const double eta = analysis::theorem1_speed(k, eps);
  workload::Rng rng(11);
  for (int m : {1, 2, 4, 8}) {
    const Instance inst = workload::poisson_load(
        50, m, 0.95, workload::ExponentialSize{1.0}, rng);
    RoundRobin rr;
    RunRequest req;
    req.speed = eta;
    req.machines = m;
    const Schedule s = run(inst, rr, req).schedule;
    analysis::DualFitOptions opt;
    opt.k = k;
    opt.eps = eps;
    EXPECT_TRUE(analysis::dual_fit_certificate(s, opt).certificate_valid())
        << "m=" << m;
  }
}

// T6 in miniature: quantum RR converges to ideal RR.
TEST(EndToEnd, QuantumConvergence) {
  workload::Rng rng(13);
  const Instance inst =
      workload::poisson_load(40, 1, 0.85, workload::UniformSize{0.5, 2.0}, rng);
  RoundRobin ideal;
  RunRequest req;
  req.record_trace = false;
  const double ideal_l2 = run(inst, ideal, req).stats.l2;
  const auto qrr = make_policy("qrr:0.02");
  const double q_l2 = run(inst, *qrr, req).stats.l2;
  EXPECT_NEAR(q_l2 / ideal_l2, 1.0, 0.03);
}

// The l1 result the paper cites: RR is O(1)-speed O(1)-competitive for
// total flow as well -- same schedule, both norms bounded.
TEST(EndToEnd, SimultaneousL1AndL2Guarantees) {
  workload::Rng rng(17);
  const Instance inst =
      workload::poisson_load(40, 1, 0.95, workload::ExponentialSize{1.0}, rng);
  RoundRobin rr;
  analysis::RatioOptions l1;
  l1.k = 1.0;
  l1.speed = 4.4;
  analysis::RatioOptions l2;
  l2.k = 2.0;
  l2.speed = 4.4;
  RoundRobin rr2;
  EXPECT_LT(analysis::measure_ratio(inst, rr, l1).ratio_vs_lb, 4.0);
  EXPECT_LT(analysis::measure_ratio(inst, rr2, l2).ratio_vs_lb, 4.0);
}

}  // namespace
}  // namespace tempofair
