// Scenario layer: capacity timelines (hand-checked carryover semantics),
// SLO attainment bookkeeping, and the closed-loop client simulator.
#include "workload/scenario.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "workload/source.h"

namespace tempofair::workload {
namespace {

// --- capacity timelines ------------------------------------------------------

TEST(CapacityTimeline, ValidateRejectsBadPhaseLists) {
  EXPECT_THROW(CapacityTimeline{}.validate(), std::invalid_argument);
  EXPECT_THROW((CapacityTimeline{{{1.0, 1, 1.0}}}.validate()),
               std::invalid_argument);  // must start at 0
  EXPECT_THROW((CapacityTimeline{{{0.0, 1, 1.0}, {0.0, 2, 1.0}}}.validate()),
               std::invalid_argument);  // strictly increasing
  EXPECT_THROW((CapacityTimeline{{{0.0, -1, 1.0}}}.validate()),
               std::invalid_argument);
  EXPECT_THROW((CapacityTimeline{{{0.0, 1, 0.0}}}.validate()),
               std::invalid_argument);  // speed > 0
  EXPECT_NO_THROW((CapacityTimeline{{{0.0, 0, 1.0}, {2.0, 1, 1.0}}}.validate()));
}

TEST(CapacityTimeline, OutageDelaysAndCarriesRemainingWork) {
  // One size-2 job released at 0.  Phase 1 serves [0,1) at speed 1 (1 unit
  // done), the outage [1,3) serves nothing, service resumes at 3: the last
  // unit finishes at 4.  Flow is measured from the ORIGINAL release.
  const Instance inst = Instance::from_jobs({Job{0, 0.0, 2.0, 1.0}});
  RunRequest req;
  req.policy = "rr";
  CapacityTimeline timeline;
  timeline.phases = {{0.0, 1, 1.0}, {1.0, 0, 1.0}, {3.0, 1, 1.0}};
  const TimelineResult r = run_capacity_timeline(inst, req, timeline);
  ASSERT_EQ(r.completion.size(), 1u);
  EXPECT_NEAR(r.completion[0], 4.0, 1e-9);
  EXPECT_NEAR(r.flow[0], 4.0, 1e-9);
  EXPECT_GE(r.carried, 1u);  // interrupted at least once
}

TEST(CapacityTimeline, SpeedPhaseShortensService) {
  // Size-3 job at 0; speed 1 in [0,1) does 1 unit, speed 2 afterwards does
  // the remaining 2 units in 1 time: completion 2.
  const Instance inst = Instance::from_jobs({Job{0, 0.0, 3.0, 1.0}});
  RunRequest req;
  req.policy = "srpt";
  CapacityTimeline timeline;
  timeline.phases = {{0.0, 1, 1.0}, {1.0, 1, 2.0}};
  const TimelineResult r = run_capacity_timeline(inst, req, timeline);
  EXPECT_NEAR(r.completion[0], 2.0, 1e-9);
}

TEST(CapacityTimeline, FlatTimelineMatchesPlainRun) {
  const Instance inst = make_instance("poisson:n=120,load=0.8,seed=6");
  RunRequest req;
  req.policy = "rr";
  CapacityTimeline flat;
  flat.phases = {{0.0, 1, 1.0}};
  const TimelineResult tl = run_capacity_timeline(inst, req, flat);
  const RunResult plain = run(inst, req);
  ASSERT_EQ(tl.completion.size(), plain.schedule.n());
  for (JobId j = 0; j < static_cast<JobId>(plain.schedule.n()); ++j) {
    EXPECT_NEAR(tl.completion[j], plain.schedule.completion(j), 1e-9)
        << "job " << j;
  }
  EXPECT_EQ(tl.segments, 1u);
  EXPECT_EQ(tl.carried, 0u);
}

TEST(CapacityTimeline, EveryJobCompletesAfterItsRelease) {
  const Instance inst = make_instance("mmpp:n=200,load=0.9,burst=8,on=5,off=20,seed=2");
  RunRequest req;
  req.policy = "rr";
  CapacityTimeline timeline;
  timeline.phases = {{0.0, 2, 1.0}, {20.0, 0, 1.0}, {30.0, 1, 1.5}};
  const TimelineResult r = run_capacity_timeline(inst, req, timeline);
  for (JobId j = 0; j < static_cast<JobId>(inst.n()); ++j) {
    EXPECT_GE(r.completion[j], inst.job(j).release) << "job " << j;
    EXPECT_GT(r.flow[j], 0.0) << "job " << j;
  }
}

// --- SLO attainment ----------------------------------------------------------

TEST(SloAttainment, CountsPerClassAndOverall) {
  const std::vector<Time> flows = {0.5, 3.0, 1.0, 9.0};
  const std::vector<SloClass> classes = {{"interactive", 1.0}, {"batch", 5.0}};
  const std::vector<int> class_of = {0, 1, 0, 1};
  const SloReport report = slo_attainment(flows, classes, class_of);
  ASSERT_EQ(report.classes.size(), 2u);
  EXPECT_EQ(report.classes[0].jobs, 2u);
  EXPECT_EQ(report.classes[0].met, 2u);  // 0.5 and 1.0 both <= 1.0
  EXPECT_DOUBLE_EQ(report.classes[0].attainment, 1.0);
  EXPECT_EQ(report.classes[1].met, 1u);  // 3.0 <= 5, 9.0 misses
  EXPECT_DOUBLE_EQ(report.classes[1].attainment, 0.5);
  EXPECT_DOUBLE_EQ(report.overall_attainment, 0.75);
  EXPECT_DOUBLE_EQ(report.classes[1].max_flow, 9.0);
}

TEST(SloAttainment, EmptyClassCountsAsFullyAttained) {
  const std::vector<Time> flows = {1.0};
  const std::vector<SloClass> classes = {{"used", 2.0}, {"unused", 1.0}};
  const std::vector<int> class_of = {0};
  const SloReport report = slo_attainment(flows, classes, class_of);
  EXPECT_DOUBLE_EQ(report.classes[1].attainment, 1.0);
}

TEST(SloAttainment, RejectsMismatchedInputs) {
  const std::vector<Time> flows = {1.0, 2.0};
  const std::vector<SloClass> classes = {{"a", 1.0}};
  const std::vector<int> short_map = {0};
  EXPECT_THROW((void)slo_attainment(flows, classes, short_map),
               std::invalid_argument);
  const std::vector<int> out_of_range = {0, 1};
  EXPECT_THROW((void)slo_attainment(flows, classes, out_of_range),
               std::invalid_argument);
}

TEST(SloAttainment, CycleClassesIsDeterministicRoundRobin) {
  const std::vector<int> assigned = cycle_classes(7, 3);
  const std::vector<int> expect = {0, 1, 2, 0, 1, 2, 0};
  EXPECT_EQ(assigned, expect);
}

// --- closed-loop clients -----------------------------------------------------

TEST(ClosedLoop, DeterministicForEqualConfigs) {
  ClosedLoopConfig config;
  config.clients = 6;
  config.requests = 500;
  config.seed = 17;
  const ClosedLoopResult a = run_closed_loop(config);
  const ClosedLoopResult b = run_closed_loop(config);
  EXPECT_EQ(a.stats.l1, b.stats.l1);
  EXPECT_EQ(a.stats.p99, b.stats.p99);
  EXPECT_EQ(a.throughput, b.throughput);
}

TEST(ClosedLoop, LittlesLawHoldsApproximately) {
  ClosedLoopConfig config;
  config.clients = 10;
  config.requests = 4000;
  config.think_mean = 2.0;
  config.seed = 23;
  for (const char* disc : {"ps", "fcfs"}) {
    config.discipline = disc;
    const ClosedLoopResult r = run_closed_loop(config);
    const double implied = r.throughput * (config.think_mean + r.stats.mean);
    EXPECT_NEAR(implied, static_cast<double>(config.clients),
                0.08 * static_cast<double>(config.clients))
        << disc;
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0 + 1e-9);
  }
}

TEST(ClosedLoop, PopulationBoundsConcurrency) {
  // With one client the system alternates think/serve: utilization is
  // mean_size / (think + mean_size) within sampling noise, and throughput
  // can never exceed 1 / mean_cycle.
  ClosedLoopConfig config;
  config.clients = 1;
  config.requests = 2000;
  config.think_mean = 1.0;
  config.seed = 31;
  const ClosedLoopResult r = run_closed_loop(config);
  EXPECT_NEAR(r.utilization, 0.5, 0.1);
  EXPECT_LT(r.throughput, 1.0);
}

TEST(ClosedLoop, BadConfigRejected) {
  ClosedLoopConfig config;
  config.clients = 0;
  EXPECT_THROW((void)run_closed_loop(config), std::invalid_argument);
  config.clients = 4;
  config.discipline = "lifo";
  EXPECT_THROW((void)run_closed_loop(config), std::invalid_argument);
}

}  // namespace
}  // namespace tempofair::workload
