// WorkloadSpec grammar: parse / to_string round trips, the trace-path
// escape, typed parameter access, and the canonical builders.  Semantic
// validation (unknown kinds, bad ranges) lives in source_test.cpp, where
// make_source() is under test.
#include "workload/spec.h"

#include <gtest/gtest.h>

#include <string>

namespace tempofair::workload {
namespace {

TEST(WorkloadSpec, ParsesKindAndParams) {
  const WorkloadSpec spec =
      WorkloadSpec::parse("poisson:n=100,load=0.9,dist=exp(1.5),seed=7");
  EXPECT_EQ(spec.kind, "poisson");
  ASSERT_EQ(spec.params.size(), 4u);
  EXPECT_EQ(spec.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(spec.get_double("load", 0.0), 0.9);
  EXPECT_EQ(spec.seed(), 7u);
  EXPECT_TRUE(std::holds_alternative<ExponentialSize>(spec.dist()));
}

TEST(WorkloadSpec, BareKindHasNoParams) {
  const WorkloadSpec spec = WorkloadSpec::parse("adv-staircase");
  EXPECT_EQ(spec.kind, "adv-staircase");
  EXPECT_TRUE(spec.params.empty());
}

TEST(WorkloadSpec, ToStringRoundTripsPreservingOrder) {
  for (const std::string& text :
       {std::string("poisson:n=100,load=0.9,dist=pareto(1.8,0.5),seed=3"),
        std::string("mmpp:n=500,load=0.8,burst=8,on=5,off=20"),
        std::string("uniform:n=10,gap=1,size=2,start=0.5"),
        std::string("bursty:bursts=4,per=8,gap=10,dist=bimodal(0.9,1,50)"),
        std::string("adv-rr-l2-hard:n=40")}) {
    const WorkloadSpec spec = WorkloadSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_EQ(WorkloadSpec::parse(spec.to_string()), spec);
  }
}

TEST(WorkloadSpec, TracePathIsTakenVerbatim) {
  // Paths may contain '=' and ',' -- everything after the first ':' is the
  // path, so trace specs survive the round trip unsplit.
  const std::string text = "trace:/data/runs/a=1,b=2/trace.v1.csv";
  const WorkloadSpec spec = WorkloadSpec::parse(text);
  EXPECT_EQ(spec.kind, "trace");
  ASSERT_TRUE(spec.has("path"));
  EXPECT_EQ(*spec.find("path"), "/data/runs/a=1,b=2/trace.v1.csv");
  EXPECT_EQ(spec.to_string(), text);
}

TEST(WorkloadSpec, EmptyKindRejected) {
  EXPECT_THROW((void)WorkloadSpec::parse(""), SpecError);
  EXPECT_THROW((void)WorkloadSpec::parse(":n=1"), SpecError);
}

TEST(WorkloadSpec, ParamWithoutEqualsRejected) {
  EXPECT_THROW((void)WorkloadSpec::parse("poisson:n"), SpecError);
}

TEST(WorkloadSpec, DuplicateKeyRejected) {
  EXPECT_THROW((void)WorkloadSpec::parse("poisson:n=1,n=2"), SpecError);
}

TEST(WorkloadSpec, MalformedTypedValueNamesTheKey) {
  const WorkloadSpec spec = WorkloadSpec::parse("poisson:n=abc,load=x");
  try {
    (void)spec.get_int("n", 0);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("n"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)spec.get_double("load", 0.0), SpecError);
}

TEST(WorkloadSpec, DefaultsSeedOneAndExpDist) {
  const WorkloadSpec spec = WorkloadSpec::parse("poisson:n=10,load=0.5");
  EXPECT_EQ(spec.seed(), 1u);
  const SizeDist dist = spec.dist();
  ASSERT_TRUE(std::holds_alternative<ExponentialSize>(dist));
  EXPECT_DOUBLE_EQ(std::get<ExponentialSize>(dist).mean, 1.0);
}

TEST(WorkloadSpec, SetReplacesInPlace) {
  WorkloadSpec spec = WorkloadSpec::parse("poisson:n=10,load=0.5,seed=1");
  spec.set("load", 0.9);
  spec.set("seed", 42L);
  EXPECT_DOUBLE_EQ(spec.get_double("load", 0.0), 0.9);
  EXPECT_EQ(spec.seed(), 42u);
  // Replacement keeps the original spelling position.
  EXPECT_EQ(spec.params[1].first, "load");
  EXPECT_EQ(spec.params.size(), 3u);
}

TEST(WorkloadSpec, BuildersRoundTripThroughParse) {
  const WorkloadSpec poisson =
      WorkloadSpec::poisson(100, 0.9, ParetoSize{1.8, 0.5}, 7, 2);
  EXPECT_EQ(WorkloadSpec::parse(poisson.to_string()), poisson);
  EXPECT_EQ(poisson.kind, "poisson");
  EXPECT_EQ(poisson.get_int("machines", 1), 2);

  const WorkloadSpec mmpp =
      WorkloadSpec::mmpp(500, 0.8, 8.0, 5.0, 20.0, ExponentialSize{1.0}, 3);
  EXPECT_EQ(WorkloadSpec::parse(mmpp.to_string()), mmpp);

  const WorkloadSpec trace = WorkloadSpec::trace("dir/with,comma/t.bin");
  EXPECT_EQ(WorkloadSpec::parse(trace.to_string()), trace);
}

TEST(SizeDistSpec, EveryDistributionRoundTrips) {
  const SizeDist dists[] = {
      FixedSize{2.0},         UniformSize{0.5, 1.5}, ExponentialSize{3.0},
      ParetoSize{1.8, 0.5},   ParetoSize{2.0, 1.0, 100.0},
      BimodalSize{0.9, 1.0, 50.0}};
  for (const SizeDist& dist : dists) {
    const std::string text = size_dist_spec(dist);
    const SizeDist back = parse_size_dist(text);
    EXPECT_EQ(back.index(), dist.index()) << text;
    EXPECT_EQ(size_dist_spec(back), text);
  }
}

TEST(SizeDistSpec, BadDistributionRejected) {
  EXPECT_THROW((void)parse_size_dist("gaussian(0,1)"), SpecError);
  EXPECT_THROW((void)parse_size_dist("exp()"), SpecError);
  EXPECT_THROW((void)parse_size_dist("pareto(1.8"), SpecError);
  EXPECT_THROW((void)parse_size_dist(""), SpecError);
}

}  // namespace
}  // namespace tempofair::workload
