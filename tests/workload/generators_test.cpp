#include "workload/generators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tempofair::workload {
namespace {

TEST(SizeDist, FixedAlwaysSameValue) {
  Rng rng(1);
  const SizeDist d = FixedSize{2.5};
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(draw_size(d, rng), 2.5);
  EXPECT_DOUBLE_EQ(mean_size(d), 2.5);
}

TEST(SizeDist, UniformWithinBounds) {
  Rng rng(2);
  const SizeDist d = UniformSize{1.0, 3.0};
  for (int i = 0; i < 1000; ++i) {
    const double v = draw_size(d, rng);
    EXPECT_GE(v, 1.0);
    EXPECT_LT(v, 3.0);
  }
  EXPECT_DOUBLE_EQ(mean_size(d), 2.0);
}

TEST(SizeDist, ExponentialMean) {
  Rng rng(3);
  const SizeDist d = ExponentialSize{4.0};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += draw_size(d, rng);
  EXPECT_NEAR(sum / n, 4.0, 0.2);
  EXPECT_DOUBLE_EQ(mean_size(d), 4.0);
}

TEST(SizeDist, ParetoCapTruncates) {
  Rng rng(4);
  const SizeDist d = ParetoSize{1.2, 1.0, 50.0};
  for (int i = 0; i < 5000; ++i) EXPECT_LE(draw_size(d, rng), 50.0);
}

TEST(SizeDist, ParetoCappedMeanMatchesClosedForm) {
  Rng rng(5);
  const SizeDist d = ParetoSize{1.5, 1.0, 20.0};
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += draw_size(d, rng);
  EXPECT_NEAR(sum / n, mean_size(d), 0.05);
}

TEST(SizeDist, ParetoUncappedMeanRequiresAlphaAboveOne) {
  EXPECT_THROW((void)mean_size(SizeDist{ParetoSize{1.0, 1.0, 0.0}}),
               std::invalid_argument);
  EXPECT_NEAR(mean_size(SizeDist{ParetoSize{2.0, 1.0, 0.0}}), 2.0, 1e-12);
}

TEST(SizeDist, BimodalMean) {
  const SizeDist d = BimodalSize{0.9, 1.0, 50.0};
  EXPECT_DOUBLE_EQ(mean_size(d), 0.9 * 1.0 + 0.1 * 50.0);
}

TEST(SizeDist, NamesAreDescriptive) {
  EXPECT_EQ(dist_name(SizeDist{FixedSize{1.0}}), "fixed(1)");
  EXPECT_EQ(dist_name(SizeDist{ParetoSize{1.8, 0.5, 0.0}}), "pareto(1.8)");
  EXPECT_NE(dist_name(SizeDist{BimodalSize{}}).find("bimodal"), std::string::npos);
}

TEST(PoissonStream, ProducesRequestedCount) {
  Rng rng(6);
  const Instance inst = poisson_stream(75, 1.0, FixedSize{1.0}, rng);
  EXPECT_EQ(inst.n(), 75u);
}

TEST(PoissonStream, ReleasesAreNonDecreasingInId) {
  Rng rng(7);
  const Instance inst = poisson_stream(50, 2.0, FixedSize{1.0}, rng);
  for (JobId j = 1; j < inst.n(); ++j) {
    EXPECT_GE(inst.job(j).release, inst.job(j - 1).release);
  }
}

TEST(PoissonStream, InterarrivalMeanMatchesLambda) {
  Rng rng(8);
  const Instance inst = poisson_stream(20000, 4.0, FixedSize{1.0}, rng);
  const double mean_gap = inst.max_release() / static_cast<double>(inst.n());
  EXPECT_NEAR(mean_gap, 0.25, 0.02);
}

TEST(PoissonStream, RejectsBadLambda) {
  Rng rng(9);
  EXPECT_THROW((void)poisson_stream(10, 0.0, FixedSize{1.0}, rng),
               std::invalid_argument);
}

TEST(PoissonLoad, UtilizationCalibration) {
  // lambda * E[size] / m == utilization: check empirically via arrival rate.
  Rng rng(10);
  const Instance inst = poisson_load(20000, 2, 0.8, ExponentialSize{2.0}, rng);
  const double lambda_hat = static_cast<double>(inst.n()) / inst.max_release();
  EXPECT_NEAR(lambda_hat * 2.0 / 2.0, 0.8, 0.05);
}

TEST(PoissonLoad, RejectsBadUtilization) {
  Rng rng(11);
  EXPECT_THROW((void)poisson_load(10, 1, 0.0, FixedSize{1.0}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)poisson_load(10, 1, 2.0, FixedSize{1.0}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)poisson_load(10, 0, 0.5, FixedSize{1.0}, rng),
               std::invalid_argument);
}

TEST(BurstyStream, StructureIsCorrect) {
  Rng rng(12);
  const Instance inst = bursty_stream(3, 4, 10.0, FixedSize{1.0}, rng);
  ASSERT_EQ(inst.n(), 12u);
  for (JobId j = 0; j < 12; ++j) {
    EXPECT_DOUBLE_EQ(inst.job(j).release, 10.0 * static_cast<double>(j / 4));
  }
}

TEST(UniformStream, EvenlySpaced) {
  const Instance inst = uniform_stream(5, 2.0, 1.5, 1.0);
  ASSERT_EQ(inst.n(), 5u);
  for (JobId j = 0; j < 5; ++j) {
    EXPECT_DOUBLE_EQ(inst.job(j).release, 1.0 + 2.0 * j);
    EXPECT_DOUBLE_EQ(inst.job(j).size, 1.5);
  }
}

TEST(Generators, DeterministicGivenSeed) {
  Rng a(99), b(99);
  const Instance ia = poisson_stream(30, 1.0, ExponentialSize{1.0}, a);
  const Instance ib = poisson_stream(30, 1.0, ExponentialSize{1.0}, b);
  for (JobId j = 0; j < 30; ++j) {
    EXPECT_DOUBLE_EQ(ia.job(j).release, ib.job(j).release);
    EXPECT_DOUBLE_EQ(ia.job(j).size, ib.job(j).size);
  }
}

}  // namespace
}  // namespace tempofair::workload
