#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "workload/generators.h"

namespace tempofair::workload {
namespace {

TEST(TraceIo, RoundTripThroughStream) {
  Rng rng(1);
  const Instance inst = poisson_stream(25, 1.3, ExponentialSize{2.7}, rng);
  std::stringstream ss;
  write_csv(inst, ss);
  const Instance back = read_csv(ss);
  ASSERT_EQ(back.n(), inst.n());
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_DOUBLE_EQ(back.job(j).release, inst.job(j).release);
    EXPECT_DOUBLE_EQ(back.job(j).size, inst.job(j).size);
  }
}

TEST(TraceIo, HeaderIsWritten) {
  const Instance inst = Instance::batch(std::vector<Work>{1.0});
  std::stringstream ss;
  write_csv(inst, ss);
  std::string first_line;
  std::getline(ss, first_line);
  EXPECT_EQ(first_line, "id,release,size,weight");
}

TEST(TraceIo, WeightsRoundTrip) {
  const Instance inst = Instance::from_jobs(
      {Job{0, 0.0, 1.0, 2.5}, Job{1, 1.0, 2.0, 0.125}});
  std::stringstream ss;
  write_csv(inst, ss);
  const Instance back = read_csv(ss);
  EXPECT_DOUBLE_EQ(back.job(0).weight, 2.5);
  EXPECT_DOUBLE_EQ(back.job(1).weight, 0.125);
}

TEST(TraceIo, ThreeColumnInputDefaultsWeightToOne) {
  std::stringstream ss("id,release,size\n0,0.0,1.0\n");
  const Instance inst = read_csv(ss);
  EXPECT_DOUBLE_EQ(inst.job(0).weight, 1.0);
}

TEST(TraceIo, BadWeightRejected) {
  std::stringstream ss("id,release,size,weight\n0,0.0,1.0,-2\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, MissingHeaderRejected) {
  std::stringstream ss("0,0.0,1.0\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, MalformedLineRejected) {
  std::stringstream ss("id,release,size\n0,0.0\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, NonNumericFieldRejected) {
  std::stringstream ss("id,release,size\n0,zero,1.0\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, NegativeIdRejected) {
  std::stringstream ss("id,release,size\n-1,0.0,1.0\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, DuplicateIdsRejected) {
  std::stringstream ss("id,release,size\n0,0.0,1.0\n0,1.0,1.0\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, EmptyLinesSkipped) {
  std::stringstream ss("id,release,size\n0,0.0,1.0\n\n1,1.0,2.0\n");
  const Instance inst = read_csv(ss);
  EXPECT_EQ(inst.n(), 2u);
}

TEST(TraceIo, BadSizeSurfacesAsParseError) {
  std::stringstream ss("id,release,size\n0,0.0,-1.0\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "tempofair_trace_test.csv";
  Rng rng(5);
  const Instance inst = poisson_stream(10, 1.0, UniformSize{0.5, 2.0}, rng);
  write_csv_file(inst, path.string());
  const Instance back = read_csv_file(path.string());
  EXPECT_EQ(back.n(), inst.n());
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingFileRejected) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/path/trace.csv"),
               std::runtime_error);
}

TEST(TraceIo, UnwritablePathRejected) {
  const Instance inst = Instance::batch(std::vector<Work>{1.0});
  EXPECT_THROW(write_csv_file(inst, "/nonexistent/dir/out.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace tempofair::workload
