#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "workload/generators.h"

namespace tempofair::workload {
namespace {

[[nodiscard]] std::filesystem::path temp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

/// Hand-crafts a binary trace file so tests can produce headers and column
/// payloads write_binary() never emits (bad magic, cleared sorted flag,
/// truncated columns, non-finite values).
void craft_binary(const std::filesystem::path& path, const char* magic,
                  std::uint64_t n, std::uint8_t flags,
                  const std::vector<double>& columns) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(magic, 8);
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&flags), sizeof flags);
  for (const double v : columns) {
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
  }
}

void expect_same_jobs(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.n(), b.n());
  for (JobId j = 0; j < static_cast<JobId>(a.n()); ++j) {
    EXPECT_EQ(a.job(j).release, b.job(j).release) << "job " << j;
    EXPECT_EQ(a.job(j).size, b.job(j).size) << "job " << j;
    EXPECT_EQ(a.job(j).weight, b.job(j).weight) << "job " << j;
  }
}

TEST(TraceIo, RoundTripThroughStream) {
  Rng rng(1);
  const Instance inst = poisson_stream(25, 1.3, ExponentialSize{2.7}, rng);
  std::stringstream ss;
  write_csv(inst, ss);
  const Instance back = read_csv(ss);
  ASSERT_EQ(back.n(), inst.n());
  for (JobId j = 0; j < inst.n(); ++j) {
    EXPECT_DOUBLE_EQ(back.job(j).release, inst.job(j).release);
    EXPECT_DOUBLE_EQ(back.job(j).size, inst.job(j).size);
  }
}

TEST(TraceIo, HeaderIsWritten) {
  const Instance inst = Instance::batch(std::vector<Work>{1.0});
  std::stringstream ss;
  write_csv(inst, ss);
  std::string first_line;
  std::getline(ss, first_line);
  EXPECT_EQ(first_line, "id,release,size,weight");
}

TEST(TraceIo, WeightsRoundTrip) {
  const Instance inst = Instance::from_jobs(
      {Job{0, 0.0, 1.0, 2.5}, Job{1, 1.0, 2.0, 0.125}});
  std::stringstream ss;
  write_csv(inst, ss);
  const Instance back = read_csv(ss);
  EXPECT_DOUBLE_EQ(back.job(0).weight, 2.5);
  EXPECT_DOUBLE_EQ(back.job(1).weight, 0.125);
}

TEST(TraceIo, ThreeColumnInputDefaultsWeightToOne) {
  std::stringstream ss("id,release,size\n0,0.0,1.0\n");
  const Instance inst = read_csv(ss);
  EXPECT_DOUBLE_EQ(inst.job(0).weight, 1.0);
}

TEST(TraceIo, BadWeightRejected) {
  std::stringstream ss("id,release,size,weight\n0,0.0,1.0,-2\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, MissingHeaderRejected) {
  std::stringstream ss("0,0.0,1.0\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, MalformedLineRejected) {
  std::stringstream ss("id,release,size\n0,0.0\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, NonNumericFieldRejected) {
  std::stringstream ss("id,release,size\n0,zero,1.0\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, NegativeIdRejected) {
  std::stringstream ss("id,release,size\n-1,0.0,1.0\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, DuplicateIdsRejected) {
  std::stringstream ss("id,release,size\n0,0.0,1.0\n0,1.0,1.0\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, EmptyLinesSkipped) {
  std::stringstream ss("id,release,size\n0,0.0,1.0\n\n1,1.0,2.0\n");
  const Instance inst = read_csv(ss);
  EXPECT_EQ(inst.n(), 2u);
}

TEST(TraceIo, BadSizeSurfacesAsParseError) {
  std::stringstream ss("id,release,size\n0,0.0,-1.0\n");
  EXPECT_THROW((void)read_csv(ss), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "tempofair_trace_test.csv";
  Rng rng(5);
  const Instance inst = poisson_stream(10, 1.0, UniformSize{0.5, 2.0}, rng);
  write_csv_file(inst, path.string());
  const Instance back = read_csv_file(path.string());
  EXPECT_EQ(back.n(), inst.n());
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingFileRejected) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/path/trace.csv"),
               std::runtime_error);
}

TEST(TraceIo, UnwritablePathRejected) {
  const Instance inst = Instance::batch(std::vector<Work>{1.0});
  EXPECT_THROW(write_csv_file(inst, "/nonexistent/dir/out.csv"),
               std::runtime_error);
}

TEST(TraceIo, CsvNonFiniteFieldRejected) {
  std::stringstream nan_release("id,release,size\n0,nan,1.0\n");
  EXPECT_THROW((void)read_csv(nan_release), std::runtime_error);
  std::stringstream inf_size("id,release,size\n0,0.0,inf\n");
  EXPECT_THROW((void)read_csv(inf_size), std::runtime_error);
}

// --- binary columnar format --------------------------------------------------

TEST(TraceIoBinary, RoundTripThroughStream) {
  Rng rng(11);
  const Instance inst = poisson_stream(40, 0.9, ParetoSize{1.8, 0.5}, rng);
  std::stringstream ss;
  write_binary(inst, ss);
  const Instance back = read_binary(ss);
  expect_same_jobs(inst, back);
}

TEST(TraceIoBinary, CsvAndBinaryRoundTripsAreByteIdentical) {
  // The acceptance path: instance -> CSV -> instance -> binary -> instance
  // with every field surviving both formats bitwise.
  Rng rng(12);
  Instance inst = poisson_stream(60, 1.1, BimodalSize{0.8, 0.5, 4.0}, rng);
  inst = with_weights(inst, WeightScheme::kRandom, rng);
  std::stringstream csv;
  write_csv(inst, csv);
  const Instance via_csv = read_csv(csv);
  std::stringstream bin;
  write_binary(via_csv, bin);
  const Instance via_binary = read_binary(bin);
  expect_same_jobs(inst, via_csv);
  expect_same_jobs(inst, via_binary);
}

TEST(TraceIoBinary, FileSniffingDispatchesByMagic) {
  const auto csv_path = temp_file("tempofair_sniff.csv");
  const auto bin_path = temp_file("tempofair_sniff.bin");
  Rng rng(13);
  const Instance inst = poisson_stream(10, 1.0, ExponentialSize{1.0}, rng);
  write_csv_file(inst, csv_path.string());
  write_binary_file(inst, bin_path.string());
  EXPECT_FALSE(is_binary_trace_file(csv_path.string()));
  EXPECT_TRUE(is_binary_trace_file(bin_path.string()));
  expect_same_jobs(read_trace_file(csv_path.string()),
                   read_trace_file(bin_path.string()));
  std::filesystem::remove(csv_path);
  std::filesystem::remove(bin_path);
}

TEST(TraceIoBinary, BadMagicRejected) {
  const auto path = temp_file("tempofair_bad_magic.bin");
  craft_binary(path, "TFTRACE9", 1, 0x02, {0.0, 1.0});
  EXPECT_THROW((void)read_binary_file(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceIoBinary, TruncatedColumnsRejected) {
  // Header promises 4 jobs but only one full column follows.
  const auto path = temp_file("tempofair_truncated.bin");
  craft_binary(path, "TFTRACE1", 4, 0x02, {0.0, 1.0, 2.0, 3.0, 1.0});
  EXPECT_THROW((void)read_binary_file(path.string()), std::runtime_error);
  EXPECT_THROW(BinaryTraceStream(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceIoBinary, NonFiniteValuesRejected) {
  const auto path = temp_file("tempofair_nan.bin");
  craft_binary(path, "TFTRACE1", 2, 0x02,
               {0.0, std::nan(""), 1.0, 1.0});  // NaN release in row 1
  EXPECT_THROW((void)read_binary_file(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceIoBinary, NonPositiveSizeRejected) {
  const auto path = temp_file("tempofair_zero_size.bin");
  craft_binary(path, "TFTRACE1", 1, 0x02, {0.0, 0.0});
  EXPECT_THROW((void)read_binary_file(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceIoBinary, ProbeReadsHeaderOnly) {
  const auto bin_path = temp_file("tempofair_probe.bin");
  const auto csv_path = temp_file("tempofair_probe.csv");
  Rng rng(14);
  const Instance inst = poisson_stream(17, 1.0, ExponentialSize{1.0}, rng);
  write_binary_file(inst, bin_path.string());
  write_csv_file(inst, csv_path.string());

  const TraceInfo bin_info = probe_trace_file(bin_path.string());
  EXPECT_EQ(bin_info.n, 17u);
  EXPECT_TRUE(bin_info.binary);
  EXPECT_TRUE(bin_info.streamable);  // write_binary always sorts

  const TraceInfo csv_info = probe_trace_file(csv_path.string());
  EXPECT_EQ(csv_info.n, 17u);
  EXPECT_FALSE(csv_info.binary);
  EXPECT_TRUE(csv_info.streamable);  // write_csv emits release order
  std::filesystem::remove(bin_path);
  std::filesystem::remove(csv_path);
}

TEST(TraceIoBinary, HugeHeaderCountRejectedWithoutAllocating) {
  // A crafted n like 2^61 wraps the columns*n*sizeof(double) product in
  // uint64; the truncation check must reject the header up front instead
  // of passing and deferring failure to a giant column resize.
  const auto path = temp_file("tempofair_huge_n.bin");
  craft_binary(path, "TFTRACE1", std::uint64_t{1} << 61, 0x02, {0.0, 1.0});
  EXPECT_THROW((void)probe_trace_file(path.string()), std::runtime_error);
  EXPECT_THROW(BinaryTraceStream(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceIoStream, ProbeDetectsUnsortedCsv) {
  // A valid-but-unsorted CSV is not streamable: the counting pre-pass
  // discovers the row order, so probe-driven callers (TraceSource)
  // materialize instead of taking the streaming path and dying mid-replay.
  const auto path = temp_file("tempofair_probe_unsorted.csv");
  {
    std::ofstream out(path);
    out << "id,release,size\n0,5.0,1.0\n1,1.0,1.0\n";
  }
  const TraceInfo info = probe_trace_file(path.string());
  EXPECT_EQ(info.n, 2u);
  EXPECT_FALSE(info.streamable);
  EXPECT_FALSE(CsvTraceStream(path.string()).sequential());

  // Ids out of sequence are equally non-streamable, and the materializing
  // reader still accepts both spellings.
  {
    std::ofstream out(path);
    out << "id,release,size\n1,0.0,1.0\n0,1.0,1.0\n";
  }
  EXPECT_FALSE(probe_trace_file(path.string()).streamable);
  EXPECT_EQ(read_csv_file(path.string()).n(), 2u);
  std::filesystem::remove(path);
}

// --- streaming readers -------------------------------------------------------

TEST(TraceIoStream, CsvStreamMatchesMaterializedReader) {
  const auto path = temp_file("tempofair_stream.csv");
  Rng rng(15);
  const Instance inst = poisson_stream(50, 1.2, ExponentialSize{2.0}, rng);
  write_csv_file(inst, path.string());

  CsvTraceStream stream(path.string());
  ASSERT_EQ(stream.n(), inst.n());
  for (JobId j = 0; j < static_cast<JobId>(inst.n()); ++j) {
    const Job job = stream.next();
    EXPECT_EQ(job.id, j);
    EXPECT_EQ(job.release, inst.job(j).release);
    EXPECT_EQ(job.size, inst.job(j).size);
    EXPECT_EQ(job.weight, inst.job(j).weight);
  }
  std::filesystem::remove(path);
}

TEST(TraceIoStream, BinaryStreamRefillsAcrossBlocks) {
  // More rows than one buffered block, so next() exercises refill().
  const std::size_t n = BinaryTraceStream::kBlock + 257;
  const auto path = temp_file("tempofair_blocks.bin");
  const Instance inst = uniform_stream(n, 0.25, 1.0);
  write_binary_file(inst, path.string());

  BinaryTraceStream stream(path.string());
  ASSERT_EQ(stream.n(), n);
  for (JobId j = 0; j < static_cast<JobId>(n); ++j) {
    const Job job = stream.next();
    EXPECT_EQ(job.id, j);
    ASSERT_EQ(job.release, inst.job(j).release) << "job " << j;
    ASSERT_EQ(job.size, inst.job(j).size) << "job " << j;
  }
  std::filesystem::remove(path);
}

TEST(TraceIoStream, CsvStreamRejectsOutOfOrderRows) {
  const auto path = temp_file("tempofair_unsorted.csv");
  {
    std::ofstream out(path);
    out << "id,release,size\n0,5.0,1.0\n1,1.0,1.0\n";
  }
  CsvTraceStream stream(path.string());
  (void)stream.next();
  EXPECT_THROW((void)stream.next(), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceIoStream, BinaryStreamRequiresSortedFlag) {
  const auto path = temp_file("tempofair_no_sorted_flag.bin");
  craft_binary(path, "TFTRACE1", 1, 0x00, {0.0, 1.0});
  EXPECT_THROW(BinaryTraceStream(path.string()), std::runtime_error);
  // The materializing reader still accepts it (it relabels).
  const Instance inst = read_binary_file(path.string());
  EXPECT_EQ(inst.n(), 1u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tempofair::workload
