// WorkloadSource factory: spec-built workloads are bitwise-identical to the
// legacy generator calls they subsume, stream() and instance() agree, the
// one SpecError path covers unknown kinds/params/values, and run_spec()
// produces identical schedules through the streaming fast path and the
// materialized event loop.  The bundled sample trace (path injected by
// CMake through TEMPOFAIR_SAMPLE_TRACE) pins replay determinism against a
// checked-in artifact.
#include "workload/source.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/invariants.h"
#include "workload/generators.h"
#include "workload/trace_io.h"

namespace tempofair::workload {
namespace {

void expect_same_jobs(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.n(), b.n());
  for (JobId j = 0; j < static_cast<JobId>(a.n()); ++j) {
    EXPECT_EQ(a.job(j).release, b.job(j).release) << "job " << j;
    EXPECT_EQ(a.job(j).size, b.job(j).size) << "job " << j;
    EXPECT_EQ(a.job(j).weight, b.job(j).weight) << "job " << j;
  }
}

[[nodiscard]] Instance drain(JobStream& stream) {
  std::vector<Job> jobs;
  jobs.reserve(stream.n());
  for (std::size_t i = 0; i < stream.n(); ++i) jobs.push_back(stream.next());
  return Instance::from_jobs(std::move(jobs));
}

// --- spec <-> legacy generator equivalence -----------------------------------

TEST(WorkloadSource, PoissonSpecMatchesDeprecatedGenerator) {
  const SizeDist dist = ParetoSize{1.8, 0.5};
  Rng rng(7);
  const Instance legacy = poisson_load(200, 2, 0.9, dist, rng);
  const Instance via_spec =
      make_instance(WorkloadSpec::poisson(200, 0.9, dist, 7, 2));
  expect_same_jobs(legacy, via_spec);
}

TEST(WorkloadSource, BurstySpecMatchesDeprecatedGenerator) {
  const SizeDist dist = ExponentialSize{2.0};
  Rng rng(5);
  const Instance legacy = bursty_stream(6, 9, 12.0, dist, rng);
  const Instance via_spec =
      make_instance(WorkloadSpec::bursty(6, 9, 12.0, dist, 5));
  expect_same_jobs(legacy, via_spec);
}

TEST(WorkloadSource, UniformSpecMatchesDeprecatedGenerator) {
  const Instance legacy = uniform_stream(30, 1.5, 2.0, 0.25);
  const Instance via_spec =
      make_instance(WorkloadSpec::uniform(30, 1.5, 2.0, 0.25));
  expect_same_jobs(legacy, via_spec);
}

// --- stream() / instance() agreement ----------------------------------------

TEST(WorkloadSource, StreamAndInstanceAgreeBitwise) {
  for (const std::string& spec :
       {std::string("poisson:n=150,load=0.8,dist=exp(1.5),seed=3"),
        std::string("mmpp:n=150,load=0.8,burst=8,on=5,off=20,seed=3"),
        std::string("uniform:n=50,gap=1,size=2")}) {
    const std::unique_ptr<WorkloadSource> source = make_source(spec);
    ASSERT_TRUE(source->streamable()) << spec;
    const auto stream = source->stream();
    expect_same_jobs(drain(*stream), source->instance());
  }
}

TEST(WorkloadSource, SourcesAreReusable) {
  // Two stream() calls from one source re-derive the same jobs -- the
  // property that lets a spec mean the same workload on both ends of a
  // daemon connection.
  const std::unique_ptr<WorkloadSource> source =
      make_source("poisson:n=100,load=0.9,seed=11");
  const auto first = source->stream();
  const auto second = source->stream();
  expect_same_jobs(drain(*first), drain(*second));
}

TEST(WorkloadSource, WeightsParamDisablesStreamingButMatchesWithWeights) {
  const std::unique_ptr<WorkloadSource> source =
      make_source("poisson:n=50,load=0.9,seed=4,weights=inv-size");
  EXPECT_FALSE(source->streamable());
  EXPECT_THROW((void)source->stream(), std::logic_error);
  const Instance weighted = source->instance();
  const Instance plain = make_instance("poisson:n=50,load=0.9,seed=4");
  ASSERT_EQ(weighted.n(), plain.n());
  for (JobId j = 0; j < static_cast<JobId>(plain.n()); ++j) {
    EXPECT_EQ(weighted.job(j).size, plain.job(j).size);
    EXPECT_DOUBLE_EQ(weighted.job(j).weight, 1.0 / plain.job(j).size);
  }
}

// --- the one validation path -------------------------------------------------

TEST(WorkloadSource, UnknownKindListsKnownKinds) {
  try {
    (void)make_source("zipf:n=10");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown kind"), std::string::npos) << what;
    EXPECT_NE(what.find("poisson"), std::string::npos) << what;
    EXPECT_NE(what.find("trace"), std::string::npos) << what;
  }
}

TEST(WorkloadSource, UnknownParameterNamesTheAccepted) {
  try {
    (void)make_source("poisson:n=10,lod=0.9");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'lod'"), std::string::npos) << what;
    EXPECT_NE(what.find("load"), std::string::npos) << what;
  }
}

TEST(WorkloadSource, BadRangesRejected) {
  EXPECT_THROW((void)make_source("poisson:n=10,load=0"), SpecError);
  EXPECT_THROW((void)make_source("poisson:n=10,load=2"), SpecError);
  EXPECT_THROW((void)make_source("poisson:n=-5"), SpecError);
  EXPECT_THROW((void)make_source("uniform:n=10,gap=-1"), SpecError);
  EXPECT_THROW((void)make_source("adv-geometric:levels=0"), SpecError);
}

TEST(WorkloadSource, MissingTraceFileIsSpecError) {
  EXPECT_THROW((void)make_source("trace:/nonexistent/trace.csv"), SpecError);
}

TEST(WorkloadSource, BuiltinKindsAllConstruct) {
  for (const std::string& kind : builtin_workload_kinds()) {
    if (kind == "trace") continue;  // needs a real file
    const std::unique_ptr<WorkloadSource> source = make_source(kind);
    EXPECT_GT(source->n(), 0u) << kind;
    EXPECT_GT(source->instance().n(), 0u) << kind;
  }
}

// --- run_spec ----------------------------------------------------------------

TEST(RunSpec, EmptyWorkloadRejected) {
  RunRequest req;
  EXPECT_THROW((void)run_spec(req), SpecError);
}

TEST(RunSpec, FastAndSlowPathsAgreeBitwise) {
  for (const std::string& policy : {std::string("rr"), std::string("srpt")}) {
    RunRequest req;
    req.policy = policy;
    req.workload = "poisson:n=300,load=0.9,dist=exp(1),seed=21";
    req.invariants = InvariantMode::kExhaustive;
    req.use_fast_path = false;
    const RunResult slow = run_spec(req);
    req.use_fast_path = true;
    const RunResult fast = run_spec(req);
    ASSERT_EQ(slow.schedule.n(), fast.schedule.n());
    for (JobId j = 0; j < static_cast<JobId>(slow.schedule.n()); ++j) {
      ASSERT_EQ(slow.schedule.completion(j), fast.schedule.completion(j))
          << policy << " job " << j;
    }
    EXPECT_EQ(slow.stats.l2, fast.stats.l2);
  }
}

// The bundled trace under tests/data/: replaying it must give bitwise-equal
// schedules through the generic event loop and the epoch-coalesced fast
// path, with the exhaustive invariant battery on -- the PR's acceptance
// criterion for trace ingestion.
TEST(RunSpec, BundledSampleTraceReplaysBitwiseIdentically) {
  const std::string spec = "trace:" TEMPOFAIR_SAMPLE_TRACE;
  const TraceInfo info = probe_trace_file(TEMPOFAIR_SAMPLE_TRACE);
  ASSERT_GT(info.n, 0u);
  for (const std::string& policy : {std::string("rr"), std::string("srpt"),
                                   std::string("fcfs")}) {
    RunRequest req;
    req.policy = policy;
    req.workload = spec;
    req.invariants = InvariantMode::kExhaustive;
    req.use_fast_path = false;
    const RunResult slow = run_spec(req);
    req.use_fast_path = true;
    const RunResult fast = run_spec(req);
    const RunResult again = run_spec(req);  // same request -> same schedule
    ASSERT_EQ(slow.schedule.n(), info.n);
    ASSERT_EQ(fast.schedule.n(), info.n);
    for (JobId j = 0; j < static_cast<JobId>(info.n); ++j) {
      ASSERT_EQ(slow.schedule.completion(j), fast.schedule.completion(j))
          << policy << " job " << j;
      ASSERT_EQ(fast.schedule.completion(j), again.schedule.completion(j))
          << policy << " job " << j;
    }
    EXPECT_EQ(slow.stats.l1, fast.stats.l1);
    EXPECT_EQ(slow.stats.linf, fast.stats.linf);
  }
}

TEST(RunSpec, TraceRoundTripsThroughBothFormatsToTheSameSchedule) {
  // spec -> instance -> CSV and binary files -> replay: all three name the
  // same workload, so all three schedules are identical.
  const Instance inst =
      make_instance("poisson:n=80,load=0.85,dist=bimodal(0.8,0.5,4),seed=9");
  const auto csv_path =
      std::filesystem::temp_directory_path() / "tempofair_source_rt.csv";
  const auto bin_path =
      std::filesystem::temp_directory_path() / "tempofair_source_rt.bin";
  write_csv_file(inst, csv_path.string());
  write_binary_file(inst, bin_path.string());

  RunRequest req;
  req.policy = "rr";
  req.invariants = InvariantMode::kExhaustive;
  req.workload = "poisson:n=80,load=0.85,dist=bimodal(0.8,0.5,4),seed=9";
  const RunResult direct = run_spec(req);
  req.workload = "trace:" + csv_path.string();
  const RunResult via_csv = run_spec(req);
  req.workload = "trace:" + bin_path.string();
  const RunResult via_bin = run_spec(req);
  ASSERT_EQ(direct.schedule.n(), via_csv.schedule.n());
  ASSERT_EQ(direct.schedule.n(), via_bin.schedule.n());
  for (JobId j = 0; j < static_cast<JobId>(direct.schedule.n()); ++j) {
    ASSERT_EQ(direct.schedule.completion(j), via_csv.schedule.completion(j));
    ASSERT_EQ(direct.schedule.completion(j), via_bin.schedule.completion(j));
  }
  std::filesystem::remove(csv_path);
  std::filesystem::remove(bin_path);
}

}  // namespace
}  // namespace tempofair::workload
