#include "workload/adversarial.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/priority_policies.h"
#include "policies/round_robin.h"

namespace tempofair::workload {
namespace {

TEST(BatchPlusStream, Structure) {
  const Instance inst = batch_plus_stream(3, 2, 1.5, 2.0);
  ASSERT_EQ(inst.n(), 5u);
  for (JobId j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(inst.job(j).release, 0.0);
  EXPECT_DOUBLE_EQ(inst.job(3).release, 1.5);
  EXPECT_DOUBLE_EQ(inst.job(4).release, 3.0);
  for (const Job& j : inst.jobs()) EXPECT_DOUBLE_EQ(j.size, 2.0);
}

TEST(BatchPlusStream, RejectsBadParameters) {
  EXPECT_THROW((void)batch_plus_stream(1, 1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)batch_plus_stream(1, 1, 1.0, -1.0), std::invalid_argument);
}

TEST(RrL2Hard, SizesAndCounts) {
  const Instance inst = rr_l2_hard(10);
  EXPECT_EQ(inst.n(), 50u);  // batch 10 + stream 40
  EXPECT_DOUBLE_EQ(inst.max_size(), 1.0);
}

TEST(RrL2Hard, RejectsZero) {
  EXPECT_THROW((void)rr_l2_hard(0), std::invalid_argument);
}

TEST(RrL2Hard, RrIsMuchWorseThanSrptForL2AtSpeedOne) {
  const Instance inst = rr_l2_hard(30);
  RoundRobin rr;
  Srpt srpt;
  EngineOptions eo;
  eo.record_trace = false;
  const double rr_l2 = flow_lk_norm(EngineCore().run(inst, rr, eo), 2.0);
  const double srpt_l2 = flow_lk_norm(EngineCore().run(inst, srpt, eo), 2.0);
  EXPECT_GT(rr_l2, 1.7 * srpt_l2);  // the family separates RR from OPT
}

TEST(GeometricLevels, Structure) {
  const Instance inst = geometric_levels(4, 1.0);
  ASSERT_EQ(inst.n(), 15u);  // 1 + 2 + 4 + 8
  EXPECT_DOUBLE_EQ(inst.job(0).size, 1.0);
  EXPECT_DOUBLE_EQ(inst.job(0).release, 0.0);
  EXPECT_DOUBLE_EQ(inst.job(14).size, 0.125);
  EXPECT_DOUBLE_EQ(inst.job(14).release, 3.0);
  EXPECT_NEAR(inst.total_work(), 4.0, 1e-12);  // unit work per level
}

TEST(GeometricLevels, RejectsBadParameters) {
  EXPECT_THROW((void)geometric_levels(0), std::invalid_argument);
  EXPECT_THROW((void)geometric_levels(30), std::invalid_argument);
  EXPECT_THROW((void)geometric_levels(3, 0.0), std::invalid_argument);
}

TEST(GeometricLevels, RrRatioGrowsWithDepthAtSpeedOne) {
  auto ratio = [](int levels) {
    const Instance inst = geometric_levels(levels);
    RoundRobin rr;
    Srpt srpt;
    EngineOptions eo;
    eo.record_trace = false;
    return flow_lk_norm(EngineCore().run(inst, rr, eo), 2.0) /
           flow_lk_norm(EngineCore().run(inst, srpt, eo), 2.0);
  };
  const double r4 = ratio(4), r8 = ratio(8), r11 = ratio(11);
  EXPECT_GT(r8, r4);
  EXPECT_GT(r11, r8);
  EXPECT_GT(r11, 1.4);
}

TEST(SrptStarvation, StructureAndBehaviour) {
  const Instance inst = srpt_starvation(50, 2.0);
  ASSERT_EQ(inst.n(), 51u);
  EXPECT_DOUBLE_EQ(inst.job(0).size, 2.0);

  // SRPT starves the size-2 job until the zero-slack unit stream drains
  // (F_big = 52); RR finishes it within a few time units and only mildly
  // delays the stream, so RR's max flow is several times smaller.
  RoundRobin rr;
  Srpt srpt;
  EngineOptions eo;
  eo.record_trace = false;
  const double rr_max = flow_lk_norm(EngineCore().run(inst, rr, eo),
                                     std::numeric_limits<double>::infinity());
  const double srpt_max = flow_lk_norm(EngineCore().run(inst, srpt, eo),
                                       std::numeric_limits<double>::infinity());
  EXPECT_GT(srpt_max, 2.0 * rr_max);
  EXPECT_NEAR(srpt_max, 52.0, 1e-6);
}

TEST(SrptStarvation, HugeBigJobAbsorbsSlackUnderEveryPolicy) {
  // The pitfall the header documents: with a big job large enough to absorb
  // all slack, work conservation forces the SAME max flow under SRPT and RR.
  const Instance inst = srpt_starvation(50, 20.0, 1.0);
  RoundRobin rr;
  Srpt srpt;
  EngineOptions eo;
  eo.record_trace = false;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(flow_lk_norm(EngineCore().run(inst, rr, eo), kInf),
              flow_lk_norm(EngineCore().run(inst, srpt, eo), kInf), 1e-6);
}

TEST(SrptStarvation, RejectsBadParameters) {
  EXPECT_THROW((void)srpt_starvation(10, 0.0), std::invalid_argument);
  EXPECT_THROW((void)srpt_starvation(10, 5.0, 0.0), std::invalid_argument);
}

TEST(OverloadPulse, AlternatesLoadAndIdle) {
  const Instance inst = overload_pulse(3, 4, 2);
  ASSERT_EQ(inst.n(), 12u);
  // Pulses are spaced 2 * ceil(4/2) = 4 apart.
  EXPECT_DOUBLE_EQ(inst.job(0).release, 0.0);
  EXPECT_DOUBLE_EQ(inst.job(4).release, 4.0);
  EXPECT_DOUBLE_EQ(inst.job(8).release, 8.0);

  // On 2 machines each pulse drains before the next arrives.
  RoundRobin rr;
  EngineOptions eo;
  eo.machines = 2;
  const Schedule s = EngineCore().run(inst, rr, eo);
  EXPECT_LE(s.completion(3), 4.0 + 1e-9);
}

TEST(OverloadPulse, RejectsBadParameters) {
  EXPECT_THROW((void)overload_pulse(1, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)overload_pulse(1, 1, 0), std::invalid_argument);
}

TEST(Staircase, GeometricSizes) {
  const Instance inst = staircase(8);
  ASSERT_EQ(inst.n(), 8u);
  EXPECT_DOUBLE_EQ(inst.job(0).size, 8.0);
  EXPECT_DOUBLE_EQ(inst.job(1).size, 4.0);
  EXPECT_DOUBLE_EQ(inst.job(2).size, 2.0);
  EXPECT_DOUBLE_EQ(inst.job(3).size, 1.0);
  EXPECT_DOUBLE_EQ(inst.job(7).size, 1.0);  // floored at 1
  for (JobId j = 0; j < 8; ++j) EXPECT_DOUBLE_EQ(inst.job(j).release, j);
}

TEST(Staircase, RejectsZero) {
  EXPECT_THROW((void)staircase(0), std::invalid_argument);
}

}  // namespace
}  // namespace tempofair::workload
