#include "workload/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tempofair::workload {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    any_diff = any_diff || (a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0));
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformRejectsBadRange) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 1;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ExponentialRejectsBadMean) {
  Rng rng(1);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 1.5);
  }
}

TEST(Rng, ParetoMeanMatchesTheory) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(3.0, 1.0);
  // E[X] = alpha/(alpha-1) * xmin = 1.5.
  EXPECT_NEAR(sum / n, 1.5, 0.05);
}

TEST(Rng, ParetoRejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW((void)rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, BernoulliProbabilityRoughlyRespected) {
  Rng rng(19);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliRejectsBadP) {
  Rng rng(1);
  EXPECT_THROW((void)rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW((void)rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // The child should not replay the parent's stream.
  Rng parent_again(23);
  (void)parent_again.split();
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    differs = differs || (child.uniform(0.0, 1.0) != parent.uniform(0.0, 1.0));
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(31), b(31);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(ca.uniform(0.0, 1.0), cb.uniform(0.0, 1.0));
  }
}

}  // namespace
}  // namespace tempofair::workload
