// Unit tests for the perf measurement harness (bench/perf_harness.h):
// measurement statistics, the JSON round trip, and the gate's verdict
// model.  The end-to-end perf_gate binary behavior (exit codes on a real
// regression) is covered by cli_regression_test.cpp.
#include <cstddef>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "perf_harness.h"

namespace tempofair::perf {
namespace {

[[nodiscard]] CaseResult make_case(const std::string& name, double median_s,
                                   double mad_s = 0.0) {
  CaseResult c;
  c.name = name;
  c.repeats = 5;
  c.median_s = median_s;
  c.mad_s = mad_s;
  c.min_s = median_s;
  c.max_s = median_s;
  return c;
}

TEST(Measure, RunsBodyAndFillsStats) {
  std::size_t calls = 0;
  const CaseResult r = measure("spin", 3, [&] { ++calls; });
  EXPECT_EQ(calls, 4u);  // 1 warmup + 3 timed
  EXPECT_EQ(r.name, "spin");
  EXPECT_EQ(r.repeats, 3u);
  EXPECT_GE(r.median_s, 0.0);
  EXPECT_LE(r.min_s, r.median_s);
  EXPECT_GE(r.max_s, r.median_s);
  EXPECT_GE(r.mad_s, 0.0);
}

TEST(Measure, NoWarmupSkipsExtraRun) {
  std::size_t calls = 0;
  (void)measure("spin", 2, [&] { ++calls; }, /*warmup=*/false);
  EXPECT_EQ(calls, 2u);
}

TEST(ReportJson, RoundTripsThroughParse) {
  Report report;
  report.git_rev = "abc1234";
  CaseResult c = make_case("rr_fast_100000", 0.0147, 0.0002);
  c.stats["jobs"] = 100000.0;
  c.stats["speedup_vs_event_loop"] = 2.75;
  report.cases.push_back(c);
  report.cases.push_back(make_case("srpt_fast_100000", 0.0179));

  const Report parsed = parse_report(report_json(report));
  EXPECT_EQ(parsed.schema, "tempofair-perf-v1");
  EXPECT_EQ(parsed.git_rev, "abc1234");
  ASSERT_EQ(parsed.cases.size(), 2u);
  const CaseResult* rr = parsed.find("rr_fast_100000");
  ASSERT_NE(rr, nullptr);
  EXPECT_DOUBLE_EQ(rr->median_s, 0.0147);
  EXPECT_DOUBLE_EQ(rr->mad_s, 0.0002);
  EXPECT_EQ(rr->repeats, 5u);
  ASSERT_EQ(rr->stats.count("speedup_vs_event_loop"), 1u);
  EXPECT_DOUBLE_EQ(rr->stats.at("speedup_vs_event_loop"), 2.75);
}

TEST(ReportJson, ParseRejectsWrongSchema) {
  EXPECT_THROW((void)parse_report(R"({"schema": "bogus-v9", "cases": []})"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_report("not json at all"), std::invalid_argument);
  EXPECT_THROW((void)parse_report(""), std::invalid_argument);
}

TEST(CompareReports, OkWithinTolerance) {
  Report baseline, current;
  baseline.cases.push_back(make_case("a", 0.100));
  current.cases.push_back(make_case("a", 0.110));
  const GateResult result = compare_reports(baseline, current);
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "OK");
  EXPECT_NEAR(result.verdicts[0].ratio, 1.1, 1e-9);
  EXPECT_FALSE(result.failed);
}

TEST(CompareReports, WarnPastWarnRatioButUnderFail) {
  Report baseline, current;
  baseline.cases.push_back(make_case("a", 0.100));
  current.cases.push_back(make_case("a", 0.150));
  const GateResult result = compare_reports(baseline, current);
  const CaseVerdict* v = result.find("a");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->verdict, "WARN");
  EXPECT_FALSE(result.failed) << "WARN must not fail the gate";
}

TEST(CompareReports, NoiseLiftsWarnThreshold) {
  // A 1.5x median movement on a case whose own MAD spans the gap is noise,
  // not a regression: the warn threshold is warn_ratio plus measured noise.
  Report baseline, current;
  baseline.cases.push_back(make_case("a", 0.100, /*mad_s=*/0.040));
  current.cases.push_back(make_case("a", 0.150, /*mad_s=*/0.040));
  const GateResult result = compare_reports(baseline, current);
  const CaseVerdict* v = result.find("a");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->verdict, "OK");
}

TEST(CompareReports, FailPastFailRatio) {
  Report baseline, current;
  baseline.cases.push_back(make_case("a", 0.100));
  current.cases.push_back(make_case("a", 0.300));
  const GateResult result = compare_reports(baseline, current);
  const CaseVerdict* v = result.find("a");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->verdict, "FAIL");
  EXPECT_TRUE(result.failed);
}

TEST(CompareReports, MissingBaselineCaseFails) {
  Report baseline, current;
  baseline.cases.push_back(make_case("gone", 0.100));
  const GateResult result = compare_reports(baseline, current);
  const CaseVerdict* v = result.find("gone");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->verdict, "FAIL");
  EXPECT_TRUE(result.failed);
}

TEST(CompareReports, NewCaseNeverFails) {
  Report baseline, current;
  baseline.cases.push_back(make_case("a", 0.100));
  current.cases.push_back(make_case("a", 0.100));
  current.cases.push_back(make_case("brand_new", 0.500));
  const GateResult result = compare_reports(baseline, current);
  const CaseVerdict* v = result.find("brand_new");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->verdict, "NEW");
  EXPECT_FALSE(result.failed);
}

TEST(CompareReports, CustomRatiosRespected) {
  Report baseline, current;
  baseline.cases.push_back(make_case("a", 0.100));
  current.cases.push_back(make_case("a", 0.140));
  GateOptions strict;
  strict.warn_ratio = 1.1;
  strict.fail_ratio = 1.3;
  const GateResult result = compare_reports(baseline, current, strict);
  EXPECT_TRUE(result.failed);
}

TEST(SelfGate, PassesWhenStatWithinBudget) {
  Report report;
  CaseResult c = make_case("rr_fast_inv_sampled_100000", 0.020);
  c.stats["overhead_vs_inv_off"] = 1.012;
  c.stats["overhead_vs_inv_off_budget"] = 1.03;
  report.cases.push_back(c);
  const GateResult result = self_gate(report);
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "OK");
  EXPECT_EQ(result.verdicts[0].name,
            "rr_fast_inv_sampled_100000/overhead_vs_inv_off");
  EXPECT_DOUBLE_EQ(result.verdicts[0].current_s, 1.012);
  EXPECT_DOUBLE_EQ(result.verdicts[0].baseline_s, 1.03);
  EXPECT_FALSE(result.failed);
}

TEST(SelfGate, FailsWhenStatExceedsBudget) {
  Report report;
  CaseResult c = make_case("a", 0.020);
  c.stats["overhead_vs_inv_off"] = 1.08;
  c.stats["overhead_vs_inv_off_budget"] = 1.03;
  report.cases.push_back(c);
  const GateResult result = self_gate(report);
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "FAIL");
  EXPECT_TRUE(result.failed);
}

TEST(SelfGate, FailsWhenBudgetedStatIsMissing) {
  Report report;
  CaseResult c = make_case("a", 0.020);
  c.stats["overhead_vs_inv_off_budget"] = 1.03;  // stat itself never recorded
  report.cases.push_back(c);
  const GateResult result = self_gate(report);
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_EQ(result.verdicts[0].verdict, "FAIL");
  EXPECT_TRUE(result.failed);
}

TEST(SelfGate, IgnoresCasesWithoutBudgets) {
  Report report;
  CaseResult c = make_case("a", 0.020);
  c.stats["jobs"] = 100000.0;
  c.stats["speedup_vs_event_loop"] = 2.5;
  report.cases.push_back(c);
  const GateResult result = self_gate(report);
  EXPECT_TRUE(result.verdicts.empty());
  EXPECT_FALSE(result.failed);
}

TEST(SelfGate, BudgetsSurviveTheJsonRoundTrip) {
  Report report;
  CaseResult c = make_case("a", 0.020);
  c.stats["overhead_vs_inv_off"] = 1.05;
  c.stats["overhead_vs_inv_off_budget"] = 1.03;
  report.cases.push_back(c);
  const GateResult result = self_gate(parse_report(report_json(report)));
  EXPECT_TRUE(result.failed);
  const std::string text = format_self_gate(result);
  EXPECT_NE(text.find("overhead_vs_inv_off"), std::string::npos);
  EXPECT_NE(text.find("SELF-GATE: FAIL"), std::string::npos);
}

TEST(FormatGate, MentionsEveryCaseAndVerdict) {
  Report baseline, current;
  baseline.cases.push_back(make_case("fast_case", 0.100));
  current.cases.push_back(make_case("fast_case", 0.300));
  const GateOptions options;
  const GateResult result = compare_reports(baseline, current, options);
  const std::string text = format_gate(result, options);
  EXPECT_NE(text.find("fast_case"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  const std::string json = gate_json(result, options);
  EXPECT_NE(json.find("\"fast_case\""), std::string::npos);
  EXPECT_NE(json.find("\"FAIL\""), std::string::npos);
}

}  // namespace
}  // namespace tempofair::perf
