#include "registry.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/cli.h"
#include "harness/thread_pool.h"

namespace tempofair::bench {
namespace {

TEST(NaturalIdLess, NumericSuffixesSortNumerically) {
  EXPECT_TRUE(natural_id_less("f2", "f10"));
  EXPECT_FALSE(natural_id_less("f10", "f2"));
  EXPECT_TRUE(natural_id_less("t9", "t10"));
  EXPECT_TRUE(natural_id_less("a1", "f1"));   // alpha prefix first
  EXPECT_TRUE(natural_id_less("f1", "t1"));
  EXPECT_FALSE(natural_id_less("t1", "t1"));
}

TEST(ExperimentRegistry, AllSuiteExperimentsRegistered) {
  const auto& registry = ExperimentRegistry::instance();
  const std::set<std::string> expected{
      "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9",
      "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10",
      "a1", "a2", "a3", "a4",
      "s1", "s2", "s3", "s4", "s5", "s6"};
  std::set<std::string> actual;
  for (const ExperimentSpec* spec : registry.all()) actual.insert(spec->id);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(registry.size(), expected.size());
}

TEST(ExperimentRegistry, AllReturnsNaturalSuiteOrder) {
  const auto all = ExperimentRegistry::instance().all();
  ASSERT_GE(all.size(), 2u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(natural_id_less(all[i - 1]->id, all[i]->id))
        << all[i - 1]->id << " !< " << all[i]->id;
  }
}

TEST(ExperimentRegistry, FindById) {
  const auto& registry = ExperimentRegistry::instance();
  const ExperimentSpec* spec = registry.find("t1");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->id, "t1");
  EXPECT_FALSE(spec->title.empty());
  EXPECT_FALSE(spec->claim.empty());
  EXPECT_NE(spec->run, nullptr);
  EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(RunContext, SmokeScalesSizeParamsDown) {
  const char* argv[] = {"prog"};
  const harness::Cli cli(1, argv);
  harness::ThreadPool pool(1);
  std::ostringstream out;
  RunContext smoke_ctx(cli, pool, out, /*smoke=*/true, /*csv=*/false);
  EXPECT_EQ(smoke_ctx.size_param("n", 800), 100u);  // fallback / 8
  EXPECT_EQ(smoke_ctx.size_param("trials", 8, 2), 2u);  // floored
  RunContext full_ctx(cli, pool, out, /*smoke=*/false, /*csv=*/false);
  EXPECT_EQ(full_ctx.size_param("n", 800), 800u);
}

TEST(RunContext, ExplicitFlagBeatsSmokeScaling) {
  const char* argv[] = {"prog", "--n", "640"};
  const harness::Cli cli(3, argv);
  harness::ThreadPool pool(1);
  std::ostringstream out;
  RunContext ctx(cli, pool, out, /*smoke=*/true, /*csv=*/false);
  EXPECT_EQ(ctx.size_param("n", 800), 640u);
}

TEST(RunExperiment, ProducesOutputAndArtifactFields) {
  // Run the cheapest registered experiment end to end through the same
  // entry point tempofair_bench uses.
  const auto& registry = ExperimentRegistry::instance();
  const ExperimentSpec* spec = registry.find("f1");
  ASSERT_NE(spec, nullptr);
  const char* argv[] = {"prog"};
  const harness::Cli cli(1, argv);
  harness::ThreadPool pool(2);
  const RunOutcome outcome =
      run_experiment(*spec, cli, pool, /*smoke=*/true, /*csv=*/false);
  EXPECT_EQ(outcome.id, "f1");
  EXPECT_EQ(outcome.status, "ok");
  EXPECT_EQ(outcome.exit_code, 0);
  EXPECT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome.output.empty());
  EXPECT_GT(outcome.wall_s, 0.0);

  const std::string json = outcome_json(outcome, "abc1234", true);
  EXPECT_NE(json.find("\"id\": \"f1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"git_rev\": \"abc1234\""), std::string::npos);
  EXPECT_NE(json.find("\"smoke\": true"), std::string::npos);
  EXPECT_NE(json.find("\"wall_s\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
}

TEST(RunExperiment, CapturesCountersPerRun) {
  const auto& registry = ExperimentRegistry::instance();
  const ExperimentSpec* spec = registry.find("f1");
  ASSERT_NE(spec, nullptr);
  const char* argv[] = {"prog"};
  const harness::Cli cli(1, argv);
  harness::ThreadPool pool(2);
  const RunOutcome outcome =
      run_experiment(*spec, cli, pool, /*smoke=*/true, /*csv=*/false);
  // Per-run CPU accounting must have been attributed to this run's sink
  // (not the global one) despite the shared pool.
  EXPECT_TRUE(outcome.counters.count("cpu_ns"));
  EXPECT_FALSE(outcome.counters.empty());
}

TEST(RunExperiment, ErrorsAreCapturedNotThrown) {
  ExperimentSpec spec;
  spec.id = "boom";
  spec.title = "throws";
  spec.claim = "n/a";
  spec.run = [](RunContext&) -> int {
    throw std::runtime_error("experiment exploded");
  };
  const char* argv[] = {"prog"};
  const harness::Cli cli(1, argv);
  harness::ThreadPool pool(1);
  const RunOutcome outcome =
      run_experiment(spec, cli, pool, /*smoke=*/false, /*csv=*/false);
  EXPECT_EQ(outcome.status, "error");
  EXPECT_EQ(outcome.error, "experiment exploded");
  EXPECT_FALSE(outcome.ok());
  const std::string json = outcome_json(outcome, "x", false);
  EXPECT_NE(json.find("experiment exploded"), std::string::npos);
}

TEST(RunContext, ParamsAreRecordedForArtifacts) {
  const char* argv[] = {"prog", "--seed", "99"};
  const harness::Cli cli(3, argv);
  harness::ThreadPool pool(1);
  std::ostringstream out;
  RunContext ctx(cli, pool, out, /*smoke=*/false, /*csv=*/false);
  (void)ctx.size_param("n", 100);
  (void)ctx.seed_param(5);
  const auto params = ctx.params();
  EXPECT_EQ(params.at("n"), "100");
  EXPECT_EQ(params.at("seed"), "99");  // CLI override recorded
}

}  // namespace
}  // namespace tempofair::bench
