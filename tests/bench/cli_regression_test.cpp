// CLI regression tests against the real binaries (paths injected by CMake
// through TEMPOFAIR_BENCH_BIN / PERF_GATE_BIN / TEMPOFAIR_SIM_BIN):
//
//  * tempofair_bench --filter with an unknown id must hard-error (exit 2)
//    and list every valid id, instead of silently running nothing.
//  * perf_gate must exit 1 when a case regresses past --fail-ratio, exit 0
//    within tolerance, and exit 2 on unusable input -- the contract the CI
//    perf-smoke step relies on.
//  * tempofair-sim must reject a malformed --workload spec at parse time
//    with a nonzero exit and a message that names the bad input, and run
//    end-to-end from a valid spec -- the shared-flag contract every tool
//    using harness::add_run_flags() inherits.
#include <sys/wait.h>

#include <array>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

[[nodiscard]] CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << command;
    return result;
  }
  std::array<char, 4096> buffer{};
  std::size_t got = 0;
  while ((got = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), got);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

[[nodiscard]] std::string temp_path(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  ASSERT_TRUE(file.is_open()) << path;
  file << content;
}

// A minimal tempofair-perf-v1 report with one case at `median_s` seconds.
[[nodiscard]] std::string report_with(double median_s) {
  return std::string("{\n  \"schema\": \"tempofair-perf-v1\",\n"
                     "  \"git_rev\": \"test\",\n  \"cases\": [\n    {\n"
                     "      \"name\": \"rr_fast\",\n      \"repeats\": 5,\n"
                     "      \"median_s\": ") +
         std::to_string(median_s) +
         ",\n      \"mad_s\": 0.0,\n      \"min_s\": 0.0,\n"
         "      \"max_s\": 1.0,\n      \"stats\": {}\n    }\n  ]\n}\n";
}

TEST(TempofairBenchCli, UnknownFilterIdIsHardError) {
  const CommandResult result = run_command(
      std::string(TEMPOFAIR_BENCH_BIN) + " --filter nope --no-artifacts");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("unknown experiment id 'nope'"),
            std::string::npos)
      << result.output;
  // The error must list the valid ids so the fix is discoverable in CI logs.
  EXPECT_NE(result.output.find("valid ids:"), std::string::npos);
  EXPECT_NE(result.output.find("t1"), std::string::npos);
  EXPECT_NE(result.output.find("f1"), std::string::npos);
}

TEST(TempofairBenchCli, UnknownIdAmongValidOnesStillFails) {
  const CommandResult result = run_command(
      std::string(TEMPOFAIR_BENCH_BIN) + " --filter t1,bogus --no-artifacts");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("'bogus'"), std::string::npos);
}

TEST(TempofairBenchCli, ListExitsZero) {
  const CommandResult result =
      run_command(std::string(TEMPOFAIR_BENCH_BIN) + " --list");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("t1"), std::string::npos);
}

TEST(PerfGateCli, SyntheticRegressionFailsTheGate) {
  const std::string baseline = temp_path("perf_gate_base.json");
  const std::string current = temp_path("perf_gate_cur_3x.json");
  write_file(baseline, report_with(0.100));
  write_file(current, report_with(0.300));  // 3x the baseline median
  const CommandResult result =
      run_command(std::string(PERF_GATE_BIN) + " --baseline " + baseline +
                  " --current " + current);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("FAIL"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("rr_fast"), std::string::npos);
}

TEST(PerfGateCli, WithinTolerancePasses) {
  const std::string baseline = temp_path("perf_gate_base2.json");
  const std::string current = temp_path("perf_gate_cur_ok.json");
  write_file(baseline, report_with(0.100));
  write_file(current, report_with(0.105));
  const CommandResult result =
      run_command(std::string(PERF_GATE_BIN) + " --baseline " + baseline +
                  " --current " + current);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("PASS"), std::string::npos) << result.output;
}

TEST(PerfGateCli, BreachedSelfBudgetFailsEvenWhenBaselinePasses) {
  // The self-gate holds without any baseline movement: identical medians,
  // but the current report's overhead stat breaks its own declared budget.
  const std::string baseline = temp_path("perf_gate_base_sg.json");
  const std::string current = temp_path("perf_gate_cur_sg.json");
  write_file(baseline, report_with(0.100));
  std::string breached = report_with(0.100);
  const std::string needle = "\"stats\": {}";
  const std::size_t pos = breached.find(needle);
  ASSERT_NE(pos, std::string::npos);
  breached.replace(pos, needle.size(),
                   "\"stats\": {\"overhead_vs_inv_off\": 1.08, "
                   "\"overhead_vs_inv_off_budget\": 1.03}");
  write_file(current, breached);
  const CommandResult result =
      run_command(std::string(PERF_GATE_BIN) + " --baseline " + baseline +
                  " --current " + current);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("SELF-GATE: FAIL"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("VERDICT: PASS"), std::string::npos)
      << "baseline comparison itself should pass; the budget is what fails";
}

TEST(PerfGateCli, WritesComparisonJsonArtifact) {
  const std::string baseline = temp_path("perf_gate_base3.json");
  const std::string current = temp_path("perf_gate_cur3.json");
  const std::string artifact = temp_path("perf_gate_artifact.json");
  write_file(baseline, report_with(0.100));
  write_file(current, report_with(0.300));
  const CommandResult result = run_command(
      std::string(PERF_GATE_BIN) + " --baseline " + baseline + " --current " +
      current + " --json " + artifact);
  EXPECT_EQ(result.exit_code, 1);
  std::ifstream file(artifact);
  ASSERT_TRUE(file.is_open()) << "missing artifact " << artifact;
  std::string json((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"FAIL\""), std::string::npos) << json;
}

TEST(PerfGateCli, MalformedBaselineIsUsageError) {
  const std::string baseline = temp_path("perf_gate_bad.json");
  const std::string current = temp_path("perf_gate_cur4.json");
  write_file(baseline, "{ this is not json");
  write_file(current, report_with(0.100));
  const CommandResult result =
      run_command(std::string(PERF_GATE_BIN) + " --baseline " + baseline +
                  " --current " + current);
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

TEST(PerfGateCli, NoArgumentsIsUsageError) {
  const CommandResult result = run_command(std::string(PERF_GATE_BIN));
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

TEST(TempofairSimCli, MalformedWorkloadSpecFailsWithUsableMessage) {
  // An unknown kind must die at flag-parse time, before any run starts,
  // and the message must echo the offending spec so the fix is obvious.
  const CommandResult result =
      run_command(std::string(TEMPOFAIR_SIM_BIN) +
                  " run --workload 'zipf:n=10' --policy rr");
  EXPECT_NE(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("--workload"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("zipf"), std::string::npos) << result.output;
}

TEST(TempofairSimCli, MalformedWorkloadParamValueFails) {
  const CommandResult result =
      run_command(std::string(TEMPOFAIR_SIM_BIN) +
                  " run --workload 'poisson:n=abc' --policy rr");
  EXPECT_NE(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("n"), std::string::npos) << result.output;
}

TEST(TempofairSimCli, WorkloadAndInstanceAreExclusive) {
  const CommandResult result = run_command(
      std::string(TEMPOFAIR_SIM_BIN) +
      " run --workload 'poisson:n=10' --instance /tmp/x.csv --policy rr");
  EXPECT_NE(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("exclusive"), std::string::npos)
      << result.output;
}

TEST(TempofairSimCli, RunsEndToEndFromASpecString) {
  const CommandResult result = run_command(
      std::string(TEMPOFAIR_SIM_BIN) +
      " run --workload 'poisson:n=50,load=0.8,seed=3' --policy rr");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("rr"), std::string::npos) << result.output;
}

TEST(TempofairSimCli, GenerateRoundTripsThroughRun) {
  const std::string trace = temp_path("tempofair_cli_trace.bin");
  const CommandResult gen = run_command(
      std::string(TEMPOFAIR_SIM_BIN) + " generate --out " + trace +
      " --workload 'uniform:n=20,gap=1,size=2' --format binary");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  const CommandResult replay =
      run_command(std::string(TEMPOFAIR_SIM_BIN) + " run --workload 'trace:" +
                  trace + "' --policy srpt");
  EXPECT_EQ(replay.exit_code, 0) << replay.output;
  std::remove(trace.c_str());
}

}  // namespace
