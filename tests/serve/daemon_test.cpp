// Loopback integration tests for tempofaird: concurrent tenants streaming
// jobs over a real socket with live mid-run queries, byte-identical
// equivalence with offline RunRequest runs, squelch-style backpressure, and
// cancellation.  Everything runs against a daemon started in-process on an
// ephemeral loopback port (or a unix socket), so the tests exercise the
// exact frames production clients send.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "workload/generators.h"
#include "workload/source.h"

namespace tempofair::serve {
namespace {

using namespace std::chrono_literals;

/// The tenant's workload rebuilt the way the daemon sees it: jobs in
/// release order with dense sequential ids (the client sends release order,
/// the daemon assigns ids in submission order).
Instance in_submission_order(const Instance& instance) {
  std::vector<Job> ordered;
  ordered.reserve(instance.n());
  for (const JobId id : instance.release_order()) {
    Job job = instance.job(id);
    job.id = static_cast<JobId>(ordered.size());
    ordered.push_back(job);
  }
  return Instance::from_jobs(std::move(ordered));
}

std::vector<Job> make_jobs(std::size_t n, double release_step,
                           double size = 1.0) {
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(Job{0, release_step * static_cast<double>(i), size, 1.0});
  }
  return jobs;
}

void wait_for_phase(Client& client, std::uint64_t run_id, RunPhase want) {
  for (int i = 0; i < 5000; ++i) {
    if (client.status(run_id).phase == want) return;
    std::this_thread::sleep_for(1ms);
  }
  FAIL() << "run " << run_id << " never reached " << to_string(want);
}

class DaemonTest : public ::testing::Test {
 protected:
  void start(DaemonConfig config) {
    config.tcp_port = 0;  // ephemeral
    daemon_ = std::make_unique<Daemon>(std::move(config));
    daemon_->start();
    port_ = daemon_->tcp_port();
    ASSERT_GT(port_, 0);
  }

  void TearDown() override {
    if (daemon_ != nullptr) daemon_->stop();
  }

  std::unique_ptr<Daemon> daemon_;
  int port_ = -1;
};

// The acceptance scenario: >= 8 concurrent tenants stream chunked jobs over
// the socket, query percentiles / l_k norms while runs are in flight, and
// every tenant's final result is byte-identical to the same workload run
// offline through the RunRequest facade.
TEST_F(DaemonTest, EightTenantsStreamingByteIdenticalToOffline) {
  DaemonConfig config;
  config.workers = 2;
  start(std::move(config));

  constexpr int kTenants = 8;
  std::vector<std::string> failures(kTenants);
  std::vector<std::thread> tenants;
  tenants.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tenants.emplace_back([this, t, &failures] {
      try {
        workload::Rng rng(1000 + static_cast<std::uint64_t>(t));
        const Instance inst = workload::poisson_load(
            200, 1, 0.9, workload::ExponentialSize{1.0 + 0.1 * t}, rng);
        RunRequest req;
        req.policy = t % 2 == 0 ? "rr" : "srpt";
        req.record_trace = false;

        Client client =
            Client::connect_tcp(port_, "tenant-" + std::to_string(t));
        const std::uint64_t run_id = client.submit(inst, req, /*chunk=*/25);

        // Live queries while the run is (possibly still) in flight: always
        // answered, monotone progress, finite values.
        std::uint64_t seen = 0;
        for (int probe = 0; probe < 5; ++probe) {
          const MetricsMsg m =
              client.query_metrics(run_id, {2.0, 3.0}, {50.0, 99.0});
          if (m.completed < seen || m.total != inst.n() ||
              m.k_values.size() != 2 || m.pct_values.size() != 2 ||
              !(m.k_values[0] >= 0.0) || !(m.pct_values[1] >= 0.0)) {
            failures[static_cast<std::size_t>(t)] = "bad live metrics";
            return;
          }
          seen = m.completed;
          std::this_thread::sleep_for(1ms);
        }

        const ResultMsg result = client.wait(run_id);
        const RunResult offline = run(in_submission_order(inst), req);
        if (result.completions.size() != offline.schedule.n()) {
          failures[static_cast<std::size_t>(t)] = "size mismatch";
          return;
        }
        for (JobId j = 0; j < offline.schedule.n(); ++j) {
          if (result.completions[j] != offline.schedule.completion(j)) {
            failures[static_cast<std::size_t>(t)] =
                "completion mismatch at job " + std::to_string(j);
            return;
          }
        }
        // flow_stats runs over the same id-ordered vector on both sides.
        if (result.stats.l1 != offline.stats.l1 ||
            result.stats.l2 != offline.stats.l2 ||
            result.stats.linf != offline.stats.linf ||
            result.stats.p99 != offline.stats.p99) {
          failures[static_cast<std::size_t>(t)] = "stats mismatch";
          return;
        }
        if (result.policy != offline.policy) {
          failures[static_cast<std::size_t>(t)] = "policy name mismatch";
          return;
        }
        // Per-tenant accounting: this session saw exactly its own jobs.
        const StatsReplyMsg session_stats = client.stats();
        const std::map<std::string, std::uint64_t> counters(
            session_stats.counters.begin(), session_stats.counters.end());
        if (counters.at("jobs.accepted") != inst.n() ||
            counters.at("runs.accepted") != 1u) {
          failures[static_cast<std::size_t>(t)] = "session counters wrong";
        }
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(t)] = e.what();
      }
    });
  }
  for (std::thread& tenant : tenants) tenant.join();
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(failures[static_cast<std::size_t>(t)], "") << "tenant " << t;
  }

  const auto stats = daemon_->stats();
  EXPECT_EQ(stats.at("sessions.opened"), static_cast<std::uint64_t>(kTenants));
  EXPECT_EQ(stats.at("runs.done"), static_cast<std::uint64_t>(kTenants));
}

// A noisy tenant hits its buffered-job cap and gets THROTTLED instead of
// unbounded queue growth; a quiet tenant on its own session is unaffected,
// and the noisy tenant recovers once its queues drain.
TEST_F(DaemonTest, NoisyTenantBackpressureIsBoundedAndRecoverable) {
  DaemonConfig config;
  config.workers = 1;  // one slot: the blocked stream pins the pool
  config.max_active_runs = 8;
  config.max_buffered_jobs = 1000;
  start(std::move(config));

  Client noisy = Client::connect_tcp(port_, "noisy");
  RunRequest stream_req;
  stream_req.policy = "rr";
  stream_req.record_trace = false;

  // Open a streaming run that declares 20 jobs but only delivers 10: the
  // engine consumes them and blocks waiting for the rest, occupying the
  // only worker, so everything submitted next stays queued (and buffered).
  const std::vector<Job> first_half = make_jobs(10, 0.1);
  const std::uint64_t run_a =
      noisy.begin_submit(stream_req, 20, first_half, /*last=*/false);
  wait_for_phase(noisy, run_a, RunPhase::kRunning);

  RunRequest mat_req;
  mat_req.policy = "srpt";
  mat_req.record_trace = false;
  const std::vector<Job> batch = make_jobs(400, 0.01);
  const std::uint64_t run_b = noisy.submit_jobs(mat_req, batch);
  const std::uint64_t run_c = noisy.submit_jobs(mat_req, batch);

  // ~800 jobs buffered against a 1000 cap: the next 400 must be rejected.
  try {
    (void)noisy.submit_jobs(mat_req, batch);
    FAIL() << "expected THROTTLED";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code, ErrorCode::kThrottled);
  }

  // The quiet tenant's session has its own budget: accepted immediately.
  Client quiet = Client::connect_tcp(port_, "quiet");
  const std::vector<Job> small = make_jobs(50, 0.05);
  const std::uint64_t quiet_run = quiet.submit_jobs(mat_req, small);

  // Close the stream; the worker frees and every queued run drains.
  const std::vector<Job> second_half = [&] {
    std::vector<Job> jobs = make_jobs(10, 0.1);
    for (Job& job : jobs) job.release += 1.0;
    return jobs;
  }();
  (void)noisy.submit_chunk(second_half, /*last=*/true);
  EXPECT_EQ(noisy.wait(run_a).completions.size(), 20u);
  EXPECT_EQ(noisy.wait(run_b).completions.size(), 400u);
  EXPECT_EQ(noisy.wait(run_c).completions.size(), 400u);
  EXPECT_EQ(quiet.wait(quiet_run).completions.size(), 50u);

  // Drained: the resend of the rejected batch is accepted (the client-side
  // submit() retry loop automates this; here it is explicit).
  const std::uint64_t run_d = noisy.submit_jobs(mat_req, batch);
  EXPECT_EQ(noisy.wait(run_d).completions.size(), 400u);

  // The throttle left a per-session audit trail.
  const StatsReplyMsg session_stats = noisy.stats();
  std::map<std::string, std::uint64_t> counters(
      session_stats.counters.begin(), session_stats.counters.end());
  EXPECT_GE(counters.at("throttled.jobs"), 1u);
  EXPECT_EQ(counters.at("runs.accepted"), 4u);
}

// The active-run cap throttles run creation (not just buffered jobs).
TEST_F(DaemonTest, ActiveRunCapThrottlesNewRuns) {
  DaemonConfig config;
  config.workers = 1;
  config.max_active_runs = 1;
  start(std::move(config));

  Client client = Client::connect_tcp(port_, "capped");
  RunRequest req;
  req.policy = "rr";
  req.record_trace = false;
  const std::uint64_t run_a =
      client.begin_submit(req, 4, make_jobs(2, 0.1), /*last=*/false);
  wait_for_phase(client, run_a, RunPhase::kRunning);

  try {
    (void)client.submit_jobs(req, make_jobs(3, 0.1));
    FAIL() << "expected THROTTLED";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code, ErrorCode::kThrottled);
  }

  std::vector<Job> tail = make_jobs(2, 0.1);
  for (Job& job : tail) job.release += 0.5;
  (void)client.submit_chunk(tail, /*last=*/true);
  EXPECT_EQ(client.wait(run_a).completions.size(), 4u);

  // Slot free again: accepted.
  const std::uint64_t run_b = client.submit_jobs(req, make_jobs(3, 0.1));
  EXPECT_EQ(client.wait(run_b).completions.size(), 3u);
}

// Cancelling a streaming run mid-flight aborts the engine promptly and the
// session stays usable.
TEST_F(DaemonTest, CancelStreamingRunMidFlight) {
  DaemonConfig config;
  config.workers = 1;
  start(std::move(config));

  Client client = Client::connect_tcp(port_, "canceller");
  RunRequest req;
  req.policy = "rr";
  req.record_trace = false;
  const std::uint64_t run_id =
      client.begin_submit(req, 1000, make_jobs(10, 0.1), /*last=*/false);
  wait_for_phase(client, run_id, RunPhase::kRunning);

  (void)client.cancel(run_id);
  wait_for_phase(client, run_id, RunPhase::kCancelled);

  try {
    (void)client.wait(run_id);
    FAIL() << "expected ServerError from a cancelled run";
  } catch (const ServerError&) {
  }

  // The connection and session survive the cancellation.
  const std::uint64_t next_run = client.submit_jobs(req, make_jobs(5, 0.1));
  EXPECT_EQ(client.wait(next_run).completions.size(), 5u);
}

TEST_F(DaemonTest, SemanticErrorsCarryMachineReadableCodes) {
  DaemonConfig config;
  config.workers = 1;
  start(std::move(config));

  Client client = Client::connect_tcp(port_, "errors");
  RunRequest req;
  req.policy = "rr";
  req.record_trace = false;

  try {
    (void)client.status(424242);
    FAIL() << "expected UNKNOWN_RUN";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code, ErrorCode::kUnknownRun);
  }

  // A run that cannot have finished yet answers GET_RESULT with NOT_READY.
  const std::uint64_t open_run =
      client.begin_submit(req, 10, make_jobs(5, 0.1), /*last=*/false);
  try {
    (void)client.result(open_run);
    FAIL() << "expected NOT_READY";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code, ErrorCode::kNotReady);
  }

  // Malformed metric parameters are BAD_REQUEST, not a dead connection.
  try {
    (void)client.query_metrics(open_run, {0.5});  // k < 1 is invalid
    FAIL() << "expected BAD_REQUEST";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code, ErrorCode::kBadRequest);
  }

  // An unknown policy is rejected at submission time.
  RunRequest bad;
  bad.policy = "definitely-not-a-policy";
  try {
    (void)client.submit_jobs(bad, make_jobs(3, 0.1));
    FAIL() << "expected BAD_REQUEST";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code, ErrorCode::kBadRequest);
  }

  // Out-of-order releases within a chunk are rejected as a unit.
  std::vector<Job> disordered = make_jobs(3, 0.1);
  std::swap(disordered[0].release, disordered[2].release);
  try {
    (void)client.submit_jobs(req, disordered);
    FAIL() << "expected BAD_REQUEST";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code, ErrorCode::kBadRequest);
  }

  std::vector<Job> tail = make_jobs(5, 0.1);
  for (Job& job : tail) job.release += 1.0;
  (void)client.submit_chunk(tail, /*last=*/true);
  EXPECT_EQ(client.wait(open_run).completions.size(), 10u);
}

// The v3 acceptance path: a tenant names its workload with one spec string
// instead of shipping job rows.  The daemon synthesizes the stream through
// workload::make_source, so the result is byte-identical to a local
// run_spec() with the same request -- and a malformed spec is a BAD_REQUEST
// at submission time, not a dead run.
TEST_F(DaemonTest, SpecNamedSubmitMatchesLocalRunSpec) {
  DaemonConfig config;
  config.workers = 2;
  start(std::move(config));

  const std::string spec = "poisson:n=250,load=0.9,dist=exp(1.2),seed=19";
  RunRequest req;
  req.policy = "rr";
  req.record_trace = false;

  Client client = Client::connect_tcp(port_, "spec-tenant");
  const std::uint64_t run_id = client.submit_spec(spec, req);
  const ResultMsg result = client.wait(run_id);

  RunRequest local = req;
  local.workload = spec;
  const RunResult offline = workload::run_spec(local);
  ASSERT_EQ(result.completions.size(), offline.schedule.n());
  for (JobId j = 0; j < offline.schedule.n(); ++j) {
    EXPECT_EQ(result.completions[j], offline.schedule.completion(j)) << j;
  }
  EXPECT_EQ(result.stats.l2, offline.stats.l2);
  EXPECT_EQ(result.stats.p99, offline.stats.p99);

  // Session accounting counts the synthesized jobs like streamed ones.
  const StatsReplyMsg stats = client.stats();
  const std::map<std::string, std::uint64_t> counters(stats.counters.begin(),
                                                      stats.counters.end());
  EXPECT_EQ(counters.at("runs.spec_named"), 1u);

  // A bad spec never becomes a run.
  try {
    (void)client.submit_spec("zipf:n=10", req);
    FAIL() << "expected BAD_REQUEST";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.code, ErrorCode::kBadRequest);
    EXPECT_NE(std::string(e.what()).find("workload spec"), std::string::npos)
        << e.what();
  }
}

// Wire-submitted trace: specs name daemon-host files, so they are gated
// behind DaemonConfig::trace_root: rejected outright when no root is
// configured, and resolved paths must stay inside the root -- a tenant
// cannot probe the daemon's filesystem through echoed open errors.
TEST_F(DaemonTest, TraceSpecsGatedByTraceRoot) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() /
                        ("tempofaird-traces-" + std::to_string(::getpid()));
  fs::create_directories(root);
  {
    std::ofstream out(root / "sample.csv");
    out << "id,release,size\n0,0.0,1.0\n1,0.5,2.0\n2,1.0,1.0\n";
  }

  RunRequest req;
  req.policy = "rr";
  req.record_trace = false;

  {
    DaemonConfig config;
    config.workers = 1;
    start(std::move(config));  // no trace root: every trace spec is refused
    Client client = Client::connect_tcp(port_, "trace-tenant");
    try {
      (void)client.submit_spec("trace:" + (root / "sample.csv").string(), req);
      FAIL() << "expected BAD_REQUEST";
    } catch (const ServerError& e) {
      EXPECT_EQ(e.code, ErrorCode::kBadRequest);
      EXPECT_NE(std::string(e.what()).find("disabled"), std::string::npos)
          << e.what();
    }
    daemon_->stop();
    daemon_.reset();
  }

  DaemonConfig config;
  config.workers = 1;
  config.trace_root = root.string();
  start(std::move(config));
  Client client = Client::connect_tcp(port_, "trace-tenant");

  // Inside the root -- spelled relative or absolute -- runs end-to-end.
  const std::uint64_t rel = client.submit_spec("trace:sample.csv", req);
  EXPECT_EQ(client.wait(rel).completions.size(), 3u);
  const std::uint64_t abs =
      client.submit_spec("trace:" + (root / "sample.csv").string(), req);
  EXPECT_EQ(client.wait(abs).completions.size(), 3u);

  // Escaping paths are refused before the daemon touches them.
  for (const std::string& spec :
       {std::string("trace:../sample.csv"), std::string("trace:/etc/hostname"),
        std::string("trace:a/../../b.csv")}) {
    try {
      (void)client.submit_spec(spec, req);
      FAIL() << "expected BAD_REQUEST for " << spec;
    } catch (const ServerError& e) {
      EXPECT_EQ(e.code, ErrorCode::kBadRequest);
      EXPECT_NE(std::string(e.what()).find("escapes"), std::string::npos)
          << e.what();
    }
  }
  fs::remove_all(root);
}

TEST_F(DaemonTest, UnixSocketRoundTrip) {
  const std::string path =
      "tempofaird-test-" + std::to_string(::getpid()) + ".sock";
  DaemonConfig config;
  config.workers = 1;
  config.unix_socket_path = path;
  daemon_ = std::make_unique<Daemon>(std::move(config));
  daemon_->start();

  workload::Rng rng(5);
  const Instance inst =
      workload::poisson_load(100, 1, 0.9, workload::ExponentialSize{1.5}, rng);
  RunRequest req;
  req.policy = "rr";
  req.record_trace = false;

  Client client = Client::connect_unix(path, "unix-tenant");
  const std::uint64_t run_id = client.submit(inst, req, /*chunk=*/30);
  const ResultMsg result = client.wait(run_id);

  const RunResult offline = run(in_submission_order(inst), req);
  ASSERT_EQ(result.completions.size(), offline.schedule.n());
  for (JobId j = 0; j < offline.schedule.n(); ++j) {
    EXPECT_EQ(result.completions[j], offline.schedule.completion(j)) << j;
  }
  daemon_->stop();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tempofair::serve
