// Byte-level round trips for the tempofaird wire layer and every protocol
// v1 message, plus the frame grammar's rejection paths (bad version, bad
// length, trailing garbage).  The daemon and client share these codecs, so
// a round trip here is exactly what travels the socket.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "serve/protocol.h"
#include "serve/wire.h"

namespace tempofair::serve {
namespace {

TEST(Wire, ScalarRoundTrip) {
  WireWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.f64(-1234.5e-7);
  w.str("hello");
  w.str("");

  WireReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -1234.5e-7);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, LittleEndianOnTheWire) {
  WireWriter w;
  w.u32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Wire, ReadPastEndThrows) {
  WireWriter w;
  w.u16(7);
  WireReader r(w.bytes());
  (void)r.u8();
  EXPECT_THROW((void)r.u32(), WireError);
}

TEST(Wire, ExpectExhaustedRejectsTrailingBytes) {
  WireWriter w;
  w.u8(1);
  w.u8(2);
  WireReader r(w.bytes());
  (void)r.u8();
  EXPECT_THROW(r.expect_exhausted("TEST"), WireError);
  (void)r.u8();
  EXPECT_NO_THROW(r.expect_exhausted("TEST"));
}

TEST(Wire, StringLengthIsBoundsChecked) {
  WireWriter w;
  w.u32(1000);  // claims 1000 bytes follow; none do
  WireReader r(w.bytes());
  EXPECT_THROW((void)r.str(), WireError);
}

// --- frame I/O over a real socketpair --------------------------------------

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(Wire, FrameRoundTripOverSocket) {
  SocketPair sp;
  WireWriter payload;
  payload.str("ping");
  write_frame(sp.a, FrameType::kStats, payload);
  const auto frame = read_frame(sp.b);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kStats);
  WireReader r(frame->payload);
  EXPECT_EQ(r.str(), "ping");
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, CleanEofReturnsNullopt) {
  SocketPair sp;
  ::close(sp.a);
  sp.a = -1;
  EXPECT_EQ(read_frame(sp.b), std::nullopt);
}

TEST(Wire, RejectsUnsupportedVersion) {
  SocketPair sp;
  const std::uint8_t header[8] = {0, 0, 0, 0,  // len = 0
                                  1,           // type = HELLO
                                  99,          // version
                                  0, 0};
  ASSERT_EQ(::send(sp.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  EXPECT_THROW((void)read_frame(sp.b), WireError);
}

TEST(Wire, RejectsNonzeroReserved) {
  SocketPair sp;
  const std::uint8_t header[8] = {0, 0, 0, 0, 1, kProtocolVersion, 1, 0};
  ASSERT_EQ(::send(sp.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  EXPECT_THROW((void)read_frame(sp.b), WireError);
}

TEST(Wire, RejectsOversizedPayloadLength) {
  SocketPair sp;
  std::uint8_t header[8] = {0, 0, 0, 0, 1, kProtocolVersion, 0, 0};
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(header, &huge, sizeof(huge));  // test runs little-endian hosts
  ASSERT_EQ(::send(sp.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  EXPECT_THROW((void)read_frame(sp.b), WireError);
}

TEST(Wire, TruncatedPayloadThrows) {
  SocketPair sp;
  const std::uint8_t header[8] = {4, 0, 0, 0, 1, kProtocolVersion, 0, 0};
  ASSERT_EQ(::send(sp.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  ::close(sp.a);  // payload never arrives
  sp.a = -1;
  EXPECT_THROW((void)read_frame(sp.b), WireError);
}

// --- message round trips ----------------------------------------------------

template <typename Msg, typename Decoder>
Msg round_trip(const Msg& msg, Decoder decoder) {
  WireWriter w;
  encode(w, msg);
  WireReader r(w.bytes());
  Msg out = decoder(r);
  EXPECT_TRUE(r.exhausted());
  return out;
}

TEST(Protocol, HelloRoundTrip) {
  HelloMsg msg;
  msg.tenant = "tenant-a";
  const HelloMsg out = round_trip(msg, decode_hello);
  EXPECT_EQ(out.version, kProtocolVersion);
  EXPECT_EQ(out.tenant, "tenant-a");
}

TEST(Protocol, HelloOkRoundTrip) {
  HelloOkMsg msg;
  msg.server = "tempofaird";
  msg.session_id = 42;
  const HelloOkMsg out = round_trip(msg, decode_hello_ok);
  EXPECT_EQ(out.server, "tempofaird");
  EXPECT_EQ(out.session_id, 42u);
}

TEST(Protocol, RunRequestRoundTripAllFields) {
  RunRequest req;
  req.policy = "laps:0.5";
  req.machines = 7;
  req.speed = 4.4;
  req.record_trace = false;
  req.hide_sizes = true;
  req.max_time = 123.5;
  req.max_steps = 999;
  req.max_zero_progress_steps = 17;
  req.use_fast_path = false;
  req.invariants = InvariantMode::kExhaustive;
  req.invariant_sample_period = 128;

  WireWriter w;
  encode_run_request(w, req);
  WireReader r(w.bytes());
  const RunRequest out = decode_run_request(r);
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(out.policy, req.policy);
  EXPECT_EQ(out.machines, req.machines);
  EXPECT_EQ(out.speed, req.speed);
  EXPECT_EQ(out.record_trace, req.record_trace);
  EXPECT_EQ(out.hide_sizes, req.hide_sizes);
  EXPECT_EQ(out.max_time, req.max_time);
  EXPECT_EQ(out.max_steps, req.max_steps);
  EXPECT_EQ(out.max_zero_progress_steps, req.max_zero_progress_steps);
  EXPECT_EQ(out.use_fast_path, req.use_fast_path);
  EXPECT_EQ(out.invariants, req.invariants);
  EXPECT_EQ(out.invariant_sample_period, req.invariant_sample_period);
  // Live hooks never travel the wire.
  EXPECT_EQ(out.live, nullptr);
  EXPECT_EQ(out.cancel, nullptr);
}

TEST(Protocol, RunRequestInfiniteMaxTimeSurvives) {
  RunRequest req;  // default max_time = kInfiniteTime
  WireWriter w;
  encode_run_request(w, req);
  WireReader r(w.bytes());
  EXPECT_EQ(decode_run_request(r).max_time, kInfiniteTime);
}

TEST(Protocol, SubmitJobsRoundTrip) {
  SubmitJobsMsg msg;
  msg.tag = 3;
  msg.first = true;
  msg.last = false;
  msg.request.policy = "srpt";
  msg.total_jobs = 100;
  msg.stream = true;
  msg.jobs = {{0, 0.0, 1.0, 1.0}, {0, 0.5, 2.5, 2.0}};

  const SubmitJobsMsg out = round_trip(msg, decode_submit_jobs);
  EXPECT_EQ(out.tag, 3u);
  EXPECT_TRUE(out.first);
  EXPECT_FALSE(out.last);
  EXPECT_EQ(out.request.policy, "srpt");
  EXPECT_EQ(out.total_jobs, 100u);
  EXPECT_TRUE(out.stream);
  ASSERT_EQ(out.jobs.size(), 2u);
  EXPECT_EQ(out.jobs[1].release, 0.5);
  EXPECT_EQ(out.jobs[1].size, 2.5);
  EXPECT_EQ(out.jobs[1].weight, 2.0);
}

TEST(Protocol, SubmitJobsMidChunkSkipsRequest) {
  SubmitJobsMsg msg;
  msg.tag = 9;
  msg.first = false;
  msg.last = true;
  msg.jobs = {{0, 1.0, 1.0, 1.0}};
  const SubmitJobsMsg out = round_trip(msg, decode_submit_jobs);
  EXPECT_FALSE(out.first);
  EXPECT_TRUE(out.last);
  ASSERT_EQ(out.jobs.size(), 1u);
}

TEST(Protocol, MetricsRoundTrip) {
  MetricsMsg msg;
  msg.run_id = 5;
  msg.phase = RunPhase::kRunning;
  msg.completed = 10;
  msg.total = 40;
  msg.stats.n = 10;
  msg.stats.l1 = 12.5;
  msg.stats.l2 = 4.25;
  msg.k_values = {4.25, 3.0};
  msg.pct_values = {1.5};
  const MetricsMsg out = round_trip(msg, decode_metrics);
  EXPECT_EQ(out.phase, RunPhase::kRunning);
  EXPECT_EQ(out.completed, 10u);
  EXPECT_EQ(out.total, 40u);
  EXPECT_EQ(out.stats.l1, 12.5);
  EXPECT_EQ(out.k_values, msg.k_values);
  EXPECT_EQ(out.pct_values, msg.pct_values);
}

TEST(Protocol, StatusRoundTripCarriesError) {
  StatusMsg msg;
  msg.run_id = 77;
  msg.phase = RunPhase::kFailed;
  msg.error = "policy exploded";
  const StatusMsg out = round_trip(msg, decode_status);
  EXPECT_EQ(out.run_id, 77u);
  EXPECT_EQ(out.phase, RunPhase::kFailed);
  EXPECT_EQ(out.error, "policy exploded");
}

TEST(Protocol, StatsReplyRoundTrip) {
  StatsReplyMsg msg;
  msg.counters = {{"engine.runs", 3}, {"jobs.accepted", 1000}};
  const StatsReplyMsg out = round_trip(msg, decode_stats_reply);
  EXPECT_EQ(out.counters, msg.counters);
}

TEST(Protocol, ResultRoundTripBitwiseCompletions) {
  ResultMsg msg;
  msg.run_id = 2;
  msg.policy = "rr";
  msg.wall_seconds = 0.125;
  msg.stats.n = 3;
  msg.stats.l2 = std::sqrt(14.0);
  msg.completions = {1.0, 2.0 / 3.0, 0.1};  // 0.1 is not exact in binary
  msg.invariants.mode = InvariantMode::kSampled;
  msg.invariants.epochs_seen = 640;
  msg.invariants.epochs_checked = 10;
  msg.invariants.checks_run = 70;
  const ResultMsg out = round_trip(msg, decode_result);
  EXPECT_EQ(out.policy, "rr");
  EXPECT_EQ(out.wall_seconds, 0.125);
  EXPECT_EQ(out.stats.l2, msg.stats.l2);
  EXPECT_EQ(out.completions, msg.completions);  // bitwise, not approximate
  EXPECT_EQ(out.invariants.mode, InvariantMode::kSampled);
  EXPECT_EQ(out.invariants.epochs_seen, 640u);
  EXPECT_EQ(out.invariants.epochs_checked, 10u);
  EXPECT_EQ(out.invariants.checks_run, 70u);
  EXPECT_TRUE(out.invariants.ok());
}

TEST(Protocol, ResultCarriesInvariantViolations) {
  ResultMsg msg;
  msg.run_id = 4;
  msg.policy = "corrupted";
  msg.invariants.mode = InvariantMode::kExhaustive;
  msg.invariants.epochs_seen = 12;
  msg.invariants.epochs_checked = 12;
  msg.invariants.checks_run = 84;
  msg.invariants.violations = 2;
  InvariantViolation v;
  v.check = "rate_bounds";
  v.detail = "rate 1.500000 exceeds speed 1.000000";
  v.time = 0.5;
  v.job = 3;
  msg.invariants.reports.push_back(v);
  v.check = "capacity";
  v.detail = "rates sum 2.000000 exceeds 1.000000";
  v.time = 1.5;
  v.job = kInvalidJob;
  msg.invariants.reports.push_back(v);

  const ResultMsg out = round_trip(msg, decode_result);
  EXPECT_FALSE(out.invariants.ok());
  EXPECT_EQ(out.invariants.violations, 2u);
  ASSERT_EQ(out.invariants.reports.size(), 2u);
  EXPECT_EQ(out.invariants.reports[0].check, "rate_bounds");
  EXPECT_EQ(out.invariants.reports[0].time, 0.5);
  EXPECT_EQ(out.invariants.reports[0].job, 3u);
  EXPECT_EQ(out.invariants.reports[1].check, "capacity");
  EXPECT_EQ(out.invariants.reports[1].job, kInvalidJob);
}

TEST(Protocol, DecodeRejectsBadInvariantMode) {
  RunRequest req;
  WireWriter w;
  encode_run_request(w, req);
  // The request tail is mode u8, period u64, then the v3 workload string
  // (u32 length prefix, empty here): the mode byte sits 13 from the end.
  std::vector<std::uint8_t> bytes(w.bytes().begin(), w.bytes().end());
  bytes[bytes.size() - 13] = 7;  // out of range
  WireReader r(bytes);
  EXPECT_THROW((void)decode_run_request(r), WireError);
}

TEST(Protocol, DecodeRejectsZeroSamplePeriod) {
  RunRequest req;
  req.invariants = InvariantMode::kSampled;
  WireWriter w;
  encode_run_request(w, req);
  // Period u64 sits just before the v3 workload string's u32 length prefix.
  std::vector<std::uint8_t> bytes(w.bytes().begin(), w.bytes().end());
  for (int i = 5; i <= 12; ++i) bytes[bytes.size() - i] = 0;  // period = 0
  WireReader r(bytes);
  EXPECT_THROW((void)decode_run_request(r), WireError);
}

TEST(Protocol, ErrorRoundTrip) {
  ErrorMsg msg;
  msg.code = ErrorCode::kThrottled;
  msg.message = "drain first";
  const ErrorMsg out = round_trip(msg, decode_error);
  EXPECT_EQ(out.code, ErrorCode::kThrottled);
  EXPECT_EQ(out.message, "drain first");
}

TEST(Protocol, SmallRequestsRoundTrip) {
  QueryMetricsMsg q;
  q.run_id = 6;
  q.k_norms = {2.0, 3.0};
  q.percentiles = {50.0, 99.0};
  const QueryMetricsMsg q2 = round_trip(q, decode_query_metrics);
  EXPECT_EQ(q2.run_id, 6u);
  EXPECT_EQ(q2.k_norms, q.k_norms);
  EXPECT_EQ(q2.percentiles, q.percentiles);

  RunStatusMsg s;
  s.run_id = 8;
  EXPECT_EQ(round_trip(s, decode_run_status).run_id, 8u);

  CancelMsg c;
  c.run_id = 9;
  EXPECT_EQ(round_trip(c, decode_cancel).run_id, 9u);

  CancelOkMsg ok;
  ok.run_id = 9;
  ok.phase = RunPhase::kRunning;
  EXPECT_EQ(round_trip(ok, decode_cancel_ok).phase, RunPhase::kRunning);

  GetResultMsg g;
  g.run_id = 11;
  EXPECT_EQ(round_trip(g, decode_get_result).run_id, 11u);

  SubmitOkMsg sub;
  sub.tag = 1;
  sub.run_id = 2;
  sub.accepted_jobs = 30;
  EXPECT_EQ(round_trip(sub, decode_submit_ok).accepted_jobs, 30u);
}

TEST(Protocol, DecodeRejectsBadPhase) {
  WireWriter w;
  w.u64(1);    // run_id
  w.u8(200);   // phase out of range
  w.u64(0);    // completed
  w.u64(0);    // total
  w.str("");   // error
  WireReader r(w.bytes());
  EXPECT_THROW((void)decode_status(r), WireError);
}

TEST(Protocol, DecodeRejectsTrailingGarbage) {
  HelloMsg msg;
  msg.tenant = "t";
  WireWriter w;
  encode(w, msg);
  w.u8(0);  // one stray byte
  WireReader r(w.bytes());
  EXPECT_THROW((void)decode_hello(r), WireError);
}

TEST(Protocol, RunPhaseNames) {
  EXPECT_EQ(to_string(RunPhase::kQueued), "queued");
  EXPECT_EQ(to_string(RunPhase::kRunning), "running");
  EXPECT_EQ(to_string(RunPhase::kDone), "done");
  EXPECT_EQ(to_string(RunPhase::kFailed), "failed");
  EXPECT_EQ(to_string(RunPhase::kCancelled), "cancelled");
}

}  // namespace
}  // namespace tempofair::serve
