#include "search/adversary.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "analysis/competitive.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "lpsolve/certify.h"
#include "lpsolve/flowtime_lp.h"
#include "lpsolve/lower_bounds.h"
#include "lpsolve/simplex.h"
#include "obs/obs.h"
#include "policies/registry.h"
#include "workload/adversarial.h"
#include "workload/rng.h"

namespace tempofair::search {

namespace {

/// Slot cap for the search's certification grid: coarser than opt_bounds'
/// (600) because every record is certified through the *dense* simplex plus
/// verify_certificate's exact re-solve, whose tableaus scale with
/// jobs x slots.  Coarsening only loosens the bound (ratios get a slightly
/// smaller denominator), never invalidates it.
constexpr double kSearchMaxSlots = 96.0;

/// Hard cap on dense-LP variables; above it the denominator falls back to
/// the certified trivial bound instead of an unbounded simplex tableau.
constexpr std::size_t kMaxLpVars = 8000;

/// Mutated-size clamp: keeps every candidate inside Instance validation and
/// clear of the kMinLpJobSize drop threshold.
constexpr double kMinSize = 1e-6;
constexpr double kMaxSize = 1e6;

struct Candidate {
  std::vector<double> releases;
  std::vector<double> sizes;
  std::string family;
};

Candidate candidate_of(const Instance& instance, std::string family) {
  Candidate c;
  c.family = std::move(family);
  c.releases.reserve(instance.n());
  c.sizes.reserve(instance.n());
  for (const Job& j : instance.jobs()) {
    c.releases.push_back(j.release);
    c.sizes.push_back(j.size);
  }
  return c;
}

Instance instance_of(const Candidate& c) {
  std::vector<std::pair<Time, Work>> pairs;
  pairs.reserve(c.releases.size());
  for (std::size_t i = 0; i < c.releases.size(); ++i) {
    pairs.emplace_back(c.releases[i], c.sizes[i]);
  }
  return Instance::from_pairs(pairs);
}

void validate(const SearchOptions& options) {
  if (!(options.k >= 1.0) || !std::isfinite(options.k)) {
    throw std::invalid_argument("search: k must be finite and >= 1");
  }
  if (options.machines < 1) {
    throw std::invalid_argument("search: machines must be >= 1");
  }
  if (!(options.speed > 0.0) || !std::isfinite(options.speed)) {
    throw std::invalid_argument("search: speed must be finite and > 0");
  }
  if (options.budget == 0) {
    throw std::invalid_argument("search: budget must be >= 1");
  }
  if (options.max_jobs < 4) {
    throw std::invalid_argument("search: max_jobs must be >= 4");
  }
  (void)make_policy(options.policy);  // throws on an unknown spec
}

/// The Bansal-Pruhs batch-plus-stream shape scaled into the job cap; the
/// designated hand-built baseline family.
Instance baseline_instance(const SearchOptions& options) {
  const std::size_t n = options.max_jobs;
  const std::size_t batch = std::max<std::size_t>(2, n / 3);
  return workload::batch_plus_stream(batch, n - batch, 1.05);
}

}  // namespace

double pick_lp_slot(const Instance& instance, int machines) {
  double slot = std::min(1.0, instance.min_size());
  const double horizon =
      instance.horizon_bound(machines, 1.0) - instance.min_release();
  const double min_slot = horizon / kSearchMaxSlots;
  // The negated comparison also catches NaN (degenerate sizes/horizons).
  if (!(slot >= min_slot)) slot = min_slot;
  if (!(slot > 0.0) || !std::isfinite(slot)) slot = 1.0;
  return slot;
}

CertifiedEval evaluate_certified(const Instance& instance,
                                 const SearchOptions& options, double lp_slot) {
  CertifiedEval out;
  if (instance.empty()) return out;

  RunRequest request;
  request.policy = options.policy;
  request.machines = options.machines;
  request.speed = options.speed;
  request.record_trace = false;
  out.cost_power = flow_lk_power(run(instance, request).schedule, options.k);

  const double slot =
      lp_slot > 0.0 ? lp_slot : pick_lp_slot(instance, options.machines);
  out.lp_slot = slot;

  const lpsolve::CertifiedBound trivial =
      lpsolve::certified_trivial_bound(instance, options.k);
  double lb = trivial.certified ? trivial.value : 0.0;
  bool certified = trivial.certified;

  // The exact LP denominator: float simplex on the dense discretized LP,
  // then verify_certificate's warm-started exact re-solve.  Failures of any
  // kind simply leave the trivial bound in place -- never a wrong bound.
  lpsolve::FlowtimeLpOptions lp_options;
  lp_options.k = options.k;
  lp_options.machines = options.machines;
  lp_options.slot = slot;
  try {
    const lpsolve::LinearProgram lp =
        lpsolve::build_flowtime_lp(instance, lp_options);
    if (lp.num_vars() > 0 && lp.num_vars() <= kMaxLpVars) {
      const lpsolve::LpSolution sol = lpsolve::solve_lp(lp);
      if (sol.status == lpsolve::SolveStatus::kOptimal) {
        const lpsolve::CertifiedBound cert = lpsolve::verify_certificate(lp, sol);
        if (cert.certified) {
          // LP optimum <= 2 OPT^k, so half of it lower-bounds OPT^k.
          lb = std::max(lb, cert.value / 2.0);
          certified = true;
        }
      }
    }
  } catch (const std::exception&) {
    // Grid construction refused the instance; the trivial bound stands.
  }

  out.certified_lb = lb;
  const bool lb_usable =
      std::isfinite(lb) && lb >= std::numeric_limits<double>::min();
  const bool cost_usable =
      std::isfinite(out.cost_power) && out.cost_power > 0.0;
  if (certified && lb_usable && cost_usable) {
    out.ratio = std::pow(out.cost_power / lb, 1.0 / options.k);
    out.ok = std::isfinite(out.ratio);
  }
  obs::add(out.ok ? "search.certify.ok" : "search.certify.failed", 1);
  return out;
}

std::vector<std::pair<std::string, Instance>> seed_instances(
    const SearchOptions& options) {
  const std::size_t n = options.max_jobs;
  std::vector<std::pair<std::string, Instance>> seeds;
  seeds.emplace_back("batch_plus_stream", baseline_instance(options));
  // Geometric size levels: the nested-classes shape behind the cited
  // Omega(n^{2 eps_p}) bound; deepest level count fitting the cap.
  int levels = 2;
  while ((std::size_t{1} << (levels + 1)) - 1 <= n) ++levels;
  seeds.emplace_back("geometric_levels", workload::geometric_levels(levels));
  seeds.emplace_back("staircase", workload::staircase(n));
  // Kuo's SRPT-vs-FCFS starvation shape: one slightly-larger job starved by
  // a zero-slack unit stream.
  seeds.emplace_back("srpt_starvation",
                     workload::srpt_starvation(n - 1, 2.0, 1.0));
  // Dual-fitting stress (Angelopoulos-Lucarelli-Thang adversaries alternate
  // saturation and overload): bursts that fully drain in between.
  seeds.emplace_back(
      "overload_pulse",
      workload::overload_pulse(2, std::max<std::size_t>(2, n / 2),
                               options.machines));
  return seeds;
}

CertifiedEval baseline_hard_family(const SearchOptions& options) {
  return evaluate_certified(baseline_instance(options), options);
}

SearchResult search_adversary(const SearchOptions& options) {
  validate(options);
  workload::Rng rng(options.seed);
  SearchResult res;

  const std::size_t max_certs =
      options.max_certifications != 0
          ? options.max_certifications
          : std::max<std::size_t>(8, options.budget / 16);

  auto set_best = [&](const Instance& instance, const CertifiedEval& eval,
                      const std::string& family) {
    AdversaryRecord rec;
    rec.policy = options.policy;
    rec.k = options.k;
    rec.machines = options.machines;
    rec.speed = options.speed;
    rec.seed = options.seed;
    rec.budget = options.budget;
    rec.evals = res.stats.evals;
    rec.family = family;
    for (const Job& j : instance.jobs()) {
      rec.releases.push_back(j.release);
      rec.sizes.push_back(j.size);
    }
    rec.lp_slot = eval.lp_slot;
    rec.cost_power = eval.cost_power;
    rec.certified_lb = eval.certified_lb;
    rec.ratio = eval.ratio;
    res.best = std::move(rec);
    res.found = true;
  };

  // Screening objective: the cheap side of the ratio bracket (cost vs the
  // SRPT/SJF proxy; three fast-path runs).  Negative = unusable candidate.
  auto screen = [&](const Instance& instance) -> double {
    lpsolve::OptBoundsOptions bo;
    bo.k = options.k;
    bo.machines = options.machines;
    bo.with_lp = false;
    const lpsolve::OptBounds bounds = lpsolve::opt_bounds(instance, bo);
    const auto policy = make_policy(options.policy);
    analysis::RatioOptions ro;
    ro.k = options.k;
    ro.machines = options.machines;
    ro.speed = options.speed;
    ro.with_lp = false;
    const analysis::RatioMeasurement m =
        analysis::measure_ratio(instance, *policy, ro, bounds);
    if (m.lb_degenerate || !(m.ratio_vs_proxy > 0.0) ||
        !std::isfinite(m.ratio_vs_proxy)) {
      return -1.0;
    }
    return m.ratio_vs_proxy;
  };

  // Stage 0: fully certify every hard-family seed, so the result is never
  // worse than the hand-built baselines.
  const auto seeds = seed_instances(options);
  for (const auto& [family, instance] : seeds) {
    const CertifiedEval eval = evaluate_certified(instance, options);
    ++res.stats.certifications;
    if (eval.ok && (!res.found || eval.ratio > res.best.ratio)) {
      set_best(instance, eval, family);
    }
  }

  auto mutate = [&](Candidate c) -> Candidate {
    const std::size_t n = c.releases.size();
    const auto pick = [&](std::size_t count) -> std::size_t {
      return static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(count) - 1));
    };
    const double span = std::max(
        1.0, *std::max_element(c.releases.begin(), c.releases.end()));
    switch (rng.uniform_int(0, 6)) {
      case 0: {  // jitter one arrival
        const std::size_t i = pick(n);
        c.releases[i] =
            std::max(0.0, c.releases[i] + rng.uniform(-0.25, 0.25) * span);
        break;
      }
      case 1: {  // rescale one size
        const std::size_t i = pick(n);
        c.sizes[i] = std::clamp(c.sizes[i] * std::exp(rng.uniform(-0.5, 0.5)),
                                kMinSize, kMaxSize);
        break;
      }
      case 2: {  // stretch or compress every inter-arrival gap
        const double f = std::exp(rng.uniform(-0.25, 0.25));
        for (double& r : c.releases) r *= f;
        break;
      }
      case 3: {  // batchify: pull one arrival to time 0
        c.releases[pick(n)] = 0.0;
        break;
      }
      case 4: {  // duplicate a job (slightly delayed copy)
        const std::size_t i = pick(n);
        if (n < options.max_jobs) {
          c.releases.push_back(c.releases[i] + rng.uniform(0.0, 1.0));
          c.sizes.push_back(c.sizes[i]);
        } else {
          c.releases[i] += rng.uniform(0.0, 1.0);
        }
        break;
      }
      case 5: {  // drop a job
        const std::size_t i = pick(n);
        if (n > 4) {
          c.releases.erase(c.releases.begin() + static_cast<std::ptrdiff_t>(i));
          c.sizes.erase(c.sizes.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          c.sizes[i] = std::clamp(c.sizes[i] * 0.5, kMinSize, kMaxSize);
        }
        break;
      }
      default: {  // collide two arrivals
        c.releases[pick(n)] = c.releases[pick(n)];
        break;
      }
    }
    c.family = "search";
    return c;
  };

  // Stage 1: greedy local search on the screening objective, certifying a
  // candidate only when it screens better than the champion did when it was
  // crowned, with evolutionary restarts from a fresh seed family on stall.
  Candidate cur = res.found
                      ? Candidate{res.best.releases, res.best.sizes, "search"}
                      : candidate_of(seeds.front().second, "search");
  double cur_screen = screen(instance_of(cur));
  ++res.stats.evals;
  double champ_screen = cur_screen;
  std::size_t stale = 0;

  while (res.stats.evals < options.budget) {
    const Candidate cand = mutate(cur);
    const Instance instance = instance_of(cand);
    const double s = screen(instance);
    ++res.stats.evals;
    if (s < 0.0) {
      ++res.stats.skipped_degenerate;
      ++stale;
    } else if (s > cur_screen) {
      cur = cand;
      cur_screen = s;
      stale = 0;
      if (s > champ_screen && res.stats.certifications < max_certs) {
        const CertifiedEval eval = evaluate_certified(instance, options);
        ++res.stats.certifications;
        if (eval.ok && (!res.found || eval.ratio > res.best.ratio)) {
          set_best(instance, eval, "search");
          ++res.stats.improvements;
        }
        // Whether or not it certified better, require a strictly better
        // screen before paying for the next exact solve.
        champ_screen = s;
      }
    } else {
      ++stale;
    }
    if (stale >= options.restart_after && res.stats.evals < options.budget) {
      ++res.stats.restarts;
      stale = 0;
      const auto& [family, seed_inst] = seeds[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(seeds.size()) - 1))];
      cur = mutate(candidate_of(seed_inst, family));
      cur_screen = screen(instance_of(cur));
      ++res.stats.evals;
      if (cur_screen < 0.0) cur_screen = 0.0;
    }
  }

  obs::add("search.evals", res.stats.evals);
  obs::add("search.certifications", res.stats.certifications);
  return res;
}

namespace {

bool rel_close(double a, double b, double tol = 1e-9) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::isfinite(a) && std::isfinite(b) && std::abs(a - b) <= tol * scale;
}

}  // namespace

VerifyReport verify_record(const AdversaryRecord& record) {
  VerifyReport rep;
  Instance instance;
  try {
    instance = record_instance(record);
  } catch (const std::exception& e) {
    rep.error = std::string("invalid instance: ") + e.what();
    return rep;
  }
  if (!(record.lp_slot > 0.0) || !std::isfinite(record.lp_slot)) {
    rep.error = "invalid lp_slot";
    return rep;
  }

  SearchOptions options;
  options.policy = record.policy;
  options.k = record.k;
  options.machines = record.machines;
  options.speed = record.speed;
  CertifiedEval eval;
  try {
    validate(options);
    eval = evaluate_certified(instance, options, record.lp_slot);
  } catch (const std::exception& e) {
    rep.error = std::string("re-evaluation failed: ") + e.what();
    return rep;
  }
  if (!eval.ok) {
    rep.error = "denominator did not re-certify";
    return rep;
  }
  if (!rel_close(eval.cost_power, record.cost_power)) {
    rep.error = "cost_power mismatch";
    return rep;
  }
  if (!rel_close(eval.certified_lb, record.certified_lb)) {
    rep.error = "certified_lb mismatch";
    return rep;
  }
  if (!rel_close(eval.ratio, record.ratio)) {
    rep.error = "ratio mismatch";
    return rep;
  }
  rep.ok = true;
  return rep;
}

}  // namespace tempofair::search
