// Adversary-instance search against the certified lower bounds.
//
// PR 4 made lower bounds exact (lpsolve's rational certificates) and PR 5
// made simulation nearly free (FastForwardCore).  This module closes the
// ROADMAP's loop: an optimizer that *searches* for instances maximizing
//
//     measured_ratio = (cost_power / certified_lb)^(1/k)
//
// per (policy, k, machines, speed) cell -- the tightest known empirical
// constants for Theorem 1's O(k/eps^k) bound at k in {1, 2, 3}.
//
// Architecture (all deterministic under SearchOptions::seed):
//
//  1. Seeding.  The known hard families start the search: the Bansal-Pruhs
//     batch-plus-stream staircase behind the cited l2 lower bound, geometric
//     size levels, the SRPT-starvation shape from the Kuo
//     starvation-mitigation tradeoff, and dual-fitting stress pulses
//     (Angelopoulos-Lucarelli-Thang adversaries saturate capacity, then
//     spike) -- see PAPERS.md.  Every seed is fully certified up front, so
//     the search result is never worse than the hand-built baseline.
//
//  2. Screening.  Local-search mutations (arrival jitter, size scaling, gap
//     stretch, batchify, duplicate/drop/collide) are ranked by the *cheap*
//     side of the ratio bracket -- cost vs the SRPT/SJF proxy, three
//     FastForwardCore runs per candidate -- with evolutionary restarts from
//     a fresh seed family after a stall.  lb-degenerate candidates
//     (RatioMeasurement::lb_degenerate) are skipped, never scored.
//
//  3. Certification.  A candidate that screens better than the incumbent
//     champion did is promoted to the exact denominator: the certified
//     trivial bound plus the discretized flow-time LP solved by the float
//     simplex and re-verified by verify_certificate's warm-started exact
//     re-solve.  Only a certified ratio may become the new record.
//
// Every record re-verifies from its JSON alone (verify_record): re-run the
// policy, rebuild the identical LP grid from the recorded slot width, and
// re-certify in exact arithmetic.  The nightly CI job does exactly this for
// the committed records before comparing new search results against them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "search/record.h"

namespace tempofair::search {

struct SearchOptions {
  std::string policy = "rr";
  double k = 2.0;
  int machines = 1;
  double speed = 1.0;
  std::uint64_t seed = 1;
  /// Screening evaluations (the budget unit: one mutation scored).
  std::size_t budget = 2000;
  /// Instance-size cap; keeps the exact LP certification tractable.
  std::size_t max_jobs = 12;
  /// Consecutive non-improving screens before an evolutionary restart.
  std::size_t restart_after = 60;
  /// Cap on full LP certifications (0 = derived from budget).
  std::size_t max_certifications = 0;
};

struct SearchStats {
  std::size_t evals = 0;            ///< screening evaluations performed
  std::size_t certifications = 0;   ///< full exact-LP promotions
  std::size_t improvements = 0;     ///< certified record improvements
  std::size_t skipped_degenerate = 0;  ///< lb-degenerate candidates skipped
  std::size_t restarts = 0;
};

struct SearchResult {
  AdversaryRecord best;
  SearchStats stats;
  /// False only when no candidate (not even a seed) certified.
  bool found = false;
};

/// One fully-certified evaluation of an instance in a search cell.
struct CertifiedEval {
  double cost_power = 0.0;
  double certified_lb = 0.0;
  double ratio = 0.0;      ///< (cost_power / certified_lb)^(1/k)
  double lp_slot = 0.0;    ///< grid width the certificate used
  bool ok = false;         ///< certified and non-degenerate
};

struct VerifyReport {
  bool ok = false;
  std::string error;  ///< first failed check, empty when ok
};

/// The deterministic LP slot width the search certifies with: fine enough
/// for a meaningful bound, coarse enough that the dense simplex plus the
/// exact re-solve stay cheap.  Recorded per record so re-verification
/// rebuilds the identical grid.
[[nodiscard]] double pick_lp_slot(const Instance& instance, int machines);

/// Full certified evaluation: policy run at `speed` for the numerator; the
/// certified trivial bound max'd with the dense flow-time LP certified by
/// verify_certificate (warm-started exact re-solve) for the denominator.
/// ok == false when nothing certifies or the denominator is degenerate.
[[nodiscard]] CertifiedEval evaluate_certified(const Instance& instance,
                                               const SearchOptions& options,
                                               double lp_slot = 0.0);

/// The hard families seeding the search, adapted to options.max_jobs.
[[nodiscard]] std::vector<std::pair<std::string, Instance>> seed_instances(
    const SearchOptions& options);

/// The hand-built baseline: the certified ratio of the Bansal-Pruhs
/// batch-plus-stream family in this cell (the committed reference the k=2
/// search must match or beat).
[[nodiscard]] CertifiedEval baseline_hard_family(const SearchOptions& options);

/// Runs the search.  Deterministic: identical options (seed and budget
/// included) produce a byte-identical best record.
[[nodiscard]] SearchResult search_adversary(const SearchOptions& options);

/// Re-verifies an archived record from its JSON content alone: re-runs the
/// policy, re-certifies the denominator on the recorded grid, and checks
/// every recorded number (relative tolerance 1e-9 -- the certificate itself
/// is exact; the tolerance only absorbs cross-libm pow differences).
[[nodiscard]] VerifyReport verify_record(const AdversaryRecord& record);

}  // namespace tempofair::search
