// Adversary-search records: the instance-plus-certificate archive format.
//
// One record is one searched instance together with everything needed to
// re-verify it from scratch on another day (or another machine): the
// (policy, k, machines, speed) cell it stresses, the exact instance
// (releases and sizes serialized with %.17g so every double round-trips
// bit-for-bit), the LP discretization the certificate used, and the measured
// numbers.  The re-verification invariant (enforced by verify_record in
// adversary.h, the search tests, and the nightly CI job): an archived record
// is never trusted beyond what a fresh policy run plus lpsolve's exact
// certificate machinery (verify_certificate) re-confirms.
//
// Format "tempofair-adversary-v1": a flat JSON object of numbers, strings
// and number arrays.  record_from_json accepts exactly what record_to_json
// emits plus insignificant whitespace; anything else throws.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"

namespace tempofair::search {

inline constexpr const char* kRecordFormat = "tempofair-adversary-v1";

struct AdversaryRecord {
  std::string policy = "rr";  ///< policy spec (policies/registry.h)
  double k = 2.0;
  int machines = 1;
  double speed = 1.0;          ///< policy runs at this speed; OPT at speed 1
  std::uint64_t seed = 0;      ///< search seed that produced the record
  std::uint64_t budget = 0;    ///< screening-eval budget of that search
  std::uint64_t evals = 0;     ///< screening evals spent when this was found
  std::string family;          ///< seed family / "search" for mutated finds
  std::vector<double> releases;
  std::vector<double> sizes;
  /// LP discretization width the certificate used (the exact double, so
  /// re-verification rebuilds the identical grid).
  double lp_slot = 1.0;
  double cost_power = 0.0;     ///< sum_j F_j^k under `policy` at `speed`
  double certified_lb = 0.0;   ///< exact-certified lower bound on OPT^k
  double ratio = 0.0;          ///< (cost_power / certified_lb)^(1/k)
};

/// Serializes `record` as the v1 JSON object (stable key order, %.17g
/// doubles): byte-identical output for identical records.
[[nodiscard]] std::string record_to_json(const AdversaryRecord& record);

/// Parses a v1 record.  Throws std::invalid_argument on malformed JSON, a
/// wrong/missing format marker, missing keys, or mismatched array lengths.
[[nodiscard]] AdversaryRecord record_from_json(const std::string& text);

/// The record's instance (ids in array order).  Throws std::invalid_argument
/// if the stored releases/sizes do not form a valid instance.
[[nodiscard]] Instance record_instance(const AdversaryRecord& record);

}  // namespace tempofair::search
