#include "search/record.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <utility>

namespace tempofair::search {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void append_array(std::string& out, const char* key,
                  const std::vector<double>& values) {
  out += "  \"";
  out += key;
  out += "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += fmt_double(values[i]);
  }
  out += "]";
}

/// Strict scanner for the v1 subset: one flat object whose values are
/// numbers, strings, or arrays of numbers.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void parse_object() {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      const std::string key = parse_string();
      expect(':');
      parse_value(key);
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after object");
  }

  [[nodiscard]] double number(const std::string& key) const {
    const auto it = numbers_.find(key);
    if (it == numbers_.end()) fail("missing number field \"" + key + "\"");
    return it->second.first;
  }
  [[nodiscard]] std::uint64_t integer(const std::string& key) const {
    const auto it = numbers_.find(key);
    if (it == numbers_.end()) fail("missing integer field \"" + key + "\"");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.second.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') {
      fail("field \"" + key + "\" is not an unsigned integer");
    }
    return static_cast<std::uint64_t>(v);
  }
  [[nodiscard]] const std::string& string(const std::string& key) const {
    const auto it = strings_.find(key);
    if (it == strings_.end()) fail("missing string field \"" + key + "\"");
    return it->second;
  }
  [[nodiscard]] const std::vector<double>& array(const std::string& key) const {
    const auto it = arrays_.find(key);
    if (it == arrays_.end()) fail("missing array field \"" + key + "\"");
    return it->second;
  }

 private:
  void parse_value(const std::string& key) {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      strings_[key] = parse_string();
    } else if (c == '[') {
      ++pos_;
      std::vector<double> out;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
      } else {
        while (true) {
          out.push_back(parse_number().first);
          skip_ws();
          const char d = next();
          if (d == ']') break;
          if (d != ',') fail("expected ',' or ']'");
        }
      }
      arrays_[key] = std::move(out);
    } else {
      numbers_[key] = parse_number();
    }
  }

  [[nodiscard]] std::pair<double, std::string> parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == 'i' ||
            text_[pos_] == 'n' || text_[pos_] == 'f' || text_[pos_] == 'a')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty()) fail("expected a number");
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number " + token);
    return {v, token};
  }

  [[nodiscard]] std::string parse_string() {
    skip_ws();
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        if (e == 'n') {
          out.push_back('\n');
        } else if (e == '"' || e == '\\') {
          out.push_back(e);
        } else {
          fail("unsupported escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    skip_ws();
    if (next() != c) fail(std::string("expected '") + c + "'");
  }
  [[noreturn]] static void fail(const std::string& what) {
    throw std::invalid_argument("adversary record: " + what);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::map<std::string, std::pair<double, std::string>> numbers_;
  std::map<std::string, std::string> strings_;
  std::map<std::string, std::vector<double>> arrays_;
};

}  // namespace

std::string record_to_json(const AdversaryRecord& record) {
  std::string out = "{\n";
  out += "  \"format\": \"";
  out += kRecordFormat;
  out += "\",\n";
  out += "  \"policy\": \"" + json_escape(record.policy) + "\",\n";
  out += "  \"k\": " + fmt_double(record.k) + ",\n";
  out += "  \"machines\": " + std::to_string(record.machines) + ",\n";
  out += "  \"speed\": " + fmt_double(record.speed) + ",\n";
  out += "  \"seed\": " + std::to_string(record.seed) + ",\n";
  out += "  \"budget\": " + std::to_string(record.budget) + ",\n";
  out += "  \"evals\": " + std::to_string(record.evals) + ",\n";
  out += "  \"family\": \"" + json_escape(record.family) + "\",\n";
  append_array(out, "releases", record.releases);
  out += ",\n";
  append_array(out, "sizes", record.sizes);
  out += ",\n";
  out += "  \"lp_slot\": " + fmt_double(record.lp_slot) + ",\n";
  out += "  \"cost_power\": " + fmt_double(record.cost_power) + ",\n";
  out += "  \"certified_lb\": " + fmt_double(record.certified_lb) + ",\n";
  out += "  \"ratio\": " + fmt_double(record.ratio) + "\n";
  out += "}\n";
  return out;
}

AdversaryRecord record_from_json(const std::string& text) {
  Scanner scanner(text);
  scanner.parse_object();
  if (scanner.string("format") != kRecordFormat) {
    throw std::invalid_argument("adversary record: unknown format \"" +
                                scanner.string("format") + "\"");
  }
  AdversaryRecord rec;
  rec.policy = scanner.string("policy");
  rec.k = scanner.number("k");
  rec.machines = static_cast<int>(scanner.integer("machines"));
  rec.speed = scanner.number("speed");
  rec.seed = scanner.integer("seed");
  rec.budget = scanner.integer("budget");
  rec.evals = scanner.integer("evals");
  rec.family = scanner.string("family");
  rec.releases = scanner.array("releases");
  rec.sizes = scanner.array("sizes");
  rec.lp_slot = scanner.number("lp_slot");
  rec.cost_power = scanner.number("cost_power");
  rec.certified_lb = scanner.number("certified_lb");
  rec.ratio = scanner.number("ratio");
  if (rec.releases.size() != rec.sizes.size()) {
    throw std::invalid_argument(
        "adversary record: releases/sizes length mismatch");
  }
  if (rec.releases.empty()) {
    throw std::invalid_argument("adversary record: empty instance");
  }
  return rec;
}

Instance record_instance(const AdversaryRecord& record) {
  if (record.releases.size() != record.sizes.size()) {
    throw std::invalid_argument(
        "adversary record: releases/sizes length mismatch");
  }
  std::vector<std::pair<Time, Work>> pairs;
  pairs.reserve(record.releases.size());
  for (std::size_t i = 0; i < record.releases.size(); ++i) {
    pairs.emplace_back(record.releases[i], record.sizes[i]);
  }
  return Instance::from_pairs(pairs);
}

}  // namespace tempofair::search
