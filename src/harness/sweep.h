// Parameter-sweep runner: evaluates a callable over a grid of
// configurations in parallel, preserving result order.
//
// The callable is taken as a deduced template parameter (no std::function
// type erasure on the hot path; the result type comes from
// std::invoke_result_t), and scheduling is chunked via
// ThreadPool::parallel_for.  The seeded overload hands every config a
// derived RNG seed computed from (seed, index) alone, so sweep results are
// bit-identical regardless of worker count or execution order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "harness/thread_pool.h"

namespace tempofair::harness {

/// Mixes (seed, stream) into an independent 64-bit seed (splitmix64 over
/// the golden-ratio-striped stream index).  Order-independent: stream i's
/// seed never depends on how many streams exist or who drew first.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed,
                                        std::uint64_t stream) noexcept;

/// Evaluates `eval(config)` for every config, in parallel on `pool`,
/// returning results in input order.  Exceptions propagate.  Safe to call
/// from inside a pool task (the caller helps; see ThreadPool).
template <typename Config, typename F>
auto run_sweep(ThreadPool& pool, const std::vector<Config>& configs, F&& eval)
    -> std::vector<std::invoke_result_t<F&, const Config&>> {
  using Result = std::invoke_result_t<F&, const Config&>;
  std::vector<Result> results(configs.size());
  pool.parallel_for(configs.size(),
                    [&](std::size_t i) { results[i] = eval(configs[i]); });
  return results;
}

/// Seeded overload: evaluates `eval(config, derive_seed(seed, index))` so
/// each config owns a deterministic, order-independent RNG stream.
template <typename Config, typename F>
auto run_sweep(ThreadPool& pool, const std::vector<Config>& configs,
               std::uint64_t seed, F&& eval)
    -> std::vector<std::invoke_result_t<F&, const Config&, std::uint64_t>> {
  using Result = std::invoke_result_t<F&, const Config&, std::uint64_t>;
  std::vector<Result> results(configs.size());
  pool.parallel_for(configs.size(), [&](std::size_t i) {
    results[i] = eval(configs[i], derive_seed(seed, i));
  });
  return results;
}

/// Sharded overload for sweeps whose evaluator is worth amortizing: the
/// cells are split into contiguous shards, each shard builds ONE context
/// via `make_ctx()` and evaluates all its cells with it sequentially.  The
/// context carries whatever per-worker state pays to reuse across cells --
/// typically an EngineCore (alive-set buffers, the schedule's TraceArena)
/// so a thousand-cell sweep does not reallocate per cell.
///
/// Determinism: each cell's seed is derive_seed(seed, cell_index) -- a pure
/// function of the cell, never of the shard geometry -- and each result is
/// written to results[cell_index], so the merged output is byte-identical
/// for ANY shard count, worker count, or execution order (the CI
/// determinism gate diffs two --jobs values over exactly this path).
/// `shards` = 0 picks 2 shards per worker (enough slack for the
/// work-stealing pool to balance uneven shards without fragmenting
/// context reuse).
template <typename Config, typename MakeCtx, typename F>
auto run_sweep_sharded(ThreadPool& pool, const std::vector<Config>& configs,
                       std::uint64_t seed, MakeCtx&& make_ctx, F&& eval,
                       std::size_t shards = 0)
    -> std::vector<std::invoke_result_t<F&, std::invoke_result_t<MakeCtx&>&,
                                        const Config&, std::uint64_t>> {
  using Context = std::invoke_result_t<MakeCtx&>;
  using Result =
      std::invoke_result_t<F&, Context&, const Config&, std::uint64_t>;
  const std::size_t n = configs.size();
  std::vector<Result> results(n);
  if (n == 0) return results;
  if (shards == 0) shards = 2 * pool.size();
  shards = std::max<std::size_t>(1, std::min(shards, n));
  const std::size_t per_shard = (n + shards - 1) / shards;
  // Grain 1: one task per shard, so a shard's cells never split across
  // workers (context reuse) while distinct shards still steal freely.
  pool.parallel_for(
      shards,
      [&](std::size_t s) {
        Context ctx = make_ctx();
        const std::size_t lo = s * per_shard;
        const std::size_t hi = std::min(n, lo + per_shard);
        for (std::size_t i = lo; i < hi; ++i) {
          results[i] = eval(ctx, configs[i], derive_seed(seed, i));
        }
      },
      /*grain=*/1);
  return results;
}

/// Convenience: linear sweep over [lo, hi] with `count` points (inclusive).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

}  // namespace tempofair::harness
