// Parameter-sweep runner: evaluates a function over a grid of configurations
// in parallel, preserving result order.
#pragma once

#include <functional>
#include <vector>

#include "harness/thread_pool.h"

namespace tempofair::harness {

/// Evaluates `eval(config)` for every config, in parallel on `pool`,
/// returning results in input order.  Exceptions propagate.
template <typename Config, typename Result>
std::vector<Result> run_sweep(ThreadPool& pool,
                              const std::vector<Config>& configs,
                              const std::function<Result(const Config&)>& eval) {
  std::vector<Result> results(configs.size());
  pool.parallel_for(configs.size(), [&](std::size_t i) {
    results[i] = eval(configs[i]);
  });
  return results;
}

/// Convenience: linear sweep over [lo, hi] with `count` points (inclusive).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

}  // namespace tempofair::harness
