// Parameter-sweep runner: evaluates a callable over a grid of
// configurations in parallel, preserving result order.
//
// The callable is taken as a deduced template parameter (no std::function
// type erasure on the hot path; the result type comes from
// std::invoke_result_t), and scheduling is chunked via
// ThreadPool::parallel_for.  The seeded overload hands every config a
// derived RNG seed computed from (seed, index) alone, so sweep results are
// bit-identical regardless of worker count or execution order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "harness/thread_pool.h"

namespace tempofair::harness {

/// Mixes (seed, stream) into an independent 64-bit seed (splitmix64 over
/// the golden-ratio-striped stream index).  Order-independent: stream i's
/// seed never depends on how many streams exist or who drew first.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed,
                                        std::uint64_t stream) noexcept;

/// Evaluates `eval(config)` for every config, in parallel on `pool`,
/// returning results in input order.  Exceptions propagate.  Safe to call
/// from inside a pool task (the caller helps; see ThreadPool).
template <typename Config, typename F>
auto run_sweep(ThreadPool& pool, const std::vector<Config>& configs, F&& eval)
    -> std::vector<std::invoke_result_t<F&, const Config&>> {
  using Result = std::invoke_result_t<F&, const Config&>;
  std::vector<Result> results(configs.size());
  pool.parallel_for(configs.size(),
                    [&](std::size_t i) { results[i] = eval(configs[i]); });
  return results;
}

/// Seeded overload: evaluates `eval(config, derive_seed(seed, index))` so
/// each config owns a deterministic, order-independent RNG stream.
template <typename Config, typename F>
auto run_sweep(ThreadPool& pool, const std::vector<Config>& configs,
               std::uint64_t seed, F&& eval)
    -> std::vector<std::invoke_result_t<F&, const Config&, std::uint64_t>> {
  using Result = std::invoke_result_t<F&, const Config&, std::uint64_t>;
  std::vector<Result> results(configs.size());
  pool.parallel_for(configs.size(), [&](std::size_t i) {
    results[i] = eval(configs[i], derive_seed(seed, i));
  });
  return results;
}

/// Convenience: linear sweep over [lo, hi] with `count` points (inclusive).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

}  // namespace tempofair::harness
