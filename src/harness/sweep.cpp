#include "harness/sweep.h"

#include <stdexcept>

namespace tempofair::harness {

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  if (count == 0) throw std::invalid_argument("linspace: count must be >= 1");
  std::vector<double> out;
  out.reserve(count);
  if (count == 1) {
    out.push_back(lo);
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(lo + step * static_cast<double>(i));
  }
  return out;
}

}  // namespace tempofair::harness
