#include "harness/sweep.h"

#include <stdexcept>

namespace tempofair::harness {

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  if (count == 0) throw std::invalid_argument("linspace: count must be >= 1");
  std::vector<double> out;
  out.reserve(count);
  if (count == 1) {
    out.push_back(lo);
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(lo + step * static_cast<double>(i));
  }
  return out;
}

}  // namespace tempofair::harness
