#include "harness/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace tempofair::harness {

namespace {

// Identifies the pool (and queue index) owning the current thread, so
// nested pushes go to the worker's own queue and pops prefer it.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(sleep_mutex_);
    stopping_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::inside_worker() const noexcept { return tl_pool == this; }

void ThreadPool::push_task(std::function<void()> fn) {
  Task task{std::move(fn)};
  {
    std::lock_guard lock(sleep_mutex_);
    // Worker-originated pushes stay legal during teardown: a task already
    // running when the destructor flips stopping_ may still fan out nested
    // work, which its own help loop (or a not-yet-exited worker) drains.
    if (stopping_ && tl_pool != this) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    if (tl_pool == this) {
      // Nested push: the worker's own queue, at the front (depth-first).
      Queue& q = *queues_[tl_index];
      std::lock_guard qlock(q.mutex);
      q.tasks.push_front(std::move(task));
    } else {
      Queue& q = *queues_[next_queue_.fetch_add(1, std::memory_order_relaxed) %
                          queues_.size()];
      std::lock_guard qlock(q.mutex);
      q.tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_release);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_pop(Task& out) {
  const std::size_t nq = queues_.size();
  const std::size_t self = tl_pool == this ? tl_index : nq;
  if (self < nq) {
    Queue& q = *queues_[self];
    std::lock_guard lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  // Steal from the back of the other queues, rotating the start point so
  // helpers do not all hammer queue 0.
  const std::size_t start =
      self < nq ? self + 1
                : next_queue_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t off = 0; off < nq; ++off) {
    const std::size_t qi = (start + off) % nq;
    if (qi == self) continue;
    Queue& q = *queues_[qi];
    std::lock_guard lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(Task& task) {
  // Obs accounting lives inside fn (bind_obs) so that nothing borrowed from
  // the submitter is touched once fn has signaled completion.
  task.fn();
  // Serialize against threads between their predicate check and sleep, then
  // wake everyone: a finished task may be what a join is waiting for.
  { std::lock_guard lock(sleep_mutex_); }
  sleep_cv_.notify_all();
}

void ThreadPool::help_until(const std::function<bool()>& done) {
  for (;;) {
    if (done()) return;
    Task task;
    if (try_pop(task)) {
      run_task(task);
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    sleep_cv_.wait(lock, [&] {
      return done() || stopping_ ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (done()) return;
    // stopping_ while a join is outstanding means the pool is being torn
    // down under live work -- keep helping; our chunks can only be finished
    // by us or by workers that have not exited yet.
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_index = index;
  for (;;) {
    Task task;
    if (try_pop(task)) {
      run_task(task);
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stopping_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (count == 0) return;
  if (grain == 0) {
    // ~4 chunks per worker: coarse enough that queue traffic is negligible,
    // fine enough that stealing can still balance uneven chunks.
    grain = std::max<std::size_t>(1, count / (size() * 4));
  }
  struct State {
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mutex;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  const std::size_t chunks = (count + grain - 1) / grain;
  state->remaining.store(chunks, std::memory_order_relaxed);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * grain;
    const std::size_t hi = std::min(count, lo + grain);
    // bind_obs wraps only the body loop: the countdown below must stay the
    // chunk's final act, after every obs write, because the caller returns
    // from parallel_for (and may destroy the sink, the body, and `state`'s
    // last owner) the instant it observes remaining == 0.
    auto chunk = bind_obs([state, &body, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(state->error_mutex);
        if (!state->error) state->error = std::current_exception();
      }
    });
    push_task([state, chunk = std::move(chunk)]() mutable {
      chunk();
      state->remaining.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  help_until([&state] {
    return state->remaining.load(std::memory_order_acquire) == 0;
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace tempofair::harness
