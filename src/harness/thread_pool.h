// Fixed-size thread pool for shared-memory-parallel experiment sweeps.
//
// Each simulation in a sweep is independent, so the pool is a plain work
// queue: submit() returns a std::future, parallel_for() blocks until a whole
// index range is done.  Exceptions thrown by tasks propagate through the
// futures (and out of parallel_for).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tempofair::harness {

class ThreadPool {
 public:
  /// `threads` = 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future carries its result or exception.
  template <typename F>
  [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs body(i) for i in [0, count) across the pool; rethrows the first
  /// task exception after all tasks finish.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace tempofair::harness
