// Work-stealing thread pool for shared-memory-parallel experiment sweeps.
//
// Each worker owns a deque: it pushes and pops nested work at the front
// (depth-first, cache-warm) while idle workers steal from the back of other
// queues.  External submissions are spread round-robin across the queues.
//
// Two properties matter to the experiment runner:
//   * parallel_for is chunked (a handful of chunks per worker, not one task
//     per index), so fine-grained sweeps do not serialize on queue traffic.
//   * Joins help: a thread blocked in parallel_for or wait() executes queued
//     tasks instead of sleeping.  Nested parallel_for / submit from inside a
//     worker is therefore safe -- the whole experiment suite and every
//     experiment's inner sweep can share a single pool without deadlock.
//
// Tasks capture the submitting thread's obs::Sink override, so counters and
// CPU time recorded by stolen work still attribute to the run that spawned
// it (see obs/obs.h).  Exceptions thrown by tasks propagate through futures
// and out of parallel_for (first one wins, after all chunks finish).
//
// Lifetime invariant: a task's completion signal (its future becoming
// ready, a parallel_for chunk countdown reaching zero) must be the LAST
// observable effect of running it.  The submitter is entitled to destroy
// anything the task borrowed -- its obs::Sink above all -- the moment it
// observes completion, so all sink accounting happens inside the task
// callable (bind_obs below), never after it in the pop/run loop.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace tempofair::harness {

class ThreadPool {
 public:
  /// `threads` = 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future carries its result or exception.  Safe to
  /// call from a worker thread (the task goes to that worker's own queue);
  /// pair with wait() there, as a plain future::get can deadlock a worker.
  template <typename F>
  [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(bind_obs(std::forward<F>(f)));
    std::future<R> fut = task->get_future();
    push_task([task] { (*task)(); });
    return fut;
  }

  /// Runs body(i) for i in [0, count) across the pool in chunks of `grain`
  /// indices (0 = pick ~4 chunks per worker).  The calling thread helps
  /// execute chunks, so this is safe to call from inside a pool task.
  /// Rethrows the first task exception after all chunks finish.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

  /// Blocks until `fut` is ready, executing queued tasks meanwhile; the
  /// deadlock-free way to join a submitted task from a worker thread.
  template <typename R>
  R wait(std::future<R>& fut) {
    help_until([&fut] {
      return fut.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
    });
    return fut.get();
  }

  /// True when called from one of this pool's worker threads.
  [[nodiscard]] bool inside_worker() const noexcept;

 private:
  struct Task {
    std::function<void()> fn;
  };
  struct Queue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  /// Wraps a callable so it runs under the submitting thread's obs::Sink
  /// override with CPU attribution.  The accounting guards are destroyed
  /// (and the sink written) before the wrapper returns -- i.e. before a
  /// packaged_task marks its future ready or a parallel_for chunk counts
  /// itself down -- which upholds the lifetime invariant above: writing the
  /// sink after the completion signal races with the submitter destroying
  /// it.
  template <typename F>
  [[nodiscard]] static auto bind_obs(F&& f) {
    return [sink = obs::current_override(),
            f = std::forward<F>(f)]() mutable -> decltype(f()) {
      obs::ScopedSink guard(sink);
      if (sink != nullptr) {
        obs::CpuAccount cpu(*sink, "pool.cpu_ns");
        sink->add("pool.tasks", 1);
        return f();
      }
      return f();
    };
  }

  void push_task(std::function<void()> fn);
  [[nodiscard]] bool try_pop(Task& out);
  void run_task(Task& task);
  /// Runs tasks until done() holds; sleeps only when nothing is runnable.
  void help_until(const std::function<bool()>& done);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> pending_{0};   // queued, not yet popped
  std::atomic<std::size_t> next_queue_{0};  // round-robin for external pushes
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  bool stopping_ = false;  // guarded by sleep_mutex_
};

}  // namespace tempofair::harness
