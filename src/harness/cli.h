// Command-line parsing shared by examples, experiment binaries and the
// bench runner.
//
// Two layers:
//   * Options / Parsed -- the typed API.  Options are registered up front
//     (opt.flag("csv"), opt.value<double>("speed", 4.4, "help")), --help is
//     generated from the registrations, unknown flags and malformed values
//     are hard CliError-s, and Parsed hands back typed values with the
//     registered fallback filled in.
//   * Cli -- the legacy loose scanner (kept as a thin wrapper during the
//     migration): no registration, unknown flags accepted silently, typed
//     accessors take their fallback per call.  New code should register an
//     Options set instead.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "core/engine.h"

namespace tempofair::harness {

/// Parse failure: unknown option, missing or malformed value.  Derives from
/// std::invalid_argument so legacy catch sites keep working.
class CliError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
/// Strict numeric parses: the whole token must be consumed and in range;
/// errors name the offending flag.  Shared by Cli and Options.
[[nodiscard]] long parse_long(const std::string& flag, const std::string& text);
[[nodiscard]] double parse_double(const std::string& flag,
                                  const std::string& text);
}  // namespace detail

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if --name was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;
  /// Value of --name, if given with one.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;

  /// Positional arguments (non --option tokens), in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Experiment binaries call this: true => print CSV instead of tables.
  [[nodiscard]] bool csv() const { return has("csv"); }

 private:
  std::map<std::string, std::string> options_;  // value may be empty
  std::vector<std::string> positional_;
};

class Parsed;

/// Typed option registration; parse() validates argv against it.
class Options {
 public:
  explicit Options(std::string program, std::string summary = "");

  /// Registers a boolean flag (--name, no value).
  Options& flag(const std::string& name, std::string help = "");

  /// Registers a valued option with a typed fallback.  T must be an
  /// integral type (stored as long), double, or a string type.
  template <typename T>
  Options& value(const std::string& name, T fallback, std::string help = "") {
    Spec spec;
    spec.help = std::move(help);
    if constexpr (std::is_same_v<std::decay_t<T>, double> ||
                  std::is_same_v<std::decay_t<T>, float>) {
      spec.kind = Kind::kDouble;
      spec.fallback = static_cast<double>(fallback);
    } else if constexpr (std::is_integral_v<std::decay_t<T>>) {
      spec.kind = Kind::kInt;
      spec.fallback = static_cast<long>(fallback);
    } else {
      spec.kind = Kind::kString;
      spec.fallback = std::string(std::move(fallback));
    }
    add_spec(name, std::move(spec));
    return *this;
  }

  /// Parses argv.  Throws CliError on an unknown option, a flag given a
  /// value, a missing value, or a value that fails its type's parse.
  /// --help sets Parsed::help_requested() instead of failing.
  [[nodiscard]] Parsed parse(int argc, const char* const* argv) const;

  /// The generated usage/option listing (what --help should print).
  void print_help(std::ostream& out) const;

 private:
  friend class Parsed;
  enum class Kind { kFlag, kInt, kDouble, kString };
  using Value = std::variant<bool, long, double, std::string>;
  struct Spec {
    Kind kind = Kind::kFlag;
    std::string help;
    Value fallback = false;
  };

  void add_spec(const std::string& name, Spec spec);
  [[nodiscard]] const Spec* find(const std::string& name) const;

  std::string program_;
  std::string summary_;
  std::vector<std::pair<std::string, Spec>> specs_;  // registration order
};

/// The result of Options::parse: every registered option resolved to a
/// typed value (given on the command line, or the registered fallback).
class Parsed {
 public:
  /// True if the registered flag --name was passed.
  [[nodiscard]] bool flag(const std::string& name) const;
  /// True if --name appeared on the command line (flag or valued).
  [[nodiscard]] bool given(const std::string& name) const;
  [[nodiscard]] long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] bool help_requested() const noexcept { return help_; }

 private:
  friend class Options;
  [[nodiscard]] const Options::Value& lookup(const std::string& name,
                                             Options::Kind want) const;

  std::map<std::string, Options::Value> values_;
  std::map<std::string, Options::Kind> kinds_;
  std::set<std::string> given_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

// --- Shared flag vocabulary -------------------------------------------------
//
// Every tool in the family (tempofair-sim, tempofair_bench, perf_gate,
// tempofaird, tempofair_client) registers its flags from these helpers, so
// a flag spelled the same always means the same thing, with the same
// default and the same strict parsing, everywhere.  Tools opt into the
// groups they support.

/// --policy --workload --machines --speed --no-trace --hide-sizes
/// --max-steps --max-time --no-fast-path --invariants --invariant-period:
/// everything needed to describe one engine run.  --workload takes a
/// WorkloadSpec string (workload/spec.h) and replaces the per-tool bespoke
/// generator flags; it is validated at parse time so typos exit nonzero
/// with the spec error message.
Options& add_run_flags(Options& options);

/// Builds a RunRequest from flags registered by add_run_flags.
[[nodiscard]] RunRequest run_request_from_flags(const Parsed& parsed);

/// --jobs N: worker threads for the shared pool (0 = hardware concurrency).
Options& add_jobs_flag(Options& options);

/// --quiet: suppress progress/summary chatter on stderr.
Options& add_quiet_flag(Options& options);

/// --smoke: scale workloads down for a fast CI smoke run.
Options& add_smoke_flag(Options& options);

/// --seed N: RNG seed for generated workloads.
Options& add_seed_flag(Options& options, long fallback = 1);

}  // namespace tempofair::harness
