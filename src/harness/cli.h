// Minimal command-line parsing shared by examples and experiment binaries.
//
// Supports flags (--csv), valued options (--seed 42 or --seed=42), and
// reports unknown arguments.  Deliberately tiny; not a general CLI library.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tempofair::harness {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if --name was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;
  /// Value of --name, if given with one.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;

  /// Positional arguments (non --option tokens), in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Experiment binaries call this: true => print CSV instead of tables.
  [[nodiscard]] bool csv() const { return has("csv"); }

 private:
  std::map<std::string, std::string> options_;  // value may be empty
  std::vector<std::string> positional_;
};

}  // namespace tempofair::harness
