#include "harness/cli.h"

#include <cstdlib>
#include <stdexcept>

namespace tempofair::harness {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      token.erase(0, 2);
      const std::size_t eq = token.find('=');
      if (eq != std::string::npos) {
        options_[token.substr(0, eq)] = token.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[token] = argv[++i];
      } else {
        options_[token] = "";
      }
    } else {
      positional_.push_back(std::move(token));
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) > 0; }

std::optional<std::string> Cli::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end != v->c_str() + v->size()) {
    throw std::invalid_argument("--" + name + ": expected a number, got '" + *v + "'");
  }
  return parsed;
}

long Cli::get_int(const std::string& name, long fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  if (end != v->c_str() + v->size()) {
    throw std::invalid_argument("--" + name + ": expected an integer, got '" + *v + "'");
  }
  return parsed;
}

std::string Cli::get_string(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

}  // namespace tempofair::harness
