#include "harness/cli.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <iomanip>
#include <ostream>

#include "workload/source.h"

namespace tempofair::harness {

namespace detail {

long parse_long(const std::string& flag, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size()) {
    throw CliError("--" + flag + ": expected an integer, got '" + text + "'");
  }
  if (errno == ERANGE) {
    throw CliError("--" + flag + ": integer out of range: '" + text + "'");
  }
  return parsed;
}

double parse_double(const std::string& flag, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size()) {
    throw CliError("--" + flag + ": expected a number, got '" + text + "'");
  }
  if (errno == ERANGE) {
    throw CliError("--" + flag + ": number out of range: '" + text + "'");
  }
  return parsed;
}

}  // namespace detail

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      token.erase(0, 2);
      const std::size_t eq = token.find('=');
      if (eq != std::string::npos) {
        options_[token.substr(0, eq)] = token.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[token] = argv[++i];
      } else {
        options_[token] = "";
      }
    } else {
      positional_.push_back(std::move(token));
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) > 0; }

std::optional<std::string> Cli::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return detail::parse_double(name, *v);
}

long Cli::get_int(const std::string& name, long fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return detail::parse_long(name, *v);
}

std::string Cli::get_string(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

Options::Options(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

Options& Options::flag(const std::string& name, std::string help) {
  Spec spec;
  spec.kind = Kind::kFlag;
  spec.help = std::move(help);
  spec.fallback = false;
  add_spec(name, std::move(spec));
  return *this;
}

void Options::add_spec(const std::string& name, Spec spec) {
  if (name.empty() || name == "help" || find(name) != nullptr) {
    throw std::logic_error("Options: bad or duplicate option --" + name);
  }
  specs_.emplace_back(name, std::move(spec));
}

const Options::Spec* Options::find(const std::string& name) const {
  for (const auto& [n, spec] : specs_) {
    if (n == name) return &spec;
  }
  return nullptr;
}

Parsed Options::parse(int argc, const char* const* argv) const {
  Parsed parsed;
  for (const auto& [name, spec] : specs_) {
    parsed.values_[name] = spec.fallback;
    parsed.kinds_[name] = spec.kind;
  }
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      parsed.positional_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    std::string name = token;
    std::string inline_value;
    bool has_inline = false;
    if (const std::size_t eq = token.find('='); eq != std::string::npos) {
      name = token.substr(0, eq);
      inline_value = token.substr(eq + 1);
      has_inline = true;
    }
    if (name == "help") {
      parsed.help_ = true;
      continue;
    }
    const Spec* spec = find(name);
    if (spec == nullptr) {
      throw CliError(program_ + ": unknown option --" + name +
                     " (try --help)");
    }
    if (spec->kind == Kind::kFlag) {
      if (has_inline) {
        throw CliError("--" + name + " is a flag and takes no value");
      }
      parsed.values_[name] = true;
      parsed.given_.insert(name);
      continue;
    }
    std::string text;
    if (has_inline) {
      text = std::move(inline_value);
    } else if (i + 1 < argc) {
      text = argv[++i];
    } else {
      throw CliError("--" + name + ": missing value");
    }
    switch (spec->kind) {
      case Kind::kInt:
        parsed.values_[name] = detail::parse_long(name, text);
        break;
      case Kind::kDouble:
        parsed.values_[name] = detail::parse_double(name, text);
        break;
      default:
        parsed.values_[name] = std::move(text);
        break;
    }
    parsed.given_.insert(name);
  }
  return parsed;
}

void Options::print_help(std::ostream& out) const {
  out << "usage: " << program_ << " [options]\n";
  if (!summary_.empty()) out << "\n" << summary_ << "\n";
  out << "\noptions:\n";
  auto left_column = [](const std::string& name, Kind kind) {
    std::string left = "--" + name;
    switch (kind) {
      case Kind::kInt: left += " <int>"; break;
      case Kind::kDouble: left += " <num>"; break;
      case Kind::kString: left += " <str>"; break;
      case Kind::kFlag: break;
    }
    return left;
  };
  std::size_t width = std::string("--help").size();
  for (const auto& [name, spec] : specs_) {
    width = std::max(width, left_column(name, spec.kind).size());
  }
  for (const auto& [name, spec] : specs_) {
    out << "  " << std::left << std::setw(static_cast<int>(width) + 2)
        << left_column(name, spec.kind) << spec.help;
    switch (spec.kind) {
      case Kind::kInt:
        out << " (default: " << std::get<long>(spec.fallback) << ")";
        break;
      case Kind::kDouble:
        out << " (default: " << std::get<double>(spec.fallback) << ")";
        break;
      case Kind::kString:
        if (!std::get<std::string>(spec.fallback).empty()) {
          out << " (default: " << std::get<std::string>(spec.fallback) << ")";
        }
        break;
      case Kind::kFlag:
        break;
    }
    out << "\n";
  }
  out << "  " << std::left << std::setw(static_cast<int>(width) + 2)
      << "--help" << "print this help\n";
}

const Options::Value& Parsed::lookup(const std::string& name,
                                     Options::Kind want) const {
  const auto kind_it = kinds_.find(name);
  if (kind_it == kinds_.end()) {
    throw CliError("Parsed: option --" + name + " was never registered");
  }
  if (kind_it->second != want) {
    throw CliError("Parsed: option --" + name +
                   " accessed with the wrong type");
  }
  return values_.at(name);
}

bool Parsed::flag(const std::string& name) const {
  return std::get<bool>(lookup(name, Options::Kind::kFlag));
}

bool Parsed::given(const std::string& name) const {
  return given_.count(name) > 0;
}

long Parsed::get_int(const std::string& name) const {
  return std::get<long>(lookup(name, Options::Kind::kInt));
}

double Parsed::get_double(const std::string& name) const {
  return std::get<double>(lookup(name, Options::Kind::kDouble));
}

const std::string& Parsed::get_string(const std::string& name) const {
  return std::get<std::string>(lookup(name, Options::Kind::kString));
}

Options& add_run_flags(Options& options) {
  const RunRequest defaults;
  return options
      .value("policy", defaults.policy,
             "policy spec (rr srpt sjf fcfs setf wrr mlfq hdf hrdf wprr "
             "laps:B qrr:Q[,CS])")
      .value("workload", defaults.workload,
             "workload spec (poisson:n=..,load=.. | mmpp:.. | uniform:.. | "
             "bursty:.. | adv-* | trace:PATH); empty = workload supplied "
             "out-of-band")
      .value("machines", static_cast<long>(defaults.machines),
             "identical machines")
      .value("speed", defaults.speed, "speed augmentation s (OPT at speed 1)")
      .flag("no-trace", "skip recording the rate trace (metrics-only runs)")
      .flag("hide-sizes", "hide job sizes from the policy (non-clairvoyant)")
      .value("max-steps", static_cast<long>(defaults.max_steps),
             "abort after this many engine iterations")
      .value("max-time", 0.0, "abort if the simulated clock passes this (0 = off)")
      .flag("no-fast-path", "force the generic event loop")
      .value("invariants", to_string(defaults.invariants),
             "invariant checking mode (off sampled exhaustive)")
      .value("invariant-period",
             static_cast<long>(defaults.invariant_sample_period),
             "check every Nth epoch in sampled mode");
}

RunRequest run_request_from_flags(const Parsed& parsed) {
  RunRequest request;
  request.policy = parsed.get_string("policy");
  const long machines = parsed.get_int("machines");
  if (machines < 1) throw CliError("--machines: must be >= 1");
  request.machines = static_cast<int>(machines);
  request.speed = parsed.get_double("speed");
  if (!(request.speed > 0.0)) throw CliError("--speed: must be > 0");
  request.record_trace = !parsed.flag("no-trace");
  request.hide_sizes = parsed.flag("hide-sizes");
  const long max_steps = parsed.get_int("max-steps");
  if (max_steps < 1) throw CliError("--max-steps: must be >= 1");
  request.max_steps = static_cast<std::size_t>(max_steps);
  const double max_time = parsed.get_double("max-time");
  if (max_time < 0.0) throw CliError("--max-time: must be >= 0");
  if (max_time > 0.0) request.max_time = max_time;
  request.use_fast_path = !parsed.flag("no-fast-path");
  try {
    request.invariants = parse_invariant_mode(parsed.get_string("invariants"));
  } catch (const std::invalid_argument&) {
    throw CliError("--invariants: expected off, sampled or exhaustive, got '" +
                   parsed.get_string("invariants") + "'");
  }
  const long invariant_period = parsed.get_int("invariant-period");
  if (invariant_period < 1) throw CliError("--invariant-period: must be >= 1");
  request.invariant_sample_period = static_cast<std::size_t>(invariant_period);
  request.workload = parsed.get_string("workload");
  if (!request.workload.empty()) {
    // Parse + resolve now so a typo dies at flag-parsing time with a usable
    // message, not deep inside the run.
    try {
      (void)workload::make_source(request.workload);
    } catch (const workload::SpecError& e) {
      throw CliError("--workload: " + std::string(e.what()));
    }
  }
  return request;
}

Options& add_jobs_flag(Options& options) {
  return options.value("jobs", 0L,
                       "worker threads (0 = hardware concurrency)");
}

Options& add_quiet_flag(Options& options) {
  return options.flag("quiet", "suppress progress and summary output on stderr");
}

Options& add_smoke_flag(Options& options) {
  return options.flag("smoke", "scale workloads down for a fast CI smoke run");
}

Options& add_seed_flag(Options& options, long fallback) {
  return options.value("seed", fallback, "RNG seed for generated workloads");
}

}  // namespace tempofair::harness
