// Link schedulers: FIFO, Deficit Round Robin, and self-clocked fair queueing.
#pragma once

#include <deque>
#include <map>
#include <queue>

#include "netsim/link_sim.h"

namespace tempofair::netsim {

/// Single shared queue, arrival order.
class FifoScheduler final : public LinkScheduler {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "fifo"; }
  void reset() override;
  void enqueue(const Packet& packet) override;
  [[nodiscard]] bool empty() const noexcept override;
  [[nodiscard]] Packet dequeue() override;

 private:
  std::deque<Packet> queue_;
};

/// Deficit Round Robin (Shreedhar-Varghese '96): per-flow queues visited in
/// round-robin order; each visit adds `quantum` to the flow's deficit and
/// sends head packets while the deficit covers them.  O(1) per packet when
/// quantum >= max packet size; byte-level fair regardless of packet sizes.
class DrrScheduler final : public LinkScheduler {
 public:
  explicit DrrScheduler(double quantum);
  [[nodiscard]] std::string_view name() const noexcept override { return "drr"; }
  void reset() override;
  void enqueue(const Packet& packet) override;
  [[nodiscard]] bool empty() const noexcept override;
  [[nodiscard]] Packet dequeue() override;

 private:
  double quantum_;
  std::map<FlowId, std::deque<Packet>> queues_;
  std::map<FlowId, double> deficit_;
  std::deque<FlowId> active_;  ///< round-robin list of backlogged flows
  std::size_t backlog_ = 0;
  /// Whether the current front flow already received its quantum this visit.
  bool front_topped_ = false;
};

/// Self-Clocked Fair Queueing (Golestani '94), the practical approximation
/// of GPS/WFQ: each packet gets finish tag F = max(V, F_last[flow]) +
/// size / weight where V is the tag of the packet in service; the smallest
/// tag transmits first.  Weights default to 1 (equal shares).
class ScfqScheduler final : public LinkScheduler {
 public:
  explicit ScfqScheduler(std::map<FlowId, double> weights = {});
  [[nodiscard]] std::string_view name() const noexcept override { return "wfq"; }
  void reset() override;
  void enqueue(const Packet& packet) override;
  [[nodiscard]] bool empty() const noexcept override;
  [[nodiscard]] Packet dequeue() override;

 private:
  struct Tagged {
    Packet packet;
    double finish_tag;
    std::uint64_t seq;  ///< FIFO tie-break

    bool operator>(const Tagged& o) const {
      if (finish_tag != o.finish_tag) return finish_tag > o.finish_tag;
      return seq > o.seq;
    }
  };

  std::map<FlowId, double> weights_;
  std::priority_queue<Tagged, std::vector<Tagged>, std::greater<>> heap_;
  std::map<FlowId, double> last_finish_;
  double virtual_time_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace tempofair::netsim
