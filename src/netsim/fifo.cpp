#include "netsim/schedulers.h"

namespace tempofair::netsim {

void FifoScheduler::reset() { queue_.clear(); }

void FifoScheduler::enqueue(const Packet& packet) { queue_.push_back(packet); }

bool FifoScheduler::empty() const noexcept { return queue_.empty(); }

Packet FifoScheduler::dequeue() {
  Packet p = queue_.front();
  queue_.pop_front();
  return p;
}

}  // namespace tempofair::netsim
