#include "netsim/link_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tempofair::netsim {

LinkSimResult simulate_link(std::vector<Packet> packets,
                            LinkScheduler& scheduler, double link_rate,
                            double share_horizon) {
  if (!(link_rate > 0.0)) {
    throw std::invalid_argument("simulate_link: link_rate must be > 0");
  }
  std::sort(packets.begin(), packets.end(),
            [](const Packet& a, const Packet& b) { return a.arrival < b.arrival; });

  scheduler.reset();
  LinkSimResult result;
  result.records.reserve(packets.size());

  std::size_t next = 0;
  double now = 0.0;
  while (next < packets.size() || !scheduler.empty()) {
    // Admit everything that has arrived.
    while (next < packets.size() && packets[next].arrival <= now) {
      scheduler.enqueue(packets[next++]);
    }
    if (scheduler.empty()) {
      now = packets[next].arrival;  // idle: jump to next arrival
      continue;
    }
    const Packet p = scheduler.dequeue();
    PacketRecord rec;
    rec.packet = p;
    rec.start = now;
    now += p.size / link_rate;
    rec.departure = now;
    result.records.push_back(rec);
  }
  result.busy_until = now;

  // Per-flow accounting.
  const double horizon = share_horizon > 0.0 ? share_horizon : now;
  std::map<FlowId, double> service_in_window;
  for (const PacketRecord& r : result.records) {
    FlowStatsNet& fs = result.per_flow[r.packet.flow];
    fs.bytes += r.packet.size;
    const double delay = r.departure - r.packet.arrival;
    fs.mean_delay += delay;
    fs.max_delay = std::max(fs.max_delay, delay);
    ++fs.packets;
    // Service delivered inside the fairness window (clip the transmission).
    const double begin = std::min(r.start, horizon);
    const double end = std::min(r.departure, horizon);
    if (end > begin) {
      service_in_window[r.packet.flow] += (end - begin) * link_rate;
    }
  }
  for (auto& [flow, fs] : result.per_flow) {
    if (fs.packets > 0) fs.mean_delay /= static_cast<double>(fs.packets);
  }

  if (!service_in_window.empty()) {
    double sum = 0.0, sq = 0.0, mn = std::numeric_limits<double>::infinity(),
           mx = 0.0;
    for (const auto& [flow, s] : service_in_window) {
      sum += s;
      sq += s * s;
      mn = std::min(mn, s);
      mx = std::max(mx, s);
    }
    const double n = static_cast<double>(service_in_window.size());
    result.jain_throughput = sq > 0.0 ? (sum * sum) / (n * sq) : 1.0;
    result.min_max_share = mx > 0.0 ? mn / mx : 1.0;
  }
  return result;
}

}  // namespace tempofair::netsim
