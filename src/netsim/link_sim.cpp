#include "netsim/link_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/obs.h"

namespace tempofair::netsim {

namespace {

/// Relative tolerance for time/byte comparisons: the simulation is a chain
/// of additions, so errors grow with magnitude.
[[nodiscard]] double tol_for(double magnitude) {
  return 1e-9 * std::max(1.0, std::fabs(magnitude));
}

}  // namespace

InvariantStats check_link_invariants(std::span<const Packet> offered,
                                     const LinkSimResult& result,
                                     double link_rate) {
  InvariantStats stats;
  stats.mode = InvariantMode::kExhaustive;
  const auto violate = [&stats](std::string_view check, std::string detail,
                                double time) {
    ++stats.violations;
    if (stats.reports.size() < kMaxInvariantReports) {
      InvariantViolation v;
      v.check = std::string(check);
      v.detail = std::move(detail);
      v.time = time;
      stats.reports.push_back(std::move(v));
    }
  };

  // Chronology + service rate: one record at a time, in departure order.
  double prev_departure = 0.0;
  for (const PacketRecord& r : result.records) {
    ++stats.epochs_seen;
    ++stats.epochs_checked;
    stats.checks_run += 3;
    if (r.start + tol_for(r.start) < r.packet.arrival) {
      violate("packet_chronology",
              "packet of flow " + std::to_string(r.packet.flow) +
                  " starts before it arrives",
              r.start);
    }
    if (r.start + tol_for(r.start) < prev_departure) {
      violate("packet_chronology", "transmissions overlap on the link",
              r.start);
    }
    const double expect = r.start + r.packet.size / link_rate;
    if (std::fabs(r.departure - expect) > tol_for(expect)) {
      violate("link_rate",
              "packet of flow " + std::to_string(r.packet.flow) +
                  " occupies the link for " +
                  std::to_string(r.departure - r.start) + ", expected " +
                  std::to_string(expect - r.start),
              r.departure);
    }
    prev_departure = r.departure;
  }

  // Per-flow byte conservation: served bytes == offered bytes, per flow.
  std::map<FlowId, double> offered_bytes;
  std::map<FlowId, double> served_bytes;
  for (const Packet& p : offered) offered_bytes[p.flow] += p.size;
  for (const PacketRecord& r : result.records) {
    served_bytes[r.packet.flow] += r.packet.size;
  }
  for (const auto& [flow, bytes] : offered_bytes) {
    ++stats.checks_run;
    const auto it = served_bytes.find(flow);
    const double served = it == served_bytes.end() ? 0.0 : it->second;
    if (std::fabs(served - bytes) > tol_for(bytes)) {
      violate("flow_byte_conservation",
              "flow " + std::to_string(flow) + " offered " +
                  std::to_string(bytes) + " bytes but " +
                  std::to_string(served) + " departed",
              result.busy_until);
    }
  }
  for (const auto& [flow, bytes] : served_bytes) {
    if (offered_bytes.count(flow) == 0) {
      ++stats.checks_run;
      violate("flow_byte_conservation",
              "flow " + std::to_string(flow) + " departed " +
                  std::to_string(bytes) + " bytes but offered none",
              result.busy_until);
    }
  }
  return stats;
}

LinkSimResult simulate_link(std::vector<Packet> packets,
                            LinkScheduler& scheduler, double link_rate,
                            double share_horizon) {
  if (!(link_rate > 0.0)) {
    throw std::invalid_argument("simulate_link: link_rate must be > 0");
  }
  std::sort(packets.begin(), packets.end(),
            [](const Packet& a, const Packet& b) { return a.arrival < b.arrival; });

  scheduler.reset();
  LinkSimResult result;
  result.records.reserve(packets.size());

  std::size_t next = 0;
  double now = 0.0;
  while (next < packets.size() || !scheduler.empty()) {
    // Admit everything that has arrived.
    while (next < packets.size() && packets[next].arrival <= now) {
      scheduler.enqueue(packets[next++]);
    }
    if (scheduler.empty()) {
      now = packets[next].arrival;  // idle: jump to next arrival
      continue;
    }
    const Packet p = scheduler.dequeue();
    PacketRecord rec;
    rec.packet = p;
    rec.start = now;
    now += p.size / link_rate;
    rec.departure = now;
    result.records.push_back(rec);
  }
  result.busy_until = now;

  // Per-flow accounting.
  const double horizon = share_horizon > 0.0 ? share_horizon : now;
  std::map<FlowId, double> service_in_window;
  for (const PacketRecord& r : result.records) {
    FlowStatsNet& fs = result.per_flow[r.packet.flow];
    fs.bytes += r.packet.size;
    const double delay = r.departure - r.packet.arrival;
    fs.mean_delay += delay;
    fs.max_delay = std::max(fs.max_delay, delay);
    ++fs.packets;
    // Service delivered inside the fairness window (clip the transmission).
    const double begin = std::min(r.start, horizon);
    const double end = std::min(r.departure, horizon);
    if (end > begin) {
      service_in_window[r.packet.flow] += (end - begin) * link_rate;
    }
  }
  for (auto& [flow, fs] : result.per_flow) {
    if (fs.packets > 0) fs.mean_delay /= static_cast<double>(fs.packets);
  }

  if (!service_in_window.empty()) {
    double sum = 0.0, sq = 0.0, mn = std::numeric_limits<double>::infinity(),
           mx = 0.0;
    for (const auto& [flow, s] : service_in_window) {
      sum += s;
      sq += s * s;
      mn = std::min(mn, s);
      mx = std::max(mx, s);
    }
    const double n = static_cast<double>(service_in_window.size());
    result.jain_throughput = sq > 0.0 ? (sum * sum) / (n * sq) : 1.0;
    result.min_max_share = mx > 0.0 ? mn / mx : 1.0;
  }

  // The packet battery is cheap relative to the simulation itself, so any
  // non-off mode runs it in full; exhaustive additionally fails the run.
  const InvariantMode mode = default_invariant_mode();
  if (mode != InvariantMode::kOff) {
    const InvariantStats inv = check_link_invariants(packets, result, link_rate);
    obs::add(obs_counters::kInvariantRuns, 1);
    obs::add(obs_counters::kInvariantEpochsChecked, inv.epochs_checked);
    if (inv.violations > 0) {
      obs::add(obs_counters::kInvariantViolations, inv.violations);
    }
    if (mode == InvariantMode::kExhaustive) {
      throw_if_violated(inv, scheduler.name());
    }
  }
  return result;
}

}  // namespace tempofair::netsim
