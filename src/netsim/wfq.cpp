#include <algorithm>
#include <stdexcept>

#include "netsim/schedulers.h"

namespace tempofair::netsim {

ScfqScheduler::ScfqScheduler(std::map<FlowId, double> weights)
    : weights_(std::move(weights)) {
  for (const auto& [flow, w] : weights_) {
    if (!(w > 0.0)) {
      throw std::invalid_argument("ScfqScheduler: weights must be > 0");
    }
  }
}

void ScfqScheduler::reset() {
  heap_ = {};
  last_finish_.clear();
  virtual_time_ = 0.0;
  seq_ = 0;
}

void ScfqScheduler::enqueue(const Packet& packet) {
  const auto wit = weights_.find(packet.flow);
  const double weight = wit == weights_.end() ? 1.0 : wit->second;
  double& last = last_finish_[packet.flow];
  const double start_tag = std::max(virtual_time_, last);
  const double finish = start_tag + packet.size / weight;
  last = finish;
  heap_.push(Tagged{packet, finish, seq_++});
}

bool ScfqScheduler::empty() const noexcept { return heap_.empty(); }

Packet ScfqScheduler::dequeue() {
  Tagged t = heap_.top();
  heap_.pop();
  // Self-clocking: the virtual time is the tag of the packet in service.
  virtual_time_ = t.finish_tag;
  return t.packet;
}

}  // namespace tempofair::netsim
