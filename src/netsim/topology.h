// Dumbbell topology: per-sender access links into one shared bottleneck.
//
// Extends the single-link setting (netsim/link_sim.h) to the classic
// fairness topology: each flow enters through its own access link (rate
// `access_rate`, unbounded queue), the serialized packets merge at a
// bottleneck of rate `bottleneck_rate` with a finite tail-drop queue, and a
// LinkScheduler (FIFO / DRR / WFQ, netsim/schedulers.h) picks the
// transmission order at the bottleneck.  Per-flow monitors account offered,
// delivered and dropped traffic so experiments can compare how each
// scheduler shares the bottleneck under congestion.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/invariants.h"
#include "netsim/link_sim.h"

namespace tempofair::netsim {

struct TopologyConfig {
  /// Rate of every sender's access link (serializes each flow's packets).
  double access_rate = 10.0;
  /// Rate of the shared bottleneck link.
  double bottleneck_rate = 1.0;
  /// Per-flow buffer at the bottleneck, in bytes (waiting packets, not the
  /// one in service); an arrival that would overflow its flow's buffer is
  /// tail-dropped.  Per-flow buffers are how DRR/WFQ routers are actually
  /// provisioned (Shreedhar-Varghese '96) and keep the drop decision
  /// decoupled from the service order.  0 = unbounded.
  double queue_capacity = 0.0;
};

/// Per-flow accounting across the whole path (sender to sink).
struct FlowMonitor {
  double offered_bytes = 0.0;
  double delivered_bytes = 0.0;
  double dropped_bytes = 0.0;
  std::size_t offered_packets = 0;
  std::size_t delivered_packets = 0;
  std::size_t dropped_packets = 0;
  /// Delays are sink departure minus *sender* arrival, so they include the
  /// access-link serialization plus bottleneck queueing.
  double mean_delay = 0.0;
  double max_delay = 0.0;
};

struct DumbbellResult {
  /// Bottleneck transmissions in service order; each record keeps the
  /// packet's original sender arrival time.
  std::vector<PacketRecord> records;
  std::map<FlowId, FlowMonitor> per_flow;
  /// Jain fairness index of per-flow delivered bytes over the whole run.
  /// Every work-conserving scheduler eventually transmits whatever it
  /// admitted, so this mostly reflects the drop pattern.
  double jain_goodput = 1.0;
  /// min delivered / max delivered across flows (1 = perfectly fair).
  double min_max_share = 1.0;
  /// Jain index / min-max ratio of per-flow *service* received inside
  /// [0, share_horizon] -- the discriminating fairness reading while the
  /// bottleneck is congested (DRR/WFQ equalize it; FIFO tracks arrival
  /// byte shares).
  double jain_service = 1.0;
  double min_max_service = 1.0;
  /// Dropped bytes / offered bytes over the whole run.
  double drop_fraction = 0.0;
  double busy_until = 0.0;
};

/// Simulates `packets` (any order; each flow's packets serialized by its
/// own access link) through the dumbbell.  The scheduler arbitrates the
/// bottleneck only.  `share_horizon` (0 = full run) bounds the window the
/// service-share fairness statistics are computed over; use a prefix where
/// every flow is still backlogged.  Runs check_dumbbell_invariants itself
/// whenever the process-wide invariant mode is not off, throwing in
/// exhaustive mode.
[[nodiscard]] DumbbellResult simulate_dumbbell(std::vector<Packet> packets,
                                               LinkScheduler& scheduler,
                                               const TopologyConfig& config,
                                               double share_horizon = 0.0);

/// Structural invariants of a finished dumbbell run:
///   flow_byte_conservation  per flow, offered == delivered + dropped;
///   packet_chronology       bottleneck transmissions never overlap and
///                           never start before the packet's sender arrival;
///   link_rate               every transmission occupies the bottleneck for
///                           exactly size / bottleneck_rate.
[[nodiscard]] InvariantStats check_dumbbell_invariants(
    std::span<const Packet> offered, const DumbbellResult& result,
    const TopologyConfig& config);

}  // namespace tempofair::netsim
