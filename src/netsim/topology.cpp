#include "netsim/topology.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/obs.h"

namespace tempofair::netsim {

namespace {

[[nodiscard]] double tol_for(double magnitude) {
  return 1e-9 * std::max(1.0, std::fabs(magnitude));
}

/// A packet annotated with its bottleneck arrival (access-link departure).
struct Merged {
  Packet packet;           // original sender arrival preserved
  double at_bottleneck = 0.0;
};

}  // namespace

InvariantStats check_dumbbell_invariants(std::span<const Packet> offered,
                                         const DumbbellResult& result,
                                         const TopologyConfig& config) {
  InvariantStats stats;
  stats.mode = InvariantMode::kExhaustive;
  const auto violate = [&stats](std::string_view check, std::string detail,
                                double time) {
    ++stats.violations;
    if (stats.reports.size() < kMaxInvariantReports) {
      InvariantViolation v;
      v.check = std::string(check);
      v.detail = std::move(detail);
      v.time = time;
      stats.reports.push_back(std::move(v));
    }
  };

  double prev_departure = 0.0;
  for (const PacketRecord& r : result.records) {
    ++stats.epochs_seen;
    ++stats.epochs_checked;
    stats.checks_run += 3;
    if (r.start + tol_for(r.start) < r.packet.arrival) {
      violate("packet_chronology",
              "packet of flow " + std::to_string(r.packet.flow) +
                  " starts before its sender arrival",
              r.start);
    }
    if (r.start + tol_for(r.start) < prev_departure) {
      violate("packet_chronology", "bottleneck transmissions overlap",
              r.start);
    }
    const double expect = r.start + r.packet.size / config.bottleneck_rate;
    if (std::fabs(r.departure - expect) > tol_for(expect)) {
      violate("link_rate",
              "packet of flow " + std::to_string(r.packet.flow) +
                  " occupies the bottleneck for " +
                  std::to_string(r.departure - r.start) + ", expected " +
                  std::to_string(expect - r.start),
              r.departure);
    }
    prev_departure = r.departure;
  }

  // Per flow: every offered byte is either delivered or accounted dropped.
  std::map<FlowId, double> offered_bytes;
  for (const Packet& p : offered) offered_bytes[p.flow] += p.size;
  for (const auto& [flow, mon] : result.per_flow) {
    ++stats.checks_run;
    const auto it = offered_bytes.find(flow);
    const double expect = it == offered_bytes.end() ? 0.0 : it->second;
    const double accounted = mon.delivered_bytes + mon.dropped_bytes;
    if (std::fabs(accounted - expect) > tol_for(expect)) {
      violate("flow_byte_conservation",
              "flow " + std::to_string(flow) + " offered " +
                  std::to_string(expect) + " bytes but " +
                  std::to_string(accounted) + " are accounted",
              result.busy_until);
    }
  }
  for (const auto& [flow, bytes] : offered_bytes) {
    if (result.per_flow.count(flow) == 0) {
      ++stats.checks_run;
      violate("flow_byte_conservation",
              "flow " + std::to_string(flow) + " offered " +
                  std::to_string(bytes) + " bytes but has no monitor",
              result.busy_until);
    }
  }
  return stats;
}

DumbbellResult simulate_dumbbell(std::vector<Packet> packets,
                                 LinkScheduler& scheduler,
                                 const TopologyConfig& config,
                                 double share_horizon) {
  if (!(config.access_rate > 0.0) || !(config.bottleneck_rate > 0.0)) {
    throw std::invalid_argument("simulate_dumbbell: link rates must be > 0");
  }
  if (config.queue_capacity < 0.0) {
    throw std::invalid_argument(
        "simulate_dumbbell: queue_capacity must be >= 0");
  }

  DumbbellResult result;
  for (const Packet& p : packets) {
    if (!(p.size > 0.0) || !std::isfinite(p.size) ||
        !std::isfinite(p.arrival) || p.arrival < 0.0) {
      throw std::invalid_argument(
          "simulate_dumbbell: packets need finite arrival >= 0 and size > 0");
    }
    FlowMonitor& mon = result.per_flow[p.flow];
    mon.offered_bytes += p.size;
    ++mon.offered_packets;
  }

  // Stage 1: each flow's own access link serializes its packets in arrival
  // order (FIFO per sender, unbounded queue).
  std::sort(packets.begin(), packets.end(),
            [](const Packet& a, const Packet& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.flow < b.flow;
            });
  std::vector<Merged> merged;
  merged.reserve(packets.size());
  std::map<FlowId, double> access_busy;
  for (const Packet& p : packets) {
    double& busy = access_busy[p.flow];
    busy = std::max(busy, p.arrival) + p.size / config.access_rate;
    merged.push_back({p, busy});
  }
  std::sort(merged.begin(), merged.end(), [](const Merged& a, const Merged& b) {
    if (a.at_bottleneck != b.at_bottleneck) {
      return a.at_bottleneck < b.at_bottleneck;
    }
    return a.packet.flow < b.packet.flow;
  });

  // Stage 2: the shared bottleneck.  Admission happens in bottleneck-arrival
  // order against the flow's own buffer backlog (per-flow tail drop); the
  // scheduler picks among admitted packets whenever the link frees up.
  scheduler.reset();
  result.records.reserve(merged.size());
  std::size_t next = 0;
  double now = 0.0;
  std::map<FlowId, double> queued_bytes;
  while (next < merged.size() || !scheduler.empty()) {
    while (next < merged.size() && merged[next].at_bottleneck <= now) {
      const Packet& p = merged[next++].packet;
      double& queued = queued_bytes[p.flow];
      if (config.queue_capacity > 0.0 &&
          queued + p.size > config.queue_capacity + tol_for(p.size)) {
        FlowMonitor& mon = result.per_flow[p.flow];
        mon.dropped_bytes += p.size;
        ++mon.dropped_packets;
        continue;
      }
      scheduler.enqueue(p);
      queued += p.size;
    }
    if (scheduler.empty()) {
      // Tail-drop may have consumed every remaining arrival without
      // admitting one (e.g. a packet larger than queue_capacity).
      if (next >= merged.size()) break;
      now = merged[next].at_bottleneck;  // idle: jump to the next arrival
      continue;
    }
    const Packet p = scheduler.dequeue();
    queued_bytes[p.flow] -= p.size;
    PacketRecord rec;
    rec.packet = p;  // keeps the original sender arrival
    rec.start = now;
    now += p.size / config.bottleneck_rate;
    rec.departure = now;
    result.records.push_back(rec);
  }
  result.busy_until = now;

  // Monitors and fairness over delivered bytes.
  const double horizon = share_horizon > 0.0 ? share_horizon : now;
  std::map<FlowId, double> service_in_window;
  for (const PacketRecord& r : result.records) {
    FlowMonitor& mon = result.per_flow[r.packet.flow];
    mon.delivered_bytes += r.packet.size;
    ++mon.delivered_packets;
    const double delay = r.departure - r.packet.arrival;
    mon.mean_delay += delay;
    mon.max_delay = std::max(mon.max_delay, delay);
    const double begin = std::min(r.start, horizon);
    const double end = std::min(r.departure, horizon);
    if (end > begin) {
      service_in_window[r.packet.flow] +=
          (end - begin) * config.bottleneck_rate;
    }
  }
  double offered_total = 0.0;
  double dropped_total = 0.0;
  double sum = 0.0, sq = 0.0, mn = std::numeric_limits<double>::infinity(),
         mx = 0.0;
  for (auto& [flow, mon] : result.per_flow) {
    if (mon.delivered_packets > 0) {
      mon.mean_delay /= static_cast<double>(mon.delivered_packets);
    }
    offered_total += mon.offered_bytes;
    dropped_total += mon.dropped_bytes;
    sum += mon.delivered_bytes;
    sq += mon.delivered_bytes * mon.delivered_bytes;
    mn = std::min(mn, mon.delivered_bytes);
    mx = std::max(mx, mon.delivered_bytes);
  }
  if (!result.per_flow.empty()) {
    const double n = static_cast<double>(result.per_flow.size());
    result.jain_goodput = sq > 0.0 ? (sum * sum) / (n * sq) : 1.0;
    result.min_max_share = mx > 0.0 ? mn / mx : 1.0;
  }
  if (!service_in_window.empty()) {
    double wsum = 0.0, wsq = 0.0,
           wmn = std::numeric_limits<double>::infinity(), wmx = 0.0;
    for (const auto& [flow, s] : service_in_window) {
      wsum += s;
      wsq += s * s;
      wmn = std::min(wmn, s);
      wmx = std::max(wmx, s);
    }
    const double n = static_cast<double>(service_in_window.size());
    result.jain_service = wsq > 0.0 ? (wsum * wsum) / (n * wsq) : 1.0;
    result.min_max_service = wmx > 0.0 ? wmn / wmx : 1.0;
  }
  result.drop_fraction = offered_total > 0.0 ? dropped_total / offered_total
                                             : 0.0;

  const InvariantMode mode = default_invariant_mode();
  if (mode != InvariantMode::kOff) {
    const InvariantStats inv =
        check_dumbbell_invariants(packets, result, config);
    obs::add(obs_counters::kInvariantRuns, 1);
    obs::add(obs_counters::kInvariantEpochsChecked, inv.epochs_checked);
    if (inv.violations > 0) {
      obs::add(obs_counters::kInvariantViolations, inv.violations);
    }
    if (mode == InvariantMode::kExhaustive) {
      throw_if_violated(inv, "dumbbell");
    }
  }
  return result;
}

}  // namespace tempofair::netsim
