// Packet-level single-link scheduling substrate.
//
// The paper motivates RR by its use in practice for fairness -- round-robin
// packet scheduling in data networks (Hahne '91 [17]), tunable-latency
// round robin (Chaskar-Madhow [8]) and Deficit Round Robin (Shreedhar-
// Varghese '96 [25]).  This module reproduces that setting: flows emit
// packets into a single output link of fixed rate; a LinkScheduler decides
// the transmission order; experiment F6 measures how close each scheduler
// gets to the max-min fair share.
#pragma once

#include <cstdint>
#include <vector>

namespace tempofair::netsim {

using FlowId = std::uint32_t;

struct Packet {
  FlowId flow = 0;
  double size = 1.0;     ///< service demand (e.g. bytes)
  double arrival = 0.0;  ///< time the packet enters the queue
};

struct PacketRecord {
  Packet packet;
  double start = 0.0;      ///< transmission start
  double departure = 0.0;  ///< transmission end
};

}  // namespace tempofair::netsim
