// Single-link packet scheduling simulator and fairness accounting.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/invariants.h"
#include "netsim/packet.h"

namespace tempofair::netsim {

/// Work-conserving, non-preemptive packet scheduler for one link: packets are
/// enqueued as they arrive; whenever the link frees up, the scheduler picks
/// the next packet to transmit in full.
class LinkScheduler {
 public:
  virtual ~LinkScheduler() = default;
  LinkScheduler() = default;
  LinkScheduler(const LinkScheduler&) = delete;
  LinkScheduler& operator=(const LinkScheduler&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  virtual void reset() = 0;
  virtual void enqueue(const Packet& packet) = 0;
  [[nodiscard]] virtual bool empty() const noexcept = 0;
  /// Removes and returns the next packet to transmit.  Only called when
  /// !empty().
  [[nodiscard]] virtual Packet dequeue() = 0;
};

struct FlowStatsNet {
  double bytes = 0.0;          ///< total service received
  double mean_delay = 0.0;     ///< mean (departure - arrival)
  double max_delay = 0.0;
  std::size_t packets = 0;
};

struct LinkSimResult {
  std::vector<PacketRecord> records;
  std::map<FlowId, FlowStatsNet> per_flow;
  /// Jain fairness index of per-flow service received during [0, horizon]
  /// (use a workload that keeps every flow backlogged for a clean reading).
  double jain_throughput = 1.0;
  /// min flow share / max flow share (1 = perfectly fair).
  double min_max_share = 1.0;
  double busy_until = 0.0;
};

/// Simulates `packets` through `scheduler` on a link of rate `link_rate`.
/// Packets may be in any order; they are sorted by arrival internally.
/// `share_horizon` (0 = full run) limits the window over which the fairness
/// share statistics are computed (use the backlogged prefix).
[[nodiscard]] LinkSimResult simulate_link(std::vector<Packet> packets,
                                          LinkScheduler& scheduler,
                                          double link_rate,
                                          double share_horizon = 0.0);

/// Structural invariants of a finished link simulation, the packet-level
/// siblings of the core engine's schedule checkers (core/invariants.h):
///
///   flow_byte_conservation  every flow departs exactly the bytes it
///                           offered -- no lost, duplicated or invented
///                           packets per flow;
///   packet_chronology       no packet starts before it arrives and
///                           transmissions never overlap;
///   link_rate               every packet occupies the link for exactly
///                           size / link_rate.
///
/// simulate_link() runs this battery itself whenever the process-wide
/// invariant mode is not off, and throws in exhaustive mode.
[[nodiscard]] InvariantStats check_link_invariants(
    std::span<const Packet> offered, const LinkSimResult& result,
    double link_rate);

}  // namespace tempofair::netsim
