#include <algorithm>
#include <stdexcept>

#include "netsim/schedulers.h"

namespace tempofair::netsim {

DrrScheduler::DrrScheduler(double quantum) : quantum_(quantum) {
  if (!(quantum > 0.0)) {
    throw std::invalid_argument("DrrScheduler: quantum must be > 0");
  }
}

void DrrScheduler::reset() {
  queues_.clear();
  deficit_.clear();
  active_.clear();
  backlog_ = 0;
  front_topped_ = false;
}

void DrrScheduler::enqueue(const Packet& packet) {
  auto& q = queues_[packet.flow];
  if (q.empty()) {
    active_.push_back(packet.flow);
    deficit_[packet.flow] = 0.0;  // a newly backlogged flow starts fresh
  }
  q.push_back(packet);
  ++backlog_;
}

bool DrrScheduler::empty() const noexcept { return backlog_ == 0; }

Packet DrrScheduler::dequeue() {
  // Visit flows round-robin.  Each *visit* tops the deficit up by one
  // quantum exactly once, then serves head packets while the deficit covers
  // them; when it no longer does, the flow rotates to the back and the next
  // flow's visit begins.  (One packet is returned per call; `front_topped_`
  // carries the within-visit state across calls.)
  for (;;) {
    FlowId flow = active_.front();
    auto& q = queues_[flow];
    double& d = deficit_[flow];
    if (!front_topped_) {
      d += quantum_;
      front_topped_ = true;
    }
    if (q.front().size > d) {
      // Visit over: rotate to the back of the round.
      active_.pop_front();
      active_.push_back(flow);
      front_topped_ = false;
      continue;
    }
    Packet p = q.front();
    q.pop_front();
    d -= p.size;
    --backlog_;
    if (q.empty()) {
      // Flow leaves the active list; per DRR its deficit is cleared.
      active_.erase(std::find(active_.begin(), active_.end(), flow));
      deficit_.erase(flow);
      front_topped_ = false;
    }
    return p;
  }
}

}  // namespace tempofair::netsim
