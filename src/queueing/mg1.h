// M/G/1 steady-state response-time oracle.
//
// For Poisson arrivals (rate lambda) and iid sizes S on one speed-1 machine
// with load rho = lambda E[S] < 1, classical queueing theory gives the mean
// response time in closed form for the policies this library simulates:
//
//   PS (= Round Robin's fluid limit):  E[T] = E[S] / (1 - rho)
//       -- famously *insensitive* to the size distribution;
//   FCFS (Pollaczek-Khinchine):        E[T] = E[S] + lambda E[S^2] / (2(1-rho));
//   SRPT (Schrage-Miller):   E[T(x)] = lambda m2(x) / (2 (1-rho(x))^2)
//                                      + int_0^x dt / (1 - rho(t)),
//       with rho(x) = lambda E[S 1{S<=x}],  m2(x) = E[S^2 1{S<=x}] + x^2 P(S>x);
//   FB / LAS (= SETF):       E[T(x)] = lambda E[min(S,x)^2] / (2 (1-rho_x)^2)
//                                      + x / (1 - rho_x),
//       with rho_x = lambda E[min(S, x)];
//   and E[T] = E[ T(S) ] in both cases.
//
// These oracles validate the simulator end-to-end (experiment F10 and the
// queueing tests): long Poisson runs of RR / FCFS / SRPT / SETF must
// converge to these numbers.  Supported size distributions: exponential,
// deterministic, and uniform (closed-form partial moments; outer integrals
// by adaptive Simpson).
#pragma once

#include <functional>
#include <memory>

#include "workload/generators.h"

namespace tempofair::queueing {

/// Partial-moment interface of a size distribution: everything the M/G/1
/// formulas need.
class SizeMoments {
 public:
  virtual ~SizeMoments() = default;
  SizeMoments() = default;
  SizeMoments(const SizeMoments&) = delete;
  SizeMoments& operator=(const SizeMoments&) = delete;

  [[nodiscard]] virtual double mean() const = 0;            ///< E[S]
  [[nodiscard]] virtual double second_moment() const = 0;   ///< E[S^2]
  [[nodiscard]] virtual double cdf(double x) const = 0;     ///< P(S <= x)
  /// E[S 1{S <= x}]
  [[nodiscard]] virtual double partial_mean(double x) const = 0;
  /// E[S^2 1{S <= x}]
  [[nodiscard]] virtual double partial_second(double x) const = 0;
  /// Upper limit of the support (may be +infinity for exponential).
  [[nodiscard]] virtual double support_max() const = 0;
  /// True when the distribution has a density (the SRPT/FB oracles require
  /// it; deterministic sizes put an atom at the support max).
  [[nodiscard]] virtual bool continuous() const noexcept = 0;
};

/// Builds the moment oracle for a workload::SizeDist.  Supported:
/// ExponentialSize, FixedSize, UniformSize.  Throws std::invalid_argument
/// for Pareto/Bimodal (no oracle implemented).
[[nodiscard]] std::unique_ptr<SizeMoments> make_moments(
    const workload::SizeDist& dist);

struct Mg1 {
  double lambda = 0.5;  ///< Poisson arrival rate
  const SizeMoments* moments = nullptr;

  [[nodiscard]] double load() const { return lambda * moments->mean(); }

  /// E[T] under processor sharing (Round Robin's fluid limit).
  [[nodiscard]] double mean_response_ps() const;
  /// E[T] under FCFS (Pollaczek-Khinchine).
  [[nodiscard]] double mean_response_fcfs() const;
  /// E[T(x)] and E[T] under SRPT.
  [[nodiscard]] double mean_response_srpt(double x) const;
  [[nodiscard]] double mean_response_srpt() const;
  /// E[T(x)] and E[T] under FB / LAS (SETF).
  [[nodiscard]] double mean_response_fb(double x) const;
  [[nodiscard]] double mean_response_fb() const;
};

/// Adaptive Simpson quadrature on [a, b] (exposed for tests).
[[nodiscard]] double integrate(const std::function<double(double)>& f, double a,
                               double b, double tol = 1e-8, int max_depth = 30);

}  // namespace tempofair::queueing
