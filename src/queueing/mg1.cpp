#include "queueing/mg1.h"

#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>

namespace tempofair::queueing {

namespace {

double simpson(const std::function<double(double)>& f, double a, double b,
               double fa, double fm, double fb_, double whole, double tol,
               int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m), rm = 0.5 * (m + b);
  const double flm = f(lm), frm = f(rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb_);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return simpson(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         simpson(f, m, b, fm, frm, fb_, right, 0.5 * tol, depth - 1);
}

/// Exponential(mean mu).
class ExpMoments final : public SizeMoments {
 public:
  explicit ExpMoments(double mu) : mu_(mu) {
    if (!(mu > 0.0)) throw std::invalid_argument("ExpMoments: mean must be > 0");
  }
  double mean() const override { return mu_; }
  double second_moment() const override { return 2.0 * mu_ * mu_; }
  double cdf(double x) const override {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / mu_);
  }
  double partial_mean(double x) const override {
    if (x <= 0.0) return 0.0;
    const double e = std::exp(-x / mu_);
    return mu_ * (1.0 - e) - x * e;
  }
  double partial_second(double x) const override {
    if (x <= 0.0) return 0.0;
    const double e = std::exp(-x / mu_);
    return 2.0 * mu_ * partial_mean(x) - x * x * e;
  }
  double support_max() const override { return 50.0 * mu_; }  // numeric cutoff
  bool continuous() const noexcept override { return true; }

 private:
  double mu_;
};

/// Deterministic(v).
class FixedMoments final : public SizeMoments {
 public:
  explicit FixedMoments(double v) : v_(v) {
    if (!(v > 0.0)) throw std::invalid_argument("FixedMoments: value must be > 0");
  }
  double mean() const override { return v_; }
  double second_moment() const override { return v_ * v_; }
  double cdf(double x) const override { return x >= v_ ? 1.0 : 0.0; }
  double partial_mean(double x) const override { return x >= v_ ? v_ : 0.0; }
  double partial_second(double x) const override {
    return x >= v_ ? v_ * v_ : 0.0;
  }
  double support_max() const override { return v_; }
  bool continuous() const noexcept override { return false; }

 private:
  double v_;
};

/// Uniform(a, b).
class UniformMoments final : public SizeMoments {
 public:
  UniformMoments(double a, double b) : a_(a), b_(b) {
    if (!(0.0 <= a && a < b)) {
      throw std::invalid_argument("UniformMoments: need 0 <= a < b");
    }
  }
  double mean() const override { return 0.5 * (a_ + b_); }
  double second_moment() const override {
    // E[S^2] = (a^2 + ab + b^2) / 3.
    return (a_ * a_ + a_ * b_ + b_ * b_) / 3.0;
  }
  double cdf(double x) const override {
    if (x <= a_) return 0.0;
    if (x >= b_) return 1.0;
    return (x - a_) / (b_ - a_);
  }
  double partial_mean(double x) const override {
    const double c = std::min(std::max(x, a_), b_);
    return (c * c - a_ * a_) / (2.0 * (b_ - a_));
  }
  double partial_second(double x) const override {
    const double c = std::min(std::max(x, a_), b_);
    return (c * c * c - a_ * a_ * a_) / (3.0 * (b_ - a_));
  }
  double support_max() const override { return b_; }
  bool continuous() const noexcept override { return true; }

 private:
  double a_, b_;
};

/// Numeric pdf via central difference of the cdf (used only inside the
/// outer E[T(S)] integrals for continuous distributions).
double pdf(const SizeMoments& m, double x) {
  const double h = 1e-6 * std::max(1.0, x);
  return (m.cdf(x + h) - m.cdf(x - h)) / (2.0 * h);
}

void require_continuous(const SizeMoments& m, const char* what) {
  // The Schrage-Miller / FB formulas below assume a density; atomic sizes
  // need the rho(x-) boundary corrections we deliberately do not implement.
  if (!m.continuous()) {
    throw std::invalid_argument(std::string(what) +
                                ": oracle requires a continuous size "
                                "distribution (atomic sizes unsupported)");
  }
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol, int max_depth) {
  if (!(b > a)) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a), fm = f(m), fb_ = f(b);
  const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb_);
  return simpson(f, a, b, fa, fm, fb_, whole, tol, max_depth);
}

std::unique_ptr<SizeMoments> make_moments(const workload::SizeDist& dist) {
  return std::visit(
      [](const auto& d) -> std::unique_ptr<SizeMoments> {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, workload::ExponentialSize>) {
          return std::make_unique<ExpMoments>(d.mean);
        } else if constexpr (std::is_same_v<T, workload::FixedSize>) {
          return std::make_unique<FixedMoments>(d.value);
        } else if constexpr (std::is_same_v<T, workload::UniformSize>) {
          return std::make_unique<UniformMoments>(d.lo, d.hi);
        } else {
          throw std::invalid_argument(
              "make_moments: only exponential/fixed/uniform sizes have an "
              "M/G/1 oracle");
        }
      },
      dist);
}

double Mg1::mean_response_ps() const {
  const double rho = load();
  if (!(rho < 1.0)) throw std::invalid_argument("Mg1: load must be < 1");
  return moments->mean() / (1.0 - rho);
}

double Mg1::mean_response_fcfs() const {
  const double rho = load();
  if (!(rho < 1.0)) throw std::invalid_argument("Mg1: load must be < 1");
  return moments->mean() +
         lambda * moments->second_moment() / (2.0 * (1.0 - rho));
}

double Mg1::mean_response_srpt(double x) const {
  require_continuous(*moments, "mean_response_srpt");
  const double rho_x = lambda * moments->partial_mean(x);
  const double m2 =
      moments->partial_second(x) + x * x * (1.0 - moments->cdf(x));
  const double wait = lambda * m2 / (2.0 * (1.0 - rho_x) * (1.0 - rho_x));
  const double residence = integrate(
      [this](double t) { return 1.0 / (1.0 - lambda * moments->partial_mean(t)); },
      0.0, x, 1e-9, 24);
  return wait + residence;
}

double Mg1::mean_response_srpt() const {
  require_continuous(*moments, "mean_response_srpt");
  const double hi = moments->support_max();
  return integrate(
      [this](double x) { return pdf(*moments, x) * mean_response_srpt(x); },
      1e-9, hi, 1e-6, 18);
}

double Mg1::mean_response_fb(double x) const {
  require_continuous(*moments, "mean_response_fb");
  const double min_mean =
      moments->partial_mean(x) + x * (1.0 - moments->cdf(x));
  const double min_second =
      moments->partial_second(x) + x * x * (1.0 - moments->cdf(x));
  const double rho_x = lambda * min_mean;
  return lambda * min_second / (2.0 * (1.0 - rho_x) * (1.0 - rho_x)) +
         x / (1.0 - rho_x);
}

double Mg1::mean_response_fb() const {
  require_continuous(*moments, "mean_response_fb");
  const double hi = moments->support_max();
  return integrate(
      [this](double x) { return pdf(*moments, x) * mean_response_fb(x); },
      1e-9, hi, 1e-6, 18);
}

}  // namespace tempofair::queueing
