// QuantumRR -- the operating-system flavour of Round Robin.
//
// The paper analyzes the idealized processor-sharing RR; real schedulers
// (Silberschatz-Galvin-Gagne [26]) time-slice instead: the ready queue is
// cycled, the first m jobs each run on a machine for one quantum q, then are
// moved to the back.  An optional context-switch overhead models the dead
// time of each rotation.  Experiment T6 shows QuantumRR converges to ideal
// RR as q -> 0, bridging the theorem to deployable schedulers.
//
// Non-clairvoyant.  Jobs arriving mid-quantum wait for the next rotation; a
// completion mid-quantum frees its machine for the next queued job
// immediately.
#pragma once

#include <deque>

#include "core/policy.h"

namespace tempofair {

class QuantumRoundRobin final : public Policy {
 public:
  /// `quantum` > 0: length of each time slice.  `switch_cost` >= 0: dead time
  /// inserted at each rotation (all machines idle).
  explicit QuantumRoundRobin(double quantum, double switch_cost = 0.0);

  [[nodiscard]] std::string_view name() const noexcept override { return "qrr"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }
  [[nodiscard]] double quantum() const noexcept { return quantum_; }

  /// The kernel replicates this policy's queue/phase state machine (see
  /// FastForwardKind::kQuantumRR); the descriptor just carries the exact
  /// construction parameters.
  [[nodiscard]] FastForward fast_forward() const noexcept override {
    FastForward ff;
    ff.kind = FastForwardKind::kQuantumRR;
    ff.quantum = quantum_;
    ff.switch_cost = switch_cost_;
    return ff;
  }

  /// With a nonzero switch cost every rotation inserts an all-idle phase,
  /// so the policy deliberately leaves capacity unused.
  [[nodiscard]] PolicyInvariantTraits invariant_traits()
      const noexcept override {
    PolicyInvariantTraits t;
    t.work_conserving = switch_cost_ == 0.0;
    return t;
  }

  void reset() override;
  void on_arrival(const AliveJob& job, Time now) override;
  void on_completion(JobId id, Time now) override;
  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;

 private:
  enum class Phase { kRunning, kSwitching };

  double quantum_;
  double switch_cost_;
  std::deque<JobId> queue_;
  Phase phase_ = Phase::kRunning;
  Time phase_end_ = -kInfiniteTime;  ///< when the current quantum/switch ends
  bool phase_started_ = false;
};

}  // namespace tempofair
