#include "policies/weighted_rr.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tempofair {

std::vector<double> waterfill(std::span<const double> weights, double capacity,
                              double cap) {
  const std::size_t n = weights.size();
  std::vector<double> rates(n, 0.0);
  if (n == 0 || capacity <= 0.0) return rates;

  // If even an equal split saturates every cap, everyone gets the cap.
  // Otherwise repeatedly pin items whose proportional share exceeds the cap.
  std::vector<std::size_t> active(n);
  std::iota(active.begin(), active.end(), std::size_t{0});
  double cap_left = std::min(capacity, cap * static_cast<double>(n));

  while (!active.empty()) {
    double weight_sum = 0.0;
    for (std::size_t i : active) weight_sum += weights[i];
    if (weight_sum <= 0.0) {
      // Degenerate: all active weights zero -> equal split.
      const double share =
          std::min(cap, cap_left / static_cast<double>(active.size()));
      for (std::size_t i : active) rates[i] = share;
      break;
    }
    bool pinned_any = false;
    std::vector<std::size_t> still_active;
    still_active.reserve(active.size());
    for (std::size_t i : active) {
      const double share = cap_left * weights[i] / weight_sum;
      if (share >= cap - kAbsEps) {
        rates[i] = cap;
        pinned_any = true;
      } else {
        still_active.push_back(i);
      }
    }
    if (!pinned_any) {
      for (std::size_t i : active) {
        rates[i] = cap_left * weights[i] / weight_sum;
      }
      break;
    }
    for (std::size_t i : active) {
      if (rates[i] == cap) cap_left -= cap;
    }
    cap_left = std::max(cap_left, 0.0);
    active = std::move(still_active);
  }
  return rates;
}

WeightedRoundRobin::WeightedRoundRobin(double age_offset, double refresh_rel)
    : age_offset_(age_offset), refresh_rel_(refresh_rel) {
  if (!(age_offset > 0.0)) {
    throw std::invalid_argument("WeightedRoundRobin: age_offset must be > 0");
  }
  if (!(refresh_rel > 0.0)) {
    throw std::invalid_argument("WeightedRoundRobin: refresh_rel must be > 0");
  }
}

RateDecision WeightedRoundRobin::rates(const SchedulerContext& ctx) {
  const std::size_t n = ctx.n_alive();
  std::vector<double> weights(n);
  double min_weight = kInfiniteTime;
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = ctx.alive[i].age(ctx.now) + age_offset_;
    min_weight = std::min(min_weight, weights[i]);
  }
  RateDecision d;
  d.rates = waterfill(weights, ctx.capacity(), ctx.speed);
  // Refresh before the youngest job's weight grows by more than refresh_rel
  // relatively; this bounds the drift of all proportional shares.
  d.max_duration = refresh_rel_ * min_weight;
  return d;
}

}  // namespace tempofair
