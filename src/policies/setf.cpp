#include "policies/setf.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tempofair {

Setf::Setf(double level_tolerance) : tol_(level_tolerance) {
  if (!(level_tolerance >= 0.0)) {
    throw std::invalid_argument("Setf: level_tolerance must be >= 0");
  }
}

RateDecision Setf::rates(const SchedulerContext& ctx) {
  const std::size_t n = ctx.n_alive();
  auto alive = ctx.alive;

  // Sort indices by attained service (ties by id for determinism).
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), [alive](std::size_t a, std::size_t b) {
    if (alive[a].attained != alive[b].attained) {
      return alive[a].attained < alive[b].attained;
    }
    return alive[a].id < alive[b].id;
  });

  RateDecision d;
  d.rates.assign(n, 0.0);

  // Walk groups of (approximately) equal attained service, granting machines.
  double machines_left = static_cast<double>(ctx.machines);
  std::size_t i = 0;
  // Per group: (group rate, group attained level) for catch-up computation.
  struct GroupInfo {
    double rate;
    double level;
  };
  std::vector<GroupInfo> groups;
  // Groups are built by chaining: job j joins the current group when its
  // attained service is within tolerance of its predecessor's.  (Comparing to
  // the group head instead would split groups spuriously right after two
  // groups merge, forcing the engine into tiny catch-up steps.)
  auto group_end = [&](std::size_t start) {
    std::size_t j = start + 1;
    while (j < n && approx_equal(alive[idx[j]].attained,
                                 alive[idx[j - 1]].attained, tol_, tol_)) {
      ++j;
    }
    return j;
  };

  while (i < n && machines_left > 0.0) {
    const double level = alive[idx[i]].attained;
    const std::size_t j = group_end(i);
    const double group_size = static_cast<double>(j - i);
    const double per_job = ctx.speed * std::min(1.0, machines_left / group_size);
    for (std::size_t g = i; g < j; ++g) d.rates[idx[g]] = per_job;
    machines_left -= (per_job / ctx.speed) * group_size;
    groups.push_back(GroupInfo{per_job, level});
    i = j;
  }
  // Remaining groups (if any) get zero rate but we still need their levels
  // for the catch-up breakpoint.
  while (i < n) {
    const double level = alive[idx[i]].attained;
    groups.push_back(GroupInfo{0.0, level});
    i = group_end(i);
  }

  // Breakpoint: the earliest time a faster lower group catches the level of
  // the group above it (their rates then change as the groups merge).
  Time breakpoint = kInfiniteTime;
  for (std::size_t g = 0; g + 1 < groups.size(); ++g) {
    const double closing = groups[g].rate - groups[g + 1].rate;
    if (closing > kAbsEps) {
      const double gap = groups[g + 1].level - groups[g].level;
      breakpoint = std::min(breakpoint, std::max(gap, 0.0) / closing);
    }
  }
  if (breakpoint <= 0.0) breakpoint = kAbsEps;  // merged this instant; take a tiny step
  d.max_duration = breakpoint;
  return d;
}

}  // namespace tempofair
