#include "policies/setf.h"

#include <stdexcept>

namespace tempofair {

Setf::Setf(double level_tolerance) : tol_(level_tolerance) {
  if (!(level_tolerance >= 0.0)) {
    throw std::invalid_argument("Setf: level_tolerance must be >= 0");
  }
}

RateDecision Setf::rates(const SchedulerContext& ctx) {
  const auto alive = ctx.alive;
  RateDecision d;
  d.max_duration = share_rules::setf_rates(
      ctx.n_alive(), ctx.machines, ctx.speed, tol_,
      [alive](std::size_t i) { return alive[i].attained; }, d.rates, scratch_);
  return d;
}

FastForward Setf::fast_forward() const noexcept {
  FastForward ff;
  ff.kind = FastForwardKind::kEqualAttained;
  ff.level_tolerance = tol_;
  return ff;
}

}  // namespace tempofair
