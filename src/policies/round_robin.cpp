#include "policies/round_robin.h"

#include <algorithm>

namespace tempofair {

RateDecision RoundRobin::rates(const SchedulerContext& ctx) {
  const double n = static_cast<double>(ctx.n_alive());
  const double share =
      ctx.speed * std::min(1.0, static_cast<double>(ctx.machines) / n);
  RateDecision d;
  d.rates.assign(ctx.n_alive(), share);
  return d;
}

}  // namespace tempofair
