#include "policies/round_robin.h"

#include <algorithm>

namespace tempofair {

double RoundRobin::equal_share(std::size_t n_alive, int machines,
                               double speed) noexcept {
  const double n = static_cast<double>(n_alive);
  return speed * std::min(1.0, static_cast<double>(machines) / n);
}

RateDecision RoundRobin::rates(const SchedulerContext& ctx) {
  RateDecision d;
  d.rates.assign(ctx.n_alive(),
                 equal_share(ctx.n_alive(), ctx.machines, ctx.speed));
  return d;
}

}  // namespace tempofair
