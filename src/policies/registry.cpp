#include "policies/registry.h"

#include <charconv>
#include <stdexcept>

#include "policies/mlfq.h"
#include "policies/priority_policies.h"
#include "policies/quantum_rr.h"
#include "policies/round_robin.h"
#include "policies/setf.h"
#include "policies/weighted_policies.h"
#include "policies/weighted_rr.h"

namespace tempofair {

namespace {

double parse_double(std::string_view s, std::string_view what) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("make_policy: bad " + std::string(what) +
                                " value '" + std::string(s) + "'");
  }
  return v;
}

}  // namespace

std::unique_ptr<Policy> make_policy(std::string_view spec) {
  const std::size_t colon = spec.find(':');
  const std::string_view name = spec.substr(0, colon);
  const std::string_view args =
      colon == std::string_view::npos ? std::string_view{} : spec.substr(colon + 1);

  if (name == "rr") return std::make_unique<RoundRobin>();
  if (name == "srpt") return std::make_unique<Srpt>();
  if (name == "sjf") return std::make_unique<Sjf>();
  if (name == "fcfs") return std::make_unique<Fcfs>();
  if (name == "setf") return std::make_unique<Setf>();
  if (name == "wrr") return std::make_unique<WeightedRoundRobin>();
  if (name == "mlfq") return std::make_unique<Mlfq>();
  if (name == "hdf") return std::make_unique<Hdf>();
  if (name == "hrdf") return std::make_unique<Hrdf>();
  if (name == "wprr") return std::make_unique<WeightProportionalRoundRobin>();
  if (name == "laps") {
    const double beta = args.empty() ? 0.5 : parse_double(args, "laps beta");
    return std::make_unique<Laps>(beta);
  }
  if (name == "qrr") {
    if (args.empty()) return std::make_unique<QuantumRoundRobin>(1.0);
    const std::size_t comma = args.find(',');
    const double quantum =
        parse_double(args.substr(0, comma), "qrr quantum");
    const double cs = comma == std::string_view::npos
                          ? 0.0
                          : parse_double(args.substr(comma + 1), "qrr switch_cost");
    return std::make_unique<QuantumRoundRobin>(quantum, cs);
  }
  throw std::invalid_argument("make_policy: unknown policy spec '" +
                              std::string(spec) + "'");
}

std::vector<std::string> builtin_policy_specs() {
  return {"rr",   "srpt", "sjf",  "fcfs", "setf",    "wrr",
          "mlfq", "laps:0.5", "hdf",  "hrdf", "wprr", "qrr:0.5"};
}

}  // namespace tempofair
