#include "policies/weighted_policies.h"

#include <vector>

#include "policies/detail.h"
#include "policies/weighted_rr.h"

namespace tempofair {

RateDecision Hdf::rates(const SchedulerContext& ctx) {
  auto alive = ctx.alive;
  return detail::run_top_m(ctx, [alive](std::size_t a, std::size_t b) {
    const double da = alive[a].weight / alive[a].size;
    const double db = alive[b].weight / alive[b].size;
    if (da != db) return da > db;
    if (alive[a].release != alive[b].release) {
      return alive[a].release < alive[b].release;
    }
    return alive[a].id < alive[b].id;
  });
}

RateDecision Hrdf::rates(const SchedulerContext& ctx) {
  auto alive = ctx.alive;
  return detail::run_top_m(ctx, [alive](std::size_t a, std::size_t b) {
    const double da = alive[a].weight / alive[a].remaining;
    const double db = alive[b].weight / alive[b].remaining;
    if (da != db) return da > db;
    if (alive[a].release != alive[b].release) {
      return alive[a].release < alive[b].release;
    }
    return alive[a].id < alive[b].id;
  });
}

std::vector<double> WeightProportionalRoundRobin::shares(
    std::span<const double> weights, int machines, double speed) {
  // speed * machines matches SchedulerContext::capacity() bit for bit.
  return waterfill(weights, speed * machines, speed);
}

RateDecision WeightProportionalRoundRobin::rates(const SchedulerContext& ctx) {
  std::vector<double> weights(ctx.n_alive());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = ctx.alive[i].weight;
  }
  RateDecision d;
  d.rates = shares(weights, ctx.machines, ctx.speed);
  return d;  // weights are static: allocation only changes at events
}

}  // namespace tempofair
