#include "policies/quantum_rr.h"

#include <algorithm>
#include <stdexcept>

namespace tempofair {

QuantumRoundRobin::QuantumRoundRobin(double quantum, double switch_cost)
    : quantum_(quantum), switch_cost_(switch_cost) {
  if (!(quantum > 0.0)) {
    throw std::invalid_argument("QuantumRoundRobin: quantum must be > 0");
  }
  if (switch_cost < 0.0) {
    throw std::invalid_argument("QuantumRoundRobin: switch_cost must be >= 0");
  }
}

void QuantumRoundRobin::reset() {
  queue_.clear();
  phase_ = Phase::kRunning;
  phase_started_ = false;
  phase_end_ = -kInfiniteTime;
}

void QuantumRoundRobin::on_arrival(const AliveJob& job, Time /*now*/) {
  queue_.push_back(job.id);
}

void QuantumRoundRobin::on_completion(JobId id, Time /*now*/) {
  // The job may sit anywhere in the queue (front if it was running).
  const auto it = std::find(queue_.begin(), queue_.end(), id);
  if (it != queue_.end()) queue_.erase(it);
}

RateDecision QuantumRoundRobin::rates(const SchedulerContext& ctx) {
  const std::size_t n = ctx.n_alive();
  RateDecision d;
  d.rates.assign(n, 0.0);
  if (n == 0) return d;

  // Rotation is only meaningful when jobs outnumber machines; otherwise
  // everyone runs continuously and quanta (and switch costs) do not apply.
  const std::size_t m = static_cast<std::size_t>(ctx.machines);
  if (n <= m) {
    phase_ = Phase::kRunning;
    phase_started_ = false;
    for (double& r : d.rates) r = ctx.speed;
    return d;
  }

  // Handle an expired phase: rotate after a quantum, resume after a switch.
  if (phase_started_ && ctx.now >= phase_end_ - kAbsEps) {
    if (phase_ == Phase::kRunning) {
      // Move the jobs that just ran to the back of the queue.
      const std::size_t rotate = std::min(m, queue_.size());
      for (std::size_t i = 0; i < rotate; ++i) {
        queue_.push_back(queue_.front());
        queue_.pop_front();
      }
      if (switch_cost_ > 0.0) {
        phase_ = Phase::kSwitching;
        phase_end_ = ctx.now + switch_cost_;
      } else {
        phase_end_ = ctx.now + quantum_;
      }
    } else {
      phase_ = Phase::kRunning;
      phase_end_ = ctx.now + quantum_;
    }
  } else if (!phase_started_) {
    phase_ = Phase::kRunning;
    phase_end_ = ctx.now + quantum_;
    phase_started_ = true;
  }

  if (phase_ == Phase::kSwitching) {
    d.max_duration = std::max(phase_end_ - ctx.now, kAbsEps);
    return d;  // all machines idle during the context switch
  }

  // Run the first min(m, n) queued jobs at full speed.
  const std::size_t run = std::min(m, queue_.size());
  for (std::size_t i = 0; i < run; ++i) {
    const JobId id = queue_[i];
    // ctx.alive is sorted by id: binary search for the index.
    const auto it = std::lower_bound(
        ctx.alive.begin(), ctx.alive.end(), id,
        [](const AliveJob& a, JobId want) { return a.id < want; });
    if (it == ctx.alive.end() || it->id != id) {
      throw std::logic_error("QuantumRoundRobin: queued job not alive");
    }
    d.rates[static_cast<std::size_t>(it - ctx.alive.begin())] = ctx.speed;
  }
  d.max_duration = std::max(phase_end_ - ctx.now, kAbsEps);
  return d;
}

}  // namespace tempofair
