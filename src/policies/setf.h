// SETF -- Shortest Elapsed Time First (a.k.a. LAS / foreground-background).
//
// Non-clairvoyant: priorities are by *attained* service, least first.  On m
// machines, machines are handed out to jobs in increasing order of attained
// service; a group of jobs tied at the same attained level shares whatever
// machines remain so the tie is preserved (the exact fluid SETF of
// Barcelo-Im-Moseley-Pruhs, MedAlg'12).
//
// Between events the lowest group catches up to the next attained level, so
// the policy reports a breakpoint at the earliest catch-up time -- the engine
// then re-queries and the groups merge.  This makes the simulation exact.
//
// The allocation rule itself lives in core/share_rules.h (setf_rates), the
// one body both this rates() and FastForwardCore's kEqualAttained kernel
// instantiate -- which is what makes the fast path bitwise-equal.
#pragma once

#include "core/policy.h"
#include "core/share_rules.h"

namespace tempofair {

class Setf final : public Policy {
 public:
  /// `level_tolerance` is the relative tolerance under which two attained-
  /// service values count as the same level (ties must be grouped or the
  /// simulation degenerates into infinitely many tiny steps).
  explicit Setf(double level_tolerance = 1e-9);

  [[nodiscard]] std::string_view name() const noexcept override { return "setf"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }
  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;

  /// Epoch-coalescing closed form: the kernel evaluates the same
  /// share_rules::setf_rates over its own attained column (contract C1).
  [[nodiscard]] FastForward fast_forward() const noexcept override;

 private:
  double tol_;
  share_rules::SetfScratch scratch_;  // buffers only; no rule state (C2)
};

}  // namespace tempofair
