// WRR -- age-weighted Round Robin.
//
// Section 1.2 of the paper recalls that the *weighted* variant of RR that
// distributes machines in proportion to job ages is O(1)-speed
// O(1)-competitive for the l_2 norm [Edmonds-Im-Moseley'11], and that this
// was the analyzable algorithm before the paper showed plain RR suffices.
// We implement it as the T7 ablation partner.
//
// Allocation at time t: job j gets weight w_j = (t - r_j) + w0, and rates are
// the water-filling split of the total capacity s*m under the per-job cap s:
// proportional shares, with any job whose proportional share exceeds a full
// machine pinned at s and the surplus redistributed.
//
// Ages grow continuously, so shares drift between events; the policy bounds
// each step so that no age changes by more than `refresh_rel` relatively,
// making the simulation an epsilon-exact approximation of the fluid policy.
#pragma once

#include "core/policy.h"

namespace tempofair {

class WeightedRoundRobin final : public Policy {
 public:
  explicit WeightedRoundRobin(double age_offset = 1e-3, double refresh_rel = 0.02);

  [[nodiscard]] std::string_view name() const noexcept override { return "wrr"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }
  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;

  /// Ages (plus the offset) are strictly positive, so the waterfill always
  /// grants every alive job a positive share.
  [[nodiscard]] PolicyInvariantTraits invariant_traits()
      const noexcept override {
    PolicyInvariantTraits t;
    t.shares_all_alive = true;
    return t;
  }

 private:
  double age_offset_;
  double refresh_rel_;
};

/// Water-filling: splits `capacity` among weights with per-item cap `cap`.
/// Exposed for direct unit testing.  Returns rates parallel to `weights`.
[[nodiscard]] std::vector<double> waterfill(std::span<const double> weights,
                                            double capacity, double cap);

}  // namespace tempofair
