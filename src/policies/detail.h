// Internal helpers shared by the priority-based policies.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/policy.h"

namespace tempofair::detail {

/// Returns a RateDecision giving a full machine (rate = speed) to the
/// `ctx.machines` alive jobs that come first under `less` (a strict weak
/// order on indices into ctx.alive), and zero to the rest.
template <typename Less>
RateDecision run_top_m(const SchedulerContext& ctx, Less&& less) {
  const std::size_t n = ctx.n_alive();
  RateDecision d;
  d.rates.assign(n, 0.0);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  const std::size_t run = std::min<std::size_t>(n, static_cast<std::size_t>(ctx.machines));
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(run),
                    idx.end(), less);
  for (std::size_t i = 0; i < run; ++i) d.rates[idx[i]] = ctx.speed;
  return d;
}

}  // namespace tempofair::detail
