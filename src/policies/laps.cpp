#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "policies/priority_policies.h"

namespace tempofair {

Laps::Laps(double beta) : beta_(beta) {
  if (!(beta > 0.0) || beta > 1.0) {
    throw std::invalid_argument("Laps: beta must lie in (0, 1]");
  }
}

RateDecision Laps::rates(const SchedulerContext& ctx) {
  const std::size_t n = ctx.n_alive();
  const std::size_t share_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(beta_ * static_cast<double>(n))));

  // The ceil(beta*n) *latest*-arriving jobs split the machines equally.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  auto alive = ctx.alive;
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<std::ptrdiff_t>(share_count),
                    idx.end(), [alive](std::size_t a, std::size_t b) {
                      if (alive[a].release != alive[b].release) {
                        return alive[a].release > alive[b].release;
                      }
                      return alive[a].id > alive[b].id;
                    });

  const double rate =
      ctx.speed * std::min(1.0, static_cast<double>(ctx.machines) /
                                    static_cast<double>(share_count));
  RateDecision d;
  d.rates.assign(n, 0.0);
  for (std::size_t i = 0; i < share_count; ++i) d.rates[idx[i]] = rate;
  return d;
}

}  // namespace tempofair
