#include <stdexcept>

#include "core/share_rules.h"
#include "policies/priority_policies.h"

namespace tempofair {

Laps::Laps(double beta) : beta_(beta) {
  if (!(beta > 0.0) || beta > 1.0) {
    throw std::invalid_argument("Laps: beta must lie in (0, 1]");
  }
}

RateDecision Laps::rates(const SchedulerContext& ctx) {
  const auto alive = ctx.alive;
  RateDecision d;
  share_rules::laps_rates(
      ctx.n_alive(), ctx.machines, ctx.speed, beta_,
      [alive](std::size_t i) { return alive[i].release; }, d.rates, idx_);
  return d;
}

FastForward Laps::fast_forward() const noexcept {
  FastForward ff;
  ff.kind = FastForwardKind::kLatestArrival;
  ff.beta = beta_;
  return ff;
}

}  // namespace tempofair
