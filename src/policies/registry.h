// Policy registry: construct any built-in policy from a spec string.
//
// Specs:  "rr" | "srpt" | "sjf" | "fcfs" | "setf" | "wrr" | "mlfq"
//         "hdf" | "hrdf" | "wprr"          (weighted-flow policies)
//         "laps:<beta>"            e.g. "laps:0.5"
//         "qrr:<quantum>[,<switch_cost>]"  e.g. "qrr:0.25,0.01"
//
// Used by the experiment binaries, the examples' CLIs, and the
// parameterized test sweeps.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/policy.h"

namespace tempofair {

/// Creates a policy from its spec; throws std::invalid_argument for unknown
/// names or malformed parameters.
[[nodiscard]] std::unique_ptr<Policy> make_policy(std::string_view spec);

/// Specs of all parameter-free built-in policies (for sweeps over "every
/// policy").
[[nodiscard]] std::vector<std::string> builtin_policy_specs();

}  // namespace tempofair
