// Priority-based policies: SRPT, (preemptive) SJF, FCFS, LAPS.
//
// All of these dedicate whole machines to the m highest-priority alive jobs
// (or share among a prefix, for LAPS) and are the comparison points the
// paper discusses:
//  - SRPT (clairvoyant): optimal for total flow on one machine; scalable for
//    l_k norms [Bansal-Pruhs'10, Fox-Moseley'11].
//  - SJF, here the preemptive variant PSJF ordering by original size
//    (clairvoyant): scalable for l_k norms.
//  - FCFS (non-clairvoyant): runs the earliest-arrived jobs; poor for flow
//    norms when sizes vary, included as a baseline.
//  - LAPS(beta) (non-clairvoyant): shares the machines equally among the
//    ceil(beta * n_t) latest-arriving jobs [Edmonds-Pruhs'09]; beta = 1
//    degenerates to Round Robin.
#pragma once

#include "core/policy.h"

namespace tempofair {

/// Shortest Remaining Processing Time: the m alive jobs with least remaining
/// work each get a full machine.  Ties: earlier release, then lower id.
class Srpt final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "srpt"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return true; }
  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;

  // run-to-completion closed form: the priority enums mirror the exact
  // comparator in srpt.cpp (contract C1 in core/fast_forward.h).
  [[nodiscard]] FastForward fast_forward() const noexcept override {
    FastForward ff;
    ff.kind = FastForwardKind::kTopPriority;
    ff.priority = FastForwardPriority::kRemainingThenReleaseThenId;
    return ff;
  }
};

/// Preemptive Shortest Job First: priority by original size p_j.
class Sjf final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "sjf"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return true; }
  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;

  [[nodiscard]] FastForward fast_forward() const noexcept override {
    FastForward ff;
    ff.kind = FastForwardKind::kTopPriority;
    ff.priority = FastForwardPriority::kSizeThenReleaseThenId;
    return ff;
  }
};

/// First Come First Served: priority by (release, id).
class Fcfs final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "fcfs"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }
  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;

  [[nodiscard]] FastForward fast_forward() const noexcept override {
    FastForward ff;
    ff.kind = FastForwardKind::kTopPriority;
    ff.priority = FastForwardPriority::kReleaseThenId;
    return ff;
  }
};

/// Latest Arrival Processor Sharing with parameter beta in (0, 1].
class Laps final : public Policy {
 public:
  explicit Laps(double beta);
  [[nodiscard]] std::string_view name() const noexcept override { return "laps"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }
  [[nodiscard]] double beta() const noexcept { return beta_; }
  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;

  /// Epoch-coalescing closed form: the kernel evaluates the same
  /// share_rules::laps_rates over its release column (contract C1).
  [[nodiscard]] FastForward fast_forward() const noexcept override;

  /// LAPS shares only among the ceil(beta*n) latest arrivals with a per-job
  /// cap of one machine, so whenever ceil(beta*n) < m it idles capacity by
  /// design -- not work conserving.
  [[nodiscard]] PolicyInvariantTraits invariant_traits()
      const noexcept override {
    PolicyInvariantTraits t;
    t.work_conserving = false;
    return t;
  }

 private:
  double beta_;
  std::vector<std::size_t> idx_;  // laps_rates scratch; no rule state (C2)
};

}  // namespace tempofair
