#include "policies/detail.h"
#include "policies/priority_policies.h"

namespace tempofair {

RateDecision Srpt::rates(const SchedulerContext& ctx) {
  auto alive = ctx.alive;
  return detail::run_top_m(ctx, [alive](std::size_t a, std::size_t b) {
    if (alive[a].remaining != alive[b].remaining) {
      return alive[a].remaining < alive[b].remaining;
    }
    if (alive[a].release != alive[b].release) {
      return alive[a].release < alive[b].release;
    }
    return alive[a].id < alive[b].id;
  });
}

}  // namespace tempofair
