#include "policies/mlfq.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tempofair {

Mlfq::Mlfq(double base_quantum, double growth)
    : base_(base_quantum), growth_(growth) {
  if (!(base_quantum > 0.0)) {
    throw std::invalid_argument("Mlfq: base_quantum must be > 0");
  }
  if (!(growth > 1.0)) {
    throw std::invalid_argument("Mlfq: growth must be > 1");
  }
}

double Mlfq::threshold(int level) const noexcept {
  return base_ * std::pow(growth_, level);
}

int Mlfq::level_of(double attained) const noexcept {
  if (attained < base_) return 0;
  // Smallest L with attained < base * growth^L.
  const int lvl =
      static_cast<int>(std::floor(std::log(attained / base_) / std::log(growth_))) + 1;
  // Guard against log rounding at exact threshold values.
  int l = std::max(lvl - 1, 0);
  while (attained >= threshold(l)) ++l;
  return l;
}

RateDecision Mlfq::rates(const SchedulerContext& ctx) {
  const std::size_t n = ctx.n_alive();
  auto alive = ctx.alive;

  std::vector<int> levels(n);
  for (std::size_t i = 0; i < n; ++i) levels[i] = level_of(alive[i].attained);

  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  const std::size_t run = std::min<std::size_t>(n, static_cast<std::size_t>(ctx.machines));
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(run),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      if (levels[a] != levels[b]) return levels[a] < levels[b];
                      if (alive[a].release != alive[b].release) {
                        return alive[a].release < alive[b].release;
                      }
                      return alive[a].id < alive[b].id;
                    });

  RateDecision d;
  d.rates.assign(n, 0.0);
  Time breakpoint = kInfiniteTime;
  for (std::size_t i = 0; i < run; ++i) {
    const std::size_t a = idx[i];
    d.rates[a] = ctx.speed;
    // Re-query when this job crosses into the next level (it may then be
    // preempted by a lower-level waiter).
    const double to_demotion = threshold(levels[a]) - alive[a].attained;
    if (to_demotion > 0.0) {
      breakpoint = std::min(breakpoint, to_demotion / ctx.speed);
    }
  }
  if (breakpoint <= 0.0) breakpoint = kAbsEps;
  d.max_duration = breakpoint;
  return d;
}

}  // namespace tempofair
