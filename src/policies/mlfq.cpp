#include "policies/mlfq.h"

#include <stdexcept>

namespace tempofair {

Mlfq::Mlfq(double base_quantum, double growth)
    : base_(base_quantum), growth_(growth) {
  if (!(base_quantum > 0.0)) {
    throw std::invalid_argument("Mlfq: base_quantum must be > 0");
  }
  if (!(growth > 1.0)) {
    throw std::invalid_argument("Mlfq: growth must be > 1");
  }
}

double Mlfq::threshold(int level) const noexcept {
  return share_rules::mlfq_threshold(base_, growth_, level);
}

int Mlfq::level_of(double attained) const noexcept {
  return share_rules::mlfq_level_of(base_, growth_, attained);
}

RateDecision Mlfq::rates(const SchedulerContext& ctx) {
  const auto alive = ctx.alive;
  RateDecision d;
  d.max_duration = share_rules::mlfq_rates(
      ctx.n_alive(), ctx.machines, ctx.speed, base_, growth_,
      [alive](std::size_t i) { return alive[i].attained; },
      [alive](std::size_t i) { return alive[i].release; }, d.rates, scratch_);
  return d;
}

FastForward Mlfq::fast_forward() const noexcept {
  FastForward ff;
  ff.kind = FastForwardKind::kLevelPriority;
  ff.mlfq_base = base_;
  ff.mlfq_growth = growth_;
  return ff;
}

}  // namespace tempofair
