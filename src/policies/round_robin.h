// Round Robin (RR) -- the algorithm the paper analyzes.
//
// On m identical machines: when more jobs than machines are alive, every
// alive job receives an equal share m/n_t of the machines; otherwise each job
// runs on its own machine.  Equivalently m_j(t) = min(1, m/n_t) for every
// alive job (Section 2 of the paper), scaled by the speed augmentation s.
//
// RR is non-clairvoyant (it never looks at sizes) and instantaneously fair
// by construction; Theorem 1 shows it is also temporally fair: at speed
// 2k(1+10eps) it is O((k/eps)^..)-competitive for the l_k norm of flow time.
#pragma once

#include <cstddef>

#include "core/policy.h"

namespace tempofair {

class RoundRobin final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "rr"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }

  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;

  /// The closed-form per-job share s * min(1, m/n).  Single source of truth:
  /// rates() and the FastForward descriptor both call this, which is what
  /// makes the fast path bitwise-faithful (contract C1).
  [[nodiscard]] static double equal_share(std::size_t n_alive, int machines,
                                          double speed) noexcept;

  [[nodiscard]] FastForward fast_forward() const noexcept override {
    FastForward ff;
    ff.kind = FastForwardKind::kUniformShare;
    ff.uniform_share = &RoundRobin::equal_share;
    return ff;
  }

  /// RR carries the full witness set: work conserving, never starves an
  /// alive job, and gives everyone the identical share s*min(1, m/n) --
  /// the temporal-fairness property the paper's Theorem 1 rests on.
  [[nodiscard]] PolicyInvariantTraits invariant_traits()
      const noexcept override {
    PolicyInvariantTraits t;
    t.work_conserving = true;
    t.shares_all_alive = true;
    t.equal_share = true;
    return t;
  }
};

}  // namespace tempofair
