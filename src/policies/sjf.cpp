#include "policies/detail.h"
#include "policies/priority_policies.h"

namespace tempofair {

RateDecision Sjf::rates(const SchedulerContext& ctx) {
  auto alive = ctx.alive;
  return detail::run_top_m(ctx, [alive](std::size_t a, std::size_t b) {
    if (alive[a].size != alive[b].size) return alive[a].size < alive[b].size;
    if (alive[a].release != alive[b].release) {
      return alive[a].release < alive[b].release;
    }
    return alive[a].id < alive[b].id;
  });
}

}  // namespace tempofair
