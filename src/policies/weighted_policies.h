// Policies for *weighted* flow time (sum_j w_j F_j^k), the generalization
// studied by the weighted-flow literature the paper builds on ([1] Anand-
// Garg-Kumar, [7] Becchetti et al., [20] Im-Moseley):
//
//  * HDF -- Highest Density First: the m alive jobs of largest density
//    w_j / p_j each get a machine; the clairvoyant benchmark for weighted
//    l1 flow (O(1+eps)-speed O(1)-competitive [7]).
//  * HRDF -- Highest Residual Density First: density by *remaining* work
//    w_j / remaining_j (the weighted analogue of SRPT).
//  * WPRR -- Weight-Proportional Round Robin: machine shares proportional to
//    the static weights w_j (water-filled under the one-machine-per-job
//    cap).  Non-clairvoyant and instantaneously fair *per unit of weight* --
//    the natural weighted generalization of the paper's algorithm.  With all
//    weights equal it coincides exactly with RR.
#pragma once

#include "core/policy.h"

namespace tempofair {

class Hdf final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "hdf"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return true; }
  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;
};

class Hrdf final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "hrdf"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return true; }
  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;
};

class WeightProportionalRoundRobin final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "wprr"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }
  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;

  /// The closed-form allocation: waterfill of the static weights.  rates()
  /// and the FastForward descriptor both call this (contract C1).
  [[nodiscard]] static std::vector<double> shares(
      std::span<const double> weights, int machines, double speed);

  [[nodiscard]] FastForward fast_forward() const noexcept override {
    FastForward ff;
    ff.kind = FastForwardKind::kWeightedShare;
    ff.weighted_rates = &WeightProportionalRoundRobin::shares;
    return ff;
  }

  /// Waterfilling positive weights gives every alive job a positive share
  /// (the weighted no-starvation witness), but not an equal one.
  [[nodiscard]] PolicyInvariantTraits invariant_traits()
      const noexcept override {
    PolicyInvariantTraits t;
    t.shares_all_alive = true;
    return t;
  }
};

}  // namespace tempofair
