// MLFQ -- Multi-Level Feedback Queue, the classic OS approximation of SETF.
//
// Non-clairvoyant.  Level thresholds grow geometrically: a job is in level
// L(a) = number of thresholds T_i = base * growth^i that its attained service
// a has passed.  The m alive jobs of lexicographically least (level, release,
// id) run at full speed; a running job is demoted (re-queried via the
// breakpoint) when its attained service crosses its current threshold.
#pragma once

#include "core/policy.h"

namespace tempofair {

class Mlfq final : public Policy {
 public:
  explicit Mlfq(double base_quantum = 1.0, double growth = 2.0);

  [[nodiscard]] std::string_view name() const noexcept override { return "mlfq"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }
  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;

  /// Threshold above which a job leaves `level` (T_level).
  [[nodiscard]] double threshold(int level) const noexcept;
  /// Level of a job with attained service `attained`.
  [[nodiscard]] int level_of(double attained) const noexcept;

 private:
  double base_;
  double growth_;
};

}  // namespace tempofair
