// MLFQ -- Multi-Level Feedback Queue, the classic OS approximation of SETF.
//
// Non-clairvoyant.  Level thresholds grow geometrically: a job is in level
// L(a) = number of thresholds T_i = base * growth^i that its attained service
// a has passed.  The m alive jobs of lexicographically least (level, release,
// id) run at full speed; a running job is demoted (re-queried via the
// breakpoint) when its attained service crosses its current threshold.
//
// The allocation rule lives in core/share_rules.h (mlfq_rates / mlfq_level_of
// / mlfq_threshold), shared with FastForwardCore's kLevelPriority kernel so
// the fast path is bitwise-equal to the event loop.
#pragma once

#include "core/policy.h"
#include "core/share_rules.h"

namespace tempofair {

class Mlfq final : public Policy {
 public:
  explicit Mlfq(double base_quantum = 1.0, double growth = 2.0);

  [[nodiscard]] std::string_view name() const noexcept override { return "mlfq"; }
  [[nodiscard]] bool clairvoyant() const noexcept override { return false; }
  [[nodiscard]] RateDecision rates(const SchedulerContext& ctx) override;

  /// Epoch-coalescing closed form: the kernel evaluates the same
  /// share_rules::mlfq_rates over its attained column (contract C1).
  [[nodiscard]] FastForward fast_forward() const noexcept override;

  /// Threshold above which a job leaves `level` (T_level).
  [[nodiscard]] double threshold(int level) const noexcept;
  /// Level of a job with attained service `attained`.
  [[nodiscard]] int level_of(double attained) const noexcept;

 private:
  double base_;
  double growth_;
  share_rules::MlfqScratch scratch_;  // buffers only; no rule state (C2)
};

}  // namespace tempofair
