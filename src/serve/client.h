// Client side of the tempofaird protocol: a blocking, lockstep connection
// speaking the frames in serve/protocol.h.
//
// One Client owns one connection (one tenant session).  Every method sends
// a request frame and blocks for its response; a semantic ERROR frame from
// the daemon surfaces as ServerError (carrying the machine-readable code),
// transport trouble as WireError.  Not thread-safe -- one Client per
// thread, exactly like the daemon's one-reader-per-connection model.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/instance.h"
#include "core/job.h"
#include "serve/protocol.h"

namespace tempofair::serve {

/// The daemon answered with an ERROR frame.
class ServerError : public std::runtime_error {
 public:
  ServerError(ErrorCode code_in, const std::string& message)
      : std::runtime_error(message), code(code_in) {}
  const ErrorCode code;
};

class Client {
 public:
  /// Connects over the unix socket at `path` and performs the HELLO
  /// handshake as `tenant`.
  static Client connect_unix(const std::string& path,
                             const std::string& tenant);
  /// Connects to 127.0.0.1:`port` and performs the handshake.
  static Client connect_tcp(int port, const std::string& tenant);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] std::uint64_t session_id() const noexcept {
    return session_id_;
  }
  [[nodiscard]] const std::string& server() const noexcept { return server_; }

  // --- submission -----------------------------------------------------------
  /// Submits a whole instance as one run, chunked `chunk` jobs per frame
  /// (0 = everything in one frame).  Returns the server-assigned run id.
  /// A THROTTLED chunk is retried after a short backoff until `retries`
  /// rejections in a row (then the ServerError propagates).
  std::uint64_t submit(const Instance& instance, const RunRequest& request,
                       std::size_t chunk = 0, int retries = 100);

  /// Manual chunking for callers that generate jobs on the fly: open a run,
  /// feed chunks (jobs in nondecreasing release order, ids ignored), close
  /// it.  `total` must be exact (JobStream contract S1).  Each call returns
  /// accepted-so-far.  THROTTLED propagates as ServerError (code
  /// kThrottled): resend the same chunk after draining.
  std::uint64_t begin_submit(const RunRequest& request, std::uint64_t total,
                             std::span<const Job> first_chunk,
                             bool last, bool stream = true);
  std::uint64_t submit_chunk(std::span<const Job> jobs, bool last);

  /// One-frame submission (first and last chunk in one) of a materialized
  /// job list, independent of any open chunked submission on this
  /// connection.  Jobs must be in nondecreasing release order; ids are
  /// ignored.  Returns the server-assigned run id; THROTTLED propagates.
  std::uint64_t submit_jobs(const RunRequest& request,
                            std::span<const Job> jobs, bool stream = false);

  /// v3 spec-named submission: names the workload with a WorkloadSpec
  /// string (workload/spec.h) and ships zero jobs -- the daemon
  /// synthesizes the stream server-side.  `spec` overrides any workload
  /// already set on `request`.  One small frame regardless of n; a bad
  /// spec answers ServerError (kBadRequest) with the parse message.
  std::uint64_t submit_spec(const std::string& spec, RunRequest request);

  // --- queries --------------------------------------------------------------
  [[nodiscard]] MetricsMsg query_metrics(std::uint64_t run_id,
                                         std::vector<double> k_norms = {},
                                         std::vector<double> percentiles = {});
  [[nodiscard]] StatusMsg status(std::uint64_t run_id);
  CancelOkMsg cancel(std::uint64_t run_id);
  [[nodiscard]] StatsReplyMsg stats();
  [[nodiscard]] ResultMsg result(std::uint64_t run_id);

  /// Polls status() until the run reaches a terminal phase, then returns
  /// the result (throws ServerError if it failed or was cancelled).
  ResultMsg wait(std::uint64_t run_id);

 private:
  Client(int fd, const std::string& tenant);

  /// Sends one request and reads its response; throws ServerError if the
  /// response is an ERROR frame, WireError if it is not `expected`.
  [[nodiscard]] Frame roundtrip(FrameType request, const WireWriter& body,
                                FrameType expected);

  int fd_ = -1;
  std::uint64_t session_id_ = 0;
  std::string server_;
  std::uint64_t next_tag_ = 1;
  std::uint64_t open_tag_ = 0;   ///< tag of the submission begun and not closed
  std::uint64_t open_run_ = 0;   ///< its server-assigned run id
};

}  // namespace tempofair::serve
