#include "serve/protocol.h"

#include <limits>

namespace tempofair::serve {

namespace {

constexpr std::uint8_t kFlagFirst = 1u << 0;
constexpr std::uint8_t kFlagLast = 1u << 1;
constexpr std::uint8_t kFlagStream = 1u << 2;

[[nodiscard]] RunPhase decode_phase(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(RunPhase::kCancelled)) {
    throw WireError("protocol: unknown run phase " + std::to_string(raw));
  }
  return static_cast<RunPhase>(raw);
}

void encode_doubles(WireWriter& w, const std::vector<double>& values) {
  w.u32(static_cast<std::uint32_t>(values.size()));
  for (const double v : values) w.f64(v);
}

[[nodiscard]] std::vector<double> decode_doubles(WireReader& r,
                                                 const char* what) {
  const std::uint32_t n = r.u32();
  if (n > kMaxFramePayload / 8) {
    throw WireError(std::string("protocol: absurd ") + what + " count " +
                    std::to_string(n));
  }
  std::vector<double> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.f64());
  return out;
}

}  // namespace

std::string_view to_string(RunPhase phase) {
  switch (phase) {
    case RunPhase::kQueued: return "queued";
    case RunPhase::kRunning: return "running";
    case RunPhase::kDone: return "done";
    case RunPhase::kFailed: return "failed";
    case RunPhase::kCancelled: return "cancelled";
  }
  return "unknown";
}

void encode_run_request(WireWriter& w, const RunRequest& request) {
  w.str(request.policy);
  w.u32(static_cast<std::uint32_t>(request.machines));
  w.f64(request.speed);
  std::uint8_t flags = 0;
  if (request.record_trace) flags |= 1u << 0;
  if (request.hide_sizes) flags |= 1u << 1;
  if (request.use_fast_path) flags |= 1u << 2;
  w.u8(flags);
  w.f64(request.max_time);
  w.u64(request.max_steps);
  w.u64(request.max_zero_progress_steps);
  w.u8(static_cast<std::uint8_t>(request.invariants));
  w.u64(request.invariant_sample_period);
  w.str(request.workload);  // v3
}

RunRequest decode_run_request(WireReader& r) {
  RunRequest request;
  request.policy = r.str();
  const std::uint32_t machines = r.u32();
  if (machines == 0 ||
      machines > static_cast<std::uint32_t>(std::numeric_limits<int>::max())) {
    throw WireError("protocol: RunRequest machines out of range");
  }
  request.machines = static_cast<int>(machines);
  request.speed = r.f64();
  const std::uint8_t flags = r.u8();
  request.record_trace = (flags & (1u << 0)) != 0;
  request.hide_sizes = (flags & (1u << 1)) != 0;
  request.use_fast_path = (flags & (1u << 2)) != 0;
  request.max_time = r.f64();
  request.max_steps = static_cast<std::size_t>(r.u64());
  request.max_zero_progress_steps = static_cast<std::size_t>(r.u64());
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(InvariantMode::kExhaustive)) {
    throw WireError("protocol: unknown invariant mode " + std::to_string(mode));
  }
  request.invariants = static_cast<InvariantMode>(mode);
  const std::uint64_t period = r.u64();
  if (period == 0) {
    throw WireError("protocol: RunRequest invariant period must be >= 1");
  }
  request.invariant_sample_period = static_cast<std::size_t>(period);
  request.workload = r.str();  // v3
  return request;
}

void encode_invariant_stats(WireWriter& w, const InvariantStats& stats) {
  w.u8(static_cast<std::uint8_t>(stats.mode));
  w.u64(stats.epochs_seen);
  w.u64(stats.epochs_checked);
  w.u64(stats.checks_run);
  w.u64(stats.violations);
  w.u32(static_cast<std::uint32_t>(stats.reports.size()));
  for (const InvariantViolation& v : stats.reports) {
    w.str(v.check);
    w.str(v.detail);
    w.f64(v.time);
    w.u32(v.job);
  }
}

InvariantStats decode_invariant_stats(WireReader& r) {
  InvariantStats stats;
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(InvariantMode::kExhaustive)) {
    throw WireError("protocol: unknown invariant mode " + std::to_string(mode));
  }
  stats.mode = static_cast<InvariantMode>(mode);
  stats.epochs_seen = r.u64();
  stats.epochs_checked = r.u64();
  stats.checks_run = r.u64();
  stats.violations = r.u64();
  const std::uint32_t n = r.u32();
  if (n > kMaxInvariantReports) {
    throw WireError("protocol: absurd invariant report count " +
                    std::to_string(n));
  }
  stats.reports.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    InvariantViolation v;
    v.check = r.str();
    v.detail = r.str();
    v.time = r.f64();
    v.job = r.u32();
    stats.reports.push_back(std::move(v));
  }
  return stats;
}

void encode_flow_stats(WireWriter& w, const FlowStats& stats) {
  w.u64(stats.n);
  w.f64(stats.l1);
  w.f64(stats.l2);
  w.f64(stats.l3);
  w.f64(stats.linf);
  w.f64(stats.mean);
  w.f64(stats.variance);
  w.f64(stats.stddev);
  w.f64(stats.p50);
  w.f64(stats.p95);
  w.f64(stats.p99);
}

FlowStats decode_flow_stats(WireReader& r) {
  FlowStats stats;
  stats.n = static_cast<std::size_t>(r.u64());
  stats.l1 = r.f64();
  stats.l2 = r.f64();
  stats.l3 = r.f64();
  stats.linf = r.f64();
  stats.mean = r.f64();
  stats.variance = r.f64();
  stats.stddev = r.f64();
  stats.p50 = r.f64();
  stats.p95 = r.f64();
  stats.p99 = r.f64();
  return stats;
}

void encode(WireWriter& w, const HelloMsg& m) {
  w.u32(m.version);
  w.str(m.tenant);
}

HelloMsg decode_hello(WireReader& r) {
  HelloMsg m;
  m.version = r.u32();
  m.tenant = r.str();
  r.expect_exhausted("HELLO");
  return m;
}

void encode(WireWriter& w, const HelloOkMsg& m) {
  w.u32(m.version);
  w.str(m.server);
  w.u64(m.session_id);
}

HelloOkMsg decode_hello_ok(WireReader& r) {
  HelloOkMsg m;
  m.version = r.u32();
  m.server = r.str();
  m.session_id = r.u64();
  r.expect_exhausted("HELLO_OK");
  return m;
}

void encode(WireWriter& w, const SubmitJobsMsg& m) {
  w.u64(m.tag);
  std::uint8_t flags = 0;
  if (m.first) flags |= kFlagFirst;
  if (m.last) flags |= kFlagLast;
  if (m.stream) flags |= kFlagStream;
  w.u8(flags);
  if (m.first) {
    encode_run_request(w, m.request);
    w.u64(m.total_jobs);
  }
  w.u32(static_cast<std::uint32_t>(m.jobs.size()));
  for (const Job& job : m.jobs) {
    w.f64(job.release);
    w.f64(job.size);
    w.f64(job.weight);
  }
}

SubmitJobsMsg decode_submit_jobs(WireReader& r) {
  SubmitJobsMsg m;
  m.tag = r.u64();
  const std::uint8_t flags = r.u8();
  m.first = (flags & kFlagFirst) != 0;
  m.last = (flags & kFlagLast) != 0;
  m.stream = (flags & kFlagStream) != 0;
  if (m.first) {
    m.request = decode_run_request(r);
    m.total_jobs = r.u64();
  }
  const std::uint32_t count = r.u32();
  if (count > kMaxFramePayload / 24) {
    throw WireError("protocol: absurd job count " + std::to_string(count));
  }
  m.jobs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Job job;
    job.release = r.f64();
    job.size = r.f64();
    job.weight = r.f64();
    m.jobs.push_back(job);
  }
  r.expect_exhausted("SUBMIT_JOBS");
  return m;
}

void encode(WireWriter& w, const SubmitOkMsg& m) {
  w.u64(m.tag);
  w.u64(m.run_id);
  w.u64(m.accepted_jobs);
}

SubmitOkMsg decode_submit_ok(WireReader& r) {
  SubmitOkMsg m;
  m.tag = r.u64();
  m.run_id = r.u64();
  m.accepted_jobs = r.u64();
  r.expect_exhausted("SUBMIT_OK");
  return m;
}

void encode(WireWriter& w, const QueryMetricsMsg& m) {
  w.u64(m.run_id);
  encode_doubles(w, m.k_norms);
  encode_doubles(w, m.percentiles);
}

QueryMetricsMsg decode_query_metrics(WireReader& r) {
  QueryMetricsMsg m;
  m.run_id = r.u64();
  m.k_norms = decode_doubles(r, "k-norm");
  m.percentiles = decode_doubles(r, "percentile");
  r.expect_exhausted("QUERY_METRICS");
  return m;
}

void encode(WireWriter& w, const MetricsMsg& m) {
  w.u64(m.run_id);
  w.u8(static_cast<std::uint8_t>(m.phase));
  w.u64(m.completed);
  w.u64(m.total);
  encode_flow_stats(w, m.stats);
  encode_doubles(w, m.k_values);
  encode_doubles(w, m.pct_values);
}

MetricsMsg decode_metrics(WireReader& r) {
  MetricsMsg m;
  m.run_id = r.u64();
  m.phase = decode_phase(r.u8());
  m.completed = r.u64();
  m.total = r.u64();
  m.stats = decode_flow_stats(r);
  m.k_values = decode_doubles(r, "k-norm value");
  m.pct_values = decode_doubles(r, "percentile value");
  r.expect_exhausted("METRICS");
  return m;
}

void encode(WireWriter& w, const RunStatusMsg& m) { w.u64(m.run_id); }

RunStatusMsg decode_run_status(WireReader& r) {
  RunStatusMsg m;
  m.run_id = r.u64();
  r.expect_exhausted("RUN_STATUS");
  return m;
}

void encode(WireWriter& w, const StatusMsg& m) {
  w.u64(m.run_id);
  w.u8(static_cast<std::uint8_t>(m.phase));
  w.u64(m.completed);
  w.u64(m.total);
  w.str(m.error);
}

StatusMsg decode_status(WireReader& r) {
  StatusMsg m;
  m.run_id = r.u64();
  m.phase = decode_phase(r.u8());
  m.completed = r.u64();
  m.total = r.u64();
  m.error = r.str();
  r.expect_exhausted("STATUS");
  return m;
}

void encode(WireWriter& w, const CancelMsg& m) { w.u64(m.run_id); }

CancelMsg decode_cancel(WireReader& r) {
  CancelMsg m;
  m.run_id = r.u64();
  r.expect_exhausted("CANCEL");
  return m;
}

void encode(WireWriter& w, const CancelOkMsg& m) {
  w.u64(m.run_id);
  w.u8(static_cast<std::uint8_t>(m.phase));
}

CancelOkMsg decode_cancel_ok(WireReader& r) {
  CancelOkMsg m;
  m.run_id = r.u64();
  m.phase = decode_phase(r.u8());
  r.expect_exhausted("CANCEL_OK");
  return m;
}

void encode(WireWriter& w, const StatsReplyMsg& m) {
  w.u32(static_cast<std::uint32_t>(m.counters.size()));
  for (const auto& [name, value] : m.counters) {
    w.str(name);
    w.u64(value);
  }
}

StatsReplyMsg decode_stats_reply(WireReader& r) {
  StatsReplyMsg m;
  const std::uint32_t n = r.u32();
  if (n > kMaxFramePayload / 12) {
    throw WireError("protocol: absurd counter count " + std::to_string(n));
  }
  m.counters.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = r.str();
    const std::uint64_t value = r.u64();
    m.counters.emplace_back(std::move(name), value);
  }
  r.expect_exhausted("STATS_REPLY");
  return m;
}

void encode(WireWriter& w, const GetResultMsg& m) { w.u64(m.run_id); }

GetResultMsg decode_get_result(WireReader& r) {
  GetResultMsg m;
  m.run_id = r.u64();
  r.expect_exhausted("GET_RESULT");
  return m;
}

void encode(WireWriter& w, const ResultMsg& m) {
  w.u64(m.run_id);
  w.str(m.policy);
  w.f64(m.wall_seconds);
  encode_flow_stats(w, m.stats);
  encode_doubles(w, m.completions);
  encode_invariant_stats(w, m.invariants);
}

ResultMsg decode_result(WireReader& r) {
  ResultMsg m;
  m.run_id = r.u64();
  m.policy = r.str();
  m.wall_seconds = r.f64();
  m.stats = decode_flow_stats(r);
  m.completions = decode_doubles(r, "completion");
  m.invariants = decode_invariant_stats(r);
  r.expect_exhausted("RESULT");
  return m;
}

void encode(WireWriter& w, const ErrorMsg& m) {
  w.u16(static_cast<std::uint16_t>(m.code));
  w.str(m.message);
}

ErrorMsg decode_error(WireReader& r) {
  ErrorMsg m;
  m.code = static_cast<ErrorCode>(r.u16());
  m.message = r.str();
  r.expect_exhausted("ERROR");
  return m;
}

}  // namespace tempofair::serve
