#include "serve/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace tempofair::serve {

namespace {

[[nodiscard]] int connect_fd_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw WireError(std::string("client: socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw WireError("client: unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    throw WireError("client: connect(" + path + "): " + std::strerror(errno));
  }
  return fd;
}

[[nodiscard]] int connect_fd_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw WireError(std::string("client: socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    throw WireError("client: connect(127.0.0.1:" + std::to_string(port) +
                    "): " + std::strerror(errno));
  }
  return fd;
}

}  // namespace

Client::Client(int fd, const std::string& tenant) : fd_(fd) {
  HelloMsg hello;
  hello.tenant = tenant;
  WireWriter w;
  encode(w, hello);
  write_frame(fd_, FrameType::kHello, w);
  std::optional<Frame> reply = read_frame(fd_);
  if (!reply.has_value()) {
    throw WireError("client: server closed the connection during handshake");
  }
  if (reply->type == FrameType::kError) {
    WireReader r(reply->payload);
    const ErrorMsg err = decode_error(r);
    throw ServerError(err.code, err.message);
  }
  if (reply->type != FrameType::kHelloOk) {
    throw WireError("client: expected HELLO_OK, got frame type " +
                    std::to_string(static_cast<int>(reply->type)));
  }
  WireReader r(reply->payload);
  const HelloOkMsg ok = decode_hello_ok(r);
  session_id_ = ok.session_id;
  server_ = ok.server;
}

Client Client::connect_unix(const std::string& path,
                            const std::string& tenant) {
  return Client(connect_fd_unix(path), tenant);
}

Client Client::connect_tcp(int port, const std::string& tenant) {
  return Client(connect_fd_tcp(port), tenant);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      session_id_(other.session_id_),
      server_(std::move(other.server_)),
      next_tag_(other.next_tag_),
      open_tag_(other.open_tag_),
      open_run_(other.open_run_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    session_id_ = other.session_id_;
    server_ = std::move(other.server_);
    next_tag_ = other.next_tag_;
    open_tag_ = other.open_tag_;
    open_run_ = other.open_run_;
  }
  return *this;
}

Frame Client::roundtrip(FrameType request, const WireWriter& body,
                        FrameType expected) {
  write_frame(fd_, request, body);
  std::optional<Frame> reply = read_frame(fd_);
  if (!reply.has_value()) {
    throw WireError("client: server closed the connection");
  }
  if (reply->type == FrameType::kError) {
    WireReader r(reply->payload);
    const ErrorMsg err = decode_error(r);
    throw ServerError(err.code, err.message);
  }
  if (reply->type != expected) {
    throw WireError("client: expected frame type " +
                    std::to_string(static_cast<int>(expected)) + ", got " +
                    std::to_string(static_cast<int>(reply->type)));
  }
  return *std::move(reply);
}

std::uint64_t Client::begin_submit(const RunRequest& request,
                                   std::uint64_t total,
                                   std::span<const Job> first_chunk,
                                   bool last, bool stream) {
  SubmitJobsMsg msg;
  msg.tag = next_tag_++;
  msg.first = true;
  msg.last = last;
  msg.request = request;
  msg.total_jobs = total;
  msg.stream = stream;
  msg.jobs.assign(first_chunk.begin(), first_chunk.end());
  WireWriter w;
  encode(w, msg);
  const Frame reply = roundtrip(FrameType::kSubmitJobs, w, FrameType::kSubmitOk);
  WireReader r(reply.payload);
  const SubmitOkMsg ok = decode_submit_ok(r);
  open_tag_ = last ? 0 : msg.tag;
  open_run_ = ok.run_id;
  return ok.run_id;
}

std::uint64_t Client::submit_chunk(std::span<const Job> jobs, bool last) {
  if (open_tag_ == 0) {
    throw WireError("client: submit_chunk without an open submission");
  }
  SubmitJobsMsg msg;
  msg.tag = open_tag_;
  msg.first = false;
  msg.last = last;
  msg.jobs.assign(jobs.begin(), jobs.end());
  WireWriter w;
  encode(w, msg);
  const Frame reply = roundtrip(FrameType::kSubmitJobs, w, FrameType::kSubmitOk);
  WireReader r(reply.payload);
  const SubmitOkMsg ok = decode_submit_ok(r);
  if (last) open_tag_ = 0;
  return ok.accepted_jobs;
}

std::uint64_t Client::submit_jobs(const RunRequest& request,
                                  std::span<const Job> jobs, bool stream) {
  SubmitJobsMsg msg;
  msg.tag = next_tag_++;
  msg.first = true;
  msg.last = true;
  msg.request = request;
  msg.total_jobs = jobs.size();
  msg.stream = stream;
  msg.jobs.assign(jobs.begin(), jobs.end());
  WireWriter w;
  encode(w, msg);
  const Frame reply = roundtrip(FrameType::kSubmitJobs, w, FrameType::kSubmitOk);
  WireReader r(reply.payload);
  return decode_submit_ok(r).run_id;
}

std::uint64_t Client::submit_spec(const std::string& spec,
                                  RunRequest request) {
  request.workload = spec;
  SubmitJobsMsg msg;
  msg.tag = next_tag_++;
  msg.first = true;
  msg.last = true;
  msg.request = request;
  msg.total_jobs = 0;  // the daemon learns n from the spec
  msg.stream = false;
  WireWriter w;
  encode(w, msg);
  const Frame reply = roundtrip(FrameType::kSubmitJobs, w, FrameType::kSubmitOk);
  WireReader r(reply.payload);
  return decode_submit_ok(r).run_id;
}

std::uint64_t Client::submit(const Instance& instance,
                             const RunRequest& request, std::size_t chunk,
                             int retries) {
  // Jobs must go over the wire in release order (the daemon validates);
  // instance ids are reassigned server-side, but completions still come
  // back indexed by the order sent, so track the permutation?  No: the
  // daemon assigns ids in submission order, so sending in release_order()
  // means completions[i] belongs to instance.job(release_order()[i]).
  // Callers comparing against an offline run should build their offline
  // Instance in release order too (tests do).
  std::vector<Job> ordered;
  ordered.reserve(instance.n());
  for (const JobId id : instance.release_order()) {
    ordered.push_back(instance.job(id));
  }
  if (chunk == 0) chunk = ordered.empty() ? 1 : ordered.size();

  auto send_with_retry = [&](auto&& send) -> std::uint64_t {
    for (int attempt = 0;; ++attempt) {
      try {
        return send();
      } catch (const ServerError& e) {
        if (e.code != ErrorCode::kThrottled || attempt >= retries) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  };

  std::uint64_t run_id = 0;
  std::size_t sent = 0;
  bool first = true;
  while (first || sent < ordered.size()) {
    const std::size_t take = std::min(chunk, ordered.size() - sent);
    const std::span<const Job> piece(ordered.data() + sent, take);
    const bool last = sent + take == ordered.size();
    if (first) {
      run_id = send_with_retry([&] {
        return begin_submit(request, ordered.size(), piece, last);
      });
      first = false;
    } else {
      send_with_retry([&] { return submit_chunk(piece, last); });
    }
    sent += take;
  }
  return run_id;
}

MetricsMsg Client::query_metrics(std::uint64_t run_id,
                                 std::vector<double> k_norms,
                                 std::vector<double> percentiles) {
  QueryMetricsMsg msg;
  msg.run_id = run_id;
  msg.k_norms = std::move(k_norms);
  msg.percentiles = std::move(percentiles);
  WireWriter w;
  encode(w, msg);
  const Frame reply =
      roundtrip(FrameType::kQueryMetrics, w, FrameType::kMetrics);
  WireReader r(reply.payload);
  return decode_metrics(r);
}

StatusMsg Client::status(std::uint64_t run_id) {
  RunStatusMsg msg;
  msg.run_id = run_id;
  WireWriter w;
  encode(w, msg);
  const Frame reply = roundtrip(FrameType::kRunStatus, w, FrameType::kStatus);
  WireReader r(reply.payload);
  return decode_status(r);
}

CancelOkMsg Client::cancel(std::uint64_t run_id) {
  CancelMsg msg;
  msg.run_id = run_id;
  WireWriter w;
  encode(w, msg);
  const Frame reply = roundtrip(FrameType::kCancel, w, FrameType::kCancelOk);
  WireReader r(reply.payload);
  return decode_cancel_ok(r);
}

StatsReplyMsg Client::stats() {
  WireWriter w;
  const Frame reply = roundtrip(FrameType::kStats, w, FrameType::kStatsReply);
  WireReader r(reply.payload);
  return decode_stats_reply(r);
}

ResultMsg Client::result(std::uint64_t run_id) {
  GetResultMsg msg;
  msg.run_id = run_id;
  WireWriter w;
  encode(w, msg);
  const Frame reply = roundtrip(FrameType::kGetResult, w, FrameType::kResult);
  WireReader r(reply.payload);
  return decode_result(r);
}

ResultMsg Client::wait(std::uint64_t run_id) {
  for (;;) {
    const StatusMsg s = status(run_id);
    switch (s.phase) {
      case RunPhase::kDone:
        return result(run_id);
      case RunPhase::kFailed:
        throw ServerError(ErrorCode::kBadRequest, "run failed: " + s.error);
      case RunPhase::kCancelled:
        throw ServerError(ErrorCode::kBadRequest,
                          s.error.empty() ? "run cancelled" : s.error);
      case RunPhase::kQueued:
      case RunPhase::kRunning:
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        break;
    }
  }
}

}  // namespace tempofair::serve
