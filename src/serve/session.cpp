#include "serve/session.h"

#include <utility>

namespace tempofair::serve {

Job QueueJobStream::next() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return !buffer_.empty() || aborted_; });
  if (buffer_.empty()) {
    throw RunCancelled(abort_reason_);
  }
  Job job = buffer_.front();
  buffer_.pop_front();
  return job;
}

void QueueJobStream::push(std::span<const Job> jobs) {
  {
    std::lock_guard lock(mutex_);
    buffer_.insert(buffer_.end(), jobs.begin(), jobs.end());
  }
  cv_.notify_one();
}

void QueueJobStream::abort(std::string reason) {
  {
    std::lock_guard lock(mutex_);
    if (aborted_) return;
    aborted_ = true;
    abort_reason_ = std::move(reason);
  }
  cv_.notify_all();
}

std::size_t QueueJobStream::buffered() const {
  std::lock_guard lock(mutex_);
  return buffer_.size();
}

void RunState::finish(RunPhase terminal, std::string error_text) {
  {
    std::lock_guard lock(mutex);
    if (phase == RunPhase::kDone || phase == RunPhase::kFailed ||
        phase == RunPhase::kCancelled) {
      return;
    }
    phase = terminal;
    error = std::move(error_text);
  }
  done_cv.notify_all();
}

StatusMsg RunState::status() const {
  StatusMsg msg;
  msg.run_id = id;
  {
    std::lock_guard lock(mutex);
    msg.phase = phase;
    msg.error = error;
  }
  msg.completed = live.completed();
  msg.total = declared_total;
  return msg;
}

std::size_t RunState::buffered_jobs() const {
  if (stream != nullptr) return stream->buffered();
  std::lock_guard lock(mutex);
  // Materialized jobs count as buffered until the run reaches a terminal
  // phase -- the vector is alive (and the engine holds a copy of its
  // contents) for that whole window.
  if (phase == RunPhase::kQueued || phase == RunPhase::kRunning) {
    return jobs.size();
  }
  return 0;
}

std::size_t Session::buffered_jobs_locked() const {
  std::size_t total = 0;
  for (const auto& [id_, run] : runs) total += run->buffered_jobs();
  return total;
}

std::shared_ptr<RunState> Session::find_run(std::uint64_t run_id) {
  std::lock_guard lock(mutex);
  const auto it = runs.find(run_id);
  return it == runs.end() ? nullptr : it->second;
}

}  // namespace tempofair::serve
