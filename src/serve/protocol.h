// tempofaird protocol v3: message structs and their payload codecs.
//
// Request/response pairs (every request frame gets exactly one response,
// written before the next request is read -- the protocol is lockstep per
// connection, which keeps clients trivially correct):
//
//   HELLO         -> HELLO_OK | ERROR      open a tenant session
//   SUBMIT_JOBS   -> SUBMIT_OK | ERROR     one chunk of a run's job stream
//   QUERY_METRICS -> METRICS | ERROR       live flow stats of a run in flight
//   RUN_STATUS    -> STATUS | ERROR        phase + progress of a run
//   CANCEL        -> CANCEL_OK | ERROR     stop a queued or running run
//   STATS         -> STATS_REPLY           per-session observability counters
//   GET_RESULT    -> RESULT | ERROR        completed run's full result
//
// A run's jobs arrive as one or more SUBMIT_JOBS chunks sharing a client
// tag: the first chunk carries the serialized RunRequest plus the declared
// job total, the last is flagged, and job ids are assigned server-side in
// submission order.  Fast-path-capable runs start simulating on the first
// chunk and consume later chunks as a live JobStream; other runs start once
// the last chunk lands.  This is the wire form of the RunRequest/RunResult
// facade in core/engine.h -- the daemon decodes a request, feeds it to
// run(), and encodes the result, with no serving-only semantics in between.
//
// v3: a tenant can instead *name* its workload.  A single SUBMIT_JOBS chunk
// with first+last set, zero jobs, and a nonempty RunRequest::workload spec
// string makes the daemon synthesize the job stream server-side through
// workload::make_source -- the spec travels in the request, not the jobs,
// so a run is one small frame regardless of n.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/job.h"
#include "core/metrics.h"
#include "serve/wire.h"

namespace tempofair::serve {

/// Machine-readable failure category carried by an ERROR frame.
enum class ErrorCode : std::uint16_t {
  kBadFrame = 1,    ///< unknown type, malformed payload, protocol misuse
  kNoHello = 2,     ///< a request arrived before HELLO
  kUnknownRun = 3,  ///< run id not owned by this session
  kThrottled = 4,   ///< backpressure: session queue or buffer cap exceeded
  kNotReady = 5,    ///< GET_RESULT before the run reached a terminal phase
  kBadRequest = 6,  ///< undecodable RunRequest / unknown policy / bad jobs
  kShuttingDown = 7,
};

/// Lifecycle of a submitted run, as reported by STATUS/METRICS frames.
enum class RunPhase : std::uint8_t {
  kQueued = 0,   ///< receiving chunks or waiting for a pool slot
  kRunning = 1,  ///< simulating (live metrics are flowing)
  kDone = 2,     ///< result available via GET_RESULT
  kFailed = 3,   ///< error text in STATUS
  kCancelled = 4,
};

[[nodiscard]] std::string_view to_string(RunPhase phase);

struct HelloMsg {
  std::uint32_t version = kProtocolVersion;
  std::string tenant;
};

struct HelloOkMsg {
  std::uint32_t version = kProtocolVersion;
  std::string server;
  std::uint64_t session_id = 0;
};

struct SubmitJobsMsg {
  /// Client-chosen id tying this chunk to its run (unique per connection).
  std::uint64_t tag = 0;
  bool first = false;  ///< carries request/total_jobs/stream
  bool last = false;   ///< no more chunks after this one
  /// Valid when `first`: the run to execute (serializable fields only).
  RunRequest request;
  /// Valid when `first`: exact number of jobs across all chunks.
  std::uint64_t total_jobs = 0;
  /// Valid when `first`: jobs are sent in release order, so the daemon may
  /// stream them straight into the engine's fast path.  When false the
  /// daemon materializes the instance before running.
  bool stream = true;
  /// This chunk's jobs (release, size, weight); ids are assigned
  /// server-side, sequentially in submission order.
  std::vector<Job> jobs;
};

struct SubmitOkMsg {
  std::uint64_t tag = 0;
  std::uint64_t run_id = 0;
  /// Jobs accepted so far across all chunks of this run.
  std::uint64_t accepted_jobs = 0;
};

struct QueryMetricsMsg {
  std::uint64_t run_id = 0;
  /// Extra l_k norms to evaluate over the completed-so-far flows.
  std::vector<double> k_norms;
  /// Extra percentiles (0..100) to evaluate.
  std::vector<double> percentiles;
};

struct MetricsMsg {
  std::uint64_t run_id = 0;
  RunPhase phase = RunPhase::kQueued;
  std::uint64_t completed = 0;
  std::uint64_t total = 0;
  /// Full summary over the completed-so-far flows.
  FlowStats stats;
  /// Values for QueryMetricsMsg::k_norms, in order.
  std::vector<double> k_values;
  /// Values for QueryMetricsMsg::percentiles, in order.
  std::vector<double> pct_values;
};

struct RunStatusMsg {
  std::uint64_t run_id = 0;
};

struct StatusMsg {
  std::uint64_t run_id = 0;
  RunPhase phase = RunPhase::kQueued;
  std::uint64_t completed = 0;
  std::uint64_t total = 0;
  std::string error;  ///< nonempty iff phase == kFailed
};

struct CancelMsg {
  std::uint64_t run_id = 0;
};

struct CancelOkMsg {
  std::uint64_t run_id = 0;
  /// Phase observed when the cancel was applied.
  RunPhase phase = RunPhase::kCancelled;
};

struct StatsReplyMsg {
  /// Session counter snapshot (obs::Sink), name-sorted.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

struct GetResultMsg {
  std::uint64_t run_id = 0;
};

struct ResultMsg {
  std::uint64_t run_id = 0;
  std::string policy;
  double wall_seconds = 0.0;
  FlowStats stats;
  /// Completion time per job, indexed by server-assigned job id.  Bitwise
  /// the engine's values, so offline replays compare byte-identical.
  std::vector<double> completions;
  /// What the run's invariant checkers observed (v2).
  InvariantStats invariants;
};

struct ErrorMsg {
  ErrorCode code = ErrorCode::kBadFrame;
  std::string message;
};

// --- payload codecs ---------------------------------------------------------
// encode_* appends the message to a writer; decode_* consumes a reader and
// verifies it is fully exhausted.  Both sides are exercised byte-for-byte by
// tests/serve/protocol_test.cpp round trips.

void encode(WireWriter& w, const HelloMsg& m);
void encode(WireWriter& w, const HelloOkMsg& m);
void encode(WireWriter& w, const SubmitJobsMsg& m);
void encode(WireWriter& w, const SubmitOkMsg& m);
void encode(WireWriter& w, const QueryMetricsMsg& m);
void encode(WireWriter& w, const MetricsMsg& m);
void encode(WireWriter& w, const RunStatusMsg& m);
void encode(WireWriter& w, const StatusMsg& m);
void encode(WireWriter& w, const CancelMsg& m);
void encode(WireWriter& w, const CancelOkMsg& m);
void encode(WireWriter& w, const StatsReplyMsg& m);
void encode(WireWriter& w, const GetResultMsg& m);
void encode(WireWriter& w, const ResultMsg& m);
void encode(WireWriter& w, const ErrorMsg& m);

[[nodiscard]] HelloMsg decode_hello(WireReader& r);
[[nodiscard]] HelloOkMsg decode_hello_ok(WireReader& r);
[[nodiscard]] SubmitJobsMsg decode_submit_jobs(WireReader& r);
[[nodiscard]] SubmitOkMsg decode_submit_ok(WireReader& r);
[[nodiscard]] QueryMetricsMsg decode_query_metrics(WireReader& r);
[[nodiscard]] MetricsMsg decode_metrics(WireReader& r);
[[nodiscard]] RunStatusMsg decode_run_status(WireReader& r);
[[nodiscard]] StatusMsg decode_status(WireReader& r);
[[nodiscard]] CancelMsg decode_cancel(WireReader& r);
[[nodiscard]] CancelOkMsg decode_cancel_ok(WireReader& r);
[[nodiscard]] StatsReplyMsg decode_stats_reply(WireReader& r);
[[nodiscard]] GetResultMsg decode_get_result(WireReader& r);
[[nodiscard]] ResultMsg decode_result(WireReader& r);
[[nodiscard]] ErrorMsg decode_error(WireReader& r);

/// Serializable subset of a RunRequest (the live hooks stay local); used
/// inside SUBMIT_JOBS and reusable by any future persistence format.
void encode_run_request(WireWriter& w, const RunRequest& request);
[[nodiscard]] RunRequest decode_run_request(WireReader& r);

void encode_flow_stats(WireWriter& w, const FlowStats& stats);
[[nodiscard]] FlowStats decode_flow_stats(WireReader& r);

void encode_invariant_stats(WireWriter& w, const InvariantStats& stats);
[[nodiscard]] InvariantStats decode_invariant_stats(WireReader& r);

}  // namespace tempofair::serve
