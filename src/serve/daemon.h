// tempofaird: the scheduling-as-a-service daemon.
//
// One Daemon owns
//   * up to two listening sockets (a unix socket path and/or a loopback TCP
//     port) accepting tenant connections,
//   * one reader thread per connection speaking the lockstep frame protocol
//     (serve/protocol.h), each with its own Session,
//   * the shared work-stealing pool executing runs, and
//   * a dispatch thread admitting queued runs to the pool round-robin
//     across sessions, so one chatty tenant cannot starve the others.
//
// Backpressure is squelch-style: a session exceeding its active-run or
// buffered-job budget gets a THROTTLED error instead of an accept, and the
// client resends after draining.  Combined with the lockstep protocol (one
// outstanding request per connection) this bounds every per-session queue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/thread_pool.h"
#include "serve/session.h"

namespace tempofair::serve {

struct DaemonConfig {
  /// Unix socket path to listen on; empty = no unix listener.
  std::string unix_socket_path;
  /// Loopback TCP port to listen on; -1 = no TCP listener, 0 = ephemeral
  /// (read the bound port back with Daemon::tcp_port()).
  int tcp_port = -1;
  /// Worker threads for run execution (0 = hardware concurrency).
  std::size_t workers = 0;
  /// Per-session cap on runs that are queued or running at once.
  std::size_t max_active_runs = 16;
  /// Per-session cap on jobs buffered across all of its runs (streaming
  /// queues + materialized instances awaiting execution).
  std::size_t max_buffered_jobs = 1'000'000;
  /// Directory wire-submitted `trace:` workload specs may read from; paths
  /// are resolved against it and must not escape it.  Empty (the default)
  /// rejects trace specs outright -- otherwise any tenant could make the
  /// daemon open arbitrary host paths and probe the filesystem through the
  /// echoed open/parse errors.
  std::string trace_root;
  /// Server name announced in HELLO_OK.
  std::string server_name = "tempofaird";
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the configured listeners and starts the accept/dispatch threads.
  /// Throws std::runtime_error if no listener is configured or bind fails.
  void start();

  /// Graceful shutdown: stops accepting, cancels queued runs, aborts live
  /// streams (in-flight engine runs see their cancel flag), waits for
  /// workers to drain, and joins every thread.  Idempotent.
  void stop();

  /// The TCP port actually bound (after start(); ephemeral ports resolved).
  [[nodiscard]] int tcp_port() const noexcept { return bound_tcp_port_; }

  /// Daemon-wide counters (sessions opened, runs executed, frames served).
  [[nodiscard]] std::map<std::string, std::uint64_t> stats() const;

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(int fd);
  void dispatch_loop();
  void execute_run(const std::shared_ptr<Session>& session,
                   const std::shared_ptr<RunState>& run);

  /// Handles one request frame, returning the response to write.  Never
  /// throws on semantic errors (those become ERROR frames); WireError from
  /// a malformed payload propagates to the connection loop.
  [[nodiscard]] Frame handle_frame(const std::shared_ptr<Session>& session,
                                   const Frame& frame);

  [[nodiscard]] Frame handle_submit(const std::shared_ptr<Session>& session,
                                    const Frame& frame);
  [[nodiscard]] Frame handle_query_metrics(
      const std::shared_ptr<Session>& session, const Frame& frame);
  [[nodiscard]] Frame handle_run_status(const std::shared_ptr<Session>& session,
                                        const Frame& frame);
  [[nodiscard]] Frame handle_cancel(const std::shared_ptr<Session>& session,
                                    const Frame& frame);
  [[nodiscard]] Frame handle_stats(const std::shared_ptr<Session>& session);
  [[nodiscard]] Frame handle_get_result(
      const std::shared_ptr<Session>& session, const Frame& frame);

  /// Queues a run for dispatch (RR across sessions) and wakes the
  /// dispatcher.
  void enqueue_ready(const std::shared_ptr<Session>& session,
                     const std::shared_ptr<RunState>& run);
  /// Cancels a run from the serving side (CANCEL frame or disconnect).
  void cancel_run(const std::shared_ptr<RunState>& run,
                  const std::string& reason);

  DaemonConfig config_;
  std::unique_ptr<harness::ThreadPool> pool_;

  // --- listeners / connections ---------------------------------------------
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe waking the accept poll
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  std::map<int, std::thread> connections_;       // fd -> reader thread
  std::vector<std::thread> finished_conns_;      // joined in stop()
  bool accepting_ = false;                       // guarded by conn_mutex_

  // --- sessions / dispatch --------------------------------------------------
  mutable std::mutex dispatch_mutex_;
  std::condition_variable dispatch_cv_;
  /// Sessions in arrival order; the RR pointer walks this ring.
  std::vector<std::shared_ptr<Session>> ring_;
  std::size_t ring_next_ = 0;
  /// Per-session FIFO of runs ready for the pool (keyed by session id).
  std::map<std::uint64_t, std::deque<std::shared_ptr<RunState>>> ready_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;  // guarded by dispatch_mutex_
  std::thread dispatch_thread_;
  std::vector<std::future<void>> run_futures_;  // guarded by dispatch_mutex_

  std::atomic<std::uint64_t> next_session_id_{1};
  std::atomic<std::uint64_t> next_run_id_{1};

  /// Daemon-wide counters (separate from per-session sinks).
  obs::Sink global_stats_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace tempofair::serve
