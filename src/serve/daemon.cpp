#include "serve/daemon.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/fast_forward.h"
#include "core/instance.h"
#include "policies/registry.h"
#include "workload/source.h"

namespace tempofair::serve {

namespace {

[[nodiscard]] Frame make_reply(FrameType type, const WireWriter& body) {
  Frame frame;
  frame.type = type;
  frame.payload = body.bytes();
  return frame;
}

[[nodiscard]] Frame make_error(ErrorCode code, std::string message) {
  ErrorMsg msg;
  msg.code = code;
  msg.message = std::move(message);
  WireWriter w;
  encode(w, msg);
  return make_reply(FrameType::kError, w);
}

void throw_errno(const std::string& what) {
  throw std::runtime_error("tempofaird: " + what + ": " +
                           std::strerror(errno));
}

/// Resolves a wire-submitted trace path against the daemon's trace root
/// (relative paths are relative to the root) and refuses anything that
/// escapes it after symlink/dot-dot resolution, so tenants can only name
/// files the operator chose to serve.
[[nodiscard]] std::optional<std::string> resolve_trace_path(
    const std::string& root, const std::string& requested) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path canon_root = fs::weakly_canonical(fs::path(root), ec);
  if (ec) return std::nullopt;
  fs::path candidate(requested);
  if (candidate.is_relative()) candidate = canon_root / candidate;
  const fs::path canon = fs::weakly_canonical(candidate, ec);
  if (ec) return std::nullopt;
  auto mismatch =
      std::mismatch(canon_root.begin(), canon_root.end(), canon.begin(),
                    canon.end());
  if (mismatch.first != canon_root.end()) return std::nullopt;
  return canon.string();
}

[[nodiscard]] int listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("tempofaird: unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen(" + path + ")");
  }
  return fd;
}

[[nodiscard]] int listen_tcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind(tcp port " + std::to_string(port) + ")");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen(tcp)");
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  *bound_port = ntohs(actual.sin_port);
  return fd;
}

}  // namespace

Daemon::Daemon(DaemonConfig config) : config_(std::move(config)) {}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  if (started_) throw std::logic_error("tempofaird: start() called twice");
  if (config_.unix_socket_path.empty() && config_.tcp_port < 0) {
    throw std::runtime_error("tempofaird: no listener configured");
  }
  pool_ = std::make_unique<harness::ThreadPool>(config_.workers);
  if (::pipe2(wake_pipe_, O_CLOEXEC) < 0) throw_errno("pipe2");
  if (!config_.unix_socket_path.empty()) {
    unix_fd_ = listen_unix(config_.unix_socket_path);
  }
  if (config_.tcp_port >= 0) {
    tcp_fd_ = listen_tcp(config_.tcp_port, &bound_tcp_port_);
  }
  {
    std::lock_guard lock(conn_mutex_);
    accepting_ = true;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
  started_ = true;
}

void Daemon::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;

  // Stop accepting and wake the poll; no new connections after this.
  {
    std::lock_guard lock(conn_mutex_);
    accepting_ = false;
  }
  const char wake = 'x';
  const ssize_t wrote = ::write(wake_pipe_[1], &wake, 1);
  (void)wrote;
  accept_thread_.join();

  // Kick every connection: a half-closed socket reads EOF at the next frame
  // boundary, so reader threads unwind through their normal cleanup path
  // (cancelling the session's runs).
  {
    std::lock_guard lock(conn_mutex_);
    for (const auto& [fd, thread] : connections_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  {
    std::unique_lock lock(conn_mutex_);
    conn_cv_.wait(lock, [this] { return connections_.empty(); });
  }
  for (std::thread& t : finished_conns_) t.join();
  finished_conns_.clear();

  // Drain the dispatcher and in-flight runs (all cancelled by now).
  {
    std::lock_guard lock(dispatch_mutex_);
    stopping_ = true;
  }
  dispatch_cv_.notify_all();
  dispatch_thread_.join();
  {
    std::unique_lock lock(dispatch_mutex_);
    dispatch_cv_.wait(lock, [this] { return in_flight_ == 0; });
    run_futures_.clear();
  }
  pool_.reset();

  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  if (!config_.unix_socket_path.empty()) {
    ::unlink(config_.unix_socket_path.c_str());
  }
}

std::map<std::string, std::uint64_t> Daemon::stats() const {
  return global_stats_.snapshot();
}

void Daemon::accept_loop() {
  while (true) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {wake_pipe_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[n++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = {tcp_fd_, POLLIN, 0};
    if (::poll(fds, n, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[0].revents & POLLIN) != 0) return;  // stop() woke us
    for (nfds_t slot = 1; slot < n; ++slot) {
      if ((fds[slot].revents & POLLIN) == 0) continue;
      const int fd = ::accept4(fds[slot].fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) continue;
      std::lock_guard lock(conn_mutex_);
      if (!accepting_) {
        ::close(fd);
        continue;
      }
      connections_.emplace(fd, std::thread([this, fd] { serve_connection(fd); }));
      global_stats_.add("connections.accepted", 1);
    }
  }
}

void Daemon::serve_connection(int fd) {
  std::shared_ptr<Session> session;
  try {
    // Handshake: the first frame must be HELLO with a version we speak.
    if (std::optional<Frame> first = read_frame(fd); first.has_value()) {
      if (first->type != FrameType::kHello) {
        write_frame(fd, make_error(ErrorCode::kNoHello,
                                   "first frame must be HELLO"));
      } else {
        WireReader reader(first->payload);
        const HelloMsg hello = decode_hello(reader);
        if (hello.version != kProtocolVersion) {
          write_frame(fd, make_error(
                              ErrorCode::kBadFrame,
                              "unsupported protocol version " +
                                  std::to_string(hello.version)));
        } else {
          session = std::make_shared<Session>(
              next_session_id_.fetch_add(1), hello.tenant);
          {
            std::lock_guard lock(dispatch_mutex_);
            ring_.push_back(session);
          }
          global_stats_.add("sessions.opened", 1);
          HelloOkMsg ok;
          ok.server = config_.server_name;
          ok.session_id = session->id;
          WireWriter w;
          encode(w, ok);
          write_frame(fd, FrameType::kHelloOk, w);
        }
      }
    }
    if (session != nullptr) {
      while (std::optional<Frame> frame = read_frame(fd)) {
        obs::ScopedSink guard(&session->sink);
        Frame reply;
        try {
          reply = handle_frame(session, *frame);
        } catch (const WireError& e) {
          // Framing is intact (we consumed exactly the declared payload),
          // so a malformed payload is answerable without closing.
          reply = make_error(ErrorCode::kBadFrame, e.what());
        }
        write_frame(fd, reply);
        global_stats_.add("frames.served", 1);
      }
    }
  } catch (const WireError&) {
    // Peer vanished mid-frame or sent garbage at the frame layer; drop it.
  } catch (const std::exception&) {
  }

  if (session != nullptr) {
    // Cancel everything the tenant still owns; results are unreachable once
    // the connection is gone.
    std::vector<std::shared_ptr<RunState>> runs;
    {
      std::lock_guard lock(session->mutex);
      runs.reserve(session->runs.size());
      for (const auto& [id, run] : session->runs) runs.push_back(run);
    }
    for (const std::shared_ptr<RunState>& run : runs) {
      cancel_run(run, "tenant disconnected");
      bool enqueued = false;
      {
        std::lock_guard lock(session->mutex);
        enqueued = run->dispatched;
      }
      if (!enqueued) run->finish(RunPhase::kCancelled, "tenant disconnected");
    }
    {
      std::lock_guard lock(dispatch_mutex_);
      // Runs queued for dispatch but never popped would otherwise dangle.
      if (const auto it = ready_.find(session->id); it != ready_.end()) {
        for (const std::shared_ptr<RunState>& run : it->second) {
          run->finish(RunPhase::kCancelled, "tenant disconnected");
        }
        ready_.erase(it);
      }
      std::erase(ring_, session);
      if (!ring_.empty()) ring_next_ %= ring_.size();
      else ring_next_ = 0;
    }
    global_stats_.add("sessions.closed", 1);
  }

  {
    std::lock_guard lock(conn_mutex_);
    if (auto node = connections_.extract(fd); !node.empty()) {
      finished_conns_.push_back(std::move(node.mapped()));
    }
  }
  ::close(fd);
  conn_cv_.notify_all();
}

Frame Daemon::handle_frame(const std::shared_ptr<Session>& session,
                           const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      return make_error(ErrorCode::kBadFrame, "duplicate HELLO");
    case FrameType::kSubmitJobs:
      session->sink.add("frames.submit", 1);
      return handle_submit(session, frame);
    case FrameType::kQueryMetrics:
      session->sink.add("frames.query_metrics", 1);
      return handle_query_metrics(session, frame);
    case FrameType::kRunStatus:
      session->sink.add("frames.run_status", 1);
      return handle_run_status(session, frame);
    case FrameType::kCancel:
      session->sink.add("frames.cancel", 1);
      return handle_cancel(session, frame);
    case FrameType::kStats:
      session->sink.add("frames.stats", 1);
      return handle_stats(session);
    case FrameType::kGetResult:
      session->sink.add("frames.get_result", 1);
      return handle_get_result(session, frame);
    default:
      return make_error(ErrorCode::kBadFrame,
                        "unexpected frame type " +
                            std::to_string(static_cast<int>(frame.type)));
  }
}

Frame Daemon::handle_submit(const std::shared_ptr<Session>& session,
                            const Frame& frame) {
  WireReader reader(frame.payload);
  const SubmitJobsMsg msg = decode_submit_jobs(reader);

  std::lock_guard lock(session->mutex);
  std::shared_ptr<RunState> run;
  bool created = false;
  if (msg.first) {
    if (session->open.contains(msg.tag)) {
      return make_error(ErrorCode::kBadRequest,
                        "tag " + std::to_string(msg.tag) +
                            " already has an open submission");
    }
    if (session->active_runs >= config_.max_active_runs) {
      session->sink.add("throttled.runs", 1);
      return make_error(ErrorCode::kThrottled,
                        "session already has " +
                            std::to_string(session->active_runs) +
                            " active runs (cap " +
                            std::to_string(config_.max_active_runs) +
                            "); drain or cancel before submitting more");
    }
    if (msg.request.machines < 1 || !(msg.request.speed > 0.0) ||
        !std::isfinite(msg.request.speed) || msg.request.max_steps == 0) {
      return make_error(ErrorCode::kBadRequest, "invalid RunRequest: " +
                                                    msg.request.policy);
    }
    bool fast_capable = false;
    try {
      fast_capable = make_policy(msg.request.policy)->fast_forward().kind !=
                     FastForwardKind::kNone;
    } catch (const std::invalid_argument& e) {
      return make_error(ErrorCode::kBadRequest, e.what());
    }
    if (!msg.request.workload.empty()) {
      // v3 spec-named run: the workload travels as a spec string, not as
      // job chunks.  Resolve it now so a typo answers BAD_REQUEST at
      // submit time, and learn n for progress reporting.
      if (!msg.last || !msg.jobs.empty()) {
        return make_error(ErrorCode::kBadRequest,
                          "a spec-named run is a single chunk with no jobs "
                          "(the workload string replaces them)");
      }
      std::uint64_t total = 0;
      std::string resolved_workload;
      try {
        workload::WorkloadSpec spec =
            workload::WorkloadSpec::parse(msg.request.workload);
        if (spec.kind == "trace") {
          // Trace specs name daemon-host files; only resolve them inside
          // the operator's trace root (and never when no root is
          // configured), so wire submissions cannot probe the filesystem
          // through echoed open/parse errors.
          if (config_.trace_root.empty()) {
            return make_error(ErrorCode::kBadRequest,
                              "workload spec: trace workloads are disabled "
                              "on this daemon (start it with a trace root "
                              "to enable them)");
          }
          const std::string* path = spec.find("path");
          const std::optional<std::string> resolved = resolve_trace_path(
              config_.trace_root, path != nullptr ? *path : std::string());
          if (!resolved) {
            return make_error(ErrorCode::kBadRequest,
                              "workload spec: trace path escapes the "
                              "daemon's trace root");
          }
          spec.set("path", *resolved);
        }
        total = workload::make_source(spec)->n();
        resolved_workload = spec.to_string();
      } catch (const workload::SpecError& e) {
        return make_error(ErrorCode::kBadRequest,
                          "workload spec: " + std::string(e.what()));
      }
      run = std::make_shared<RunState>();
      run->id = next_run_id_.fetch_add(1);
      run->session_id = session->id;
      run->tag = msg.tag;
      run->request = msg.request;
      run->request.workload = resolved_workload;
      run->request.live = &run->live;
      run->request.cancel = &run->cancel;
      run->synthesize = true;
      run->declared_total = total;
      run->accepted = total;
      run->all_chunks_in = true;
      run->dispatched = true;
      run->live.set_expected(static_cast<std::size_t>(total));
      session->runs.emplace(run->id, run);
      ++session->active_runs;
      session->sink.add("runs.accepted", 1);
      session->sink.add("runs.spec_named", 1);
      enqueue_ready(session, run);
      SubmitOkMsg ok;
      ok.tag = msg.tag;
      ok.run_id = run->id;
      ok.accepted_jobs = total;
      WireWriter w;
      encode(w, ok);
      return make_reply(FrameType::kSubmitOk, w);
    }
    run = std::make_shared<RunState>();
    run->id = next_run_id_.fetch_add(1);
    run->session_id = session->id;
    run->tag = msg.tag;
    run->request = msg.request;
    run->request.live = &run->live;
    run->request.cancel = &run->cancel;
    run->declared_total = msg.total_jobs;
    run->streaming = msg.stream && fast_capable && msg.request.use_fast_path &&
                     !msg.request.hide_sizes;
    if (run->streaming) {
      run->stream = std::make_unique<QueueJobStream>(
          static_cast<std::size_t>(msg.total_jobs));
    }
    run->live.set_expected(static_cast<std::size_t>(msg.total_jobs));
    created = true;
  } else {
    const auto it = session->open.find(msg.tag);
    if (it == session->open.end()) {
      return make_error(ErrorCode::kBadRequest,
                        "tag " + std::to_string(msg.tag) +
                            " has no open submission");
    }
    run = it->second;
  }

  // Backpressure on buffered jobs: reject the whole chunk; the client
  // resends it after the queues drain (ids are only assigned on accept, so
  // a resend is exact).
  if (session->buffered_jobs_locked() + msg.jobs.size() >
      config_.max_buffered_jobs) {
    session->sink.add("throttled.jobs", 1);
    return make_error(ErrorCode::kThrottled,
                      "session buffer full (cap " +
                          std::to_string(config_.max_buffered_jobs) +
                          " jobs); retry this chunk after draining");
  }

  // Validate the chunk before accepting any of it.
  auto reject = [&](const std::string& why) {
    if (!created) {
      // The run is already live; a bad chunk poisons it.
      session->open.erase(msg.tag);
      run->cancel.store(true);
      if (run->stream != nullptr) run->stream->abort(why);
      if (!run->dispatched) {
        run->finish(RunPhase::kFailed, why);
        if (session->active_runs > 0) --session->active_runs;
      }
    }
    return make_error(ErrorCode::kBadRequest, why);
  };
  if (run->all_chunks_in) {
    return make_error(ErrorCode::kBadRequest,
                      "run already received its last chunk");
  }
  if (run->accepted + msg.jobs.size() > run->declared_total) {
    return reject("more jobs than the declared total " +
                  std::to_string(run->declared_total));
  }
  double last_release = run->last_release;
  for (const Job& job : msg.jobs) {
    if (!std::isfinite(job.release) || job.release < 0.0 ||
        !std::isfinite(job.size) || !(job.size > 0.0) ||
        !std::isfinite(job.weight) || !(job.weight > 0.0)) {
      return reject("invalid job (release >= 0, size > 0, weight > 0, all "
                    "finite)");
    }
    if (job.release < last_release) {
      return reject("jobs must arrive in nondecreasing release order (got " +
                    std::to_string(job.release) + " after " +
                    std::to_string(last_release) + ")");
    }
    last_release = job.release;
  }
  if (msg.last && run->accepted + msg.jobs.size() != run->declared_total) {
    return reject("last chunk closes the run at " +
                  std::to_string(run->accepted + msg.jobs.size()) +
                  " jobs, but " + std::to_string(run->declared_total) +
                  " were declared");
  }

  // Accept: assign server-side ids and hand the jobs to the run.
  std::vector<Job> chunk(msg.jobs);
  for (Job& job : chunk) {
    job.id = static_cast<JobId>(run->accepted++);
  }
  run->last_release = last_release;
  if (run->stream != nullptr) {
    run->stream->push(chunk);
  } else {
    run->jobs.insert(run->jobs.end(), chunk.begin(), chunk.end());
  }
  session->sink.add("jobs.accepted", chunk.size());

  if (created) {
    session->runs.emplace(run->id, run);
    session->open.emplace(msg.tag, run);
    ++session->active_runs;
    session->sink.add("runs.accepted", 1);
  }
  if (msg.last) {
    run->all_chunks_in = true;
    session->open.erase(msg.tag);
  }
  // Streaming runs dispatch immediately (the engine consumes chunks as they
  // arrive); materialized runs wait for the full instance.
  const bool ready = run->stream != nullptr ? created : msg.last;
  if (ready && !run->dispatched) {
    run->dispatched = true;
    enqueue_ready(session, run);
  }

  SubmitOkMsg ok;
  ok.tag = msg.tag;
  ok.run_id = run->id;
  ok.accepted_jobs = run->accepted;
  WireWriter w;
  encode(w, ok);
  return make_reply(FrameType::kSubmitOk, w);
}

Frame Daemon::handle_query_metrics(const std::shared_ptr<Session>& session,
                                   const Frame& frame) {
  WireReader reader(frame.payload);
  const QueryMetricsMsg msg = decode_query_metrics(reader);
  const std::shared_ptr<RunState> run = session->find_run(msg.run_id);
  if (run == nullptr) {
    return make_error(ErrorCode::kUnknownRun,
                      "no run " + std::to_string(msg.run_id));
  }
  MetricsMsg reply;
  reply.run_id = run->id;
  {
    std::lock_guard lock(run->mutex);
    reply.phase = run->phase;
  }
  reply.completed = run->live.completed();
  reply.total = run->declared_total;
  reply.stats = run->live.snapshot();
  try {
    reply.k_values.reserve(msg.k_norms.size());
    for (const double k : msg.k_norms) reply.k_values.push_back(run->live.lk(k));
    reply.pct_values.reserve(msg.percentiles.size());
    for (const double p : msg.percentiles) {
      reply.pct_values.push_back(run->live.percentile(p));
    }
  } catch (const std::exception& e) {
    return make_error(ErrorCode::kBadRequest, e.what());
  }
  WireWriter w;
  encode(w, reply);
  return make_reply(FrameType::kMetrics, w);
}

Frame Daemon::handle_run_status(const std::shared_ptr<Session>& session,
                                const Frame& frame) {
  WireReader reader(frame.payload);
  const RunStatusMsg msg = decode_run_status(reader);
  const std::shared_ptr<RunState> run = session->find_run(msg.run_id);
  if (run == nullptr) {
    return make_error(ErrorCode::kUnknownRun,
                      "no run " + std::to_string(msg.run_id));
  }
  WireWriter w;
  encode(w, run->status());
  return make_reply(FrameType::kStatus, w);
}

Frame Daemon::handle_cancel(const std::shared_ptr<Session>& session,
                            const Frame& frame) {
  WireReader reader(frame.payload);
  const CancelMsg msg = decode_cancel(reader);
  const std::shared_ptr<RunState> run = session->find_run(msg.run_id);
  if (run == nullptr) {
    return make_error(ErrorCode::kUnknownRun,
                      "no run " + std::to_string(msg.run_id));
  }
  cancel_run(run, "cancelled by client");
  bool enqueued = false;
  {
    std::lock_guard lock(session->mutex);
    enqueued = run->dispatched;
    session->open.erase(run->tag);
  }
  if (!enqueued) {
    run->finish(RunPhase::kCancelled, "cancelled by client");
    std::lock_guard lock(session->mutex);
    if (session->active_runs > 0) --session->active_runs;
  }
  session->sink.add("runs.cancel_requested", 1);
  CancelOkMsg ok;
  ok.run_id = run->id;
  {
    std::lock_guard lock(run->mutex);
    ok.phase = run->phase;
  }
  WireWriter w;
  encode(w, ok);
  return make_reply(FrameType::kCancelOk, w);
}

Frame Daemon::handle_stats(const std::shared_ptr<Session>& session) {
  StatsReplyMsg reply;
  for (auto& [name, value] : session->sink.snapshot()) {
    reply.counters.emplace_back(name, value);
  }
  WireWriter w;
  encode(w, reply);
  return make_reply(FrameType::kStatsReply, w);
}

Frame Daemon::handle_get_result(const std::shared_ptr<Session>& session,
                                const Frame& frame) {
  WireReader reader(frame.payload);
  const GetResultMsg msg = decode_get_result(reader);
  const std::shared_ptr<RunState> run = session->find_run(msg.run_id);
  if (run == nullptr) {
    return make_error(ErrorCode::kUnknownRun,
                      "no run " + std::to_string(msg.run_id));
  }
  ResultMsg reply;
  {
    std::lock_guard lock(run->mutex);
    if (run->phase != RunPhase::kDone) {
      std::string detail = "run is " + std::string(to_string(run->phase));
      if (!run->error.empty()) detail += ": " + run->error;
      return make_error(ErrorCode::kNotReady, detail);
    }
    reply.run_id = run->id;
    reply.policy = run->policy_name;
    reply.wall_seconds = run->wall_seconds;
    reply.stats = run->stats;
    reply.completions = run->completions;
    reply.invariants = run->invariants;
  }
  WireWriter w;
  encode(w, reply);
  return make_reply(FrameType::kResult, w);
}

void Daemon::enqueue_ready(const std::shared_ptr<Session>& session,
                           const std::shared_ptr<RunState>& run) {
  {
    std::lock_guard lock(dispatch_mutex_);
    ready_[session->id].push_back(run);
  }
  dispatch_cv_.notify_one();
}

void Daemon::cancel_run(const std::shared_ptr<RunState>& run,
                        const std::string& reason) {
  run->cancel.store(true);
  if (run->stream != nullptr) run->stream->abort(reason);
}

void Daemon::dispatch_loop() {
  std::unique_lock lock(dispatch_mutex_);
  while (!stopping_) {
    std::shared_ptr<Session> session;
    std::shared_ptr<RunState> run;
    if (in_flight_ < pool_->size() && !ring_.empty()) {
      for (std::size_t i = 0; i < ring_.size(); ++i) {
        const std::size_t idx = (ring_next_ + i) % ring_.size();
        const auto it = ready_.find(ring_[idx]->id);
        if (it == ready_.end() || it->second.empty()) continue;
        session = ring_[idx];
        run = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty()) ready_.erase(it);
        ring_next_ = (idx + 1) % ring_.size();
        break;
      }
    }
    if (run == nullptr) {
      dispatch_cv_.wait(lock);
      continue;
    }
    ++in_flight_;
    lock.unlock();
    {
      // Install the tenant's sink so the pool task -- and everything the
      // engine records inside it -- attributes to this session.
      obs::ScopedSink guard(&session->sink);
      auto future =
          pool_->submit([this, session, run] { execute_run(session, run); });
      lock.lock();
      run_futures_.push_back(std::move(future));
      std::erase_if(run_futures_, [](std::future<void>& f) {
        return f.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
      });
    }
  }
}

void Daemon::execute_run(const std::shared_ptr<Session>& session,
                         const std::shared_ptr<RunState>& run) {
  if (run->cancel.load()) {
    run->finish(RunPhase::kCancelled, "cancelled before start");
  } else {
    {
      std::lock_guard lock(run->mutex);
      if (run->phase == RunPhase::kQueued) run->phase = RunPhase::kRunning;
    }
    try {
      RunResult result;
      if (run->synthesize) {
        result = workload::run_spec(run->request);
      } else if (run->stream != nullptr) {
        result = tempofair::run(*run->stream, run->request);
      } else {
        std::vector<Job> jobs;
        {
          std::lock_guard lock(session->mutex);
          jobs = std::move(run->jobs);
          run->jobs.clear();
        }
        const Instance instance = Instance::from_jobs(std::move(jobs));
        result = tempofair::run(instance, run->request);
      }
      {
        std::lock_guard lock(run->mutex);
        run->policy_name = result.policy;
        run->wall_seconds = result.wall_seconds;
        run->stats = result.stats;
        const std::span<const Time> completions =
            result.schedule.completions();
        run->completions.assign(completions.begin(), completions.end());
        run->invariants = std::move(result.invariants);
      }
      if (!run->invariants.ok()) {
        session->sink.add("runs.invariant_violations",
                          run->invariants.violations);
        global_stats_.add("runs.invariant_violations",
                          run->invariants.violations);
      }
      run->finish(RunPhase::kDone);
      session->sink.add("runs.done", 1);
      global_stats_.add("runs.done", 1);
    } catch (const RunCancelled& e) {
      run->finish(RunPhase::kCancelled, e.what());
      session->sink.add("runs.cancelled", 1);
      global_stats_.add("runs.cancelled", 1);
    } catch (const std::exception& e) {
      run->finish(RunPhase::kFailed, e.what());
      session->sink.add("runs.failed", 1);
      global_stats_.add("runs.failed", 1);
    }
  }
  {
    std::lock_guard lock(session->mutex);
    if (session->active_runs > 0) --session->active_runs;
  }
  {
    std::lock_guard lock(dispatch_mutex_);
    --in_flight_;
  }
  dispatch_cv_.notify_all();
}

}  // namespace tempofair::serve
