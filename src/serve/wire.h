// Wire layer for the tempofaird protocol: little-endian byte codecs and
// length-prefixed frames over a connected socket.
//
// A frame is
//
//   [u32 payload_len][u8 type][u8 version][u16 reserved][payload bytes]
//
// all little-endian, payload_len counting only the payload.  `version` is
// the protocol major version (kProtocolVersion); a peer receiving a frame
// with a version it does not speak must answer ERROR and close.  The
// reserved u16 must be zero (room for flags without a version bump).
//
// Everything here is transport-only: frame grammar and integer/float/string
// encodings.  Message semantics (what a SUBMIT_JOBS payload means) live in
// serve/protocol.h.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tempofair::serve {

/// Malformed bytes on the wire: truncated frame, oversized payload, string
/// or message decoding past the end of the buffer.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Protocol major version spoken by this build (frame header + HELLO).
/// v2: RunRequest carries the invariant mode + sample period, RESULT
/// carries the run's InvariantStats.
/// v3: RunRequest carries the workload spec string; a first SUBMIT_JOBS
/// chunk may name its workload instead of shipping jobs, and the daemon
/// synthesizes the stream server-side.
inline constexpr std::uint8_t kProtocolVersion = 3;

/// Hard upper bound on a payload; a length prefix above this is treated as
/// garbage (protects the daemon from one hostile frame allocating gigabytes).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 26;  // 64 MiB

/// Every frame type in protocol v1.  Requests are < 128, responses >= 128.
enum class FrameType : std::uint8_t {
  kHello = 1,
  kSubmitJobs = 2,
  kQueryMetrics = 3,
  kRunStatus = 4,
  kCancel = 5,
  kStats = 6,
  kGetResult = 7,

  kHelloOk = 128,
  kSubmitOk = 129,
  kMetrics = 130,
  kStatus = 131,
  kCancelOk = 132,
  kStatsReply = 133,
  kResult = 134,
  kError = 255,
};

/// One decoded frame: its type plus the raw payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

/// Append-only little-endian encoder for one payload.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  /// u32 byte length + raw bytes (no terminator).
  void str(std::string_view v);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over one payload.  Every read
/// throws WireError past the end; decoders call expect_exhausted() last so
/// trailing garbage is an error, not silently ignored.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == data_.size();
  }
  /// Throws WireError naming `what` if bytes remain unread.
  void expect_exhausted(const char* what) const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Reads one frame from a connected socket (blocking).  Returns nullopt on
/// clean EOF at a frame boundary; throws WireError on a truncated frame, a
/// payload above kMaxFramePayload, an unsupported version, or a nonzero
/// reserved field.
[[nodiscard]] std::optional<Frame> read_frame(int fd);

/// Writes one frame (blocking, handles short writes; SIGPIPE suppressed).
/// Throws WireError if the peer is gone.
void write_frame(int fd, FrameType type, const WireWriter& payload);

/// As above for an already-assembled frame (e.g. a handler's reply).
void write_frame(int fd, const Frame& frame);

}  // namespace tempofair::serve
