#include "serve/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

namespace tempofair::serve {

namespace {

// The codec is explicitly little-endian byte-by-byte, so it produces the
// same bytes on any host endianness.

void put_le(std::vector<std::uint8_t>& buf, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    buf.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

[[nodiscard]] std::uint64_t get_le(std::span<const std::uint8_t> data,
                                   std::size_t pos, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

/// Blocking full read; returns false on clean EOF before the first byte,
/// throws WireError on EOF mid-buffer or a socket error.
bool read_exact(int fd, std::uint8_t* out, std::size_t n, bool eof_ok) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw WireError("wire: connection closed mid-frame (" +
                      std::to_string(got) + "/" + std::to_string(n) +
                      " bytes)");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("wire: recv failed: ") +
                      std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_exact(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("wire: send failed: ") +
                      std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

}  // namespace

void WireWriter::u16(std::uint16_t v) { put_le(buf_, v, 2); }
void WireWriter::u32(std::uint32_t v) { put_le(buf_, v, 4); }
void WireWriter::u64(std::uint64_t v) { put_le(buf_, v, 8); }
void WireWriter::f64(double v) { put_le(buf_, std::bit_cast<std::uint64_t>(v), 8); }

void WireWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void WireReader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw WireError("wire: decode past end of payload (" +
                    std::to_string(pos_) + "+" + std::to_string(n) + " of " +
                    std::to_string(data_.size()) + " bytes)");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  const auto v = static_cast<std::uint16_t>(get_le(data_, pos_, 2));
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  const auto v = static_cast<std::uint32_t>(get_le(data_, pos_, 4));
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  const std::uint64_t v = get_le(data_, pos_, 8);
  pos_ += 8;
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::str() {
  const std::uint32_t len = u32();
  if (len > kMaxFramePayload) {
    throw WireError("wire: string length " + std::to_string(len) +
                    " exceeds frame limit");
  }
  need(len);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

void WireReader::expect_exhausted(const char* what) const {
  if (!exhausted()) {
    throw WireError(std::string("wire: trailing bytes after ") + what + " (" +
                    std::to_string(data_.size() - pos_) + " unread)");
  }
}

std::optional<Frame> read_frame(int fd) {
  std::uint8_t header[8];
  if (!read_exact(fd, header, sizeof(header), /*eof_ok=*/true)) {
    return std::nullopt;
  }
  const auto len = static_cast<std::uint32_t>(get_le(header, 0, 4));
  const std::uint8_t type = header[4];
  const std::uint8_t version = header[5];
  const auto reserved = static_cast<std::uint16_t>(get_le(header, 6, 2));
  if (len > kMaxFramePayload) {
    throw WireError("wire: frame payload " + std::to_string(len) +
                    " exceeds limit " + std::to_string(kMaxFramePayload));
  }
  if (version != kProtocolVersion) {
    throw WireError("wire: unsupported protocol version " +
                    std::to_string(version) + " (this build speaks " +
                    std::to_string(kProtocolVersion) + ")");
  }
  if (reserved != 0) {
    throw WireError("wire: nonzero reserved frame field");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(len);
  if (len > 0) {
    read_exact(fd, frame.payload.data(), len, /*eof_ok=*/false);
  }
  return frame;
}

namespace {

void write_frame_bytes(int fd, FrameType type,
                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> wire;
  wire.reserve(8 + payload.size());
  put_le(wire, static_cast<std::uint32_t>(payload.size()), 4);
  wire.push_back(static_cast<std::uint8_t>(type));
  wire.push_back(kProtocolVersion);
  put_le(wire, 0, 2);
  wire.insert(wire.end(), payload.begin(), payload.end());
  write_exact(fd, wire.data(), wire.size());
}

}  // namespace

void write_frame(int fd, FrameType type, const WireWriter& payload) {
  write_frame_bytes(fd, type, payload.bytes());
}

void write_frame(int fd, const Frame& frame) {
  write_frame_bytes(fd, frame.type, frame.payload);
}

}  // namespace tempofair::serve
