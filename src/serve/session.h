// Per-tenant serving state: the job-stream queue a connection feeds, the
// table of runs a tenant owns, and the session-scoped observability sink.
//
// Ownership/threading model (three thread roles touch this state):
//   * the connection's reader thread decodes frames and mutates the session
//     under Session::mutex (submitting chunks, querying, cancelling);
//   * the daemon's dispatch thread moves queued runs into the worker pool,
//     round-robin across sessions;
//   * a pool worker executes one run, publishing progress through the run's
//     LiveMetrics (its own lock) and the terminal phase under RunState::mutex.
//
// A RunState is shared (shared_ptr) between the session table and the worker
// executing it, so a tenant disconnecting mid-run never yanks state out from
// under the engine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/job.h"
#include "core/job_stream.h"
#include "core/metrics.h"
#include "obs/obs.h"
#include "serve/protocol.h"

namespace tempofair::serve {

/// A JobStream fed incrementally by SUBMIT_JOBS chunks from the connection's
/// reader thread while a pool worker consumes it inside the engine.
///
/// next() blocks until a job is buffered or the stream is aborted (tenant
/// cancelled, disconnected, or the daemon is shutting down); an aborted
/// stream throws RunCancelled out of the engine, which unwinds the run
/// cleanly.  The producer side reports buffered() so the daemon can expose
/// queue depth and enforce backpressure.
class QueueJobStream final : public JobStream {
 public:
  explicit QueueJobStream(std::size_t total) : total_(total) {}

  // --- JobStream (consumer side, engine thread) ----------------------------
  [[nodiscard]] std::size_t n() const noexcept override { return total_; }
  [[nodiscard]] Job next() override;

  // --- producer side (reader thread) ---------------------------------------
  /// Appends a chunk (ids already assigned) and wakes the consumer.
  void push(std::span<const Job> jobs);
  /// Wakes the consumer with RunCancelled(`reason`); idempotent.
  void abort(std::string reason);

  /// Jobs pushed but not yet consumed by the engine.
  [[nodiscard]] std::size_t buffered() const;

 private:
  const std::size_t total_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> buffer_;
  bool aborted_ = false;
  std::string abort_reason_;
};

/// One submitted run, from first chunk to terminal phase.
struct RunState {
  std::uint64_t id = 0;
  std::uint64_t session_id = 0;
  std::uint64_t tag = 0;
  RunRequest request;  // live/cancel hooks point into this struct

  /// Streaming runs dispatch on the first chunk and consume later chunks
  /// through `stream`; materialized runs buffer into `jobs` and dispatch
  /// once the last chunk lands.
  bool streaming = false;
  /// v3 spec-named run: no jobs on the wire; the worker synthesizes the
  /// stream from request.workload via workload::run_spec.
  bool synthesize = false;
  std::uint64_t declared_total = 0;
  std::uint64_t accepted = 0;
  double last_release = 0.0;  ///< for rejecting out-of-order chunks
  bool all_chunks_in = false;
  bool dispatched = false;  ///< handed to the dispatch queue already

  std::vector<Job> jobs;                     // materialize path
  std::unique_ptr<QueueJobStream> stream;    // streaming path

  LiveMetrics live;
  std::atomic<bool> cancel{false};

  /// Guards phase/error/result below (LiveMetrics has its own lock).
  mutable std::mutex mutex;
  std::condition_variable done_cv;
  RunPhase phase = RunPhase::kQueued;
  std::string error;
  std::string policy_name;
  double wall_seconds = 0.0;
  FlowStats stats;
  std::vector<double> completions;  ///< by job id, bitwise engine output
  InvariantStats invariants;        ///< the run's invariant-checker stats

  /// Publishes a terminal phase and wakes waiters.  No-op if the run is
  /// already terminal (e.g. a cancel raced a failure).
  void finish(RunPhase terminal, std::string error_text = {});

  [[nodiscard]] StatusMsg status() const;
  /// Jobs currently held in this run's buffers (backpressure accounting).
  [[nodiscard]] std::size_t buffered_jobs() const;
};

/// One tenant connection's serving state.
struct Session {
  Session(std::uint64_t id_in, std::string tenant_in)
      : id(id_in), tenant(std::move(tenant_in)) {}

  const std::uint64_t id;
  const std::string tenant;

  /// Session-scoped counters; installed (ScopedSink) around frame handling
  /// and captured by pool tasks, so engine work attributes to the tenant.
  obs::Sink sink;

  /// Guards the maps below; never held while running the engine.
  std::mutex mutex;
  std::map<std::uint64_t, std::shared_ptr<RunState>> runs;     // by run id
  std::map<std::uint64_t, std::shared_ptr<RunState>> open;     // by tag
  /// Runs accepted but not yet terminal (backpressure: queued + running).
  std::size_t active_runs = 0;

  /// Sum of buffered jobs across this session's runs.  Caller must hold
  /// `mutex` (the submit handler calls this while mutating the run table).
  [[nodiscard]] std::size_t buffered_jobs_locked() const;
  [[nodiscard]] std::shared_ptr<RunState> find_run(std::uint64_t run_id);
};

}  // namespace tempofair::serve
