#include "relsim/relsim.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace tempofair::relsim {

namespace {

[[noreturn]] void rel_fail(const std::string& msg) {
  throw std::runtime_error("relsim::simulate_related: " + msg);
}

/// Indices of ctx.alive sorted by `less`, truncated to the machine count.
template <typename Less>
std::vector<std::size_t> top_by(const RelContext& ctx, Less&& less) {
  std::vector<std::size_t> idx(ctx.alive.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  const std::size_t take = std::min(idx.size(), ctx.speeds.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(take),
                    idx.end(), less);
  idx.resize(take);
  return idx;
}

}  // namespace

RelDecision RelatedRoundRobin::allocate(const RelContext& ctx) {
  const std::size_t n = ctx.alive.size();
  // Equal rate r is feasible iff q*r <= S_q for every q <= n, where S_q is
  // the sum of the min(q, m) fastest speeds.  Prefix averages of a
  // descending sequence (padded with zero speeds) are non-increasing, so the
  // binding constraint is q = n.
  double top_sum = 0.0;
  for (std::size_t i = 0; i < std::min(n, ctx.speeds.size()); ++i) {
    top_sum += ctx.speeds[i];
  }
  RelDecision d;
  d.rates.assign(n, top_sum / static_cast<double>(n));
  return d;
}

RelDecision RelatedSrpt::allocate(const RelContext& ctx) {
  auto alive = ctx.alive;
  const auto idx = top_by(ctx, [alive](std::size_t a, std::size_t b) {
    if (alive[a].remaining != alive[b].remaining) {
      return alive[a].remaining < alive[b].remaining;
    }
    if (alive[a].release != alive[b].release) {
      return alive[a].release < alive[b].release;
    }
    return alive[a].id < alive[b].id;
  });
  RelDecision d;
  d.rates.assign(ctx.alive.size(), 0.0);
  for (std::size_t i = 0; i < idx.size(); ++i) d.rates[idx[i]] = ctx.speeds[i];
  return d;
}

RelDecision RelatedFcfs::allocate(const RelContext& ctx) {
  auto alive = ctx.alive;
  const auto idx = top_by(ctx, [alive](std::size_t a, std::size_t b) {
    if (alive[a].release != alive[b].release) {
      return alive[a].release < alive[b].release;
    }
    return alive[a].id < alive[b].id;
  });
  RelDecision d;
  d.rates.assign(ctx.alive.size(), 0.0);
  for (std::size_t i = 0; i < idx.size(); ++i) d.rates[idx[i]] = ctx.speeds[i];
  return d;
}

std::vector<double> RelSchedule::flows() const {
  std::vector<double> out(completion.size());
  for (std::size_t i = 0; i < completion.size(); ++i) {
    out[i] = completion[i] - release[i];
  }
  return out;
}

bool rates_feasible(std::span<const double> rates,
                    std::span<const double> sorted_speeds, double tol) {
  std::vector<double> sorted(rates.begin(), rates.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double rate_prefix = 0.0, speed_prefix = 0.0;
  for (std::size_t q = 0; q < sorted.size(); ++q) {
    rate_prefix += sorted[q];
    speed_prefix += q < sorted_speeds.size() ? sorted_speeds[q] : 0.0;
    if (rate_prefix > speed_prefix + tol) return false;
  }
  return true;
}

RelSchedule simulate_related(const Instance& instance, RelPolicy& policy,
                             const RelSimOptions& options) {
  if (options.speeds.empty()) {
    throw std::invalid_argument("simulate_related: no machines");
  }
  for (double s : options.speeds) {
    if (!(s > 0.0) || !std::isfinite(s)) {
      throw std::invalid_argument("simulate_related: speeds must be positive");
    }
  }
  if (!(options.augment > 0.0)) {
    throw std::invalid_argument("simulate_related: augment must be > 0");
  }

  std::vector<double> speeds = options.speeds;
  for (double& s : speeds) s *= options.augment;
  std::sort(speeds.begin(), speeds.end(), std::greater<>());
  const double tol = 1e-7 * std::max(1.0, speeds[0]);

  RelSchedule schedule;
  schedule.release.assign(instance.n(), 0.0);
  schedule.completion.assign(instance.n(), kInfiniteTime);
  for (const Job& j : instance.jobs()) schedule.release[j.id] = j.release;
  if (instance.empty()) return schedule;

  std::span<const JobId> order = instance.release_order();
  std::size_t next_arrival = 0;
  std::vector<RelAliveJob> alive;
  Time now = instance.job(order[0]).release;

  auto admit = [&](Time t) {
    while (next_arrival < order.size() &&
           instance.job(order[next_arrival]).release <= t + kAbsEps) {
      const Job& j = instance.job(order[next_arrival]);
      RelAliveJob a{j.id, j.release, j.size, 0.0};
      auto pos = std::lower_bound(alive.begin(), alive.end(), a,
                                  [](const RelAliveJob& x, const RelAliveJob& y) {
                                    return x.id < y.id;
                                  });
      alive.insert(pos, a);
      ++next_arrival;
    }
  };
  admit(now);

  std::size_t steps = 0;
  while (!alive.empty() || next_arrival < order.size()) {
    if (++steps > options.max_steps) rel_fail("exceeded max_steps");
    if (alive.empty()) {
      now = instance.job(order[next_arrival]).release;
      admit(now);
      continue;
    }

    RelContext ctx{now, speeds, alive};
    RelDecision d = policy.allocate(ctx);
    if (d.rates.size() != alive.size()) rel_fail("wrong rate count");
    for (double& r : d.rates) {
      r = clamp_nonneg(r, tol);
      if (r < 0.0 || !std::isfinite(r)) rel_fail("negative/non-finite rate");
    }
    if (!rates_feasible(d.rates, speeds, tol)) {
      rel_fail("rates violate the majorization feasibility condition");
    }
    if (!(d.max_duration > 0.0)) rel_fail("non-positive max_duration");

    Time dt = d.max_duration;
    if (next_arrival < order.size()) {
      dt = std::min(dt, instance.job(order[next_arrival]).release - now);
    }
    for (std::size_t i = 0; i < alive.size(); ++i) {
      if (d.rates[i] > 0.0) dt = std::min(dt, alive[i].remaining / d.rates[i]);
    }
    if (!std::isfinite(dt)) rel_fail("deadlock: zero rates, no pending events");
    dt = std::max(dt, 0.0);

    for (std::size_t i = 0; i < alive.size(); ++i) {
      const double delta = d.rates[i] * dt;
      alive[i].remaining -= delta;
      alive[i].attained += delta;
    }
    now += dt;

    for (std::size_t ri = alive.size(); ri-- > 0;) {
      const RelAliveJob& j = alive[ri];
      if (j.remaining <= kRelEps * (j.remaining + j.attained) + kAbsEps) {
        schedule.completion[j.id] = now;
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(ri));
      }
    }
    admit(now);
  }
  return schedule;
}

}  // namespace tempofair::relsim
