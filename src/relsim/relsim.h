// Related (uniformly heterogeneous) machines: machine i has speed s_i.
//
// The paper closes its related-work section pointing at heterogeneous
// machines ([19] SelfishMigrate, [20] l_k norms on unrelated machines, [27]
// "SRPT optimally utilizes faster machines").  This substrate extends the
// simulator in that direction: preemption and migration are free, and a
// policy picks instantaneous processing rates r_j >= 0 whose sorted vector
// is majorized by the sorted speed vector:
//
//     for every q:  sum of the q largest r_j  <=  s_1 + ... + s_q
//
// (the classical feasibility condition for fractional schedules on related
// machines; it is exactly what time-sharing the machines can realize).
//
// Policies:
//  * RelatedRoundRobin -- the natural RR: the largest equal rate r feasible
//    for all n alive jobs, r = (sum of the min(n,m) fastest speeds) / n.
//    With identical speeds this is exactly the paper's RR.
//  * RelatedSrpt -- least remaining work on the fastest machine, second
//    least on the second fastest, ... (cf. [27]).
//  * RelatedFcfs -- earliest arrival on the fastest machine.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/instance.h"

namespace tempofair::relsim {

struct RelAliveJob {
  JobId id = kInvalidJob;
  Time release = 0.0;
  Work remaining = 0.0;
  Work attained = 0.0;
};

struct RelContext {
  Time now = 0.0;
  /// Machine speeds, sorted descending (the engine sorts them once).
  std::span<const double> speeds;
  std::span<const RelAliveJob> alive;
};

struct RelDecision {
  std::vector<double> rates;
  Time max_duration = kInfiniteTime;
};

class RelPolicy {
 public:
  virtual ~RelPolicy() = default;
  RelPolicy() = default;
  RelPolicy(const RelPolicy&) = delete;
  RelPolicy& operator=(const RelPolicy&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual RelDecision allocate(const RelContext& ctx) = 0;
};

class RelatedRoundRobin final : public RelPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "rel-rr"; }
  [[nodiscard]] RelDecision allocate(const RelContext& ctx) override;
};

class RelatedSrpt final : public RelPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "rel-srpt"; }
  [[nodiscard]] RelDecision allocate(const RelContext& ctx) override;
};

class RelatedFcfs final : public RelPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "rel-fcfs"; }
  [[nodiscard]] RelDecision allocate(const RelContext& ctx) override;
};

struct RelSchedule {
  std::vector<Time> release;
  std::vector<Time> completion;

  [[nodiscard]] std::vector<double> flows() const;
};

struct RelSimOptions {
  /// Machine speeds (any order; must be positive).  Scaled by `augment` to
  /// express resource augmentation against a speed-1-per-machine OPT.
  std::vector<double> speeds{1.0};
  double augment = 1.0;
  std::size_t max_steps = 20'000'000;
};

/// Returns true if the sorted-descending rate vector is majorized by the
/// sorted-descending speed vector (the feasibility test; exposed for tests).
[[nodiscard]] bool rates_feasible(std::span<const double> rates,
                                  std::span<const double> sorted_speeds,
                                  double tol = 1e-7);

/// Simulates `policy` on related machines.
[[nodiscard]] RelSchedule simulate_related(const Instance& instance,
                                           RelPolicy& policy,
                                           const RelSimOptions& options);

}  // namespace tempofair::relsim
