// Randomized workload generators.
//
// The paper's model is adversarial; for the typical-case side of the
// experiment suite we generate stochastic streams: Poisson arrivals with a
// pluggable size distribution, calibrated to a target utilization
// rho = lambda * E[size] / m (rho < 1 keeps speed-1 schedulers stable).
#pragma once

#include <variant>

#include "core/instance.h"
#include "workload/rng.h"

namespace tempofair::workload {

// --- Size distributions -----------------------------------------------------

struct FixedSize {
  double value = 1.0;
};
struct UniformSize {
  double lo = 0.5;
  double hi = 1.5;
};
struct ExponentialSize {
  double mean = 1.0;
};
/// Heavy-tailed sizes; `cap` truncates the tail (0 = uncapped).
struct ParetoSize {
  double alpha = 1.8;
  double xmin = 0.5;
  double cap = 0.0;
};
/// With probability p_small a small job, else a large one.
struct BimodalSize {
  double p_small = 0.9;
  double small = 1.0;
  double large = 50.0;
};

using SizeDist =
    std::variant<FixedSize, UniformSize, ExponentialSize, ParetoSize, BimodalSize>;

/// Draws one size from the distribution.
[[nodiscard]] double draw_size(const SizeDist& dist, Rng& rng);
/// Expected size of the distribution (Pareto uses the capped mean when
/// capped; requires alpha > 1 when uncapped).
[[nodiscard]] double mean_size(const SizeDist& dist);
/// Short human-readable name, e.g. "pareto(1.8)".
[[nodiscard]] std::string dist_name(const SizeDist& dist);

// --- Streams ----------------------------------------------------------------
//
// The materializing generator functions below are DEPRECATED one-release
// shims: describe the workload with a WorkloadSpec and build it through
// workload::make_source() / make_instance() (workload/spec.h,
// workload/source.h) instead, which names the same workloads with one
// portable spec string.  The detail:: implementations remain the single
// source of truth -- the spec layer calls them, so a spec-built workload is
// bitwise-identical to the legacy call with the same Rng.

namespace detail {
[[nodiscard]] Instance poisson_stream(std::size_t n, double lambda,
                                      const SizeDist& dist, Rng& rng);
[[nodiscard]] Instance poisson_load(std::size_t n, int machines,
                                    double utilization, const SizeDist& dist,
                                    Rng& rng);
[[nodiscard]] Instance bursty_stream(std::size_t bursts, std::size_t per_burst,
                                     double gap, const SizeDist& dist,
                                     Rng& rng);
[[nodiscard]] Instance uniform_stream(std::size_t n, double gap, double size,
                                      Time start = 0.0);
}  // namespace detail

/// n jobs, Poisson arrivals with rate `lambda`, iid sizes from `dist`.
[[deprecated("build via WorkloadSpec + workload::make_instance() (workload/spec.h)")]]
[[nodiscard]] inline Instance poisson_stream(std::size_t n, double lambda,
                                             const SizeDist& dist, Rng& rng) {
  return detail::poisson_stream(n, lambda, dist, rng);
}

/// Poisson stream calibrated so that utilization lambda*E[size]/machines
/// equals `utilization` (must be in (0, 1.5]; > 1 deliberately overloads).
[[deprecated("build via WorkloadSpec::poisson() + workload::make_instance()")]]
[[nodiscard]] inline Instance poisson_load(std::size_t n, int machines,
                                           double utilization,
                                           const SizeDist& dist, Rng& rng) {
  return detail::poisson_load(n, machines, utilization, dist, rng);
}

/// `bursts` bursts of `per_burst` jobs each, bursts spaced `gap` apart,
/// iid sizes from `dist`.
[[deprecated("build via WorkloadSpec::bursty() + workload::make_instance()")]]
[[nodiscard]] inline Instance bursty_stream(std::size_t bursts,
                                            std::size_t per_burst, double gap,
                                            const SizeDist& dist, Rng& rng) {
  return detail::bursty_stream(bursts, per_burst, gap, dist, rng);
}

/// Deterministic stream: n jobs of size `size`, released every `gap`.
[[deprecated("build via WorkloadSpec::uniform() + workload::make_instance()")]]
[[nodiscard]] inline Instance uniform_stream(std::size_t n, double gap,
                                             double size, Time start = 0.0) {
  return detail::uniform_stream(n, gap, size, start);
}

// --- Weight assignment (for weighted-flow experiments) ----------------------

enum class WeightScheme {
  kUniform,          ///< all weights 1 (the paper's unweighted objective)
  kRandom,           ///< iid uniform in [1, 10]
  kInverseSize,      ///< w = 1 / p  (every job equally important per se)
  kProportionalSize  ///< w = p     (large jobs more important)
};

/// Returns a copy of `instance` with weights assigned by `scheme`.
[[nodiscard]] Instance with_weights(const Instance& instance,
                                    WeightScheme scheme, Rng& rng);

}  // namespace tempofair::workload
