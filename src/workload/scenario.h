// Scenario layer: compositions the plain engine run cannot express.
//
// A WorkloadSpec names *what* arrives; a scenario names the *conditions* it
// runs under.  Three compositions cover the regimes the Lk-norm experiments
// care about:
//
//  * CapacityTimeline -- time-varying machine counts / speeds (failures,
//    restarts, speed scaling).  run_capacity_timeline() replays the
//    instance segment by segment: at each phase boundary the unfinished
//    jobs carry over with their *remaining* work, re-released at the
//    boundary ("restart semantics": a job interrupted by a capacity change
//    resumes where it left off, and its flow time keeps accumulating from
//    its original release).  machines = 0 models a full outage.
//
//  * SloClass / slo_attainment() -- deadline/SLO mixes: classify each job,
//    ask what fraction of each class met flow <= deadline.
//
//  * ClosedLoopConfig / run_closed_loop() -- closed-loop clients: a fixed
//    population that thinks, submits one request, and blocks until it
//    completes (arrivals depend on completions, so the open-loop engine
//    cannot generate them).  Processor sharing or FCFS service; contrast
//    with an open poisson spec at the same offered load.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/instance.h"
#include "core/metrics.h"
#include "workload/generators.h"

namespace tempofair::workload {

// --- time-varying capacity ---------------------------------------------------

struct CapacityPhase {
  Time start = 0.0;    ///< absolute time the phase takes effect
  int machines = 1;    ///< 0 = outage (no service during the phase)
  double speed = 1.0;
};

struct CapacityTimeline {
  std::vector<CapacityPhase> phases;

  /// Throws std::invalid_argument unless phases are nonempty, start at
  /// time 0, strictly increase, and have machines >= 0 and finite
  /// speed > 0 (speed ignored for outage phases).
  void validate() const;
};

struct TimelineResult {
  /// Per original job id, absolute completion time.
  std::vector<Time> completion;
  /// Per original job id, flow measured from the ORIGINAL release.
  std::vector<Time> flow;
  FlowStats stats;        ///< flow_stats(flow)
  std::size_t segments = 0;  ///< phases actually simulated
  std::size_t carried = 0;   ///< job-segment carryovers (interruptions)
};

/// Replays `instance` under `request`'s policy while capacity follows
/// `timeline`.  request.machines/speed are ignored (the timeline supplies
/// them); request.workload is ignored (the instance is explicit).
[[nodiscard]] TimelineResult run_capacity_timeline(
    const Instance& instance, const RunRequest& request,
    const CapacityTimeline& timeline);

// --- deadline / SLO mixes ----------------------------------------------------

struct SloClass {
  std::string name;
  double deadline = 1.0;  ///< met when flow <= deadline
};

struct SloReport {
  struct PerClass {
    std::string name;
    double deadline = 0.0;
    std::size_t jobs = 0;
    std::size_t met = 0;
    double attainment = 0.0;  ///< met / jobs (1 when the class is empty)
    double mean_flow = 0.0;
    double max_flow = 0.0;
  };
  std::vector<PerClass> classes;
  double overall_attainment = 0.0;
};

/// Attainment of each class given per-job flows and class assignments
/// (class_of[j] indexes `classes`).  Throws std::invalid_argument on a
/// size mismatch or out-of-range class index.
[[nodiscard]] SloReport slo_attainment(std::span<const Time> flows,
                                       std::span<const SloClass> classes,
                                       std::span<const int> class_of);

/// Deterministic round-robin class assignment (job j -> j mod classes),
/// so an SLO mix is reproducible from a spec'd workload without extra state.
[[nodiscard]] std::vector<int> cycle_classes(std::size_t n,
                                             std::size_t num_classes);

// --- closed-loop clients -----------------------------------------------------

struct ClosedLoopConfig {
  std::size_t clients = 8;      ///< population size (multiprogramming level)
  std::size_t requests = 1000;  ///< total completions to simulate
  double think_mean = 1.0;      ///< exponential think time between requests
  SizeDist dist = ExponentialSize{1.0};
  std::uint64_t seed = 1;
  int machines = 1;
  double speed = 1.0;
  /// "ps" (egalitarian processor sharing, RR's fluid limit) or "fcfs".
  std::string discipline = "ps";
};

struct ClosedLoopResult {
  FlowStats stats;          ///< response-time statistics over all requests
  double throughput = 0.0;  ///< completed requests per unit time
  double utilization = 0.0; ///< busy capacity fraction
  Time makespan = 0.0;
};

/// Simulates the closed loop to `requests` completions.  Throws
/// std::invalid_argument on a bad config.
[[nodiscard]] ClosedLoopResult run_closed_loop(const ClosedLoopConfig& config);

}  // namespace tempofair::workload
