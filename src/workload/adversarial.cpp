#include "workload/adversarial.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tempofair::workload {

Instance batch_plus_stream(std::size_t batch, std::size_t stream, double gap,
                           double job_size) {
  if (!(gap > 0.0)) throw std::invalid_argument("batch_plus_stream: gap must be > 0");
  if (!(job_size > 0.0)) {
    throw std::invalid_argument("batch_plus_stream: job_size must be > 0");
  }
  std::vector<Job> jobs;
  jobs.reserve(batch + stream);
  JobId id = 0;
  for (std::size_t i = 0; i < batch; ++i) jobs.push_back(Job{id++, 0.0, job_size});
  for (std::size_t i = 0; i < stream; ++i) {
    jobs.push_back(Job{id++, static_cast<double>(i + 1) * gap, job_size});
  }
  return Instance::from_jobs(std::move(jobs));
}

Instance rr_l2_hard(std::size_t n) {
  if (n == 0) throw std::invalid_argument("rr_l2_hard: n must be >= 1");
  // gap = 1.05 leaves OPT 5% slack: it serves each stream job on arrival and
  // drains the batch with the leftover capacity, so batch flows are ~20n and
  // stream flows O(1).  RR splits the machine across the whole population:
  // with ~n jobs alive, each stream job ages ~n before completing.
  return batch_plus_stream(n, 4 * n, 1.05);
}

Instance srpt_starvation(std::size_t stream, double big, double gap) {
  if (!(big > 0.0)) throw std::invalid_argument("srpt_starvation: big must be > 0");
  if (!(gap > 0.0)) throw std::invalid_argument("srpt_starvation: gap must be > 0");
  std::vector<Job> jobs;
  jobs.reserve(stream + 1);
  JobId id = 0;
  jobs.push_back(Job{id++, 0.0, big});
  for (std::size_t i = 0; i < stream; ++i) {
    jobs.push_back(Job{id++, static_cast<double>(i) * gap, 1.0});
  }
  return Instance::from_jobs(std::move(jobs));
}

Instance overload_pulse(std::size_t pulses, std::size_t burst, int machines) {
  if (machines < 1) throw std::invalid_argument("overload_pulse: machines < 1");
  if (burst == 0) throw std::invalid_argument("overload_pulse: burst must be >= 1");
  // A burst of `burst` unit jobs drains in ceil(burst/m) time on m speed-1
  // machines; space pulses 2x that so the system alternates overloaded
  // (n_t >= m) and fully idle.
  const double drain =
      std::ceil(static_cast<double>(burst) / static_cast<double>(machines));
  const double spacing = 2.0 * std::max(drain, 1.0);
  std::vector<Job> jobs;
  jobs.reserve(pulses * burst);
  JobId id = 0;
  for (std::size_t p = 0; p < pulses; ++p) {
    const Time t = static_cast<double>(p) * spacing;
    for (std::size_t i = 0; i < burst; ++i) jobs.push_back(Job{id++, t, 1.0});
  }
  return Instance::from_jobs(std::move(jobs));
}

Instance geometric_levels(int levels, double spacing) {
  if (levels < 1) throw std::invalid_argument("geometric_levels: levels must be >= 1");
  if (levels > 24) throw std::invalid_argument("geometric_levels: levels > 24 (2^levels jobs)");
  if (!(spacing > 0.0)) {
    throw std::invalid_argument("geometric_levels: spacing must be > 0");
  }
  std::vector<Job> jobs;
  jobs.reserve((std::size_t{1} << levels) - 1);
  JobId id = 0;
  for (int l = 0; l < levels; ++l) {
    const Time t = static_cast<double>(l) * spacing;
    const std::size_t count = std::size_t{1} << l;
    const double size = std::pow(2.0, -l);
    for (std::size_t i = 0; i < count; ++i) jobs.push_back(Job{id++, t, size});
  }
  return Instance::from_jobs(std::move(jobs));
}

Instance staircase(std::size_t n) {
  if (n == 0) throw std::invalid_argument("staircase: n must be >= 1");
  std::vector<Job> jobs;
  jobs.reserve(n);
  double size = static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(Job{static_cast<JobId>(i), static_cast<double>(i),
                       std::max(size, 1.0)});
    size /= 2.0;
  }
  return Instance::from_jobs(std::move(jobs));
}

}  // namespace tempofair::workload
