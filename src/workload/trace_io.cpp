#include "workload/trace_io.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace tempofair::workload {

namespace {

constexpr char kMagic[8] = {'T', 'F', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::uint8_t kFlagWeights = 0x01;
constexpr std::uint8_t kFlagSorted = 0x02;

static_assert(std::endian::native == std::endian::little,
              "binary trace i/o assumes a little-endian host");

double parse_field(std::string_view s, std::size_t line_no, std::string_view what) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error("trace_io: line " + std::to_string(line_no) +
                             ": bad " + std::string(what) + " '" + std::string(s) + "'");
  }
  if (!std::isfinite(v)) {
    throw std::runtime_error("trace_io: line " + std::to_string(line_no) +
                             ": non-finite " + std::string(what) + " '" +
                             std::string(s) + "'");
  }
  return v;
}

/// Splits one CSV row and parses it as a job.  Shared by the materializing
/// and streaming readers so both reject the same malformations.
Job parse_row(std::string_view sv, std::size_t line_no) {
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (pos <= sv.size()) {
    const std::size_t comma = sv.find(',', pos);
    if (comma == std::string_view::npos) {
      fields.push_back(sv.substr(pos));
      break;
    }
    fields.push_back(sv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  if (fields.size() != 3 && fields.size() != 4) {
    throw std::runtime_error("trace_io: line " + std::to_string(line_no) +
                             ": expected 3 or 4 comma-separated fields");
  }
  const double id = parse_field(fields[0], line_no, "id");
  const double release = parse_field(fields[1], line_no, "release");
  const double size = parse_field(fields[2], line_no, "size");
  const double weight =
      fields.size() == 4 ? parse_field(fields[3], line_no, "weight") : 1.0;
  if (id < 0 || id != static_cast<double>(static_cast<JobId>(id))) {
    throw std::runtime_error("trace_io: line " + std::to_string(line_no) +
                             ": id is not a small nonnegative integer");
  }
  return Job{static_cast<JobId>(id), release, size, weight};
}

/// The streaming readers bypass Instance's constructor, so they validate
/// values themselves with the same rules.
void check_job_values(const Job& j, const std::string& where) {
  if (!(j.size > 0.0) || !std::isfinite(j.size)) {
    throw std::runtime_error("trace_io: " + where + ": job " +
                             std::to_string(j.id) +
                             " has non-positive or non-finite size");
  }
  if (!(j.release >= 0.0) || !std::isfinite(j.release)) {
    throw std::runtime_error("trace_io: " + where + ": job " +
                             std::to_string(j.id) +
                             " has negative or non-finite release");
  }
  if (!(j.weight > 0.0) || !std::isfinite(j.weight)) {
    throw std::runtime_error("trace_io: " + where + ": job " +
                             std::to_string(j.id) +
                             " has non-positive or non-finite weight");
  }
}

void write_raw(std::ostream& out, const void* data, std::size_t bytes) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
}

void read_raw(std::istream& in, void* data, std::size_t bytes,
              std::string_view what) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    throw std::runtime_error("trace_io: truncated binary trace (while reading " +
                             std::string(what) + ")");
  }
}

struct BinaryHeader {
  std::uint64_t n = 0;
  std::uint8_t flags = 0;
};

BinaryHeader read_header(std::istream& in) {
  char magic[sizeof(kMagic)];
  read_raw(in, magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace_io: not a binary trace (bad magic)");
  }
  BinaryHeader h;
  read_raw(in, &h.n, sizeof(h.n), "job count");
  read_raw(in, &h.flags, sizeof(h.flags), "flags");
  if ((h.flags & ~(kFlagWeights | kFlagSorted)) != 0) {
    throw std::runtime_error("trace_io: unknown binary trace flags");
  }
  return h;
}

constexpr std::size_t kHeaderBytes = sizeof(kMagic) + sizeof(std::uint64_t) + 1;

/// Truncation check that cannot overflow: a hostile header n (e.g. 2^61)
/// must fail here, not wrap the byte product, pass, and defer the failure
/// to a giant column resize or a mid-stream read error.
void check_trace_bytes(std::uint64_t file_bytes, std::uint64_t n,
                       std::uint64_t columns, const std::string& path) {
  if (file_bytes < kHeaderBytes ||
      n > (file_bytes - kHeaderBytes) / (columns * sizeof(double))) {
    throw std::runtime_error("trace_io: truncated binary trace '" + path + "'");
  }
}

/// Cheap peek at a row's first two fields for the streaming pre-pass; full
/// validation still happens in parse_row() when the row is replayed.
bool peek_id_release(std::string_view sv, double& id, double& release) {
  const std::size_t c1 = sv.find(',');
  if (c1 == std::string_view::npos) return false;
  const std::size_t c2 = sv.find(',', c1 + 1);
  if (c2 == std::string_view::npos) return false;
  const auto parse = [](std::string_view f, double& out) {
    const auto [ptr, ec] = std::from_chars(f.data(), f.data() + f.size(), out);
    return ec == std::errc{} && ptr == f.data() + f.size() &&
           std::isfinite(out);
  };
  return parse(sv.substr(0, c1), id) &&
         parse(sv.substr(c1 + 1, c2 - c1 - 1), release);
}

void read_column(std::istream& in, std::vector<double>& col, std::size_t n,
                 std::string_view what) {
  col.resize(n);
  read_raw(in, col.data(), n * sizeof(double), what);
}

}  // namespace

void write_csv(const Instance& instance, std::ostream& out) {
  out << "id,release,size,weight\n";
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const Job& j : instance.jobs()) {
    out << j.id << ',' << j.release << ',' << j.size << ',' << j.weight << '\n';
  }
  if (!out) throw std::runtime_error("trace_io: write failed");
}

void write_csv_file(const Instance& instance, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("trace_io: cannot open '" + path + "' for writing");
  write_csv(instance, f);
}

Instance read_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.find("id") != 0) {
    throw std::runtime_error("trace_io: missing 'id,release,size' header");
  }
  std::vector<Job> jobs;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    jobs.push_back(parse_row(line, line_no));
  }
  try {
    return Instance::from_jobs(std::move(jobs));
  } catch (const std::invalid_argument& e) {
    // Structural problems (duplicate ids, gaps) surface as parse errors.
    throw std::runtime_error(std::string("trace_io: ") + e.what());
  }
}

Instance read_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("trace_io: cannot open '" + path + "' for reading");
  return read_csv(f);
}

void write_binary(const Instance& instance, std::ostream& out) {
  const std::span<const JobId> order = instance.release_order();
  const std::uint64_t n = instance.n();
  bool weighted = false;
  for (const Job& j : instance.jobs()) weighted = weighted || j.weight != 1.0;
  const std::uint8_t flags =
      kFlagSorted | (weighted ? kFlagWeights : std::uint8_t{0});
  write_raw(out, kMagic, sizeof(kMagic));
  write_raw(out, &n, sizeof(n));
  write_raw(out, &flags, sizeof(flags));
  std::vector<double> col(instance.n());
  for (std::size_t i = 0; i < n; ++i) col[i] = instance.job(order[i]).release;
  write_raw(out, col.data(), col.size() * sizeof(double));
  for (std::size_t i = 0; i < n; ++i) col[i] = instance.job(order[i]).size;
  write_raw(out, col.data(), col.size() * sizeof(double));
  if (weighted) {
    for (std::size_t i = 0; i < n; ++i) col[i] = instance.job(order[i]).weight;
    write_raw(out, col.data(), col.size() * sizeof(double));
  }
  if (!out) throw std::runtime_error("trace_io: binary write failed");
}

void write_binary_file(const Instance& instance, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace_io: cannot open '" + path + "' for writing");
  write_binary(instance, f);
}

Instance read_binary(std::istream& in) {
  const BinaryHeader h = read_header(in);
  std::vector<double> release, size, weight;
  read_column(in, release, h.n, "release column");
  read_column(in, size, h.n, "size column");
  if ((h.flags & kFlagWeights) != 0) {
    read_column(in, weight, h.n, "weight column");
  }
  std::vector<Job> jobs;
  jobs.reserve(h.n);
  for (std::size_t i = 0; i < h.n; ++i) {
    const Job j{static_cast<JobId>(i), release[i], size[i],
                weight.empty() ? 1.0 : weight[i]};
    check_job_values(j, "binary trace");
    jobs.push_back(j);
  }
  return Instance::from_jobs(std::move(jobs));
}

Instance read_binary_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace_io: cannot open '" + path + "' for reading");
  return read_binary(f);
}

bool is_binary_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace_io: cannot open '" + path + "' for reading");
  char magic[sizeof(kMagic)];
  f.read(magic, sizeof(magic));
  return static_cast<std::size_t>(f.gcount()) == sizeof(magic) &&
         std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

Instance read_trace_file(const std::string& path) {
  return is_binary_trace_file(path) ? read_binary_file(path)
                                    : read_csv_file(path);
}

TraceInfo probe_trace_file(const std::string& path) {
  TraceInfo info;
  info.binary = is_binary_trace_file(path);
  if (info.binary) {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      throw std::runtime_error("trace_io: cannot open '" + path +
                               "' for reading");
    }
    const BinaryHeader h = read_header(f);
    f.seekg(0, std::ios::end);
    const auto bytes = static_cast<std::uint64_t>(f.tellg());
    const std::uint64_t columns = (h.flags & kFlagWeights) != 0 ? 3 : 2;
    check_trace_bytes(bytes, h.n, columns, path);
    info.n = h.n;
    info.streamable = (h.flags & kFlagSorted) != 0;
    return info;
  }
  const CsvTraceStream probe(path);
  info.n = probe.n();
  info.streamable = probe.sequential();
  return info;
}

CsvTraceStream::CsvTraceStream(const std::string& path)
    : path_(path), in_(path) {
  if (!in_) {
    throw std::runtime_error("trace_io: cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in_, line) || line.find("id") != 0) {
    throw std::runtime_error("trace_io: missing 'id,release,size' header");
  }
  // Counting pre-pass: n() must be exact before the first next() (contract
  // S1), but nothing is parsed yet -- rows stay on disk until replayed.
  // While counting, a cheap peek at the id/release fields records whether
  // the rows honor the JobStream contract (sequential ids in release
  // order); probe_trace_file() reads sequential() so valid-but-unsorted
  // CSVs fall back to materializing instead of failing mid-replay.
  const std::streampos data_begin = in_.tellg();
  double prev_release = 0.0;
  while (std::getline(in_, line)) {
    if (line.empty()) continue;
    if (sequential_) {
      double id = -1.0, release = -1.0;
      sequential_ = peek_id_release(line, id, release) &&
                    id == static_cast<double>(n_) && release >= prev_release;
      prev_release = release;
    }
    ++n_;
  }
  in_.clear();
  in_.seekg(data_begin);
}

Job CsvTraceStream::next() {
  if (emitted_ == n_) {
    throw std::logic_error("CsvTraceStream: next() called past n()");
  }
  std::string line;
  while (std::getline(in_, line)) {
    ++line_no_;
    if (line.empty()) continue;
    Job j = parse_row(line, line_no_);
    check_job_values(j, path_);
    if (j.id != static_cast<JobId>(emitted_) || j.release < last_release_) {
      throw std::runtime_error(
          "trace_io: '" + path_ + "' line " + std::to_string(line_no_) +
          ": rows are not sequential ids in release order; "
          "use read_csv_file() to materialize and relabel");
    }
    last_release_ = j.release;
    ++emitted_;
    return j;
  }
  throw std::runtime_error("trace_io: '" + path_ +
                           "': trace shrank while streaming");
}

BinaryTraceStream::BinaryTraceStream(const std::string& path)
    : path_(path), in_(path, std::ios::binary) {
  if (!in_) {
    throw std::runtime_error("trace_io: cannot open '" + path + "' for reading");
  }
  const BinaryHeader h = read_header(in_);
  if ((h.flags & kFlagSorted) == 0) {
    throw std::runtime_error("trace_io: '" + path +
                             "': binary trace is not release-sorted; use "
                             "read_binary_file() to materialize");
  }
  n_ = h.n;
  has_weights_ = (h.flags & kFlagWeights) != 0;
  // Verify the file holds every column before replay starts, so truncation
  // fails at construction rather than mid-run.
  in_.seekg(0, std::ios::end);
  const auto bytes = static_cast<std::uint64_t>(in_.tellg());
  const std::uint64_t columns = has_weights_ ? 3 : 2;
  check_trace_bytes(bytes, n_, columns, path);
}

void BinaryTraceStream::refill() {
  block_begin_ = emitted_;
  const std::size_t count = std::min(kBlock, n_ - block_begin_);
  auto column_offset = [&](std::size_t column) {
    return static_cast<std::streamoff>(kHeaderBytes +
                                       (column * n_ + block_begin_) *
                                           sizeof(double));
  };
  in_.seekg(column_offset(0));
  read_column(in_, release_, count, "release column");
  in_.seekg(column_offset(1));
  read_column(in_, size_, count, "size column");
  if (has_weights_) {
    in_.seekg(column_offset(2));
    read_column(in_, weight_, count, "weight column");
  }
}

Job BinaryTraceStream::next() {
  if (emitted_ == n_) {
    throw std::logic_error("BinaryTraceStream: next() called past n()");
  }
  if (emitted_ == block_begin_ + release_.size()) refill();
  const std::size_t i = emitted_ - block_begin_;
  const Job j{static_cast<JobId>(emitted_), release_[i], size_[i],
              has_weights_ ? weight_[i] : 1.0};
  check_job_values(j, path_);
  if (j.release < last_release_) {
    throw std::runtime_error("trace_io: '" + path_ +
                             "': sorted flag set but releases decrease at row " +
                             std::to_string(emitted_));
  }
  last_release_ = j.release;
  ++emitted_;
  return j;
}

}  // namespace tempofair::workload
