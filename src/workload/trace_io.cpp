#include "workload/trace_io.h"

#include <charconv>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tempofair::workload {

namespace {

double parse_field(std::string_view s, std::size_t line_no, std::string_view what) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error("trace_io: line " + std::to_string(line_no) +
                             ": bad " + std::string(what) + " '" + std::string(s) + "'");
  }
  return v;
}

}  // namespace

void write_csv(const Instance& instance, std::ostream& out) {
  out << "id,release,size,weight\n";
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const Job& j : instance.jobs()) {
    out << j.id << ',' << j.release << ',' << j.size << ',' << j.weight << '\n';
  }
  if (!out) throw std::runtime_error("trace_io: write failed");
}

void write_csv_file(const Instance& instance, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("trace_io: cannot open '" + path + "' for writing");
  write_csv(instance, f);
}

Instance read_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.find("id") != 0) {
    throw std::runtime_error("trace_io: missing 'id,release,size' header");
  }
  std::vector<Job> jobs;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string_view sv(line);
    std::vector<std::string_view> fields;
    std::size_t pos = 0;
    while (pos <= sv.size()) {
      const std::size_t comma = sv.find(',', pos);
      if (comma == std::string_view::npos) {
        fields.push_back(sv.substr(pos));
        break;
      }
      fields.push_back(sv.substr(pos, comma - pos));
      pos = comma + 1;
    }
    if (fields.size() != 3 && fields.size() != 4) {
      throw std::runtime_error("trace_io: line " + std::to_string(line_no) +
                               ": expected 3 or 4 comma-separated fields");
    }
    const double id = parse_field(fields[0], line_no, "id");
    const double release = parse_field(fields[1], line_no, "release");
    const double size = parse_field(fields[2], line_no, "size");
    const double weight =
        fields.size() == 4 ? parse_field(fields[3], line_no, "weight") : 1.0;
    if (id < 0 || id != static_cast<double>(static_cast<JobId>(id))) {
      throw std::runtime_error("trace_io: line " + std::to_string(line_no) +
                               ": id is not a small nonnegative integer");
    }
    jobs.push_back(Job{static_cast<JobId>(id), release, size, weight});
  }
  try {
    return Instance::from_jobs(std::move(jobs));
  } catch (const std::invalid_argument& e) {
    // Structural problems (duplicate ids, gaps) surface as parse errors.
    throw std::runtime_error(std::string("trace_io: ") + e.what());
  }
}

Instance read_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("trace_io: cannot open '" + path + "' for reading");
  return read_csv(f);
}

}  // namespace tempofair::workload
