#include "workload/rng.h"

#include <cmath>
#include <stdexcept>

namespace tempofair::workload {

double Rng::uniform(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("Rng::uniform: lo must be < hi");
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo must be <= hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
}

double Rng::exponential(double mean) {
  if (!(mean > 0.0)) throw std::invalid_argument("Rng::exponential: mean must be > 0");
  return std::exponential_distribution<double>(1.0 / mean)(gen_);
}

double Rng::pareto(double alpha, double xmin) {
  if (!(alpha > 0.0) || !(xmin > 0.0)) {
    throw std::invalid_argument("Rng::pareto: alpha and xmin must be > 0");
  }
  // Inverse CDF: x = xmin * U^(-1/alpha), U in (0,1].
  const double u = 1.0 - std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
  return xmin * std::pow(u, -1.0 / alpha);
}

bool Rng::bernoulli(double p) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("Rng::bernoulli: p outside [0,1]");
  return std::bernoulli_distribution(p)(gen_);
}

Rng Rng::split() {
  // Two independent draws give the child a seed uncorrelated with the
  // parent's subsequent output for practical purposes.
  const std::uint64_t a = gen_();
  const std::uint64_t b = gen_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace tempofair::workload
