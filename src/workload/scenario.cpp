#include "workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "workload/rng.h"

namespace tempofair::workload {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void CapacityTimeline::validate() const {
  if (phases.empty()) {
    throw std::invalid_argument("CapacityTimeline: no phases");
  }
  if (phases.front().start != 0.0) {
    throw std::invalid_argument("CapacityTimeline: first phase must start at 0");
  }
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const CapacityPhase& p = phases[i];
    if (!(p.start >= 0.0) || !std::isfinite(p.start)) {
      throw std::invalid_argument("CapacityTimeline: bad phase start");
    }
    if (i > 0 && !(p.start > phases[i - 1].start)) {
      throw std::invalid_argument(
          "CapacityTimeline: phase starts must strictly increase");
    }
    if (p.machines < 0) {
      throw std::invalid_argument("CapacityTimeline: machines < 0");
    }
    if (p.machines > 0 && (!(p.speed > 0.0) || !std::isfinite(p.speed))) {
      throw std::invalid_argument("CapacityTimeline: speed must be > 0");
    }
  }
  if (phases.back().machines < 1) {
    throw std::invalid_argument(
        "CapacityTimeline: final phase must have machines >= 1 (otherwise "
        "carried jobs never finish)");
  }
}

TimelineResult run_capacity_timeline(const Instance& instance,
                                     const RunRequest& request,
                                     const CapacityTimeline& timeline) {
  timeline.validate();
  TimelineResult out;
  out.completion.assign(instance.n(), kInf);

  struct Carried {
    JobId id;        // original id
    Work remaining;
    double weight;
  };
  std::vector<Carried> carry;
  const std::span<const JobId> order = instance.release_order();
  std::size_t next_arrival = 0;  // index into release order

  for (std::size_t pi = 0; pi < timeline.phases.size(); ++pi) {
    const CapacityPhase& phase = timeline.phases[pi];
    const Time seg_end = pi + 1 < timeline.phases.size()
                             ? timeline.phases[pi + 1].start
                             : kInf;
    // Jobs arriving inside this phase.
    std::vector<JobId> arrivals;
    while (next_arrival < order.size() &&
           instance.job(order[next_arrival]).release < seg_end) {
      arrivals.push_back(order[next_arrival]);
      ++next_arrival;
    }
    if (phase.machines == 0) {
      // Full outage: arrivals queue up as carryover, nothing is served.
      for (const JobId id : arrivals) {
        const Job& j = instance.job(id);
        carry.push_back(Carried{id, j.size, j.weight});
      }
      continue;
    }
    if (carry.empty() && arrivals.empty()) continue;

    // Sub-instance: carryovers re-released at the phase start with their
    // remaining work, fresh arrivals at their true release times.
    std::vector<Job> sub_jobs;
    std::vector<JobId> orig_of;
    sub_jobs.reserve(carry.size() + arrivals.size());
    for (const Carried& c : carry) {
      sub_jobs.push_back(Job{static_cast<JobId>(sub_jobs.size()), phase.start,
                             c.remaining, c.weight});
      orig_of.push_back(c.id);
    }
    for (const JobId id : arrivals) {
      const Job& j = instance.job(id);
      sub_jobs.push_back(
          Job{static_cast<JobId>(sub_jobs.size()), j.release, j.size, j.weight});
      orig_of.push_back(id);
    }
    carry.clear();
    const Instance sub = Instance::from_jobs(std::move(sub_jobs));

    RunRequest req = request;
    req.machines = phase.machines;
    req.speed = phase.speed;
    req.record_trace = true;  // the carryover cut needs attained work
    req.workload.clear();
    req.max_time = kInfiniteTime;
    const RunResult result = tempofair::run(sub, req);
    ++out.segments;

    for (std::size_t k = 0; k < orig_of.size(); ++k) {
      const auto sub_id = static_cast<JobId>(k);
      const Time completion = result.schedule.completion(sub_id);
      if (completion <= seg_end) {
        out.completion[orig_of[k]] = completion;
        continue;
      }
      // Interrupted by the next phase: attained work is the traced rate
      // integrated up to the boundary.
      Work attained = 0.0;
      for (const JobSlice slice : result.schedule.job_trace(sub_id)) {
        if (slice.begin >= seg_end) break;
        attained += slice.rate * (std::min(slice.end, seg_end) - slice.begin);
      }
      const Work size = result.schedule.size(sub_id);
      const Work remaining = size - attained;
      if (remaining <= 0.0) {
        // Finished within rounding of the boundary.
        out.completion[orig_of[k]] = seg_end;
        continue;
      }
      carry.push_back(
          Carried{orig_of[k], remaining, result.schedule.weight(sub_id)});
      ++out.carried;
    }
  }

  out.flow.resize(instance.n());
  for (JobId id = 0; id < instance.n(); ++id) {
    out.flow[id] = out.completion[id] - instance.job(id).release;
  }
  out.stats = flow_stats(out.flow);
  return out;
}

SloReport slo_attainment(std::span<const Time> flows,
                         std::span<const SloClass> classes,
                         std::span<const int> class_of) {
  if (flows.size() != class_of.size()) {
    throw std::invalid_argument("slo_attainment: flows/class_of size mismatch");
  }
  SloReport report;
  report.classes.resize(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    report.classes[c].name = classes[c].name;
    report.classes[c].deadline = classes[c].deadline;
  }
  std::size_t met_total = 0;
  for (std::size_t j = 0; j < flows.size(); ++j) {
    const int c = class_of[j];
    if (c < 0 || static_cast<std::size_t>(c) >= classes.size()) {
      throw std::invalid_argument("slo_attainment: class index out of range");
    }
    SloReport::PerClass& pc = report.classes[static_cast<std::size_t>(c)];
    ++pc.jobs;
    pc.mean_flow += flows[j];
    pc.max_flow = std::max(pc.max_flow, flows[j]);
    if (flows[j] <= classes[static_cast<std::size_t>(c)].deadline) {
      ++pc.met;
      ++met_total;
    }
  }
  for (SloReport::PerClass& pc : report.classes) {
    pc.attainment =
        pc.jobs == 0 ? 1.0 : static_cast<double>(pc.met) / pc.jobs;
    if (pc.jobs > 0) pc.mean_flow /= static_cast<double>(pc.jobs);
  }
  report.overall_attainment =
      flows.empty() ? 1.0 : static_cast<double>(met_total) / flows.size();
  return report;
}

std::vector<int> cycle_classes(std::size_t n, std::size_t num_classes) {
  if (num_classes == 0) {
    throw std::invalid_argument("cycle_classes: num_classes == 0");
  }
  std::vector<int> out(n);
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = static_cast<int>(j % num_classes);
  }
  return out;
}

ClosedLoopResult run_closed_loop(const ClosedLoopConfig& config) {
  if (config.clients < 1) {
    throw std::invalid_argument("run_closed_loop: clients < 1");
  }
  if (config.requests < 1) {
    throw std::invalid_argument("run_closed_loop: requests < 1");
  }
  if (!(config.think_mean >= 0.0) || !std::isfinite(config.think_mean)) {
    throw std::invalid_argument("run_closed_loop: bad think_mean");
  }
  if (config.machines < 1) {
    throw std::invalid_argument("run_closed_loop: machines < 1");
  }
  if (!(config.speed > 0.0) || !std::isfinite(config.speed)) {
    throw std::invalid_argument("run_closed_loop: bad speed");
  }
  const bool ps = config.discipline == "ps";
  if (!ps && config.discipline != "fcfs") {
    throw std::invalid_argument(
        "run_closed_loop: discipline must be 'ps' or 'fcfs'");
  }

  Rng rng(config.seed);
  const double capacity = config.machines * config.speed;
  auto think = [&] {
    return config.think_mean > 0.0 ? rng.exponential(config.think_mean) : 0.0;
  };

  struct Active {
    std::size_t client;
    Time submitted;
    Work remaining;  // PS: work left; FCFS: full size until started
  };
  // Thinking clients, as a min-heap of (wake time, client).
  using Thinker = std::pair<Time, std::size_t>;
  std::priority_queue<Thinker, std::vector<Thinker>, std::greater<>> thinking;
  for (std::size_t c = 0; c < config.clients; ++c) {
    thinking.emplace(think(), c);
  }

  std::vector<double> flows;
  flows.reserve(config.requests);
  Time t = 0.0;
  double served = 0.0;

  if (ps) {
    // Egalitarian PS on m machines: each of the k active jobs runs at
    // min(speed, capacity / k).
    std::vector<Active> active;
    while (flows.size() < config.requests) {
      const double rate =
          active.empty()
              ? 0.0
              : std::min(config.speed,
                         capacity / static_cast<double>(active.size()));
      Time next_completion = kInf;
      std::size_t winner = 0;
      for (std::size_t i = 0; i < active.size(); ++i) {
        const Time c = t + active[i].remaining / rate;
        if (c < next_completion) {
          next_completion = c;
          winner = i;
        }
      }
      const Time next_wake = thinking.empty() ? kInf : thinking.top().first;
      if (next_wake <= next_completion) {
        const double dt = next_wake - t;
        for (Active& a : active) a.remaining -= rate * dt;
        served += rate * dt * static_cast<double>(active.size());
        t = next_wake;
        const std::size_t client = thinking.top().second;
        thinking.pop();
        active.push_back(Active{client, t, draw_size(config.dist, rng)});
      } else {
        const double dt = next_completion - t;
        for (Active& a : active) a.remaining -= rate * dt;
        served += rate * dt * static_cast<double>(active.size());
        t = next_completion;
        flows.push_back(t - active[winner].submitted);
        const std::size_t client = active[winner].client;
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(winner));
        thinking.emplace(t + think(), client);
      }
    }
  } else {
    // FCFS on m servers of the configured speed.
    struct InService {
      Time done;
      Time submitted;
      std::size_t client;
    };
    auto later = [](const InService& a, const InService& b) {
      return a.done > b.done;
    };
    std::priority_queue<InService, std::vector<InService>, decltype(later)>
        in_service(later);
    std::deque<Active> queue;
    while (flows.size() < config.requests) {
      const Time next_done =
          in_service.empty() ? kInf : in_service.top().done;
      const Time next_wake = thinking.empty() ? kInf : thinking.top().first;
      if (next_wake <= next_done) {
        t = next_wake;
        const std::size_t client = thinking.top().second;
        thinking.pop();
        const Work size = draw_size(config.dist, rng);
        if (in_service.size() < static_cast<std::size_t>(config.machines)) {
          in_service.push(InService{t + size / config.speed, t, client});
          served += size;
        } else {
          queue.push_back(Active{client, t, size});
        }
      } else {
        t = next_done;
        const InService done = in_service.top();
        in_service.pop();
        flows.push_back(t - done.submitted);
        thinking.emplace(t + think(), done.client);
        if (!queue.empty()) {
          const Active next = queue.front();
          queue.pop_front();
          in_service.push(
              InService{t + next.remaining / config.speed, next.submitted,
                        next.client});
          served += next.remaining;
        }
      }
    }
    // `served` counted each dispatched job's full size up front; jobs still
    // in flight at the final completion haven't delivered their tail yet,
    // so utilization must not count it.
    while (!in_service.empty()) {
      const InService rest = in_service.top();
      in_service.pop();
      if (rest.done > t) served -= (rest.done - t) * config.speed;
    }
  }

  ClosedLoopResult result;
  result.stats = flow_stats(flows);
  result.makespan = t;
  result.throughput = t > 0.0 ? static_cast<double>(flows.size()) / t : 0.0;
  result.utilization = t > 0.0 ? served / (capacity * t) : 0.0;
  return result;
}

}  // namespace tempofair::workload
