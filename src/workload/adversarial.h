// Adversarial instance families.
//
// Competitive analysis is a worst-case guarantee, so the experiment suite
// exercises the known hard families:
//
//  * rr_l2_hard(n): the batch-plus-stream family behind the cited lower
//    bound (Bansal-Pruhs'10): RR is Omega(n^{2*eps_p})-competitive for the
//    l2 norm at (1+eps)-speed, i.e. not O(1)-competitive below speed 3/2.
//    A batch of n unit jobs arrives at time 0; a long stream of unit jobs
//    then arrives at (just under) the machine's service rate.  RR splits the
//    machine over the whole population so *every* stream job ages ~n, while
//    OPT finishes each stream job immediately and drains the batch with the
//    leftover capacity.  Squaring the per-job flows makes RR's cost blow up
//    with n; extra speed lets RR drain the batch and the effect vanishes --
//    exactly the crossover Theorem 1 vs. [4] predicts (experiments F1/F4).
//
//  * srpt_starvation(n): one large job plus a near-saturating stream of unit
//    jobs.  SRPT (and SJF) starve the large job for the whole stream -- the
//    l_infinity / variance pathology motivating temporal fairness (F3) --
//    while RR keeps serving it.
//
//  * overload_pulse(...): repeated overload bursts into an otherwise idle
//    system; stresses the overloaded/underloaded case split (T_o vs T_u) of
//    the paper's dual construction on multiple machines.
//
//  * staircase(n): n jobs with geometrically shrinking sizes arriving
//    back-to-back; a classic instance separating size-aware policies from
//    oblivious ones.
#pragma once

#include "core/instance.h"

namespace tempofair::workload {

/// Batch of `batch` unit jobs at time 0, then `stream` unit jobs arriving
/// every `gap` time units starting at time 0 (gap slightly above 1 keeps
/// a speed-1 machine barely able to serve the stream alone).
[[nodiscard]] Instance batch_plus_stream(std::size_t batch, std::size_t stream,
                                         double gap, double job_size = 1.0);

/// The RR l2 lower-bound family, parameterized by n (batch n, stream 4n,
/// gap 1.05).  Ratio vs OPT grows with n for speeds below ~1.5.
[[nodiscard]] Instance rr_l2_hard(std::size_t n);

/// One job of size `big` at time 0, then `stream` unit jobs every `gap`.
/// With gap = 1 (zero slack) SRPT never runs the big job while any unit job
/// is present, so F_big = stream + big; RR finishes it after ~big^2/2 time
/// (it only mildly snowballs the unit-job backlog).  The starvation contrast
/// is sharpest when `big` is only slightly larger than the unit jobs --
/// still always last in SRPT's order, but cheap for RR to absorb.  (A much
/// larger `big` absorbs all the slack under EVERY work-conserving policy and
/// the max-flow contrast disappears; see the adversarial tests.)
[[nodiscard]] Instance srpt_starvation(std::size_t stream, double big = 2.0,
                                       double gap = 1.0);

/// `pulses` bursts of `burst` unit jobs, spaced so the system fully drains
/// between bursts on `machines` speed-1 machines (alternates overloaded and
/// underloaded periods).
[[nodiscard]] Instance overload_pulse(std::size_t pulses, std::size_t burst,
                                      int machines);

/// n jobs at times 0, 1, 2, ... with sizes n, n/2, n/4, ... (minimum 1).
[[nodiscard]] Instance staircase(std::size_t n);

/// Geometric level family (the shape behind the cited Omega(n^{2 eps_p})
/// lower bound [4], which nests job classes of geometrically varying size):
/// level l in [0, levels) releases 2^l jobs of size 2^-l (unit work per
/// level) at time l * spacing.  RR keeps all levels diluted simultaneously;
/// SRPT clears each level before the next.  Under speed 1 the measured
/// RR-vs-SRPT l2 ratio grows monotonically with `levels` (slowly -- the
/// published exponent 2 eps_p vanishes as the speed advantage does), and at
/// speed >= 4 it is flat and far below 1, the crossover Theorem 1 predicts.
[[nodiscard]] Instance geometric_levels(int levels, double spacing = 1.05);

}  // namespace tempofair::workload
