// Streaming workload generators (core/job_stream.h implementations).
//
// poisson_stream() materializes every job before the engine sees the first
// one; at a million jobs that is an O(n) allocation spike paid purely for
// staging.  PoissonJobStream draws the *identical* RNG sequence one job at a
// time, so the engine's fast path admits arrivals straight from the
// generator and the run's footprint is the alive set plus the trace --
// never the full instance.  Seeding one Rng for poisson_stream and another
// identically for PoissonJobStream yields bitwise-equal jobs, which is what
// the equivalence tests rely on.
#pragma once

#include <cstddef>

#include "core/instance.h"
#include "core/job_stream.h"
#include "workload/generators.h"
#include "workload/rng.h"

namespace tempofair::workload {

/// Poisson arrivals with rate `lambda`, iid sizes from `dist`; job i is the
/// i-th arrival, so ids are sequential in release order (contract S2).
/// Draws from `rng` lazily in next(), in exactly poisson_stream()'s order.
/// The Rng and SizeDist must outlive the stream.
class PoissonJobStream final : public JobStream {
 public:
  PoissonJobStream(std::size_t n, double lambda, const SizeDist& dist,
                   Rng& rng);

  [[nodiscard]] std::size_t n() const noexcept override { return n_; }
  [[nodiscard]] Job next() override;

 private:
  std::size_t n_;
  double lambda_;
  const SizeDist* dist_;
  Rng* rng_;
  std::size_t emitted_ = 0;
  Time clock_ = 0.0;
};

/// PoissonJobStream calibrated like poisson_load(): lambda chosen so that
/// utilization lambda*E[size]/machines equals `utilization` in (0, 1.5].
[[nodiscard]] PoissonJobStream poisson_load_stream(std::size_t n, int machines,
                                                   double utilization,
                                                   const SizeDist& dist,
                                                   Rng& rng);

/// Adapts a materialized Instance as a JobStream, for equivalence tests.
/// Requires the instance's ids to already be sequential in release order
/// (true for poisson_stream()/uniform_stream() output); throws
/// std::invalid_argument otherwise, since relabeling would silently change
/// the id -> job mapping being compared.
class InstanceJobStream final : public JobStream {
 public:
  explicit InstanceJobStream(const Instance& instance);

  [[nodiscard]] std::size_t n() const noexcept override;
  [[nodiscard]] Job next() override;

 private:
  const Instance* instance_;
  std::size_t next_ = 0;
};

/// Drains `stream` into a materialized Instance (for running the same
/// workload through the generic engine loop or a non-streaming analysis).
[[nodiscard]] Instance materialize(JobStream& stream);

}  // namespace tempofair::workload
