// Streaming workload generators (core/job_stream.h implementations).
//
// Materializing generators stage every job before the engine sees the first
// one; at a million jobs that is an O(n) allocation spike paid purely for
// staging.  detail::PoissonStream draws the *identical* RNG sequence one job
// at a time, so the engine's fast path admits arrivals straight from the
// generator and the run's footprint is the alive set plus the trace --
// never the full instance.  Seeding one Rng for detail::poisson_stream and
// another identically for detail::PoissonStream yields bitwise-equal jobs,
// which is what the equivalence tests rely on.
//
// Callers should not name these concrete classes directly any more: describe
// the workload with a WorkloadSpec and obtain the stream from
// workload::make_source() (workload/source.h).  The old public spellings
// (PoissonJobStream, InstanceJobStream, poisson_load_stream) remain as
// [[deprecated]] one-release aliases/shims below.
#pragma once

#include <cstddef>

#include "core/instance.h"
#include "core/job_stream.h"
#include "workload/generators.h"
#include "workload/rng.h"

namespace tempofair::workload {

namespace detail {

/// Poisson arrivals with rate `lambda`, iid sizes from `dist`; job i is the
/// i-th arrival, so ids are sequential in release order (contract S2).
/// Draws from `rng` lazily in next(), in exactly detail::poisson_stream()'s
/// order.  The Rng and SizeDist must outlive the stream.
class PoissonStream final : public JobStream {
 public:
  PoissonStream(std::size_t n, double lambda, const SizeDist& dist, Rng& rng);

  [[nodiscard]] std::size_t n() const noexcept override { return n_; }
  [[nodiscard]] Job next() override;

 private:
  std::size_t n_;
  double lambda_;
  const SizeDist* dist_;
  Rng* rng_;
  std::size_t emitted_ = 0;
  Time clock_ = 0.0;
};

/// PoissonStream calibrated like detail::poisson_load(): lambda chosen so
/// that utilization lambda*E[size]/machines equals `utilization` in (0, 1.5].
[[nodiscard]] PoissonStream poisson_load_stream(std::size_t n, int machines,
                                                double utilization,
                                                const SizeDist& dist, Rng& rng);

/// Adapts a materialized Instance as a JobStream, for equivalence tests and
/// trace replay.  Requires the instance's ids to already be sequential in
/// release order (true for the generator outputs); throws
/// std::invalid_argument otherwise, since relabeling would silently change
/// the id -> job mapping being compared.
class InstanceRefStream final : public JobStream {
 public:
  explicit InstanceRefStream(const Instance& instance);

  [[nodiscard]] std::size_t n() const noexcept override;
  [[nodiscard]] Job next() override;

 private:
  const Instance* instance_;
  std::size_t next_ = 0;
};

}  // namespace detail

/// Deprecated spelling of detail::PoissonStream; build streams through
/// workload::make_source() instead.
using PoissonJobStream
    [[deprecated("build via WorkloadSpec + workload::make_source()")]] =
        detail::PoissonStream;

/// Deprecated spelling of detail::InstanceRefStream.
using InstanceJobStream
    [[deprecated("build via WorkloadSpec + workload::make_source()")]] =
        detail::InstanceRefStream;

[[deprecated("build via WorkloadSpec::poisson() + workload::make_source()")]]
[[nodiscard]] inline detail::PoissonStream poisson_load_stream(
    std::size_t n, int machines, double utilization, const SizeDist& dist,
    Rng& rng) {
  return detail::poisson_load_stream(n, machines, utilization, dist, rng);
}

/// Drains `stream` into a materialized Instance (for running the same
/// workload through the generic engine loop or a non-streaming analysis).
[[nodiscard]] Instance materialize(JobStream& stream);

}  // namespace tempofair::workload
