#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tempofair::workload {

double draw_size(const SizeDist& dist, Rng& rng) {
  return std::visit(
      [&rng](const auto& d) -> double {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, FixedSize>) {
          return d.value;
        } else if constexpr (std::is_same_v<T, UniformSize>) {
          return rng.uniform(d.lo, d.hi);
        } else if constexpr (std::is_same_v<T, ExponentialSize>) {
          // Avoid pathological zero-size jobs.
          return std::max(rng.exponential(d.mean), 1e-6 * d.mean);
        } else if constexpr (std::is_same_v<T, ParetoSize>) {
          double v = rng.pareto(d.alpha, d.xmin);
          if (d.cap > 0.0) v = std::min(v, d.cap);
          return v;
        } else {
          static_assert(std::is_same_v<T, BimodalSize>);
          return rng.bernoulli(d.p_small) ? d.small : d.large;
        }
      },
      dist);
}

double mean_size(const SizeDist& dist) {
  return std::visit(
      [](const auto& d) -> double {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, FixedSize>) {
          return d.value;
        } else if constexpr (std::is_same_v<T, UniformSize>) {
          return 0.5 * (d.lo + d.hi);
        } else if constexpr (std::is_same_v<T, ExponentialSize>) {
          return d.mean;
        } else if constexpr (std::is_same_v<T, ParetoSize>) {
          if (d.cap > 0.0) {
            // E[min(X, cap)] = xmin + integral_{xmin}^{cap} (xmin/t)^alpha dt.
            if (d.cap <= d.xmin) return d.cap;
            const double a = d.alpha;
            if (a == 1.0) {
              return d.xmin * (1.0 + std::log(d.cap / d.xmin));
            }
            return d.xmin +
                   d.xmin / (a - 1.0) * (1.0 - std::pow(d.xmin / d.cap, a - 1.0));
          }
          if (!(d.alpha > 1.0)) {
            throw std::invalid_argument(
                "mean_size: uncapped Pareto with alpha <= 1 has no mean");
          }
          return d.alpha * d.xmin / (d.alpha - 1.0);
        } else {
          static_assert(std::is_same_v<T, BimodalSize>);
          return d.p_small * d.small + (1.0 - d.p_small) * d.large;
        }
      },
      dist);
}

std::string dist_name(const SizeDist& dist) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& d) {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, FixedSize>) {
          os << "fixed(" << d.value << ")";
        } else if constexpr (std::is_same_v<T, UniformSize>) {
          os << "uniform(" << d.lo << "," << d.hi << ")";
        } else if constexpr (std::is_same_v<T, ExponentialSize>) {
          os << "exp(" << d.mean << ")";
        } else if constexpr (std::is_same_v<T, ParetoSize>) {
          os << "pareto(" << d.alpha << ")";
        } else {
          os << "bimodal(" << d.small << "/" << d.large << ")";
        }
      },
      dist);
  return os.str();
}

namespace detail {

Instance poisson_stream(std::size_t n, double lambda, const SizeDist& dist,
                        Rng& rng) {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("poisson_stream: lambda must be > 0");
  }
  std::vector<Job> jobs;
  jobs.reserve(n);
  Time t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(1.0 / lambda);
    jobs.push_back(Job{static_cast<JobId>(i), t, draw_size(dist, rng)});
  }
  return Instance::from_jobs(std::move(jobs));
}

Instance poisson_load(std::size_t n, int machines, double utilization,
                      const SizeDist& dist, Rng& rng) {
  if (!(utilization > 0.0) || utilization > 1.5) {
    throw std::invalid_argument("poisson_load: utilization outside (0, 1.5]");
  }
  if (machines < 1) throw std::invalid_argument("poisson_load: machines < 1");
  const double lambda = utilization * machines / mean_size(dist);
  return detail::poisson_stream(n, lambda, dist, rng);
}

Instance bursty_stream(std::size_t bursts, std::size_t per_burst, double gap,
                       const SizeDist& dist, Rng& rng) {
  if (!(gap > 0.0)) throw std::invalid_argument("bursty_stream: gap must be > 0");
  std::vector<Job> jobs;
  jobs.reserve(bursts * per_burst);
  JobId id = 0;
  for (std::size_t b = 0; b < bursts; ++b) {
    const Time t = static_cast<double>(b) * gap;
    for (std::size_t i = 0; i < per_burst; ++i) {
      jobs.push_back(Job{id++, t, draw_size(dist, rng)});
    }
  }
  return Instance::from_jobs(std::move(jobs));
}

Instance uniform_stream(std::size_t n, double gap, double size, Time start) {
  if (!(gap >= 0.0)) throw std::invalid_argument("uniform_stream: gap must be >= 0");
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(Job{static_cast<JobId>(i), start + static_cast<double>(i) * gap, size});
  }
  return Instance::from_jobs(std::move(jobs));
}

}  // namespace detail

Instance with_weights(const Instance& instance, WeightScheme scheme, Rng& rng) {
  std::vector<Job> jobs(instance.jobs().begin(), instance.jobs().end());
  for (Job& j : jobs) {
    switch (scheme) {
      case WeightScheme::kUniform:
        j.weight = 1.0;
        break;
      case WeightScheme::kRandom:
        j.weight = rng.uniform(1.0, 10.0);
        break;
      case WeightScheme::kInverseSize:
        j.weight = 1.0 / j.size;
        break;
      case WeightScheme::kProportionalSize:
        j.weight = j.size;
        break;
    }
  }
  return Instance::from_jobs(std::move(jobs));
}

}  // namespace tempofair::workload
