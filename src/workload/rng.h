// Deterministic random source for workload generation.
//
// Thin wrapper over a 64-bit Mersenne twister with convenience draws.  All
// randomness in tempofair flows through this type: the same seed always
// yields the same instance, hence the same schedule -- asserted in tests.
#pragma once

#include <cstdint>
#include <random>

namespace tempofair::workload {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with the given mean (= 1/rate).
  [[nodiscard]] double exponential(double mean);
  /// Pareto with shape alpha > 0 and scale xmin > 0 (mean finite iff
  /// alpha > 1).
  [[nodiscard]] double pareto(double alpha, double xmin);
  /// Bernoulli(p).
  [[nodiscard]] bool bernoulli(double p);
  /// Derives an independent child stream (for parallel sweeps).
  [[nodiscard]] Rng split();

  /// Underlying engine (for std distributions in user code).
  [[nodiscard]] std::mt19937_64& engine() noexcept { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace tempofair::workload
