// CSV trace input/output for instances.
//
// Format: a header line "id,release,size,weight" followed by one job per
// line; the weight column is optional on input (defaults to 1).
// Round-trips exactly (fields written with max precision).
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.h"

namespace tempofair::workload {

/// Writes `instance` as CSV.  Throws std::runtime_error on I/O failure.
void write_csv(const Instance& instance, std::ostream& out);
void write_csv_file(const Instance& instance, const std::string& path);

/// Parses an instance from CSV.  Throws std::runtime_error on malformed
/// input (bad header, non-numeric fields, duplicate/out-of-range ids).
[[nodiscard]] Instance read_csv(std::istream& in);
[[nodiscard]] Instance read_csv_file(const std::string& path);

}  // namespace tempofair::workload
