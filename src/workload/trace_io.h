// Trace input/output for instances: CSV and binary columnar, with
// streaming readers so a replay never materializes the full instance.
//
// CSV format: a header line "id,release,size,weight" followed by one job per
// line; the weight column is optional on input (defaults to 1).  Round-trips
// exactly (fields written with max precision).
//
// Binary format (Borg/Azure-style column dump, little-endian):
//
//   bytes 0..7   magic "TFTRACE1"
//   bytes 8..15  u64 n (job count)
//   byte  16     flags: bit0 = weight column present,
//                       bit1 = rows sorted by release with id == row index
//   then columns of f64[n]: release, size, [weight]
//
// Column order matches how schedulers consume traces (all releases first),
// so the streaming reader touches each column sequentially.  Both readers
// reject non-finite values, non-positive sizes/weights, and truncated input
// up front -- a trace either replays exactly or fails loudly.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/job_stream.h"

namespace tempofair::workload {

/// Writes `instance` as CSV.  Throws std::runtime_error on I/O failure.
void write_csv(const Instance& instance, std::ostream& out);
void write_csv_file(const Instance& instance, const std::string& path);

/// Parses an instance from CSV.  Throws std::runtime_error on malformed
/// input (bad header, non-numeric or non-finite fields, duplicate or
/// out-of-range ids).
[[nodiscard]] Instance read_csv(std::istream& in);
[[nodiscard]] Instance read_csv_file(const std::string& path);

/// Writes `instance` in the binary columnar format.  Row r of the columns is
/// the r-th job in release order; the sorted flag is set, so the file always
/// streams.  Throws std::runtime_error on I/O failure.
void write_binary(const Instance& instance, std::ostream& out);
void write_binary_file(const Instance& instance, const std::string& path);

/// Reads a binary columnar trace.  Throws std::runtime_error on a bad magic,
/// truncated columns, or non-finite/non-positive values.
[[nodiscard]] Instance read_binary(std::istream& in);
[[nodiscard]] Instance read_binary_file(const std::string& path);

/// True if `path` starts with the binary trace magic (falls back to CSV).
[[nodiscard]] bool is_binary_trace_file(const std::string& path);

/// Reads a trace in either format, sniffing the magic.
[[nodiscard]] Instance read_trace_file(const std::string& path);

/// Cheap metadata probe: job count and whether the file supports streaming
/// replay, without loading any column.  CSV streamability comes from the
/// counting pre-pass (ids sequential in release order); binary
/// streamability is the sorted header flag.  Throws std::runtime_error on a
/// missing file, bad header, or truncated columns.
struct TraceInfo {
  std::size_t n = 0;
  bool binary = false;
  bool streamable = false;
};
[[nodiscard]] TraceInfo probe_trace_file(const std::string& path);

/// Streams a CSV trace one job at a time (JobStream contract: ids sequential
/// in nondecreasing release order -- the reader validates both and throws if
/// the file needs relabeling, in which case use read_csv_file()).  A cheap
/// counting pre-pass establishes n() and whether the rows honor the
/// contract (sequential()) without fully parsing; rows are parsed lazily in
/// next().
class CsvTraceStream final : public JobStream {
 public:
  explicit CsvTraceStream(const std::string& path);

  [[nodiscard]] std::size_t n() const noexcept override { return n_; }
  /// True when the pre-pass saw sequential ids in release order; next() on
  /// a non-sequential stream throws at the offending row.
  [[nodiscard]] bool sequential() const noexcept { return sequential_; }
  [[nodiscard]] Job next() override;

 private:
  std::string path_;
  std::ifstream in_;
  std::size_t n_ = 0;
  std::size_t emitted_ = 0;
  std::size_t line_no_ = 1;
  double last_release_ = 0.0;
  bool sequential_ = true;
};

/// Streams a binary columnar trace block-by-block (kBlock jobs buffered per
/// column).  Requires the sorted flag; throws otherwise.
class BinaryTraceStream final : public JobStream {
 public:
  explicit BinaryTraceStream(const std::string& path);

  [[nodiscard]] std::size_t n() const noexcept override { return n_; }
  [[nodiscard]] Job next() override;

  static constexpr std::size_t kBlock = 4096;

 private:
  void refill();

  std::string path_;
  std::ifstream in_;
  std::size_t n_ = 0;
  bool has_weights_ = false;
  std::size_t emitted_ = 0;
  std::size_t block_begin_ = 0;  ///< index of buffer[0] in the trace
  std::vector<double> release_, size_, weight_;
  double last_release_ = 0.0;
};

}  // namespace tempofair::workload
