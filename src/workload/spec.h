// WorkloadSpec: the declarative description of a workload.
//
// Every workload in the system -- synthetic generator, adversarial family,
// real-trace replay, scenario composition -- is named by one spec, written
// as a single string so it can ride a RunRequest, a CLI flag, a SUBMIT
// frame, or a JSON artifact unchanged:
//
//   kind[:param=value[,param=value...]]
//
//   poisson:n=1000,load=0.9,dist=exp(1),seed=7      Poisson arrivals
//   uniform:n=100,gap=1,size=1                      deterministic stream
//   bursty:bursts=10,per=10,gap=10,dist=exp(1)      batched arrivals
//   mmpp:n=1000,load=0.9,burst=8,on=5,off=45        correlated bursts
//   adv-rr-l2-hard:n=40                             hard families
//   adv-srpt-starvation:stream=200,big=2,gap=1
//   adv-overload-pulse:pulses=4,burst=32,machines=2
//   adv-staircase:n=16
//   adv-geometric:levels=8,spacing=1.05
//   trace:path/to/file.csv                          replay a recorded trace
//
// Distribution values use the parenthesized form (`dist=pareto(1.8,0.5)`) so
// the top-level comma stays unambiguous.  parse() and to_string() round-trip;
// semantic validation (unknown kinds/params, bad ranges) happens in
// make_source() (workload/source.h), so one error path covers flags, wire
// frames and programmatic construction alike.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "workload/generators.h"

namespace tempofair::workload {

/// Malformed or semantically invalid workload spec.  Derives from
/// std::invalid_argument so CLI layers can map it onto their usage errors.
class SpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

struct WorkloadSpec {
  std::string kind;
  /// key=value pairs in spelling order (order is preserved by to_string()
  /// so a spec echoes back the way the caller wrote it).
  std::vector<std::pair<std::string, std::string>> params;

  /// Parses `kind:params`.  Throws SpecError on empty kind, a parameter
  /// without '=', or a duplicate key.  For `trace:` everything after the
  /// first ':' is the path, verbatim (paths may contain ',' and '=').
  [[nodiscard]] static WorkloadSpec parse(std::string_view text);

  /// The canonical one-string form; parse(to_string()) == *this.
  [[nodiscard]] std::string to_string() const;

  // --- parameter access -----------------------------------------------------
  [[nodiscard]] const std::string* find(std::string_view key) const noexcept;
  [[nodiscard]] bool has(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }
  /// Typed lookups; throw SpecError naming the key on a malformed value.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] long get_int(std::string_view key, long fallback) const;
  /// The `seed` parameter (default 1): every randomized source derives all
  /// of its randomness from this, so equal specs yield equal workloads.
  [[nodiscard]] std::uint64_t seed() const;
  /// The `dist` parameter parsed as a size distribution (default exp(1)).
  [[nodiscard]] SizeDist dist() const;

  /// Sets `key` to `value`, replacing an existing entry in place.
  WorkloadSpec& set(std::string key, std::string value);
  WorkloadSpec& set(std::string key, double value);
  WorkloadSpec& set(std::string key, long value);

  // --- canonical builders (the programmatic spelling of the grammar) --------
  [[nodiscard]] static WorkloadSpec poisson(std::size_t n, double load,
                                            const SizeDist& dist,
                                            std::uint64_t seed = 1,
                                            int machines = 1);
  [[nodiscard]] static WorkloadSpec uniform(std::size_t n, double gap,
                                            double size, double start = 0.0);
  [[nodiscard]] static WorkloadSpec bursty(std::size_t bursts,
                                           std::size_t per_burst, double gap,
                                           const SizeDist& dist,
                                           std::uint64_t seed = 1);
  /// Two-state Markov-modulated Poisson arrivals: the ON state's rate is
  /// `burst` times the OFF state's, mean dwells `on`/`off`, calibrated so
  /// the long-run utilization is `load`.  Correlated bursts, heavy tails
  /// via `dist`.
  [[nodiscard]] static WorkloadSpec mmpp(std::size_t n, double load,
                                         double burst, double on, double off,
                                         const SizeDist& dist,
                                         std::uint64_t seed = 1,
                                         int machines = 1);
  [[nodiscard]] static WorkloadSpec trace(std::string path);

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// Parses `name(args...)` (or bare `name`) as a size distribution:
/// fixed(S) uniform(LO,HI) exp(MEAN) pareto(ALPHA,XMIN[,CAP])
/// bimodal(P,SMALL,LARGE).  Throws SpecError on anything else.
[[nodiscard]] SizeDist parse_size_dist(std::string_view text);

/// The canonical spec spelling of a distribution;
/// parse_size_dist(size_dist_spec(d)) == d.
[[nodiscard]] std::string size_dist_spec(const SizeDist& dist);

}  // namespace tempofair::workload
