#include "workload/source.h"

#include <cmath>
#include <functional>
#include <memory>
#include <utility>

#include "policies/registry.h"
#include "workload/adversarial.h"
#include "workload/stream.h"
#include "workload/trace_io.h"

namespace tempofair::workload {

namespace {

/// Rejects parameters no kind handler reads, so a typo ("laod=0.9") fails
/// loudly instead of silently running the default.
void check_keys(const WorkloadSpec& spec,
                std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : spec.params) {
    bool ok = false;
    for (const std::string_view a : allowed) ok = ok || key == a;
    if (!ok) {
      std::string list;
      for (const std::string_view a : allowed) {
        if (!list.empty()) list += ' ';
        list += a;
      }
      throw SpecError("workload spec '" + spec.to_string() +
                      "': unknown parameter '" + key + "' (accepted: " + list +
                      ")");
    }
  }
}

[[nodiscard]] std::size_t spec_count(const WorkloadSpec& spec,
                                     std::string_view key, long fallback) {
  const long v = spec.get_int(key, fallback);
  if (v < 0) {
    throw SpecError("workload spec '" + spec.to_string() + "': " +
                    std::string(key) + " must be >= 0");
  }
  return static_cast<std::size_t>(v);
}

[[nodiscard]] double spec_positive(const WorkloadSpec& spec,
                                   std::string_view key, double fallback) {
  const double v = spec.get_double(key, fallback);
  if (!(v > 0.0)) {
    throw SpecError("workload spec '" + spec.to_string() + "': " +
                    std::string(key) + " must be > 0");
  }
  return v;
}

[[nodiscard]] int spec_machines(const WorkloadSpec& spec) {
  const long m = spec.get_int("machines", 1);
  if (m < 1) {
    throw SpecError("workload spec '" + spec.to_string() +
                    "': machines must be >= 1");
  }
  return static_cast<int>(m);
}

[[nodiscard]] double spec_load(const WorkloadSpec& spec) {
  const double load = spec.get_double("load", 0.9);
  if (!(load > 0.0) || load > 1.5) {
    throw SpecError("workload spec '" + spec.to_string() +
                    "': load outside (0, 1.5]");
  }
  return load;
}

/// The optional `weights=` parameter; kNone when absent.
enum class Weights { kNone, kRandom, kInverseSize, kProportionalSize };

[[nodiscard]] Weights spec_weights(const WorkloadSpec& spec) {
  const std::string* v = spec.find("weights");
  if (v == nullptr) return Weights::kNone;
  if (*v == "random") return Weights::kRandom;
  if (*v == "inv-size") return Weights::kInverseSize;
  if (*v == "prop-size") return Weights::kProportionalSize;
  throw SpecError("workload spec '" + spec.to_string() + "': weights must be "
                  "random, inv-size, or prop-size, got '" + *v + "'");
}

/// Reweighting draws from its own generator (seed XOR a fixed tag) so adding
/// `weights=` never perturbs the arrival/size sequence.
[[nodiscard]] Instance apply_weights(Instance inst, Weights w,
                                     std::uint64_t seed) {
  if (w == Weights::kNone) return inst;
  const WeightScheme scheme = w == Weights::kRandom ? WeightScheme::kRandom
                              : w == Weights::kInverseSize
                                  ? WeightScheme::kInverseSize
                                  : WeightScheme::kProportionalSize;
  Rng rng(seed ^ 0x7765696768747364ULL);
  return with_weights(inst, scheme, rng);
}

// --- streams owned by their randomness --------------------------------------

/// detail::PoissonStream plus the Rng/SizeDist it draws from, so a source
/// can hand out self-contained streams.
class OwningPoissonStream final : public JobStream {
 public:
  OwningPoissonStream(std::size_t n, double lambda, const SizeDist& dist,
                      std::uint64_t seed)
      : dist_(dist), rng_(seed), inner_(n, lambda, dist_, rng_) {}

  [[nodiscard]] std::size_t n() const noexcept override { return inner_.n(); }
  [[nodiscard]] Job next() override { return inner_.next(); }

 private:
  SizeDist dist_;
  Rng rng_;
  detail::PoissonStream inner_;
};

/// Two-state Markov-modulated Poisson process: dwell times are exponential
/// with means `mean_off`/`mean_on`; arrivals are Poisson at `lambda_off`
/// while OFF and `lambda_on` while ON.  Starts OFF.  Each candidate
/// inter-arrival gap competes with the remaining dwell; on a state flip the
/// gap is redrawn, which is exact because the exponential is memoryless.
class MmppStream final : public JobStream {
 public:
  MmppStream(std::size_t n, double lambda_off, double lambda_on,
             double mean_on, double mean_off, const SizeDist& dist,
             std::uint64_t seed)
      : n_(n), lambda_off_(lambda_off), lambda_on_(lambda_on),
        mean_on_(mean_on), mean_off_(mean_off), dist_(dist), rng_(seed) {
    dwell_left_ = rng_.exponential(mean_off_);
  }

  [[nodiscard]] std::size_t n() const noexcept override { return n_; }

  [[nodiscard]] Job next() override {
    if (emitted_ == n_) {
      throw std::logic_error("MmppStream: next() called past n()");
    }
    for (;;) {
      const double rate = on_ ? lambda_on_ : lambda_off_;
      const double gap = rng_.exponential(1.0 / rate);
      if (gap < dwell_left_) {
        dwell_left_ -= gap;
        clock_ += gap;
        const Job j{static_cast<JobId>(emitted_), clock_,
                    draw_size(dist_, rng_)};
        ++emitted_;
        return j;
      }
      clock_ += dwell_left_;
      on_ = !on_;
      dwell_left_ = rng_.exponential(on_ ? mean_on_ : mean_off_);
    }
  }

 private:
  std::size_t n_;
  double lambda_off_, lambda_on_, mean_on_, mean_off_;
  SizeDist dist_;
  Rng rng_;
  bool on_ = false;
  double dwell_left_;
  std::size_t emitted_ = 0;
  Time clock_ = 0.0;
};

/// detail::InstanceRefStream plus shared ownership of the instance.
class OwningInstanceStream final : public JobStream {
 public:
  explicit OwningInstanceStream(std::shared_ptr<const Instance> instance)
      : instance_(std::move(instance)), inner_(*instance_) {}

  [[nodiscard]] std::size_t n() const noexcept override { return inner_.n(); }
  [[nodiscard]] Job next() override { return inner_.next(); }

 private:
  std::shared_ptr<const Instance> instance_;
  detail::InstanceRefStream inner_;
};

// --- sources -----------------------------------------------------------------

class PoissonSource final : public WorkloadSource {
 public:
  explicit PoissonSource(WorkloadSpec s) : WorkloadSource(std::move(s)) {
    check_keys(spec(), {"n", "load", "dist", "seed", "machines", "weights"});
    n_ = spec_count(spec(), "n", 1000);
    lambda_ = spec_load(spec()) * spec_machines(spec()) /
              mean_size(spec().dist());
    weights_ = spec_weights(spec());
  }

  [[nodiscard]] std::size_t n() const override { return n_; }
  [[nodiscard]] bool streamable() const noexcept override {
    return weights_ == Weights::kNone;
  }
  [[nodiscard]] std::unique_ptr<JobStream> stream() override {
    if (!streamable()) return WorkloadSource::stream();  // throws
    return std::make_unique<OwningPoissonStream>(n_, lambda_, spec().dist(),
                                                 spec().seed());
  }
  [[nodiscard]] Instance instance() override {
    OwningPoissonStream s(n_, lambda_, spec().dist(), spec().seed());
    return apply_weights(materialize(s), weights_, spec().seed());
  }

 private:
  std::size_t n_;
  double lambda_;
  Weights weights_;
};

class MmppSource final : public WorkloadSource {
 public:
  explicit MmppSource(WorkloadSpec s) : WorkloadSource(std::move(s)) {
    check_keys(spec(), {"n", "load", "burst", "on", "off", "dist", "seed",
                        "machines", "weights"});
    n_ = spec_count(spec(), "n", 1000);
    const double burst = spec().get_double("burst", 8.0);
    if (!(burst >= 1.0)) {
      throw SpecError("workload spec '" + spec().to_string() +
                      "': burst must be >= 1");
    }
    mean_on_ = spec_positive(spec(), "on", 5.0);
    mean_off_ = spec_positive(spec(), "off", 45.0);
    // Calibrate the stationary arrival rate to the requested load:
    // lambda_avg = (on*burst + off) / (on + off) * lambda_off.
    const double lambda_avg = spec_load(spec()) * spec_machines(spec()) /
                              mean_size(spec().dist());
    lambda_off_ =
        lambda_avg * (mean_on_ + mean_off_) / (mean_on_ * burst + mean_off_);
    lambda_on_ = burst * lambda_off_;
    weights_ = spec_weights(spec());
  }

  [[nodiscard]] std::size_t n() const override { return n_; }
  [[nodiscard]] bool streamable() const noexcept override {
    return weights_ == Weights::kNone;
  }
  [[nodiscard]] std::unique_ptr<JobStream> stream() override {
    if (!streamable()) return WorkloadSource::stream();  // throws
    return std::make_unique<MmppStream>(n_, lambda_off_, lambda_on_, mean_on_,
                                        mean_off_, spec().dist(), spec().seed());
  }
  [[nodiscard]] Instance instance() override {
    MmppStream s(n_, lambda_off_, lambda_on_, mean_on_, mean_off_,
                 spec().dist(), spec().seed());
    return apply_weights(materialize(s), weights_, spec().seed());
  }

 private:
  std::size_t n_;
  double lambda_off_, lambda_on_, mean_on_, mean_off_;
  Weights weights_;
};

/// Any kind whose construction is cheap enough to materialize eagerly
/// (deterministic streams, bursty batches, the adversarial families).
/// Streams by reference when the ids happen to be sequential in release
/// order, which all built-in builders guarantee.
class MaterializedSource final : public WorkloadSource {
 public:
  MaterializedSource(WorkloadSpec s, Instance instance)
      : WorkloadSource(std::move(s)),
        instance_(std::make_shared<const Instance>(std::move(instance))) {
    const std::span<const JobId> order = instance_->release_order();
    streamable_ = true;
    for (std::size_t i = 0; i < order.size(); ++i) {
      streamable_ = streamable_ && order[i] == static_cast<JobId>(i);
    }
  }

  [[nodiscard]] std::size_t n() const override { return instance_->n(); }
  [[nodiscard]] bool streamable() const noexcept override {
    return streamable_;
  }
  [[nodiscard]] std::unique_ptr<JobStream> stream() override {
    if (!streamable_) return WorkloadSource::stream();  // throws
    return std::make_unique<OwningInstanceStream>(instance_);
  }
  [[nodiscard]] Instance instance() override { return *instance_; }

 private:
  std::shared_ptr<const Instance> instance_;
  bool streamable_ = false;
};

class TraceSource final : public WorkloadSource {
 public:
  explicit TraceSource(WorkloadSpec s) : WorkloadSource(std::move(s)) {
    check_keys(spec(), {"path"});
    const std::string* path = spec().find("path");
    if (path == nullptr || path->empty()) {
      throw SpecError("workload spec 'trace:': missing path");
    }
    path_ = *path;
    try {
      const TraceInfo info = probe_trace_file(path_);
      n_ = info.n;
      binary_ = info.binary;
      streamable_ = info.streamable;
    } catch (const std::runtime_error& e) {
      // Missing file, bad header, truncation: surface as a spec error so
      // CLI/wire layers report it uniformly.
      throw SpecError(e.what());
    }
  }

  [[nodiscard]] std::size_t n() const override { return n_; }
  [[nodiscard]] bool streamable() const noexcept override {
    return streamable_;
  }
  [[nodiscard]] std::unique_ptr<JobStream> stream() override {
    if (!streamable_) return WorkloadSource::stream();  // throws
    if (binary_) return std::make_unique<BinaryTraceStream>(path_);
    return std::make_unique<CsvTraceStream>(path_);
  }
  [[nodiscard]] Instance instance() override {
    return read_trace_file(path_);
  }

 private:
  std::string path_;
  std::size_t n_ = 0;
  bool binary_ = false;
  bool streamable_ = false;
};

}  // namespace

std::unique_ptr<JobStream> WorkloadSource::stream() {
  throw std::logic_error("WorkloadSource: '" + spec_.to_string() +
                         "' is not streamable; call instance()");
}

std::unique_ptr<WorkloadSource> make_source(const WorkloadSpec& spec) {
  const std::string& kind = spec.kind;
  if (kind == "poisson") return std::make_unique<PoissonSource>(spec);
  if (kind == "mmpp") return std::make_unique<MmppSource>(spec);
  if (kind == "trace") return std::make_unique<TraceSource>(spec);
  if (kind == "uniform") {
    check_keys(spec, {"n", "gap", "size", "start"});
    const double gap = spec.get_double("gap", 1.0);
    if (!(gap >= 0.0)) {
      throw SpecError("workload spec '" + spec.to_string() +
                      "': gap must be >= 0");
    }
    const double start = spec.get_double("start", 0.0);
    if (!(start >= 0.0)) {
      throw SpecError("workload spec '" + spec.to_string() +
                      "': start must be >= 0");
    }
    return std::make_unique<MaterializedSource>(
        spec, detail::uniform_stream(spec_count(spec, "n", 100), gap,
                                     spec_positive(spec, "size", 1.0), start));
  }
  if (kind == "bursty") {
    check_keys(spec, {"bursts", "per", "gap", "dist", "seed", "weights"});
    Rng rng(spec.seed());
    Instance inst = detail::bursty_stream(
        spec_count(spec, "bursts", 10), spec_count(spec, "per", 10),
        spec_positive(spec, "gap", 10.0), spec.dist(), rng);
    return std::make_unique<MaterializedSource>(
        spec, apply_weights(std::move(inst), spec_weights(spec), spec.seed()));
  }
  if (kind == "adv-rr-l2-hard") {
    check_keys(spec, {"n"});
    return std::make_unique<MaterializedSource>(
        spec, rr_l2_hard(spec_count(spec, "n", 40)));
  }
  if (kind == "adv-batch-stream") {
    check_keys(spec, {"batch", "stream", "gap", "size"});
    return std::make_unique<MaterializedSource>(
        spec, batch_plus_stream(spec_count(spec, "batch", 40),
                                spec_count(spec, "stream", 160),
                                spec_positive(spec, "gap", 1.05),
                                spec_positive(spec, "size", 1.0)));
  }
  if (kind == "adv-srpt-starvation") {
    check_keys(spec, {"stream", "big", "gap"});
    return std::make_unique<MaterializedSource>(
        spec, srpt_starvation(spec_count(spec, "stream", 200),
                              spec_positive(spec, "big", 2.0),
                              spec_positive(spec, "gap", 1.0)));
  }
  if (kind == "adv-overload-pulse") {
    check_keys(spec, {"pulses", "burst", "machines"});
    return std::make_unique<MaterializedSource>(
        spec, overload_pulse(spec_count(spec, "pulses", 4),
                             spec_count(spec, "burst", 32),
                             spec_machines(spec)));
  }
  if (kind == "adv-staircase") {
    check_keys(spec, {"n"});
    return std::make_unique<MaterializedSource>(
        spec, staircase(spec_count(spec, "n", 16)));
  }
  if (kind == "adv-geometric") {
    check_keys(spec, {"levels", "spacing"});
    const long levels = spec.get_int("levels", 8);
    if (levels < 1) {
      throw SpecError("workload spec '" + spec.to_string() +
                      "': levels must be >= 1");
    }
    return std::make_unique<MaterializedSource>(
        spec, geometric_levels(static_cast<int>(levels),
                               spec_positive(spec, "spacing", 1.05)));
  }
  std::string kinds;
  for (const std::string& k : builtin_workload_kinds()) {
    if (!kinds.empty()) kinds += ' ';
    kinds += k;
  }
  throw SpecError("workload spec '" + spec.to_string() + "': unknown kind '" +
                  kind + "' (known: " + kinds + ")");
}

std::unique_ptr<WorkloadSource> make_source(std::string_view spec_string) {
  return make_source(WorkloadSpec::parse(spec_string));
}

Instance make_instance(const WorkloadSpec& spec) {
  return make_source(spec)->instance();
}

Instance make_instance(std::string_view spec_string) {
  return make_source(spec_string)->instance();
}

std::vector<std::string> builtin_workload_kinds() {
  return {"poisson",        "mmpp",
          "uniform",        "bursty",
          "trace",          "adv-rr-l2-hard",
          "adv-batch-stream", "adv-srpt-starvation",
          "adv-overload-pulse", "adv-staircase",
          "adv-geometric"};
}

RunResult run_spec(const RunRequest& request) {
  if (request.workload.empty()) {
    throw SpecError("run_spec: request.workload is empty");
  }
  const std::unique_ptr<WorkloadSource> source = make_source(request.workload);
  // Mirror the daemon's streaming decision: the fast path admits arrivals
  // lazily only for FastForward-capable policies with visible sizes.
  const bool fast_capable = make_policy(request.policy)->fast_forward().enabled();
  if (source->streamable() && request.use_fast_path && fast_capable &&
      !request.hide_sizes) {
    const std::unique_ptr<JobStream> stream = source->stream();
    return tempofair::run(*stream, request);
  }
  return tempofair::run(source->instance(), request);
}

}  // namespace tempofair::workload
